// Package-level benchmarks: one Benchmark per table and figure of the
// paper (the DESIGN.md experiment index maps each to its implementation),
// plus microbenchmarks of the hot primitives. Each figure benchmark runs
// the corresponding experiment end-to-end at a reduced-but-meaningful
// trace length and reports the headline metric alongside wall time.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/line"
	"repro/internal/lsh"
	"repro/internal/memory"
	"repro/internal/thesaurus"
	"repro/internal/xrand"
)

// benchOpt is the experiment scale used by the figure benchmarks: two
// representative profiles (one sensitive, one not) at a short trace.
func benchOpt() experiments.Options {
	return experiments.Options{Accesses: 120_000, Profiles: []string{"mcf", "imagick"}}
}

// fullOpt runs all 22 profiles (used by the headline Fig. 13 bench).
func fullOpt() experiments.Options {
	return experiments.Options{Accesses: 120_000}
}

func BenchmarkFig1IdealCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeomeanDiff, "idealdiff-x")
	}
}

func BenchmarkFig2DiffCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2("mcf", benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.CDF[16], "pct-within-16B")
	}
}

func BenchmarkFig5DBSCAN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(experiments.Options{Accesses: 120_000, Profiles: []string{"mcf"}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[0].Clusters), "clusters")
	}
}

func BenchmarkTable2Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table2Report()) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig13Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(fullOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeomeanCR["Thesaurus"], "thesaurus-x")
		b.ReportMetric(r.GeomeanCR["Dedup"], "dedup-x")
		b.ReportMetric(r.GeomeanCR["BDI"], "bdi-x")
	}
}

func BenchmarkFig13MPKI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(fullOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeomeanMPKIS["Thesaurus"], "norm-mpki-S")
	}
}

func BenchmarkFig13IPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(fullOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeomeanIPCS["Thesaurus"], "norm-ipc-S")
	}
}

func BenchmarkFig14Power(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].DiffMW, "mcf-mW")
	}
}

func BenchmarkFig15Compressible(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Average, "pct")
	}
}

func BenchmarkFig16ClusterSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(r.Average[0]+r.Average[1]+r.Average[2]+r.Average[3]), "pct-live")
	}
}

func BenchmarkFig17Encodings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig17(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Average[1], "pct-b+d") // diffenc.FormatBaseDiff
	}
}

func BenchmarkFig18DiffSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig18(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Average, "bytes")
	}
}

func BenchmarkFig19DiffTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig19(experiments.Options{Accesses: 120_000, Profiles: []string{"mcf"}})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.Series["mcf"])), "points")
	}
}

func BenchmarkFig20BaseCacheSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig20(experiments.Options{Accesses: 120_000, Profiles: []string{"mcf"}})
		if err != nil {
			b.Fatal(err)
		}
		// The 512-entry point (index 2) is the paper's pick.
		b.ReportMetric(100*r.Rows[2].HitRate, "hit-pct-512")
	}
}

func BenchmarkAblateVictimCandidates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateVictimCandidates(
			experiments.Options{Accesses: 80_000, Profiles: []string{"mcf"}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateLSHBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateLSHBits(
			experiments.Options{Accesses: 80_000, Profiles: []string{"mcf"}}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- microbenchmarks of the hot primitives ---

func randomLine(seed uint64) line.Line {
	rng := xrand.New(seed)
	var l line.Line
	for i := 0; i < 8; i++ {
		l.SetWord(i, rng.Uint64())
	}
	return l
}

func BenchmarkLSHFingerprint(b *testing.B) {
	h := lsh.MustNew(lsh.DefaultConfig())
	l := randomLine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Fingerprint(&l)
	}
}

func BenchmarkThesaurusReadHit(b *testing.B) {
	mem := memory.NewStore()
	cfg := thesaurus.DefaultConfig()
	c := thesaurus.MustNew(cfg, mem)
	var proto line.Line
	for i := range proto {
		proto[i] = byte(i)
	}
	const lines = 1024
	for i := 0; i < lines; i++ {
		l := proto
		l[0] = byte(i)
		mem.Poke(repro.Addr(i*64), l)
		c.Read(repro.Addr(i * 64))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Read(repro.Addr((i % lines) * 64))
	}
}

func BenchmarkThesaurusInsertStream(b *testing.B) {
	mem := memory.NewStore()
	c := thesaurus.MustNew(thesaurus.DefaultConfig(), mem)
	var proto line.Line
	for i := range proto {
		proto[i] = byte(i * 7)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := proto
		l[0], l[1] = byte(i), byte(i>>8)
		c.Write(repro.Addr(i*64), l)
	}
}

func BenchmarkConventionalReadHit(b *testing.B) {
	mem := repro.NewMemory()
	c := repro.NewConventional("bench", 1<<20, mem)
	const lines = 1024
	for i := 0; i < lines; i++ {
		c.Read(repro.Addr(i * 64))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Read(repro.Addr((i % lines) * 64))
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	p, err := repro.ProfileByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen := p.Generate(10_000)
		var a repro.Access
		for gen.Stream.Next(&a) {
		}
	}
}
