package repro_test

import (
	"fmt"

	"repro"
)

// ExampleEncode shows the base+diff encoding at the heart of Thesaurus:
// a near-duplicate line is stored as a 64-bit mask plus the differing
// bytes (Fig. 7 of the paper).
func ExampleEncode() {
	var base repro.Line
	for i := range base {
		base[i] = byte(i)
	}
	member := base
	member[10] = 0xAA
	member[40] = 0xBB

	enc := repro.Encode(&member, &base)
	fmt.Println("format:", enc.Format)
	fmt.Println("bytes:", enc.SizeBytes())
	fmt.Println("segments:", enc.Segments())

	decoded, _ := repro.Decode(enc, &base)
	fmt.Println("round trip ok:", decoded == member)
	// Output:
	// format: B+D
	// bytes: 10
	// segments: 2
	// round trip ok: true
}

// ExampleNewLSH demonstrates the locality property: a nudged line keeps
// its cluster fingerprint, an unrelated line does not.
func ExampleNewLSH() {
	h, _ := repro.NewLSH(repro.DefaultLSHConfig())

	var proto repro.Line
	for i := range proto {
		proto[i] = byte(i * 13)
	}
	near := proto
	near[5] += 2 // a small value change in one byte

	var far repro.Line
	for i := range far {
		far[i] = byte(200 - i*7)
	}

	fmt.Println("near keeps fingerprint:", h.Fingerprint(&near) == h.Fingerprint(&proto))
	fmt.Println("far keeps fingerprint:", h.Fingerprint(&far) == h.Fingerprint(&proto))
	// Output:
	// near keeps fingerprint: true
	// far keeps fingerprint: false
}

// ExampleMustNewCache runs a small cluster of near-duplicates through a
// Thesaurus cache and reports the effective compression.
func ExampleMustNewCache() {
	mem := repro.NewMemory()
	cache := repro.MustNewCache(repro.DefaultConfig(), mem)

	var proto repro.Line
	for i := range proto {
		proto[i] = byte(i*7 + 1)
	}
	const n = 512
	for i := 0; i < n; i++ {
		l := proto
		l[8] = byte(i) // cluster members differ in one byte
		mem.Poke(repro.Addr(i*repro.LineSize), l)
		cache.Read(repro.Addr(i * repro.LineSize))
	}

	fp := cache.Footprint()
	fmt.Println("resident lines:", fp.ResidentLines)
	fmt.Println("compresses at least 3x:", fp.CompressionRatio() > 3)
	// Output:
	// resident lines: 512
	// compresses at least 3x: true
}
