// Clustering: demonstrates the locality-sensitive hashing mechanism in
// isolation — how similar cachelines collide into the same fingerprint
// (becoming a compression cluster) while dissimilar lines spread out,
// and what the hardware costs.
package main

import (
	"fmt"

	"repro"
)

func main() {
	h, err := repro.NewLSH(repro.DefaultLSHConfig())
	if err != nil {
		panic(err)
	}

	// A prototype line and three variants at increasing distances.
	var proto repro.Line
	for i := range proto {
		proto[i] = byte(i * 13)
	}
	near := proto
	near[5] += 3 // one byte nudged: same cluster almost surely
	mid := proto
	for i := 0; i < 12; i++ {
		mid[i*5] += byte(i + 1)
	}
	var far repro.Line
	for i := range far {
		far[i] = byte(255 - i*11)
	}

	fmt.Println("fingerprints (12-bit):")
	for _, c := range []struct {
		name string
		l    repro.Line
	}{{"proto", proto}, {"near (1B diff)", near}, {"mid (12B diff)", mid}, {"far (64B diff)", far}} {
		l := c.l
		fmt.Printf("  %-15s fp=%#03x  diff-vs-proto=%dB\n",
			c.name, uint32(h.Fingerprint(&l)), repro.DiffBytes(&l, &proto))
	}

	// Measured collision probability as a function of distance: the
	// locality-sensitive property of §4.1.
	fmt.Println("\ncollision probability vs byte distance:")
	for _, d := range []int{0, 1, 2, 4, 8, 16, 32, 64} {
		fmt.Printf("  %2d differing bytes → P(same cluster) = %.3f\n",
			d, h.CollisionRate(d, 3000, 1))
	}

	// What compression does a cluster hit buy? Encode the near variant
	// against the prototype.
	enc := repro.Encode(&near, &proto)
	fmt.Printf("\nencoding near vs proto: format=%v, %d bytes (%d segments)\n",
		enc.Format, enc.SizeBytes(), enc.Segments())
	back, err := repro.Decode(enc, &proto)
	if err != nil || back != near {
		panic("round trip failed")
	}
	fmt.Println("decode round-trip: ok")

	cost := h.Cost()
	fmt.Printf("\nhardware cost: %d adders, %d comparators, %d cycle(s)\n",
		cost.Adders, cost.Comparators, cost.LatencyCycles)
}
