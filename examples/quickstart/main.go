// Quickstart: build a Thesaurus cache, feed it clusters of similar
// cachelines (the mcf-style near-duplicate records of the paper's
// Figure 2), and watch the compression happen.
package main

import (
	"fmt"

	"repro"
)

func main() {
	mem := repro.NewMemory()
	cache := repro.MustNewCache(repro.DefaultConfig(), mem)

	// Populate memory with three "clusters" of near-identical lines plus
	// some incompressible noise — a miniature cache working set.
	var protos [3]repro.Line
	for p := range protos {
		for i := range protos[p] {
			protos[p][i] = byte(37*p + i*7)
		}
	}
	const lines = 4096
	for i := 0; i < lines; i++ {
		addr := repro.Addr(i * repro.LineSize)
		l := protos[i%3]
		// Perturb a few bytes: same-cluster lines differ slightly.
		l[8] = byte(i)
		l[9] = byte(i >> 8)
		if i%17 == 0 { // sprinkle some all-zero lines
			l = repro.Line{}
		}
		mem.Poke(addr, l)
	}

	// Stream the working set through the cache.
	for i := 0; i < lines; i++ {
		addr := repro.Addr(i * repro.LineSize)
		got, _ := cache.Read(addr)
		if want := mem.Peek(addr); got != want {
			panic("cache returned wrong data") // never happens
		}
	}

	fp := cache.Footprint()
	extra := cache.Extra()
	fmt.Printf("resident lines:        %d\n", fp.ResidentLines)
	fmt.Printf("data bytes used:       %d (a conventional cache needs %d)\n",
		fp.DataBytesUsed, fp.ResidentLines*repro.LineSize)
	fmt.Printf("compression ratio:     %.2fx\n", fp.CompressionRatio())
	fmt.Printf("avg diff size:         %.1f bytes\n", extra.AvgDiffBytes())
	fmt.Printf("encodings [raw b+d 0+d base zero]: %v\n", extra.ByFormat)
	fmt.Printf("base cache hit rate:   %.1f%%\n", 100*cache.BaseCache().HitRate())
}
