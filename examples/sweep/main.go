// Sweep: explores the design space of the Thesaurus configuration on one
// workload — LSH fingerprint width, base-cache size, and the best-of-n
// victim policy — the knobs behind §6.1, Fig. 20, and §5.4.3.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	profile := flag.String("profile", "mcf", "workload profile")
	n := flag.Int("n", 300_000, "trace length in accesses")
	flag.Parse()

	p, err := repro.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	gen := p.Generate(*n)
	sys := repro.DefaultSystem()
	rec := repro.Record(gen.Stream, sys, gen.Image)
	opt := repro.ReplayOptions{WarmupFraction: 0.25, SampleEvery: 2048}

	run := func(cfg repro.Config) repro.Result {
		mem := repro.NewMemory()
		c, err := repro.NewCache(cfg, mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := repro.Replay(c, rec, mem, sys, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return res
	}

	fmt.Printf("workload %s, %d accesses\n", p.Name, *n)

	fmt.Println("\nLSH fingerprint width (paper sweeps 8-24 bits, picks 12):")
	for _, bits := range []int{8, 10, 12, 16, 20} {
		cfg := repro.DefaultConfig()
		cfg.LSH.Bits = bits
		res := run(cfg)
		fmt.Printf("  %2d bits: compression %.2fx, MPKI %.2f\n", bits, res.CompressionRatio, res.MPKI)
	}

	fmt.Println("\nbase cache size (Fig. 20; paper picks 512 entries):")
	for _, entries := range []int{32, 128, 512, 2048} {
		cfg := repro.DefaultConfig()
		cfg.BaseCacheSets = entries / cfg.BaseCacheWays
		if cfg.BaseCacheSets < 1 {
			cfg.BaseCacheSets, cfg.BaseCacheWays = 1, entries
		}
		res := run(cfg)
		fmt.Printf("  %4d entries: compression %.2fx, MPKI %.2f\n", entries, res.CompressionRatio, res.MPKI)
	}

	fmt.Println("\ndata-victim candidates (best-of-n, §5.4.3; paper uses 4):")
	for _, cands := range []int{1, 2, 4, 8} {
		cfg := repro.DefaultConfig()
		cfg.VictimCandidates = cands
		res := run(cfg)
		fmt.Printf("  best-of-%d: compression %.2fx, MPKI %.2f\n", cands, res.CompressionRatio, res.MPKI)
	}
}
