// Extensions: demonstrates the two beyond-the-paper mechanisms this
// library implements — the adaptive compression disable sketched in
// §6.1/§6.3 and the 2DCC-style intra-line fallback (the authors' own
// follow-up, the paper's reference [21]) — plus the open-page DRAM
// timing model.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// --- Adaptive disable: a streaming workload (no reuse) trips the
	// insensitivity detector, so most epochs skip the LSH machinery.
	{
		mem := repro.NewMemory()
		cfg := repro.DefaultConfig()
		cfg.AdaptiveEpoch = 20_000
		cache := repro.MustNewCache(cfg, mem)

		var proto repro.Line
		for i := range proto {
			proto[i] = byte(i)
		}
		for i := 0; i < 200_000; i++ { // streaming: every line seen once
			l := proto
			l[0], l[1], l[2] = byte(i), byte(i>>8), byte(i>>16)
			mem.Poke(repro.Addr(i*repro.LineSize), l)
			cache.Read(repro.Addr(i * repro.LineSize))
		}
		st := cache.AdaptiveStats()
		fmt.Printf("adaptive on a streaming workload: %d/%d epochs ran uncompressed (%d raw placements)\n",
			st.DisabledEpochs, st.Epochs, st.DisabledPlacements)
	}

	// --- Intra-line fallback: lines that are BΔI-friendly but mutually
	// dissimilar cannot cluster; the second dimension still compresses
	// them.
	{
		run := func(intra bool) float64 {
			mem := repro.NewMemory()
			cfg := repro.DefaultConfig()
			cfg.IntraLineFallback = intra
			cache := repro.MustNewCache(cfg, mem)
			for i := 0; i < 2000; i++ {
				var l repro.Line
				base := uint64(i) * 0x9E3779B97F4A7C15 // unique per line
				for w := 0; w < 8; w++ {
					l.SetWord(w, base+uint64(w*3)) // tiny intra-line deltas
				}
				mem.Poke(repro.Addr(i*repro.LineSize), l)
				cache.Read(repro.Addr(i * repro.LineSize))
			}
			return cache.Footprint().CompressionRatio()
		}
		fmt.Printf("intra-line fallback on unclustered BΔI-friendly lines: %.2fx -> %.2fx\n",
			run(false), run(true))
	}

	// --- DRAM model: streaming enjoys row-buffer hits; random traffic
	// conflicts.
	{
		m := repro.NewDRAM(repro.DDR3_1066())
		for i := 0; i < 20_000; i++ {
			m.Access(repro.Addr(i * repro.LineSize))
		}
		seq := m.Stats()
		m2 := repro.NewDRAM(repro.DDR3_1066())
		for i := 0; i < 20_000; i++ {
			m2.Access(repro.Addr((i * 7919 * 4096) % (1 << 30)))
		}
		rnd := m2.Stats()
		fmt.Printf("DRAM row-buffer hit rate: %.0f%% streaming vs %.0f%% random (avg %.0f vs %.0f cycles)\n",
			100*seq.HitRate(), 100*rnd.HitRate(), seq.AvgLatency(), rnd.AvgLatency())
	}
}
