// Hierarchy: runs a full three-level cache hierarchy simulation on one of
// the synthetic SPEC CPU 2017 profiles and compares every LLC design —
// the workflow behind the paper's Figure 13.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	profile := flag.String("profile", "mcf", "workload profile (see tracegen -list)")
	n := flag.Int("n", 400_000, "trace length in accesses")
	flag.Parse()

	p, err := repro.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Generate the workload once and filter it through L1/L2: the LLC
	// event stream is identical for every design.
	gen := p.Generate(*n)
	sys := repro.DefaultSystem()
	rec := repro.Record(gen.Stream, sys, gen.Image)
	fmt.Printf("%s: %d LLC events from %d instructions\n\n", p.Name, len(rec.Events), rec.Instructions)

	type design struct {
		name  string
		build func(*repro.Memory) (repro.LLC, error)
	}
	designs := []design{
		{"Baseline 1MB", func(m *repro.Memory) (repro.LLC, error) {
			return repro.NewConventional("Baseline", 1<<20, m), nil
		}},
		{"Dedup", repro.NewDedupCache},
		{"BDI", repro.NewBDICache},
		{"Thesaurus", func(m *repro.Memory) (repro.LLC, error) {
			return repro.NewCache(repro.DefaultConfig(), m)
		}},
		{"Baseline 2MB", func(m *repro.Memory) (repro.LLC, error) {
			return repro.NewConventional("2x", 2<<20, m), nil
		}},
	}

	fmt.Printf("%-14s %10s %10s %8s %8s\n", "design", "compression", "occupancy", "MPKI", "IPC")
	opt := repro.ReplayOptions{WarmupFraction: 0.25, SampleEvery: 2048, Verify: true}
	for _, d := range designs {
		mem := repro.NewMemory()
		c, err := d.build(mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := repro.Replay(c, rec, mem, sys, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-14s %9.2fx %9.0f%% %8.2f %8.3f\n",
			d.name, res.CompressionRatio, 100*res.Occupancy, res.MPKI, res.IPC)
	}
}
