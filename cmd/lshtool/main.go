// Command lshtool computes LSH fingerprints for cachelines and reports
// cluster structure. Input is a binary file treated as consecutive
// 64-byte lines (any file works; the tool is handy for exploring how the
// hardware-friendly LSH of §4.3 clusters real data).
//
// Usage:
//
//	lshtool -bits 12 -in data.bin            # fingerprint + cluster stats
//	lshtool -collisions                      # collision-rate table
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/line"
	"repro/internal/lsh"
)

func main() {
	bits := flag.Int("bits", lsh.DefaultBits, "fingerprint width in bits")
	nonzeros := flag.Int("nonzeros", lsh.DefaultNonZeros, "non-zero coefficients per row")
	seed := flag.Uint64("seed", 0x7e5a0305, "projection matrix seed")
	in := flag.String("in", "", "input file of 64-byte lines")
	collisions := flag.Bool("collisions", false, "print the collision-rate vs distance table")
	flag.Parse()

	h, err := lsh.New(lsh.Config{Bits: *bits, NonZeros: *nonzeros, Seed: *seed})
	if err != nil {
		fail(err)
	}

	if *collisions {
		fmt.Printf("collision probability vs byte distance (%d-bit LSH, %d non-zeros/row)\n",
			*bits, *nonzeros)
		for _, d := range []int{0, 1, 2, 4, 8, 16, 32, 64} {
			fmt.Printf("  diff=%2d bytes  P(same fingerprint)=%.3f\n",
				d, h.CollisionRate(d, 4000, 42))
		}
		cost := h.Cost()
		fmt.Printf("hardware: %d adders, %d comparators, %d-cycle latency\n",
			cost.Adders, cost.Comparators, cost.LatencyCycles)
		return
	}

	if *in == "" {
		fail(fmt.Errorf("need -in <file> or -collisions"))
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fail(err)
	}
	counts := map[lsh.Fingerprint]int{}
	var lines []line.Line
	for off := 0; off+line.Size <= len(data); off += line.Size {
		l := line.FromBytes(data[off : off+line.Size])
		counts[h.Fingerprint(&l)]++
		lines = append(lines, l)
	}
	fmt.Printf("%d lines, %d distinct fingerprints (of %d possible)\n",
		len(lines), len(counts), h.NumFingerprints())
	fmt.Printf("effective fingerprint entropy: %.2f of %d bits\n",
		h.EffectiveEntropy(lines), h.Bits())
	type kv struct {
		fp lsh.Fingerprint
		n  int
	}
	var top []kv
	for fp, c := range counts {
		top = append(top, kv{fp, c})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].n > top[j].n })
	if len(top) > 10 {
		top = top[:10]
	}
	fmt.Println("largest clusters:")
	for _, t := range top {
		fmt.Printf("  fp %#03x: %d lines\n", uint32(t.fp), t.n)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lshtool:", err)
	os.Exit(1)
}
