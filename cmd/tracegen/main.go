// Command tracegen generates a synthetic memory trace for a named SPEC
// CPU 2017 profile and writes it to a file in the repository's binary
// trace format (see internal/trace), so traces can be inspected, archived,
// or replayed by external tools.
//
// Usage:
//
//	tracegen -profile mcf -n 1000000 -o mcf.trace
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	profile := flag.String("profile", "mcf", "workload profile name")
	n := flag.Int("n", 1_000_000, "number of accesses to generate")
	out := flag.String("o", "", "output file (default <profile>.trace)")
	list := flag.Bool("list", false, "list available profiles and exit")
	flag.Parse()

	if *list {
		for _, p := range workload.Profiles() {
			kind := "insensitive"
			if p.Sensitive {
				kind = "sensitive"
			}
			fmt.Printf("%-12s %s, %d regions\n", p.Name, kind, len(p.Regions))
		}
		return
	}

	p, err := workload.ProfileByName(*profile)
	if err != nil {
		fail(err)
	}
	gen := p.Generate(*n)
	accesses := trace.Collect(gen.Stream, *n)

	path := *out
	if path == "" {
		path = *profile + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := trace.Write(f, accesses); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d accesses (%d instructions, %.1fMB working set) to %s\n",
		len(accesses), trace.Instructions(accesses),
		float64(gen.WorkingSetBytes())/(1<<20), path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
