// Command tracegen generates a synthetic memory trace for a named SPEC
// CPU 2017 profile and writes it to a file in the repository's binary
// trace format (see internal/trace), so traces can be inspected, archived,
// or replayed by external tools.
//
// Usage:
//
//	tracegen -profile mcf -n 1000000 -o mcf.trace
//	tracegen -profile mcf -n 1000000 -artifact mcf.thsa
//	tracegen -profile mcf -n 1000000 -cache-dir ~/.cache/thesaurus/artifacts
//	tracegen -list
//
// With -artifact, the trace is filtered through the private L1/L2 levels
// and written as a recording artifact (internal/artifact codec: the
// L1/L2-filtered LLC event stream plus the full memory image), directly
// loadable by the experiment harness. With -cache-dir, the same artifact
// is stored into an artifact cache under its canonical content key, so a
// later thesaurus/calibrate run starts warm.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/artifact"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	profile := flag.String("profile", "mcf", "workload profile name")
	n := flag.Int("n", 1_000_000, "number of accesses to generate")
	out := flag.String("o", "", "output file (default <profile>.trace)")
	artifactOut := flag.String("artifact", "", "write a recording artifact (recorded events + memory image) to this file")
	cacheDir := flag.String("cache-dir", "", "store the recording into this artifact cache under its canonical key")
	list := flag.Bool("list", false, "list available profiles and exit")
	flag.Parse()

	if *list {
		for _, p := range workload.Profiles() {
			kind := "insensitive"
			if p.Sensitive {
				kind = "sensitive"
			}
			fmt.Printf("%-12s %s, %d regions\n", p.Name, kind, len(p.Regions))
		}
		return
	}

	p, err := workload.ProfileByName(*profile)
	if err != nil {
		fail(err)
	}

	if *artifactOut != "" || *cacheDir != "" {
		// The artifact holds the L1/L2-filtered recording, not the raw
		// trace, so it must come from a fresh generation (recording
		// mutates the image as stores retire).
		gen := p.Generate(*n)
		rec := sim.Record(gen.Stream, sim.DefaultSystem(), gen.Image)
		af := &artifact.File{Recorded: rec, Image: gen.Image}
		if *artifactOut != "" {
			data := artifact.Encode(nil, af)
			if err := os.WriteFile(*artifactOut, data, 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("wrote artifact: %d LLC events, %d-line image, %.1fMB to %s\n",
				len(rec.Events), gen.Image.Populated(), float64(len(data))/(1<<20), *artifactOut)
		}
		if *cacheDir != "" {
			c, err := artifact.Open(*cacheDir, 0)
			if err != nil {
				fail(err)
			}
			key := artifact.RecordedKey(p, sim.DefaultSystem(), *n)
			c.StoreRecorded(key, rec)
			fmt.Printf("cached recording %s/%d under %s/%s.thsa\n", p.Name, *n, *cacheDir, key)
		}
		if *out == "" {
			return
		}
	}

	gen := p.Generate(*n)
	accesses := trace.Collect(gen.Stream, *n)

	path := *out
	if path == "" {
		path = *profile + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if err := trace.Write(f, accesses); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d accesses (%d instructions, %.1fMB working set) to %s\n",
		len(accesses), trace.Instructions(accesses),
		float64(gen.WorkingSetBytes())/(1<<20), path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
