package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// benchDiffTolerance is the allowed ns/op growth factor for the gated
// (kernel and hot-path) classes before bench-diff fails. 15% sits above
// normal scheduler noise on an otherwise idle machine but below any real
// regression worth a commit.
const benchDiffTolerance = 1.15

// benchHistoryRecord is one line of results/bench_history.jsonl: a full
// re-measurement tied to the baseline it was compared against, so the
// repository accumulates a machine-readable performance trajectory
// alongside the committed BENCH_hotpath.json snapshot.
type benchHistoryRecord struct {
	When        string       `json:"when"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Baseline    string       `json:"baseline"`
	Regressions int          `json:"regressions"`
	Note        string       `json:"note,omitempty"`
	Benchmarks  []benchEntry `json:"benchmarks"`
}

// gatedClass reports whether a row's class participates in the
// regression gate. Lifecycle and artifact rows are trajectory-only:
// their numbers legitimately move with pool warm-up and trace size.
func gatedClass(class string) bool {
	return class == classKernel || class == classHotPath
}

// runBenchDiff re-measures the hot-path benchmark suite and compares it
// against the committed baseline document. Gated rows fail the run when
// ns/op grows beyond benchDiffTolerance or allocs/op grows at all; every
// row is printed with its delta. When historyPath is non-empty the fresh
// measurement is appended there as one JSONL record (note is free-form
// context, e.g. the quick-campaign wall time).
func runBenchDiff(baselinePath, historyPath, note string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench-diff: %w", err)
	}
	var base benchDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench-diff: parse %s: %w", baselinePath, err)
	}
	if base.Schema != benchSchema {
		return fmt.Errorf("bench-diff: baseline schema %q, tool expects %q — regenerate with -benchjson",
			base.Schema, benchSchema)
	}
	baseline := make(map[string]benchEntry, len(base.Benchmarks))
	for _, e := range base.Benchmarks {
		baseline[e.Name] = e
	}

	entries, err := measureBench()
	if err != nil {
		return err
	}

	var regressions []string
	fmt.Printf("%-30s %-10s %12s %12s %8s %7s\n",
		"benchmark", "class", "base ns/op", "new ns/op", "delta", "allocs")
	for _, e := range entries {
		b, ok := baseline[e.Name]
		if !ok {
			fmt.Printf("%-30s %-10s %12s %12.1f %8s %7d\n",
				e.Name, e.Class, "-", e.NsPerOp, "new", e.AllocsPerOp)
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = e.NsPerOp/b.NsPerOp - 1
		}
		mark := ""
		if gatedClass(e.Class) {
			if e.NsPerOp > b.NsPerOp*benchDiffTolerance {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.1f ns/op vs baseline %.1f (%+.1f%%, tolerance %+.0f%%)",
					e.Name, e.NsPerOp, b.NsPerOp, delta*100, (benchDiffTolerance-1)*100))
				mark = "  << REGRESSION"
			}
			if e.AllocsPerOp > b.AllocsPerOp {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %d allocs/op vs baseline %d (any alloc growth fails)",
					e.Name, e.AllocsPerOp, b.AllocsPerOp))
				mark = "  << REGRESSION"
			}
		}
		fmt.Printf("%-30s %-10s %12.1f %12.1f %+7.1f%% %7d%s\n",
			e.Name, e.Class, b.NsPerOp, e.NsPerOp, delta*100, e.AllocsPerOp, mark)
	}
	for _, e := range base.Benchmarks {
		if _, measured := findEntry(entries, e.Name); !measured && gatedClass(e.Class) {
			regressions = append(regressions, fmt.Sprintf("%s: gated baseline row no longer measured", e.Name))
		}
	}

	if historyPath != "" {
		if err := appendBenchHistory(historyPath, benchHistoryRecord{
			When:        time.Now().UTC().Format(time.RFC3339),
			GoVersion:   runtime.Version(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Baseline:    baselinePath,
			Regressions: len(regressions),
			Note:        note,
			Benchmarks:  entries,
		}); err != nil {
			return err
		}
		fmt.Printf("history: appended to %s\n", historyPath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench-diff: %d regression(s) vs %s:\n  %s",
			len(regressions), baselinePath, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("bench-diff: no regressions vs %s (gated classes, %+.0f%% ns/op tolerance)\n",
		baselinePath, (benchDiffTolerance-1)*100)
	return nil
}

// findEntry returns the named row, if measured.
func findEntry(entries []benchEntry, name string) (benchEntry, bool) {
	for _, e := range entries {
		if e.Name == name {
			return e, true
		}
	}
	return benchEntry{}, false
}

// appendBenchHistory appends rec as one line of JSONL.
func appendBenchHistory(path string, rec benchHistoryRecord) error {
	out, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("bench-diff: %w", err)
	}
	if _, err := f.Write(append(out, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("bench-diff: append %s: %w", path, err)
	}
	return f.Close()
}
