package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/spool"
	"repro/internal/workload"
)

// workReclaimAfter is how long a .work claim may sit untouched before a
// live worker takes it back. Even the slowest single design × profile
// cell finishes well inside this, so only a genuinely dead worker's
// claims ever come back.
const workReclaimAfter = 2 * time.Minute

// runWorker drains the spool directory: claim a task, run its design ×
// profile cell (which persists the RunOutput artifact into the shared
// cache under the cross-process singleflight), mark it done, repeat
// until the queue is empty. When the queue looks drained it sweeps for
// claims abandoned by crashed workers before exiting, so a dead peer's
// tasks are finished by the survivors rather than falling through to the
// coordinator's serial recompute pass. The artifact cache is the only
// result channel — nothing about the run itself travels back through the
// spool.
func runWorker(spoolDir string) error {
	if _, ok := harness.ArtifactStats(); !ok {
		return errors.New("-worker requires the artifact cache (-no-cache is incompatible)")
	}
	for {
		t, ok, err := spool.Claim(spoolDir)
		if err != nil {
			return err
		}
		if !ok {
			n, err := spool.Reclaim(spoolDir, workReclaimAfter)
			if err != nil {
				return err
			}
			if n > 0 {
				fmt.Fprintf(os.Stderr, "thesaurus worker: reclaimed %d abandoned task(s)\n", n)
				continue
			}
			return nil
		}
		opt := harness.RunOptions{
			Accesses: t.Accesses,
			Replay:   harness.DefaultRunOptions().Replay,
			Workers:  1,
		}
		opt.Replay.WarmupFraction = t.WarmupFraction
		opt.Replay.SampleEvery = t.SampleEvery
		opt.Replay.Verify = t.Verify
		_, runErr := harness.Run(t.Profile, t.Design, opt)
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "thesaurus worker: task %d (%s/%s): %v\n",
				t.ID, t.Profile, t.Design, runErr)
		}
		if err := spool.Finish(spoolDir, t.ID, runErr); err != nil {
			return err
		}
	}
}

// distribute shards the design × profile matrix of the coming campaign
// across n worker processes, each warming the shared artifact cache, then
// returns so the caller's normal (in-process) campaign runs against the
// warm cache. The report is therefore assembled by exactly the same code
// path as a serial run — byte-identity with serial execution holds by
// construction, and a lost or failed worker costs only recomputation in
// the final pass, never correctness.
func distribute(n int, exeArgs workerArgs, opt experiments.Options) error {
	if _, ok := harness.ArtifactStats(); !ok {
		return errors.New("-distribute requires the artifact cache (-no-cache is incompatible)")
	}
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("distribute: resolve executable: %w", err)
	}
	spoolDir, err := os.MkdirTemp("", "thesaurus-spool-*")
	if err != nil {
		return fmt.Errorf("distribute: %w", err)
	}
	defer os.RemoveAll(spoolDir)

	profiles := opt.Profiles
	if len(profiles) == 0 {
		profiles = workload.Names()
	}
	ro := harness.DefaultRunOptions()
	var tasks []spool.Task
	for _, p := range profiles {
		for _, d := range harness.Designs {
			tasks = append(tasks, spool.Task{
				ID:             len(tasks),
				Profile:        p,
				Design:         d,
				Accesses:       opt.Accesses,
				WarmupFraction: ro.Replay.WarmupFraction,
				SampleEvery:    ro.Replay.SampleEvery,
				Verify:         ro.Replay.Verify,
			})
		}
	}
	if err := spool.Write(spoolDir, tasks); err != nil {
		return err
	}

	args := []string{"-worker", "-spool", spoolDir, "-cache-dir", exeArgs.cacheDir}
	if exeArgs.cacheMax > 0 {
		args = append(args, "-cache-max-bytes", strconv.FormatInt(exeArgs.cacheMax, 10))
	}
	if exeArgs.noRunCache {
		args = append(args, "-no-run-cache")
	}
	if exeArgs.verify {
		args = append(args, "-cache-verify")
	}
	exited := make(chan error, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, args...)
		// Workers write nothing the report needs: stdout would only ever
		// carry accidental prints, so both streams go to our stderr.
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("distribute: start worker: %w", err)
		}
		go func() { exited <- cmd.Wait() }()
	}

	fmt.Fprintf(os.Stderr, "distribute: %d tasks across %d workers (spool %s)\n",
		len(tasks), n, spoolDir)
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for running := n; running > 0; {
		select {
		case err := <-exited:
			running--
			if err != nil {
				// A dead worker is a warning, not a failure: its tasks stay
				// unclaimed (or un-done) and the final in-process pass
				// computes whatever the cache is missing.
				fmt.Fprintf(os.Stderr, "distribute: worker exited with error: %v\n", err)
			}
		case <-tick.C:
			if p, err := spool.Scan(spoolDir); err == nil {
				fmt.Fprintf(os.Stderr, "distribute: %d/%d done, %d working, %d failed\r",
					p.Done, len(tasks), p.Working, p.Failed)
			}
		}
	}
	p, err := spool.Scan(spoolDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "distribute: %d/%d done, %d failed\n", p.Done, len(tasks), p.Failed)
	if msgs, err := spool.Failures(spoolDir); err == nil {
		for _, m := range msgs {
			fmt.Fprintf(os.Stderr, "distribute: %s (will recompute in-process)\n", m)
		}
	}
	return nil
}

// workerArgs is the slice of our own flag state a spawned worker must
// inherit to address the same cache with the same semantics.
type workerArgs struct {
	cacheDir   string
	cacheMax   int64
	noRunCache bool
	verify     bool
}
