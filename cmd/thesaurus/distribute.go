package main

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"time"

	"repro/internal/artifact"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/netq"
	"repro/internal/spool"
	"repro/internal/workload"
	"repro/internal/workq"
)

// workReclaimAfter is how long a claim may sit untouched before the queue
// takes it back from a presumed-dead worker. Workers heartbeat every
// workq.HeartbeatEvery, so only a genuinely dead worker's claims ever
// come back — on both transports (spool mtime restamp, netq lease).
const workReclaimAfter = 2 * time.Minute

// campaignTasks enumerates the design × profile matrix of the coming
// campaign as transport-neutral queue tasks — the one task list both the
// spool coordinator and the netq coordinator publish.
func campaignTasks(opt experiments.Options) []workq.Task {
	profiles := opt.Profiles
	if len(profiles) == 0 {
		profiles = workload.Names()
	}
	ro := harness.DefaultRunOptions()
	var tasks []workq.Task
	for _, p := range profiles {
		for _, d := range harness.Designs {
			tasks = append(tasks, workq.Task{
				ID:             len(tasks),
				Profile:        p,
				Design:         d,
				Accesses:       opt.Accesses,
				WarmupFraction: ro.Replay.WarmupFraction,
				SampleEvery:    ro.Replay.SampleEvery,
				Verify:         ro.Replay.Verify,
			})
		}
	}
	return tasks
}

// taskRunOptions reconstructs the harness options a task's cell runs
// under. Workers stay serial per task (Workers=1): parallelism comes
// from draining many tasks at once, not from sharding one replay.
func taskRunOptions(t workq.Task) harness.RunOptions {
	opt := harness.RunOptions{
		Accesses: t.Accesses,
		Replay:   harness.DefaultRunOptions().Replay,
		Workers:  1,
	}
	opt.Replay.WarmupFraction = t.WarmupFraction
	opt.Replay.SampleEvery = t.SampleEvery
	opt.Replay.Verify = t.Verify
	return opt
}

// runCell executes one task's design × profile cell via the normal
// harness path, which persists the RunOutput artifact into the cache
// under the cross-process singleflight. Run failures ride the outcome
// (the task is marked failed, the coordinator recomputes in-process);
// they never stop the worker's drain loop.
func runCell(t workq.Task) workq.Outcome {
	_, err := harness.Run(t.Profile, t.Design, taskRunOptions(t))
	if err != nil {
		fmt.Fprintf(os.Stderr, "thesaurus worker: task %d (%s/%s): %v\n",
			t.ID, t.Profile, t.Design, err)
	}
	return workq.Outcome{Err: err}
}

// workerCacheStats snapshots the installed cache's counters in the
// transport schema workers report back to the coordinator.
func workerCacheStats() workq.CacheStats {
	st, ok := harness.ArtifactStats()
	if !ok {
		return workq.CacheStats{}
	}
	return workq.CacheStats{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Stores:        st.Stores,
		Corrupt:       st.Corrupt,
		Evictions:     st.Evictions,
		TouchFailures: st.TouchFailures,
		BytesLoaded:   st.BytesLoaded,
		BytesStored:   st.BytesStored,
	}
}

// reportMergedStats prints one coordinator-side summary of every
// reporting worker's cache counters — the replacement for N workers
// interleaving their own stats lines on a shared stderr.
func reportMergedStats(workers int, s workq.CacheStats) {
	if workers == 0 {
		return
	}
	fmt.Fprintf(os.Stderr,
		"artifact cache (%d workers): %d hits, %d misses, %d stores, %d corrupt, %d evicted, %.1f MiB loaded, %.1f MiB stored\n",
		workers, s.Hits, s.Misses, s.Stores, s.Corrupt, s.Evictions,
		float64(s.BytesLoaded)/(1<<20), float64(s.BytesStored)/(1<<20))
	if s.TouchFailures > 0 {
		fmt.Fprintf(os.Stderr,
			"artifact cache (workers): %d LRU touch failure(s) — entries age as if idle; check cache-dir permissions\n",
			s.TouchFailures)
	}
}

// runWorkerSpool drains a spool directory, then publishes this worker's
// cache counters into it for the coordinator's merged summary line.
func runWorkerSpool(dir string) error {
	if _, ok := harness.ArtifactStats(); !ok {
		return errors.New("-worker -spool requires the artifact cache (-no-cache is incompatible)")
	}
	drainErr := workq.Drain(spool.NewQueue(dir, workReclaimAfter), workq.HeartbeatEvery, runCell)
	if err := spool.WriteStats(dir, workerCacheStats()); err != nil {
		fmt.Fprintln(os.Stderr, "thesaurus worker:", err)
	}
	return drainErr
}

// runWorkerNet connects to a netq coordinator and drains its queue.
// connect is host:port, or @file naming a file that will hold the
// address (the coordinator's -addr-file; polled briefly so workers can
// start before the coordinator binds its port). On this transport
// completed tasks report their RunOutput content key, plus the raw
// artifact bytes when the handshake proved the coordinator's cache
// directory is not ours.
func runWorkerNet(connect string, cache *artifact.Cache) error {
	addr, err := resolveConnectAddr(connect)
	if err != nil {
		return err
	}
	copt := netq.ClientOptions{FinalStats: workerCacheStats}
	if cache != nil {
		copt.CacheDir = cache.Dir()
	}
	cli, err := netq.Dial(addr, copt)
	if err != nil {
		return err
	}
	defer cli.Close()
	stream := workq.WantsArtifacts(cli)
	return workq.Drain(cli, workq.HeartbeatEvery, func(t workq.Task) workq.Outcome {
		out := runCell(t)
		if out.Err != nil {
			return out
		}
		key, err := harness.DefaultRunContentKey(t.Profile, t.Design, taskRunOptions(t))
		if err != nil {
			// The cell ran; only the key derivation failed. Report success
			// without a key — the coordinator recomputes from its cache.
			fmt.Fprintf(os.Stderr, "thesaurus worker: task %d content key: %v\n", t.ID, err)
			return out
		}
		out.Key = key
		if stream && cache != nil {
			if raw, ok := cache.RawRunOutput(key); ok {
				out.Artifact = raw
			} else {
				// Nothing persisted to stream (run cache disabled or
				// evicted already): the completion still counts, the
				// coordinator just recomputes this cell in-process.
				fmt.Fprintf(os.Stderr, "thesaurus worker: task %d: no artifact to stream (run cache off?)\n", t.ID)
			}
		}
		return out
	})
}

// resolveConnectAddr turns a -connect value into a dialable address,
// polling an @file until the coordinator publishes into it.
func resolveConnectAddr(connect string) (string, error) {
	if len(connect) == 0 {
		return "", errors.New("-connect requires an address")
	}
	if connect[0] != '@' {
		return connect, nil
	}
	path := connect[1:]
	deadline := time.Now().Add(30 * time.Second)
	for {
		data, err := os.ReadFile(path)
		if err == nil && len(data) > 0 {
			return string(data), nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = errors.New("file is empty")
			}
			return "", fmt.Errorf("-connect %s: %w", connect, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// distribute shards the design × profile matrix of the coming campaign
// across n worker processes draining a spool directory, each warming the
// shared artifact cache, then returns so the caller's normal (in-process)
// campaign runs against the warm cache. The report is therefore assembled
// by exactly the same code path as a serial run — byte-identity with
// serial execution holds by construction, and a lost or failed worker
// costs only recomputation in the final pass, never correctness.
func distribute(n int, exeArgs workerArgs, opt experiments.Options) error {
	if _, ok := harness.ArtifactStats(); !ok {
		return errors.New("-distribute requires the artifact cache (-no-cache is incompatible)")
	}
	spoolDir, err := os.MkdirTemp("", "thesaurus-spool-*")
	if err != nil {
		return fmt.Errorf("distribute: %w", err)
	}
	defer os.RemoveAll(spoolDir)

	tasks := campaignTasks(opt)
	if err := spool.Write(spoolDir, tasks); err != nil {
		return err
	}

	exited, err := spawnWorkers(n, append([]string{"-worker", "-spool", spoolDir}, exeArgs.flags()...))
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr, "distribute: %d tasks across %d workers (spool %s)\n",
		len(tasks), n, spoolDir)
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for running := n; running > 0; {
		select {
		case err := <-exited:
			running--
			if err != nil {
				// A dead worker is a warning, not a failure: its tasks stay
				// unclaimed (or un-done) and the final in-process pass
				// computes whatever the cache is missing.
				fmt.Fprintf(os.Stderr, "distribute: worker exited with error: %v\n", err)
			}
		case <-tick.C:
			if p, err := spool.Scan(spoolDir); err == nil {
				fmt.Fprintf(os.Stderr, "distribute: %d/%d done, %d working, %d failed\r",
					p.Done, len(tasks), p.Working, p.Failed)
			}
		}
	}
	p, err := spool.Scan(spoolDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "distribute: %d/%d done, %d failed\n", p.Done, len(tasks), p.Failed)
	if msgs, err := spool.Failures(spoolDir); err == nil {
		for _, m := range msgs {
			fmt.Fprintf(os.Stderr, "distribute: %s (will recompute in-process)\n", m)
		}
	}
	if s, workers, err := spool.ReadStats(spoolDir); err == nil {
		reportMergedStats(workers, s)
	}
	return nil
}

// spawnWorkers launches n copies of our own binary with args, returning
// a channel that receives each worker's exit status.
func spawnWorkers(n int, args []string) (<-chan error, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("distribute: resolve executable: %w", err)
	}
	exited := make(chan error, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, args...)
		// Workers write nothing the report needs: stdout would only ever
		// carry accidental prints, so both streams go to our stderr.
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("distribute: start worker: %w", err)
		}
		go func() { exited <- cmd.Wait() }()
	}
	return exited, nil
}

// workerArgs is the slice of our own flag state a spawned worker must
// inherit to address the same cache with the same semantics.
type workerArgs struct {
	cacheDir   string
	cacheMax   int64
	noRunCache bool
	verify     bool
}

// flags renders the inherited state as command-line arguments.
func (a workerArgs) flags() []string {
	args := []string{"-cache-dir", a.cacheDir}
	if a.cacheMax > 0 {
		args = append(args, "-cache-max-bytes", strconv.FormatInt(a.cacheMax, 10))
	}
	if a.noRunCache {
		args = append(args, "-no-run-cache")
	}
	if a.verify {
		args = append(args, "-cache-verify")
	}
	return args
}
