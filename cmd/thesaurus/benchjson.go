package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/artifact"
	"repro/internal/bdi"
	"repro/internal/bdicache"
	"repro/internal/diffenc"
	"repro/internal/harness"
	"repro/internal/line"
	"repro/internal/lsh"
	"repro/internal/memory"
	"repro/internal/netq"
	"repro/internal/thesaurus"
	"repro/internal/workq"
)

// benchSchema versions the BENCH_hotpath.json layout so downstream tooling
// can detect format changes. v2 adds the per-row Class field and splits
// the write path into an admission row (thesaurus_write_hit_*, the
// simulated critical path: the write buffer accepts the line) and a
// re-clustering row (thesaurus_write_reclust_*, the deferred re-encode
// that drains run off the critical path).
const benchSchema = "thesaurus-bench-hotpath/v2"

// Row classes. Tooling treats them differently: bench-diff gates the
// kernel and hot-path classes (a regression there fails the build), while
// lifecycle and artifact rows are recorded for trajectory only — their
// numbers legitimately move with pool warm-up and serialized-trace size.
const (
	// classKernel rows measure single compression/hash primitives on one
	// line; they have no cache state and are the most stable numbers.
	classKernel = "kernel"
	// classHotPath rows measure steady-state per-access costs that bound
	// simulated campaign throughput; contractually 0 allocs/op.
	classHotPath = "hot-path"
	// classLifecycle rows measure construct/release cycles (per sweep
	// point, not per access).
	classLifecycle = "lifecycle"
	// classArtifact rows measure the recording-cache codec (per campaign,
	// dominated by trace length).
	classArtifact = "artifact"
	// classTransport rows measure distribution-queue overheads (per task,
	// loopback TCP); scheduler-dependent, trajectory only.
	classTransport = "transport"
)

// benchEntry is one benchmark row of the machine-readable trajectory.
type benchEntry struct {
	// Name identifies the kernel or design-point path measured.
	Name string `json:"name"`
	// Class is the row's gating class (see the class constants).
	Class string `json:"class"`
	// NsPerOp is wall time per operation (one access for the hot paths).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per operation; the steady-state
	// access paths are contractually 0 (see allocs_test.go).
	AllocsPerOp int64 `json:"allocs_per_op"`
	// BytesPerOp is heap bytes allocated per operation.
	BytesPerOp int64 `json:"bytes_per_op"`
	// MBPerSec is line-payload throughput (64 B per access).
	MBPerSec float64 `json:"mb_per_s"`
	// Iterations is the measured iteration count (sanity signal).
	Iterations int `json:"iterations"`
}

// benchDoc is the top-level BENCH_hotpath.json document.
type benchDoc struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// benchLine builds the test line used across the hot-path benchmarks: a
// shared ramp with the index in the low bytes so lines cluster under LSH
// with small, stable diffs.
func benchLine(i int, v uint32) line.Line {
	var l line.Line
	for j := range l {
		l[j] = byte(j)
	}
	l[0] = byte(i)
	l[1] = byte(i >> 8)
	l[2] = byte(v)
	return l
}

const benchResidentLines = 512

// benchWriteLines precomputes the two alternating content versions for
// every resident address, so the timed write loops measure the cache and
// not line construction.
func benchWriteLines() []line.Line {
	lines := make([]line.Line, 2*benchResidentLines)
	for v := uint32(0); v < 2; v++ {
		for i := 0; i < benchResidentLines; i++ {
			lines[int(v)*benchResidentLines+i] = benchLine(i, v)
		}
	}
	return lines
}

// warmThesaurusCache builds a cache with a resident working set whose
// scratch buffers have converged (two write passes), so the measured loop
// is pure steady state.
func warmThesaurusCache(cfg thesaurus.Config) *thesaurus.Cache {
	c := thesaurus.MustNew(cfg, memory.NewStore())
	for v := uint32(0); v < 2; v++ {
		for i := 0; i < benchResidentLines; i++ {
			c.Write(line.Addr(i*line.Size), benchLine(i, v))
		}
	}
	return c
}

// measureBench runs the full hot-path benchmark suite and returns the
// rows, logging each to stderr as it lands.
func measureBench() ([]benchEntry, error) {
	var entries []benchEntry
	add := func(name, class string, bytesPerOp int64, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		mbps := 0.0
		if bytesPerOp > 0 && r.T.Seconds() > 0 {
			mbps = float64(bytesPerOp) * float64(r.N) / r.T.Seconds() / 1e6
		}
		entries = append(entries, benchEntry{
			Name:        name,
			Class:       class,
			NsPerOp:     nsPerOp,
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			MBPerSec:    mbps,
			Iterations:  r.N,
		})
		fmt.Fprintf(os.Stderr, "%-28s %10.1f ns/op %6d allocs/op %10.1f MB/s\n",
			name, nsPerOp, r.AllocsPerOp(), mbps)
	}

	// --- kernels ---
	add("lsh_fingerprint", classKernel, line.Size, func(b *testing.B) {
		h := lsh.MustNew(lsh.DefaultConfig())
		l := benchLine(7, 0)
		b.ReportAllocs()
		var sink lsh.Fingerprint
		for i := 0; i < b.N; i++ {
			sink ^= h.Fingerprint(&l)
		}
		_ = sink
	})
	add("diffenc_roundtrip", classKernel, line.Size, func(b *testing.B) {
		base := benchLine(3, 0)
		l := base
		l[5] += 9
		l[41] -= 3
		var enc diffenc.Encoded
		var out line.Line
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			diffenc.EncodeInto(&enc, &l, &base)
			if err := diffenc.DecodeInto(&out, &enc, &base); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("bdi_compress", classKernel, line.Size, func(b *testing.B) {
		l := benchLine(3, 0)
		var enc bdi.Encoded
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bdi.CompressInto(&enc, &l)
		}
	})

	// --- end-to-end access paths, per design point ---
	lines := benchWriteLines()
	designs := []struct {
		name string
		cfg  thesaurus.Config
	}{
		{"1mb", thesaurus.DefaultConfig()},
		{"2mb", thesaurus.ScaledConfig(2 << 20)},
	}
	for _, d := range designs {
		cfg := d.cfg
		add("thesaurus_read_hit_"+d.name, classHotPath, line.Size, func(b *testing.B) {
			c := warmThesaurusCache(cfg)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Read(line.Addr((i % benchResidentLines) * line.Size))
			}
		})
		// The write-hit row is the simulated critical path of a write: the
		// bounded write buffer accepts the line and answers hit/miss; the
		// re-encode runs later, at a drain. Drains here are forced through
		// an untimed observation (the stop/start window) just before the
		// buffer would fill, so the row prices exactly what the paper puts
		// on the store's critical path (§5.4.2, docs/performance.md). The
		// deferred work is priced by the write_reclust row below.
		add("thesaurus_write_hit_"+d.name, classHotPath, line.Size, func(b *testing.B) {
			c := warmThesaurusCache(cfg)
			depth := cfg.WriteBufferDepth
			pending := 0
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if pending == depth-1 {
					b.StopTimer()
					c.Extra() // observation drain, off the timed path
					b.StartTimer()
					pending = 0
				}
				n := i % benchResidentLines
				v := (i / benchResidentLines) & 1
				c.Write(line.Addr(n*line.Size), lines[v*benchResidentLines+n])
				pending++
			}
		})
		// Full re-clustering cost per write hit: unbuffered cache, so every
		// Write runs lookup, incremental re-fingerprint, re-encode, and
		// data-array re-placement inline. This is the drain-side cost the
		// write buffer defers (and the v1 schema's write_hit semantics).
		reclustCfg := cfg
		reclustCfg.WriteBufferDepth = 0
		add("thesaurus_write_reclust_"+d.name, classHotPath, line.Size, func(b *testing.B) {
			c := warmThesaurusCache(reclustCfg)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := i % benchResidentLines
				v := (i / benchResidentLines) & 1
				c.Write(line.Addr(n*line.Size), lines[v*benchResidentLines+n])
			}
		})
	}
	add("bdi_read_hit", classHotPath, line.Size, func(b *testing.B) {
		c := bdicache.MustNew(bdicache.DefaultConfig(), memory.NewStore())
		for i := 0; i < benchResidentLines; i++ {
			c.Write(line.Addr(i*line.Size), benchLine(i, 0))
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Read(line.Addr((i % benchResidentLines) * line.Size))
		}
	})

	// --- construction and release lifecycle ---
	// Sweeps and ablations build one cache per configuration point; with
	// the release lifecycle the base table comes back from the per-size
	// pool, so steady-state construction is an epoch bump instead of a
	// multi-megabyte make-and-zero.
	add("thesaurus_new_release", classLifecycle, 0, func(b *testing.B) {
		cfg := thesaurus.DefaultConfig()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := thesaurus.MustNew(cfg, memory.NewStore())
			c.Release()
		}
	})
	add("basetable_pooled_cycle_2p20", classHotPath, 0, func(b *testing.B) {
		mem := memory.NewStore()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := thesaurus.NewBaseTable(20, mem)
			t.Release()
		}
	})

	// --- artifact cache codec (warm-start path) ---
	// A warm campaign's recording cost is exactly one decode per profile,
	// so these two rows are the trajectory of the cold→warm gap.
	benchRec, err := harness.RecordProfile("mcf", 100_000)
	if err != nil {
		return nil, err
	}
	benchArtifact := artifact.Encode(nil, &artifact.File{Recorded: benchRec})
	add("artifact_encode_recorded", classArtifact, int64(len(benchArtifact)), func(b *testing.B) {
		buf := make([]byte, 0, len(benchArtifact))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = artifact.Encode(buf[:0], &artifact.File{Recorded: benchRec})
		}
	})
	add("artifact_load_recorded", classArtifact, int64(len(benchArtifact)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := artifact.Decode(benchArtifact); err != nil {
				b.Fatal(err)
			}
		}
	})

	// --- run-level cache codec ---
	// A warm campaign's cost per design×profile cell is one RunOutput
	// decode (docs/performance.md); these rows are that gap's trajectory.
	// The snapshot is tiny next to a recording, so the codec itself — not
	// payload size — dominates.
	runOpt := harness.DefaultRunOptions()
	runOpt.Accesses = 100_000
	benchRun, err := harness.Run("mcf", "Thesaurus", runOpt)
	if err != nil {
		return nil, err
	}
	runFile := &artifact.File{Run: &artifact.RunOutput{
		Res: benchRun.Res, Snap: benchRun.Snap, ClusterFracs: benchRun.ClusterFracs,
	}}
	benchRunArt := artifact.Encode(nil, runFile)
	add("artifact_encode_runoutput", classArtifact, int64(len(benchRunArt)), func(b *testing.B) {
		buf := make([]byte, 0, len(benchRunArt))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = artifact.Encode(buf[:0], runFile)
		}
	})
	add("artifact_load_runoutput", classArtifact, int64(len(benchRunArt)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := artifact.Decode(benchRunArt); err != nil {
				b.Fatal(err)
			}
		}
	})

	// --- netq transport (multi-host distribution) ---
	// One op is a full task round trip over loopback TCP: claim (request +
	// task reply), then result (key-only report + ack), including the
	// coordinator's lease bookkeeping. This bounds the per-cell queue
	// overhead of a -serve/-connect campaign; it must stay microseconds —
	// noise next to even a -quick cell's compute.
	add("netq_task_roundtrip", classTransport, 0, func(b *testing.B) {
		tasks := make([]workq.Task, b.N)
		for i := range tasks {
			tasks[i] = workq.Task{ID: i, Profile: "mcf", Design: "Baseline"}
		}
		srv, err := netq.NewServer("127.0.0.1:0", tasks, netq.ServerOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		cli, err := netq.Dial(srv.Addr(), netq.ClientOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t, ok, err := cli.Claim()
			if err != nil || !ok {
				b.Fatalf("claim %d: ok=%v err=%v", i, ok, err)
			}
			if err := cli.Finish(t, workq.Outcome{Key: "bench"}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
	})
	return entries, nil
}

// runBenchJSON measures the hot-path kernels and end-to-end access paths
// and writes the JSON document to path ("-" = stdout). The numbers are
// wall-clock measurements and naturally vary run to run; they are emitted
// to a separate artifact precisely so the deterministic report output
// stays byte-identical.
func runBenchJSON(path string) error {
	entries, err := measureBench()
	if err != nil {
		return err
	}
	doc := benchDoc{
		Schema:     benchSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: entries,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
