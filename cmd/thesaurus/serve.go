package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/artifact"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/netq"
	"repro/internal/workq"
)

// serveCampaign pre-warms the cache over the TCP work queue: it serves
// the campaign's design × profile matrix on addr, waits for workers
// (anywhere on the network; spawn > 0 additionally launches that many
// local worker processes pointed back at us), and returns once every
// task is terminal — or once no worker has been connected for grace, at
// which point it degrades exactly like the spool coordinator: the
// in-process campaign that follows recomputes whatever the cache is
// missing, so a transport failure costs redundant work, never
// correctness or report bytes.
func serveCampaign(addr, addrFile string, lease, grace time.Duration,
	spawn int, wa workerArgs, opt experiments.Options, cache *artifact.Cache) error {
	if cache == nil {
		return errors.New("-serve requires the artifact cache (-no-cache is incompatible)")
	}
	tasks := campaignTasks(opt)
	srv, err := netq.NewServer(addr, tasks, netq.ServerOptions{
		Lease:         lease,
		CacheDir:      cache.Dir(),
		StoreArtifact: cache.StoreRawRunOutput,
		// Streamed artifacts are stored under the key the coordinator
		// derives from its own task table — the worker-reported key is
		// untrusted input on an unauthenticated listener and is ignored.
		TaskKey: func(t workq.Task) (string, error) {
			return harness.DefaultRunContentKey(t.Profile, t.Design, taskRunOptions(t))
		},
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "serve: %d tasks on %s (lease %s)\n", len(tasks), srv.Addr(), lease)

	if addrFile != "" {
		if err := publishAddr(addrFile, srv.Addr()); err != nil {
			return err
		}
		defer os.Remove(addrFile)
	}

	if spawn > 0 {
		args := append([]string{"-worker", "-connect", srv.Addr()}, wa.flags()...)
		if _, err := spawnWorkers(spawn, args); err != nil {
			return err
		}
	}

	sum := srv.Wait(grace, func(p netq.Progress) {
		fmt.Fprintf(os.Stderr, "serve: %d/%d done, %d leased, %d pending, %d workers\r",
			p.Done, p.Total, p.Leased, p.Pending, p.Workers)
	})
	fmt.Fprintf(os.Stderr, "serve: %d/%d done, %d failed, %d requeued, %d workers over the run\n",
		sum.Done, sum.Total, sum.Failed, sum.Requeues, sum.WorkersEver)
	for _, m := range sum.Failures {
		fmt.Fprintf(os.Stderr, "serve: %s (will recompute in-process)\n", m)
	}
	if sum.Degraded {
		fmt.Fprintf(os.Stderr,
			"serve: no workers for %s with %d tasks outstanding — degrading to in-process recompute\n",
			grace, sum.Pending+sum.Leased)
	}
	reportMergedStats(sum.StatsWorkers, sum.Stats)
	return nil
}

// publishAddr writes the bound address for -connect @file workers,
// via temp + rename so a polling worker never reads a torn address.
func publishAddr(path, addr string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".addr-tmp-*")
	if err != nil {
		return fmt.Errorf("serve: publish address: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.WriteString(addr); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("serve: publish address: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: publish address: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("serve: publish address: %w", err)
	}
	return nil
}
