// Command thesaurus is the experiment harness: it regenerates every table
// and figure of the paper's evaluation from the simulator and the
// synthetic SPEC CPU 2017 profiles.
//
// Usage:
//
//	thesaurus [flags] <experiment> [experiment ...]
//
// Experiments: fig1 fig2 fig5 fig13 fig14 fig15 fig16 fig17 fig18 fig19
// fig20 table1 table2 table3 table4 summary ablate all
//
// Flags:
//
//	-n N          accesses per benchmark profile (default 2,000,000)
//	-profiles csv comma-separated profile subset (default: all 22)
//	-quick        reduced trace length for a fast smoke run
//	-workers N    bound experiment concurrency (0 = GOMAXPROCS, 1 = serial)
//	-json         emit one machine-readable JSON document instead of text reports
//	-benchjson f  run the hot-path benchmarks and write BENCH_hotpath.json to f
//	-cpuprofile f write a pprof CPU profile of the whole campaign to f
//	-memprofile f write a pprof heap profile at exit to f
//	-cache-dir d       on-disk artifact cache directory (default: user cache dir)
//	-cache-max-bytes N artifact cache byte budget, LRU-evicted (0 = unlimited)
//	-no-cache          disable the on-disk artifact cache
//	-no-run-cache      disable the run-level artifact layer (recordings still cached)
//	-cache-verify      debug: regenerate and deep-compare every artifact hit
//	-distribute N      shard the design×profile matrix across N worker processes
//	                   warming the shared cache before the in-process campaign
//	-serve host:port   serve the matrix as a TCP work queue (multi-host runs;
//	                   port 0 picks a free one, -addr-file publishes it)
//	-addr-file f       with -serve: write the bound address to f
//	-lease d           with -serve: task lease duration (default 2m)
//	-serve-grace d     with -serve: degrade to in-process recompute after this
//	                   long with no workers connected (default 15s)
//	-worker            worker mode: drain a work queue (-spool or -connect)
//	-spool d           work-queue directory for -worker (spool transport)
//	-connect a         coordinator host:port or @file for -worker (TCP transport)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/artifact"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/workload"
)

// setupArtifacts installs the on-disk artifact cache and returns it (nil
// when disabled) so the coordinator can hand the exact same cache to
// worker processes and the netq transports can read and store raw
// artifact bytes. The cache is an accelerator only, so any setup failure
// just disables it with a note on stderr — stdout (the report
// byte-identity surface) is never touched.
func setupArtifacts(dir string, maxBytes int64, disabled, verify bool) *artifact.Cache {
	if disabled {
		return nil
	}
	if dir == "" {
		base, err := os.UserCacheDir()
		if err != nil {
			fmt.Fprintln(os.Stderr, "thesaurus: artifact cache disabled:", err)
			return nil
		}
		dir = base + "/thesaurus/artifacts"
	}
	c, err := artifact.Open(dir, maxBytes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thesaurus: artifact cache disabled:", err)
		return nil
	}
	harness.UseArtifacts(c)
	harness.SetArtifactVerify(verify)
	return c
}

// reportArtifactStats summarizes cache activity on stderr (stderr so the
// deterministic reports stay byte-identical across cache modes).
func reportArtifactStats() {
	st, ok := harness.ArtifactStats()
	if !ok {
		return
	}
	fmt.Fprintf(os.Stderr,
		"artifact cache: %d hits, %d misses, %d stores, %d corrupt, %d evicted, %.1f MiB loaded, %.1f MiB stored\n",
		st.Hits, st.Misses, st.Stores, st.Corrupt, st.Evictions,
		float64(st.BytesLoaded)/(1<<20), float64(st.BytesStored)/(1<<20))
	if st.TouchFailures > 0 {
		fmt.Fprintf(os.Stderr,
			"artifact cache: %d LRU touch failure(s) — entries age as if idle; check cache-dir permissions\n",
			st.TouchFailures)
	}
}

func main() {
	n := flag.Int("n", harness.DefaultAccesses, "accesses per benchmark profile")
	profilesFlag := flag.String("profiles", "", "comma-separated profile subset")
	quick := flag.Bool("quick", false, "reduced trace length (smoke run)")
	workers := flag.Int("workers", 0, "experiment concurrency (0 = GOMAXPROCS, 1 = serial)")
	jsonOut := flag.Bool("json", false, "emit one JSON document instead of text reports")
	benchjson := flag.String("benchjson", "", "run hot-path benchmarks and write JSON to file (\"-\" = stdout)")
	benchdiff := flag.String("benchdiff", "", "re-measure hot-path benchmarks and fail on regression vs this baseline JSON")
	benchhistory := flag.String("benchhistory", "", "with -benchdiff: append the fresh measurement to this JSONL file")
	benchnote := flag.String("benchnote", "", "with -benchhistory: free-form context recorded with the measurement")
	cpuprofile := flag.String("cpuprofile", "", "write pprof CPU profile to file")
	memprofile := flag.String("memprofile", "", "write pprof heap profile to file")
	cacheDir := flag.String("cache-dir", "", "artifact cache directory (default: user cache dir)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "artifact cache byte budget, LRU-evicted (0 = unlimited)")
	noCache := flag.Bool("no-cache", false, "disable the on-disk artifact cache")
	noRunCache := flag.Bool("no-run-cache", false, "disable the run-level artifact layer (recordings still cached)")
	cacheVerify := flag.Bool("cache-verify", false, "debug: regenerate and deep-compare every artifact hit")
	distributeN := flag.Int("distribute", 0, "shard the design×profile matrix across N worker processes before the campaign")
	worker := flag.Bool("worker", false, "worker mode: drain a work queue (-spool or -connect)")
	spoolDir := flag.String("spool", "", "work-queue directory (worker mode, spool transport)")
	connect := flag.String("connect", "", "coordinator host:port, or @file naming a file holding it (worker mode, TCP transport)")
	serveAddr := flag.String("serve", "", "host:port to serve the campaign's TCP work queue on before the in-process campaign (port 0 picks one)")
	addrFile := flag.String("addr-file", "", "with -serve: publish the bound address to this file (for -connect @file)")
	leaseDur := flag.Duration("lease", 2*time.Minute, "with -serve: task lease duration (re-queued when a worker stops heartbeating)")
	serveGrace := flag.Duration("serve-grace", 15*time.Second, "with -serve: give up and recompute in-process after this long with no workers connected")
	flag.Parse()

	if *benchjson != "" {
		if err := runBenchJSON(*benchjson); err != nil {
			fail(err)
		}
		return
	}
	if *benchdiff != "" {
		if err := runBenchDiff(*benchdiff, *benchhistory, *benchnote); err != nil {
			fail(err)
		}
		return
	}

	cache := setupArtifacts(*cacheDir, *cacheMax, *noCache, *cacheVerify)
	harness.SetRunCache(!*noRunCache)

	if *worker {
		// Workers do not print their own cache stats: each transport
		// carries them back (spool stats file / netq goodbye frame) and
		// the coordinator prints one merged line instead of N interleaved.
		var err error
		switch {
		case *spoolDir != "" && *connect != "":
			err = fmt.Errorf("-worker takes -spool or -connect, not both")
		case *spoolDir != "":
			err = runWorkerSpool(*spoolDir)
		case *connect != "":
			err = runWorkerNet(*connect, cache)
		default:
			err = fmt.Errorf("-worker requires -spool or -connect")
		}
		if err != nil {
			fail(err)
		}
		return
	}
	defer reportArtifactStats()

	opt := experiments.Default()
	opt.Accesses = *n
	if *quick {
		opt = experiments.Quick()
	}
	opt.Workers = *workers
	if *profilesFlag != "" {
		opt.Profiles = strings.Split(*profilesFlag, ",")
		for _, p := range opt.Profiles {
			if _, err := workload.ProfileByName(p); err != nil {
				fail(err)
			}
		}
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: thesaurus [flags] <experiment> [...]")
		fmt.Fprintln(os.Stderr, "experiments: fig1 fig2 fig5 fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20")
		fmt.Fprintln(os.Stderr, "             table1 table2 table3 table4 summary ablate all")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = []string{"table1", "table2", "fig1", "fig2", "fig5", "fig13", "table3", "fig14",
			"table4", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "ablate"}
	}

	wa := workerArgs{
		cacheMax:   *cacheMax,
		noRunCache: *noRunCache,
		verify:     *cacheVerify,
	}
	if cache != nil {
		wa.cacheDir = cache.Dir()
	}
	switch {
	case *serveAddr != "":
		// Pre-warm the cache over the TCP work queue (workers connect from
		// anywhere; -distribute N additionally spawns N local ones); the
		// campaign below then assembles the report in-process from warm
		// artifacts, so its bytes are identical to a serial run by
		// construction.
		if err := serveCampaign(*serveAddr, *addrFile, *leaseDur, *serveGrace,
			*distributeN, wa, opt, cache); err != nil {
			fail(err)
		}
	case *distributeN > 0:
		// Same pre-warm over the spool directory: local worker processes
		// sharing our filesystem.
		if err := distribute(*distributeN, wa, opt); err != nil {
			fail(err)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *jsonOut {
		// One deterministic document for the whole campaign; the timing
		// footer is deliberately absent (wall-clock must not reach the
		// output the byte-identity contract covers).
		doc, err := experiments.CampaignJSON(args, opt)
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(doc)
		return
	}

	type timing struct {
		exp string
		d   time.Duration
	}
	var timings []timing
	campaign := time.Now()
	for _, exp := range args {
		t0 := time.Now()
		out, err := run(exp, opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(out)
		d := time.Since(t0)
		timings = append(timings, timing{exp, d})
		fmt.Printf("[%s completed in %.1fs]\n", exp, d.Seconds())
	}
	if len(timings) > 1 {
		fmt.Printf("\nCampaign timing (workers=%d, GOMAXPROCS=%d)\n", *workers, runtime.GOMAXPROCS(0))
		fmt.Println("==========================================")
		for _, t := range timings {
			fmt.Printf("%-10s %8.1fs\n", t.exp, t.d.Seconds())
		}
		fmt.Printf("%-10s %8.1fs\n", "total", time.Since(campaign).Seconds())
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
	}
}

func run(exp string, opt experiments.Options) (string, error) {
	switch exp {
	case "summary":
		r, err := experiments.Fig13(opt)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "\nHeadline comparison (geomeans over %d benchmarks)\n", len(r.Profiles))
		fmt.Fprintf(&b, "%-14s %12s %12s %12s\n", "design", "compression", "MPKI (S)", "IPC (S)")
		for _, d := range r.Designs {
			fmt.Fprintf(&b, "%-14s %11.2fx %12.3f %12.3f\n",
				d, r.GeomeanCR[d], r.GeomeanMPKIS[d], r.GeomeanIPCS[d])
		}
		return b.String(), nil
	case "table1":
		return experiments.Table1Report(), nil
	case "table2":
		return experiments.Table2Report(), nil
	case "table3":
		return experiments.Table3Report(), nil
	case "table4":
		return experiments.Table4Report(), nil
	case "fig1":
		r, err := experiments.Fig1(opt)
		return reportOf(r, err)
	case "fig2":
		r, err := experiments.Fig2("mcf", opt)
		return reportOf(r, err)
	case "fig5":
		r, err := experiments.Fig5(opt)
		return reportOf(r, err)
	case "fig13":
		r, err := experiments.Fig13(opt)
		return reportOf(r, err)
	case "fig14":
		r, err := experiments.Fig14(opt)
		return reportOf(r, err)
	case "fig15":
		r, err := experiments.Fig15(opt)
		return reportOf(r, err)
	case "fig16":
		r, err := experiments.Fig16(opt)
		return reportOf(r, err)
	case "fig17":
		r, err := experiments.Fig17(opt)
		return reportOf(r, err)
	case "fig18":
		r, err := experiments.Fig18(opt)
		return reportOf(r, err)
	case "fig19":
		o := opt
		o.Profiles = nil // Fig. 19 uses its own default selection
		if len(opt.Profiles) > 0 {
			o.Profiles = opt.Profiles
		}
		r, err := experiments.Fig19(o)
		return reportOf(r, err)
	case "fig20":
		r, err := experiments.Fig20(opt)
		return reportOf(r, err)
	case "ablate":
		var b strings.Builder
		for _, f := range []func(experiments.Options) (*experiments.AblationResult, error){
			experiments.AblateVictimCandidates,
			experiments.AblateLSHBits,
			experiments.AblateLSHSparsity,
			experiments.AblateAdaptive,
			experiments.AblateBaseCachePriority,
		} {
			r, err := f(opt)
			if err != nil {
				return "", err
			}
			b.WriteString(r.Report())
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("unknown experiment %q", exp)
	}
}

// reporter is any experiment result that renders itself.
type reporter interface{ Report() string }

func reportOf(r reporter, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Report(), nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "thesaurus:", err)
	os.Exit(1)
}
