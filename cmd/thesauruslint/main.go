// Command thesauruslint runs the repository's determinism and
// concurrency lint suite (internal/lint) over the module. It exists
// because the evaluation's trustworthiness rests on one invariant —
// serial and parallel campaigns render byte-identical reports — and
// that invariant is too easy to break silently with a stray time.Now,
// an unsorted map iteration, or a goroutine appending to shared state.
//
// Usage:
//
//	thesauruslint [flags] [./... | dir ...]
//
// Flags:
//
//	-json         emit machine-readable JSON on stdout (diagnostics, or
//	              the per-function escape report with -escapes)
//	-allow file   allowlist of audited exceptions (default: <module>/lint.allow if present)
//	-analyzers csv run only the named analyzers
//	-list         print the suite and exit
//	-fix          apply machine-applicable suggested fixes in place, then re-lint
//	-prune-allow  rewrite the allowlist dropping entries that suppress nothing
//	-escapes      check compiler-proven escapes on hot-path functions against the budget
//	-budget file  escape budget file (default <module>/alloc.budget)
//	-write-budget regenerate the escape budget from the current tree
//
// -escapes mode replaces the analyzer run: it scans for
// //thesaurus:hotpath functions, rebuilds their packages with
// -gcflags=-m, and diffs the compiler's escape diagnostics against the
// committed alloc.budget (see docs/static-analysis.md).
//
// Exit status: 0 when no unsuppressed findings (stale allowlist entries
// also fail), 1 on findings or budget drift, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit JSON diagnostics")
	allowFlag := flag.String("allow", "", "allowlist file (default <module>/lint.allow if present)")
	analyzersFlag := flag.String("analyzers", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list analyzers and exit")
	fix := flag.Bool("fix", false, "apply machine-applicable suggested fixes in place, then re-lint")
	pruneAllow := flag.Bool("prune-allow", false, "rewrite the allowlist dropping entries that suppress nothing")
	escapes := flag.Bool("escapes", false, "diff compiler-proven hot-path escapes against the budget")
	budgetFlag := flag.String("budget", "", "escape budget file (default <module>/alloc.budget)")
	writeBudget := flag.Bool("write-budget", false, "regenerate the escape budget from the current tree")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	moduleDir, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}

	if *escapes || *writeBudget {
		budgetPath := *budgetFlag
		if budgetPath == "" {
			budgetPath = filepath.Join(moduleDir, "alloc.budget")
		}
		runEscapes(moduleDir, budgetPath, *writeBudget, *jsonOut)
		return
	}

	runner, err := lint.NewRunner(moduleDir)
	if err != nil {
		fatal(err)
	}
	if *analyzersFlag != "" {
		runner.Analyzers = nil
		for _, name := range strings.Split(*analyzersFlag, ",") {
			a, err := lint.AnalyzerByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			runner.Analyzers = append(runner.Analyzers, a)
		}
	}

	allowPath := *allowFlag
	if allowPath == "" {
		candidate := filepath.Join(moduleDir, "lint.allow")
		if _, err := os.Stat(candidate); err == nil {
			allowPath = candidate
		}
	}
	if allowPath != "" {
		al, err := lint.ParseAllowlist(allowPath)
		if err != nil {
			fatal(err)
		}
		runner.Allow = al
	}

	dirs, err := targetDirs(moduleDir, cwd, flag.Args())
	if err != nil {
		fatal(err)
	}
	diags, err := runner.CheckDirs(dirs)
	if err != nil {
		fatal(err)
	}

	if *fix {
		fixed, err := lint.ApplyFixes(moduleDir, diags)
		if err != nil {
			fatal(err)
		}
		for _, f := range fixed {
			fmt.Fprintf(os.Stderr, "thesauruslint: rewrote %s\n", f)
		}
		// Re-lint the rewritten sources with a fresh loader so the
		// remaining diagnostics (and exit status) describe what is still
		// wrong, not what was just fixed.
		runner, err = lint.NewRunner(moduleDir)
		if err != nil {
			fatal(err)
		}
		if *analyzersFlag != "" {
			runner.Analyzers = nil
			for _, name := range strings.Split(*analyzersFlag, ",") {
				a, err := lint.AnalyzerByName(strings.TrimSpace(name))
				if err != nil {
					fatal(err)
				}
				runner.Analyzers = append(runner.Analyzers, a)
			}
		}
		if allowPath != "" {
			al, err := lint.ParseAllowlist(allowPath)
			if err != nil {
				fatal(err)
			}
			runner.Allow = al
		}
		diags, err = runner.CheckDirs(dirs)
		if err != nil {
			fatal(err)
		}
	}

	var stale []*lint.AllowEntry
	if runner.Allow != nil {
		stale = runner.Allow.Stale()
	}
	if *pruneAllow {
		if runner.Allow == nil {
			fatal(fmt.Errorf("-prune-allow: no allowlist file to prune"))
		}
		removed, err := runner.Allow.Prune()
		if err != nil {
			fatal(err)
		}
		for _, e := range removed {
			fmt.Fprintf(os.Stderr, "thesauruslint: pruned stale allowlist entry (%s %s)\n", e.Analyzer, e.File)
		}
		stale = nil
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			fmt.Println(d)
		}
	}

	failures := 0
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
		} else {
			failures++
		}
	}
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "%s:%d: stale allowlist entry (%s %s) suppresses nothing; delete it\n",
			runner.Allow.Source, e.Line, e.Analyzer, e.File)
	}
	if failures > 0 || len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "thesauruslint: %d finding(s), %d allowlisted, %d stale allowlist entrie(s)\n",
			failures, suppressed, len(stale))
		os.Exit(1)
	}
	if !*jsonOut && suppressed > 0 {
		fmt.Fprintf(os.Stderr, "thesauruslint: clean (%d audited exception(s) allowlisted)\n", suppressed)
	}
}

// targetDirs resolves CLI arguments to package directories: no args or
// "./..." means every package in the module; other arguments name
// directories (relative to the working directory).
func targetDirs(moduleDir, cwd string, args []string) ([]string, error) {
	if len(args) == 0 {
		return lint.ModuleDirs(moduleDir)
	}
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			all, err := lint.ModuleDirs(moduleDir)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, all...)
			continue
		}
		if strings.HasSuffix(a, "/...") {
			sub, err := lint.ModuleDirs(filepath.Join(cwd, strings.TrimSuffix(a, "/...")))
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, sub...)
			continue
		}
		dirs = append(dirs, filepath.Join(cwd, a))
	}
	return dirs, nil
}

// runEscapes is -escapes/-write-budget mode: scan for hot-path pragmas,
// ask the compiler which sites escape, and diff (or regenerate) the
// committed budget. With jsonOut, the per-function report goes to stdout
// as JSON (lint.EscapeRow) and the human-readable failures stay on
// stderr; the exit status is the same either way.
func runEscapes(moduleDir, budgetPath string, write, jsonOut bool) {
	funcs, err := lint.ScanHotFuncs(moduleDir)
	if err != nil {
		fatal(err)
	}
	sites, err := lint.CollectEscapes(moduleDir, lint.HotPackageDirs(funcs))
	if err != nil {
		fatal(err)
	}
	attributed := lint.AttributeEscapes(funcs, sites)
	if write {
		if err := os.WriteFile(budgetPath, lint.FormatBudget(attributed), 0o644); err != nil {
			fatal(err)
		}
		total := 0
		for _, s := range attributed {
			total += len(s)
		}
		fmt.Fprintf(os.Stderr, "thesauruslint: wrote %s (%d hot function(s), %d escape site(s))\n",
			budgetPath, len(attributed), total)
		return
	}
	budget, err := lint.ParseBudget(budgetPath)
	if err != nil {
		fatal(fmt.Errorf("%v (run `thesauruslint -escapes -write-budget` to create)", err))
	}
	if jsonOut {
		rows := lint.BuildEscapeReport(funcs, attributed, budget)
		if rows == nil {
			rows = []lint.EscapeRow{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fatal(err)
		}
	}
	failures := lint.DiffBudget(budget, attributed)
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "thesauruslint:", f)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "thesauruslint: escape budget: %d failure(s)\n", len(failures))
		os.Exit(1)
	}
	budgeted := 0
	for _, n := range budget {
		budgeted += n
	}
	fmt.Fprintf(os.Stderr, "thesauruslint: escape budget ok (%d hot function(s), %d budgeted escape site(s))\n",
		len(budget), budgeted)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "thesauruslint:", err)
	os.Exit(2)
}
