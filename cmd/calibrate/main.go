// Command calibrate runs a quick per-profile sweep across every LLC
// design and prints the raw compression / MPKI / IPC numbers plus the
// Thesaurus-internal statistics. It exists to tune the workload profiles
// against the paper's published per-benchmark anchors and is kept in the
// repository so the calibration recorded in EXPERIMENTS.md is
// reproducible.
//
// Usage: calibrate [-n accesses] [profile ...]   (default: all profiles)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/artifact"
	"repro/internal/harness"
	"repro/internal/scheme"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 600_000, "accesses per profile")
	designs := flag.String("designs", "", "comma-separated design subset (default all)")
	cacheDir := flag.String("cache-dir", "", "artifact cache directory (default: user cache dir)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "artifact cache byte budget, LRU-evicted (0 = unlimited)")
	noCache := flag.Bool("no-cache", false, "disable the on-disk artifact cache")
	flag.Parse()

	if !*noCache {
		dir := *cacheDir
		if dir == "" {
			if base, err := os.UserCacheDir(); err == nil {
				dir = base + "/thesaurus/artifacts"
			}
		}
		if dir != "" {
			if c, err := artifact.Open(dir, *cacheMax); err == nil {
				harness.UseArtifacts(c)
			} else {
				fmt.Fprintln(os.Stderr, "calibrate: artifact cache disabled:", err)
			}
		}
	}

	profiles := flag.Args()
	if len(profiles) == 0 {
		profiles = workload.Names()
	}
	ds := harness.Designs
	if *designs != "" {
		ds = splitComma(*designs)
	}

	opt := harness.DefaultRunOptions()
	opt.Accesses = *n
	for _, p := range profiles {
		t0 := time.Now()
		rec, err := harness.RecordProfile(p, opt.Accesses)
		if err != nil {
			fmt.Fprintln(os.Stderr, "record:", err)
			os.Exit(1)
		}
		fmt.Printf("== %-12s events=%d instr=%d apki=%.2f (rec %.1fs)\n",
			p, len(rec.Events), rec.Instructions, rec.LLCAPKI(), time.Since(t0).Seconds())
		for _, d := range ds {
			t1 := time.Now()
			res, snap, err := harness.RunDesign(p, d, opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "run:", err)
				os.Exit(1)
			}
			extra := ""
			if s, ok := scheme.Lookup(d); ok && s.Summary != nil && snap.Extra != nil {
				extra = s.Summary(snap.Extra)
			}
			fmt.Printf("  %-12s CR=%5.2f occ=%.3f MPKI=%7.3f IPC=%.3f hit=%8d miss=%8d (%4.1fs)%s\n",
				d, res.CompressionRatio, res.Occupancy, res.MPKI, res.IPC,
				res.LLCStats.ReadHits, res.LLCStats.ReadMisses(), time.Since(t1).Seconds(), extra)
		}
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
