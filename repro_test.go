package repro_test

import (
	"testing"

	"repro"
)

// TestPublicAPIQuickstart exercises the facade end-to-end the way the
// README's quick start does.
func TestPublicAPIQuickstart(t *testing.T) {
	mem := repro.NewMemory()
	cache := repro.MustNewCache(repro.DefaultConfig(), mem)

	var proto repro.Line
	for i := range proto {
		proto[i] = byte(i*3 + 1)
	}
	for i := 0; i < 256; i++ {
		l := proto
		l[4] = byte(i)
		mem.Poke(repro.Addr(i*repro.LineSize), l)
	}
	for i := 0; i < 256; i++ {
		addr := repro.Addr(i * repro.LineSize)
		got, _ := cache.Read(addr)
		if got != mem.Peek(addr) {
			t.Fatalf("read mismatch at %#x", uint64(addr))
		}
	}
	fp := cache.Footprint()
	if fp.ResidentLines != 256 {
		t.Fatalf("resident %d", fp.ResidentLines)
	}
	if fp.CompressionRatio() < 2 {
		t.Fatalf("near-duplicates compressed only %.2fx", fp.CompressionRatio())
	}
}

func TestPublicAPILSHAndEncodings(t *testing.T) {
	h, err := repro.NewLSH(repro.DefaultLSHConfig())
	if err != nil {
		t.Fatal(err)
	}
	var a repro.Line
	for i := range a {
		a[i] = byte(i)
	}
	b := a
	b[9] ^= 2
	if h.Fingerprint(&a) != h.Fingerprint(&b) {
		t.Skip("rare fingerprint split for a 1-byte nudge")
	}
	enc := repro.Encode(&b, &a)
	if enc.Format != repro.FormatBaseDiff {
		t.Fatalf("format %v", enc.Format)
	}
	back, err := repro.Decode(enc, &a)
	if err != nil || back != b {
		t.Fatal("round trip")
	}
	if e := repro.CompressBDI(&repro.Line{}); e.SizeBytes() != 1 {
		t.Fatalf("BΔI zero line %d bytes", e.SizeBytes())
	}
	if repro.DiffBytes(&a, &b) != 1 {
		t.Fatal("DiffBytes")
	}
}

func TestPublicAPISimulation(t *testing.T) {
	p, err := repro.ProfileByName("exchange2")
	if err != nil {
		t.Fatal(err)
	}
	gen := p.Generate(40_000)
	sys := repro.DefaultSystem()
	rec := repro.Record(gen.Stream, sys, gen.Image)

	for _, build := range []func(*repro.Memory) (repro.LLC, error){
		func(m *repro.Memory) (repro.LLC, error) { return repro.NewConventional("conv", 1<<20, m), nil },
		repro.NewBDICache,
		repro.NewDedupCache,
		func(m *repro.Memory) (repro.LLC, error) { return repro.NewCache(repro.DefaultConfig(), m) },
		func(m *repro.Memory) (repro.LLC, error) { return repro.NewIdealCache(m), nil },
	} {
		mem := repro.NewMemory()
		c, err := build(mem)
		if err != nil {
			t.Fatal(err)
		}
		res, err := repro.Replay(c, rec, mem, sys, repro.ReplayOptions{
			WarmupFraction: 0.25, SampleEvery: 512, Verify: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if res.IPC <= 0 {
			t.Fatalf("%s: IPC %v", c.Name(), res.IPC)
		}
	}
}

func TestProfilesComplete(t *testing.T) {
	if n := len(repro.Profiles()); n != 22 {
		t.Fatalf("%d profiles", n)
	}
}
