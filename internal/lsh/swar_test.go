package lsh

import (
	"math/bits"
	"testing"

	"repro/internal/line"
	"repro/internal/xrand"
)

// refHasher is an independent scalar reference: it re-derives the tap
// draw from the same rng sequence as New and evaluates every row with
// the plain per-byte loop, with no word programs and no tap reordering.
type refHasher struct {
	bits  int
	plus  [][]uint8
	minus [][]uint8
}

func newRefHasher(cfg Config) *refHasher {
	rng := xrand.New(cfg.Seed)
	r := &refHasher{bits: cfg.Bits}
	for i := 0; i < cfg.Bits; i++ {
		perm := rng.Perm(line.Size)
		var plus, minus []uint8
		for j := 0; j < cfg.NonZeros; j++ {
			col := uint8(perm[j])
			if rng.Bool(0.5) {
				plus = append(plus, col)
			} else {
				minus = append(minus, col)
			}
		}
		r.plus = append(r.plus, plus)
		r.minus = append(r.minus, minus)
	}
	return r
}

func (r *refHasher) rowSum(i int, l *line.Line) int {
	sum := 0
	for _, t := range r.plus[i] {
		sum += int(int8(l[t]))
	}
	for _, t := range r.minus[i] {
		sum -= int(int8(l[t]))
	}
	return sum
}

func (r *refHasher) fingerprint(l *line.Line) Fingerprint {
	var fp Fingerprint
	for i := 0; i < r.bits; i++ {
		if r.rowSum(i, l) > 0 {
			fp |= 1 << uint(i)
		}
	}
	return fp
}

var swarConfigs = []Config{
	DefaultConfig(),
	{Bits: 24, NonZeros: 32, Seed: 7},
	{Bits: 12, NonZeros: 64, Seed: 9},
	{Bits: 8, NonZeros: 16, Seed: 5},
	{Bits: 1, NonZeros: 4, Seed: 11},
}

func randLine(rng *xrand.Rand) line.Line {
	var l line.Line
	for w := 0; w < line.WordsPerLine; w++ {
		l.SetWord(w, rng.Uint64())
	}
	return l
}

func TestWordProgramMatchesScalarReference(t *testing.T) {
	for _, cfg := range swarConfigs {
		h := MustNew(cfg)
		ref := newRefHasher(cfg)
		rng := xrand.New(0xabcd ^ uint64(cfg.Bits)<<8 ^ uint64(cfg.NonZeros))
		for trial := 0; trial < 500; trial++ {
			l := randLine(rng)
			if got, want := h.Fingerprint(&l), ref.fingerprint(&l); got != want {
				t.Fatalf("cfg %+v trial %d: Fingerprint %#x, reference %#x", cfg, trial, got, want)
			}
			sums := h.AppendProject(nil, &l)
			for i, s := range sums {
				if want := ref.rowSum(i, &l); s != want {
					t.Fatalf("cfg %+v trial %d row %d: sum %d, reference %d", cfg, trial, i, s, want)
				}
			}
		}
	}
}

func TestDenseConfigUsesWordPrograms(t *testing.T) {
	h := MustNew(Config{Bits: 12, NonZeros: 64, Seed: 9})
	for i := range h.rows {
		if len(h.rows[i].words) != line.WordsPerLine {
			t.Fatalf("row %d of the 64-tap config has %d word programs, want %d",
				i, len(h.rows[i].words), line.WordsPerLine)
		}
		if len(h.rows[i].plus) != 0 || len(h.rows[i].minus) != 0 {
			t.Fatalf("row %d of the 64-tap config retains scalar taps", i)
		}
	}
	d := MustNew(DefaultConfig())
	for i := range d.rows {
		if np, nm := len(d.rows[i].plus), len(d.rows[i].minus); np+nm == 0 && len(d.rows[i].words) == 0 {
			t.Fatalf("default-config row %d lost all its taps", i)
		}
	}
}

func TestMaskedSignedByteSum(t *testing.T) {
	rng := xrand.New(0x5157)
	for trial := 0; trial < 5000; trial++ {
		w := rng.Uint64()
		var mask uint64
		for b := 0; b < 8; b++ {
			if rng.Bool(0.5) {
				mask |= uint64(0xFF) << uint(8*b)
			}
		}
		want := 0
		for b := 0; b < 8; b++ {
			if mask>>(8*uint(b))&0xFF != 0 {
				want += int(int8(byte(w >> (8 * uint(b)))))
			}
		}
		if got := maskedSignedByteSum(w, mask); got != want {
			t.Fatalf("trial %d: maskedSignedByteSum(%#x, %#x) = %d, want %d", trial, w, mask, got, want)
		}
	}
}

func TestFingerprintDelta(t *testing.T) {
	for _, cfg := range swarConfigs {
		h := MustNew(cfg)
		rng := xrand.New(0xde17a ^ uint64(cfg.Bits))
		for trial := 0; trial < 500; trial++ {
			old := randLine(rng)
			cur := old
			n := rng.Intn(9) // 0..8 changed bytes
			for j := 0; j < n; j++ {
				cur[rng.Intn(line.Size)] ^= byte(1 + rng.Intn(255))
			}
			mask := line.DiffMask(&cur, &old)
			// The contract allows extra set bits; exercise that too.
			if rng.Bool(0.25) {
				mask |= rng.Uint64()
			}
			got := h.FingerprintDelta(h.Fingerprint(&old), &cur, mask)
			if want := h.Fingerprint(&cur); got != want {
				t.Fatalf("cfg %+v trial %d: FingerprintDelta %#x, want %#x (changed %d bytes, mask %#x, rows %d)",
					cfg, trial, got, want, n, mask, bits.OnesCount64(mask))
			}
		}
	}
}

func BenchmarkFingerprintDense(b *testing.B) {
	h := MustNew(Config{Bits: 12, NonZeros: 64, Seed: 9})
	l := randLine(xrand.New(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkFP = h.Fingerprint(&l)
	}
}

func BenchmarkFingerprintDelta(b *testing.B) {
	h := MustNew(DefaultConfig())
	rng := xrand.New(2)
	old := randLine(rng)
	cur := old
	cur[17] ^= 0x40
	cur[18] ^= 0x01
	mask := line.DiffMask(&cur, &old)
	fp := h.Fingerprint(&old)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkFP = h.FingerprintDelta(fp, &cur, mask)
	}
}

var sinkFP Fingerprint
