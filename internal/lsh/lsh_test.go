package lsh

import (
	"testing"
	"testing/quick"

	"repro/internal/line"
	"repro/internal/xrand"
)

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{Bits: 12, NonZeros: 6}, true},
		{Config{Bits: 1, NonZeros: 1}, true},
		{Config{Bits: 24, NonZeros: 64}, true},
		{Config{Bits: 0, NonZeros: 6}, false},
		{Config{Bits: 25, NonZeros: 6}, false},
		{Config{Bits: 12, NonZeros: 0}, false},
		{Config{Bits: 12, NonZeros: 65}, false},
	}
	for _, c := range cases {
		_, err := New(c.cfg)
		if (err == nil) != c.ok {
			t.Errorf("New(%+v): err=%v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestDeterministicFingerprints(t *testing.T) {
	h1 := MustNew(DefaultConfig())
	h2 := MustNew(DefaultConfig())
	if err := quick.Check(func(l line.Line) bool {
		return h1.Fingerprint(&l) == h2.Fingerprint(&l)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintWithinBits(t *testing.T) {
	for _, bits := range []int{1, 8, 12, 24} {
		h := MustNew(Config{Bits: bits, NonZeros: 6, Seed: 1})
		limit := Fingerprint(1) << uint(bits)
		if err := quick.Check(func(l line.Line) bool {
			return h.Fingerprint(&l) < limit
		}, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
	}
}

func TestDifferentSeedsDifferentMatrices(t *testing.T) {
	a := MustNew(Config{Bits: 12, NonZeros: 6, Seed: 1})
	b := MustNew(Config{Bits: 12, NonZeros: 6, Seed: 2})
	rng := xrand.New(3)
	diff := 0
	for i := 0; i < 200; i++ {
		var l line.Line
		for j := range l {
			l[j] = byte(rng.Uint32())
		}
		if a.Fingerprint(&l) != b.Fingerprint(&l) {
			diff++
		}
	}
	if diff < 150 {
		t.Fatalf("different seeds agreed too often: %d/200 differ", diff)
	}
}

// TestLocalityProperty is the core LSH guarantee (§4.1): collision
// probability decreases monotonically (within noise) as distance grows,
// and is high for small distances.
func TestLocalityProperty(t *testing.T) {
	h := MustNew(DefaultConfig())
	const trials = 3000
	p1 := h.CollisionRate(1, trials, 7)
	p4 := h.CollisionRate(4, trials, 7)
	p16 := h.CollisionRate(16, trials, 7)
	p64 := h.CollisionRate(64, trials, 7)
	if p1 < 0.75 {
		t.Errorf("P(collision | 1 byte diff) = %.3f, want > 0.75", p1)
	}
	if !(p1 > p4 && p4 > p16 && p16 > p64) {
		t.Errorf("collision rates not monotone: %v %v %v %v", p1, p4, p16, p64)
	}
	if p64 > 0.15 {
		t.Errorf("P(collision | 64 byte diff) = %.3f, want small", p64)
	}
}

func TestProjectMatchesFingerprint(t *testing.T) {
	h := MustNew(DefaultConfig())
	if err := quick.Check(func(l line.Line) bool {
		proj := h.Project(&l)
		fp := h.Fingerprint(&l)
		for i, v := range proj {
			bit := fp&(1<<uint(i)) != 0
			if bit != (v > 0) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroLineFingerprint(t *testing.T) {
	h := MustNew(DefaultConfig())
	// All projections of the zero line are 0 (not > 0) → fingerprint 0.
	if fp := h.Fingerprint(&line.Zero); fp != 0 {
		t.Fatalf("zero line fingerprint = %#x", fp)
	}
}

func TestNumFingerprints(t *testing.T) {
	h := MustNew(Config{Bits: 10, NonZeros: 4, Seed: 1})
	if h.NumFingerprints() != 1024 {
		t.Fatalf("NumFingerprints = %d", h.NumFingerprints())
	}
}

func TestHammingFP(t *testing.T) {
	h := MustNew(Config{Bits: 12, NonZeros: 6, Seed: 1})
	if d := h.HammingFP(0xFFF, 0x000); d != 12 {
		t.Fatalf("HammingFP full = %d", d)
	}
	if d := h.HammingFP(0xA, 0x8); d != 1 {
		t.Fatalf("HammingFP = %d, want 1", d)
	}
	// Bits above the configured width are masked off.
	if d := h.HammingFP(0xFF000, 0); d != 0 {
		t.Fatalf("HammingFP ignored mask: %d", d)
	}
}

func TestCostModel(t *testing.T) {
	h := MustNew(Config{Bits: 12, NonZeros: 6, Seed: 1})
	c := h.Cost()
	if c.Adders != 5*12 || c.Comparators != 12 {
		t.Fatalf("cost = %+v", c)
	}
	if c.LatencyCycles < 1 {
		t.Fatal("non-positive latency")
	}
	deep := MustNew(Config{Bits: 12, NonZeros: 32, Seed: 1})
	if deep.Cost().LatencyCycles <= c.LatencyCycles {
		t.Fatal("deeper adder tree should cost more pipeline stages")
	}
}

func TestCollisionRateBounds(t *testing.T) {
	h := MustNew(DefaultConfig())
	if r := h.CollisionRate(0, 100, 1); r != 1.0 {
		t.Fatalf("identical lines collide with rate %v", r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CollisionRate(-1) did not panic")
		}
	}()
	h.CollisionRate(-1, 10, 1)
}

func BenchmarkFingerprint(b *testing.B) {
	h := MustNew(DefaultConfig())
	var l line.Line
	for i := range l {
		l[i] = byte(i * 31)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Fingerprint(&l)
	}
}

func TestBitBiasAndEntropy(t *testing.T) {
	h := MustNew(DefaultConfig())
	rng := xrand.New(123)
	var lines []line.Line
	for i := 0; i < 2000; i++ {
		var l line.Line
		for w := 0; w < line.WordsPerLine; w++ {
			l.SetWord(w, rng.Uint64())
		}
		lines = append(lines, l)
	}
	bias := h.BitBias(lines)
	if len(bias) != h.Bits() {
		t.Fatalf("bias length %d", len(bias))
	}
	for b, p := range bias {
		// Random content with centered inputs: every bit near balanced.
		if p < 0.3 || p > 0.7 {
			t.Fatalf("bit %d biased to %.3f on random content", b, p)
		}
	}
	ent := h.EffectiveEntropy(lines)
	if ent < float64(h.Bits())-1 {
		t.Fatalf("effective entropy %.2f of %d bits", ent, h.Bits())
	}
	// Constant content: zero entropy.
	constLines := []line.Line{lines[0], lines[0], lines[0]}
	if e := h.EffectiveEntropy(constLines); e != 0 {
		t.Fatalf("constant content entropy %.2f", e)
	}
	if h.EffectiveEntropy(nil) != 0 {
		t.Fatal("empty entropy")
	}
}
