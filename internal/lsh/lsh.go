// Package lsh implements the hardware-friendly locality-sensitive hashing
// scheme of Thesaurus (§4): a sparse random projection with entries drawn
// from {-1, 0, +1} followed by sign quantization of each projected
// component. Cachelines whose byte values are close in l1 distance receive
// the same fingerprint with high probability; the fingerprint is the
// cluster ID used by the compressed cache.
//
// The projection is "very sparse" in the sense of Li, Hastie & Church
// (KDD 2006): only a handful of non-zero coefficients per row, so the
// hardware realization is an adder tree and a comparator per row (Fig. 6,
// right) rather than a multiplier array.
package lsh

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/line"
	"repro/internal/xrand"
)

// Fingerprint is an LSH cluster ID: the low Config.Bits bits are valid.
type Fingerprint uint32

// MaxBits is the widest supported fingerprint. The paper sweeps 8-24 bits
// and settles on 12 (§6.1).
const MaxBits = 24

// DefaultBits is the fingerprint width used in the paper's evaluation.
const DefaultBits = 12

// DefaultNonZeros is the number of non-zero projection coefficients per
// row. Following the very-sparse-projection result, log2(d) non-zeros for
// d = 64 dimensions preserves locality at negligible accuracy loss.
const DefaultNonZeros = 6

// Config parameterizes a Hasher.
type Config struct {
	// Bits is the fingerprint width (number of hash functions / matrix
	// rows). Must be in [1, MaxBits].
	Bits int
	// NonZeros is the count of non-zero coefficients per row. Must be in
	// [1, line.Size].
	NonZeros int
	// Seed determines the random projection matrix.
	Seed uint64
}

// DefaultConfig returns the configuration used in the paper's main
// evaluation: 12-bit fingerprints with 6 non-zeros per row.
func DefaultConfig() Config {
	return Config{Bits: DefaultBits, NonZeros: DefaultNonZeros, Seed: 0x7e5a0305}
}

// Validate reports whether cfg is usable.
func (cfg Config) Validate() error {
	if cfg.Bits < 1 || cfg.Bits > MaxBits {
		return fmt.Errorf("lsh: Bits must be in [1,%d], got %d", MaxBits, cfg.Bits)
	}
	if cfg.NonZeros < 1 || cfg.NonZeros > line.Size {
		return fmt.Errorf("lsh: NonZeros must be in [1,%d], got %d", line.Size, cfg.NonZeros)
	}
	return nil
}

// Hasher computes LSH fingerprints of cachelines. It is safe for
// concurrent use after construction (all state is read-only).
//
// The projection matrix is stored flat: row r occupies
// taps[r*NonZeros : (r+1)*NonZeros], with the row's +1 taps first and its
// -1 taps after. One contiguous backing array instead of per-row tap
// allocations keeps the whole matrix (Bits×NonZeros = 72 bytes at the
// default configuration) in two cache lines; rows[] holds pre-sliced
// views into it so each row is a single accumulator pass of two tight
// range loops (adds, then subtracts) with no sign multiplies. Reordering
// taps within a row is sound: the row sum is an integer addition, which
// commutes.
type Hasher struct {
	cfg  Config
	taps []uint8
	rows []rowView
	// rowsByByte[b] has bit r set iff row r taps byte b: the inverse index
	// that lets FingerprintDelta map changed byte positions to the rows
	// that must be re-projected. MaxBits ≤ 32 keeps it in a uint32.
	rowsByByte [line.Size]uint32
}

// rowView is one projection row: views into the flat tap array for the
// +1 and -1 coefficient positions, plus optional SWAR word programs for
// the words of the line that carry wordOpMinTaps or more taps. Dense rows
// (ablation configurations with tens of non-zeros) collapse several
// per-byte adds into one masked 8-byte sum; the paper's sparse default
// (6 taps over 8 words) stays on the scalar path.
type rowView struct {
	plus, minus []uint8
	words       []wordOp
}

// wordOp is one SWAR step of a row program: a masked signed byte sum over
// one 8-byte word of the line. The masks hold 0xFF in each selected
// byte lane.
type wordOp struct {
	word      uint8
	plusMask  uint64
	minusMask uint64
}

// wordOpMinTaps is the tap density at which a word is worth a SWAR step:
// below four taps the scalar byte loads win (one load+add per tap versus
// one load plus ~a dozen ALU ops for the masked fold).
const wordOpMinTaps = 4

// New builds a Hasher from cfg. The projection matrix is derived
// deterministically from cfg.Seed.
func New(cfg Config) (*Hasher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	h := &Hasher{
		cfg:  cfg,
		taps: make([]uint8, cfg.Bits*cfg.NonZeros),
		rows: make([]rowView, cfg.Bits),
	}
	for i := 0; i < cfg.Bits; i++ {
		perm := rng.Perm(line.Size)
		row := h.taps[i*cfg.NonZeros : (i+1)*cfg.NonZeros]
		np, nm := 0, 0
		for j := 0; j < cfg.NonZeros; j++ {
			col := uint8(perm[j])
			h.rowsByByte[col] |= 1 << uint(i)
			if rng.Bool(0.5) {
				row[np] = col
				np++
			} else {
				nm++
				row[len(row)-nm] = col
			}
		}
		h.rows[i] = buildRow(row, np)
	}
	return h, nil
}

// buildRow partitions one drawn row (np +1 taps at the front, -1 taps at
// the back) into SWAR word programs for dense words and residual scalar
// taps, repacking the scalar taps into the same flat storage plus-first.
// Reordering taps within a row is sound: the row sum is an integer
// addition, which commutes. The rng draw sequence is untouched, so
// fingerprints are bit-identical to the scalar construction.
func buildRow(row []uint8, np int) rowView {
	var perWord [line.WordsPerLine]int
	for _, t := range row {
		perWord[int(t)/8]++
	}
	dense := false
	for _, n := range perWord {
		if n >= wordOpMinTaps {
			dense = true
			break
		}
	}
	if !dense {
		return rowView{plus: row[:np:np], minus: row[np:]}
	}
	var opByWord [line.WordsPerLine]int
	var ops []wordOp
	for w, n := range perWord {
		opByWord[w] = -1
		if n >= wordOpMinTaps {
			opByWord[w] = len(ops)
			ops = append(ops, wordOp{word: uint8(w)})
		}
	}
	tmp := make([]uint8, len(row))
	copy(tmp, row)
	snp := 0
	for _, t := range tmp[:np] {
		if k := opByWord[int(t)/8]; k >= 0 {
			ops[k].plusMask |= uint64(0xFF) << uint(8*(int(t)%8))
		} else {
			row[snp] = t
			snp++
		}
	}
	snm := 0
	for _, t := range tmp[np:] {
		if k := opByWord[int(t)/8]; k >= 0 {
			ops[k].minusMask |= uint64(0xFF) << uint(8*(int(t)%8))
		} else {
			snm++
			row[len(row)-snm] = t
		}
	}
	return rowView{plus: row[:snp:snp], minus: row[len(row)-snm:], words: ops}
}

// MustNew is New but panics on configuration errors; for use with known
// constant configurations.
func MustNew(cfg Config) *Hasher {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the configuration the hasher was built with.
func (h *Hasher) Config() Config { return h.cfg }

// Bits returns the fingerprint width in bits.
func (h *Hasher) Bits() int { return h.cfg.Bits }

// NumFingerprints returns the size of the fingerprint space (2^Bits),
// which is also the number of base-table entries (§5.2.3).
func (h *Hasher) NumFingerprints() int { return 1 << uint(h.cfg.Bits) }

// Fingerprint computes the LSH fingerprint of l: for each row, the signed
// sum of the selected bytes is reduced to one bit (1 if positive).
//
// Bytes enter the sum as signed (two's-complement) values. This centering
// matters: with unsigned bytes, any row whose +1 and −1 counts are
// unbalanced carries a fixed bias of ±128·Δ that swamps the content and
// freezes the bit, collapsing the fingerprint entropy. Centering costs a
// single XOR of the top bit per operand in hardware.
//
//thesaurus:hotpath
func (h *Hasher) Fingerprint(l *line.Line) Fingerprint {
	var fp Fingerprint
	// The row-sum body is open-coded here (rather than calling rowSum) to
	// spare the hot path one call per row; keep the two in sync.
	for i := range h.rows {
		r := &h.rows[i]
		sum := 0
		for k := range r.words {
			op := &r.words[k]
			w := l.Word(int(op.word))
			sum += maskedSignedByteSum(w, op.plusMask) - maskedSignedByteSum(w, op.minusMask)
		}
		for _, t := range r.plus {
			sum += int(int8(l[t]))
		}
		for _, t := range r.minus {
			sum -= int(int8(l[t]))
		}
		if sum > 0 {
			fp |= 1 << uint(i)
		}
	}
	return fp
}

// FingerprintDelta returns Fingerprint(l) given old = the fingerprint of
// some previous line content and changedMask, a byte mask covering every
// position at which l differs from that content (extra set bits are
// allowed; they only cost work). Rows with no tap in a changed byte keep
// their old bit; the touched rows are re-projected from l. The write-hit
// fast path uses this to turn a full Bits-row projection into one or two
// row sums when few bytes changed.
//
//thesaurus:hotpath
func (h *Hasher) FingerprintDelta(old Fingerprint, l *line.Line, changedMask uint64) Fingerprint {
	var touched uint32
	for m := changedMask; m != 0; m &= m - 1 {
		touched |= h.rowsByByte[bits.TrailingZeros64(m)]
	}
	fp := old
	for t := touched; t != 0; t &= t - 1 {
		i := bits.TrailingZeros32(t)
		if rowSum(&h.rows[i], l) > 0 {
			fp |= 1 << uint(i)
		} else {
			fp &^= 1 << uint(i)
		}
	}
	return fp
}

// rowSum is the signed projection sum of one row: SWAR word programs for
// the dense words, scalar taps for the rest. Fingerprint open-codes the
// same body.
func rowSum(r *rowView, l *line.Line) int {
	sum := 0
	for k := range r.words {
		op := &r.words[k]
		w := l.Word(int(op.word))
		sum += maskedSignedByteSum(w, op.plusMask) - maskedSignedByteSum(w, op.minusMask)
	}
	for _, t := range r.plus {
		sum += int(int8(l[t]))
	}
	for _, t := range r.minus {
		sum -= int(int8(l[t]))
	}
	return sum
}

// maskedSignedByteSum sums the bytes of w selected by mask (0xFF per
// selected lane) as signed two's-complement values: a pairwise SWAR fold
// gives the unsigned sum, and each selected byte with its top bit set
// contributes a -256 correction.
func maskedSignedByteSum(w, mask uint64) int {
	x := w & mask
	s := (x & 0x00FF00FF00FF00FF) + ((x >> 8) & 0x00FF00FF00FF00FF)
	s = (s & 0x0000FFFF0000FFFF) + ((s >> 16) & 0x0000FFFF0000FFFF)
	s = (s + (s >> 32)) & 0xFFFFFFFF
	return int(s) - 256*bits.OnesCount64(x&0x8080808080808080)
}

// AppendProject appends the raw signed projection vector of l (before
// sign quantization) to dst and returns the extended slice. It performs
// no allocation when dst has capacity for Bits more elements, so callers
// with a reusable buffer project allocation-free.
//
//thesaurus:hotpath
func (h *Hasher) AppendProject(dst []int, l *line.Line) []int {
	for i := range h.rows {
		dst = append(dst, rowSum(&h.rows[i], l))
	}
	return dst
}

// Project returns the raw signed projection vector (before sign
// quantization); exposed for analysis and tests. Hot paths should prefer
// AppendProject with a reused buffer.
func (h *Hasher) Project(l *line.Line) []int {
	return h.AppendProject(make([]int, 0, h.cfg.Bits), l)
}

// HammingFP returns the Hamming distance between two fingerprints over the
// hasher's bit width.
func (h *Hasher) HammingFP(a, b Fingerprint) int {
	mask := uint32(1)<<uint(h.cfg.Bits) - 1
	return bits.OnesCount32((uint32(a) ^ uint32(b)) & mask)
}

// HardwareCost describes the synthesized-logic footprint of the hasher in
// the style of the paper's Table 4 discussion: one adder tree per row plus
// a sign comparator.
type HardwareCost struct {
	Adders        int // two-input adders across all rows
	Comparators   int // one per fingerprint bit
	LatencyCycles int // pipeline depth at the 2.66GHz design point
}

// Cost returns the hardware cost model for the hasher. A balanced adder
// tree over k inputs uses k-1 adders and ceil(log2(k)) levels; at the
// paper's design point the whole computation fits in one cycle for the
// default configuration.
func (h *Hasher) Cost() HardwareCost {
	addersPerRow := h.cfg.NonZeros - 1
	if addersPerRow < 0 {
		addersPerRow = 0
	}
	levels := bits.Len(uint(h.cfg.NonZeros - 1))
	latency := 1
	if levels > 3 {
		latency = 2 // deeper trees need a second pipeline stage
	}
	return HardwareCost{
		Adders:        addersPerRow * h.cfg.Bits,
		Comparators:   h.cfg.Bits,
		LatencyCycles: latency,
	}
}

// BitBias reports, for each fingerprint bit, the fraction of the given
// lines for which the bit is 1. Bits pinned near 0 or 1 carry no
// clustering information; the companion EffectiveEntropy aggregates this
// into one number. These diagnostics exposed the unsigned-byte bias
// documented in DESIGN.md §4.7.
func (h *Hasher) BitBias(lines []line.Line) []float64 {
	ones := make([]int, h.cfg.Bits)
	for i := range lines {
		fp := h.Fingerprint(&lines[i])
		for b := 0; b < h.cfg.Bits; b++ {
			if fp&(1<<uint(b)) != 0 {
				ones[b]++
			}
		}
	}
	out := make([]float64, h.cfg.Bits)
	if len(lines) == 0 {
		return out
	}
	for b := range out {
		out[b] = float64(ones[b]) / float64(len(lines))
	}
	return out
}

// EffectiveEntropy returns the sum of per-bit binary entropies over the
// given lines, in bits: an upper bound on the fingerprint information the
// content can realize (Bits for perfectly balanced, independent bits).
func (h *Hasher) EffectiveEntropy(lines []line.Line) float64 {
	total := 0.0
	for _, p := range h.BitBias(lines) {
		if p > 0 && p < 1 {
			total += -p*log2(p) - (1-p)*log2(1-p)
		}
	}
	return total
}

func log2(x float64) float64 { return math.Log2(x) }

// CollisionRate estimates, by sampling, the probability that two lines at
// the given byte-diff distance share a fingerprint. It perturbs trials
// random base lines at exactly diffBytes random byte positions and counts
// fingerprint matches. Exposed for characterization tests and examples.
func (h *Hasher) CollisionRate(diffBytes, trials int, seed uint64) float64 {
	if diffBytes < 0 || diffBytes > line.Size {
		panic("lsh: diffBytes out of range")
	}
	rng := xrand.New(seed)
	same := 0
	for t := 0; t < trials; t++ {
		var a line.Line
		for i := range a {
			a[i] = byte(rng.Uint32())
		}
		b := a
		perm := rng.Perm(line.Size)
		for j := 0; j < diffBytes; j++ {
			pos := perm[j]
			// Flip to a guaranteed-different value.
			b[pos] = a[pos] + byte(1+rng.Intn(255))
		}
		if h.Fingerprint(&a) == h.Fingerprint(&b) {
			same++
		}
	}
	if trials == 0 {
		return 0
	}
	return float64(same) / float64(trials)
}
