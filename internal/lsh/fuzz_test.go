package lsh

import (
	"testing"

	"repro/internal/line"
)

// FuzzLSHFingerprintStable asserts the property the clustering layer
// leans on: a fingerprint is a pure function of (config, line). Two
// independently constructed hashers with the same config must agree on
// every input, repeated calls must agree with themselves, and the
// result must stay within the configured bit width.
func FuzzLSHFingerprintStable(f *testing.F) {
	proto := make([]byte, line.Size)
	for i := range proto {
		proto[i] = byte(i * 7)
	}
	// Seed with the default-config vector and the validation-boundary
	// configs exercised by TestConfigValidation/TestFingerprintWithinBits.
	f.Add(DefaultConfig().Seed, uint8(DefaultConfig().Bits), uint8(DefaultConfig().NonZeros), proto)
	f.Add(uint64(1), uint8(1), uint8(1), make([]byte, line.Size))
	f.Add(uint64(2), uint8(24), uint8(64), proto)
	f.Fuzz(func(t *testing.T, seed uint64, bits, nz uint8, data []byte) {
		if len(data) < line.Size {
			return
		}
		cfg := Config{Bits: 1 + int(bits)%24, NonZeros: 1 + int(nz)%64, Seed: seed}
		h1, err := New(cfg)
		if err != nil {
			t.Fatalf("in-range config rejected: %+v: %v", cfg, err)
		}
		h2 := MustNew(cfg)
		l := line.FromBytes(data[:line.Size])
		fp := h1.Fingerprint(&l)
		if got := h2.Fingerprint(&l); got != fp {
			t.Fatalf("fingerprint differs across instances: %#x vs %#x (cfg %+v)", fp, got, cfg)
		}
		if got := h1.Fingerprint(&l); got != fp {
			t.Fatalf("fingerprint differs across calls: %#x vs %#x (cfg %+v)", fp, got, cfg)
		}
		if limit := Fingerprint(1) << uint(cfg.Bits); fp >= limit {
			t.Fatalf("fingerprint %#x exceeds %d bits", fp, cfg.Bits)
		}
	})
}
