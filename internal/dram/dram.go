// Package dram models an open-page DDR3-class memory system (Table 1's
// "DDR3-1066, 1GB") at the level the LLC simulator needs: per-access
// latency that depends on row-buffer locality, plus hit/miss statistics.
// It refines the flat memory latency of the default timing model; attach
// a Model to a memory.Store to activate it (sim.Replay then uses the
// measured average fill latency instead of the flat constant).
package dram

import "repro/internal/line"

// Config describes the memory geometry and timing. Latencies are in core
// cycles (2.66GHz core over a DDR3-1066 device in the paper's system).
type Config struct {
	// Banks is the total number of banks (channels × ranks × banks).
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// TRCD, TRP, TCAS are activate, precharge, and column-access
	// latencies in core cycles.
	TRCD, TRP, TCAS float64
	// TBurst is the data-burst time for one 64-byte line.
	TBurst float64
	// Overhead is the controller/queueing overhead added to every access.
	Overhead float64
}

// DDR3_1066 returns timing for the paper's DDR3-1066 part as seen from a
// 2.66GHz core: ~13.1ns bank timings (≈35 core cycles each), a 7.5ns
// burst, and a fixed controller overhead chosen so that random traffic
// averages near the flat 186-cycle constant of the default model.
func DDR3_1066() Config {
	return Config{
		Banks:    16,
		RowBytes: 8 << 10,
		TRCD:     35,
		TRP:      35,
		TCAS:     35,
		TBurst:   20,
		Overhead: 75,
	}
}

// Stats counts row-buffer outcomes.
type Stats struct {
	RowHits   uint64
	RowMisses uint64 // closed row: activate needed
	Conflicts uint64 // open different row: precharge + activate
	Cycles    float64
}

// Accesses returns the total access count.
func (s Stats) Accesses() uint64 { return s.RowHits + s.RowMisses + s.Conflicts }

// HitRate returns the row-buffer hit rate.
func (s Stats) HitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses())
}

// AvgLatency returns the measured average access latency in core cycles.
func (s Stats) AvgLatency() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return s.Cycles / float64(s.Accesses())
}

// Model is an open-page DRAM timing model. It implements the
// memory.LatencyModel interface.
type Model struct {
	cfg     Config
	openRow []int64 // per bank; -1 = closed
	stats   Stats
}

// New builds a model from cfg; invalid geometry panics (configurations
// are static).
func New(cfg Config) *Model {
	if cfg.Banks <= 0 || cfg.RowBytes <= 0 {
		panic("dram: invalid geometry")
	}
	m := &Model{cfg: cfg, openRow: make([]int64, cfg.Banks)}
	for i := range m.openRow {
		m.openRow[i] = -1
	}
	return m
}

// Access returns the latency of one 64-byte access at addr and updates
// the row-buffer state. Banks are interleaved at row granularity so that
// streaming accesses enjoy row hits while scattered accesses conflict,
// as on real parts.
func (m *Model) Access(addr line.Addr) float64 {
	row := int64(uint64(addr) / uint64(m.cfg.RowBytes))
	bank := int(uint64(row) % uint64(m.cfg.Banks))
	lat := m.cfg.Overhead + m.cfg.TCAS + m.cfg.TBurst
	switch m.openRow[bank] {
	case row:
		m.stats.RowHits++
	case -1:
		m.stats.RowMisses++
		lat += m.cfg.TRCD
	default:
		m.stats.Conflicts++
		lat += m.cfg.TRP + m.cfg.TRCD
	}
	m.openRow[bank] = row
	m.stats.Cycles += lat
	return lat
}

// Stats returns the accumulated counters.
func (m *Model) Stats() Stats { return m.stats }

// ResetStats zeroes the counters, keeping row-buffer state (end of
// warmup).
func (m *Model) ResetStats() { m.stats = Stats{} }
