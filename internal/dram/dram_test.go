package dram

import (
	"testing"

	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/xrand"
)

func TestRowBufferStates(t *testing.T) {
	cfg := DDR3_1066()
	m := New(cfg)
	base := cfg.Overhead + cfg.TCAS + cfg.TBurst

	// First access to a bank: closed row → activate.
	if lat := m.Access(0); lat != base+cfg.TRCD {
		t.Fatalf("closed-row latency %v", lat)
	}
	// Same row again: hit.
	if lat := m.Access(64); lat != base {
		t.Fatalf("row-hit latency %v", lat)
	}
	// Different row, same bank (row+Banks rows later): conflict.
	conflictAddr := line.Addr(cfg.RowBytes * cfg.Banks)
	if lat := m.Access(conflictAddr); lat != base+cfg.TRP+cfg.TRCD {
		t.Fatalf("conflict latency %v", lat)
	}
	s := m.Stats()
	if s.RowHits != 1 || s.RowMisses != 1 || s.Conflicts != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestStreamingLocality(t *testing.T) {
	m := New(DDR3_1066())
	// Sequential lines sweep whole rows: hit rate must be high.
	for i := 0; i < 10000; i++ {
		m.Access(line.Addr(i * line.Size))
	}
	if hr := m.Stats().HitRate(); hr < 0.95 {
		t.Fatalf("streaming hit rate %.3f", hr)
	}
}

func TestRandomTrafficNearFlatConstant(t *testing.T) {
	m := New(DDR3_1066())
	rng := xrand.New(1)
	for i := 0; i < 50000; i++ {
		m.Access(line.Addr(rng.Uint64n(1 << 30)))
	}
	s := m.Stats()
	if hr := s.HitRate(); hr > 0.1 {
		t.Fatalf("random hit rate %.3f", hr)
	}
	// Random traffic should land near the default model's flat 186 cycles.
	if avg := s.AvgLatency(); avg < 150 || avg > 230 {
		t.Fatalf("random average latency %.1f cycles", avg)
	}
}

func TestStoreIntegration(t *testing.T) {
	st := memory.NewStore()
	m := New(DDR3_1066())
	st.AttachLatencyModel(m)
	if _, ok := st.DemandCycles(); !ok {
		t.Fatal("model not attached")
	}
	st.Read(0, memory.Fill)
	st.Write(64, line.Line{}, memory.Writeback)
	st.Read(0, memory.BaseTable) // base-table traffic is not priced
	cyc, _ := st.DemandCycles()
	if cyc <= 0 {
		t.Fatal("no demand cycles accumulated")
	}
	if m.Stats().Accesses() != 2 {
		t.Fatalf("model saw %d accesses, want 2", m.Stats().Accesses())
	}
	st.ResetStats()
	if cyc, _ := st.DemandCycles(); cyc != 0 {
		t.Fatal("reset did not clear demand cycles")
	}
}

func TestResetKeepsRowState(t *testing.T) {
	m := New(DDR3_1066())
	m.Access(0)
	m.ResetStats()
	// Same row: still a hit (row buffers survive a stats reset).
	m.Access(64)
	if m.Stats().RowHits != 1 {
		t.Fatal("row state lost on reset")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry accepted")
		}
	}()
	New(Config{})
}
