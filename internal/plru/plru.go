// Package plru implements the replacement-policy state machines used by
// the cache models: tree-based pseudo-LRU (what the paper uses for the
// LLC tag array and the base cache) and true LRU (used for L1/L2 per
// Table 1).
package plru

// Policy selects a victim way within a set and is notified on each touch.
// Implementations are per-set.
type Policy interface {
	// Touch marks way as most recently used.
	Touch(way int)
	// Victim returns the way to evict next without modifying state.
	Victim() int
	// Ways returns the associativity this policy was built for.
	Ways() int
}

// Tree is a tree-based pseudo-LRU policy over a power-of-two number of
// ways. Each internal node of a binary tree holds one bit that points
// toward the less recently used half; following the bits from the root
// yields the pseudo-LRU victim.
type Tree struct {
	bits uint64 // node i's bit at position i, root at 1 (heap layout)
	ways int
}

// NewTree returns a tree PLRU for the given associativity, which must be a
// power of two between 1 and 64.
func NewTree(ways int) *Tree {
	if ways <= 0 || ways > 64 || ways&(ways-1) != 0 {
		panic("plru: tree PLRU requires power-of-two ways in [1,64]")
	}
	return &Tree{ways: ways}
}

// Ways returns the associativity.
func (t *Tree) Ways() int { return t.ways }

// Touch marks way as most recently used: every node on the root-to-leaf
// path is pointed away from the touched leaf.
func (t *Tree) Touch(way int) {
	if way < 0 || way >= t.ways {
		panic("plru: Touch way out of range")
	}
	node := 1
	for span := t.ways; span > 1; span /= 2 {
		half := span / 2
		if way < half {
			// Touched left: point node right (bit=1 means "victim right"?
			// we define bit=0 -> victim left, so set bit to 1).
			t.bits |= 1 << uint(node)
			node = node * 2
		} else {
			t.bits &^= 1 << uint(node)
			node = node*2 + 1
			way -= half
		}
	}
}

// Victim walks the tree toward the pseudo-least-recently-used leaf.
func (t *Tree) Victim() int {
	node := 1
	way := 0
	for span := t.ways; span > 1; span /= 2 {
		half := span / 2
		if t.bits&(1<<uint(node)) == 0 {
			// bit=0: victim on the left.
			node = node * 2
		} else {
			node = node*2 + 1
			way += half
		}
	}
	return way
}

// LRU is an exact least-recently-used policy using a recency ordering.
type LRU struct {
	order []int // order[0] is MRU, order[len-1] is LRU
	pos   []int // pos[way] = index in order
}

// NewLRU returns an exact LRU policy for the given associativity.
func NewLRU(ways int) *LRU {
	if ways <= 0 {
		panic("plru: non-positive ways")
	}
	l := &LRU{order: make([]int, ways), pos: make([]int, ways)}
	for i := 0; i < ways; i++ {
		l.order[i] = i
		l.pos[i] = i
	}
	return l
}

// Ways returns the associativity.
func (l *LRU) Ways() int { return len(l.order) }

// Touch moves way to the MRU position.
func (l *LRU) Touch(way int) {
	if way < 0 || way >= len(l.order) {
		panic("plru: Touch way out of range")
	}
	p := l.pos[way]
	copy(l.order[1:p+1], l.order[:p])
	l.order[0] = way
	for i := 0; i <= p; i++ {
		l.pos[l.order[i]] = i
	}
}

// Victim returns the LRU way.
func (l *LRU) Victim() int { return l.order[len(l.order)-1] }

// NewPolicy constructs a policy by name: "lru" or "plru". Unknown names
// panic; the set of policies is closed within this repository.
func NewPolicy(kind string, ways int) Policy {
	switch kind {
	case "lru":
		return NewLRU(ways)
	case "plru":
		return NewTree(ways)
	default:
		panic("plru: unknown policy " + kind)
	}
}
