package plru

import (
	"testing"

	"repro/internal/xrand"
)

func TestLRUExactOrder(t *testing.T) {
	l := NewLRU(4)
	// Initial victim is the last way.
	if v := l.Victim(); v != 3 {
		t.Fatalf("initial victim %d", v)
	}
	l.Touch(3)
	if v := l.Victim(); v != 2 {
		t.Fatalf("victim after touch(3) = %d", v)
	}
	l.Touch(2)
	l.Touch(1)
	l.Touch(0)
	// Recency order now 0,1,2,3 → victim 3.
	if v := l.Victim(); v != 3 {
		t.Fatalf("victim = %d, want 3", v)
	}
}

// refLRU is a slice-based reference model.
type refLRU struct{ order []int }

func (r *refLRU) touch(w int) {
	for i, v := range r.order {
		if v == w {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.order = append([]int{w}, r.order...)
}
func (r *refLRU) victim() int { return r.order[len(r.order)-1] }

func TestLRUAgainstReference(t *testing.T) {
	const ways = 8
	l := NewLRU(ways)
	ref := &refLRU{}
	for i := 0; i < ways; i++ {
		ref.order = append(ref.order, i)
	}
	rng := xrand.New(99)
	for step := 0; step < 10000; step++ {
		w := rng.Intn(ways)
		l.Touch(w)
		ref.touch(w)
		if l.Victim() != ref.victim() {
			t.Fatalf("step %d: victim %d, reference %d", step, l.Victim(), ref.victim())
		}
	}
}

func TestTreePLRUTouchedNotVictim(t *testing.T) {
	for _, ways := range []int{1, 2, 4, 8, 16, 32, 64} {
		p := NewTree(ways)
		rng := xrand.New(uint64(ways))
		for step := 0; step < 2000; step++ {
			w := rng.Intn(ways)
			p.Touch(w)
			if ways > 1 && p.Victim() == w {
				t.Fatalf("ways=%d: just-touched way %d is the victim", ways, w)
			}
		}
	}
}

func TestTreePLRUCyclesThroughAllWays(t *testing.T) {
	// Repeatedly evict the victim and touch its replacement: every way
	// must be chosen within a bounded number of rounds (no starvation).
	const ways = 8
	p := NewTree(ways)
	seen := map[int]bool{}
	for i := 0; i < ways*4; i++ {
		v := p.Victim()
		seen[v] = true
		p.Touch(v)
	}
	if len(seen) != ways {
		t.Fatalf("victim rotation covered %d of %d ways", len(seen), ways)
	}
}

func TestTreePLRURequiresPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTree(6) did not panic")
		}
	}()
	NewTree(6)
}

func TestTouchOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Touch(9) on 8-way did not panic")
		}
	}()
	NewTree(8).Touch(9)
}

func TestNewPolicy(t *testing.T) {
	if NewPolicy("lru", 4).Ways() != 4 {
		t.Fatal("lru ways")
	}
	if NewPolicy("plru", 8).Ways() != 8 {
		t.Fatal("plru ways")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy did not panic")
		}
	}()
	NewPolicy("clock", 4)
}

func TestMRUProtectionDepth(t *testing.T) {
	// In tree PLRU, after touching ways in a set, the most recently
	// touched half must not contain the victim.
	p := NewTree(8)
	for _, w := range []int{0, 1, 2, 3, 4, 5, 6, 7} {
		p.Touch(w)
	}
	// 7 is MRU → victim must be in 0..3 (other half of the tree root).
	if v := p.Victim(); v >= 4 {
		t.Fatalf("victim %d in the recently-used half", v)
	}
}
