package workq

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeQueue scripts a queue for the Drain loop: a fixed task list, with
// optional transport failures.
type fakeQueue struct {
	mu         sync.Mutex
	tasks      []Task
	heartbeats map[int]int
	finished   []Outcome
	claimErr   error
	finishErr  error
	stream     bool
}

func (q *fakeQueue) Claim() (Task, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.claimErr != nil {
		return Task{}, false, q.claimErr
	}
	if len(q.tasks) == 0 {
		return Task{}, false, nil
	}
	t := q.tasks[0]
	q.tasks = q.tasks[1:]
	return t, true, nil
}

func (q *fakeQueue) Heartbeat(t Task) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.heartbeats == nil {
		q.heartbeats = map[int]int{}
	}
	q.heartbeats[t.ID]++
	return nil
}

func (q *fakeQueue) Finish(t Task, out Outcome) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.finishErr != nil {
		return q.finishErr
	}
	q.finished = append(q.finished, out)
	return nil
}

func (q *fakeQueue) StreamArtifacts() bool { return q.stream }

// TestDrainRunsEveryTask: the loop claims to exhaustion, reporting each
// outcome — including failed cells, which must not stop the drain.
func TestDrainRunsEveryTask(t *testing.T) {
	q := &fakeQueue{tasks: []Task{{ID: 0}, {ID: 1}, {ID: 2}}}
	boom := errors.New("cell failed")
	err := Drain(q, time.Hour, func(task Task) Outcome {
		if task.ID == 1 {
			return Outcome{Err: boom}
		}
		return Outcome{Key: "k"}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.finished) != 3 {
		t.Fatalf("finished %d outcomes, want 3", len(q.finished))
	}
	if q.finished[1].Err != boom {
		t.Fatal("failed cell's error did not ride its outcome")
	}
}

// TestDrainStopsOnTransportError: queue errors (unlike run errors) end
// the loop and surface to the caller.
func TestDrainStopsOnTransportError(t *testing.T) {
	broken := errors.New("transport down")
	q := &fakeQueue{claimErr: broken}
	if err := Drain(q, time.Hour, func(Task) Outcome { return Outcome{} }); !errors.Is(err, broken) {
		t.Fatalf("err = %v, want the transport error", err)
	}
	q = &fakeQueue{tasks: []Task{{ID: 0}}, finishErr: broken}
	if err := Drain(q, time.Hour, func(Task) Outcome { return Outcome{} }); !errors.Is(err, broken) {
		t.Fatalf("err = %v, want the transport error from Finish", err)
	}
}

// TestDrainHeartbeatsDuringRun: a slow task is heartbeated on the side,
// and the heartbeats stop once the task finishes.
func TestDrainHeartbeatsDuringRun(t *testing.T) {
	q := &fakeQueue{tasks: []Task{{ID: 7}}}
	err := Drain(q, 10*time.Millisecond, func(Task) Outcome {
		time.Sleep(120 * time.Millisecond)
		return Outcome{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.heartbeats[7] < 3 {
		t.Fatalf("heartbeats = %d, want several during the slow run", q.heartbeats[7])
	}
	n := q.heartbeats[7]
	time.Sleep(50 * time.Millisecond)
	if q.heartbeats[7] != n {
		t.Fatal("heartbeats continued after the task finished")
	}
}

// TestWantsArtifacts: streaming is the transport's call, defaulting off
// for transports without the capability.
func TestWantsArtifacts(t *testing.T) {
	if WantsArtifacts(&fakeQueue{}) {
		t.Fatal("non-streaming transport reported as streaming")
	}
	if !WantsArtifacts(&fakeQueue{stream: true}) {
		t.Fatal("streaming transport not detected")
	}
}

// TestCacheStatsAdd: merge is field-wise addition.
func TestCacheStatsAdd(t *testing.T) {
	a := CacheStats{Hits: 1, Misses: 2, Stores: 3, BytesLoaded: 10}
	a.Add(CacheStats{Hits: 4, Corrupt: 5, BytesStored: 20})
	want := CacheStats{Hits: 5, Misses: 2, Stores: 3, Corrupt: 5, BytesLoaded: 10, BytesStored: 20}
	if a != want {
		t.Fatalf("merged = %+v, want %+v", a, want)
	}
}
