// Package workq defines the transport-neutral work-queue contract behind
// the distributed campaign coordinator. A queue hands out Tasks — one
// design × profile cell of a campaign matrix each — to any number of
// workers; the spool directory (internal/spool) and the TCP protocol
// (internal/netq) are two transports of this one queue, so the worker
// loop, the task schema, and the completion semantics are shared and the
// transports differ only in how a claim travels.
//
// Completion is at-least-once with idempotent effect: a task lost to a
// crashed worker is eventually re-issued (spool: claim-file reclamation;
// netq: lease expiry or connection loss), and a duplicate completion of
// the same task is harmless because the run result is content-addressed —
// both executions produce the same artifact under the same key. The
// coordinator's final in-process campaign pass recomputes anything that
// never completed, so a queue failure can cost redundant work but never
// correctness.
package workq

import "time"

// Task is one design × profile cell of a campaign matrix, carrying every
// run parameter the worker needs to reproduce the coordinator's exact
// content key (the replay scalars mirror sim.ReplayOptions).
type Task struct {
	ID       int    `json:"id"`
	Profile  string `json:"profile"`
	Design   string `json:"design"`
	Accesses int    `json:"accesses"`

	WarmupFraction float64 `json:"warmup_fraction"`
	SampleEvery    int     `json:"sample_every"`
	Verify         bool    `json:"verify,omitempty"`
}

// Outcome is what a worker reports back for a finished task. Err carries
// the run failure, if any. Key is the RunOutput content address the run
// produced (informational on a shared cache; the lookup handle for a
// streamed artifact). Artifact is the raw encoded artifact bytes, set
// only when the transport asked for streaming (netq without a shared
// cache directory) — the receiver CRC-verifies them before storing.
type Outcome struct {
	Err      error
	Key      string
	Artifact []byte
}

// CacheStats is the slice of a worker's artifact-cache counters the
// coordinator aggregates into one merged summary line (mirrors
// artifact.Stats, which workq cannot import — the dependency runs the
// other way). Fields are cumulative and merge by addition.
type CacheStats struct {
	Hits          uint64 `json:"hits,omitempty"`
	Misses        uint64 `json:"misses,omitempty"`
	Stores        uint64 `json:"stores,omitempty"`
	Corrupt       uint64 `json:"corrupt,omitempty"`
	Evictions     uint64 `json:"evictions,omitempty"`
	TouchFailures uint64 `json:"touch_failures,omitempty"`
	BytesLoaded   uint64 `json:"bytes_loaded,omitempty"`
	BytesStored   uint64 `json:"bytes_stored,omitempty"`
}

// Add merges o into s.
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Stores += o.Stores
	s.Corrupt += o.Corrupt
	s.Evictions += o.Evictions
	s.TouchFailures += o.TouchFailures
	s.BytesLoaded += o.BytesLoaded
	s.BytesStored += o.BytesStored
}

// Queue is the worker-side view of a task queue.
type Queue interface {
	// Claim takes the next task; ok is false when the queue is drained
	// (no tasks remain anywhere, not merely none claimable right now —
	// a transport that expects more tasks to reappear blocks or retries
	// internally before answering false).
	Claim() (t Task, ok bool, err error)
	// Heartbeat signals the task is still being worked on, postponing
	// the transport's abandoned-claim recovery (spool: claim-file mtime
	// restamp; netq: lease extension).
	Heartbeat(t Task) error
	// Finish reports the task's outcome and releases the claim.
	Finish(t Task, out Outcome) error
}

// ArtifactStreamer is implemented by transports that may need the raw
// artifact bytes in the Outcome (netq when the coordinator does not share
// the worker's cache directory). Transports without the method — or
// answering false — get completions by content key only.
type ArtifactStreamer interface {
	StreamArtifacts() bool
}

// WantsArtifacts reports whether outcomes on q must carry artifact bytes.
func WantsArtifacts(q Queue) bool {
	s, ok := q.(ArtifactStreamer)
	return ok && s.StreamArtifacts()
}

// HeartbeatEvery is the default interval between heartbeats while a task
// runs. It must be comfortably inside every transport's abandonment
// deadline (spool reclaim-after, netq lease), so a slow-but-alive worker
// is never mistaken for a dead one.
const HeartbeatEvery = 10 * time.Second

// Drain is the shared worker loop: claim a task, run it (heartbeating on
// the side), report the outcome, repeat until the queue is drained. run
// errors are carried in the Outcome — a failed cell is the coordinator's
// recompute problem, not a reason to stop draining — but transport errors
// from the queue itself stop the loop. interval ≤ 0 uses HeartbeatEvery.
func Drain(q Queue, interval time.Duration, run func(Task) Outcome) error {
	if interval <= 0 {
		interval = HeartbeatEvery
	}
	for {
		t, ok, err := q.Claim()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		out := runWithHeartbeat(q, t, interval, run)
		if err := q.Finish(t, out); err != nil {
			return err
		}
	}
}

// runWithHeartbeat executes run(t) while a side goroutine heartbeats the
// claim every interval. Heartbeat errors are ignored: the transport's
// abandonment recovery re-issues the task in the worst case, and the
// content-addressed result keeps the duplicate harmless.
func runWithHeartbeat(q Queue, t Task, interval time.Duration, run func(Task) Outcome) Outcome {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				_ = q.Heartbeat(t)
			}
		}
	}()
	out := run(t)
	close(stop)
	<-done
	return out
}
