// Package spool implements the on-disk work queue behind the campaign
// coordinator (cmd/thesaurus -distribute / -worker). A queue is a plain
// directory of one JSON file per task; workers claim tasks by atomically
// renaming them, so any number of worker processes can drain one queue
// with no coordination beyond the filesystem:
//
//	task-0007.json   unclaimed
//	task-0007.work   claimed, in progress
//	task-0007.done   completed (renamed from .work)
//	task-0007.fail   failed (result JSON carries the error)
//
// rename(2) is atomic within a directory, so exactly one claimant wins
// each task; the losers see ENOENT and move to the next candidate. A
// crashed worker leaves its .work file behind; once the claim is older
// than a staleness deadline, Reclaim renames it back to .json so live
// workers pick the task up instead of starving on a drained queue (Claim
// stamps each won .work file's mtime, so the deadline measures time
// since the claim, not since the coordinator wrote the task). The
// coordinator still treats anything not .done as "compute it myself", so
// even an unreclaimed lost task costs only the redundant work, never
// correctness (the run-level artifact cache is the actual result
// channel; the queue only partitions the work).
package spool

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/workq"
)

// Task is the shared transport-neutral task schema (one design × profile
// cell); the alias keeps the spool's on-disk JSON layout owned by workq,
// where internal/netq frames the identical struct.
type Task = workq.Task

// Result is written next to a finished task (as .done or .fail).
type Result struct {
	ID  int    `json:"id"`
	Err string `json:"err,omitempty"`
}

func taskPath(dir string, id int, ext string) string {
	return filepath.Join(dir, fmt.Sprintf("task-%05d%s", id, ext))
}

// Write populates dir with one file per task. It must run before any
// worker starts on the directory: tasks are written in place (the
// directory itself is the not-yet-published staging area).
func Write(dir string, tasks []Task) error {
	for _, t := range tasks {
		data, err := json.Marshal(t)
		if err != nil {
			return fmt.Errorf("spool: marshal task %d: %w", t.ID, err)
		}
		if err := os.WriteFile(taskPath(dir, t.ID, ".json"), data, 0o644); err != nil {
			return fmt.Errorf("spool: write task %d: %w", t.ID, err)
		}
	}
	return nil
}

// Claim atomically takes one unclaimed task from dir. ok is false when no
// unclaimed tasks remain (the queue is drained — .work files held by
// other workers do not count as claimable). Claim losses against other
// workers are retried internally on the next candidate.
func Claim(dir string) (t Task, ok bool, err error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return Task{}, false, fmt.Errorf("spool: claim: %w", err)
	}
	for _, e := range names {
		name := e.Name()
		if !strings.HasPrefix(name, "task-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		claimed := strings.TrimSuffix(name, ".json") + ".work"
		if os.Rename(filepath.Join(dir, name), filepath.Join(dir, claimed)) != nil {
			continue // another worker won this one
		}
		// rename preserves the task file's mtime, which dates from the
		// coordinator's Write. Stamp the claim time so Reclaim's staleness
		// deadline starts now; if the stamp fails the claim still holds,
		// the task is merely eligible for reclamation early (rerun safety
		// comes from the artifact cache, not from claim exclusivity).
		now := time.Now()
		_ = os.Chtimes(filepath.Join(dir, claimed), now, now)
		data, rerr := os.ReadFile(filepath.Join(dir, claimed))
		if rerr == nil {
			rerr = json.Unmarshal(data, &t)
		}
		if rerr != nil {
			// A task we can claim but not parse is poisoned: surface it —
			// the coordinator wrote it, so this is a bug, not weather.
			return Task{}, false, fmt.Errorf("spool: claimed %s: %w", name, rerr)
		}
		return t, true, nil
	}
	return Task{}, false, nil
}

// Reclaim returns abandoned claims to the queue: any .work file whose
// mtime (stamped at claim time) is older than olderThan renames back to
// .json, making the task claimable again. It returns how many tasks were
// reclaimed. Racing a still-live worker is harmless — the worst case is
// one redundant run, deduplicated by the artifact cache's cross-process
// singleflight — but olderThan should comfortably exceed one task's
// runtime so reclamation stays an exception, not a steady state.
func Reclaim(dir string, olderThan time.Duration) (int, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("spool: reclaim: %w", err)
	}
	cutoff := time.Now().Add(-olderThan)
	reclaimed := 0
	for _, e := range names {
		name := e.Name()
		if !strings.HasPrefix(name, "task-") || !strings.HasSuffix(name, ".work") {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue // fresh claim (or already gone): leave it alone
		}
		pending := strings.TrimSuffix(name, ".work") + ".json"
		if os.Rename(filepath.Join(dir, name), filepath.Join(dir, pending)) == nil {
			reclaimed++
		}
	}
	return reclaimed, nil
}

// Finish marks a claimed task completed (taskErr nil) or failed. The
// .work file is replaced by the result marker in one rename-after-write,
// so Progress never observes a half-written marker as terminal.
func Finish(dir string, id int, taskErr error) error {
	res := Result{ID: id}
	ext := ".done"
	if taskErr != nil {
		res.Err = taskErr.Error()
		ext = ".fail"
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("spool: marshal result %d: %w", id, err)
	}
	tmp := taskPath(dir, id, ".res-tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("spool: write result %d: %w", id, err)
	}
	if err := os.Rename(tmp, taskPath(dir, id, ext)); err != nil {
		return fmt.Errorf("spool: publish result %d: %w", id, err)
	}
	os.Remove(taskPath(dir, id, ".work"))
	return nil
}

// Progress counts the queue's terminal states.
type Progress struct {
	Pending, Working, Done, Failed int
}

// Scan reports the queue's current state.
func Scan(dir string) (Progress, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return Progress{}, fmt.Errorf("spool: scan: %w", err)
	}
	var p Progress
	for _, e := range names {
		name := e.Name()
		if !strings.HasPrefix(name, "task-") {
			continue
		}
		switch filepath.Ext(name) {
		case ".json":
			p.Pending++
		case ".work":
			p.Working++
		case ".done":
			p.Done++
		case ".fail":
			p.Failed++
		}
	}
	return p, nil
}

// Queue adapts a spool directory to the transport-neutral workq.Queue
// contract. Claim falls back to reclaiming abandoned .work files before
// declaring the queue drained (so a dead peer's tasks are finished by
// the survivors), Heartbeat restamps the claim's mtime so a slow-but-
// alive task is never reclaimed out from under its worker, and Finish
// publishes the terminal marker. Outcome keys and artifact bytes are
// ignored: on the spool transport the shared artifact cache is the only
// result channel.
type Queue struct {
	dir string
	// reclaimAfter is how long a .work claim may sit untouched before
	// Claim takes it back from a presumed-dead worker.
	reclaimAfter time.Duration
}

// NewQueue returns the workq view of the spool directory dir.
func NewQueue(dir string, reclaimAfter time.Duration) *Queue {
	return &Queue{dir: dir, reclaimAfter: reclaimAfter}
}

// Claim implements workq.Queue.
func (q *Queue) Claim() (workq.Task, bool, error) {
	for {
		t, ok, err := Claim(q.dir)
		if err != nil || ok {
			return t, ok, err
		}
		n, err := Reclaim(q.dir, q.reclaimAfter)
		if err != nil {
			return workq.Task{}, false, err
		}
		if n == 0 {
			return workq.Task{}, false, nil
		}
		fmt.Fprintf(os.Stderr, "thesaurus worker: reclaimed %d abandoned task(s)\n", n)
	}
}

// Heartbeat implements workq.Queue by restamping the claim file's mtime,
// the clock Reclaim's staleness deadline reads.
func (q *Queue) Heartbeat(t workq.Task) error {
	now := time.Now()
	return os.Chtimes(taskPath(q.dir, t.ID, ".work"), now, now)
}

// Finish implements workq.Queue.
func (q *Queue) Finish(t workq.Task, out workq.Outcome) error {
	return Finish(q.dir, t.ID, out.Err)
}

// WriteStats publishes a worker's final cache counters into the spool
// directory (stats-*.json, written via temp+rename so the coordinator
// never reads a torn file). Each worker writes exactly one file at exit;
// the coordinator merges them into one summary line instead of letting N
// workers interleave their own prints on stderr.
func WriteStats(dir string, s workq.CacheStats) error {
	data, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("spool: marshal stats: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".stats-tmp-*")
	if err != nil {
		return fmt.Errorf("spool: write stats: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("spool: write stats: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("spool: write stats: %w", err)
	}
	final := filepath.Join(dir, "stats-"+filepath.Base(name)[len(".stats-tmp-"):]+".json")
	if err := os.Rename(name, final); err != nil {
		os.Remove(name)
		return fmt.Errorf("spool: publish stats: %w", err)
	}
	return nil
}

// ReadStats merges every published worker stats file in dir, returning
// the sum and how many workers reported.
func ReadStats(dir string) (workq.CacheStats, int, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return workq.CacheStats{}, 0, fmt.Errorf("spool: read stats: %w", err)
	}
	var sum workq.CacheStats
	workers := 0
	for _, e := range names {
		name := e.Name()
		if !strings.HasPrefix(name, "stats-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var s workq.CacheStats
		if json.Unmarshal(data, &s) == nil {
			sum.Add(s)
			workers++
		}
	}
	return sum, workers, nil
}

// Failures returns the error strings of failed tasks, in task order.
func Failures(dir string) ([]string, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("spool: failures: %w", err)
	}
	var msgs []string
	for _, e := range names {
		if filepath.Ext(e.Name()) != ".fail" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var r Result
		if json.Unmarshal(data, &r) == nil {
			msgs = append(msgs, fmt.Sprintf("task %d: %s", r.ID, r.Err))
		}
	}
	return msgs, nil
}
