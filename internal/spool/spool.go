// Package spool implements the on-disk work queue behind the campaign
// coordinator (cmd/thesaurus -distribute / -worker). A queue is a plain
// directory of one JSON file per task; workers claim tasks by atomically
// renaming them, so any number of worker processes can drain one queue
// with no coordination beyond the filesystem:
//
//	task-0007.json   unclaimed
//	task-0007.work   claimed, in progress
//	task-0007.done   completed (renamed from .work)
//	task-0007.fail   failed (result JSON carries the error)
//
// rename(2) is atomic within a directory, so exactly one claimant wins
// each task; the losers see ENOENT and move to the next candidate. A
// crashed worker leaves its .work file behind — the coordinator treats
// anything not .done as "compute it myself", so a lost task costs only
// the redundant work, never correctness (the run-level artifact cache is
// the actual result channel; the queue only partitions the work).
package spool

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Task is one design × profile cell of a campaign matrix, carrying every
// run parameter the worker needs to reproduce the coordinator's exact
// content key (the replay scalars mirror sim.ReplayOptions).
type Task struct {
	ID       int    `json:"id"`
	Profile  string `json:"profile"`
	Design   string `json:"design"`
	Accesses int    `json:"accesses"`

	WarmupFraction float64 `json:"warmup_fraction"`
	SampleEvery    int     `json:"sample_every"`
	Verify         bool    `json:"verify,omitempty"`
}

// Result is written next to a finished task (as .done or .fail).
type Result struct {
	ID  int    `json:"id"`
	Err string `json:"err,omitempty"`
}

func taskPath(dir string, id int, ext string) string {
	return filepath.Join(dir, fmt.Sprintf("task-%05d%s", id, ext))
}

// Write populates dir with one file per task. It must run before any
// worker starts on the directory: tasks are written in place (the
// directory itself is the not-yet-published staging area).
func Write(dir string, tasks []Task) error {
	for _, t := range tasks {
		data, err := json.Marshal(t)
		if err != nil {
			return fmt.Errorf("spool: marshal task %d: %w", t.ID, err)
		}
		if err := os.WriteFile(taskPath(dir, t.ID, ".json"), data, 0o644); err != nil {
			return fmt.Errorf("spool: write task %d: %w", t.ID, err)
		}
	}
	return nil
}

// Claim atomically takes one unclaimed task from dir. ok is false when no
// unclaimed tasks remain (the queue is drained — .work files held by
// other workers do not count as claimable). Claim losses against other
// workers are retried internally on the next candidate.
func Claim(dir string) (t Task, ok bool, err error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return Task{}, false, fmt.Errorf("spool: claim: %w", err)
	}
	for _, e := range names {
		name := e.Name()
		if !strings.HasPrefix(name, "task-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		claimed := strings.TrimSuffix(name, ".json") + ".work"
		if os.Rename(filepath.Join(dir, name), filepath.Join(dir, claimed)) != nil {
			continue // another worker won this one
		}
		data, rerr := os.ReadFile(filepath.Join(dir, claimed))
		if rerr == nil {
			rerr = json.Unmarshal(data, &t)
		}
		if rerr != nil {
			// A task we can claim but not parse is poisoned: surface it —
			// the coordinator wrote it, so this is a bug, not weather.
			return Task{}, false, fmt.Errorf("spool: claimed %s: %w", name, rerr)
		}
		return t, true, nil
	}
	return Task{}, false, nil
}

// Finish marks a claimed task completed (taskErr nil) or failed. The
// .work file is replaced by the result marker in one rename-after-write,
// so Progress never observes a half-written marker as terminal.
func Finish(dir string, id int, taskErr error) error {
	res := Result{ID: id}
	ext := ".done"
	if taskErr != nil {
		res.Err = taskErr.Error()
		ext = ".fail"
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("spool: marshal result %d: %w", id, err)
	}
	tmp := taskPath(dir, id, ".res-tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("spool: write result %d: %w", id, err)
	}
	if err := os.Rename(tmp, taskPath(dir, id, ext)); err != nil {
		return fmt.Errorf("spool: publish result %d: %w", id, err)
	}
	os.Remove(taskPath(dir, id, ".work"))
	return nil
}

// Progress counts the queue's terminal states.
type Progress struct {
	Pending, Working, Done, Failed int
}

// Scan reports the queue's current state.
func Scan(dir string) (Progress, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return Progress{}, fmt.Errorf("spool: scan: %w", err)
	}
	var p Progress
	for _, e := range names {
		name := e.Name()
		if !strings.HasPrefix(name, "task-") {
			continue
		}
		switch filepath.Ext(name) {
		case ".json":
			p.Pending++
		case ".work":
			p.Working++
		case ".done":
			p.Done++
		case ".fail":
			p.Failed++
		}
	}
	return p, nil
}

// Failures returns the error strings of failed tasks, in task order.
func Failures(dir string) ([]string, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("spool: failures: %w", err)
	}
	var msgs []string
	for _, e := range names {
		if filepath.Ext(e.Name()) != ".fail" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		var r Result
		if json.Unmarshal(data, &r) == nil {
			msgs = append(msgs, fmt.Sprintf("task %d: %s", r.ID, r.Err))
		}
	}
	return msgs, nil
}
