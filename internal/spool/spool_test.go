package spool

import (
	"errors"
	"sort"
	"sync"
	"testing"
)

func mkTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			ID: i, Profile: "mcf", Design: "Thesaurus",
			Accesses: 1000, WarmupFraction: 0.25, SampleEvery: 2048,
		}
	}
	return tasks
}

// Every task is claimed exactly once no matter how many goroutines race
// over the queue — the rename-claim is the whole correctness argument of
// the multi-process coordinator, so it is pinned here (goroutines and
// processes contend through the same rename(2) semantics).
func TestClaimExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	const n = 50
	if err := Write(dir, mkTasks(n)); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var claimed []int
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				task, ok, err := Claim(dir)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					return
				}
				mu.Lock()
				claimed = append(claimed, task.ID)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(claimed) != n {
		t.Fatalf("claimed %d tasks, want %d", len(claimed), n)
	}
	sort.Ints(claimed)
	for i, id := range claimed {
		if id != i {
			t.Fatalf("claimed[%d] = %d: task claimed twice or lost", i, id)
		}
	}
}

func TestClaimRoundTripsTask(t *testing.T) {
	dir := t.TempDir()
	want := Task{ID: 3, Profile: "xz", Design: "BDI", Accesses: 42,
		WarmupFraction: 0.5, SampleEvery: 128, Verify: true}
	if err := Write(dir, []Task{want}); err != nil {
		t.Fatal(err)
	}
	got, ok, err := Claim(dir)
	if err != nil || !ok {
		t.Fatalf("Claim = %v, %v", ok, err)
	}
	if got != want {
		t.Fatalf("claimed task %+v, want %+v", got, want)
	}
	if _, ok, _ := Claim(dir); ok {
		t.Fatal("second Claim succeeded on a single-task queue")
	}
}

func TestFinishAndScan(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, mkTasks(3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok, err := Claim(dir); err != nil || !ok {
			t.Fatalf("Claim %d = %v, %v", i, ok, err)
		}
	}
	if err := Finish(dir, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := Finish(dir, 1, errors.New("replay exploded")); err != nil {
		t.Fatal(err)
	}
	p, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p != (Progress{Pending: 1, Working: 0, Done: 1, Failed: 1}) {
		t.Fatalf("Scan = %+v", p)
	}
	msgs, err := Failures(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0] != "task 1: replay exploded" {
		t.Fatalf("Failures = %q", msgs)
	}
}

// A crashed worker's .work file must stay non-terminal: the coordinator
// counts only .done as complete and recomputes the rest itself.
func TestAbandonedClaimStaysWorking(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, mkTasks(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := Claim(dir); err != nil || !ok {
		t.Fatalf("Claim = %v, %v", ok, err)
	}
	p, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p.Working != 1 || p.Done != 0 || p.Pending != 0 {
		t.Fatalf("Scan after abandoned claim = %+v", p)
	}
}
