package spool

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

func mkTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			ID: i, Profile: "mcf", Design: "Thesaurus",
			Accesses: 1000, WarmupFraction: 0.25, SampleEvery: 2048,
		}
	}
	return tasks
}

// Every task is claimed exactly once no matter how many goroutines race
// over the queue — the rename-claim is the whole correctness argument of
// the multi-process coordinator, so it is pinned here (goroutines and
// processes contend through the same rename(2) semantics).
func TestClaimExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	const n = 50
	if err := Write(dir, mkTasks(n)); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var claimed []int
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				task, ok, err := Claim(dir)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					return
				}
				mu.Lock()
				claimed = append(claimed, task.ID)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(claimed) != n {
		t.Fatalf("claimed %d tasks, want %d", len(claimed), n)
	}
	sort.Ints(claimed)
	for i, id := range claimed {
		if id != i {
			t.Fatalf("claimed[%d] = %d: task claimed twice or lost", i, id)
		}
	}
}

func TestClaimRoundTripsTask(t *testing.T) {
	dir := t.TempDir()
	want := Task{ID: 3, Profile: "xz", Design: "BDI", Accesses: 42,
		WarmupFraction: 0.5, SampleEvery: 128, Verify: true}
	if err := Write(dir, []Task{want}); err != nil {
		t.Fatal(err)
	}
	got, ok, err := Claim(dir)
	if err != nil || !ok {
		t.Fatalf("Claim = %v, %v", ok, err)
	}
	if got != want {
		t.Fatalf("claimed task %+v, want %+v", got, want)
	}
	if _, ok, _ := Claim(dir); ok {
		t.Fatal("second Claim succeeded on a single-task queue")
	}
}

func TestFinishAndScan(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, mkTasks(3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok, err := Claim(dir); err != nil || !ok {
			t.Fatalf("Claim %d = %v, %v", i, ok, err)
		}
	}
	if err := Finish(dir, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := Finish(dir, 1, errors.New("replay exploded")); err != nil {
		t.Fatal(err)
	}
	p, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p != (Progress{Pending: 1, Working: 0, Done: 1, Failed: 1}) {
		t.Fatalf("Scan = %+v", p)
	}
	msgs, err := Failures(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0] != "task 1: replay exploded" {
		t.Fatalf("Failures = %q", msgs)
	}
}

// A crashed worker's .work file must stay non-terminal: the coordinator
// counts only .done as complete and recomputes the rest itself.
func TestAbandonedClaimStaysWorking(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, mkTasks(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := Claim(dir); err != nil || !ok {
		t.Fatalf("Claim = %v, %v", ok, err)
	}
	p, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p.Working != 1 || p.Done != 0 || p.Pending != 0 {
		t.Fatalf("Scan after abandoned claim = %+v", p)
	}
}

// Claim must re-stamp the won .work file's mtime: rename(2) preserves the
// task file's timestamp, which dates from the coordinator's Write, and a
// claim that looks as old as the queue itself would be reclaimed the
// moment any peer sweeps.
func TestClaimStampsWorkFile(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, mkTasks(1)); err != nil {
		t.Fatal(err)
	}
	// Backdate the pending task as if the coordinator wrote it long ago.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(taskPath(dir, 0, ".json"), old, old); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := Claim(dir); err != nil || !ok {
		t.Fatalf("Claim = %v, %v", ok, err)
	}
	info, err := os.Stat(taskPath(dir, 0, ".work"))
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(info.ModTime()) > time.Minute {
		t.Fatalf("claim not stamped: .work mtime %v", info.ModTime())
	}
}

// Crash injection: a worker claims a task and dies without finishing it.
// After the staleness deadline a surviving worker's Reclaim returns the
// task to the queue and it can be claimed again; fresh claims held by
// live workers are left alone.
func TestReclaimAbandonedClaim(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, mkTasks(2)); err != nil {
		t.Fatal(err)
	}
	// Worker A claims task 0 and crashes (no Finish). Simulate the time
	// passing by backdating its claim stamp.
	dead, ok, err := Claim(dir)
	if err != nil || !ok {
		t.Fatalf("Claim = %v, %v", ok, err)
	}
	old := time.Now().Add(-10 * time.Minute)
	if err := os.Chtimes(taskPath(dir, dead.ID, ".work"), old, old); err != nil {
		t.Fatal(err)
	}
	// Worker B holds a fresh claim on task 1.
	live, ok, err := Claim(dir)
	if err != nil || !ok {
		t.Fatalf("Claim = %v, %v", ok, err)
	}

	n, err := Reclaim(dir, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Reclaim = %d, want 1 (only the stale claim)", n)
	}
	p, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p != (Progress{Pending: 1, Working: 1}) {
		t.Fatalf("Scan after reclaim = %+v", p)
	}
	// The reclaimed task is claimable again, with its payload intact.
	got, ok, err := Claim(dir)
	if err != nil || !ok {
		t.Fatalf("re-Claim = %v, %v", ok, err)
	}
	if got != dead {
		t.Fatalf("reclaimed task %+v, want %+v", got, dead)
	}
	// Both claims are now fresh: a second sweep reclaims nothing.
	if n, err := Reclaim(dir, time.Minute); err != nil || n != 0 {
		t.Fatalf("second Reclaim = %d, %v, want 0 reclaimed", n, err)
	}
	if err := Finish(dir, live.ID, nil); err != nil {
		t.Fatal(err)
	}
	// Sanity: the finished marker is terminal and untouched by Reclaim.
	if _, err := os.Stat(filepath.Join(dir, "task-00001.done")); err != nil {
		t.Fatal(err)
	}
}
