package dedupcache

import (
	"testing"

	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/memory"
	"repro/internal/xrand"
)

func smallConfig() Config {
	return Config{TagEntries: 256, TagWays: 8, DataEntries: 96, HashEntries: 128}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{TagEntries: 0, TagWays: 8, DataEntries: 10, HashEntries: 10},
		{TagEntries: 100, TagWays: 8, DataEntries: 10, HashEntries: 10},
		{TagEntries: 64, TagWays: 8, DataEntries: 0, HashEntries: 10},
		{TagEntries: 64, TagWays: 8, DataEntries: 10, HashEntries: 0},
	} {
		if bad.Validate() == nil {
			t.Errorf("bad config %+v accepted", bad)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	rng := xrand.New(1)
	ref := map[line.Addr]line.Line{}
	for i := 0; i < 5000; i++ {
		addr := line.Addr(rng.Intn(512)) * line.Size
		if rng.Bool(0.4) {
			var l line.Line
			// Half the writes reuse a small value pool: duplicates.
			if rng.Bool(0.5) {
				l.SetWord(0, uint64(rng.Intn(4)))
			} else {
				for j := 0; j < 8; j++ {
					l.SetWord(j, rng.Uint64())
				}
			}
			c.Write(addr, l)
			ref[addr] = l
			mem.Poke(addr, l)
		} else {
			got, _ := c.Read(addr)
			want, ok := ref[addr]
			if !ok {
				want = mem.Peek(addr)
			}
			if got != want {
				t.Fatalf("step %d: wrong data for %#x", i, uint64(addr))
			}
		}
		if i%500 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeduplicationHappens(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	var l line.Line
	l.SetWord(0, 0xABCD)
	// 40 addresses, one shared value.
	for i := 0; i < 40; i++ {
		mem.Poke(line.Addr(i)*line.Size, l)
		c.Read(line.Addr(i) * line.Size)
	}
	fp := c.Footprint()
	if fp.ResidentLines != 40 {
		t.Fatalf("resident %d", fp.ResidentLines)
	}
	if fp.DataBytesUsed != line.Size {
		t.Fatalf("40 identical lines use %d data bytes, want one block", fp.DataBytesUsed)
	}
	if c.Extra().Deduped != 39 {
		t.Fatalf("deduped %d, want 39", c.Extra().Deduped)
	}
	if r := fp.CompressionRatio(); r != 40 {
		t.Fatalf("compression %v", r)
	}
}

func TestCopyOnWriteUnshares(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	var l line.Line
	l.SetWord(0, 7)
	mem.Poke(0, l)
	mem.Poke(64, l)
	c.Read(0)
	c.Read(64) // shares the block
	var l2 line.Line
	l2.SetWord(0, 8)
	c.Write(0, l2)
	// The other sharer must still read the old value.
	got, hit := c.Read(64)
	if !hit || got != l {
		t.Fatalf("sharer corrupted: hit=%v", hit)
	}
	got, _ = c.Read(0)
	if got != l2 {
		t.Fatal("write lost")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUniqueContentDoesNotDedup(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	rng := xrand.New(3)
	for i := 0; i < 50; i++ {
		var l line.Line
		for j := 0; j < 8; j++ {
			l.SetWord(j, rng.Uint64())
		}
		mem.Poke(line.Addr(i)*line.Size, l)
		c.Read(line.Addr(i) * line.Size)
	}
	if d := c.Extra().Deduped; d != 0 {
		t.Fatalf("unique content deduped %d times", d)
	}
	fp := c.Footprint()
	if fp.DataBytesUsed != 50*line.Size {
		t.Fatalf("data bytes %d", fp.DataBytesUsed)
	}
}

func TestDataPressureEvictsTagLists(t *testing.T) {
	// More unique lines than data entries: the clock must evict blocks
	// and their tags without corrupting anything.
	mem := memory.NewStore()
	cfg := smallConfig()
	cfg.DataEntries = 16
	c := MustNew(cfg, mem)
	rng := xrand.New(4)
	for i := 0; i < 2000; i++ {
		addr := line.Addr(rng.Intn(64)) * line.Size
		var l line.Line
		l.SetWord(0, rng.Uint64())
		c.Write(addr, l)
		mem.Poke(addr, l)
		got, _ := c.Read(addr)
		if got != l {
			t.Fatalf("step %d: corruption", i)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.Extra().ListEvictions == 0 {
		t.Fatal("no data-pressure evictions under overload")
	}
}

func TestDirtyWritebackOnEviction(t *testing.T) {
	mem := memory.NewStore()
	cfg := smallConfig()
	cfg.TagEntries = 16
	cfg.TagWays = 8
	cfg.DataEntries = 8
	c := MustNew(cfg, mem)
	var l line.Line
	l.SetWord(0, 42)
	c.Write(0, l) // dirty, write-allocate
	rng := xrand.New(5)
	// Force eviction via pressure.
	for i := 1; i < 64; i++ {
		var x line.Line
		x.SetWord(0, rng.Uint64())
		c.Write(line.Addr(i)*line.Size, x)
	}
	if mem.Peek(0) != l && func() bool { got, _ := c.Read(0); return got != l }() {
		t.Fatal("dirty data lost (neither cached nor written back)")
	}
	if c.Stats().Writebacks == 0 {
		t.Fatal("no writebacks recorded")
	}
}

func TestStatsAndReset(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	c.Read(0)
	c.Read(0)
	s := c.Stats()
	if s.Reads != 2 || s.ReadHits != 1 || s.Fills != 1 {
		t.Fatalf("stats %+v", s)
	}
	c.ResetStats()
	if c.Stats().Reads != 0 {
		t.Fatal("reset failed")
	}
}

var _ llc.Cache = (*Cache)(nil)
