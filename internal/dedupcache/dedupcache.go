// Package dedupcache implements the Dedup LLC (Tian, Khan, Jiménez, Loh;
// ICS 2014), the state-of-the-art inter-cacheline baseline of §2.3: a
// decoupled cache in which several tags may point to one shared copy of
// identical data, located at insertion time via a hash table of recent
// data fingerprints and verified against the actual block contents.
//
// Tags sharing a data block form a doubly-linked list so that evicting the
// block can evict every referencing tag (the paper's noted overhead).
package dedupcache

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/memory"
)

// Config sizes a Dedup LLC; DefaultConfig matches Table 2.
type Config struct {
	// TagEntries is the tag-array size (2× conventional at iso-silicon).
	TagEntries int
	// TagWays is the tag associativity.
	TagWays int
	// DataEntries is the number of 64-byte data blocks.
	DataEntries int
	// HashEntries is the fingerprint hash-table size (most-recently-used
	// fingerprints; 8192 24-bit entries in Table 2).
	HashEntries int
}

// DefaultConfig returns the Table 2 iso-silicon Dedup configuration.
func DefaultConfig() Config {
	return Config{TagEntries: 32768, TagWays: 8, DataEntries: 11700, HashEntries: 8192}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TagEntries <= 0 || c.TagWays <= 0 || c.TagEntries%c.TagWays != 0 {
		return fmt.Errorf("dedupcache: bad tag geometry %d/%d", c.TagEntries, c.TagWays)
	}
	if c.DataEntries <= 0 || c.HashEntries <= 0 {
		return fmt.Errorf("dedupcache: bad data/hash geometry")
	}
	return nil
}

// tagPayload links a tag into its data block's tag list.
type tagPayload struct {
	dataIdx    int // index into the data array; -1 when unset
	prev, next int // doubly-linked list of tags sharing dataIdx; -1 ends
}

// dataEntry is one 64-byte block shared by one or more tags.
type dataEntry struct {
	valid  bool
	data   line.Line
	head   int // first tag in the sharing list
	refs   int
	refBit bool // clock replacement state
}

// hashSlot is one hash-table entry: a content fingerprint and the data
// block it was last seen in.
type hashSlot struct {
	valid   bool
	fp      uint16
	dataIdx int
}

// ExtraStats counts Dedup-specific events.
type ExtraStats struct {
	// Insertions counts line installs; Deduped counts installs that found
	// an identical resident block.
	Insertions uint64
	Deduped    uint64
	// FalseMatches counts fingerprint hits whose verification against the
	// full block failed (§2.3: rare in practice).
	FalseMatches uint64
	// ListEvictions counts tags evicted because their shared data block
	// was evicted.
	ListEvictions uint64
}

// Cache is a Dedup LLC.
type Cache struct {
	cfg   Config
	tags  *cache.Array[tagPayload]
	data  []dataEntry
	free  []int
	table []hashSlot
	clock int
	mem   *memory.Store

	stats llc.Stats
	extra ExtraStats
}

var _ llc.Cache = (*Cache)(nil)

// New builds a Dedup LLC over mem.
func New(cfg Config, mem *memory.Store) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg: cfg,
		tags: cache.New[tagPayload](cache.Config{
			Entries: cfg.TagEntries, Ways: cfg.TagWays, Policy: "plru",
		}),
		data:  make([]dataEntry, cfg.DataEntries),
		table: make([]hashSlot, cfg.HashEntries),
		mem:   mem,
	}
	c.free = make([]int, cfg.DataEntries)
	for i := range c.free {
		c.free[i] = cfg.DataEntries - 1 - i
	}
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, mem *memory.Store) *Cache {
	c, err := New(cfg, mem)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements llc.Cache.
func (c *Cache) Name() string { return "Dedup" }

// Extra returns the Dedup-specific statistics.
func (c *Cache) Extra() ExtraStats { return c.extra }

// fingerprint computes the 16-bit content hash used by the hash table.
func fingerprint(l *line.Line) uint16 {
	var h uint64 = 0xcbf29ce484222325
	for _, w := range l.Words() {
		h ^= w
		h *= 0x100000001b3
	}
	return uint16(h ^ h>>16 ^ h>>32 ^ h>>48)
}

func (c *Cache) slotOf(fp uint16) *hashSlot {
	return &c.table[int(fp)%len(c.table)]
}

// Read implements llc.Cache.
//
//thesaurus:hotpath
func (c *Cache) Read(addr line.Addr) (line.Line, bool) {
	addr = addr.LineAddr()
	c.stats.Reads++
	if e, _ := c.tags.Lookup(addr); e != nil {
		c.stats.ReadHits++
		d := &c.data[e.Payload.dataIdx]
		d.refBit = true
		return d.data, true
	}
	data := c.mem.Read(addr, memory.Fill)
	c.stats.Fills++
	c.install(addr, data, false)
	return data, false
}

// Write implements llc.Cache. A write to a shared block detaches the tag
// (copy-on-write) and re-runs the insertion data path with the new value,
// which may re-deduplicate against a different block.
//
//thesaurus:hotpath
func (c *Cache) Write(addr line.Addr, data line.Line) bool {
	addr = addr.LineAddr()
	c.stats.Writes++
	if e, idx := c.tags.Lookup(addr); e != nil {
		c.stats.WriteHits++
		c.detach(idx, e)
		c.attach(idx, e, data)
		e.Dirty = true
		return true
	}
	c.install(addr, data, true)
	return false
}

// install allocates a tag and runs the dedup insertion path.
func (c *Cache) install(addr line.Addr, data line.Line, dirty bool) {
	e, idx, evicted, had := c.tags.Insert(addr)
	if had {
		c.retireTagCopy(evicted)
	}
	e.Payload = tagPayload{dataIdx: -1, prev: -1, next: -1}
	c.attach(idx, e, data)
	e.Dirty = dirty
	c.extra.Insertions++
}

// attach points tag idx at a data block holding data, deduplicating when
// an identical block is found via the hash table (actions ① and ② of
// Fig. 4), and allocating/evicting otherwise.
func (c *Cache) attach(idx int, e *cache.Entry[tagPayload], data line.Line) {
	fp := fingerprint(&data)
	slot := c.slotOf(fp)
	if slot.valid && slot.fp == fp {
		d := &c.data[slot.dataIdx]
		if d.valid {
			if d.data == data {
				// Verified duplicate: join the sharing list.
				c.linkTag(slot.dataIdx, idx, e)
				c.extra.Deduped++
				d.refBit = true
				return
			}
			c.extra.FalseMatches++
		}
	}
	// Unique content: allocate a fresh data block.
	dataIdx := c.allocData()
	d := &c.data[dataIdx]
	*d = dataEntry{valid: true, data: data, head: idx, refs: 1, refBit: true}
	e.Payload.dataIdx = dataIdx
	e.Payload.prev, e.Payload.next = -1, -1
	*slot = hashSlot{valid: true, fp: fp, dataIdx: dataIdx}
}

// linkTag prepends tag idx to data block dataIdx's sharing list.
func (c *Cache) linkTag(dataIdx, idx int, e *cache.Entry[tagPayload]) {
	d := &c.data[dataIdx]
	e.Payload.dataIdx = dataIdx
	e.Payload.prev = -1
	e.Payload.next = d.head
	if d.head >= 0 {
		c.tags.EntryAt(d.head).Payload.prev = idx
	}
	d.head = idx
	d.refs++
}

// detach removes tag idx from its data block's sharing list, freeing the
// block when the last reference leaves.
func (c *Cache) detach(idx int, e *cache.Entry[tagPayload]) {
	p := e.Payload
	if p.dataIdx < 0 {
		return
	}
	d := &c.data[p.dataIdx]
	if p.prev >= 0 {
		c.tags.EntryAt(p.prev).Payload.next = p.next
	} else {
		d.head = p.next
	}
	if p.next >= 0 {
		c.tags.EntryAt(p.next).Payload.prev = p.prev
	}
	d.refs--
	if d.refs == 0 {
		c.freeData(p.dataIdx)
	}
	e.Payload = tagPayload{dataIdx: -1, prev: -1, next: -1}
}

// retireTagCopy handles a tag displaced by the tag replacement policy.
// The copy's list links are stale only if another detach touched them,
// which cannot happen between Insert and this call.
func (c *Cache) retireTagCopy(evicted cache.Entry[tagPayload]) {
	if evicted.Dirty {
		c.mem.Write(evicted.Addr, c.data[evicted.Payload.dataIdx].data, memory.Writeback)
		c.stats.Writebacks++
	}
	// Unlink using the copied pointers.
	p := evicted.Payload
	d := &c.data[p.dataIdx]
	if p.prev >= 0 {
		c.tags.EntryAt(p.prev).Payload.next = p.next
	} else {
		d.head = p.next
	}
	if p.next >= 0 {
		c.tags.EntryAt(p.next).Payload.prev = p.prev
	}
	d.refs--
	if d.refs == 0 {
		c.freeData(p.dataIdx)
	}
}

// freeData invalidates data block dataIdx and any hash slot naming it.
func (c *Cache) freeData(dataIdx int) {
	c.data[dataIdx].valid = false
	c.free = append(c.free, dataIdx)
	// Lazy hash-table hygiene: a slot pointing at an invalid or reused
	// block fails verification, but clear exact matches eagerly.
	fp := fingerprint(&c.data[dataIdx].data)
	if s := c.slotOf(fp); s.valid && s.dataIdx == dataIdx {
		s.valid = false
	}
}

// allocData returns a free data index, evicting a block (and all its
// tags) with a clock policy when none is free.
func (c *Cache) allocData() int {
	if n := len(c.free); n > 0 {
		idx := c.free[n-1]
		c.free = c.free[:n-1]
		return idx
	}
	// Clock sweep: skip recently referenced blocks once.
	for spins := 0; ; spins++ {
		d := &c.data[c.clock]
		victim := c.clock
		c.clock = (c.clock + 1) % len(c.data)
		if !d.valid {
			continue
		}
		if d.refBit && spins < 2*len(c.data) {
			d.refBit = false
			continue
		}
		c.evictData(victim)
		idx := c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		return idx
	}
}

// evictData evicts block dataIdx: every tag in its sharing list is
// written back (if dirty) and invalidated.
func (c *Cache) evictData(dataIdx int) {
	d := &c.data[dataIdx]
	for t := d.head; t >= 0; {
		e := c.tags.EntryAt(t)
		next := e.Payload.next
		if e.Dirty {
			c.mem.Write(e.Addr, d.data, memory.Writeback)
			c.stats.Writebacks++
		}
		c.tags.InvalidateIndex(t)
		c.extra.ListEvictions++
		t = next
	}
	d.head = -1
	d.refs = 0
	c.freeData(dataIdx)
}

// Stats implements llc.Cache.
func (c *Cache) Stats() llc.Stats { return c.stats }

// ResetStats implements llc.Cache.
func (c *Cache) ResetStats() {
	c.stats = llc.Stats{}
	c.extra = ExtraStats{}
	c.tags.ResetStats()
}

// Footprint implements llc.Cache: resident addresses versus the unique
// data blocks actually stored.
func (c *Cache) Footprint() llc.Footprint {
	used := 0
	for i := range c.data {
		if c.data[i].valid {
			used++
		}
	}
	return llc.Footprint{
		ResidentLines:  c.tags.CountValid(),
		DataBytesUsed:  used * line.Size,
		DataBytesTotal: c.cfg.DataEntries * line.Size,
	}
}

// Snapshot is the Dedup-specific release snapshot.
type Snapshot struct {
	Extra ExtraStats
}

// Clone implements llc.ExtraSnapshot (ExtraStats is a pure value type,
// so a shallow copy is a deep copy).
func (s *Snapshot) Clone() llc.ExtraSnapshot {
	cp := *s
	return &cp
}

// Release implements llc.Cache: it extracts the statistics snapshot and
// frees the tag, data, and hash arrays. The cache must not be used
// afterwards.
func (c *Cache) Release() llc.StatsSnapshot {
	if c.tags == nil {
		panic("dedupcache: Release called twice")
	}
	c.tags = nil
	c.data = nil
	c.free = nil
	c.table = nil
	return llc.StatsSnapshot{Design: c.Name(), Stats: c.stats, Extra: &Snapshot{Extra: c.extra}}
}

// CheckInvariants validates refcounts and list structure; used by tests.
// (The access path itself allocates only at construction: the hash chain
// and free list are fixed-capacity, so no scratch arena is needed here.)
func (c *Cache) CheckInvariants() error {
	refs := make(map[int]int, c.cfg.DataEntries)
	var err error
	c.tags.ForEach(func(idx int, e *cache.Entry[tagPayload]) {
		di := e.Payload.dataIdx
		if di < 0 || di >= len(c.data) || !c.data[di].valid {
			err = fmt.Errorf("tag %d points at invalid data %d", idx, di)
			return
		}
		refs[di]++
	})
	if err != nil {
		return err
	}
	for i := range c.data {
		d := &c.data[i]
		if !d.valid {
			continue
		}
		if refs[i] != d.refs {
			return fmt.Errorf("data %d: refs=%d but %d referencing tags", i, d.refs, refs[i])
		}
		// Walk the list and confirm it reaches exactly refs tags.
		n := 0
		for t := d.head; t >= 0; t = c.tags.EntryAt(t).Payload.next {
			if c.tags.EntryAt(t).Payload.dataIdx != i {
				return fmt.Errorf("data %d: list member %d points elsewhere", i, t)
			}
			n++
			if n > d.refs {
				break
			}
		}
		if n != d.refs {
			return fmt.Errorf("data %d: list has %d members, refs=%d", i, n, d.refs)
		}
	}
	return nil
}
