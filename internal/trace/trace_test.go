package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/line"
	"repro/internal/xrand"
)

func randomAccesses(seed uint64, n int) []Access {
	rng := xrand.New(seed)
	out := make([]Access, n)
	for i := range out {
		out[i].Addr = line.Addr(rng.Uint64n(1 << 40)).LineAddr()
		out[i].Write = rng.Bool(0.3)
		out[i].Gap = rng.Uint32() % 1000
		if out[i].Write {
			for j := range out[i].Data {
				out[i].Data[j] = byte(rng.Uint32())
			}
		}
	}
	return out
}

func TestWriteReadRoundTrip(t *testing.T) {
	accesses := randomAccesses(1, 500)
	var buf bytes.Buffer
	if err := Write(&buf, accesses); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(accesses) {
		t.Fatalf("length %d, want %d", len(got), len(accesses))
	}
	for i := range got {
		if got[i] != accesses[i] {
			t.Fatalf("access %d mismatch", i)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %d accesses, err %v", len(got), err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader(make([]byte, 12))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	accesses := randomAccesses(2, 10)
	var buf bytes.Buffer
	if err := Write(&buf, accesses); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestSliceSource(t *testing.T) {
	accesses := randomAccesses(3, 20)
	src := NewSliceSource(accesses)
	var a Access
	n := 0
	for src.Next(&a) {
		if a != accesses[n] {
			t.Fatalf("access %d mismatch", n)
		}
		n++
	}
	if n != 20 {
		t.Fatalf("drained %d", n)
	}
	src.Reset()
	if !src.Next(&a) || a != accesses[0] {
		t.Fatal("reset failed")
	}
}

func TestCollect(t *testing.T) {
	accesses := randomAccesses(4, 30)
	if got := Collect(NewSliceSource(accesses), 10); len(got) != 10 {
		t.Fatalf("Collect(10) = %d", len(got))
	}
	if got := Collect(NewSliceSource(accesses), 0); len(got) != 30 {
		t.Fatalf("Collect(0) = %d", len(got))
	}
}

func TestInstructions(t *testing.T) {
	accesses := []Access{{Gap: 5}, {Gap: 0}, {Gap: 10}}
	if n := Instructions(accesses); n != 18 { // gaps + 3 access instructions
		t.Fatalf("Instructions = %d", n)
	}
}

func TestRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		accesses := randomAccesses(seed, int(n))
		var buf bytes.Buffer
		if err := Write(&buf, accesses); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(accesses) {
			return false
		}
		for i := range got {
			if got[i] != accesses[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
