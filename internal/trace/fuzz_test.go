package trace

import (
	"bytes"
	"testing"
)

// FuzzRead: arbitrary bytes must never panic the trace parser.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	_ = Write(&buf, []Access{{Addr: 0x1000, Write: true, Gap: 3}})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 11))
	f.Fuzz(func(t *testing.T, data []byte) {
		accesses, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must re-serialize and re-parse identically.
		var out bytes.Buffer
		if err := Write(&out, accesses); err != nil {
			t.Fatal(err)
		}
		again, err := Read(&out)
		if err != nil || len(again) != len(accesses) {
			t.Fatalf("re-parse failed: %v", err)
		}
	})
}
