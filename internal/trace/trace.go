// Package trace defines the memory-access trace representation shared by
// the workload generators, the cache hierarchy, and the experiment
// harness. Because compression behaviour depends on data values, events
// carry full 64-byte line contents, not just addresses.
//
// Two event levels exist:
//
//   - Access: a core-level load/store as emitted by a workload generator,
//     annotated with the instruction gap since the previous access so the
//     harness can compute MPKI and IPC;
//   - Event (in package sim): the LLC-level stream after L1/L2 filtering.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/line"
)

// Access is one core-level memory access.
type Access struct {
	// Addr is the byte address accessed; caches operate on Addr.LineAddr().
	Addr line.Addr
	// Write indicates a store; Data then holds the full new line content.
	Write bool
	// Gap is the number of non-memory instructions executed since the
	// previous access (the access instruction itself adds one more).
	Gap uint32
	// Data is the complete content of the accessed line after the access
	// (stores) — unused for loads.
	Data line.Line
}

// Source produces a stream of accesses. Next returns false when the trace
// is exhausted. Implementations are single-consumer.
type Source interface {
	// Next fills *a with the next access and reports whether one existed.
	Next(a *Access) bool
}

// BatchSource is an optional extension of Source. Consumers that process
// many accesses (the simulation drivers) can pull them a batch at a time,
// amortizing the per-access interface call; producers must emit exactly
// the sequence repeated Next calls would.
type BatchSource interface {
	Source
	// FillBatch fills dst with the next accesses and returns how many were
	// produced; fewer than len(dst) (including 0) means the trace ended.
	FillBatch(dst []Access) int
}

// SliceSource replays a fixed slice of accesses.
type SliceSource struct {
	accesses []Access
	pos      int
}

// NewSliceSource returns a Source over the given accesses.
func NewSliceSource(accesses []Access) *SliceSource {
	return &SliceSource{accesses: accesses}
}

// Next implements Source.
func (s *SliceSource) Next(a *Access) bool {
	if s.pos >= len(s.accesses) {
		return false
	}
	*a = s.accesses[s.pos]
	s.pos++
	return true
}

// FillBatch implements BatchSource by copying directly from the backing
// slice.
func (s *SliceSource) FillBatch(dst []Access) int {
	n := copy(dst, s.accesses[s.pos:])
	s.pos += n
	return n
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Collect drains up to max accesses from src into a slice (max <= 0 means
// drain everything).
func Collect(src Source, max int) []Access {
	var out []Access
	if max > 0 {
		out = make([]Access, 0, max)
	}
	var a Access
	for (max <= 0 || len(out) < max) && src.Next(&a) {
		out = append(out, a)
	}
	return out
}

// magic and version identify the binary trace format written by Write.
const (
	magic   = 0x54524143 // "TRAC"
	version = 1
)

// Write serializes accesses to w in a compact binary format
// (little-endian): a 12-byte header followed by fixed-size records.
func Write(w io.Writer, accesses []Access) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(accesses)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [13 + line.Size]byte
	for i := range accesses {
		a := &accesses[i]
		binary.LittleEndian.PutUint64(rec[0:], uint64(a.Addr))
		binary.LittleEndian.PutUint32(rec[8:], a.Gap)
		if a.Write {
			rec[12] = 1
		} else {
			rec[12] = 0
		}
		copy(rec[13:], a.Data[:])
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) ([]Access, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != magic {
		return nil, fmt.Errorf("trace: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint32(hdr[8:])
	out := make([]Access, 0, n)
	var rec [13 + line.Size]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		var a Access
		a.Addr = line.Addr(binary.LittleEndian.Uint64(rec[0:]))
		a.Gap = binary.LittleEndian.Uint32(rec[8:])
		a.Write = rec[12] != 0
		copy(a.Data[:], rec[13:])
		out = append(out, a)
	}
	return out, nil
}

// Instructions returns the total instruction count represented by the
// trace: each access contributes its gap plus itself.
func Instructions(accesses []Access) uint64 {
	var n uint64
	for i := range accesses {
		n += uint64(accesses[i].Gap) + 1
	}
	return n
}
