// Package ideal implements the idealized compression models the paper
// uses to bound what is achievable:
//
//   - Ideal-Dedup (Fig. 1): instantly finds exact duplicates anywhere in
//     the LLC and stores each distinct value once;
//   - Ideal-Diff (Fig. 1): instantly finds the most similar resident line
//     and stores only the differing bytes when that is smaller;
//   - an online Ideal-Diff cache (the "Ideal" series of Fig. 13) that
//     performs the whole-cache nearest-line search at every insertion.
//
// The whole-cache search is accelerated with an exact-word index: lines
// within a useful diff distance almost always share at least one aligned
// 8-byte word with their nearest neighbour, so candidates are found by
// word equality and supplemented with a random probe set. This is the one
// deliberate approximation in the package (documented in DESIGN.md).
package ideal

import (
	"repro/internal/cache"
	"repro/internal/diffenc"
	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/memory"
	"repro/internal/xrand"
)

// DedupSnapshot returns the effective-capacity factor of ideal exact
// deduplication over a snapshot: total lines divided by distinct values
// (zero lines are free, as a zero tag encoding needs no data).
func DedupSnapshot(lines []line.Line) float64 {
	if len(lines) == 0 {
		return 1
	}
	uniq := make(map[line.Line]struct{}, len(lines))
	nonZero := 0
	for i := range lines {
		if lines[i].IsZero() {
			continue
		}
		nonZero++
		uniq[lines[i]] = struct{}{}
	}
	if len(uniq) == 0 {
		return float64(len(lines)) // all-zero snapshot: effectively free
	}
	return float64(len(lines)) / float64(len(uniq))
}

// DiffSnapshot returns the effective-capacity factor of ideal diff
// compression over a snapshot, processed in insertion order: each line is
// stored as mask+diff against the most similar earlier line whenever that
// is smaller than a raw line.
func DiffSnapshot(lines []line.Line) float64 {
	if len(lines) == 0 {
		return 1
	}
	idx := newWordIndex(0x1dea)
	costBytes := 0
	for i := range lines {
		l := &lines[i]
		if l.IsZero() {
			continue // zero lines are tag-only
		}
		cost := line.Size
		if best, ok := idx.nearest(l, lines); ok {
			if d := line.DiffBytes(l, &lines[best]); diffenc.DiffSizeBytes(d) < cost {
				cost = diffenc.DiffSizeBytes(d)
			}
		}
		// A 0+diff against the implicit zero line is also available.
		if z := diffenc.DiffSizeBytes(l.PopCountNonZero()); z < cost {
			cost = z
		}
		costBytes += cost
		idx.add(i, l)
	}
	if costBytes == 0 {
		return float64(len(lines))
	}
	return float64(len(lines)*line.Size) / float64(costBytes)
}

// DiffCDF returns, for each n in 0..64, the fraction of lines whose
// minimum byte-difference against any other snapshot line is at most n
// (Fig. 2 top). Exact duplicates fall in the n=0 bucket.
func DiffCDF(lines []line.Line) [line.Size + 1]float64 {
	var cdf [line.Size + 1]float64
	if len(lines) < 2 {
		return cdf
	}
	idx := newWordIndex(0x2cdf)
	for i := range lines {
		idx.add(i, &lines[i])
	}
	counts := make([]int, line.Size+1)
	for i := range lines {
		best := line.Size
		if j, ok := idx.nearestExcluding(&lines[i], lines, i); ok {
			best = line.DiffBytes(&lines[i], &lines[j])
		}
		counts[best]++
	}
	cum := 0
	for n := 0; n <= line.Size; n++ {
		cum += counts[n]
		cdf[n] = float64(cum) / float64(len(lines))
	}
	return cdf
}

// wordIndex locates near-duplicate candidates by exact 8-byte word match,
// with a bounded random probe fallback.
type wordIndex struct {
	byWord map[uint64][]int
	all    []int
	rng    *xrand.Rand
}

// maxCandidates bounds the per-lookup work; beyond this the candidate set
// is sampled.
const maxCandidates = 192

// randomProbes supplements word-match candidates to catch neighbours that
// differ in every word.
const randomProbes = 32

func newWordIndex(seed uint64) *wordIndex {
	return &wordIndex{byWord: make(map[uint64][]int), rng: xrand.New(seed)}
}

func (ix *wordIndex) add(id int, l *line.Line) {
	for i := 0; i < line.WordsPerLine; i++ {
		w := l.Word(i)
		lst := ix.byWord[w]
		if len(lst) < maxCandidates { // duplicate-heavy words need no more
			ix.byWord[w] = append(lst, id)
		}
	}
	ix.all = append(ix.all, id)
}

// nearest returns the indexed line most similar to l.
func (ix *wordIndex) nearest(l *line.Line, lines []line.Line) (int, bool) {
	return ix.nearestExcluding(l, lines, -1)
}

// nearestExcluding is nearest but skips the line with index self.
func (ix *wordIndex) nearestExcluding(l *line.Line, lines []line.Line, self int) (int, bool) {
	best, bestDiff := -1, line.Size+1
	seen := 0
	consider := func(id int) {
		if id == self {
			return
		}
		seen++
		if d := line.DiffBytes(l, &lines[id]); d < bestDiff {
			best, bestDiff = id, d
		}
	}
	for i := 0; i < line.WordsPerLine && bestDiff > 0; i++ {
		for _, id := range ix.byWord[l.Word(i)] {
			consider(id)
			if seen > maxCandidates {
				break
			}
		}
	}
	for p := 0; p < randomProbes && len(ix.all) > 0; p++ {
		consider(ix.all[ix.rng.Intn(len(ix.all))])
	}
	return best, best >= 0
}

// Config sizes the online Ideal-Diff cache: tag count matching the
// compressed designs and a data-byte budget matching Thesaurus.
type Config struct {
	TagEntries int
	TagWays    int
	DataBytes  int
	Seed       uint64
}

// DefaultConfig matches the iso-silicon envelope of Table 2.
func DefaultConfig() Config {
	return Config{TagEntries: 32768, TagWays: 8, DataBytes: 1462 * 512, Seed: 0x1dea1}
}

// payload records the line and its frozen compressed size. The ideal
// model charges each line the size observed at insertion (the paper's
// ideal searches the cache at insertion time).
type payload struct {
	data line.Line
	cost int
}

// Cache is the online ideal-diff LLC (the "Ideal" series in Fig. 13).
type Cache struct {
	cfg   Config
	tags  *cache.Array[payload]
	used  int
	clock int
	mem   *memory.Store
	idx   map[uint64][]int // word → tag indices (lazily cleaned)
	rng   *xrand.Rand

	stats llc.Stats
}

var _ llc.Cache = (*Cache)(nil)

// New builds the ideal cache over mem.
func New(cfg Config, mem *memory.Store) *Cache {
	return &Cache{
		cfg: cfg,
		tags: cache.New[payload](cache.Config{
			Entries: cfg.TagEntries, Ways: cfg.TagWays, Policy: "plru",
		}),
		mem: mem,
		idx: make(map[uint64][]int),
		rng: xrand.New(cfg.Seed),
	}
}

// Name implements llc.Cache.
func (c *Cache) Name() string { return "Ideal" }

// Read implements llc.Cache.
func (c *Cache) Read(addr line.Addr) (line.Line, bool) {
	addr = addr.LineAddr()
	c.stats.Reads++
	if e, _ := c.tags.Lookup(addr); e != nil {
		c.stats.ReadHits++
		return e.Payload.data, true
	}
	data := c.mem.Read(addr, memory.Fill)
	c.stats.Fills++
	c.install(addr, data, false)
	return data, false
}

// Write implements llc.Cache.
func (c *Cache) Write(addr line.Addr, data line.Line) bool {
	addr = addr.LineAddr()
	c.stats.Writes++
	if e, idx := c.tags.Lookup(addr); e != nil {
		c.stats.WriteHits++
		c.used -= e.Payload.cost
		e.Payload = payload{data: data, cost: c.cost(&data)}
		c.used += e.Payload.cost
		c.indexLine(idx, &data)
		c.evictToBudget(addr)
		e.Dirty = true
		return true
	}
	c.install(addr, data, true)
	return false
}

// cost returns the idealized storage cost of data given current contents.
func (c *Cache) cost(data *line.Line) int {
	if data.IsZero() {
		return 0
	}
	best := line.Size
	if z := diffenc.DiffSizeBytes(data.PopCountNonZero()); z < best {
		best = z
	}
	probe := func(id int) {
		e := c.tags.EntryAt(id)
		if !e.Valid {
			return
		}
		if d := diffenc.DiffSizeBytes(line.DiffBytes(data, &e.Payload.data)); d < best {
			best = d
		}
	}
	seen := 0
	for i := 0; i < line.WordsPerLine && best > diffenc.DiffSizeBytes(0); i++ {
		lst := c.idx[data.Word(i)]
		kept := lst[:0]
		for _, id := range lst {
			e := c.tags.EntryAt(id)
			if !e.Valid || !hasWord(&e.Payload.data, data.Word(i)) {
				continue // lazily drop stale index entries
			}
			kept = append(kept, id)
			probe(id)
			seen++
			if seen > maxCandidates {
				break
			}
		}
		c.idx[data.Word(i)] = kept
	}
	for p := 0; p < randomProbes; p++ {
		probe(c.rng.Intn(c.cfg.TagEntries))
	}
	return best
}

func hasWord(l *line.Line, w uint64) bool {
	for i := 0; i < line.WordsPerLine; i++ {
		if l.Word(i) == w {
			return true
		}
	}
	return false
}

// indexLine registers the line's words for candidate lookup.
func (c *Cache) indexLine(tagIdx int, l *line.Line) {
	for i := 0; i < line.WordsPerLine; i++ {
		w := l.Word(i)
		lst := c.idx[w]
		if len(lst) < maxCandidates {
			c.idx[w] = append(lst, tagIdx)
		}
	}
}

// install inserts a new line, charging its ideal compressed size.
func (c *Cache) install(addr line.Addr, data line.Line, dirty bool) {
	e, idx, evicted, had := c.tags.Insert(addr)
	if had {
		c.retire(evicted)
	}
	e.Payload = payload{data: data, cost: c.cost(&data)}
	e.Dirty = dirty
	c.used += e.Payload.cost
	c.indexLine(idx, &data)
	c.evictToBudget(addr)
}

// evictToBudget evicts clock victims until the data budget is respected.
func (c *Cache) evictToBudget(keep line.Addr) {
	for c.used > c.cfg.DataBytes {
		e := c.tags.EntryAt(c.clock)
		victim := c.clock
		c.clock = (c.clock + 1) % c.cfg.TagEntries
		if !e.Valid || e.Addr == keep.LineAddr() {
			continue
		}
		old := c.tags.InvalidateIndex(victim)
		c.retire(old)
	}
}

// retire writes back and un-charges a displaced line.
func (c *Cache) retire(evicted cache.Entry[payload]) {
	c.used -= evicted.Payload.cost
	if evicted.Dirty {
		c.mem.Write(evicted.Addr, evicted.Payload.data, memory.Writeback)
		c.stats.Writebacks++
	}
}

// DecompressionCycles reports the idealized one-cycle diff application.
func (c *Cache) DecompressionCycles() float64 { return 1 }

// Stats implements llc.Cache.
func (c *Cache) Stats() llc.Stats { return c.stats }

// ResetStats implements llc.Cache.
func (c *Cache) ResetStats() {
	c.stats = llc.Stats{}
	c.tags.ResetStats()
}

// Footprint implements llc.Cache.
func (c *Cache) Footprint() llc.Footprint {
	used := c.used
	return llc.Footprint{
		ResidentLines:  c.tags.CountValid(),
		DataBytesUsed:  used,
		DataBytesTotal: c.cfg.DataBytes,
	}
}

// Release implements llc.Cache: the ideal model keeps no post-run extras,
// so the snapshot carries only the common statistics. The tag array and
// the candidate index are freed; the cache must not be used afterwards.
func (c *Cache) Release() llc.StatsSnapshot {
	if c.tags == nil {
		panic("ideal: Release called twice")
	}
	c.tags = nil
	c.idx = nil
	return llc.StatsSnapshot{Design: c.Name(), Stats: c.stats}
}
