package ideal

import (
	"testing"

	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/xrand"
)

func TestDedupSnapshotIdenticalLines(t *testing.T) {
	var l line.Line
	l.SetWord(0, 5)
	lines := []line.Line{l, l, l, l}
	if f := DedupSnapshot(lines); f != 4 {
		t.Fatalf("4 identical lines: factor %v", f)
	}
}

func TestDedupSnapshotUniqueLines(t *testing.T) {
	rng := xrand.New(1)
	var lines []line.Line
	for i := 0; i < 20; i++ {
		var l line.Line
		for j := 0; j < 8; j++ {
			l.SetWord(j, rng.Uint64())
		}
		lines = append(lines, l)
	}
	if f := DedupSnapshot(lines); f != 1 {
		t.Fatalf("unique lines: factor %v", f)
	}
}

func TestDedupSnapshotZerosAreFree(t *testing.T) {
	var l line.Line
	l.SetWord(0, 9)
	lines := []line.Line{{}, {}, {}, l}
	if f := DedupSnapshot(lines); f != 4 {
		t.Fatalf("3 zeros + 1 unique: factor %v", f)
	}
}

func TestDiffSnapshotNearDuplicates(t *testing.T) {
	var proto line.Line
	for i := range proto {
		proto[i] = byte(i + 1)
	}
	var lines []line.Line
	for i := 0; i < 32; i++ {
		l := proto
		l[i%8] ^= byte(i + 1)
		lines = append(lines, l)
	}
	f := DiffSnapshot(lines)
	// One raw line + 31 diffs of ~9-10 bytes each: factor ≈ 64×32/(64+31×10).
	if f < 3 {
		t.Fatalf("near-duplicates: factor %v", f)
	}
}

func TestDiffSnapshotRandomLines(t *testing.T) {
	rng := xrand.New(2)
	var lines []line.Line
	for i := 0; i < 32; i++ {
		var l line.Line
		for j := 0; j < 8; j++ {
			l.SetWord(j, rng.Uint64())
		}
		lines = append(lines, l)
	}
	f := DiffSnapshot(lines)
	if f > 1.2 {
		t.Fatalf("random lines compressed %vx", f)
	}
}

func TestDiffCDF(t *testing.T) {
	var proto line.Line
	for i := range proto {
		proto[i] = byte(i + 3)
	}
	lines := []line.Line{proto, proto}
	l := proto
	l[0] ^= 1
	l[1] ^= 1
	lines = append(lines, l)
	cdf := DiffCDF(lines)
	// Two exact duplicates at distance 0; the third at distance 2.
	if cdf[0] < 2.0/3-1e-9 {
		t.Fatalf("cdf[0] = %v", cdf[0])
	}
	if cdf[2] != 1 || cdf[64] != 1 {
		t.Fatalf("cdf tail: %v %v", cdf[2], cdf[64])
	}
	// Monotone.
	for i := 1; i <= 64; i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatalf("cdf not monotone at %d", i)
		}
	}
}

func smallCacheConfig() Config {
	return Config{TagEntries: 128, TagWays: 8, DataBytes: 2048, Seed: 1}
}

func TestIdealCacheRoundTrip(t *testing.T) {
	mem := memory.NewStore()
	c := New(smallCacheConfig(), mem)
	rng := xrand.New(3)
	ref := map[line.Addr]line.Line{}
	for i := 0; i < 4000; i++ {
		addr := line.Addr(rng.Intn(256)) * line.Size
		if rng.Bool(0.3) {
			var l line.Line
			l.SetWord(0, rng.Uint64n(16))
			c.Write(addr, l)
			ref[addr] = l
			mem.Poke(addr, l)
		} else {
			got, _ := c.Read(addr)
			want, ok := ref[addr]
			if !ok {
				want = mem.Peek(addr)
			}
			if got != want {
				t.Fatalf("step %d: wrong data", i)
			}
		}
	}
}

func TestIdealCacheBudgetRespected(t *testing.T) {
	mem := memory.NewStore()
	cfg := smallCacheConfig()
	c := New(cfg, mem)
	rng := xrand.New(4)
	for i := 0; i < 3000; i++ {
		var l line.Line
		for j := 0; j < 8; j++ {
			l.SetWord(j, rng.Uint64())
		}
		c.Write(line.Addr(i)*line.Size, l)
		if fp := c.Footprint(); fp.DataBytesUsed > cfg.DataBytes {
			t.Fatalf("budget exceeded: %+v", fp)
		}
	}
}

func TestIdealCacheCompressesSimilarLines(t *testing.T) {
	mem := memory.NewStore()
	c := New(smallCacheConfig(), mem)
	var proto line.Line
	for i := range proto {
		proto[i] = byte(i * 5)
	}
	for i := 0; i < 64; i++ {
		l := proto
		l[0] = byte(i)
		mem.Poke(line.Addr(i)*line.Size, l)
		c.Read(line.Addr(i) * line.Size)
	}
	fp := c.Footprint()
	if r := fp.CompressionRatio(); r < 3 {
		t.Fatalf("ideal compressed only %.2fx", r)
	}
}

func TestDiffSnapshotEmpty(t *testing.T) {
	if DiffSnapshot(nil) != 1 || DedupSnapshot(nil) != 1 {
		t.Fatal("empty snapshot factors")
	}
}
