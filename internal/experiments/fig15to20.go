package experiments

import (
	"fmt"

	"repro/internal/diffenc"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/thesaurus"
)

// thesaurusExtras ensures the Thesaurus runs exist and returns the
// per-profile internals (Figs. 15-19 all read these).
func thesaurusExtras(opt Options) (*Fig13Result, error) {
	// Fig13 is memoized at the harness level, so this costs one Thesaurus
	// run per profile even when several figures are produced.
	return Fig13(opt)
}

// Fig15Result: fraction of insertions compressible vs their clusteroid.
type Fig15Result struct {
	Profiles []string
	Fracs    []float64
	Average  float64
}

// Fig15 reproduces the compressible-insertions figure (paper avg: 87%).
func Fig15(opt Options) (*Fig15Result, error) {
	f, err := thesaurusExtras(opt)
	if err != nil {
		return nil, err
	}
	res := &Fig15Result{Profiles: f.Profiles}
	sum := 0.0
	for _, p := range f.Profiles {
		frac := f.ThesaurusExtras[p].Compressible
		res.Fracs = append(res.Fracs, frac)
		sum += frac
	}
	if len(res.Fracs) > 0 {
		res.Average = sum / float64(len(res.Fracs))
	}
	return res, nil
}

// Report renders Figure 15.
func (r *Fig15Result) Report() string {
	c := report.NewBarChart("Figure 15: % of insertions compressible vs their clusteroid", "%")
	for i, p := range r.Profiles {
		c.Add(p, 100*r.Fracs[i])
	}
	c.Add("Average", 100*r.Average)
	return c.String()
}

// Fig16Result: base-table cluster-size distribution.
type Fig16Result struct {
	Profiles []string
	Fracs    [][4]float64 // <10, <50, <500, 500+
	Average  [4]float64
}

// Fig16 reproduces the cluster-size distribution figure.
func Fig16(opt Options) (*Fig16Result, error) {
	f, err := thesaurusExtras(opt)
	if err != nil {
		return nil, err
	}
	res := &Fig16Result{Profiles: f.Profiles}
	for _, p := range f.Profiles {
		fr := f.ThesaurusExtras[p].ClusterFracs
		res.Fracs = append(res.Fracs, fr)
		for i := range res.Average {
			res.Average[i] += fr[i] / float64(len(f.Profiles))
		}
	}
	return res, nil
}

// Report renders Figure 16.
func (r *Fig16Result) Report() string {
	t := report.NewTable("Figure 16: distribution of cluster sizes (% of base-table entries)",
		"benchmark", "<10", "<50", "<500", "500+")
	pct := func(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
	for i, p := range r.Profiles {
		t.AddRowf(p, pct(r.Fracs[i][0]), pct(r.Fracs[i][1]), pct(r.Fracs[i][2]), pct(r.Fracs[i][3]))
	}
	t.AddRowf("Average", pct(r.Average[0]), pct(r.Average[1]), pct(r.Average[2]), pct(r.Average[3]))
	return t.String()
}

// Fig17Result: encoding mix per benchmark.
type Fig17Result struct {
	Profiles []string
	Fracs    [][diffenc.NumFormats]float64 // indexed by diffenc.Format
	Average  [diffenc.NumFormats]float64
}

// Fig17 reproduces the encoding-frequency figure.
func Fig17(opt Options) (*Fig17Result, error) {
	f, err := thesaurusExtras(opt)
	if err != nil {
		return nil, err
	}
	res := &Fig17Result{Profiles: f.Profiles}
	for _, p := range f.Profiles {
		fr := f.ThesaurusExtras[p].FormatFracs
		res.Fracs = append(res.Fracs, fr)
		for i := range res.Average {
			res.Average[i] += fr[i] / float64(len(f.Profiles))
		}
	}
	return res, nil
}

// Report renders Figure 17.
func (r *Fig17Result) Report() string {
	t := report.NewTable("Figure 17: frequency of compression encodings (% of placements)",
		"benchmark", "B+D", "0+D", "Z", "BASE", "RAW", "INTRA")
	pct := func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
	row := func(name string, f [diffenc.NumFormats]float64) {
		t.AddRowf(name,
			pct(f[diffenc.FormatBaseDiff]), pct(f[diffenc.FormatZeroDiff]),
			pct(f[diffenc.FormatAllZero]), pct(f[diffenc.FormatBaseOnly]),
			pct(f[diffenc.FormatRaw]), pct(f[diffenc.FormatIntra]))
	}
	for i, p := range r.Profiles {
		row(p, r.Fracs[i])
	}
	row("Average", r.Average)
	return t.String()
}

// Fig18Result: average diff size per benchmark.
type Fig18Result struct {
	Profiles []string
	Bytes    []float64
	Average  float64
}

// Fig18 reproduces the average-diff-size figure.
func Fig18(opt Options) (*Fig18Result, error) {
	f, err := thesaurusExtras(opt)
	if err != nil {
		return nil, err
	}
	res := &Fig18Result{Profiles: f.Profiles}
	sum := 0.0
	for _, p := range f.Profiles {
		d := f.ThesaurusExtras[p].AvgDiffBytes
		res.Bytes = append(res.Bytes, d)
		sum += d
	}
	if len(res.Bytes) > 0 {
		res.Average = sum / float64(len(res.Bytes))
	}
	return res, nil
}

// Report renders Figure 18.
func (r *Fig18Result) Report() string {
	c := report.NewBarChart("Figure 18: average byte-difference size (base+diff and 0+diff)", "B")
	for i, p := range r.Profiles {
		c.Add(p, r.Bytes[i])
	}
	c.Add("Average", r.Average)
	return c.String()
}

// Fig19Result: diff size over time for selected workloads.
type Fig19Result struct {
	Profiles []string
	Series   map[string][]float64
}

// Fig19Profiles is the paper's selection for the over-time figure.
var Fig19Profiles = []string{"bwaves", "cam4", "mcf", "xalancbmk"}

// Fig19 reproduces the diff-size-over-time figure.
func Fig19(opt Options) (*Fig19Result, error) {
	if len(opt.Profiles) == 0 {
		opt.Profiles = Fig19Profiles
	}
	f, err := thesaurusExtras(opt)
	if err != nil {
		return nil, err
	}
	res := &Fig19Result{Profiles: f.Profiles, Series: map[string][]float64{}}
	for _, p := range f.Profiles {
		res.Series[p] = f.ThesaurusExtras[p].DiffSeries
	}
	return res, nil
}

// Report renders Figure 19 as sparklines (0..64 bytes scale).
func (r *Fig19Result) Report() string {
	out := "\nFigure 19: diff size over time (each point = one averaging window, scale 0-64B)\n"
	out += "==============================================================================\n"
	for _, p := range r.Profiles {
		s := r.Series[p]
		mean := stats.Mean(s)
		// Bound the sparkline width.
		if len(s) > 120 {
			step := len(s) / 120
			var ds []float64
			for i := 0; i < len(s); i += step {
				ds = append(ds, s[i])
			}
			s = ds
		}
		out += fmt.Sprintf("%-10s mean=%5.1fB |%s|\n", p, mean, report.Sparkline(s, 64))
	}
	return out
}

// Fig20Row is one base-cache size point.
type Fig20Row struct {
	Entries     int
	HitRate     float64
	StorageKB   float64
	GeomeanCR   float64
	AvgHitRates map[string]float64
}

// Fig20DesignCR is one registered design's geomean compression ratio at
// its default configuration.
type Fig20DesignCR struct {
	Design    string
	GeomeanCR float64
}

// Fig20Result: base-cache size sweep, plus the per-design compression
// companion table covering every registered scheme.
type Fig20Result struct {
	Rows []Fig20Row
	// DesignCRs lists every registered design in report order; the runs
	// are the same design × profile points as fig13, so a warm artifact
	// cache (or a fig13 run in the same process) satisfies them without
	// new simulation.
	DesignCRs []Fig20DesignCR
}

// Fig20 sweeps the base-cache size from 32 to 2048 entries and reports
// the average hit rate and storage cost (paper: 512 entries → ~94.8%).
func Fig20(opt Options) (*Fig20Result, error) {
	res := &Fig20Result{}
	for _, entries := range []int{32, 128, 512, 1024, 2048} {
		cfg := thesaurus.DefaultConfig()
		cfg.BaseCacheWays = 8
		cfg.BaseCacheSets = entries / cfg.BaseCacheWays
		if cfg.BaseCacheSets < 1 {
			cfg.BaseCacheSets = 1
			cfg.BaseCacheWays = entries
		}
		ro := opt.run()
		ro.Thesaurus = &cfg
		profiles := opt.profiles()
		type cell struct {
			hitRate   float64
			cr        float64
			storageKB float64
		}
		cells, err := harness.ParMap(len(profiles), opt.Workers, func(i int) (cell, error) {
			out, err := harness.Run(profiles[i], "Thesaurus", ro)
			if err != nil {
				return cell{}, err
			}
			ts, ok := out.Snap.Extra.(*thesaurus.Snapshot)
			if !ok {
				return cell{}, fmt.Errorf("fig20: thesaurus snapshot has unexpected type %T", out.Snap.Extra)
			}
			return cell{
				hitRate:   ts.BaseCache.HitRate(),
				cr:        out.Res.CompressionRatio,
				storageKB: float64(ts.BaseCache.StorageBytes) / 1024,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		row := Fig20Row{Entries: entries, AvgHitRates: map[string]float64{}}
		var hits, crs []float64
		for i, p := range profiles {
			row.AvgHitRates[p] = cells[i].hitRate
			hits = append(hits, cells[i].hitRate)
			crs = append(crs, cells[i].cr)
			row.StorageKB = cells[i].storageKB
		}
		row.HitRate = stats.Mean(hits)
		row.GeomeanCR = geomean(crs)
		res.Rows = append(res.Rows, row)
	}

	// Companion table: geomean CR per registered design at defaults —
	// the same run keys as fig13, so results memoize across figures.
	profiles := opt.profiles()
	var keys []harness.RunKey
	for _, design := range harness.Designs {
		for _, prof := range profiles {
			keys = append(keys, harness.RunKey{Profile: prof, Design: design})
		}
	}
	matrix, err := harness.RunMatrix(keys, opt.run())
	if err != nil {
		return nil, err
	}
	for _, design := range harness.Designs {
		var crs []float64
		for _, prof := range profiles {
			crs = append(crs, matrix[harness.RunKey{Profile: prof, Design: design}].Res.CompressionRatio)
		}
		res.DesignCRs = append(res.DesignCRs, Fig20DesignCR{Design: design, GeomeanCR: geomean(crs)})
	}
	return res, nil
}

// Report renders Figure 20.
func (r *Fig20Result) Report() string {
	t := report.NewTable("Figure 20: base cache hit rate and storage cost vs size",
		"entries", "avg hit rate", "storage (KB)", "geomean CR")
	for _, row := range r.Rows {
		t.AddRowf(fmt.Sprintf("%d", row.Entries), fmt.Sprintf("%.1f%%", 100*row.HitRate),
			fmt.Sprintf("%.0f", row.StorageKB), fmt.Sprintf("%.2fx", row.GeomeanCR))
	}
	td := report.NewTable("Figure 20 companion: geomean compression ratio per design (defaults)",
		"design", "geomean CR")
	for _, d := range r.DesignCRs {
		td.AddRowf(d.Design, fmt.Sprintf("%.2fx", d.GeomeanCR))
	}
	return t.String() + td.String()
}
