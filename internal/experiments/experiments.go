// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md). Each
// experiment returns structured results plus a rendered text report, so
// the cmd/thesaurus CLI, the test suite, and the benchmark harness all
// drive the same code.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/energy"
	"repro/internal/harness"
	"repro/internal/ideal"
	"repro/internal/line"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/uncomp"
	"repro/internal/workload"
)

// Options scopes an experiment run.
type Options struct {
	// Accesses per profile (trace length).
	Accesses int
	// Profiles to evaluate; nil means all 22.
	Profiles []string
	// Workers bounds the per-profile concurrency of the experiment
	// loops (0 = GOMAXPROCS, 1 = serial). Reports are byte-identical
	// for any value; see the determinism tests.
	Workers int
}

// Default returns full-scale options.
func Default() Options {
	return Options{Accesses: harness.DefaultAccesses}
}

// Quick returns reduced-scale options for tests and smoke runs.
func Quick() Options {
	return Options{Accesses: 150_000}
}

func (o Options) profiles() []string {
	if len(o.Profiles) > 0 {
		return o.Profiles
	}
	return workload.Names()
}

func (o Options) run() harness.RunOptions {
	ro := harness.DefaultRunOptions()
	ro.Accesses = o.Accesses
	ro.Workers = o.Workers
	return ro
}

// snapshot returns the resident lines of a conventional-LLC simulation of
// the profile: the "LLC snapshot" the motivation experiments analyze. The
// lines come from the released cache's snapshot, already in ascending
// address order.
func snapshot(profile string, opt Options) ([]line.Line, error) {
	out, err := harness.Run(profile, "Baseline", opt.run())
	if err != nil {
		return nil, err
	}
	conv, ok := out.Snap.Extra.(*uncomp.Snapshot)
	if !ok {
		return nil, fmt.Errorf("experiments: baseline snapshot has unexpected type %T", out.Snap.Extra)
	}
	return conv.Lines, nil
}

// Fig1Row is one benchmark of Figure 1: effective LLC capacity under the
// idealized schemes.
type Fig1Row struct {
	Profile    string
	IdealDedup float64
	IdealDiff  float64
}

// Fig1Result is the Figure 1 reproduction.
type Fig1Result struct {
	Rows               []Fig1Row
	GeomeanDedup       float64
	GeomeanDiff        float64
	SnapshotLinesTotal int
}

// Fig1 measures the effective LLC capacity of Ideal-Dedup and Ideal-Diff
// on conventional-LLC snapshots (baseline = 1×).
func Fig1(opt Options) (*Fig1Result, error) {
	profiles := opt.profiles()
	type cell struct {
		row   Fig1Row
		lines int
	}
	cells, err := harness.ParMap(len(profiles), opt.Workers, func(i int) (cell, error) {
		lines, err := snapshot(profiles[i], opt)
		if err != nil {
			return cell{}, err
		}
		return cell{
			row: Fig1Row{
				Profile:    profiles[i],
				IdealDedup: ideal.DedupSnapshot(lines),
				IdealDiff:  ideal.DiffSnapshot(lines),
			},
			lines: len(lines),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{}
	var dd, df []float64
	for _, c := range cells {
		res.Rows = append(res.Rows, c.row)
		res.SnapshotLinesTotal += c.lines
		dd = append(dd, c.row.IdealDedup)
		df = append(df, c.row.IdealDiff)
	}
	res.GeomeanDedup = geomean(dd)
	res.GeomeanDiff = geomean(df)
	return res, nil
}

// Report renders Figure 1.
func (r *Fig1Result) Report() string {
	t := report.NewTable("Figure 1: effective LLC capacity from idealized compression",
		"benchmark", "baseline", "Ideal-Dedup", "Ideal-Diff")
	for _, row := range r.Rows {
		t.AddRow(row.Profile, 1.0, row.IdealDedup, row.IdealDiff)
	}
	t.AddRow("Gmean", 1.0, r.GeomeanDedup, r.GeomeanDiff)
	return t.String()
}

// Fig2Result is the Figure 2 (top) reproduction: the fraction of mcf
// lines dedupable within n bytes.
type Fig2Result struct {
	Profile string
	CDF     [line.Size + 1]float64
}

// Fig2 computes the allowed-difference CDF for a profile (mcf in the
// paper).
func Fig2(profile string, opt Options) (*Fig2Result, error) {
	lines, err := snapshot(profile, opt)
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Profile: profile, CDF: ideal.DiffCDF(lines)}, nil
}

// Report renders Figure 2.
func (r *Fig2Result) Report() string {
	t := report.NewTable(
		fmt.Sprintf("Figure 2: %% of %s lines dedupable within n differing bytes", r.Profile),
		"allowed diff (bytes)", "% of memory blocks")
	for _, n := range []int{0, 4, 8, 12, 16, 24, 32, 40, 48, 56, 64} {
		t.AddRowf(fmt.Sprintf("%d", n), fmt.Sprintf("%.1f%%", 100*r.CDF[n]))
	}
	return t.String()
}

// Fig5Row is one benchmark of Figure 5.
type Fig5Row struct {
	Profile    string
	Eps        int
	Clusters   int
	MaxMembers int
	Savings    float64
}

// Fig5Result is the Figure 5 reproduction: DBSCAN cluster statistics on
// LLC snapshots, with the distance threshold tuned to 40% space savings.
type Fig5Result struct {
	Rows []Fig5Row
}

// fig5SnapshotCap bounds the snapshot size fed to DBSCAN: the quadratic
// fallback dominates above this and the cluster statistics are stable
// under subsampling.
const fig5SnapshotCap = 4096

// strideSample subsamples xs to at most max elements with a uniform
// stride. A prefix would cover only the start of the slice (for
// address-sorted snapshots, the lowest-addressed region); the stride
// spreads the sample across the whole input. The input is returned
// as-is when it already fits.
func strideSample[T any](xs []T, max int) []T {
	if len(xs) <= max {
		return xs
	}
	stride := (len(xs) + max - 1) / max
	sampled := make([]T, 0, max)
	for i := 0; i < len(xs); i += stride {
		sampled = append(sampled, xs[i])
	}
	return sampled
}

// Fig5 runs the clustering motivation experiment.
func Fig5(opt Options) (*Fig5Result, error) {
	profiles := opt.profiles()
	rows, err := harness.ParMap(len(profiles), opt.Workers, func(i int) (Fig5Row, error) {
		lines, err := snapshot(profiles[i], opt)
		if err != nil {
			return Fig5Row{}, err
		}
		lines = strideSample(lines, fig5SnapshotCap)
		params, r := cluster.TuneEps(lines, 0.40, 2)
		return Fig5Row{
			Profile:    profiles[i],
			Eps:        params.Eps,
			Clusters:   r.NumClusters,
			MaxMembers: r.MaxClusterSize(),
			Savings:    cluster.SpaceSavings(lines, r),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Rows: rows}, nil
}

// Report renders Figure 5.
func (r *Fig5Result) Report() string {
	t := report.NewTable("Figure 5: dbscan clusters in LLC snapshots (eps tuned to 40% savings)",
		"benchmark", "eps(B)", "clusters", "max members", "savings")
	for _, row := range r.Rows {
		t.AddRowf(row.Profile, fmt.Sprintf("%d", row.Eps), fmt.Sprintf("%d", row.Clusters),
			fmt.Sprintf("%d", row.MaxMembers), fmt.Sprintf("%.0f%%", 100*row.Savings))
	}
	return t.String()
}

// Table1Report renders the simulated system configuration (Table 1).
func Table1Report() string {
	sys := sim.DefaultSystem()
	t := report.NewTable("Table 1: configuration of the simulated system", "component", "configuration")
	t.AddRowf("CPU", fmt.Sprintf("x86-64, %.2fGHz, out-of-order (overlap factor %.2f, core IPC %.1f)",
		sys.Timing.FrequencyGHz, sys.Timing.OverlapFactor, sys.Timing.CoreIPC))
	t.AddRowf("L1D", fmt.Sprintf("%dKB, %d-way, 64B lines, LRU", sys.L1DSizeBytes>>10, sys.L1DWays))
	t.AddRowf("L2", fmt.Sprintf("private, %dKB, %d-way, %.0f-cycle latency, LRU",
		sys.L2SizeBytes>>10, sys.L2Ways, sys.Timing.L2HitCycles))
	t.AddRowf("LLC", fmt.Sprintf("shared 1MB, 8-way, %.0f-cycle latency, 64B lines", sys.Timing.LLCHitCycles))
	t.AddRowf("Memory", fmt.Sprintf("DDR3-class, %.0f-cycle access latency", sys.Timing.MemCycles))
	return t.String()
}

// Table2Report renders the iso-silicon storage allocation (Table 2).
func Table2Report() string {
	t := report.NewTable("Table 2: storage allocation (iso-silicon with 1MB conventional)",
		"design", "tag entries", "tag bits", "tag KB", "data entries", "data bits", "data KB",
		"dict entries", "dict KB", "total KB")
	for _, r := range energy.Table2() {
		t.AddRowf(r.Design,
			fmt.Sprintf("%d", r.TagEntries), fmt.Sprintf("%d", r.TagEntryBits),
			fmt.Sprintf("%d", r.TagBytes()>>10),
			fmt.Sprintf("%d", r.DataEntries), fmt.Sprintf("%d", r.DataEntryBits),
			fmt.Sprintf("%d", r.DataBytes()>>10),
			fmt.Sprintf("%d", r.DictEntries), fmt.Sprintf("%d", r.DictBytes()>>10),
			fmt.Sprintf("%d", r.TotalBytes()>>10))
	}
	return t.String()
}

// Table3Report renders the cache energy comparison (Table 3).
func Table3Report() string {
	var b strings.Builder
	for _, node := range []energy.Process{energy.Node45nm, energy.Node32nm} {
		t := report.NewTable(fmt.Sprintf("Table 3 (%dnm): per-bank dynamic read energy and leakage", int(node)),
			"design", "dynamic energy (nJ)", "leakage power (mW)")
		for _, r := range energy.Table3(node) {
			t.AddRowf(r.Design, fmt.Sprintf("%.2f", r.ReadEnergyNJ), fmt.Sprintf("%.2f", r.LeakagePowerW*1000))
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// Table4Report renders the added-logic synthesis results (Table 4).
func Table4Report() string {
	t := report.NewTable("Table 4: Thesaurus added-logic synthesis (45nm, 2.66GHz)",
		"block", "latency (cycles)", "dynamic (mW)", "leakage (mW)", "area (mm^2)")
	for _, blk := range energy.Table4() {
		t.AddRowf(blk.Name, fmt.Sprintf("%d", blk.LatencyCycles),
			fmt.Sprintf("%.3f", blk.DynamicW*1000), fmt.Sprintf("%.2f", blk.LeakageW*1000),
			fmt.Sprintf("%.3f", blk.AreaMM2))
	}
	t.AddRowf("total", "", "", "", fmt.Sprintf("%.3f", energy.ThesaurusLogicArea()))
	return t.String()
}

// geomean is stats.Geomean, aliased for brevity.
func geomean(xs []float64) float64 { return stats.Geomean(xs) }
