package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// RunExperiment dispatches an experiment by its campaign name and
// returns the raw result value. It is the single dispatch point shared
// by cmd/thesaurus's -json mode and the determinism tests; the text
// front-end keeps its own switch because several experiments render
// composite reports.
func RunExperiment(name string, opt Options) (any, error) {
	switch name {
	case "table1":
		return Table1Report(), nil
	case "table2":
		return Table2Report(), nil
	case "table3":
		return Table3Report(), nil
	case "table4":
		return Table4Report(), nil
	case "fig1":
		return Fig1(opt)
	case "fig2":
		return Fig2("mcf", opt)
	case "fig5":
		return Fig5(opt)
	case "fig13", "summary":
		return Fig13(opt)
	case "fig14":
		return Fig14(opt)
	case "fig15":
		return Fig15(opt)
	case "fig16":
		return Fig16(opt)
	case "fig17":
		return Fig17(opt)
	case "fig18":
		return Fig18(opt)
	case "fig19":
		return Fig19(opt)
	case "fig20":
		return Fig20(opt)
	case "ablate-victims":
		return AblateVictimCandidates(opt)
	case "ablate-bits":
		return AblateLSHBits(opt)
	case "ablate-sparsity":
		return AblateLSHSparsity(opt)
	case "ablate-adaptive":
		return AblateAdaptive(opt)
	case "ablate-basecache":
		return AblateBaseCachePriority(opt)
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}

// campaignEntry is one experiment in a JSON campaign document.
type campaignEntry struct {
	Experiment string `json:"experiment"`
	Result     any    `json:"result"`
}

// CampaignJSON runs the named experiments and renders their results as
// one indented JSON document. The document is covered by the same
// byte-identical determinism contract as the text reports: encoding/json
// marshals struct fields in declaration order and sorts map keys, and
// every result is assembled index-ordered by the worker pools, so serial
// and parallel campaigns must produce the same bytes
// (TestParallelJSONMatchesSerial holds this in place).
func CampaignJSON(names []string, opt Options) ([]byte, error) {
	entries := make([]campaignEntry, 0, len(names))
	for _, name := range names {
		if name == "ablate" {
			// The composite CLI name expands to the individual sweeps.
			for _, sub := range []string{"ablate-victims", "ablate-bits", "ablate-sparsity",
				"ablate-adaptive", "ablate-basecache"} {
				r, err := RunExperiment(sub, opt)
				if err != nil {
					return nil, err
				}
				entries = append(entries, campaignEntry{Experiment: sub, Result: r})
			}
			continue
		}
		r, err := RunExperiment(name, opt)
		if err != nil {
			return nil, err
		}
		entries = append(entries, campaignEntry{Experiment: name, Result: r})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
