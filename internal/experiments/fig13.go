package experiments

import (
	"fmt"
	"strings"

	"repro/internal/diffenc"
	"repro/internal/energy"
	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/thesaurus"
	"repro/internal/workload"
)

// Fig13Cell is one design × benchmark measurement.
type Fig13Cell struct {
	Occupancy float64 // compressed size relative to baseline (Fig. 13a)
	CR        float64 // effective compression ratio
	MPKI      float64
	NormMPKI  float64 // relative to the uncompressed baseline (Fig. 13b)
	IPC       float64
	NormIPC   float64 // relative to the uncompressed baseline (Fig. 13c)
	DRAMRate  float64 // demand DRAM accesses per second (for Fig. 14)
	LLCRate   float64 // LLC accesses per second (for Fig. 14)
}

// Fig13Result holds the full main-results matrix.
type Fig13Result struct {
	Profiles  []string
	Sensitive map[string]bool
	Designs   []string
	Cells     map[string]map[string]Fig13Cell // design → profile → cell

	// Geomeans per design: compression over all benchmarks; MPKI and IPC
	// split into the sensitive (S) and insensitive (NS) groups, as in the
	// paper's Gmean-S / Gmean-NS bars.
	GeomeanCR       map[string]float64
	GeomeanMPKIS    map[string]float64
	GeomeanMPKINS   map[string]float64
	GeomeanIPCS     map[string]float64
	GeomeanIPCNS    map[string]float64
	ThesaurusExtras map[string]*ThesaurusProfile
}

// ThesaurusProfile carries the Thesaurus-internal statistics for one
// benchmark (Figs. 15-19).
type ThesaurusProfile struct {
	Compressible  float64                     // Fig. 15
	ClusterFracs  [4]float64                  // Fig. 16
	FormatFracs   [diffenc.NumFormats]float64 // Fig. 17 (indexed by diffenc.Format)
	AvgDiffBytes  float64                     // Fig. 18
	DiffSeries    []float64                   // Fig. 19
	BaseCacheHit  float64                     // Fig. 20 input at default size
	BaseCacheCost int                         // bytes
}

// Fig13 runs the main evaluation matrix: every design over every profile.
func Fig13(opt Options) (*Fig13Result, error) {
	res := &Fig13Result{
		Profiles:        opt.profiles(),
		Sensitive:       map[string]bool{},
		Designs:         harness.Designs,
		Cells:           map[string]map[string]Fig13Cell{},
		GeomeanCR:       map[string]float64{},
		GeomeanMPKIS:    map[string]float64{},
		GeomeanMPKINS:   map[string]float64{},
		GeomeanIPCS:     map[string]float64{},
		GeomeanIPCNS:    map[string]float64{},
		ThesaurusExtras: map[string]*ThesaurusProfile{},
	}
	for _, name := range res.Profiles {
		p, err := workload.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		res.Sensitive[name] = p.Sensitive
	}
	timing := sim.DefaultSystem().Timing

	// All cells are independent: run the whole matrix in parallel.
	var keys []harness.RunKey
	for _, design := range res.Designs {
		for _, prof := range res.Profiles {
			keys = append(keys, harness.RunKey{Profile: prof, Design: design})
		}
	}
	matrix, err := harness.RunMatrix(keys, opt.run())
	if err != nil {
		return nil, err
	}

	base := map[string]sim.Result{}
	for _, prof := range res.Profiles {
		base[prof] = matrix[harness.RunKey{Profile: prof, Design: "Baseline"}].Res
	}

	for _, design := range res.Designs {
		res.Cells[design] = map[string]Fig13Cell{}
		var crs []float64
		var mpkiS, mpkiNS, ipcS, ipcNS []float64
		for _, prof := range res.Profiles {
			out := matrix[harness.RunKey{Profile: prof, Design: design}]
			b := base[prof]
			cell := Fig13Cell{
				Occupancy: out.Res.Occupancy,
				CR:        out.Res.CompressionRatio,
				MPKI:      out.Res.MPKI,
				IPC:       out.Res.IPC,
				DRAMRate:  out.Res.DRAMRate(timing),
				LLCRate:   out.Res.AccessRate(timing),
			}
			// Normalizations guard against zero-MPKI benchmarks (which
			// the paper groups as insensitive with ratio 1).
			if b.MPKI > 0 {
				cell.NormMPKI = out.Res.MPKI / b.MPKI
			} else {
				cell.NormMPKI = 1
			}
			if b.IPC > 0 {
				cell.NormIPC = out.Res.IPC / b.IPC
			}
			res.Cells[design][prof] = cell
			crs = append(crs, cell.CR)
			if res.Sensitive[prof] {
				mpkiS = append(mpkiS, cell.NormMPKI)
				ipcS = append(ipcS, cell.NormIPC)
			} else {
				mpkiNS = append(mpkiNS, cell.NormMPKI)
				ipcNS = append(ipcNS, cell.NormIPC)
			}

			if ts, ok := out.Snap.Extra.(*thesaurus.Snapshot); ok {
				extra := ts.Extra
				tp := &ThesaurusProfile{
					Compressible: extra.CompressibleFraction(),
					ClusterFracs: out.ClusterFracs,
					AvgDiffBytes: extra.AvgDiffBytes(),
					DiffSeries:   ts.DiffSeries,
					BaseCacheHit: ts.BaseCache.HitRate(),
				}
				tp.BaseCacheCost = ts.BaseCache.StorageBytes
				for f := diffenc.FormatRaw; f < diffenc.NumFormats; f++ {
					tp.FormatFracs[f] = extra.FormatFraction(f)
				}
				res.ThesaurusExtras[prof] = tp
			}
		}
		res.GeomeanCR[design] = geomean(crs)
		if len(mpkiS) > 0 {
			res.GeomeanMPKIS[design] = geomean(mpkiS)
			res.GeomeanIPCS[design] = geomean(ipcS)
		}
		if len(mpkiNS) > 0 {
			res.GeomeanMPKINS[design] = geomean(mpkiNS)
			res.GeomeanIPCNS[design] = geomean(ipcNS)
		}
	}
	return res, nil
}

// Report renders Figures 13a-c.
func (r *Fig13Result) Report() string {
	var b strings.Builder

	ta := report.NewTable("Figure 13a: average cache occupancy (compressed size, 100% = no savings)",
		append([]string{"benchmark"}, r.Designs...)...)
	for _, p := range r.Profiles {
		row := []string{p}
		for _, d := range r.Designs {
			row = append(row, fmt.Sprintf("%.0f%%", 100*r.Cells[d][p].Occupancy))
		}
		ta.AddRowf(row...)
	}
	gm := []string{"Gmean CR"}
	for _, d := range r.Designs {
		gm = append(gm, fmt.Sprintf("%.2fx", r.GeomeanCR[d]))
	}
	ta.AddRowf(gm...)
	b.WriteString(ta.String())

	tb := report.NewTable("Figure 13b: MPKI relative to the uncompressed baseline (lower is better)",
		append([]string{"benchmark", "S?"}, r.Designs...)...)
	for _, p := range r.Profiles {
		row := []string{p, mark(r.Sensitive[p])}
		for _, d := range r.Designs {
			row = append(row, fmt.Sprintf("%.2f", r.Cells[d][p].NormMPKI))
		}
		tb.AddRowf(row...)
	}
	for _, g := range []struct {
		name string
		m    map[string]float64
	}{{"Gmean-NS", r.GeomeanMPKINS}, {"Gmean-S", r.GeomeanMPKIS}} {
		if len(g.m) == 0 || g.m["Baseline"] == 0 {
			continue // group empty under the selected profiles
		}
		row := []string{g.name, ""}
		for _, d := range r.Designs {
			row = append(row, fmt.Sprintf("%.2f", g.m[d]))
		}
		tb.AddRowf(row...)
	}
	b.WriteString(tb.String())

	tc := report.NewTable("Figure 13c: IPC relative to the uncompressed baseline (higher is better)",
		append([]string{"benchmark", "S?"}, r.Designs...)...)
	for _, p := range r.Profiles {
		row := []string{p, mark(r.Sensitive[p])}
		for _, d := range r.Designs {
			row = append(row, fmt.Sprintf("%.3f", r.Cells[d][p].NormIPC))
		}
		tc.AddRowf(row...)
	}
	for _, g := range []struct {
		name string
		m    map[string]float64
	}{{"Gmean-NS", r.GeomeanIPCNS}, {"Gmean-S", r.GeomeanIPCS}} {
		if len(g.m) == 0 || g.m["Baseline"] == 0 {
			continue
		}
		row := []string{g.name, ""}
		for _, d := range r.Designs {
			row = append(row, fmt.Sprintf("%.3f", g.m[d]))
		}
		tc.AddRowf(row...)
	}
	b.WriteString(tc.String())
	return b.String()
}

func mark(b bool) string {
	if b {
		return "S"
	}
	return "NS"
}

// Fig14Row is one benchmark's total-power difference.
type Fig14Row struct {
	Profile   string
	Sensitive bool
	DiffMW    float64 // positive = Thesaurus saves power
}

// Fig14Result is the Figure 14 reproduction.
type Fig14Result struct {
	Rows []Fig14Row
}

// Fig14 derives the total power difference of Thesaurus versus the
// baseline from the Fig. 13 runs and the Table 3/4 energy model.
func Fig14(opt Options) (*Fig14Result, error) {
	f13, err := Fig13(opt)
	if err != nil {
		return nil, err
	}
	res := &Fig14Result{}
	for _, p := range f13.Profiles {
		baseCell := f13.Cells["Baseline"][p]
		thesCell := f13.Cells["Thesaurus"][p]
		diff := energy.PowerDiff(baseCell.DRAMRate, thesCell.DRAMRate, thesCell.LLCRate)
		res.Rows = append(res.Rows, Fig14Row{Profile: p, Sensitive: f13.Sensitive[p], DiffMW: diff * 1000})
	}
	return res, nil
}

// Report renders Figure 14.
func (r *Fig14Result) Report() string {
	t := report.NewTable("Figure 14: total power difference vs baseline (positive = Thesaurus saves power)",
		"benchmark", "S?", "power diff (mW)")
	for _, row := range r.Rows {
		t.AddRowf(row.Profile, mark(row.Sensitive), fmt.Sprintf("%+.1f", row.DiffMW))
	}
	return t.String()
}
