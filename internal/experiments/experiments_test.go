package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/diffenc"
)

// tinyOpt keeps experiment tests fast: two contrasting profiles at a
// short trace length.
func tinyOpt() Options {
	return Options{Accesses: 60_000, Profiles: []string{"mcf", "exchange2"}}
}

func TestFig1(t *testing.T) {
	r, err := Fig1(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.IdealDedup < 1 || row.IdealDiff < 1 {
			t.Fatalf("%s: factors below 1: %+v", row.Profile, row)
		}
		if row.IdealDiff < row.IdealDedup-0.01 {
			t.Fatalf("%s: Ideal-Diff (%v) below Ideal-Dedup (%v)", row.Profile, row.IdealDiff, row.IdealDedup)
		}
	}
	// mcf is the near-duplicate showcase: substantial diff potential.
	if r.Rows[0].Profile == "mcf" && r.Rows[0].IdealDiff < 2 {
		t.Fatalf("mcf Ideal-Diff %v", r.Rows[0].IdealDiff)
	}
	if !strings.Contains(r.Report(), "Figure 1") {
		t.Fatal("report missing title")
	}
}

func TestFig2(t *testing.T) {
	r, err := Fig2("mcf", tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	// CDF is monotone and ends at 1.
	for i := 1; i < len(r.CDF); i++ {
		if r.CDF[i] < r.CDF[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if r.CDF[64] < 0.999 {
		t.Fatalf("CDF(64) = %v", r.CDF[64])
	}
	// The headline observation: most mcf lines are within 16 bytes of a
	// neighbour.
	if r.CDF[16] < 0.5 {
		t.Fatalf("CDF(16) = %v — near-duplicate structure missing", r.CDF[16])
	}
	if !strings.Contains(r.Report(), "Figure 2") {
		t.Fatal("report")
	}
}

func TestFig5(t *testing.T) {
	r, err := Fig5(Options{Accesses: 60_000, Profiles: []string{"mcf"}})
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if row.Clusters < 10 {
		t.Fatalf("mcf clusters %d — expected many (Fig. 5)", row.Clusters)
	}
	if row.Savings < 0.40 {
		t.Fatalf("savings %.2f below the 40%% tuning target", row.Savings)
	}
	if !strings.Contains(r.Report(), "dbscan") {
		t.Fatal("report")
	}
}

func TestFig13ShapeHolds(t *testing.T) {
	r, err := Fig13(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline ordering at benchmark granularity (mcf):
	// Thesaurus compresses far better than Dedup and BΔI.
	mcfT := r.Cells["Thesaurus"]["mcf"]
	mcfD := r.Cells["Dedup"]["mcf"]
	mcfB := r.Cells["BDI"]["mcf"]
	if !(mcfT.CR > mcfD.CR && mcfT.CR > mcfB.CR) {
		t.Fatalf("mcf CR ordering broken: T=%.2f D=%.2f B=%.2f", mcfT.CR, mcfD.CR, mcfB.CR)
	}
	if mcfT.CR < 2 {
		t.Fatalf("mcf Thesaurus CR %.2f", mcfT.CR)
	}
	// Thesaurus is within reach of the ideal model.
	idl := r.Cells["Ideal"]["mcf"]
	if mcfT.CR > idl.CR*1.25 {
		t.Fatalf("Thesaurus (%.2f) implausibly beats ideal (%.2f)", mcfT.CR, idl.CR)
	}
	// Sensitive benchmark: compression lowers MPKI and raises IPC.
	if mcfT.NormMPKI >= 1 || mcfT.NormIPC <= 1 {
		t.Fatalf("mcf gains missing: MPKI %.2f IPC %.3f", mcfT.NormMPKI, mcfT.NormIPC)
	}
	// Baseline normalizations are exactly 1.
	if b := r.Cells["Baseline"]["mcf"]; b.NormMPKI != 1 || b.NormIPC != 1 {
		t.Fatalf("baseline normalization %+v", b)
	}
	rep := r.Report()
	for _, want := range []string{"Figure 13a", "Figure 13b", "Figure 13c", "Gmean"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestFig14(t *testing.T) {
	r, err := Fig14(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig14Row{}
	for _, row := range r.Rows {
		byName[row.Profile] = row
	}
	// mcf (sensitive, big DRAM savings) must save power; exchange2
	// (insensitive, no DRAM savings) must cost power — the Fig. 14 story.
	if byName["mcf"].DiffMW <= 0 {
		t.Fatalf("mcf power diff %.1fmW, want positive", byName["mcf"].DiffMW)
	}
	if byName["exchange2"].DiffMW >= 0 {
		t.Fatalf("exchange2 power diff %.1fmW, want negative", byName["exchange2"].DiffMW)
	}
	if !strings.Contains(r.Report(), "Figure 14") {
		t.Fatal("report")
	}
}

func TestFigs15To18(t *testing.T) {
	opt := tinyOpt()
	f15, err := Fig15(opt)
	if err != nil {
		t.Fatal(err)
	}
	if f15.Average <= 0 || f15.Average > 1 {
		t.Fatalf("Fig15 average %v", f15.Average)
	}
	f16, err := Fig16(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range f16.Fracs {
		for _, v := range fr {
			if v < 0 || v > 1 {
				t.Fatalf("Fig16 row %d fraction %v", i, v)
			}
		}
	}
	f17, err := Fig17(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, fr := range f17.Fracs {
		sum := 0.0
		for _, v := range fr {
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("Fig17 row %d fractions sum to %v", i, sum)
		}
	}
	// mcf is dominated by the diff encodings.
	mcfIdx := -1
	for i, p := range f17.Profiles {
		if p == "mcf" {
			mcfIdx = i
		}
	}
	diffShare := f17.Fracs[mcfIdx][diffenc.FormatBaseDiff] + f17.Fracs[mcfIdx][diffenc.FormatZeroDiff]
	if diffShare < 0.5 {
		t.Fatalf("mcf diff-encoding share %.2f", diffShare)
	}
	f18, err := Fig18(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range f18.Bytes {
		if b < 0 || b > 64 {
			t.Fatalf("Fig18 row %d: %v bytes", i, b)
		}
	}
	for _, rep := range []string{f15.Report(), f16.Report(), f17.Report(), f18.Report()} {
		if len(rep) == 0 {
			t.Fatal("empty report")
		}
	}
}

func TestFig19(t *testing.T) {
	r, err := Fig19(Options{Accesses: 60_000, Profiles: []string{"mcf"}})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Series["mcf"]
	if len(s) == 0 {
		t.Fatal("no series points")
	}
	for _, v := range s {
		if v < 0 || v > 64 {
			t.Fatalf("series value %v", v)
		}
	}
	if !strings.Contains(r.Report(), "Figure 19") {
		t.Fatal("report")
	}
}

func TestFig20SweepMonotone(t *testing.T) {
	r, err := Fig20(Options{Accesses: 60_000, Profiles: []string{"mcf"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d sweep points", len(r.Rows))
	}
	// Hit rate must not decrease with size; storage must increase.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].HitRate+0.02 < r.Rows[i-1].HitRate {
			t.Fatalf("hit rate dropped at %d entries: %.3f < %.3f",
				r.Rows[i].Entries, r.Rows[i].HitRate, r.Rows[i-1].HitRate)
		}
		if r.Rows[i].StorageKB <= r.Rows[i-1].StorageKB {
			t.Fatal("storage not increasing")
		}
	}
	if !strings.Contains(r.Report(), "Figure 20") {
		t.Fatal("report")
	}
}

func TestAblations(t *testing.T) {
	opt := Options{Accesses: 50_000, Profiles: []string{"mcf"}}
	ablations := []struct {
		name string
		f    func(Options) (*AblationResult, error)
	}{
		{"victims", AblateVictimCandidates},
		{"bits", AblateLSHBits},
		{"sparsity", AblateLSHSparsity},
	}
	for _, a := range ablations {
		r, err := a.f(opt)
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if len(r.Points) < 3 {
			t.Fatalf("%s: %d points", a.name, len(r.Points))
		}
		for _, p := range r.Points {
			if p.GeomeanCR <= 0 || p.GeomeanNM <= 0 {
				t.Fatalf("%s: degenerate point %+v", a.name, p)
			}
		}
		if !strings.Contains(r.Report(), "Ablation") {
			t.Fatal("report")
		}
	}
}

// TestParallelReportsMatchSerial is the determinism guard for the worker
// pools: every parallelized experiment must render byte-identical reports
// for serial (Workers=1) and parallel (Workers=4) execution.
func TestParallelReportsMatchSerial(t *testing.T) {
	serial := tinyOpt()
	serial.Workers = 1
	parallel := tinyOpt()
	parallel.Workers = 4
	type experiment struct {
		name string
		run  func(Options) (string, error)
	}
	experiments := []experiment{
		{"fig1", func(o Options) (string, error) {
			r, err := Fig1(o)
			if err != nil {
				return "", err
			}
			return r.Report(), nil
		}},
		{"fig5", func(o Options) (string, error) {
			r, err := Fig5(o)
			if err != nil {
				return "", err
			}
			return r.Report(), nil
		}},
		// fig13 runs every design per profile, so its workers drive the
		// Thesaurus/BΔI/Dedup scratch-arena encode paths concurrently —
		// under -race this pins the one-scratch-per-cache ownership rule
		// (docs/performance.md).
		{"fig13", func(o Options) (string, error) {
			r, err := Fig13(o)
			if err != nil {
				return "", err
			}
			return r.Report(), nil
		}},
		{"fig20", func(o Options) (string, error) {
			r, err := Fig20(o)
			if err != nil {
				return "", err
			}
			return r.Report(), nil
		}},
		{"ablate-victims", func(o Options) (string, error) {
			r, err := AblateVictimCandidates(o)
			if err != nil {
				return "", err
			}
			return r.Report(), nil
		}},
	}
	for _, e := range experiments {
		want, err := e.run(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", e.name, err)
		}
		got, err := e.run(parallel)
		if err != nil {
			t.Fatalf("%s parallel: %v", e.name, err)
		}
		if got != want {
			t.Errorf("%s: parallel report differs from serial\nserial:\n%s\nparallel:\n%s", e.name, want, got)
		}
	}
}

// TestParallelJSONMatchesSerial extends the determinism guard to the
// machine-readable campaign output: the JSON document must also be
// byte-identical between serial and parallel execution — struct layout
// and encoding/json's sorted map keys leave worker scheduling as the
// only possible source of divergence, which is exactly what this pins.
func TestParallelJSONMatchesSerial(t *testing.T) {
	serial := tinyOpt()
	serial.Workers = 1
	parallel := tinyOpt()
	parallel.Workers = 4
	names := []string{"fig1", "fig5", "fig13", "fig20", "ablate-victims", "table2"}
	want, err := CampaignJSON(names, serial)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	got, err := CampaignJSON(names, parallel)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("parallel JSON campaign differs from serial\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

func TestStaticTables(t *testing.T) {
	tables := []struct {
		name string
		rep  string
	}{
		{"table1", Table1Report()},
		{"table2", Table2Report()},
		{"table3", Table3Report()},
		{"table4", Table4Report()},
	}
	for _, tb := range tables {
		if len(tb.rep) < 100 {
			t.Fatalf("%s report too short", tb.name)
		}
	}
	if !strings.Contains(Table2Report(), "Thesaurus") {
		t.Fatal("table2 content")
	}
	if !strings.Contains(Table3Report(), "32nm") {
		t.Fatal("table3 content")
	}
}
