package experiments

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/thesaurus"
)

// AblationPoint is one configuration of a design-choice sweep.
type AblationPoint struct {
	Label     string
	GeomeanCR float64
	GeomeanNM float64 // normalized MPKI geomean over all profiles
}

// AblationResult is one sweep.
type AblationResult struct {
	Name   string
	Points []AblationPoint
}

// Report renders the sweep.
func (r *AblationResult) Report() string {
	t := report.NewTable(fmt.Sprintf("Ablation: %s", r.Name), "config", "geomean CR", "geomean norm. MPKI")
	for _, p := range r.Points {
		t.AddRowf(p.Label, fmt.Sprintf("%.3fx", p.GeomeanCR), fmt.Sprintf("%.3f", p.GeomeanNM))
	}
	return t.String()
}

// sweep runs a set of Thesaurus configurations over the profiles. Both
// the baseline pass and each configuration's per-profile pass fan out on
// the harness worker pool; every point aggregates its profiles in input
// order, so the report is identical to a serial run.
func sweep(name string, opt Options, configs []struct {
	label string
	cfg   thesaurus.Config
}) (*AblationResult, error) {
	res := &AblationResult{Name: name}
	profiles := opt.profiles()
	// Baseline MPKI for normalization.
	baseMPKI, err := harness.ParMap(len(profiles), opt.Workers, func(i int) (float64, error) {
		out, err := harness.Run(profiles[i], "Baseline", opt.run())
		if err != nil {
			return 0, err
		}
		return out.Res.MPKI, nil
	})
	if err != nil {
		return nil, err
	}
	for _, c := range configs {
		ro := opt.run()
		cfg := c.cfg
		ro.Thesaurus = &cfg
		type cell struct{ cr, nm float64 }
		cells, err := harness.ParMap(len(profiles), opt.Workers, func(i int) (cell, error) {
			out, err := harness.Run(profiles[i], "Thesaurus", ro)
			if err != nil {
				return cell{}, err
			}
			nm := 1.0
			if baseMPKI[i] > 0 {
				nm = out.Res.MPKI / baseMPKI[i]
			}
			return cell{cr: out.Res.CompressionRatio, nm: nm}, nil
		})
		if err != nil {
			return nil, err
		}
		var crs, nms []float64
		for _, cl := range cells {
			crs = append(crs, cl.cr)
			nms = append(nms, cl.nm)
		}
		res.Points = append(res.Points, AblationPoint{
			Label:     c.label,
			GeomeanCR: geomean(crs),
			GeomeanNM: geomean(nms),
		})
	}
	return res, nil
}

// AblateVictimCandidates sweeps the best-of-n data-victim policy
// (§5.4.3; the paper uses n=4).
func AblateVictimCandidates(opt Options) (*AblationResult, error) {
	var cfgs []struct {
		label string
		cfg   thesaurus.Config
	}
	for _, n := range []int{1, 2, 4, 8} {
		cfg := thesaurus.DefaultConfig()
		cfg.VictimCandidates = n
		cfgs = append(cfgs, struct {
			label string
			cfg   thesaurus.Config
		}{fmt.Sprintf("best-of-%d", n), cfg})
	}
	return sweep("data-victim set candidates (best-of-n)", opt, cfgs)
}

// AblateLSHBits sweeps the fingerprint width (§6.1 sweeps 8-24 bits and
// settles on 12).
func AblateLSHBits(opt Options) (*AblationResult, error) {
	var cfgs []struct {
		label string
		cfg   thesaurus.Config
	}
	for _, bits := range []int{8, 10, 12, 16, 20, 24} {
		cfg := thesaurus.DefaultConfig()
		cfg.LSH.Bits = bits
		cfgs = append(cfgs, struct {
			label string
			cfg   thesaurus.Config
		}{fmt.Sprintf("%d-bit LSH", bits), cfg})
	}
	return sweep("LSH fingerprint width", opt, cfgs)
}

// AblateAdaptive compares the paper's evaluated configuration against the
// §6.1/§6.3 extension that detects cache-insensitive phases and disables
// compression for them (saving the compression machinery's energy without
// giving up the sensitive-workload gains).
func AblateAdaptive(opt Options) (*AblationResult, error) {
	off := thesaurus.DefaultConfig()
	on := thesaurus.DefaultConfig()
	on.AdaptiveEpoch = 50_000
	return sweep("adaptive compression disable (§6.1 extension)", opt, []struct {
		label string
		cfg   thesaurus.Config
	}{
		{"always-on (paper)", off},
		{"adaptive", on},
	})
}

// AblateBaseCachePriority compares plain pseudo-LRU base-cache management
// (the paper's description) against this implementation's default of
// installing insertion-path fills at victim priority (scan resistance —
// see thesaurus.BaseCache.Access).
func AblateBaseCachePriority(opt Options) (*AblationResult, error) {
	plain := thesaurus.DefaultConfig()
	plain.BaseCachePlainLRU = true
	scan := thesaurus.DefaultConfig()
	return sweep("base cache fill priority", opt, []struct {
		label string
		cfg   thesaurus.Config
	}{
		{"plain pseudo-LRU (paper)", plain},
		{"victim-priority insert fills", scan},
	})
}

// AblateLSHSparsity sweeps the non-zeros per projection row (the
// very-sparse-projection knob of §4.3).
func AblateLSHSparsity(opt Options) (*AblationResult, error) {
	var cfgs []struct {
		label string
		cfg   thesaurus.Config
	}
	for _, nz := range []int{2, 4, 6, 10, 16} {
		cfg := thesaurus.DefaultConfig()
		cfg.LSH.NonZeros = nz
		cfgs = append(cfgs, struct {
			label string
			cfg   thesaurus.Config
		}{fmt.Sprintf("%d non-zeros/row", nz), cfg})
	}
	return sweep("LSH projection sparsity", opt, cfgs)
}
