package thesaurus

import (
	"testing"
	"testing/quick"

	"repro/internal/diffenc"
	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/xrand"
)

// TestQuickOperationSequences drives randomly generated operation
// sequences through a tiny cache and checks, via testing/quick, that
// (a) reads always return the last written value and (b) the structural
// invariants hold afterwards.
func TestQuickOperationSequences(t *testing.T) {
	type op struct {
		Addr  uint16
		Write bool
		Fill  byte
		Proto uint8
	}
	f := func(seed uint64, ops []op) bool {
		mem := memory.NewStore()
		c := MustNew(smallConfig(), mem)
		rng := xrand.New(seed)
		var protos [4]line.Line
		for p := range protos {
			for i := range protos[p] {
				protos[p][i] = byte(rng.Uint32())
			}
		}
		ref := map[line.Addr]line.Line{}
		for _, o := range ops {
			addr := line.Addr(o.Addr) * line.Size
			if o.Write {
				l := protos[int(o.Proto)%len(protos)]
				l[int(o.Fill)%line.Size] = o.Fill
				c.Write(addr, l)
				ref[addr] = l
				mem.Poke(addr, l)
			} else {
				got, _ := c.Read(addr)
				want, ok := ref[addr]
				if !ok {
					want = mem.Peek(addr)
				}
				if got != want {
					return false
				}
			}
		}
		return c.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFootprintNeverExceedsCapacity: the data array cannot be
// over-committed regardless of workload.
func TestFootprintNeverExceedsCapacity(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	rng := xrand.New(77)
	for i := 0; i < 30000; i++ {
		addr := line.Addr(rng.Intn(8192)) * line.Size
		var l line.Line
		for j := 0; j < 8; j++ {
			l.SetWord(j, rng.Uint64())
		}
		c.Write(addr, l)
		if i%2500 == 0 {
			fp := c.Footprint()
			if fp.DataBytesUsed > fp.DataBytesTotal {
				t.Fatalf("over-committed: %+v", fp)
			}
		}
	}
}

// TestZeroLinesAreFree: all-zero lines occupy tags only.
func TestZeroLinesAreFree(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	for i := 0; i < 100; i++ {
		c.Read(line.Addr(i) * line.Size) // unpopulated memory reads zero
	}
	fp := c.Footprint()
	if fp.ResidentLines != 100 || fp.DataBytesUsed != 0 {
		t.Fatalf("zero lines consumed data: %+v", fp)
	}
	if c.Extra().ByFormat[diffenc.FormatAllZero] != 100 {
		t.Fatalf("format mix %v", c.Extra().ByFormat)
	}
}

// TestClusteredContentCompresses: near-duplicate lines must land in
// base+diff or base-only formats and shrink the footprint substantially.
func TestClusteredContentCompresses(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	var proto line.Line
	for i := range proto {
		proto[i] = byte(i*7 + 3)
	}
	rng := xrand.New(5)
	const n = 200
	for i := 0; i < n; i++ {
		l := proto
		l[rng.Intn(8)] ^= byte(1 + rng.Intn(7)) // tiny perturbation
		mem.Poke(line.Addr(i)*line.Size, l)
		c.Read(line.Addr(i) * line.Size)
	}
	fp := c.Footprint()
	if ratio := fp.CompressionRatio(); ratio < 2 {
		t.Fatalf("clustered content only compressed %.2fx", ratio)
	}
	e := c.Extra()
	clustered := e.ByFormat[diffenc.FormatBaseDiff] + e.ByFormat[diffenc.FormatBaseOnly]
	if clustered < n/2 {
		t.Fatalf("only %d/%d placements clustered: %v", clustered, n, e.ByFormat)
	}
}

// TestIncompressibleContentFallsBackToRaw: random lines must be stored
// raw without corrupting anything.
func TestIncompressibleContentFallsBackToRaw(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	rng := xrand.New(6)
	for i := 0; i < 200; i++ {
		var l line.Line
		for j := 0; j < 8; j++ {
			l.SetWord(j, rng.Uint64())
		}
		mem.Poke(line.Addr(i)*line.Size, l)
		got, _ := c.Read(line.Addr(i) * line.Size)
		if got != l {
			t.Fatal("raw line corrupted")
		}
	}
	e := c.Extra()
	if e.ByFormat[diffenc.FormatRaw] < 150 {
		t.Fatalf("random content not raw: %v", e.ByFormat)
	}
	fp := c.Footprint()
	if r := fp.CompressionRatio(); r > 1.3 {
		t.Fatalf("random content 'compressed' %.2fx", r)
	}
}

// TestWriteShrinkAndGrow: §5.4.2 — writes may change an entry's size in
// both directions.
func TestWriteShrinkAndGrow(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	rng := xrand.New(9)
	var big line.Line
	for j := 0; j < 8; j++ {
		big.SetWord(j, rng.Uint64())
	}
	addr := line.Addr(0)
	c.Write(addr, big) // raw: 8 segments
	used1 := c.Footprint().DataBytesUsed
	c.Write(addr, line.Zero) // all-zero: 0 segments
	used2 := c.Footprint().DataBytesUsed
	if used2 >= used1 {
		t.Fatalf("shrink did not release space: %d → %d", used1, used2)
	}
	c.Write(addr, big) // grow again
	if got, _ := c.Read(addr); got != big {
		t.Fatal("grow corrupted data")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConfigValidation rejects broken geometries.
func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.TagEntries = 0 },
		func(c *Config) { c.TagEntries = 100; c.TagWays = 8 },
		func(c *Config) { c.DataSets = 0 },
		func(c *Config) { c.SegmentsPerSet = 0 },
		func(c *Config) { c.BaseCacheSets = 0 },
		func(c *Config) { c.VictimCandidates = 0 },
		func(c *Config) { c.LSH.Bits = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg, memory.NewStore()); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestScaledConfig keeps proportions.
func TestScaledConfig(t *testing.T) {
	half := ScaledConfig(512 << 10)
	full := DefaultConfig()
	if half.TagEntries >= full.TagEntries || half.DataSets >= full.DataSets {
		t.Fatalf("scaled config not smaller: %+v", half)
	}
	if half.TagEntries%half.TagWays != 0 {
		t.Fatal("scaled tags not a multiple of ways")
	}
	if err := half.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDecompressionInterfaces: the timing hooks report sane values.
func TestDecompressionInterfaces(t *testing.T) {
	c := MustNew(smallConfig(), memory.NewStore())
	if c.DecompressionCycles() != 5 {
		t.Fatalf("decompression cycles %v", c.DecompressionCycles())
	}
	if c.CriticalDRAMAccesses() != 0 {
		t.Fatal("cold cache has critical DRAM accesses")
	}
}
