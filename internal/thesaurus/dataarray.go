package thesaurus

import (
	"fmt"
	"math/bits"

	"repro/internal/diffenc"
	"repro/internal/line"
)

// SlotState is the startmap marking for one data-array entry slot
// (Fig. 10: D = valid-diff, R = valid-raw, I = invalid tombstone).
type SlotState uint8

// Slot states. Tombstones hold their ordinal position in the startmap so
// segix fields in the tag array stay valid across compaction (§5.2.2).
const (
	SlotFree SlotState = iota
	SlotValidRaw
	SlotValidDiff
	SlotInvalid
)

// slot is one startmap position: an entry start marker plus, in this
// behavioural model, the encoded payload itself (physical byte offsets are
// implied by the sum of preceding valid sizes and need not be tracked).
type slot struct {
	state  SlotState
	segs   int // data-array segments occupied (0 for tombstones)
	tagIdx int // back-pointer into the tag array (the tagptr of Fig. 9)
	enc    diffenc.Encoded
}

// dataSet is one set of the decoupled data array: SegmentsPerSet 8-byte
// segments shared by a variable number of compressed entries, plus the
// startmap (the slots).
type dataSet struct {
	slots    []slot
	usedSegs int
	// tombs has one bit per startmap position that currently holds a
	// tombstone. Insert picks its reuse slot from this mask instead of
	// scanning the slots (each slot spans two cache lines, so a linear
	// probe of a full startmap touches ~2KB of mostly cold memory per
	// insertion). segsPerSet ≤ 64 bounds the startmap within the mask.
	tombs uint64
}

// DataArray is the decoupled, segment-granular LLC data array of §5.2.2.
type DataArray struct {
	sets        []dataSet
	segsPerSet  int
	totalEvents uint64 // entries evicted to make space (stat)

	// planScratch/candScratch back VictimPlan so the steady-state
	// allocation path stays allocation-free. A VictimPlan result is valid
	// only until the next VictimPlan call (see docs/performance.md).
	planScratch []int
	candScratch []victimCand
}

// victimCand is one eviction candidate considered by VictimPlan.
type victimCand struct{ idx, segs int }

// NewDataArray builds an array of numSets sets with segsPerSet segments
// each.
func NewDataArray(numSets, segsPerSet int) *DataArray {
	if numSets <= 0 || segsPerSet <= 0 || segsPerSet > 64 {
		panic("thesaurus: invalid data array geometry")
	}
	d := &DataArray{sets: make([]dataSet, numSets), segsPerSet: segsPerSet}
	// Pre-size every startmap from one flat slab. Each live entry spans ≥2
	// segments (a diff is mask + ≥1 delta byte; raws are 8), so a set never
	// holds more than segsPerSet/2 slots; carving full-capacity views up
	// front means Insert's append never grows a slice. Every slot also gets
	// a full-width delta buffer (a diff mask covers line.Size byte
	// positions, so no encoding carries more deltas than that): with
	// capacity pre-staged, CopyFrom never grows either, keeping the
	// steady-state access path allocation-free (docs/performance.md).
	maxSlots := segsPerSet / 2
	if maxSlots < 1 {
		maxSlots = 1
	}
	slab := make([]slot, numSets*maxSlots)
	deltas := make([]byte, len(slab)*line.Size)
	for i := range slab {
		slab[i].enc.Deltas = deltas[i*line.Size : i*line.Size : (i+1)*line.Size]
	}
	for i := range d.sets {
		d.sets[i].slots = slab[i*maxSlots : i*maxSlots : (i+1)*maxSlots]
	}
	return d
}

// NumSets returns the set count.
func (d *DataArray) NumSets() int { return len(d.sets) }

// SegmentsPerSet returns the per-set segment count.
func (d *DataArray) SegmentsPerSet() int { return d.segsPerSet }

// CapacityBytes returns the total data capacity.
func (d *DataArray) CapacityBytes() int {
	return len(d.sets) * d.segsPerSet * diffenc.SegmentBytes
}

// UsedBytes returns the occupied data space.
func (d *DataArray) UsedBytes() int {
	used := 0
	for i := range d.sets {
		used += d.sets[i].usedSegs
	}
	return used * diffenc.SegmentBytes
}

// FreeSegs returns the free segments in set s.
func (d *DataArray) FreeSegs(s int) int {
	return d.segsPerSet - d.sets[s].usedSegs
}

// Insert places enc (which must occupy at least one segment) into set s on
// behalf of tag tagIdx and returns the slot index for the tag's segix
// field. The set must have enough free segments; callers evict first.
//
// enc is deep-copied into the slot (the slot owns its delta buffer and
// reuses the buffer left behind by the entry previously occupying it), so
// callers may pass a per-cache scratch encoding and reuse it immediately.
func (d *DataArray) Insert(s int, enc *diffenc.Encoded, tagIdx int) int {
	segs := enc.Segments()
	if segs <= 0 {
		panic("thesaurus: Insert of entry with no data footprint")
	}
	set := &d.sets[s]
	if set.usedSegs+segs > d.segsPerSet {
		panic(fmt.Sprintf("thesaurus: Insert overflows set %d (%d used + %d new > %d)",
			s, set.usedSegs, segs, d.segsPerSet))
	}
	state := SlotValidDiff
	if enc.Format == diffenc.FormatRaw {
		state = SlotValidRaw
	}
	// Reuse a tombstone if present (Fig. 11d step 6) — the lowest-index
	// one, matching the original linear scan — else append a new startmap
	// position. Because every live entry spans ≥2 segments, at most
	// segsPerSet/2 slots are live, so a position is always available.
	idx := -1
	if set.tombs != 0 {
		idx = bits.TrailingZeros64(set.tombs)
		set.tombs &^= 1 << uint(idx)
	}
	if idx < 0 {
		if len(set.slots) >= d.segsPerSet {
			panic("thesaurus: startmap exhausted (invariant violated)")
		}
		if len(set.slots) < cap(set.slots) {
			// Reslice rather than append: the slab slot beyond len already
			// holds its pre-allocated delta buffer, which append(slot{})
			// would clobber.
			set.slots = set.slots[:len(set.slots)+1]
		} else {
			set.slots = append(set.slots, slot{})
		}
		idx = len(set.slots) - 1
	}
	sl := &set.slots[idx]
	sl.state = state
	sl.segs = segs
	sl.tagIdx = tagIdx
	sl.enc.CopyFrom(enc)
	set.usedSegs += segs
	return idx
}

// Get returns the encoded entry at (set, slot). It panics on tombstones or
// free slots; tags never point at those.
func (d *DataArray) Get(s, slotIdx int) *diffenc.Encoded {
	sl := d.slotAt(s, slotIdx)
	if sl.state != SlotValidRaw && sl.state != SlotValidDiff {
		panic(fmt.Sprintf("thesaurus: Get of non-valid slot (%d,%d)", s, slotIdx))
	}
	return &sl.enc
}

// TagOf returns the tag back-pointer of the entry at (set, slot).
func (d *DataArray) TagOf(s, slotIdx int) int {
	return d.slotAt(s, slotIdx).tagIdx
}

// Remove tombstones the entry at (set, slot), releasing its segments; the
// remaining entries are (conceptually) compacted without renumbering
// (Fig. 11c). The slot's delta buffer stays with the tombstone so the
// next Insert into it runs allocation-free.
func (d *DataArray) Remove(s, slotIdx int) {
	sl := d.slotAt(s, slotIdx)
	if sl.state != SlotValidRaw && sl.state != SlotValidDiff {
		panic(fmt.Sprintf("thesaurus: Remove of non-valid slot (%d,%d)", s, slotIdx))
	}
	d.sets[s].usedSegs -= sl.segs
	// Field-wise reset rather than zeroing the whole slot: the embedded
	// encoding (including its 64-byte Raw) is dead payload that the next
	// Insert's CopyFrom overwrites in full, so clearing it here would
	// memclr ~100 bytes per eviction for nothing. CheckInvariants only
	// requires tombstones to carry segs == 0.
	sl.state = SlotInvalid
	sl.segs = 0
	sl.tagIdx = -1
	d.sets[s].tombs |= 1 << uint(slotIdx)
}

// encAt returns the encoded entry at (set, slot) without the validity
// checks of Get. It is the read/rewrite hot-path accessor: callers hold a
// tag whose back-pointer CheckInvariants keeps honest, so the defensive
// panics in Get would re-verify an invariant per access.
func (d *DataArray) encAt(s, slotIdx int) *diffenc.Encoded {
	return &d.sets[s].slots[slotIdx].enc
}

func (d *DataArray) slotAt(s, slotIdx int) *slot {
	if s < 0 || s >= len(d.sets) {
		panic(fmt.Sprintf("thesaurus: set index %d out of range", s))
	}
	set := &d.sets[s]
	if slotIdx < 0 || slotIdx >= len(set.slots) {
		panic(fmt.Sprintf("thesaurus: slot index %d out of range in set %d", slotIdx, s))
	}
	return &set.slots[slotIdx]
}

// VictimPlan lists the entries (slot indices, largest first) that must be
// evicted from set s to free need segments. The bool result is false if
// even evicting everything would not suffice (need > segsPerSet). The
// returned slice aliases per-array scratch storage and is valid only
// until the next VictimPlan call on the same DataArray.
func (d *DataArray) VictimPlan(s, need int) ([]int, bool) {
	free := d.FreeSegs(s)
	if free >= need {
		return nil, true
	}
	if need > d.segsPerSet {
		return nil, false
	}
	set := &d.sets[s]
	// Largest-first minimizes the number of entries (and thus tags)
	// evicted, the objective of the §5.4.3 data replacement policy.
	cands := d.candScratch[:0]
	for i := range set.slots {
		if st := set.slots[i].state; st == SlotValidRaw || st == SlotValidDiff {
			cands = append(cands, victimCand{i, set.slots[i].segs})
		}
	}
	d.candScratch = cands[:0]
	// Insertion sort by segs descending (sets are tiny).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].segs > cands[j-1].segs; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	plan := d.planScratch[:0]
	for _, c := range cands {
		if free >= need {
			break
		}
		plan = append(plan, c.idx)
		free += c.segs
	}
	d.planScratch = plan[:0]
	if free < need {
		return nil, false
	}
	return plan, true
}

// EvictionCost returns how many segments would need to be evicted from
// set s to fit need segments (0 if it already fits).
func (d *DataArray) EvictionCost(s, need int) int {
	free := d.FreeSegs(s)
	if free >= need {
		return 0
	}
	return need - free
}

// ForEachEntry calls fn for every valid entry.
func (d *DataArray) ForEachEntry(fn func(set, slotIdx int, enc *diffenc.Encoded, tagIdx int)) {
	for s := range d.sets {
		set := &d.sets[s]
		for i := range set.slots {
			sl := &set.slots[i]
			if sl.state == SlotValidRaw || sl.state == SlotValidDiff {
				fn(s, i, &sl.enc, sl.tagIdx)
			}
		}
	}
}

// CheckInvariants validates the startmap bookkeeping: per-set used
// segments equal the sum of valid slot sizes and never exceed capacity.
// It is exercised by tests and returns the first violation found.
func (d *DataArray) CheckInvariants() error {
	for s := range d.sets {
		set := &d.sets[s]
		sum := 0
		var tombs uint64
		for i := range set.slots {
			sl := &set.slots[i]
			switch sl.state {
			case SlotValidRaw, SlotValidDiff:
				if sl.segs <= 0 {
					return fmt.Errorf("set %d slot %d: valid with %d segs", s, i, sl.segs)
				}
				sum += sl.segs
			case SlotInvalid:
				if sl.segs != 0 {
					return fmt.Errorf("set %d slot %d: tombstone with %d segs", s, i, sl.segs)
				}
				tombs |= 1 << uint(i)
			case SlotFree:
				return fmt.Errorf("set %d slot %d: free slot inside startmap", s, i)
			}
		}
		if tombs != set.tombs {
			return fmt.Errorf("set %d: tombstone mask %#x but slots show %#x", s, set.tombs, tombs)
		}
		if sum != set.usedSegs {
			return fmt.Errorf("set %d: usedSegs=%d but slots sum to %d", s, set.usedSegs, sum)
		}
		if sum > d.segsPerSet {
			return fmt.Errorf("set %d: %d segments exceed capacity %d", s, sum, d.segsPerSet)
		}
	}
	return nil
}
