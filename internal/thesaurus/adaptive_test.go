package thesaurus

import (
	"testing"

	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/xrand"
)

// adaptiveConfig returns a small cache with the detector on.
func adaptiveConfig() Config {
	cfg := smallConfig()
	cfg.AdaptiveEpoch = 2000
	return cfg
}

// TestAdaptiveDisablesOnStreaming: a working set far beyond the cache
// (near-zero hit rate) must trip the detector.
func TestAdaptiveDisablesOnStreaming(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(adaptiveConfig(), mem)
	var proto line.Line
	for i := range proto {
		proto[i] = byte(i + 1)
	}
	// Stream 40K distinct compressible lines through a ~256-line cache.
	for i := 0; i < 40000; i++ {
		l := proto
		l[0], l[1] = byte(i), byte(i>>8)
		mem.Poke(line.Addr(i)*line.Size, l)
		c.Read(line.Addr(i) * line.Size)
	}
	st := c.AdaptiveStats()
	if st.Epochs < 10 {
		t.Fatalf("epochs %d", st.Epochs)
	}
	if st.DisabledEpochs == 0 || st.DisabledPlacements == 0 {
		t.Fatalf("streaming did not disable compression: %+v", st)
	}
	// Probe epochs keep some epochs enabled.
	if st.DisabledEpochs >= st.Epochs {
		t.Fatalf("no probe epochs: %+v", st)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveDisablesWhenFitting: a tiny, fully resident working set
// (≈100% hit rate) also trips the detector.
func TestAdaptiveDisablesWhenFitting(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(adaptiveConfig(), mem)
	var proto line.Line
	proto[0] = 9
	for i := 0; i < 32; i++ {
		mem.Poke(line.Addr(i)*line.Size, proto)
	}
	for k := 0; k < 30000; k++ {
		c.Read(line.Addr(k%32) * line.Size)
	}
	st := c.AdaptiveStats()
	if st.DisabledEpochs == 0 {
		t.Fatalf("fully-resident workload did not disable compression: %+v", st)
	}
}

// TestAdaptiveStaysOnForSensitiveMix: a working set in the sweet spot
// (moderate hit rate, compression helps) must keep compression on.
func TestAdaptiveStaysOnForSensitiveMix(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(adaptiveConfig(), mem)
	rng := xrand.New(1)
	var proto line.Line
	for i := range proto {
		proto[i] = byte(i * 3)
	}
	const span = 600 // ~2.3× the tiny cache: mid hit rate
	for i := 0; i < span; i++ {
		l := proto
		l[0] = byte(i)
		l[1] = byte(i >> 8)
		mem.Poke(line.Addr(i)*line.Size, l)
	}
	for k := 0; k < 40000; k++ {
		c.Read(line.Addr(rng.Intn(span)) * line.Size)
	}
	st := c.AdaptiveStats()
	if st.Epochs == 0 {
		t.Fatal("no epochs")
	}
	if float64(st.DisabledEpochs) > 0.25*float64(st.Epochs) {
		t.Fatalf("sensitive mix mostly disabled: %+v", st)
	}
	// Compression keeps working.
	if fp := c.Footprint(); fp.CompressionRatio() < 1.5 {
		t.Fatalf("compression lost: %.2fx", fp.CompressionRatio())
	}
}

// TestAdaptiveOffByDefault: the paper's evaluated configuration has no
// detector.
func TestAdaptiveOffByDefault(t *testing.T) {
	c := MustNew(smallConfig(), memory.NewStore())
	for i := 0; i < 10000; i++ {
		c.Read(line.Addr(i) * line.Size)
	}
	if st := c.AdaptiveStats(); st.Epochs != 0 || st.DisabledPlacements != 0 {
		t.Fatalf("detector ran while disabled: %+v", st)
	}
}
