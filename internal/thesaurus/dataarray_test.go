package thesaurus

import (
	"testing"

	"repro/internal/diffenc"
	"repro/internal/line"
	"repro/internal/xrand"
)

func rawEnc(fill byte) *diffenc.Encoded {
	var l line.Line
	for i := range l {
		l[i] = fill
	}
	return &diffenc.Encoded{Format: diffenc.FormatRaw, Raw: l}
}

func diffEnc(n int) *diffenc.Encoded {
	e := &diffenc.Encoded{Format: diffenc.FormatBaseDiff, Deltas: make([]byte, n)}
	for i := 0; i < n; i++ {
		e.Mask |= 1 << uint(i)
		e.Deltas[i] = byte(i)
	}
	return e
}

func TestDataArrayInsertGetRemove(t *testing.T) {
	d := NewDataArray(4, 64)
	slot := d.Insert(0, diffEnc(4), 99)
	if got := d.Get(0, slot); got.DiffBytes() != 4 {
		t.Fatalf("Get returned %+v", got)
	}
	if d.TagOf(0, slot) != 99 {
		t.Fatal("tag pointer lost")
	}
	if d.FreeSegs(0) != 62 { // 4-byte diff = 12B = 2 segments
		t.Fatalf("FreeSegs = %d", d.FreeSegs(0))
	}
	d.Remove(0, slot)
	if d.FreeSegs(0) != 64 {
		t.Fatal("Remove did not free segments")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDataArrayTombstoneReuseKeepsOrdinals(t *testing.T) {
	d := NewDataArray(1, 64)
	s0 := d.Insert(0, diffEnc(4), 0)
	s1 := d.Insert(0, diffEnc(4), 1)
	s2 := d.Insert(0, diffEnc(4), 2)
	d.Remove(0, s1)
	// s0 and s2 keep their slot indices across the removal (the paper's
	// startmap property, Fig. 11c).
	if d.TagOf(0, s0) != 0 || d.TagOf(0, s2) != 2 {
		t.Fatal("ordinals disturbed by removal")
	}
	// New insertion reuses the tombstone (Fig. 11d).
	s3 := d.Insert(0, diffEnc(8), 3)
	if s3 != s1 {
		t.Fatalf("tombstone not reused: got slot %d, want %d", s3, s1)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDataArrayOverflowPanics(t *testing.T) {
	d := NewDataArray(1, 16)
	d.Insert(0, rawEnc(1), 0) // 8 segments
	d.Insert(0, rawEnc(2), 1) // 8 segments: full
	defer func() {
		if recover() == nil {
			t.Fatal("overflow insert did not panic")
		}
	}()
	d.Insert(0, diffEnc(1), 2)
}

func TestVictimPlanLargestFirst(t *testing.T) {
	d := NewDataArray(1, 64)
	d.Insert(0, diffEnc(4), 0)  // 2 segs
	d.Insert(0, rawEnc(1), 1)   // 8 segs
	d.Insert(0, diffEnc(20), 2) // 4 segs
	// 50 free; ask for 56 → need to free ≥6 → the raw (8-seg) entry alone.
	plan, ok := d.VictimPlan(0, 56)
	if !ok || len(plan) != 1 || d.TagOf(0, plan[0]) != 1 {
		t.Fatalf("plan %v ok=%v", plan, ok)
	}
	// Fits already → empty plan.
	if plan, ok := d.VictimPlan(0, 10); !ok || plan != nil {
		t.Fatalf("no-op plan %v", plan)
	}
	// Impossible.
	if _, ok := d.VictimPlan(0, 65); ok {
		t.Fatal("impossible plan succeeded")
	}
}

func TestEvictionCost(t *testing.T) {
	d := NewDataArray(2, 64)
	d.Insert(0, rawEnc(1), 0)
	if c := d.EvictionCost(0, 60); c != 4 {
		t.Fatalf("cost = %d", c)
	}
	if c := d.EvictionCost(1, 60); c != 0 {
		t.Fatalf("empty set cost = %d", c)
	}
}

func TestDataArrayRandomizedInvariants(t *testing.T) {
	d := NewDataArray(8, 64)
	rng := xrand.New(11)
	type live struct{ set, slot int }
	var entries []live
	for step := 0; step < 20000; step++ {
		if rng.Bool(0.6) || len(entries) == 0 {
			set := rng.Intn(8)
			var enc *diffenc.Encoded
			if rng.Bool(0.3) {
				enc = rawEnc(byte(step))
			} else {
				enc = diffEnc(1 + rng.Intn(40))
			}
			if d.FreeSegs(set) < enc.Segments() {
				continue
			}
			slot := d.Insert(set, enc, step)
			entries = append(entries, live{set, slot})
		} else {
			i := rng.Intn(len(entries))
			d.Remove(entries[i].set, entries[i].slot)
			entries[i] = entries[len(entries)-1]
			entries = entries[:len(entries)-1]
		}
		if step%500 == 0 {
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	// Every live entry still resolves.
	for _, e := range entries {
		d.Get(e.set, e.slot)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUsedBytesAndCapacity(t *testing.T) {
	d := NewDataArray(2, 64)
	if d.CapacityBytes() != 2*64*8 {
		t.Fatalf("capacity %d", d.CapacityBytes())
	}
	d.Insert(0, rawEnc(1), 0)
	if d.UsedBytes() != 64 {
		t.Fatalf("used %d", d.UsedBytes())
	}
}

func TestStartmapNeverExhausted(t *testing.T) {
	// Worst case: fill with 2-segment entries (32 of them), remove all,
	// repeat — tombstones must always be reusable.
	d := NewDataArray(1, 64)
	for round := 0; round < 10; round++ {
		var slots []int
		for i := 0; i < 32; i++ {
			slots = append(slots, d.Insert(0, diffEnc(1), i))
		}
		for _, s := range slots {
			d.Remove(0, s)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
