package thesaurus

import (
	"reflect"
	"testing"

	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/lsh"
	"repro/internal/memory"
)

// driveTableTraffic applies a deterministic mixed insert/retire sequence:
// entries become clusteroids, gain and lose references, retire (cntr 0),
// and are re-seeded, touching every state the cache machinery produces.
func driveTableTraffic(tab *BaseTable) {
	n := tab.Len()
	seed := uint32(0x9e3779b9)
	next := func() uint32 {
		seed = seed*1664525 + 1013904223
		return seed
	}
	for i := 0; i < 4*n; i++ {
		fp := lsh.Fingerprint(next() % uint32(n))
		e := tab.entry(fp)
		switch next() % 4 {
		case 0: // seed or re-seed a clusteroid
			tab.markValid(e)
			var l line.Line
			for j := range l {
				l[j] = byte(next())
			}
			e.Base = l
			e.Cntr = next() % 700
		case 1: // gain a reference
			if tab.valid(e) {
				e.Cntr++
			}
		case 2: // lose a reference
			if tab.valid(e) && e.Cntr > 0 {
				e.Cntr--
			}
		case 3: // retire: base stays, no live references
			if tab.valid(e) {
				e.Cntr = 0
			}
		}
	}
}

// observe captures everything the cache can see of a table: per-entry
// validity, and for valid entries the payload.
type tableView struct {
	Valid []bool
	Base  []line.Line
	Cntr  []uint32
	Live  int
	Total int
	Fracs [4]float64
}

func viewOf(tab *BaseTable) tableView {
	v := tableView{
		Valid: make([]bool, tab.Len()),
		Base:  make([]line.Line, tab.Len()),
		Cntr:  make([]uint32, tab.Len()),
	}
	for i := 0; i < tab.Len(); i++ {
		e := tab.entry(lsh.Fingerprint(i))
		if tab.valid(e) {
			v.Valid[i] = true
			v.Base[i] = e.Base
			v.Cntr[i] = e.Cntr
		}
	}
	v.Live, v.Total = tab.ActiveClusters()
	v.Fracs = tab.ClusterSizes()
	return v
}

// TestResetTableMatchesFresh is the pooling property test: a table that
// went through arbitrary traffic and a Reset must be observationally
// identical to a brand-new slab — before traffic (all invalid, no stale
// payload visible) and after replaying the same traffic on both.
func TestResetTableMatchesFresh(t *testing.T) {
	mem := memory.NewStore()
	const bits = 8
	recycled := NewBaseTable(bits, mem)
	driveTableTraffic(recycled)
	recycled.Reset()

	fresh := &BaseTable{entries: make([]BaseEntry, 1<<bits), epoch: 1, mem: mem}

	if !reflect.DeepEqual(viewOf(recycled), viewOf(fresh)) {
		t.Fatal("reset table differs from a fresh slab before traffic")
	}
	live, valid := recycled.ActiveClusters()
	if live != 0 || valid != 0 {
		t.Fatalf("reset table still has live=%d valid=%d clusters", live, valid)
	}

	driveTableTraffic(recycled)
	driveTableTraffic(fresh)
	if !reflect.DeepEqual(viewOf(recycled), viewOf(fresh)) {
		t.Fatal("reset table diverges from a fresh slab under identical traffic")
	}
}

// TestResetEpochWraparound pins the one-in-four-billion path: when the
// epoch counter wraps, Reset must fall back to zeroing the slab so stamps
// from 2^32-1 resets ago cannot alias as valid.
func TestResetEpochWraparound(t *testing.T) {
	mem := memory.NewStore()
	tab := NewBaseTable(4, mem)
	tab.epoch = ^uint32(0) // one Reset away from wrapping
	for i := 0; i < tab.Len(); i++ {
		e := tab.entry(lsh.Fingerprint(i))
		tab.markValid(e)
		e.Base[0] = byte(i + 1)
		e.Cntr = uint32(i + 1)
	}
	// Plant a stale stamp that would alias with the post-wrap epoch if
	// Reset only bumped the counter.
	tab.entry(0).epoch = 1

	tab.Reset()
	if tab.epoch != 1 {
		t.Fatalf("post-wrap epoch = %d, want 1", tab.epoch)
	}
	if live, valid := tab.ActiveClusters(); live != 0 || valid != 0 {
		t.Fatalf("wraparound reset left live=%d valid=%d entries", live, valid)
	}
	for i := 0; i < tab.Len(); i++ {
		if e := tab.entry(lsh.Fingerprint(i)); *e != (BaseEntry{}) {
			t.Fatalf("entry %d not zeroed after wraparound: %+v", i, *e)
		}
	}
	// The wrapped table keeps working like a fresh one.
	e := tab.entry(3)
	tab.markValid(e)
	e.Cntr = 2
	if live, valid := tab.ActiveClusters(); live != 1 || valid != 1 {
		t.Fatalf("post-wrap stamping broken: live=%d valid=%d", live, valid)
	}
}

// TestReleaseRecyclesThroughPool checks the Release → NewBaseTable round
// trip: whatever slab comes back (pooled or fresh) must be attached to
// the new store and hold no observable state from its previous life.
func TestReleaseRecyclesThroughPool(t *testing.T) {
	memA := memory.NewStore()
	tab := NewBaseTable(9, memA)
	driveTableTraffic(tab)
	tab.Release()

	memB := memory.NewStore()
	got := NewBaseTable(9, memB)
	if got.Len() != 1<<9 {
		t.Fatalf("recycled table Len = %d", got.Len())
	}
	if got.mem != memB {
		t.Fatal("recycled table not attached to the new store")
	}
	if live, valid := got.ActiveClusters(); live != 0 || valid != 0 {
		t.Fatalf("recycled table leaks previous life: live=%d valid=%d", live, valid)
	}
	if f := got.ClusterSizes(); f != [4]float64{} {
		t.Fatalf("recycled table cluster fractions %v", f)
	}
}

// TestCacheReleaseRecycleDeterminism drives the full cache twice — the
// second construction can pick up the first's pooled base table — and
// requires identical observable behaviour either way.
func TestCacheReleaseRecycleDeterminism(t *testing.T) {
	run := func() (llc.Stats, *Snapshot) {
		mem := memory.NewStore()
		c := MustNew(smallConfig(), mem)
		seed := uint32(12345)
		next := func() uint32 {
			seed = seed*1664525 + 1013904223
			return seed
		}
		for i := 0; i < 2000; i++ {
			addr := line.Addr(next()%512) * 64
			if next()%3 == 0 {
				var l line.Line
				for j := 0; j < 8; j++ {
					l[j] = byte(next())
				}
				c.Write(addr, l)
			} else {
				c.Read(addr)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		snap := c.Release()
		return snap.Stats, snap.Extra.(*Snapshot)
	}
	stats1, extra1 := run()
	stats2, extra2 := run() // likely on the recycled table
	if !reflect.DeepEqual(stats1, stats2) {
		t.Fatal("recycled-table run produced different cache stats")
	}
	if !reflect.DeepEqual(extra1, extra2) {
		t.Fatal("recycled-table run produced different snapshot extras")
	}
}
