package thesaurus

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/xrand"
)

// clusteredLine fabricates content that exercises every encoding family:
// members of a few synthetic clusters, sparse lines, zero lines, and
// incompressible noise.
func clusteredLine(rng *xrand.Rand, protos []line.Line) line.Line {
	switch rng.Intn(8) {
	case 0:
		return line.Zero
	case 1: // sparse (0+diff territory)
		var l line.Line
		for j, n := 0, 1+rng.Intn(5); j < n; j++ {
			l[rng.Intn(line.Size)] = byte(rng.Uint32())
		}
		return l
	case 2: // noise (raw territory)
		var l line.Line
		for w := 0; w < line.WordsPerLine; w++ {
			l.SetWord(w, rng.Uint64())
		}
		return l
	default: // cluster member: proto plus a few byte flips
		l := protos[rng.Intn(len(protos))]
		for j, n := 0, rng.Intn(6); j < n; j++ {
			l[rng.Intn(line.Size)] ^= byte(1 + rng.Intn(255))
		}
		return l
	}
}

// checkFingerprintInvariant asserts that every resident placed tag's
// memoized fingerprint equals a from-scratch projection of its decoded
// content — the exactness contract the incremental write-hit fast path
// (changedVsStored + FingerprintDelta) must preserve.
func checkFingerprintInvariant(t *testing.T, c *Cache) {
	t.Helper()
	c.drainWrites(false)
	c.tags.ForEach(func(_ int, e *cache.Entry[tagPayload]) {
		if !e.Payload.fpValid {
			return
		}
		data := c.decodeEntry(e)
		if want := c.hasher.Fingerprint(&data); e.Payload.fp != want {
			t.Fatalf("addr %#x (%v): memoized fp %#x, content fp %#x",
				e.Addr, e.Payload.fmt, e.Payload.fp, want)
		}
	})
}

// observation is one externally visible state readout.
type observation struct {
	Stats     interface{}
	Extra     ExtraStats
	Footprint interface{}
	CritDRAM  uint64
}

func observe(c *Cache) observation {
	return observation{
		Stats:     c.Stats(),
		Extra:     c.Extra(),
		Footprint: c.Footprint(),
		CritDRAM:  c.CriticalDRAMAccesses(),
	}
}

// TestWriteBufferByteIdentity drives identical operation streams through
// an unbuffered cache and buffered caches of several depths, comparing
// every externally observable statistic at random observation points and
// the full decoded contents at the end. Deferred-write batching must be
// invisible to every reported figure.
func TestWriteBufferByteIdentity(t *testing.T) {
	depths := []int{0, 1, 4, 32}
	caches := make([]*Cache, len(depths))
	mems := make([]*memory.Store, len(depths))
	cfg := smallConfig()
	for i, d := range depths {
		cfg.WriteBufferDepth = d
		mems[i] = memory.NewStore()
		caches[i] = MustNew(cfg, mems[i])
	}

	protoRng := xrand.New(0xc1a5)
	protos := make([]line.Line, 4)
	for i := range protos {
		for w := 0; w < line.WordsPerLine; w++ {
			protos[i].SetWord(w, protoRng.Uint64())
		}
	}

	rng := xrand.New(0x0b5e53)
	addrs := make([]line.Addr, 96)
	for i := range addrs {
		addrs[i] = line.Addr(i * line.Size)
	}
	for op := 0; op < 6000; op++ {
		addr := addrs[rng.Intn(len(addrs))]
		kind := rng.Intn(10)
		data := clusteredLine(rng, protos)
		for i := range caches {
			switch {
			case kind < 5:
				caches[i].Read(addr)
			default:
				caches[i].Write(addr, data)
			}
		}
		if op%257 == 0 || rng.Intn(200) == 0 {
			want := observe(caches[0])
			for i := 1; i < len(caches); i++ {
				if got := observe(caches[i]); !reflect.DeepEqual(got, want) {
					t.Fatalf("op %d: depth %d observation diverged\ngot  %+v\nwant %+v",
						op, depths[i], got, want)
				}
			}
		}
		if op%1501 == 0 {
			for i := range caches {
				if err := caches[i].CheckInvariants(); err != nil {
					t.Fatalf("op %d depth %d: %v", op, depths[i], err)
				}
			}
			checkFingerprintInvariant(t, caches[0])
		}
	}

	// End state: decoded contents must agree line by line, and the
	// release snapshots (everything any figure reads) must be deep-equal.
	for _, a := range addrs {
		ref, refHit := caches[0].Read(a)
		for i := 1; i < len(caches); i++ {
			got, hit := caches[i].Read(a)
			if got != ref || hit != refHit {
				t.Fatalf("addr %#x: depth %d content/hit diverged", a, depths[i])
			}
		}
	}
	checkFingerprintInvariant(t, caches[0])
	wb := caches[len(caches)-1].WriteBuffer()
	if wb.Buffered == 0 || wb.Drains == 0 {
		t.Fatalf("write buffer never exercised: %+v", wb)
	}
	want := caches[0].Release()
	want.Extra.(*Snapshot).Cfg.WriteBufferDepth = -1 // the only field allowed to differ
	for i := 1; i < len(caches); i++ {
		got := caches[i].Release()
		got.Extra.(*Snapshot).Cfg.WriteBufferDepth = -1
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("depth %d: release snapshot diverged\ngot  %+v\nwant %+v", depths[i], got, want)
		}
	}
}

// TestWriteBufferAdvisoryHit pins the advisory return value: a buffered
// write reports residency exactly as the deferred operation will find it,
// including hits on lines that only exist as earlier buffered writes.
func TestWriteBufferAdvisoryHit(t *testing.T) {
	cfg := smallConfig()
	cfg.WriteBufferDepth = 8
	c := MustNew(cfg, memory.NewStore())
	var l line.Line
	l[0] = 1
	if c.Write(0, l) {
		t.Fatal("write to an empty cache reported a hit")
	}
	if !c.Write(0, l) {
		t.Fatal("write to a line pending in the buffer reported a miss")
	}
	c.Stats() // drain
	if !c.Write(0, l) {
		t.Fatal("write to a resident line reported a miss")
	}
}
