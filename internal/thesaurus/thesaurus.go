// Package thesaurus implements the paper's contribution: an LLC that
// dynamically clusters similar cachelines with locality-sensitive hashing
// and stores cluster members as byte-granular diffs against a per-cluster
// base (clusteroid).
//
// Organization follows §5: a decoupled tag array (2× the conventional tag
// count at iso-silicon), a segment-granular data array with startmap/segix
// indirection, a global in-memory base table holding one clusteroid per
// LSH fingerprint, and an LLC-side base cache over it. Data-array victim
// sets are chosen with a best-of-n policy (§5.4.3).
package thesaurus

import (
	"fmt"
	"math/bits"

	"repro/internal/bdi"
	"repro/internal/cache"
	"repro/internal/diffenc"
	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/lsh"
	"repro/internal/memory"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Config sizes a Thesaurus LLC. DefaultConfig reproduces the Table 2
// iso-silicon design point for a 1MB conventional baseline.
type Config struct {
	// TagEntries is the tag-array size (2× the conventional tag count).
	TagEntries int
	// TagWays is the tag associativity.
	TagWays int
	// DataSets is the number of data-array sets.
	DataSets int
	// SegmentsPerSet is the number of 8-byte segments per data set (64 in
	// the paper: a 128-bit startmap at 2 bits per segment).
	SegmentsPerSet int
	// LSH configures the fingerprint hasher.
	LSH lsh.Config
	// BaseCacheSets and BaseCacheWays size the base cache (64×8 = 512
	// entries in the paper).
	BaseCacheSets, BaseCacheWays int
	// VictimCandidates is the n of the best-of-n data victim policy (4).
	VictimCandidates int
	// Seed drives the data-victim sampling.
	Seed uint64
	// DiffSeriesWindow, when positive, records the Fig. 19 diff-size time
	// series with the given averaging window.
	DiffSeriesWindow int
	// BaseCachePlainLRU disables the scan-resistant victim-priority
	// insertion of base-cache fills (see BaseCache.Access), reverting to
	// the paper's plain pseudo-LRU management. Used by the ablation.
	BaseCachePlainLRU bool
	// IntraLineFallback enables the 2DCC-style second compression
	// dimension (Ghasemazar et al., DATE 2020 — the paper's reference
	// [21]): lines that fail to cluster (raw fallback) are compressed
	// intra-line with BΔI before being stored. Off by default — the
	// ASPLOS paper evaluates clustering alone.
	IntraLineFallback bool
	// AdaptiveEpoch, when positive, enables the cache-insensitivity
	// detector sketched in §6.1/§6.3: compression is disabled for epochs
	// of this many accesses whenever the hit rate shows the workload
	// cannot benefit (see adaptive.go). Zero disables the detector (the
	// paper's evaluated configuration).
	AdaptiveEpoch int
	// WriteBufferDepth bounds the write buffer that defers whole write
	// operations (lookup included) until the buffer fills or the cache's
	// state is next observed, modelling §5.4.2's off-critical-path
	// re-encoding. Draining replays the buffered writes in arrival order
	// through the unmodified write path, so every statistic, replacement
	// decision, and rng draw is byte-identical to an unbuffered cache
	// (docs/performance.md). Zero disables buffering.
	WriteBufferDepth int
}

// DefaultWriteBufferDepth is the default write-buffer capacity: deep
// enough to batch a typical writeback burst, small enough that the
// deferred state is bounded by one tag set's worth of lines.
const DefaultWriteBufferDepth = 32

// DefaultConfig returns the paper's Table 2 configuration: 32768 tags
// (8-way), 11700-entry-equivalent data array, 12-bit LSH, 512-entry base
// cache, best-of-4 victim selection.
func DefaultConfig() Config {
	return Config{
		TagEntries: 32768,
		TagWays:    8,
		// 11700 data entries × 64B ≈ 749KB → 1462 sets of 512B.
		DataSets:         1462,
		SegmentsPerSet:   64,
		LSH:              lsh.DefaultConfig(),
		BaseCacheSets:    64,
		BaseCacheWays:    8,
		VictimCandidates: 4,
		Seed:             0x7e5a7105,
		WriteBufferDepth: DefaultWriteBufferDepth,
	}
}

// ScaledConfig returns a configuration iso-silicon with a conventional
// cache of sizeBytes, scaling the Table 2 proportions linearly.
func ScaledConfig(sizeBytes int) Config {
	cfg := DefaultConfig()
	scale := float64(sizeBytes) / float64(1<<20)
	cfg.TagEntries = roundMultiple(int(float64(cfg.TagEntries)*scale), cfg.TagWays)
	cfg.DataSets = int(float64(cfg.DataSets) * scale)
	if cfg.DataSets < 1 {
		cfg.DataSets = 1
	}
	return cfg
}

func roundMultiple(n, m int) int {
	if n < m {
		return m
	}
	return n / m * m
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TagEntries <= 0 || c.TagWays <= 0 || c.TagEntries%c.TagWays != 0 {
		return fmt.Errorf("thesaurus: bad tag geometry %d/%d", c.TagEntries, c.TagWays)
	}
	if c.DataSets <= 0 || c.SegmentsPerSet <= 0 {
		return fmt.Errorf("thesaurus: bad data geometry %d×%d", c.DataSets, c.SegmentsPerSet)
	}
	if c.BaseCacheSets <= 0 || c.BaseCacheWays <= 0 {
		return fmt.Errorf("thesaurus: bad base cache geometry %d×%d", c.BaseCacheSets, c.BaseCacheWays)
	}
	if c.VictimCandidates <= 0 {
		return fmt.Errorf("thesaurus: need at least one victim candidate")
	}
	if c.WriteBufferDepth < 0 {
		return fmt.Errorf("thesaurus: negative write buffer depth %d", c.WriteBufferDepth)
	}
	return c.LSH.Validate()
}

// tagPayload is the Thesaurus-specific part of a tag entry (Fig. 9
// bottom-left): encoding format, LSH fingerprint, and the data-array
// pointer (setPtr + segix).
type tagPayload struct {
	fmt     diffenc.Format
	fp      lsh.Fingerprint
	setPtr  int32 // -1 when the entry has no data-array footprint
	slotIdx int32
	// fpValid records that fp was computed for the entry's current
	// content, letting write hits that re-store identical bytes skip the
	// LSH projection (the hardware would equally see an unchanged line).
	fpValid bool
}

// hasData reports whether the tag owns a data-array entry.
func (p tagPayload) hasData() bool { return p.setPtr >= 0 }

// refsBase reports whether the tag holds a reference on its cluster base.
func (p tagPayload) refsBase() bool {
	return p.fmt == diffenc.FormatBaseDiff || p.fmt == diffenc.FormatBaseOnly
}

// ExtraStats holds the Thesaurus-specific counters behind Figures 15-20.
// Per-encoding statistics count *placements*: line installs (demand fills
// and write-allocates) plus write-hit re-encodings, which run the same
// data path (§5.4.2).
type ExtraStats struct {
	// Insertions counts line installs; Reencodes counts write-hit
	// re-encodings; Placements is their sum.
	Insertions uint64
	Reencodes  uint64
	Placements uint64
	// ByFormat histograms placements by final encoding (Fig. 17).
	ByFormat [diffenc.NumFormats]uint64
	// Compressible counts insertions whose diff against the authoritative
	// clusteroid (base-cache state notwithstanding) would compress
	// (Fig. 15; zero lines and new-base installs count as compressible).
	Compressible uint64
	// RawDueToBaseMiss counts insertions stored raw only because the base
	// cache missed (§6.4's lost opportunity).
	RawDueToBaseMiss uint64
	// DiffBytesSum/DiffCount accumulate diff sizes for B+D and 0+D
	// entries (Fig. 18).
	DiffBytesSum uint64
	DiffCount    uint64
	// DataEvictions counts entries forced out of the data array to make
	// space (tag still resident elsewhere being invalidated, §5.4.1 ➑).
	DataEvictions uint64
}

// AvgDiffBytes returns the Fig. 18 metric.
func (s ExtraStats) AvgDiffBytes() float64 {
	if s.DiffCount == 0 {
		return 0
	}
	return float64(s.DiffBytesSum) / float64(s.DiffCount)
}

// CompressibleFraction returns the Fig. 15 metric.
func (s ExtraStats) CompressibleFraction() float64 {
	if s.Placements == 0 {
		return 0
	}
	return float64(s.Compressible) / float64(s.Placements)
}

// FormatFraction returns the share of placements using format f (Fig. 17).
func (s ExtraStats) FormatFraction(f diffenc.Format) float64 {
	if s.Placements == 0 {
		return 0
	}
	return float64(s.ByFormat[f]) / float64(s.Placements)
}

// Cache is a Thesaurus LLC.
type Cache struct {
	cfg    Config
	hasher *lsh.Hasher
	tags   *cache.Array[tagPayload]
	data   *DataArray
	table  *BaseTable
	bcache *BaseCache
	mem    *memory.Store
	rng    *xrand.Rand

	stats      llc.Stats
	extra      ExtraStats
	diffSeries *stats.Series

	// encScratch is the per-cache scratch encoding the placement path
	// (place → placeUnclustered → allocData) encodes into before the data
	// array copies it into slot-owned storage. One arena per Cache keeps
	// the steady-state access loop allocation-free; ownership rules are in
	// docs/performance.md. Cache is not safe for concurrent use (it never
	// was: stats and rng are unguarded), so a single scratch suffices —
	// parallel campaigns build one Cache per worker.
	encScratch diffenc.Encoded

	// wbuf is the bounded write buffer (nil when disabled): whole write
	// operations parked in arrival order until capacity or the next
	// observation of cache state forces a drain. wstats instruments the
	// batching; it is reported only through the WriteBuffer accessor,
	// never in snapshots, so buffered and unbuffered runs produce
	// byte-identical reports.
	wbuf   []bufferedWrite
	wstats WriteBufferStats

	adaptive      adaptiveState
	adaptiveStats AdaptiveStats
}

// bufferedWrite is one deferred write operation.
type bufferedWrite struct {
	addr line.Addr
	data line.Line
}

// WriteBufferStats instruments the deferred-write batching: how many
// writes were buffered, how often the buffer drained and why, and the
// largest batch replayed in one drain. CapacityDrains are the drains a
// hardware write buffer would absorb with more depth; ObservationDrains
// happen at state-observation boundaries (reads, stats, snapshots) and
// are off the simulated critical path by construction.
type WriteBufferStats struct {
	Buffered          uint64
	Drains            uint64
	CapacityDrains    uint64
	ObservationDrains uint64
	MaxBatch          uint64
}

var _ llc.Cache = (*Cache)(nil)

// New builds a Thesaurus LLC over mem.
func New(cfg Config, mem *memory.Store) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hasher, err := lsh.New(cfg.LSH)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:    cfg,
		hasher: hasher,
		tags: cache.New[tagPayload](cache.Config{
			Entries: cfg.TagEntries, Ways: cfg.TagWays, Policy: "plru",
		}),
		data:   NewDataArray(cfg.DataSets, cfg.SegmentsPerSet),
		table:  NewBaseTable(cfg.LSH.Bits, mem),
		bcache: NewBaseCache(cfg.BaseCacheSets, cfg.BaseCacheWays),
		mem:    mem,
		rng:    xrand.New(cfg.Seed),
	}
	c.bcache.LowPriorityInsert = !cfg.BaseCachePlainLRU
	if cfg.DiffSeriesWindow > 0 {
		c.diffSeries = stats.NewSeries(cfg.DiffSeriesWindow)
	}
	if cfg.WriteBufferDepth > 0 {
		c.wbuf = make([]bufferedWrite, 0, cfg.WriteBufferDepth)
	}
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, mem *memory.Store) *Cache {
	c, err := New(cfg, mem)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements llc.Cache.
func (c *Cache) Name() string { return "Thesaurus" }

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// BaseCache exposes the base cache for the Fig. 20 sweep.
func (c *Cache) BaseCache() *BaseCache {
	c.drainWrites(false)
	return c.bcache
}

// BaseTable exposes the base table for the Fig. 16 sampling.
func (c *Cache) BaseTable() *BaseTable {
	c.drainWrites(false)
	return c.table
}

// Extra returns the Thesaurus-specific statistics.
func (c *Cache) Extra() ExtraStats {
	c.drainWrites(false)
	return c.extra
}

// DiffSeries returns the Fig. 19 time series (nil unless enabled).
func (c *Cache) DiffSeries() []float64 {
	c.drainWrites(false)
	if c.diffSeries == nil {
		return nil
	}
	return c.diffSeries.Points()
}

// Read implements llc.Cache (§5.4.1, Fig. 12).
//
//thesaurus:hotpath
func (c *Cache) Read(addr line.Addr) (line.Line, bool) {
	addr = addr.LineAddr()
	c.drainWrites(false)
	c.stats.Reads++
	if e, _ := c.tags.Lookup(addr); e != nil {
		c.stats.ReadHits++
		c.observeAccess(true)
		return c.decode(e), true
	}
	// Miss: fetch from memory, return data immediately; insertion happens
	// off the critical path.
	c.observeAccess(false)
	data := c.mem.Read(addr, memory.Fill)
	c.stats.Fills++
	c.install(addr, &data, false)
	return data, false
}

// Write implements llc.Cache (§5.4.2): the new content may change the
// encoding and size, so the line is re-encoded through the full data path.
// With a write buffer configured the whole operation is deferred until the
// buffer fills or the cache is next observed; the return value is then
// advisory (a statistics- and recency-free residency probe), matching what
// the operation will report when it replays. Replay order equals arrival
// order, so a buffered cache is observationally byte-identical to an
// unbuffered one.
//
//thesaurus:hotpath
func (c *Cache) Write(addr line.Addr, data line.Line) bool {
	addr = addr.LineAddr()
	if c.wbuf == nil {
		return c.writeNow(addr, &data)
	}
	hit := c.peekResident(addr)
	c.wbuf = append(c.wbuf, bufferedWrite{addr: addr, data: data})
	c.wstats.Buffered++
	if len(c.wbuf) == cap(c.wbuf) {
		c.drainWrites(true)
	}
	return hit
}

// writeNow runs one write operation through the data path immediately.
func (c *Cache) writeNow(addr line.Addr, data *line.Line) bool {
	c.stats.Writes++
	if e, idx := c.tags.Lookup(addr); e != nil {
		c.stats.WriteHits++
		c.observeAccess(true)
		c.rewriteHit(e, idx, data)
		c.extra.Reencodes++
		return true
	}
	c.observeAccess(false)
	c.install(addr, data, true)
	return false
}

// rewriteHit re-encodes a resident line with new content (§5.4.2). The
// stored encoding already knows a lot about the new line: the old-vs-new
// byte diff falls out of the stored mask and deltas without materializing
// the old line, the fingerprint is updated incrementally by re-projecting
// only the rows that tap changed bytes (exactly Fingerprint(data), see
// lsh.FingerprintDelta), and when the fingerprint is unchanged the
// new-vs-clusteroid mask computed here is handed to the encoder so the
// placement path never recomputes it.
func (c *Cache) rewriteHit(e *cache.Entry[tagPayload], tagIdx int, data *line.Line) {
	var hint placeHint
	if e.Payload.fpValid {
		oldFP := e.Payload.fp
		changed, baseMask, haveBaseMask := c.changedVsStored(e, data)
		hint.fp = oldFP
		hint.haveFP = true
		if changed != 0 {
			hint.fp = c.hasher.FingerprintDelta(oldFP, data, changed)
		}
		// baseMask is the diff against the table entry for oldFP; it is
		// only the encode mask if the new content still lands there.
		if haveBaseMask && hint.fp == oldFP {
			hint.baseMask = baseMask
			hint.haveBaseMask = true
		}
	}
	c.dropPayload(e)
	c.place(e, tagIdx, data, true, hint)
}

// changedVsStored returns the byte mask at which data differs from the
// entry's current (encoded) content, derived from the stored encoding
// instead of a decode-and-compare. For base-referencing formats it also
// returns the data-vs-clusteroid diff mask it computed along the way
// (valid for the entry's current fingerprint). The entry must be placed
// (fpValid) and compression-era: AllZero entries never carry fpValid.
func (c *Cache) changedVsStored(e *cache.Entry[tagPayload], data *line.Line) (changed, baseMask uint64, haveBaseMask bool) {
	p := e.Payload
	switch p.fmt {
	case diffenc.FormatBaseOnly:
		// Old content is the clusteroid itself.
		ent := c.table.entry(p.fp)
		baseMask = line.DiffMask(data, &ent.Base)
		return baseMask, baseMask, true
	case diffenc.FormatBaseDiff, diffenc.FormatZeroDiff:
		// Old content is ref overlaid with deltas at mask positions:
		// outside the mask it equals ref, inside it equals the stored
		// delta byte. One data-vs-ref mask plus a walk of the (short,
		// Fig. 18) delta list replaces the full decode.
		enc := c.data.encAt(int(p.setPtr), int(p.slotIdx))
		if p.fmt == diffenc.FormatBaseDiff {
			ent := c.table.entry(p.fp)
			baseMask = line.DiffMask(data, &ent.Base)
			haveBaseMask = true
			changed = baseMask &^ enc.Mask
		} else {
			changed = data.NonZeroMask() &^ enc.Mask
		}
		j := 0
		for m := enc.Mask; m != 0; m &= m - 1 {
			b := bits.TrailingZeros64(m)
			if data[b] != enc.Deltas[j] {
				changed |= 1 << uint(b)
			}
			j++
		}
		return changed, baseMask, haveBaseMask
	default:
		// Raw and Intra entries carry the old line verbatim.
		enc := c.data.encAt(int(p.setPtr), int(p.slotIdx))
		return line.DiffMask(data, &enc.Raw), 0, false
	}
}

// peekResident reports whether a write to addr will hit once the buffer
// drains: resident in the tag array (no statistics or recency update), or
// pending in the buffer itself (a buffered write-allocate installs it).
func (c *Cache) peekResident(addr line.Addr) bool {
	// Tag probe first: in steady state most writes hit a resident line,
	// and the probe touches one set instead of walking the buffer (each
	// pending write carries a full 64-byte line).
	if e, _ := c.tags.Peek(addr); e != nil {
		return true
	}
	for i := len(c.wbuf) - 1; i >= 0; i-- {
		if c.wbuf[i].addr == addr {
			return true
		}
	}
	return false
}

// drainWrites replays the buffered writes in arrival order through the
// unmodified write path. It runs on capacity and before every observation
// of cache state, so statistics, replacement state, and rng draws are
// byte-identical to an unbuffered cache at every observation point.
func (c *Cache) drainWrites(capacity bool) {
	if len(c.wbuf) == 0 {
		return
	}
	c.wstats.Drains++
	if capacity {
		c.wstats.CapacityDrains++
	} else {
		c.wstats.ObservationDrains++
	}
	if n := uint64(len(c.wbuf)); n > c.wstats.MaxBatch {
		c.wstats.MaxBatch = n
	}
	for i := range c.wbuf {
		c.writeNow(c.wbuf[i].addr, &c.wbuf[i].data)
	}
	c.wbuf = c.wbuf[:0]
}

// WriteBuffer returns the write-buffer statistics. Reading them does not
// drain the buffer (draining here would fold the act of observing the
// buffer into the numbers being observed).
func (c *Cache) WriteBuffer() WriteBufferStats { return c.wstats }

// install allocates a tag for addr (evicting as needed) and runs the
// insertion data path.
func (c *Cache) install(addr line.Addr, data *line.Line, dirty bool) {
	e, idx, evicted, had := c.tags.Insert(addr)
	if had {
		c.retire(evicted)
	}
	c.place(e, idx, data, dirty, placeHint{})
	c.extra.Insertions++
}

// retire handles a tag evicted by the tag replacement policy: write back
// dirty contents, free the data entry, and release the base reference.
func (c *Cache) retire(evicted cache.Entry[tagPayload]) {
	if evicted.Dirty {
		c.mem.Write(evicted.Addr, c.decodeEntry(&evicted), memory.Writeback)
		c.stats.Writebacks++
	}
	if evicted.Payload.hasData() {
		c.data.Remove(int(evicted.Payload.setPtr), int(evicted.Payload.slotIdx))
	}
	c.releaseBase(evicted.Payload)
}

// dropPayload releases a resident tag's data entry and base reference in
// preparation for re-encoding (write hits). The tag itself stays valid.
func (c *Cache) dropPayload(e *cache.Entry[tagPayload]) {
	if e.Payload.hasData() {
		c.data.Remove(int(e.Payload.setPtr), int(e.Payload.slotIdx))
	}
	c.releaseBase(e.Payload)
	e.Payload = tagPayload{setPtr: -1, slotIdx: -1}
}

// releaseBase decrements the clusteroid refcount for referencing formats.
// When the count reaches zero the base is retired lazily: it stays in the
// table but will be replaced by the next incoming line for that LSH
// (§5.2.3).
func (c *Cache) releaseBase(p tagPayload) {
	if !p.refsBase() {
		return
	}
	ent := c.table.entry(p.fp)
	if !c.table.valid(ent) || ent.Cntr == 0 {
		panic("thesaurus: base refcount underflow")
	}
	ent.Cntr--
}

// placeHint carries what the write-hit fast path already knows about the
// line being placed: its exact fingerprint (haveFP), and — when the
// fingerprint is unchanged by the rewrite — the precomputed diff mask
// against that fingerprint's clusteroid (haveBaseMask). Both are pure
// memoization: placeLine computes identical values when they are absent.
type placeHint struct {
	fp           lsh.Fingerprint
	haveFP       bool
	baseMask     uint64
	haveBaseMask bool
}

// place runs the insertion data path (Fig. 12 b+c) for a valid tag entry
// with an empty payload, encoding data and allocating data-array space.
// placeLine does the work and place accounts the final format (the split
// replaces a deferred closure that cost an allocation-free but measurable
// defer on every placement).
func (c *Cache) place(e *cache.Entry[tagPayload], tagIdx int, data *line.Line, dirty bool, hint placeHint) {
	c.placeLine(e, tagIdx, data, dirty, hint)
	c.extra.ByFormat[e.Payload.fmt]++
}

func (c *Cache) placeLine(e *cache.Entry[tagPayload], tagIdx int, data *line.Line, dirty bool, hint placeHint) {
	e.Dirty = dirty
	e.Payload = tagPayload{setPtr: -1, slotIdx: -1}
	c.extra.Placements++

	// All-zero lines are identified in the tag alone (detected by a
	// comparator even when the adaptive detector has compression off).
	if data.IsZero() {
		e.Payload.fmt = diffenc.FormatAllZero
		c.extra.Compressible++
		return
	}

	// Cache-insensitive epoch (§6.1/§6.3 extension): skip the LSH and
	// base-cache machinery entirely and store raw.
	if c.compressionDisabled() {
		e.Payload.fmt = diffenc.FormatRaw
		c.adaptiveStats.DisabledPlacements++
		c.encScratch.SetRaw(data)
		c.allocData(e, tagIdx, &c.encScratch)
		return
	}

	fp := hint.fp
	if !hint.haveFP {
		fp = c.hasher.Fingerprint(data)
	}
	e.Payload.fp = fp
	e.Payload.fpValid = true
	ent := c.table.entry(fp)

	// The diff against the live clusteroid drives both the Fig. 15
	// accounting and the encoder; compute (or take from the hint) the
	// mask once and share it.
	live := c.table.valid(ent) && ent.Cntr > 0
	var baseMask uint64
	if live {
		if hint.haveBaseMask {
			baseMask = hint.baseMask
		} else {
			baseMask = line.DiffMask(data, &ent.Base)
		}
	}

	// Fig. 15 accounting: would this line compress against the
	// authoritative clusteroid (ignoring base-cache state)?
	if !live || bits.OnesCount64(baseMask) <= diffenc.MaxCompressibleDiffBytes {
		c.extra.Compressible++
	}

	// Base-cache access on the insertion path. A miss means the base is
	// not available in time: store raw while the entry is fetched (§5.4.1).
	if !c.bcache.Access(fp, c.table, false) {
		if !c.table.valid(ent) {
			// No clusteroid existed; seed the table so future insertions
			// for this fingerprint can cluster.
			c.table.markValid(ent)
			ent.Base = *data
			ent.Cntr = 0
		}
		c.extra.RawDueToBaseMiss++
		c.placeUnclustered(e, tagIdx, data)
		return
	}

	// Base cache hit: the clusteroid (if any) is at hand.
	if !live {
		// No live cluster: this line becomes the (new) clusteroid.
		c.table.markValid(ent)
		ent.Base = *data
		ent.Cntr = 1
		e.Payload.fmt = diffenc.FormatBaseOnly
		return
	}

	enc := &c.encScratch
	diffenc.EncodeIntoMasked(enc, data, baseMask)
	switch enc.Format {
	case diffenc.FormatBaseOnly:
		e.Payload.fmt = enc.Format
		ent.Cntr++
		return
	case diffenc.FormatBaseDiff:
		ent.Cntr++
	}
	if n := enc.DiffBytes(); n > 0 {
		c.extra.DiffBytesSum += uint64(n)
		c.extra.DiffCount++
		if c.diffSeries != nil {
			c.diffSeries.Add(float64(n))
		}
	}
	if enc.Format == diffenc.FormatRaw {
		c.placeUnclustered(e, tagIdx, data)
		return
	}
	e.Payload.fmt = enc.Format
	c.allocData(e, tagIdx, enc)
}

// placeUnclustered stores a line that did not join a cluster: raw, or —
// when the 2DCC-style IntraLineFallback extension is enabled — intra-line
// compressed with BΔI if that helps.
func (c *Cache) placeUnclustered(e *cache.Entry[tagPayload], tagIdx int, data *line.Line) {
	if c.cfg.IntraLineFallback {
		if size, ok := bdi.CompressedSize(data); ok {
			e.Payload.fmt = diffenc.FormatIntra
			c.encScratch.SetIntra(data, size)
			c.allocData(e, tagIdx, &c.encScratch)
			return
		}
	}
	e.Payload.fmt = diffenc.FormatRaw
	c.encScratch.SetRaw(data)
	c.allocData(e, tagIdx, &c.encScratch)
}

// allocData finds data-array space for enc using the best-of-n victim
// policy (§5.4.3), evicting entries (and their tags) as needed, and wires
// the tag's setptr/segix. enc is typically the cache's scratch encoding;
// Insert deep-copies it into slot-owned storage.
func (c *Cache) allocData(e *cache.Entry[tagPayload], tagIdx int, enc *diffenc.Encoded) {
	need := enc.Segments()
	set := c.chooseVictimSet(need)
	plan, ok := c.data.VictimPlan(set, need)
	if !ok {
		panic("thesaurus: victim plan infeasible for a single entry")
	}
	for _, slotIdx := range plan {
		c.evictDataEntry(set, slotIdx)
	}
	slotIdx := c.data.Insert(set, enc, tagIdx)
	e.Payload.setPtr = int32(set)
	e.Payload.slotIdx = int32(slotIdx)
}

// chooseVictimSet samples VictimCandidates distinct-ish data sets; the
// first with enough free space wins, otherwise the one evicting the
// fewest segments (§5.4.3).
func (c *Cache) chooseVictimSet(need int) int {
	best := -1
	bestCost := int(^uint(0) >> 1)
	for i := 0; i < c.cfg.VictimCandidates; i++ {
		s := c.rng.Intn(c.data.NumSets())
		cost := c.data.EvictionCost(s, need)
		if cost == 0 {
			return s
		}
		if cost < bestCost {
			best, bestCost = s, cost
		}
	}
	return best
}

// evictDataEntry removes the entry at (set, slot) from the data array,
// evicting its owning tag (with writeback if dirty) first.
func (c *Cache) evictDataEntry(set, slotIdx int) {
	tagIdx := c.data.TagOf(set, slotIdx)
	te := c.tags.EntryAt(tagIdx)
	if !te.Valid || int(te.Payload.setPtr) != set || int(te.Payload.slotIdx) != slotIdx {
		panic("thesaurus: data entry / tag back-pointer mismatch")
	}
	if te.Dirty {
		c.mem.Write(te.Addr, c.decode(te), memory.Writeback)
		c.stats.Writebacks++
	}
	old := c.tags.InvalidateIndex(tagIdx)
	c.data.Remove(set, slotIdx)
	c.releaseBase(old.Payload)
	c.extra.DataEvictions++
}

// decode reconstructs the line for a resident tag, modelling base-cache
// accesses on the read path for base-referencing formats.
func (c *Cache) decode(e *cache.Entry[tagPayload]) line.Line {
	if e.Payload.refsBase() {
		c.bcache.Access(e.Payload.fp, c.table, true)
	}
	return c.decodeEntry(e)
}

// decodeEntry reconstructs the line without base-cache accounting (used
// for writebacks, which the paper services off the critical path). The
// data-array entry is decoded in place by pointer — no Encoded value (and
// no delta buffer) is copied on the read path.
func (c *Cache) decodeEntry(e *cache.Entry[tagPayload]) line.Line {
	p := e.Payload
	var base *line.Line
	if p.refsBase() {
		ent := c.table.entry(p.fp)
		if !c.table.valid(ent) {
			panic("thesaurus: base-referencing entry without table base")
		}
		base = &ent.Base
	}
	switch p.fmt {
	case diffenc.FormatAllZero:
		return line.Zero
	case diffenc.FormatBaseOnly:
		return *base
	}
	var out line.Line
	if err := diffenc.DecodeInto(&out, c.data.encAt(int(p.setPtr), int(p.slotIdx)), base); err != nil {
		panic(err)
	}
	return out
}

// DecompressionCycles reports the extra critical-path hit latency: one
// cycle to decompress plus four to locate the block via the indirect
// segix encoding (Table 4).
func (c *Cache) DecompressionCycles() float64 { return 5 }

// CriticalDRAMAccesses reports read-path base-cache misses, each of which
// stalls on a DRAM base-table fetch (§6.4).
func (c *Cache) CriticalDRAMAccesses() uint64 {
	c.drainWrites(false)
	return c.bcache.ReadPath.Total - c.bcache.ReadPath.Hits
}

// Stats implements llc.Cache.
func (c *Cache) Stats() llc.Stats {
	c.drainWrites(false)
	return c.stats
}

// ResetStats implements llc.Cache: clears access statistics while
// preserving cache contents (end-of-warmup semantics).
func (c *Cache) ResetStats() {
	// Pending writes arrived before the reset; their effects belong to
	// the pre-reset epoch exactly as in an unbuffered cache.
	c.drainWrites(false)
	c.stats = llc.Stats{}
	c.extra = ExtraStats{}
	c.tags.ResetStats()
	c.bcache.ReadPath = stats.Counter{}
	c.bcache.InsertPath = stats.Counter{}
	if c.cfg.DiffSeriesWindow > 0 {
		c.diffSeries = stats.NewSeries(c.cfg.DiffSeriesWindow)
	}
}

// Footprint implements llc.Cache: the Fig. 13a occupancy metric.
func (c *Cache) Footprint() llc.Footprint {
	c.drainWrites(false)
	return llc.Footprint{
		ResidentLines:  c.tags.CountValid(),
		DataBytesUsed:  c.data.UsedBytes(),
		DataBytesTotal: c.data.CapacityBytes(),
	}
}

// BaseCacheSnapshot captures the base-cache statistics that survive
// release (the Fig. 20 sweep metrics).
type BaseCacheSnapshot struct {
	// ReadPath/InsertPath are the per-path hit counters at release time.
	ReadPath   stats.Counter
	InsertPath stats.Counter
	// Entries and StorageBytes describe the configured geometry.
	Entries      int
	StorageBytes int
}

// HitRate returns the combined hit rate across both paths, exactly as
// BaseCache.HitRate computed it on the live cache.
func (b BaseCacheSnapshot) HitRate() float64 {
	total := b.ReadPath.Total + b.InsertPath.Total
	if total == 0 {
		return 0
	}
	return float64(b.ReadPath.Hits+b.InsertPath.Hits) / float64(total)
}

// Snapshot is the Thesaurus-specific release snapshot: everything
// Figures 15-20 and the calibration tool consult after the cache's
// storage is gone.
type Snapshot struct {
	// Cfg is the configuration the cache ran with.
	Cfg Config
	// Extra holds the Thesaurus counters (Figs. 15, 17, 18).
	Extra ExtraStats
	// Adaptive holds the cache-insensitivity detector counters.
	Adaptive AdaptiveStats
	// DiffSeries is the Fig. 19 time series (nil unless enabled).
	DiffSeries []float64
	// BaseCache carries the Fig. 20 base-cache metrics.
	BaseCache BaseCacheSnapshot
	// LiveClusters/ValidClusters are BaseTable.ActiveClusters at release
	// time.
	LiveClusters  int
	ValidClusters int
}

// Clone implements llc.ExtraSnapshot.
func (s *Snapshot) Clone() llc.ExtraSnapshot {
	cp := *s
	if s.DiffSeries != nil {
		// make+copy (not append onto nil) so an empty-but-non-nil series
		// stays non-nil: reports distinguish [] from null in JSON.
		cp.DiffSeries = make([]float64, len(s.DiffSeries))
		copy(cp.DiffSeries, s.DiffSeries)
	}
	return &cp
}

// Release implements llc.Cache: it extracts the immutable statistics
// snapshot and frees the cache's bulk storage — the tag array, the
// data-array slabs, and the base table, which returns to the per-size
// pool for the next cache of the same geometry. Nothing on the cache may
// be used afterwards; only the returned snapshot survives.
func (c *Cache) Release() llc.StatsSnapshot {
	if c.table == nil {
		panic("thesaurus: Release called twice")
	}
	c.drainWrites(false)
	live, valid := c.table.ActiveClusters()
	snap := &Snapshot{
		Cfg:      c.cfg,
		Extra:    c.extra,
		Adaptive: c.adaptiveStats,
		BaseCache: BaseCacheSnapshot{
			ReadPath:     c.bcache.ReadPath,
			InsertPath:   c.bcache.InsertPath,
			Entries:      c.bcache.Entries(),
			StorageBytes: c.bcache.StorageBytes(),
		},
		LiveClusters:  live,
		ValidClusters: valid,
	}
	if s := c.DiffSeries(); s != nil {
		snap.DiffSeries = make([]float64, len(s))
		copy(snap.DiffSeries, s)
	}
	c.table.Release()
	c.table = nil
	c.tags = nil
	c.data = nil
	c.bcache = nil
	c.diffSeries = nil
	return llc.StatsSnapshot{Design: c.Name(), Stats: c.stats, Extra: snap}
}

// CheckInvariants cross-validates tag/data/base-table bookkeeping; tests
// call it after randomized operation sequences.
func (c *Cache) CheckInvariants() error {
	c.drainWrites(false)
	if err := c.data.CheckInvariants(); err != nil {
		return err
	}
	// Every data entry's tag points back at it.
	var err error
	c.data.ForEachEntry(func(set, slotIdx int, _ *diffenc.Encoded, tagIdx int) {
		te := c.tags.EntryAt(tagIdx)
		if !te.Valid || int(te.Payload.setPtr) != set || int(te.Payload.slotIdx) != slotIdx {
			err = fmt.Errorf("data entry (%d,%d) tagptr %d stale", set, slotIdx, tagIdx)
		}
	})
	if err != nil {
		return err
	}
	// Base refcounts equal the number of referencing tags. Pre-size the
	// rebuild map to the resident-line count: an upper bound on the number
	// of distinct referencing fingerprints, avoiding rehash churn on every
	// invariant check.
	refs := make(map[lsh.Fingerprint]uint32, c.tags.CountValid())
	c.tags.ForEach(func(_ int, te *cache.Entry[tagPayload]) {
		if te.Payload.refsBase() {
			refs[te.Payload.fp]++
		}
	})
	for fp, want := range refs {
		ent := c.table.entry(fp)
		if !c.table.valid(ent) || ent.Cntr != want {
			return fmt.Errorf("base %#x: cntr=%d but %d referencing tags", fp, ent.Cntr, want)
		}
	}
	// And no base claims references it does not have. Entries outside the
	// current validity epoch are stale content from a previous table life
	// (the table may come from the per-size pool) and carry no claims.
	for i := 0; i < c.table.Len(); i++ {
		ent := &c.table.entries[i]
		if !c.table.valid(ent) {
			continue
		}
		if ent.Cntr != 0 && refs[lsh.Fingerprint(i)] != ent.Cntr {
			return fmt.Errorf("base %#x: cntr=%d but %d referencing tags", i, ent.Cntr, refs[lsh.Fingerprint(i)])
		}
	}
	return nil
}
