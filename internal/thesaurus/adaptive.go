package thesaurus

// Adaptive compression disable — the practical extension the paper
// sketches twice: "the LLC could dynamically detect cache-insensitive
// workloads by measuring average memory access times and disable LLC
// compression" (§6.1), and "a practical implementation would detect
// cache-insensitive workloads and simply disable compression for
// cachelines they access" (§6.3, on the power cost of compressing
// workloads that cannot benefit).
//
// The detector works in epochs of AdaptiveEpoch LLC accesses. A workload
// is deemed insensitive when the epoch hit rate sits outside the band
// where extra effective capacity can matter:
//
//   - hit rate ≥ hiThreshold: the working set already fits — extra
//     capacity is unused, so compression only burns energy;
//   - hit rate ≤ loThreshold: the workload streams far beyond even a
//     compressed cache — again no benefit.
//
// While disabled, insertions skip the LSH/base-cache machinery and store
// raw (zero lines are still detected: that costs one comparator, not a
// hash). Every probeEvery-th epoch compression is forcibly re-enabled so
// a phase change back to a cacheable working set is noticed — mirroring
// set-dueling-style sampling used by adaptive cache policies.

// Adaptive thresholds (fractions of epoch accesses).
const (
	adaptiveLoThreshold = 0.02
	adaptiveHiThreshold = 0.97
	adaptiveProbeEvery  = 8
)

// adaptiveState tracks the epoch detector.
type adaptiveState struct {
	epochAccesses uint64
	epochHits     uint64
	epoch         uint64
	disabled      bool
}

// AdaptiveStats reports the detector's behaviour.
type AdaptiveStats struct {
	// Epochs is the number of completed epochs.
	Epochs uint64
	// DisabledEpochs counts epochs that ran with compression off.
	DisabledEpochs uint64
	// DisabledPlacements counts placements stored raw due to the
	// detector (excluded from the Fig. 17 encoding-mix accounting of a
	// non-adaptive cache).
	DisabledPlacements uint64
}

// observeAccess feeds the detector one LLC access outcome and rolls the
// epoch when due.
func (c *Cache) observeAccess(hit bool) {
	if c.cfg.AdaptiveEpoch <= 0 {
		return
	}
	s := &c.adaptive
	s.epochAccesses++
	if hit {
		s.epochHits++
	}
	if s.epochAccesses < uint64(c.cfg.AdaptiveEpoch) {
		return
	}
	hitRate := float64(s.epochHits) / float64(s.epochAccesses)
	s.epoch++
	c.adaptiveStats.Epochs++
	if s.disabled {
		c.adaptiveStats.DisabledEpochs++
	}
	if s.epoch%adaptiveProbeEvery == 0 {
		// Probe epoch: run compressed regardless, to notice phase
		// changes.
		s.disabled = false
	} else {
		s.disabled = hitRate <= adaptiveLoThreshold || hitRate >= adaptiveHiThreshold
	}
	s.epochAccesses, s.epochHits = 0, 0
}

// compressionDisabled reports whether the current epoch runs raw.
func (c *Cache) compressionDisabled() bool {
	return c.cfg.AdaptiveEpoch > 0 && c.adaptive.disabled
}

// AdaptiveStats returns the detector counters.
func (c *Cache) AdaptiveStats() AdaptiveStats { return c.adaptiveStats }
