package thesaurus

import (
	"testing"

	"repro/internal/diffenc"
	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/xrand"
)

// intraContent builds lines that are BΔI-friendly (one base, small word
// deltas) but mutually dissimilar, so clustering fails and only the
// intra-line dimension can compress them.
func intraContent(n int) []line.Line {
	rng := xrand.New(0x2dcc)
	out := make([]line.Line, n)
	for i := range out {
		base := rng.Uint64() // fresh base per line: no inter-line similarity
		for w := 0; w < line.WordsPerLine; w++ {
			out[i].SetWord(w, base+rng.Uint64n(100))
		}
	}
	return out
}

func TestIntraFallbackCompresses(t *testing.T) {
	mem := memory.NewStore()
	cfg := smallConfig()
	cfg.IntraLineFallback = true
	c := MustNew(cfg, mem)
	lines := intraContent(200)
	for i, l := range lines {
		mem.Poke(line.Addr(i)*line.Size, l)
		got, _ := c.Read(line.Addr(i) * line.Size)
		if got != l {
			t.Fatalf("line %d corrupted", i)
		}
	}
	e := c.Extra()
	if e.ByFormat[diffenc.FormatIntra] < 100 {
		t.Fatalf("intra fallback barely used: %v", e.ByFormat)
	}
	fp := c.Footprint()
	if r := fp.CompressionRatio(); r < 2 {
		t.Fatalf("BΔI-friendly unclustered content compressed only %.2fx", r)
	}
	// Re-reads still hit and decode correctly.
	for i, l := range lines[:50] {
		got, hit := c.Read(line.Addr(i) * line.Size)
		if !hit || got != l {
			t.Fatalf("re-read of intra line %d failed", i)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIntraFallbackOffByDefault(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	lines := intraContent(100)
	for i, l := range lines {
		mem.Poke(line.Addr(i)*line.Size, l)
		c.Read(line.Addr(i) * line.Size)
	}
	if n := c.Extra().ByFormat[diffenc.FormatIntra]; n != 0 {
		t.Fatalf("intra used while disabled: %d", n)
	}
}

func TestIntraEntriesEvictAndWriteBack(t *testing.T) {
	mem := memory.NewStore()
	cfg := smallConfig()
	cfg.IntraLineFallback = true
	cfg.TagEntries = 64
	cfg.TagWays = 8
	cfg.DataSets = 3
	c := MustNew(cfg, mem)
	lines := intraContent(400)
	// Writes so evictions must write back through the intra decode path.
	for i, l := range lines {
		c.Write(line.Addr(i)*line.Size, l)
	}
	// Everything still readable (from cache or memory).
	for i, l := range lines {
		got, _ := c.Read(line.Addr(i) * line.Size)
		if got != l {
			t.Fatalf("line %d lost after eviction pressure", i)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIntraRoundTripViaDiffenc(t *testing.T) {
	var l line.Line
	for i := range l {
		l[i] = byte(i ^ 0x5A)
	}
	e := diffenc.NewIntra(l, 20)
	if e.Segments() != 3 || e.SizeBytes() != 20 {
		t.Fatalf("intra geometry: %d segs %d bytes", e.Segments(), e.SizeBytes())
	}
	got, err := diffenc.Decode(e, nil)
	if err != nil || got != l {
		t.Fatal("intra decode failed")
	}
	if e.Format.String() != "INTRA" || !e.Format.Compressed() {
		t.Fatal("intra format metadata")
	}
}
