package thesaurus

import (
	"sync"

	"repro/internal/line"
	"repro/internal/lsh"
	"repro/internal/memory"
	"repro/internal/plru"
	"repro/internal/stats"
)

// BaseEntry is one base-table record (§5.2.3, Fig. 9 bottom-right): the
// clusteroid line for an LSH fingerprint plus a counter of how many
// resident cache entries currently reference it. Validity is an epoch
// stamp rather than a bool: an entry is valid iff its stamp equals the
// owning table's current epoch, so a recycled table invalidates its
// whole slab with one counter increment instead of re-zeroing it (see
// BaseTable.Reset). Sites that stamp an entry valid must also write
// Base and Cntr — a stale entry's payload is garbage from a previous
// table life.
type BaseEntry struct {
	epoch uint32
	Base  line.Line
	Cntr  uint32
}

// BaseTable is the global, OS-allocated in-memory array of clusteroids,
// one entry per possible LSH fingerprint. Accesses that miss the base
// cache are charged as DRAM traffic on the backing store.
type BaseTable struct {
	entries []BaseEntry
	// epoch is the current validity stamp; entry.epoch == epoch means
	// valid. Zero is reserved for never-written entries (the zero value
	// of a fresh slab), so a live table's epoch is always ≥ 1.
	epoch uint32
	mem   *memory.Store
}

// tablePools recycles released tables by size, indexed by the bit width
// (table sizes are always powers of two, and lsh.MaxBits bounds the
// exponent). Ablation sweeps construct one table per configuration, and
// at 2^20+ entries the make-and-zero of a fresh slab is a measurable
// slice of campaign time; reusing a pooled slab makes NewBaseTable O(1)
// (one epoch bump, no zeroing). A fixed array of pools rather than a
// sync.Map keyed by entry count keeps Release/NewBaseTable free of the
// interface-key boxing a large int key would allocate on every cycle.
var tablePools [lsh.MaxBits + 1]sync.Pool

// poolIndex returns the tablePools slot for a table of n entries, or -1
// for sizes no pool serves (non-power-of-two or out of range; such
// tables are simply not recycled).
func poolIndex(n int) int {
	bits := 0
	for 1<<uint(bits) < n && bits <= lsh.MaxBits {
		bits++
	}
	if 1<<uint(bits) != n {
		return -1
	}
	return bits
}

// NewBaseTable returns a table with 2^bits entries over mem, reusing a
// pooled slab of the same size when one is available. A recycled table
// is observationally identical to a fresh one: Reset invalidates every
// entry before it is handed out.
func NewBaseTable(bits int, mem *memory.Store) *BaseTable {
	if bits >= 0 && bits <= lsh.MaxBits {
		if v := tablePools[bits].Get(); v != nil {
			t := v.(*BaseTable)
			t.mem = mem
			t.Reset()
			return t
		}
	}
	return &BaseTable{entries: make([]BaseEntry, 1<<uint(bits)), epoch: 1, mem: mem}
}

// Reset invalidates every entry in O(1) by advancing the validity epoch.
// Stamps only ever hold past epoch values, so no entry can compare equal
// to the new epoch — except after the uint32 wraps, when stamps from
// 2^32-1 resets ago could alias; that one reset in four billion pays a
// full slab zeroing and restarts at epoch 1.
func (t *BaseTable) Reset() {
	t.epoch++
	if t.epoch == 0 {
		clear(t.entries)
		t.epoch = 1
	}
}

// Release detaches the table from its backing store and parks it in the
// per-size pool for the next NewBaseTable of the same geometry. The
// caller must not touch the table afterwards.
func (t *BaseTable) Release() {
	t.mem = nil
	if i := poolIndex(len(t.entries)); i >= 0 {
		tablePools[i].Put(t)
	}
}

// valid reports whether e carries t's current validity epoch.
func (t *BaseTable) valid(e *BaseEntry) bool { return e.epoch == t.epoch }

// markValid stamps e valid for t's current epoch. The caller must also
// set Base and Cntr: a previously stale entry holds garbage.
func (t *BaseTable) markValid(e *BaseEntry) { e.epoch = t.epoch }

// Len returns the number of table entries.
func (t *BaseTable) Len() int { return len(t.entries) }

// entry returns the record for fp without accounting.
func (t *BaseTable) entry(fp lsh.Fingerprint) *BaseEntry {
	return &t.entries[int(fp)%len(t.entries)]
}

// chargeDRAM records one base-table DRAM access (a base-cache miss or a
// dirty base-cache victim writeback).
func (t *BaseTable) chargeDRAM() {
	// The table lives in ordinary memory; we reuse the store's counter
	// channel so the power model sees this traffic (addr is symbolic).
	t.mem.Read(0, memory.BaseTable)
}

// ActiveClusters returns the number of table entries with live references
// and the number of valid entries overall.
func (t *BaseTable) ActiveClusters() (live, valid int) {
	for i := range t.entries {
		e := &t.entries[i]
		if t.valid(e) {
			valid++
			if e.Cntr > 0 {
				live++
			}
		}
	}
	return live, valid
}

// ClusterSizes buckets the valid entries' reference counts into the
// paper's Figure 16 bins: <10, <50, <500, and 500+. Fractions are of the
// whole table.
func (t *BaseTable) ClusterSizes() (frac [4]float64) {
	var counts [4]int
	for i := range t.entries {
		e := &t.entries[i]
		if !t.valid(e) || e.Cntr == 0 {
			continue
		}
		switch {
		case e.Cntr < 10:
			counts[0]++
		case e.Cntr < 50:
			counts[1]++
		case e.Cntr < 500:
			counts[2]++
		default:
			counts[3]++
		}
	}
	for i, c := range counts {
		frac[i] = float64(c) / float64(len(t.entries))
	}
	return frac
}

// baseCacheEntry is one way of the base cache: a cached clusteroid tagged
// by its fingerprint. The table remains authoritative (the cache is
// write-through), so entries carry no dirty state.
type baseCacheEntry struct {
	valid bool
	fp    lsh.Fingerprint
}

// BaseCache is the TLB-like LLC-side cache of recently used base-table
// entries: 64 sets × 8 ways, pseudo-LRU (§5.2.3). Only presence is
// modelled (the table is read directly on hit); the cache exists to decide
// which accesses pay DRAM latency/energy and which insertions must fall
// back to raw storage (§5.4.1, §6.4).
type BaseCache struct {
	sets    int
	ways    int
	entries []baseCacheEntry
	policy  []plru.Policy

	// ReadPath counts critical-path lookups (servicing reads of
	// base-only/base+diff lines); InsertPath counts off-critical-path
	// lookups during insertion (§6.4 distinguishes the two).
	ReadPath   stats.Counter
	InsertPath stats.Counter
	// LowPriorityInsert installs insertion-path fills at victim priority
	// (scan resistance; see Access). Enabled by default via the cache
	// configuration.
	LowPriorityInsert bool
}

// NewBaseCache builds a base cache with the given geometry.
func NewBaseCache(sets, ways int) *BaseCache {
	bc := &BaseCache{
		sets:    sets,
		ways:    ways,
		entries: make([]baseCacheEntry, sets*ways),
		policy:  make([]plru.Policy, sets),
	}
	for i := range bc.policy {
		bc.policy[i] = plru.NewTree(ways)
	}
	return bc
}

// Entries returns the total entry count (the Fig. 20 sweep variable).
func (bc *BaseCache) Entries() int { return bc.sets * bc.ways }

// StorageBytes returns the silicon cost of the base cache: each entry
// holds a 64-byte base plus tag and replacement metadata (Table 2 rounds
// this to 24+512 bits per entry).
func (bc *BaseCache) StorageBytes() int {
	const entryBits = 24 + 512
	return bc.Entries() * entryBits / 8
}

func (bc *BaseCache) setOf(fp lsh.Fingerprint) int {
	// Sign-quantized fingerprints of structured data have heavily
	// correlated bits (whole workloads can agree on several row signs),
	// so direct low-bit indexing piles the live fingerprints into a few
	// sets. A multiplicative hash — one XOR/multiply in hardware —
	// spreads them.
	h := uint32(fp) * 2654435761
	return int(h>>16) % bc.sets
}

// lookup probes for fp, updating recency on hit.
func (bc *BaseCache) lookup(fp lsh.Fingerprint) bool {
	set := bc.setOf(fp)
	base := set * bc.ways
	for w := 0; w < bc.ways; w++ {
		e := &bc.entries[base+w]
		if e.valid && e.fp == fp {
			bc.policy[set].Touch(w)
			return true
		}
	}
	return false
}

// fill installs fp, evicting the pseudo-LRU victim of its set. When
// promote is false the new entry is left at victim priority — it becomes
// the next line to evict unless a subsequent access touches it.
func (bc *BaseCache) fill(fp lsh.Fingerprint, promote bool) {
	set := bc.setOf(fp)
	base := set * bc.ways
	victim := -1
	for w := 0; w < bc.ways; w++ {
		if !bc.entries[base+w].valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = bc.policy[set].Victim()
	}
	bc.entries[base+victim] = baseCacheEntry{valid: true, fp: fp}
	if promote {
		bc.policy[set].Touch(victim)
	}
}

// Access models one base-cache access on the given path. On a miss the
// entry is fetched from the base table (one DRAM access) and installed.
// It reports whether the access hit.
//
// Read-path fills are promoted to MRU as in a conventional pseudo-LRU
// cache. Insertion-path fills are installed at *victim priority* — a
// standard TLB/scan-resistance refinement on top of the paper's plain
// pseudo-LRU management: high-entropy lines (hashed keys, compressed
// buffers) each touch a fresh fingerprint exactly once, and promoting
// those one-shot fills would thrash the clusteroids that the read path
// and the compressible insertions keep reusing. A fingerprint that is
// reused is promoted on its next (hitting) access. The effect of this
// choice is measured by the AblateBaseCachePriority experiment.
func (bc *BaseCache) Access(fp lsh.Fingerprint, t *BaseTable, readPath bool) bool {
	hit := bc.lookup(fp)
	if readPath {
		bc.ReadPath.Observe(hit)
	} else {
		bc.InsertPath.Observe(hit)
	}
	if !hit {
		t.chargeDRAM()
		bc.fill(fp, readPath || !bc.LowPriorityInsert)
	}
	return hit
}

// HitRate returns the combined hit rate across both paths (Fig. 20).
func (bc *BaseCache) HitRate() float64 {
	total := bc.ReadPath.Total + bc.InsertPath.Total
	if total == 0 {
		return 0
	}
	return float64(bc.ReadPath.Hits+bc.InsertPath.Hits) / float64(total)
}
