package thesaurus

import (
	"sort"
	"testing"

	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/xrand"
)

// smallConfig returns a tiny but structurally complete cache for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.TagEntries = 256
	cfg.TagWays = 8
	cfg.DataSets = 12
	return cfg
}

func TestReadWriteRoundTrip(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)

	rng := xrand.New(1)
	want := make(map[line.Addr]line.Line)
	// Populate memory with clustered content.
	var proto line.Line
	for i := range proto {
		proto[i] = byte(rng.Uint32())
	}
	for i := 0; i < 64; i++ {
		addr := line.Addr(i * line.Size)
		l := proto
		l[rng.Intn(64)] = byte(rng.Uint32())
		mem.Poke(addr, l)
		want[addr] = l
	}
	// Iterate addresses in sorted order: reads and writes mutate cache
	// state (fills, evictions) and consume rng draws, so map order would
	// make each run exercise a different interleaving.
	addrs := make([]line.Addr, 0, len(want))
	for addr := range want {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		got, _ := c.Read(addr)
		if got != want[addr] {
			t.Fatalf("Read(%#x) mismatch\n got %v\nwant %v", uint64(addr), got, want[addr])
		}
	}
	// Re-read: must hit and still match.
	for _, addr := range addrs {
		got, hit := c.Read(addr)
		if !hit {
			t.Errorf("Read(%#x): expected hit", uint64(addr))
		}
		if got != want[addr] {
			t.Fatalf("re-Read(%#x) mismatch", uint64(addr))
		}
	}
	// Writes change content; reads observe them.
	for _, addr := range addrs {
		var l line.Line
		for i := range l {
			l[i] = byte(rng.Uint32())
		}
		c.Write(addr, l)
		want[addr] = l
	}
	for _, addr := range addrs {
		got, _ := c.Read(addr)
		if got != want[addr] {
			t.Fatalf("post-write Read(%#x) mismatch", uint64(addr))
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestRandomizedInvariants(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	rng := xrand.New(7)
	ref := make(map[line.Addr]line.Line)

	var protos [4]line.Line
	for p := range protos {
		for i := range protos[p] {
			protos[p][i] = byte(rng.Uint32())
		}
	}
	const span = 4096 // lines; far exceeds the tiny cache, forcing evictions
	for step := 0; step < 20000; step++ {
		addr := line.Addr(rng.Intn(span) * line.Size)
		if rng.Bool(0.3) {
			l := protos[rng.Intn(len(protos))]
			// Mutate a few bytes to create near-duplicates.
			for k := 0; k < rng.Intn(5); k++ {
				l[rng.Intn(64)] = byte(rng.Uint32())
			}
			if rng.Bool(0.1) {
				l = line.Zero
			}
			c.Write(addr, l)
			ref[addr] = l
			mem.Poke(addr, l) // keep a consistent view for later fills
		} else {
			got, _ := c.Read(addr)
			want, ok := ref[addr]
			if !ok {
				want = mem.Peek(addr)
			}
			if got != want {
				t.Fatalf("step %d: Read(%#x) mismatch", step, uint64(addr))
			}
		}
		if step%1000 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	fp := c.Footprint()
	if fp.ResidentLines == 0 || fp.DataBytesUsed > fp.DataBytesTotal {
		t.Fatalf("bad footprint: %+v", fp)
	}
	if c.Extra().Insertions == 0 {
		t.Fatal("no insertions recorded")
	}
}
