package thesaurus

import (
	"testing"

	"repro/internal/line"
	"repro/internal/lsh"
	"repro/internal/memory"
)

func TestBaseTableClusterSizes(t *testing.T) {
	mem := memory.NewStore()
	tab := NewBaseTable(8, mem) // 256 entries
	if tab.Len() != 256 {
		t.Fatalf("Len = %d", tab.Len())
	}
	stamp := func(fp lsh.Fingerprint, cntr uint32) {
		e := tab.entry(fp)
		tab.markValid(e)
		e.Cntr = cntr
	}
	stamp(1, 5)   // <10
	stamp(2, 30)  // <50
	stamp(3, 400) // <500
	stamp(5, 600) // 500+
	stamp(4, 0)   // cntr 0: retired, not counted
	f := tab.ClusterSizes()
	want := [4]float64{1.0 / 256, 1.0 / 256, 1.0 / 256, 1.0 / 256}
	if f != want {
		t.Fatalf("fractions %v, want %v", f, want)
	}
	live, valid := tab.ActiveClusters()
	if live != 4 || valid != 5 {
		t.Fatalf("live=%d valid=%d", live, valid)
	}
}

func TestBaseCacheHitAfterFill(t *testing.T) {
	mem := memory.NewStore()
	tab := NewBaseTable(12, mem)
	bc := NewBaseCache(64, 8)
	fp := lsh.Fingerprint(0x123)
	if bc.Access(fp, tab, false) {
		t.Fatal("cold access hit")
	}
	if !bc.Access(fp, tab, true) {
		t.Fatal("second access missed")
	}
	if bc.InsertPath.Total != 1 || bc.ReadPath.Total != 1 {
		t.Fatalf("path accounting: insert=%d read=%d", bc.InsertPath.Total, bc.ReadPath.Total)
	}
	// Each miss costs one base-table DRAM access.
	if got := mem.Stats().Counts[memory.BaseTable]; got != 1 {
		t.Fatalf("base table DRAM accesses = %d", got)
	}
}

func TestBaseCacheEviction(t *testing.T) {
	mem := memory.NewStore()
	tab := NewBaseTable(12, mem)
	bc := NewBaseCache(1, 2) // 2 entries total
	bc.Access(1, tab, false)
	bc.Access(2, tab, false)
	bc.Access(3, tab, false) // evicts one of 1,2
	hits := 0
	for _, fp := range []lsh.Fingerprint{1, 2, 3} {
		if bc.lookup(fp) {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("expected 2 resident after eviction, got %d", hits)
	}
}

func TestBaseCacheGeometryAndCost(t *testing.T) {
	bc := NewBaseCache(64, 8)
	if bc.Entries() != 512 {
		t.Fatalf("Entries = %d", bc.Entries())
	}
	// Table 2: 512 entries × (24+512)b = 33.5KB ≈ 33KB.
	if kb := bc.StorageBytes() / 1024; kb != 33 {
		t.Fatalf("storage = %dKB, want 33", kb)
	}
}

func TestBaseCacheIndexSpreadsCorrelatedFingerprints(t *testing.T) {
	// Fingerprints sharing their low bits must not all land in one set.
	bc := NewBaseCache(64, 8)
	sets := map[int]bool{}
	for i := 0; i < 32; i++ {
		fp := lsh.Fingerprint(i << 6) // low 6 bits identical
		sets[bc.setOf(fp)] = true
	}
	if len(sets) < 16 {
		t.Fatalf("correlated fingerprints hit only %d sets", len(sets))
	}
}

func TestHitRateCombinesPaths(t *testing.T) {
	mem := memory.NewStore()
	tab := NewBaseTable(12, mem)
	bc := NewBaseCache(64, 8)
	bc.Access(7, tab, false) // miss
	bc.Access(7, tab, true)  // hit
	bc.Access(7, tab, true)  // hit
	if hr := bc.HitRate(); hr != 2.0/3 {
		t.Fatalf("hit rate %v", hr)
	}
}

func TestClusterSizesEmptyTable(t *testing.T) {
	tab := NewBaseTable(8, memory.NewStore())
	f := tab.ClusterSizes()
	if f != [4]float64{} {
		t.Fatalf("empty table fractions %v", f)
	}
}

// TestBaseRetirement drives the full cache: when a cluster's last member
// leaves, the next insertion for that fingerprint becomes the new base
// (§5.2.3).
func TestBaseRetirement(t *testing.T) {
	mem := memory.NewStore()
	cfg := smallConfig()
	c := MustNew(cfg, mem)

	var l line.Line
	for i := range l {
		l[i] = byte(i*3 + 1)
	}
	fp := c.hasher.Fingerprint(&l)

	// The very first insertion for a fingerprint misses the cold base
	// cache: the line is stored raw and the table entry is only seeded
	// (§5.4.1) — no reference taken.
	mem.Poke(0, l)
	c.Read(0)
	ent := c.table.entry(fp)
	if !c.table.valid(ent) || ent.Cntr != 0 {
		t.Fatalf("table not seeded: valid=%v cntr=%d", c.table.valid(ent), ent.Cntr)
	}

	// The next insertion for the fingerprint hits the base cache, finds
	// cntr==0, and becomes the (new) clusteroid.
	l2 := l
	l2[0] ^= 1 // tiny change: same fingerprint with high probability
	if c.hasher.Fingerprint(&l2) != fp {
		t.Skip("perturbation changed the fingerprint under this seed")
	}
	mem.Poke(64, l2)
	c.Read(64)
	if ent.Cntr != 1 || ent.Base != l2 {
		t.Fatalf("clusteroid not installed: cntr=%d", ent.Cntr)
	}

	// Overwriting the member with different-cluster content releases the
	// reference; the base stays but is marked for replacement (cntr 0).
	var other line.Line
	for i := range other {
		other[i] = byte(255 - i)
	}
	c.Write(64, other)
	c.drainWrites(false) // the test inspects table state directly
	if ent.Cntr != 0 {
		t.Fatalf("refcount after leaving cluster: %d", ent.Cntr)
	}

	// The next same-fingerprint insertion replaces the retired base.
	l3 := l
	l3[1] ^= 1
	if c.hasher.Fingerprint(&l3) == fp {
		mem.Poke(128, l3)
		c.Read(128)
		if ent.Base != l3 || ent.Cntr != 1 {
			t.Fatalf("retired base not replaced (cntr=%d)", ent.Cntr)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
