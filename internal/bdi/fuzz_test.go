package bdi

import (
	"testing"

	"repro/internal/line"
)

// FuzzCompressDecompress: arbitrary lines must round-trip and never
// expand beyond a raw line.
func FuzzCompressDecompress(f *testing.F) {
	f.Add(make([]byte, line.Size))
	seed := make([]byte, line.Size)
	for i := range seed {
		seed[i] = byte(i)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < line.Size {
			return
		}
		l := line.FromBytes(data[:line.Size])
		e := Compress(&l)
		if e.SizeBytes() > line.Size || e.SizeBytes() <= 0 {
			t.Fatalf("size %d", e.SizeBytes())
		}
		got, err := Decompress(e)
		if err != nil {
			t.Fatal(err)
		}
		if got != l {
			t.Fatalf("round trip mismatch (kind %v)", e.Kind)
		}
	})
}

// FuzzDecompressArbitrary: malformed encodings must error, not panic.
func FuzzDecompressArbitrary(f *testing.F) {
	f.Add(uint8(3), uint64(42), uint32(7), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, kind uint8, base uint64, zeroMask uint32, deltaBytes []byte) {
		deltas := make([]int64, len(deltaBytes))
		for i, b := range deltaBytes {
			deltas[i] = int64(int8(b))
		}
		e := Encoded{Kind: Kind(kind), Base: base, ZeroBase: zeroMask, Deltas: deltas}
		_, _ = Decompress(e) // must not panic
	})
}
