// Package bdi implements Base-Delta-Immediate compression (Pekhimenko et
// al., PACT 2012), the state-of-the-art intra-cacheline baseline the paper
// compares against (§2.2). A line is encoded as one base value plus
// per-word deltas; each word may alternatively be encoded as a delta from
// an implicit zero base (the "immediate" part), selected by a per-word
// bit. Eight encodings are tried and the smallest valid one wins.
package bdi

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/line"
)

// Decompress failures are package-level sentinels rather than formatted
// errors: Decompress sits on the hot read path, and even a fatal error
// return must not heap-allocate.
var (
	// ErrUnknownKind marks an Encoded with a Kind outside the enum.
	ErrUnknownKind = errors.New("bdi: unknown kind")
	// ErrDeltaCount marks an Encoded whose delta slice length disagrees
	// with its kind's word geometry.
	ErrDeltaCount = errors.New("bdi: delta count does not match kind geometry")
)

// Kind identifies one BΔI encoding.
type Kind uint8

// The BΔI encodings in the order they are tried (smallest first among
// equal-coverage options, as in the original proposal).
const (
	KindUncompressed Kind = iota
	KindZeros
	KindRep // all 8-byte words identical
	KindB8D1
	KindB8D2
	KindB8D4
	KindB4D1
	KindB4D2
	KindB2D1
)

// String returns the conventional name of the encoding.
func (k Kind) String() string {
	switch k {
	case KindUncompressed:
		return "uncompressed"
	case KindZeros:
		return "zeros"
	case KindRep:
		return "rep"
	case KindB8D1:
		return "B8Δ1"
	case KindB8D2:
		return "B8Δ2"
	case KindB8D4:
		return "B8Δ4"
	case KindB4D1:
		return "B4Δ1"
	case KindB4D2:
		return "B4Δ2"
	case KindB2D1:
		return "B2Δ1"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// geometry of each encoding: word size, delta size, total compressed bytes.
type geometry struct {
	wordBytes  int
	deltaBytes int
	sizeBytes  int
}

// geometries is indexed by Kind (array, not map: the placement hot paths
// consult it per encoding trial). KindUncompressed has the zero geometry.
var geometries = [...]geometry{
	KindZeros: {8, 0, 1},
	KindRep:   {8, 0, 8},
	KindB8D1:  {8, 1, 16},
	KindB8D2:  {8, 2, 24},
	KindB8D4:  {8, 4, 40},
	KindB4D1:  {4, 1, 20},
	KindB4D2:  {4, 2, 36},
	KindB2D1:  {2, 1, 34},
}

// geomOf returns the geometry for k, reporting false for kinds without one
// (uncompressed or out of range).
func geomOf(k Kind) (geometry, bool) {
	if int(k) >= len(geometries) || geometries[k].wordBytes == 0 {
		return geometry{}, false
	}
	return geometries[k], true
}

// Encoded is a compressed line. Deltas[i] is the signed delta of word i
// from its base; ZeroBase bit i set means word i uses the implicit zero
// base instead of Base.
type Encoded struct {
	Kind     Kind
	Base     uint64
	Deltas   []int64
	ZeroBase uint32
	Raw      line.Line // only for KindUncompressed
}

// SizeBytes returns the compressed size in bytes (64 when uncompressed).
func (e Encoded) SizeBytes() int {
	if e.Kind == KindUncompressed {
		return line.Size
	}
	g, _ := geomOf(e.Kind)
	return g.sizeBytes
}

// Compressed reports whether the encoding is smaller than a raw line.
func (e Encoded) Compressed() bool { return e.Kind != KindUncompressed }

// fitsSigned reports whether v fits in a two's-complement value of n bytes.
func fitsSigned(v int64, n int) bool {
	shift := uint(64 - 8*n)
	return v<<shift>>shift == v
}

// deltaKinds lists the base+delta geometries in trial order.
var deltaKinds = [...]Kind{KindB8D1, KindB8D2, KindB8D4, KindB4D1, KindB4D2, KindB2D1}

// Compress encodes l with the smallest valid BΔI encoding.
//
// Compress allocates the delta slice of the winning encoding; hot paths
// with a reusable Encoded should call CompressInto, and callers that only
// need the compressed size should call CompressedSize (allocation-free).
func Compress(l *line.Line) Encoded {
	var e Encoded
	CompressInto(&e, l)
	return e
}

// CompressInto is Compress with a caller-owned destination, reusing dst's
// delta buffer capacity. Any previous contents of *dst are discarded.
//
//thesaurus:hotpath
func CompressInto(dst *Encoded, l *line.Line) {
	deltas := dst.Deltas[:0]
	*dst = Encoded{Deltas: deltas}
	if l.IsZero() {
		dst.Kind = KindZeros
		return
	}
	w := l.Words()
	rep := true
	for _, v := range w[1:] {
		if v != w[0] {
			rep = false
			break
		}
	}
	if rep {
		dst.Kind = KindRep
		dst.Base = w[0]
		return
	}
	// Pick the winner by size first (feasibility checks allocate nothing),
	// then materialize only the winning encoding's deltas.
	bestKind := KindUncompressed
	bestSize := line.Size
	for _, k := range deltaKinds {
		if s := geometries[k].sizeBytes; s < bestSize && tryFits(l, k) {
			bestKind, bestSize = k, s
		}
	}
	if bestKind == KindUncompressed {
		dst.Kind = KindUncompressed
		dst.Raw = *l
		return
	}
	fillEncode(dst, l, bestKind)
}

// fillEncode materializes the (known-feasible) encoding k of l into *dst,
// reusing dst.Deltas capacity.
func fillEncode(dst *Encoded, l *line.Line, k Kind) {
	g := geometries[k]
	n := line.Size / g.wordBytes
	dst.Kind = k
	haveBase := false
	signBits := uint(g.wordBytes * 8)
	for i := 0; i < n; i++ {
		w := wordAt(l, g.wordBytes, i)
		sw := int64(w << (64 - signBits) >> (64 - signBits))
		if fitsSigned(sw, g.deltaBytes) {
			dst.ZeroBase |= 1 << uint(i)
			dst.Deltas = append(dst.Deltas, sw)
			continue
		}
		if !haveBase {
			dst.Base = w
			haveBase = true
		}
		d := int64(w) - int64(dst.Base)
		d = d << (64 - signBits) >> (64 - signBits)
		dst.Deltas = append(dst.Deltas, d)
	}
}

// wordAt extracts word i of width wordBytes from l (little-endian).
func wordAt(l *line.Line, wordBytes, i int) uint64 {
	switch wordBytes {
	case 8:
		return binary.LittleEndian.Uint64(l[i*8:])
	case 4:
		return uint64(binary.LittleEndian.Uint32(l[i*4:]))
	case 2:
		return uint64(binary.LittleEndian.Uint16(l[i*2:]))
	default:
		panic("bdi: unsupported word size")
	}
}

// narrowHighMasks[k], for the sub-word geometries (4- and 2-byte words),
// replicates each lane's high-bit span [8·deltaBytes-1, 8·wordBytes-1]
// across a 64-bit chunk. The immediate (zero-base) test takes the lane
// as an unsigned value — fitsSigned over a logically-shifted uint64 —
// so a lane is an immediate iff that whole span is zero, and a chunk
// whose masked value is 0 has every lane immediate-fitting.
var narrowHighMasks = func() (m [len(geometries)]uint64) {
	for k := range geometries {
		g := geometries[k]
		if g.wordBytes == 0 || g.wordBytes >= 8 {
			continue
		}
		signBits := uint(g.wordBytes * 8)
		lane := (uint64(1)<<signBits - 1) &^ (uint64(1)<<uint(8*g.deltaBytes-1) - 1)
		for s := uint(0); s < 64; s += signBits {
			m[k] |= lane << s
		}
	}
	return m
}()

// tryFits reports whether geometry k can encode l, without materializing
// the deltas: feasibility and size are all the placement paths need.
func tryFits(l *line.Line, k Kind) bool {
	g := geometries[k]
	if g.wordBytes < 8 {
		return tryFitsNarrow(l, k)
	}
	n := line.Size / g.wordBytes
	haveBase := false
	var base uint64
	signBits := uint(g.wordBytes * 8)
	for i := 0; i < n; i++ {
		w := wordAt(l, g.wordBytes, i)
		sw := int64(w << (64 - signBits) >> (64 - signBits))
		if fitsSigned(sw, g.deltaBytes) {
			continue
		}
		if !haveBase {
			base = w
			haveBase = true
		}
		d := int64(w) - int64(base)
		d = d << (64 - signBits) >> (64 - signBits)
		if !fitsSigned(d, g.deltaBytes) {
			return false
		}
	}
	return true
}

// tryFitsNarrow is tryFits for the 4- and 2-byte-word geometries, widened
// to process one 8-byte chunk per step: one masked compare detects the
// common all-lanes-immediate chunks (every lane a small unsigned value)
// and skips them whole; only other chunks fall back to per-lane work, in
// the same lane order as the scalar loop so the implicit base choice is
// identical.
func tryFitsNarrow(l *line.Line, k Kind) bool {
	g := geometries[k]
	highMask := narrowHighMasks[k]
	signBits := uint(g.wordBytes * 8)
	lanesPerChunk := 8 / g.wordBytes
	laneMask := uint64(1)<<signBits - 1
	haveBase := false
	var base uint64
	for c := 0; c < line.WordsPerLine; c++ {
		x := l.Word(c)
		if x&highMask == 0 {
			continue
		}
		for j := 0; j < lanesPerChunk; j++ {
			w := (x >> (uint(j) * signBits)) & laneMask
			sw := int64(w << (64 - signBits) >> (64 - signBits))
			if fitsSigned(sw, g.deltaBytes) {
				continue
			}
			if !haveBase {
				base = w
				haveBase = true
			}
			d := int64(w) - int64(base)
			d = d << (64 - signBits) >> (64 - signBits)
			if !fitsSigned(d, g.deltaBytes) {
				return false
			}
		}
	}
	return true
}

// Decompress reconstructs the original line from e.
//
//thesaurus:hotpath
func Decompress(e Encoded) (line.Line, error) {
	switch e.Kind {
	case KindUncompressed:
		return e.Raw, nil
	case KindZeros:
		return line.Zero, nil
	case KindRep:
		var w [line.WordsPerLine]uint64
		for i := range w {
			w[i] = e.Base
		}
		return line.FromWords(w), nil
	}
	g, ok := geomOf(e.Kind)
	if !ok {
		return line.Zero, ErrUnknownKind
	}
	n := line.Size / g.wordBytes
	if len(e.Deltas) != n {
		return line.Zero, ErrDeltaCount
	}
	var out line.Line
	for i := 0; i < n; i++ {
		base := e.Base
		if e.ZeroBase&(1<<uint(i)) != 0 {
			base = 0
		}
		v := base + uint64(e.Deltas[i])
		switch g.wordBytes {
		case 8:
			binary.LittleEndian.PutUint64(out[i*8:], v)
		case 4:
			binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
		case 2:
			binary.LittleEndian.PutUint16(out[i*2:], uint16(v))
		}
	}
	return out, nil
}

// CompressedSize returns the smallest BΔI size of l in bytes and whether
// that is smaller than a raw line. It runs the feasibility scans only —
// no delta slice is ever built — so the cache models can consult it on
// their hot paths allocation-free.
//
//thesaurus:hotpath
func CompressedSize(l *line.Line) (int, bool) {
	if l.IsZero() {
		return geometries[KindZeros].sizeBytes, true
	}
	w := l.Words()
	rep := true
	for _, v := range w[1:] {
		if v != w[0] {
			rep = false
			break
		}
	}
	if rep {
		return geometries[KindRep].sizeBytes, true
	}
	bestSize := line.Size
	for _, k := range deltaKinds {
		if s := geometries[k].sizeBytes; s < bestSize && tryFits(l, k) {
			bestSize = s
		}
	}
	return bestSize, bestSize < line.Size
}
