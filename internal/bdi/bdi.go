// Package bdi implements Base-Delta-Immediate compression (Pekhimenko et
// al., PACT 2012), the state-of-the-art intra-cacheline baseline the paper
// compares against (§2.2). A line is encoded as one base value plus
// per-word deltas; each word may alternatively be encoded as a delta from
// an implicit zero base (the "immediate" part), selected by a per-word
// bit. Eight encodings are tried and the smallest valid one wins.
package bdi

import (
	"encoding/binary"
	"fmt"

	"repro/internal/line"
)

// Kind identifies one BΔI encoding.
type Kind uint8

// The BΔI encodings in the order they are tried (smallest first among
// equal-coverage options, as in the original proposal).
const (
	KindUncompressed Kind = iota
	KindZeros
	KindRep // all 8-byte words identical
	KindB8D1
	KindB8D2
	KindB8D4
	KindB4D1
	KindB4D2
	KindB2D1
)

// String returns the conventional name of the encoding.
func (k Kind) String() string {
	switch k {
	case KindUncompressed:
		return "uncompressed"
	case KindZeros:
		return "zeros"
	case KindRep:
		return "rep"
	case KindB8D1:
		return "B8Δ1"
	case KindB8D2:
		return "B8Δ2"
	case KindB8D4:
		return "B8Δ4"
	case KindB4D1:
		return "B4Δ1"
	case KindB4D2:
		return "B4Δ2"
	case KindB2D1:
		return "B2Δ1"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// geometry of each encoding: word size, delta size, total compressed bytes.
type geometry struct {
	wordBytes  int
	deltaBytes int
	sizeBytes  int
}

var geometries = map[Kind]geometry{
	KindZeros: {8, 0, 1},
	KindRep:   {8, 0, 8},
	KindB8D1:  {8, 1, 16},
	KindB8D2:  {8, 2, 24},
	KindB8D4:  {8, 4, 40},
	KindB4D1:  {4, 1, 20},
	KindB4D2:  {4, 2, 36},
	KindB2D1:  {2, 1, 34},
}

// Encoded is a compressed line. Deltas[i] is the signed delta of word i
// from its base; ZeroBase bit i set means word i uses the implicit zero
// base instead of Base.
type Encoded struct {
	Kind     Kind
	Base     uint64
	Deltas   []int64
	ZeroBase uint32
	Raw      line.Line // only for KindUncompressed
}

// SizeBytes returns the compressed size in bytes (64 when uncompressed).
func (e Encoded) SizeBytes() int {
	if e.Kind == KindUncompressed {
		return line.Size
	}
	return geometries[e.Kind].sizeBytes
}

// Compressed reports whether the encoding is smaller than a raw line.
func (e Encoded) Compressed() bool { return e.Kind != KindUncompressed }

// fitsSigned reports whether v fits in a two's-complement value of n bytes.
func fitsSigned(v int64, n int) bool {
	shift := uint(64 - 8*n)
	return v<<shift>>shift == v
}

// wordsOf splits l into words of the given byte width (little-endian).
func wordsOf(l *line.Line, wordBytes int) []uint64 {
	n := line.Size / wordBytes
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		switch wordBytes {
		case 8:
			out[i] = binary.LittleEndian.Uint64(l[i*8:])
		case 4:
			out[i] = uint64(binary.LittleEndian.Uint32(l[i*4:]))
		case 2:
			out[i] = uint64(binary.LittleEndian.Uint16(l[i*2:]))
		default:
			panic("bdi: unsupported word size")
		}
	}
	return out
}

// tryEncode attempts one base+delta geometry. Words representable as a
// small delta from zero use the implicit zero base; the first word that is
// not becomes the explicit base.
func tryEncode(l *line.Line, k Kind) (Encoded, bool) {
	g := geometries[k]
	words := wordsOf(l, g.wordBytes)
	e := Encoded{Kind: k, Deltas: make([]int64, len(words))}
	haveBase := false
	signBits := uint(g.wordBytes * 8)
	for i, w := range words {
		// Sign-extend the word itself for the zero-base test.
		sw := int64(w << (64 - signBits) >> (64 - signBits))
		if fitsSigned(sw, g.deltaBytes) {
			e.ZeroBase |= 1 << uint(i)
			e.Deltas[i] = sw
			continue
		}
		if !haveBase {
			e.Base = w
			haveBase = true
		}
		d := int64(w) - int64(e.Base)
		// Deltas are computed modulo the word width.
		d = d << (64 - signBits) >> (64 - signBits)
		if !fitsSigned(d, g.deltaBytes) {
			return Encoded{}, false
		}
		e.Deltas[i] = d
	}
	return e, true
}

// Compress encodes l with the smallest valid BΔI encoding.
func Compress(l *line.Line) Encoded {
	if l.IsZero() {
		return Encoded{Kind: KindZeros}
	}
	w := l.Words()
	rep := true
	for _, v := range w[1:] {
		if v != w[0] {
			rep = false
			break
		}
	}
	if rep {
		return Encoded{Kind: KindRep, Base: w[0]}
	}
	best := Encoded{Kind: KindUncompressed, Raw: *l}
	bestSize := line.Size
	for _, k := range []Kind{KindB8D1, KindB8D2, KindB8D4, KindB4D1, KindB4D2, KindB2D1} {
		if e, ok := tryEncode(l, k); ok && e.SizeBytes() < bestSize {
			best, bestSize = e, e.SizeBytes()
		}
	}
	return best
}

// Decompress reconstructs the original line from e.
func Decompress(e Encoded) (line.Line, error) {
	switch e.Kind {
	case KindUncompressed:
		return e.Raw, nil
	case KindZeros:
		return line.Zero, nil
	case KindRep:
		var w [line.WordsPerLine]uint64
		for i := range w {
			w[i] = e.Base
		}
		return line.FromWords(w), nil
	}
	g, ok := geometries[e.Kind]
	if !ok {
		return line.Zero, fmt.Errorf("bdi: unknown kind %d", e.Kind)
	}
	n := line.Size / g.wordBytes
	if len(e.Deltas) != n {
		return line.Zero, fmt.Errorf("bdi: %s expects %d deltas, got %d", e.Kind, n, len(e.Deltas))
	}
	var out line.Line
	for i := 0; i < n; i++ {
		base := e.Base
		if e.ZeroBase&(1<<uint(i)) != 0 {
			base = 0
		}
		v := base + uint64(e.Deltas[i])
		switch g.wordBytes {
		case 8:
			binary.LittleEndian.PutUint64(out[i*8:], v)
		case 4:
			binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
		case 2:
			binary.LittleEndian.PutUint16(out[i*2:], uint16(v))
		}
	}
	return out, nil
}

// CompressedSize is a convenience returning just the BΔI size of l in
// bytes; the cache model uses this on its hot path.
func CompressedSize(l *line.Line) int {
	return Compress(l).SizeBytes()
}
