package bdi

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"repro/internal/line"
	"repro/internal/xrand"
)

func TestRoundTripArbitrary(t *testing.T) {
	if err := quick.Check(func(l line.Line) bool {
		e := Compress(&l)
		got, err := Decompress(e)
		return err == nil && got == l
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestZeros(t *testing.T) {
	e := Compress(&line.Zero)
	if e.Kind != KindZeros || e.SizeBytes() != 1 {
		t.Fatalf("zero line: %v, %dB", e.Kind, e.SizeBytes())
	}
}

func TestRepeated(t *testing.T) {
	var w [line.WordsPerLine]uint64
	for i := range w {
		w[i] = 0xDEADBEEFCAFEF00D
	}
	l := line.FromWords(w)
	e := Compress(&l)
	if e.Kind != KindRep || e.SizeBytes() != 8 {
		t.Fatalf("repeated line: %v, %dB", e.Kind, e.SizeBytes())
	}
	got, err := Decompress(e)
	if err != nil || got != l {
		t.Fatal("rep round trip failed")
	}
}

func TestB8D1(t *testing.T) {
	var w [line.WordsPerLine]uint64
	base := uint64(0x00002AAA12340000)
	for i := range w {
		w[i] = base + uint64(i*3)
	}
	l := line.FromWords(w)
	e := Compress(&l)
	if e.Kind != KindB8D1 || e.SizeBytes() != 16 {
		t.Fatalf("near-base words: %v, %dB", e.Kind, e.SizeBytes())
	}
}

func TestB8D1WithZeroBaseWords(t *testing.T) {
	// Mixing small immediates with base-relative words is the "I" in BΔI.
	var w [line.WordsPerLine]uint64
	base := uint64(0x00002AAA12340000)
	for i := range w {
		if i%2 == 0 {
			w[i] = uint64(i) // small: implicit zero base
		} else {
			w[i] = base + uint64(i)
		}
	}
	l := line.FromWords(w)
	e := Compress(&l)
	if e.Kind != KindB8D1 {
		t.Fatalf("kind = %v, want B8Δ1", e.Kind)
	}
	got, err := Decompress(e)
	if err != nil || got != l {
		t.Fatal("zero-base mixing round trip failed")
	}
}

func TestB4D1(t *testing.T) {
	var l line.Line
	base := uint32(0x10000)
	for i := 0; i < line.Size/4; i++ {
		binary.LittleEndian.PutUint32(l[i*4:], base+uint32(i)*7)
	}
	e := Compress(&l)
	// B8Δ4 would be 40B; B4Δ1 is 20B and must win.
	if e.Kind != KindB4D1 || e.SizeBytes() != 20 {
		t.Fatalf("4-byte near values: %v, %dB", e.Kind, e.SizeBytes())
	}
}

func TestB2D1(t *testing.T) {
	var l line.Line
	for i := 0; i < line.Size/2; i++ {
		binary.LittleEndian.PutUint16(l[i*2:], 0x4000+uint16(i%30))
	}
	e := Compress(&l)
	if !e.Compressed() {
		t.Fatalf("2-byte near values did not compress: %v", e.Kind)
	}
	got, err := Decompress(e)
	if err != nil || got != l {
		t.Fatal("B2Δ1 round trip failed")
	}
}

func TestIncompressibleRandom(t *testing.T) {
	rng := xrand.New(1)
	var l line.Line
	for i := range l {
		l[i] = byte(rng.Uint32())
	}
	e := Compress(&l)
	if e.Kind != KindUncompressed || e.SizeBytes() != line.Size {
		t.Fatalf("random line compressed as %v", e.Kind)
	}
}

func TestNegativeDeltas(t *testing.T) {
	var w [line.WordsPerLine]uint64
	base := uint64(0x7000000000000000)
	for i := range w {
		w[i] = base - uint64(i*100) // negative deltas from base
	}
	l := line.FromWords(w)
	e := Compress(&l)
	if !e.Compressed() {
		t.Fatal("negative deltas did not compress")
	}
	got, err := Decompress(e)
	if err != nil || got != l {
		t.Fatal("negative delta round trip failed")
	}
}

func TestSizeTable(t *testing.T) {
	// The canonical BΔI sizes.
	want := []struct {
		k  Kind
		sz int
	}{
		{KindZeros, 1}, {KindRep, 8}, {KindB8D1, 16}, {KindB8D2, 24},
		{KindB8D4, 40}, {KindB4D1, 20}, {KindB4D2, 36}, {KindB2D1, 34},
	}
	for _, w := range want {
		if geometries[w.k].sizeBytes != w.sz {
			t.Errorf("%v size %d, want %d", w.k, geometries[w.k].sizeBytes, w.sz)
		}
	}
}

func TestCompressedSizeNeverLarger(t *testing.T) {
	if err := quick.Check(func(l line.Line) bool {
		size, ok := CompressedSize(&l)
		return size <= line.Size && ok == (size < line.Size)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedSizeMatchesCompress(t *testing.T) {
	if err := quick.Check(func(l line.Line) bool {
		e := Compress(&l)
		size, ok := CompressedSize(&l)
		return size == e.SizeBytes() && ok == e.Compressed()
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, err := Decompress(Encoded{Kind: Kind(99)}); err == nil {
		t.Fatal("unknown kind decompressed")
	}
	if _, err := Decompress(Encoded{Kind: KindB8D1, Deltas: []int64{1}}); err == nil {
		t.Fatal("short deltas decompressed")
	}
}

func TestKindString(t *testing.T) {
	if KindB8D1.String() != "B8Δ1" || KindZeros.String() != "zeros" {
		t.Fatal("Kind.String broken")
	}
}

func BenchmarkCompress(b *testing.B) {
	var w [line.WordsPerLine]uint64
	for i := range w {
		w[i] = 0x00002AAA12340000 + uint64(i*3)
	}
	l := line.FromWords(w)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Compress(&l)
	}
}

// scalarTryFits is the pre-SWAR per-lane reference for tryFits; the
// chunk-widened path must agree on every geometry and input.
func scalarTryFits(l *line.Line, k Kind) bool {
	g := geometries[k]
	n := line.Size / g.wordBytes
	haveBase := false
	var base uint64
	signBits := uint(g.wordBytes * 8)
	for i := 0; i < n; i++ {
		w := wordAt(l, g.wordBytes, i)
		sw := int64(w << (64 - signBits) >> (64 - signBits))
		if fitsSigned(sw, g.deltaBytes) {
			continue
		}
		if !haveBase {
			base = w
			haveBase = true
		}
		d := int64(w) - int64(base)
		d = d << (64 - signBits) >> (64 - signBits)
		if !fitsSigned(d, g.deltaBytes) {
			return false
		}
	}
	return true
}

func TestTryFitsNarrowMatchesScalar(t *testing.T) {
	rng := xrand.New(0xbd1)
	mutate := func(l *line.Line) {
		switch rng.Intn(4) {
		case 0: // random content
			for w := 0; w < line.WordsPerLine; w++ {
				l.SetWord(w, rng.Uint64())
			}
		case 1: // small values per 4-byte lane (B4 immediate territory)
			for i := 0; i < line.Size; i += 4 {
				v := uint32(rng.Intn(256)) - uint32(rng.Intn(2))*128
				l[i] = byte(v)
				l[i+1], l[i+2], l[i+3] = byte(v>>8), byte(v>>16), byte(v>>24)
			}
		case 2: // boundary immediates: exactly ±2^(8D-1) around the fit edge
			for i := 0; i < line.Size; i += 2 {
				vals := []uint16{0x007F, 0x0080, 0xFF7F, 0xFF80, 0x7FFF, 0x8000}
				v := vals[rng.Intn(len(vals))]
				l[i], l[i+1] = byte(v), byte(v>>8)
			}
		default: // mixed: one outlier chunk in an otherwise-small line
			for i := range l {
				l[i] = byte(rng.Intn(4))
			}
			c := rng.Intn(line.WordsPerLine)
			l.SetWord(c, rng.Uint64())
		}
	}
	for trial := 0; trial < 4000; trial++ {
		var l line.Line
		mutate(&l)
		for _, k := range deltaKinds {
			if got, want := tryFits(&l, k), scalarTryFits(&l, k); got != want {
				t.Fatalf("trial %d kind %v: tryFits=%v scalar=%v line=%v", trial, k, got, want, l)
			}
		}
		// The winning encoding must still round-trip.
		e := Compress(&l)
		back, err := Decompress(e)
		if err != nil || back != l {
			t.Fatalf("trial %d: round trip failed (%v): %v", trial, e.Kind, err)
		}
	}
}
