// Package dish implements a DISH-style dual-scheme compressed LLC
// (Panda & Seznec, "Dictionary Sharing: An Efficient Cache Compression
// Scheme"): every fill chooses between two compression schemes — a
// C-Pack-style dictionary scheme (scheme 1) and BΔI (scheme 2) — with
// the default decided by a majority vote over the schemes of resident
// lines and an on-the-fly switch to the other scheme when the default
// does not compress the block. Lines a neither scheme compresses are
// stored raw. The storage layout matches the BΔI design: 8-byte
// segments, doubled tags, iso-silicon data array.
package dish

import (
	"fmt"

	"repro/internal/bdi"
	"repro/internal/cache"
	"repro/internal/cpack"
	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/memory"
)

// segmentBytes is the data allocation granule.
const segmentBytes = 8

// rawSegs is a raw (uncompressed) line's segment footprint.
const rawSegs = line.Size / segmentBytes

// schemeKind tags each resident line with the scheme that compressed it.
type schemeKind uint8

const (
	schemeRaw schemeKind = iota // stored uncompressed
	scheme1                     // C-Pack dictionary
	scheme2                     // BΔI
)

// Config sizes a DISH LLC; DefaultConfig mirrors the BΔI iso-silicon
// point (896KB of data, doubled tags).
type Config struct {
	// Sets is the number of cache sets.
	Sets int
	// TagWays is the (doubled) tag associativity per set.
	TagWays int
	// DataWays is the uncompressed-line capacity per set; the segment
	// budget is DataWays×8.
	DataWays int
}

// DefaultConfig returns the iso-silicon DISH configuration: 896KB data
// array (1792 sets × 8 ways) with 16 tags per set.
func DefaultConfig() Config {
	return Config{Sets: 1792, TagWays: 16, DataWays: 8}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.TagWays <= 0 || c.DataWays <= 0 {
		return fmt.Errorf("dish: non-positive geometry")
	}
	if c.TagWays&(c.TagWays-1) != 0 {
		return fmt.Errorf("dish: tag ways must be a power of two for PLRU")
	}
	return nil
}

func (c Config) segsPerSet() int { return c.DataWays * line.Size / segmentBytes }

// tagPayload carries one resident line: the raw content, its charged
// segment footprint, and the scheme that produced that footprint (the
// evict path decrements the matching majority-vote counter).
type tagPayload struct {
	data   line.Line
	segs   int
	scheme schemeKind
}

// ExtraStats counts DISH-specific events.
type ExtraStats struct {
	Insertions uint64
	// Scheme1Fills / Scheme2Fills / UncompressedFills partition every
	// compression decision (insertions and write-hit recompressions) by
	// the scheme that won.
	Scheme1Fills      uint64
	Scheme2Fills      uint64
	UncompressedFills uint64
	// OTFSelections counts decisions where the majority-vote default
	// scheme failed to compress and the block switched on the fly.
	OTFSelections uint64
	// SpaceEvictions counts extra evictions needed to fit a block beyond
	// the tag-replacement victim.
	SpaceEvictions uint64
}

// Cache is a DISH dual-scheme LLC.
type Cache struct {
	cfg      Config
	tags     *cache.Array[tagPayload]
	usedSegs []int // per set
	mem      *memory.Store

	// numScheme1/numScheme2 count resident lines per scheme; the default
	// scheme for the next fill is the current majority (ties favour
	// scheme 1, as in the Sniper controller).
	numScheme1 int
	numScheme2 int

	stats llc.Stats
	extra ExtraStats
}

var _ llc.Cache = (*Cache)(nil)

// New builds a DISH LLC over mem.
func New(cfg Config, mem *memory.Store) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cache{
		cfg: cfg,
		tags: cache.New[tagPayload](cache.Config{
			Entries: cfg.Sets * cfg.TagWays, Ways: cfg.TagWays, Policy: "plru",
		}),
		usedSegs: make([]int, cfg.Sets),
		mem:      mem,
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, mem *memory.Store) *Cache {
	c, err := New(cfg, mem)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements llc.Cache.
func (c *Cache) Name() string { return "DISH" }

// Extra returns DISH-specific statistics.
func (c *Cache) Extra() ExtraStats { return c.extra }

func (c *Cache) setOf(addr line.Addr) int {
	return int(addr.BlockNumber() % uint64(c.cfg.Sets))
}

// segsOf converts a compressed byte size to segments (at least one).
func segsOf(sizeBytes int) int {
	s := (sizeBytes + segmentBytes - 1) / segmentBytes
	if s < 1 {
		s = 1
	}
	return s
}

// defaultScheme is the majority vote over resident lines.
func (c *Cache) defaultScheme() schemeKind {
	if c.numScheme1 >= c.numScheme2 {
		return scheme1
	}
	return scheme2
}

// choose picks the scheme and segment footprint for data: try the
// majority-vote default first, switch on the fly to the other scheme if
// the default does not compress the block (fewer segments than raw), and
// fall back to a raw store when neither wins.
func (c *Cache) choose(data *line.Line) (schemeKind, int) {
	segs1 := segsOf(cpack.CompressLine(data, nil))
	segs2 := rawSegs
	if sz, ok := bdi.CompressedSize(data); ok {
		segs2 = segsOf(sz)
	}
	def, defSegs, altSegs := c.defaultScheme(), segs1, segs2
	if def == scheme2 {
		defSegs, altSegs = segs2, segs1
	}
	if defSegs < rawSegs {
		return def, defSegs
	}
	if altSegs < rawSegs {
		c.extra.OTFSelections++
		if def == scheme1 {
			return scheme2, altSegs
		}
		return scheme1, altSegs
	}
	return schemeRaw, rawSegs
}

// account registers a compression decision in the majority-vote counters
// and the fill statistics.
func (c *Cache) account(s schemeKind) {
	switch s {
	case scheme1:
		c.numScheme1++
		c.extra.Scheme1Fills++
	case scheme2:
		c.numScheme2++
		c.extra.Scheme2Fills++
	default:
		c.extra.UncompressedFills++
	}
}

// unaccount removes an evicted or overwritten line from the
// majority-vote counters.
func (c *Cache) unaccount(s schemeKind) {
	switch s {
	case scheme1:
		c.numScheme1--
	case scheme2:
		c.numScheme2--
	}
}

// Read implements llc.Cache.
//
//thesaurus:hotpath
func (c *Cache) Read(addr line.Addr) (line.Line, bool) {
	addr = addr.LineAddr()
	c.stats.Reads++
	if e, _ := c.tags.Lookup(addr); e != nil {
		c.stats.ReadHits++
		return e.Payload.data, true
	}
	data := c.mem.Read(addr, memory.Fill)
	c.stats.Fills++
	c.install(addr, data, false)
	return data, false
}

// Write implements llc.Cache: the new value re-runs scheme selection,
// which may change the block's size and force evictions within the set.
//
//thesaurus:hotpath
func (c *Cache) Write(addr line.Addr, data line.Line) bool {
	addr = addr.LineAddr()
	c.stats.Writes++
	if e, _ := c.tags.Lookup(addr); e != nil {
		c.stats.WriteHits++
		set := c.setOf(addr)
		c.usedSegs[set] -= e.Payload.segs
		c.unaccount(e.Payload.scheme)
		// The entry has no footprint while makeRoom refits the set.
		e.Payload.segs = 0
		s, need := c.choose(&data)
		c.account(s)
		c.makeRoom(addr, need)
		e.Payload.data = data
		e.Payload.segs = need
		e.Payload.scheme = s
		c.usedSegs[set] += need
		e.Dirty = true
		return true
	}
	c.install(addr, data, true)
	return false
}

// install selects a scheme and inserts a new line.
func (c *Cache) install(addr line.Addr, data line.Line, dirty bool) {
	s, need := c.choose(&data)
	c.account(s)
	set := c.setOf(addr)

	e, _, evicted, had := c.tags.Insert(addr)
	if had {
		c.retire(set, evicted)
	}
	c.makeRoom(addr, need)
	e.Payload.data = data
	e.Payload.segs = need
	e.Payload.scheme = s
	e.Dirty = dirty
	c.usedSegs[set] += need

	c.extra.Insertions++
}

// makeRoom evicts additional lines from addr's set until need segments
// are free.
func (c *Cache) makeRoom(addr line.Addr, need int) {
	set := c.setOf(addr)
	budget := c.cfg.segsPerSet()
	for c.usedSegs[set]+need > budget {
		idx := c.tags.ValidVictimIndex(addr)
		if idx < 0 {
			panic("dish: no evictable line in an over-budget set")
		}
		old := c.tags.InvalidateIndex(idx)
		c.retire(set, old)
		c.extra.SpaceEvictions++
	}
}

// retire writes back a displaced line, releases its segments, and
// removes it from the majority-vote counters.
func (c *Cache) retire(set int, evicted cache.Entry[tagPayload]) {
	c.usedSegs[set] -= evicted.Payload.segs
	c.unaccount(evicted.Payload.scheme)
	if evicted.Dirty {
		c.mem.Write(evicted.Addr, evicted.Payload.data, memory.Writeback)
		c.stats.Writebacks++
	}
}

// DecompressionCycles reports the dual-scheme hit latency: the critical
// path is sized for the slower scheme-1 (C-Pack) decompressor.
func (c *Cache) DecompressionCycles() float64 { return 8 }

// Stats implements llc.Cache.
func (c *Cache) Stats() llc.Stats { return c.stats }

// ResetStats implements llc.Cache. The majority-vote counters describe
// resident lines, not events, so they survive the reset.
func (c *Cache) ResetStats() {
	c.stats = llc.Stats{}
	c.extra = ExtraStats{}
	c.tags.ResetStats()
}

// Footprint implements llc.Cache.
func (c *Cache) Footprint() llc.Footprint {
	used := 0
	for _, s := range c.usedSegs {
		used += s
	}
	return llc.Footprint{
		ResidentLines:  c.tags.CountValid(),
		DataBytesUsed:  used * segmentBytes,
		DataBytesTotal: c.cfg.Sets * c.cfg.segsPerSet() * segmentBytes,
	}
}

// Snapshot is the DISH release snapshot: the scheme-selection counters.
type Snapshot struct {
	Extra ExtraStats
}

// Clone implements llc.ExtraSnapshot. ExtraStats is a pure value type,
// so a copy is already deep.
func (s *Snapshot) Clone() llc.ExtraSnapshot {
	cp := *s
	return &cp
}

// Release implements llc.Cache: it extracts the statistics snapshot and
// frees the tag array. The cache must not be used afterwards.
func (c *Cache) Release() llc.StatsSnapshot {
	if c.tags == nil {
		panic("dish: Release called twice")
	}
	snap := &Snapshot{Extra: c.extra}
	c.tags = nil
	c.usedSegs = nil
	return llc.StatsSnapshot{Design: c.Name(), Stats: c.stats, Extra: snap}
}

// CheckInvariants validates the per-set segment accounting and the
// majority-vote counters against the resident lines.
func (c *Cache) CheckInvariants() error {
	sums := make([]int, c.cfg.Sets)
	n1, n2 := 0, 0
	var err error
	c.tags.ForEach(func(_ int, e *cache.Entry[tagPayload]) {
		set := c.setOf(e.Addr)
		sums[set] += e.Payload.segs
		if e.Payload.segs <= 0 || e.Payload.segs > rawSegs {
			err = fmt.Errorf("line %#x: bad segment count %d", uint64(e.Addr), e.Payload.segs)
		}
		switch e.Payload.scheme {
		case scheme1:
			n1++
		case scheme2:
			n2++
		}
	})
	if err != nil {
		return err
	}
	if n1 != c.numScheme1 || n2 != c.numScheme2 {
		return fmt.Errorf("scheme counters (%d,%d) but residents (%d,%d)",
			c.numScheme1, c.numScheme2, n1, n2)
	}
	for s := range sums {
		if sums[s] != c.usedSegs[s] {
			return fmt.Errorf("set %d: usedSegs=%d, tags sum to %d", s, c.usedSegs[s], sums[s])
		}
		if sums[s] > c.cfg.segsPerSet() {
			return fmt.Errorf("set %d: %d segments exceed budget %d", s, sums[s], c.cfg.segsPerSet())
		}
	}
	return nil
}
