package dish

import (
	"testing"

	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/xrand"
)

func smallConfig() Config {
	return Config{Sets: 8, TagWays: 16, DataWays: 8}
}

// cpackFriendly builds a line from a three-word 32-bit vocabulary: the
// C-Pack dictionary captures it (3 literals, 13 full matches) while the
// 64-bit words jump around too much for any BΔI base+delta class.
func cpackFriendly() line.Line {
	vocab := [3]uint32{0x9e3779b9, 0x517cc1b7, 0x2545f491}
	var l line.Line
	for i := 0; i < line.WordsPerLine; i++ {
		hi, lo := vocab[i%3], vocab[(i*2+1)%3]
		l.SetWord(i, uint64(hi)<<32|uint64(lo))
	}
	return l
}

// incompressible builds a line neither scheme can beat raw storage on.
func incompressible(rng *xrand.Rand) line.Line {
	var l line.Line
	for j := 0; j < line.WordsPerLine; j++ {
		l.SetWord(j, rng.Uint64()|0x0101010101010101)
	}
	return l
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{Sets: 0, TagWays: 16, DataWays: 8},
		{Sets: 8, TagWays: 0, DataWays: 8},
		{Sets: 8, TagWays: 12, DataWays: 8}, // not a power of two
		{Sets: 8, TagWays: 16, DataWays: 0},
	} {
		if bad.Validate() == nil {
			t.Errorf("bad config %+v accepted", bad)
		}
	}
}

// TestChooseDefaultAndOTF pins the selection policy: the majority-vote
// default is tried first, the other scheme is an on-the-fly fallback,
// and raw storage is the last resort.
func TestChooseDefaultAndOTF(t *testing.T) {
	c := MustNew(smallConfig(), memory.NewStore())

	// Cold cache: the tie favors scheme1 (C-Pack), and a compressible
	// line sticks with the default — no OTF event.
	friendly := cpackFriendly()
	if s, segs := c.choose(&friendly); s != scheme1 || segs >= rawSegs {
		t.Fatalf("cold choose: scheme %d segs %d, want scheme1 compressed", s, segs)
	}
	if c.extra.OTFSelections != 0 {
		t.Fatalf("OTF fired for a default-scheme win")
	}

	// Force a scheme2 (BΔI) majority: the same line now fails the
	// default and must switch on the fly back to C-Pack.
	c.numScheme2 = 5
	if s, segs := c.choose(&friendly); s != scheme1 || segs >= rawSegs {
		t.Fatalf("OTF choose: scheme %d segs %d, want scheme1 compressed", s, segs)
	}
	if c.extra.OTFSelections != 1 {
		t.Fatalf("OTFSelections = %d, want 1", c.extra.OTFSelections)
	}

	// Neither scheme compresses high-entropy content: raw fallback.
	rnd := incompressible(xrand.New(11))
	if s, segs := c.choose(&rnd); s != schemeRaw || segs != rawSegs {
		t.Fatalf("raw choose: scheme %d segs %d, want raw %d", s, segs, rawSegs)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	rng := xrand.New(1)
	ref := map[line.Addr]line.Line{}
	for i := 0; i < 8000; i++ {
		addr := line.Addr(rng.Intn(256)) * line.Size
		if rng.Bool(0.4) {
			var l line.Line
			switch rng.Intn(4) {
			case 0:
				l = cpackFriendly()
				l.SetWord(0, rng.Uint64()) // perturb so contents differ
			case 1:
				l = incompressible(rng)
			case 2: // base + small delta: BΔI territory
				base := rng.Uint64()
				for j := 0; j < line.WordsPerLine; j++ {
					l.SetWord(j, base+uint64(rng.Intn(128)))
				}
			case 3: // zero-ish
			}
			c.Write(addr, l)
			ref[addr] = l
			mem.Poke(addr, l)
		} else {
			got, _ := c.Read(addr)
			want, ok := ref[addr]
			if !ok {
				want = mem.Peek(addr)
			}
			if got != want {
				t.Fatalf("step %d: wrong data", i)
			}
		}
		if i%1000 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDoubledTagsExploitCompression: compressible content lets more lines
// reside than the data ways alone would admit.
func TestDoubledTagsExploitCompression(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(Config{Sets: 1, TagWays: 16, DataWays: 8}, mem)
	for i := 0; i < 14; i++ {
		var l line.Line
		l.SetWord(0, uint64(i)) // near-zero content: compresses hard
		c.Write(line.Addr(i)*line.Size, l)
	}
	fp := c.Footprint()
	if fp.ResidentLines <= 8 {
		t.Fatalf("only %d residents; doubled tags unused", fp.ResidentLines)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSpaceEvictions: refilling a full set with incompressible content
// must force space evictions beyond the tag victim.
func TestSpaceEvictions(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(Config{Sets: 1, TagWays: 16, DataWays: 8}, mem)
	rng := xrand.New(3)
	for i := 0; i < 32; i++ {
		l := incompressible(rng)
		c.Write(line.Addr(i)*line.Size, l)
	}
	if c.Extra().SpaceEvictions == 0 {
		t.Fatal("no space evictions under incompressible refill")
	}
	if c.Extra().UncompressedFills == 0 {
		t.Fatal("incompressible lines should fill raw")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestResetStatsKeepsMajority: ResetStats clears event counters but the
// majority-vote state describes residents and must survive.
func TestResetStatsKeepsMajority(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	for i := 0; i < 8; i++ {
		l := cpackFriendly()
		c.Write(line.Addr(i)*line.Size, l)
	}
	if c.numScheme1 == 0 {
		t.Fatal("no scheme1 residents after compressible fills")
	}
	before := c.numScheme1
	c.ResetStats()
	if c.extra != (ExtraStats{}) {
		t.Fatalf("extra stats not cleared: %+v", c.extra)
	}
	if c.numScheme1 != before {
		t.Fatalf("majority counter reset: %d, want %d", c.numScheme1, before)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRelease(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	var l line.Line
	l.SetWord(0, 42)
	c.Write(0, l)
	snap := c.Release()
	if snap.Design != "DISH" {
		t.Fatalf("design %q", snap.Design)
	}
	x, ok := snap.Extra.(*Snapshot)
	if !ok || x.Extra.Insertions != 1 {
		t.Fatalf("bad extra snapshot %+v", snap.Extra)
	}
	cp := x.Clone().(*Snapshot)
	cp.Extra.Insertions = 99
	if x.Extra.Insertions != 1 {
		t.Fatal("Clone shares state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	c.Release()
}

func TestDecompressionCycles(t *testing.T) {
	c := MustNew(smallConfig(), memory.NewStore())
	if c.DecompressionCycles() <= 1 {
		t.Fatal("DISH decompression should cost more than a single cycle")
	}
}
