// Package cache provides the set-associative array substrate shared by
// every cache model in the repository: the L1/L2 tag filters, the
// conventional LLC, and the tag arrays of the compressed designs (which
// attach design-specific payloads to each tag entry).
//
// The array is generic over a payload type so that, e.g., the Thesaurus
// tag entry (lsh / fmt / setptr / segix, Fig. 9) and the Dedup tag entry
// (data pointer + doubly-linked list) reuse one implementation of
// indexing, replacement, and statistics.
package cache

import (
	"fmt"

	"repro/internal/line"
	"repro/internal/plru"
)

// Config describes a set-associative array.
type Config struct {
	// Entries is the total number of tag entries; must be a multiple of
	// Ways.
	Entries int
	// Ways is the associativity.
	Ways int
	// Policy is the replacement policy: "lru" or "plru".
	Policy string
}

// LineConfig returns the Config for a conventional cache of sizeBytes
// capacity with 64-byte lines.
func LineConfig(sizeBytes, ways int, policy string) Config {
	return Config{Entries: sizeBytes / line.Size, Ways: ways, Policy: policy}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Ways <= 0 {
		return fmt.Errorf("cache: non-positive ways %d", c.Ways)
	}
	if c.Entries <= 0 || c.Entries%c.Ways != 0 {
		return fmt.Errorf("cache: entries %d not a positive multiple of ways %d", c.Entries, c.Ways)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Entries / c.Ways }

// Entry is one tag-array entry with a design-specific payload.
type Entry[P any] struct {
	Addr    line.Addr
	Valid   bool
	Dirty   bool
	Payload P
}

// Stats counts array-level events.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns Hits/Accesses, or 0 with no accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Array is a set-associative tag array with payloads of type P.
type Array[P any] struct {
	cfg     Config
	sets    int
	entries []Entry[P] // sets × ways, row-major
	policy  []plru.Policy
	stats   Stats
}

// New builds an Array from cfg, panicking on invalid configuration (all
// configurations in this repository are static).
func New[P any](cfg Config) *Array[P] {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	a := &Array[P]{
		cfg:     cfg,
		sets:    cfg.Sets(),
		entries: make([]Entry[P], cfg.Entries),
		policy:  make([]plru.Policy, cfg.Sets()),
	}
	for i := range a.policy {
		a.policy[i] = plru.NewPolicy(cfg.Policy, cfg.Ways)
	}
	return a
}

// Config returns the array configuration.
func (a *Array[P]) Config() Config { return a.cfg }

// Stats returns a copy of the counters.
func (a *Array[P]) Stats() Stats { return a.stats }

// ResetStats zeroes the counters (post-warmup measurement windows).
func (a *Array[P]) ResetStats() { a.stats = Stats{} }

// setOf maps an address to its set index.
func (a *Array[P]) setOf(addr line.Addr) int {
	return int(addr.BlockNumber() % uint64(a.sets))
}

// SetOf maps an address to its set index. It is exported for set-sharded
// replay, which partitions an event stream by tag set so disjoint shards
// of a set-partitioned design can replay concurrently.
func (a *Array[P]) SetOf(addr line.Addr) int { return a.setOf(addr.LineAddr()) }

// index returns the global entry index for (set, way); this is the stable
// "tag pointer" used by designs whose data arrays point back at tags.
func (a *Array[P]) index(set, way int) int { return set*a.cfg.Ways + way }

// find returns the way holding addr in its set, or -1.
func (a *Array[P]) find(addr line.Addr) (set, way int) {
	addr = addr.LineAddr()
	set = a.setOf(addr)
	base := set * a.cfg.Ways
	for w := 0; w < a.cfg.Ways; w++ {
		e := &a.entries[base+w]
		if e.Valid && e.Addr == addr {
			return set, w
		}
	}
	return set, -1
}

// Lookup probes for addr, counting a hit or miss and updating recency on
// hit. It returns the entry (nil on miss) and its stable index.
func (a *Array[P]) Lookup(addr line.Addr) (*Entry[P], int) {
	a.stats.Accesses++
	set, way := a.find(addr)
	if way < 0 {
		a.stats.Misses++
		return nil, -1
	}
	a.stats.Hits++
	a.policy[set].Touch(way)
	return &a.entries[a.index(set, way)], a.index(set, way)
}

// Peek probes for addr without touching statistics or recency.
func (a *Array[P]) Peek(addr line.Addr) (*Entry[P], int) {
	set, way := a.find(addr)
	if way < 0 {
		return nil, -1
	}
	return &a.entries[a.index(set, way)], a.index(set, way)
}

// Insert allocates an entry for addr, evicting the replacement victim if
// the set is full. It returns the new entry (marked valid, clean, with a
// zero payload), its stable index, and — when an eviction occurred — a
// copy of the displaced entry. Insert panics if addr is already present;
// callers must Lookup first.
func (a *Array[P]) Insert(addr line.Addr) (e *Entry[P], idx int, evicted Entry[P], hadEviction bool) {
	addr = addr.LineAddr()
	set, way := a.find(addr)
	if way >= 0 {
		panic(fmt.Sprintf("cache: Insert of resident address %#x", uint64(addr)))
	}
	base := set * a.cfg.Ways
	// Prefer an invalid way.
	victim := -1
	for w := 0; w < a.cfg.Ways; w++ {
		if !a.entries[base+w].Valid {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = a.policy[set].Victim()
		evicted = a.entries[base+victim]
		hadEviction = true
		a.stats.Evictions++
	}
	idx = a.index(set, victim)
	var zero P
	a.entries[idx] = Entry[P]{Addr: addr, Valid: true, Payload: zero}
	a.policy[set].Touch(victim)
	return &a.entries[idx], idx, evicted, hadEviction
}

// VictimPeek returns a copy of the entry that Insert would evict for addr
// right now (invalid if a free way exists). Designs that must free data
// space before tag insertion use this to plan.
func (a *Array[P]) VictimPeek(addr line.Addr) Entry[P] {
	set := a.setOf(addr.LineAddr())
	base := set * a.cfg.Ways
	for w := 0; w < a.cfg.Ways; w++ {
		if !a.entries[base+w].Valid {
			return Entry[P]{}
		}
	}
	return a.entries[base+a.policy[set].Victim()]
}

// PolicyVictimIndex returns the stable index of the entry the replacement
// policy would evict next in addr's set, or -1 if the set still has a free
// way. Designs that must evict several lines to fit one compressed block
// (BΔI's segmented sets) call this repeatedly.
func (a *Array[P]) PolicyVictimIndex(addr line.Addr) int {
	set := a.setOf(addr.LineAddr())
	base := set * a.cfg.Ways
	for w := 0; w < a.cfg.Ways; w++ {
		if !a.entries[base+w].Valid {
			return -1
		}
	}
	return a.index(set, a.policy[set].Victim())
}

// ValidVictimIndex returns the stable index of a valid entry to evict
// from addr's set: the policy victim when it is valid, otherwise any
// valid entry other than addr's own, or -1 when none exists. Unlike
// PolicyVictimIndex it never declines because of free ways — compressed
// designs can exhaust data space while tag ways remain.
func (a *Array[P]) ValidVictimIndex(addr line.Addr) int {
	addr = addr.LineAddr()
	set := a.setOf(addr)
	base := set * a.cfg.Ways
	w := a.policy[set].Victim()
	if e := &a.entries[base+w]; e.Valid && e.Addr != addr {
		return a.index(set, w)
	}
	for w := 0; w < a.cfg.Ways; w++ {
		if e := &a.entries[base+w]; e.Valid && e.Addr != addr {
			return a.index(set, w)
		}
	}
	return -1
}

// InvalidateIndex marks the entry at stable index idx invalid and returns
// a copy of it. Used when a data-array eviction forces out a tag (§5.4.1
// step 8).
func (a *Array[P]) InvalidateIndex(idx int) Entry[P] {
	if idx < 0 || idx >= len(a.entries) {
		panic(fmt.Sprintf("cache: InvalidateIndex out of range %d", idx))
	}
	old := a.entries[idx]
	a.entries[idx].Valid = false
	if old.Valid {
		a.stats.Evictions++
	}
	return old
}

// EntryAt returns the entry at stable index idx.
func (a *Array[P]) EntryAt(idx int) *Entry[P] {
	return &a.entries[idx]
}

// ForEach calls fn for every valid entry with its stable index.
func (a *Array[P]) ForEach(fn func(idx int, e *Entry[P])) {
	for i := range a.entries {
		if a.entries[i].Valid {
			fn(i, &a.entries[i])
		}
	}
}

// CountValid returns the number of valid (resident) entries.
func (a *Array[P]) CountValid() int {
	n := 0
	for i := range a.entries {
		if a.entries[i].Valid {
			n++
		}
	}
	return n
}
