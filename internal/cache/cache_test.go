package cache

import (
	"testing"

	"repro/internal/line"
	"repro/internal/xrand"
)

func addr(i int) line.Addr { return line.Addr(i * line.Size) }

func TestConfigValidation(t *testing.T) {
	if err := (Config{Entries: 16, Ways: 4, Policy: "lru"}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{Entries: 0, Ways: 4},
		{Entries: 15, Ways: 4},
		{Entries: 16, Ways: 0},
	} {
		if bad.Validate() == nil {
			t.Errorf("config %+v validated", bad)
		}
	}
}

func TestLookupMissThenHit(t *testing.T) {
	a := New[int](Config{Entries: 16, Ways: 4, Policy: "lru"})
	if e, _ := a.Lookup(addr(1)); e != nil {
		t.Fatal("hit on empty cache")
	}
	e, idx, _, had := a.Insert(addr(1))
	if had {
		t.Fatal("eviction on empty set")
	}
	e.Payload = 42
	got, gotIdx := a.Lookup(addr(1))
	if got == nil || got.Payload != 42 || gotIdx != idx {
		t.Fatal("lookup after insert failed")
	}
	s := a.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestInsertEvictsLRU(t *testing.T) {
	// 4 sets × 2 ways; fill one set and overflow it.
	a := New[int](Config{Entries: 8, Ways: 2, Policy: "lru"})
	// Addresses mapping to set 0: block numbers 0, 4, 8 (mod 4).
	a.Insert(addr(0))
	a.Insert(addr(4))
	a.Lookup(addr(0)) // 0 is now MRU; 4 is LRU
	_, _, evicted, had := a.Insert(addr(8))
	if !had || evicted.Addr != addr(4) {
		t.Fatalf("evicted %#x (had=%v), want %#x", uint64(evicted.Addr), had, uint64(addr(4)))
	}
}

func TestInsertResidentPanics(t *testing.T) {
	a := New[int](Config{Entries: 8, Ways: 2, Policy: "lru"})
	a.Insert(addr(1))
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	a.Insert(addr(1))
}

func TestDirtyEvictionCarriesPayload(t *testing.T) {
	a := New[string](Config{Entries: 2, Ways: 2, Policy: "lru"})
	e, _, _, _ := a.Insert(addr(0))
	e.Dirty = true
	e.Payload = "data0"
	a.Insert(addr(2)) // same set (2 mod 1... sets=1)
	_, _, evicted, had := a.Insert(addr(4))
	if !had || !evicted.Dirty || evicted.Payload != "data0" {
		t.Fatalf("evicted %+v", evicted)
	}
}

func TestInvalidateIndex(t *testing.T) {
	a := New[int](Config{Entries: 8, Ways: 2, Policy: "lru"})
	_, idx, _, _ := a.Insert(addr(3))
	old := a.InvalidateIndex(idx)
	if !old.Valid || old.Addr != addr(3) {
		t.Fatalf("invalidate returned %+v", old)
	}
	if e, _ := a.Lookup(addr(3)); e != nil {
		t.Fatal("invalidated entry still resident")
	}
}

func TestEntryAtStableIndices(t *testing.T) {
	a := New[int](Config{Entries: 32, Ways: 4, Policy: "plru"})
	_, idx, _, _ := a.Insert(addr(5))
	a.Insert(addr(13))
	a.Insert(addr(21))
	if got := a.EntryAt(idx); got.Addr != addr(5) {
		t.Fatal("stable index moved")
	}
}

func TestVictimPeekAndPolicyVictim(t *testing.T) {
	a := New[int](Config{Entries: 4, Ways: 2, Policy: "lru"})
	// Set 0 has a free way: VictimPeek invalid, PolicyVictimIndex -1.
	a.Insert(addr(0))
	if v := a.VictimPeek(addr(0)); v.Valid {
		t.Fatal("victim peek on non-full set")
	}
	if idx := a.PolicyVictimIndex(addr(0)); idx != -1 {
		t.Fatal("policy victim on non-full set")
	}
	a.Insert(addr(2))
	if v := a.VictimPeek(addr(4)); !v.Valid || v.Addr != addr(0) {
		t.Fatalf("victim peek %+v", v)
	}
	if idx := a.PolicyVictimIndex(addr(4)); a.EntryAt(idx).Addr != addr(0) {
		t.Fatal("policy victim index wrong")
	}
}

func TestValidVictimIndexExcludesSelf(t *testing.T) {
	a := New[int](Config{Entries: 4, Ways: 2, Policy: "lru"})
	a.Insert(addr(0))
	a.Insert(addr(2))
	a.Lookup(addr(2)) // 0 is LRU
	idx := a.ValidVictimIndex(addr(0))
	if idx < 0 || a.EntryAt(idx).Addr != addr(2) {
		t.Fatalf("ValidVictimIndex picked self or nothing (idx=%d)", idx)
	}
	// A set with only the excluded line: no victim.
	b := New[int](Config{Entries: 4, Ways: 2, Policy: "lru"})
	b.Insert(addr(0))
	if idx := b.ValidVictimIndex(addr(0)); idx != -1 {
		t.Fatal("victim found in singleton set of self")
	}
}

func TestForEachAndCountValid(t *testing.T) {
	a := New[int](Config{Entries: 16, Ways: 4, Policy: "lru"})
	for i := 0; i < 10; i++ {
		a.Insert(addr(i))
	}
	if a.CountValid() != 10 {
		t.Fatalf("CountValid = %d", a.CountValid())
	}
	n := 0
	a.ForEach(func(_ int, e *Entry[int]) {
		if !e.Valid {
			t.Fatal("ForEach visited invalid entry")
		}
		n++
	})
	if n != 10 {
		t.Fatalf("ForEach visited %d", n)
	}
}

// TestAgainstReferenceModel cross-checks hit/miss behaviour against a
// map+recency reference under a random workload.
func TestAgainstReferenceModel(t *testing.T) {
	const (
		entries = 64
		ways    = 4
		span    = 512
	)
	a := New[int](Config{Entries: entries, Ways: ways, Policy: "lru"})
	sets := entries / ways
	type refEntry struct {
		addr line.Addr
		used int
	}
	ref := make([][]refEntry, sets)
	clock := 0
	rng := xrand.New(31)

	for step := 0; step < 50000; step++ {
		clock++
		ad := addr(rng.Intn(span))
		set := int(ad.BlockNumber() % uint64(sets))
		// Reference lookup.
		refHit := false
		for i := range ref[set] {
			if ref[set][i].addr == ad {
				ref[set][i].used = clock
				refHit = true
				break
			}
		}
		e, _ := a.Lookup(ad)
		if (e != nil) != refHit {
			t.Fatalf("step %d: hit=%v ref=%v", step, e != nil, refHit)
		}
		if e == nil {
			a.Insert(ad)
			if len(ref[set]) < ways {
				ref[set] = append(ref[set], refEntry{ad, clock})
			} else {
				lru := 0
				for i := range ref[set] {
					if ref[set][i].used < ref[set][lru].used {
						lru = i
					}
				}
				ref[set][lru] = refEntry{ad, clock}
			}
		}
	}
}

func TestResetStats(t *testing.T) {
	a := New[int](Config{Entries: 8, Ways: 2, Policy: "lru"})
	a.Lookup(addr(0))
	a.ResetStats()
	if a.Stats().Accesses != 0 {
		t.Fatal("stats not reset")
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty hit rate")
	}
	s = Stats{Accesses: 10, Hits: 4}
	if s.HitRate() != 0.4 {
		t.Fatal("hit rate math")
	}
}
