package bdicache

import (
	"testing"

	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/xrand"
)

func smallConfig() Config {
	return Config{Sets: 8, TagWays: 16, DataWays: 8}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{Sets: 0, TagWays: 16, DataWays: 8},
		{Sets: 8, TagWays: 0, DataWays: 8},
		{Sets: 8, TagWays: 12, DataWays: 8}, // not a power of two
		{Sets: 8, TagWays: 16, DataWays: 0},
	} {
		if bad.Validate() == nil {
			t.Errorf("bad config %+v accepted", bad)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	rng := xrand.New(1)
	ref := map[line.Addr]line.Line{}
	for i := 0; i < 8000; i++ {
		addr := line.Addr(rng.Intn(256)) * line.Size
		if rng.Bool(0.4) {
			var l line.Line
			switch rng.Intn(3) {
			case 0: // BΔI-friendly
				base := rng.Uint64n(1 << 40)
				for j := 0; j < 8; j++ {
					l.SetWord(j, base+rng.Uint64n(100))
				}
			case 1: // random
				for j := 0; j < 8; j++ {
					l.SetWord(j, rng.Uint64())
				}
			case 2: // zero-ish
			}
			c.Write(addr, l)
			ref[addr] = l
			mem.Poke(addr, l)
		} else {
			got, _ := c.Read(addr)
			want, ok := ref[addr]
			if !ok {
				want = mem.Peek(addr)
			}
			if got != want {
				t.Fatalf("step %d: wrong data", i)
			}
		}
		if i%1000 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFriendlyContentCompresses(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	for i := 0; i < 60; i++ {
		var l line.Line
		base := uint64(0x1000000)
		for j := 0; j < 8; j++ {
			l.SetWord(j, base+uint64(i*8+j))
		}
		mem.Poke(line.Addr(i)*line.Size, l)
		c.Read(line.Addr(i) * line.Size)
	}
	fp := c.Footprint()
	if r := fp.CompressionRatio(); r < 2 {
		t.Fatalf("friendly content only %.2fx", r)
	}
	if c.Extra().Compressed == 0 {
		t.Fatal("no compressed insertions recorded")
	}
}

func TestRandomContentStaysRaw(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	rng := xrand.New(2)
	for i := 0; i < 40; i++ {
		var l line.Line
		for j := 0; j < 8; j++ {
			l.SetWord(j, rng.Uint64())
		}
		mem.Poke(line.Addr(i)*line.Size, l)
		c.Read(line.Addr(i) * line.Size)
	}
	fp := c.Footprint()
	if r := fp.CompressionRatio(); r > 1.05 {
		t.Fatalf("random content compressed %.2fx", r)
	}
}

func TestDoubledTagsExploitCompression(t *testing.T) {
	// With fully compressible (zero) lines, the cache should hold more
	// lines than its uncompressed capacity.
	mem := memory.NewStore()
	cfg := smallConfig() // 8 sets × 8 data ways = 64-line uncompressed capacity
	c := MustNew(cfg, mem)
	for i := 0; i < 128; i++ {
		c.Read(line.Addr(i) * line.Size) // zero fills
	}
	fp := c.Footprint()
	if fp.ResidentLines <= 64 {
		t.Fatalf("resident %d, want > uncompressed capacity 64", fp.ResidentLines)
	}
}

func TestWriteChangesSize(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	c.Write(0, line.Zero) // 1 segment
	used1 := c.Footprint().DataBytesUsed
	var big line.Line
	rng := xrand.New(3)
	for j := 0; j < 8; j++ {
		big.SetWord(j, rng.Uint64())
	}
	c.Write(0, big) // 8 segments
	used2 := c.Footprint().DataBytesUsed
	if used2 <= used1 {
		t.Fatalf("grow not reflected: %d → %d", used1, used2)
	}
	if got, _ := c.Read(0); got != big {
		t.Fatal("data lost on size change")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceEvictions(t *testing.T) {
	mem := memory.NewStore()
	cfg := Config{Sets: 1, TagWays: 16, DataWays: 8}
	c := MustNew(cfg, mem)
	rng := xrand.New(4)
	// Fill one set with raw lines beyond its 64-segment budget.
	for i := 0; i < 32; i++ {
		var l line.Line
		for j := 0; j < 8; j++ {
			l.SetWord(j, rng.Uint64())
		}
		c.Write(line.Addr(i)*line.Size, l)
	}
	if c.Extra().SpaceEvictions == 0 {
		t.Fatal("no space evictions under raw overload")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDecompressionCycles(t *testing.T) {
	c := MustNew(smallConfig(), memory.NewStore())
	if c.DecompressionCycles() != 1 {
		t.Fatal("BΔI decompression latency")
	}
}
