// Package bdicache implements a BΔI-compressed LLC (§2.2): each line is
// compressed independently with Base-Delta-Immediate encoding and stored
// in its set at 8-byte-segment granularity, with a doubled tag array so
// freed space can hold additional lines (Fig. 3).
package bdicache

import (
	"fmt"

	"repro/internal/bdi"
	"repro/internal/cache"
	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/memory"
)

// segmentBytes is the data allocation granule, as in BΔI's original
// proposal (lines are logically divided into eight 8-byte segments).
const segmentBytes = 8

// Config sizes a BΔI LLC; DefaultConfig matches Table 2's iso-silicon
// point (896KB of data, doubled tags).
type Config struct {
	// Sets is the number of cache sets; each set has DataWays×64 bytes
	// of data and TagWays tag entries.
	Sets int
	// TagWays is the (doubled) tag associativity per set.
	TagWays int
	// DataWays is the uncompressed-line capacity per set; the segment
	// budget is DataWays×8.
	DataWays int
}

// DefaultConfig returns the Table 2 BΔI configuration: 896KB data array
// (1792 sets × 8 ways) with 16 tags per set.
func DefaultConfig() Config {
	return Config{Sets: 1792, TagWays: 16, DataWays: 8}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.TagWays <= 0 || c.DataWays <= 0 {
		return fmt.Errorf("bdicache: non-positive geometry")
	}
	if c.TagWays&(c.TagWays-1) != 0 {
		return fmt.Errorf("bdicache: tag ways must be a power of two for PLRU")
	}
	return nil
}

func (c Config) segsPerSet() int { return c.DataWays * line.Size / segmentBytes }

// tagPayload carries the compressed block for one resident line.
type tagPayload struct {
	enc  bdi.Encoded
	segs int
}

// ExtraStats counts BΔI-specific events.
type ExtraStats struct {
	Insertions uint64
	// Compressed counts insertions stored in fewer than 8 segments.
	Compressed uint64
	// ByKind histograms insertions by BΔI encoding.
	ByKind map[bdi.Kind]uint64
	// SpaceEvictions counts extra evictions needed to fit a block beyond
	// the tag-replacement victim.
	SpaceEvictions uint64
}

// Cache is a BΔI LLC.
type Cache struct {
	cfg      Config
	tags     *cache.Array[tagPayload]
	usedSegs []int // per set
	mem      *memory.Store

	stats llc.Stats
	extra ExtraStats

	// encScratch is the per-cache scratch encoding installs compress into
	// before copying into the (freshly zeroed) tag payload; deltaPool
	// recycles the delta buffers of retired entries so steady-state
	// installs allocate nothing (docs/performance.md).
	encScratch bdi.Encoded
	deltaPool  [][]int64
}

var _ llc.Cache = (*Cache)(nil)

// New builds a BΔI LLC over mem.
func New(cfg Config, mem *memory.Store) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg: cfg,
		tags: cache.New[tagPayload](cache.Config{
			Entries: cfg.Sets * cfg.TagWays, Ways: cfg.TagWays, Policy: "plru",
		}),
		usedSegs: make([]int, cfg.Sets),
		mem:      mem,
	}
	c.extra.ByKind = make(map[bdi.Kind]uint64)
	return c, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, mem *memory.Store) *Cache {
	c, err := New(cfg, mem)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements llc.Cache.
func (c *Cache) Name() string { return "BDI" }

// Extra returns BΔI-specific statistics.
func (c *Cache) Extra() ExtraStats { return c.extra }

func (c *Cache) setOf(addr line.Addr) int {
	return int(addr.BlockNumber() % uint64(c.cfg.Sets))
}

// segsFor returns the segment footprint of an encoded block.
func segsFor(e *bdi.Encoded) int {
	s := (e.SizeBytes() + segmentBytes - 1) / segmentBytes
	if s < 1 {
		s = 1
	}
	return s
}

// Read implements llc.Cache.
//
//thesaurus:hotpath
func (c *Cache) Read(addr line.Addr) (line.Line, bool) {
	addr = addr.LineAddr()
	c.stats.Reads++
	if e, _ := c.tags.Lookup(addr); e != nil {
		c.stats.ReadHits++
		data, err := bdi.Decompress(e.Payload.enc)
		if err != nil {
			panic(err)
		}
		return data, true
	}
	data := c.mem.Read(addr, memory.Fill)
	c.stats.Fills++
	c.install(addr, data, false)
	return data, false
}

// Write implements llc.Cache: the new value is recompressed, which may
// change the block's size and force evictions within the set (§5.4.2's
// counterpart in BΔI).
//
//thesaurus:hotpath
func (c *Cache) Write(addr line.Addr, data line.Line) bool {
	addr = addr.LineAddr()
	c.stats.Writes++
	if e, _ := c.tags.Lookup(addr); e != nil {
		c.stats.WriteHits++
		set := c.setOf(addr)
		c.usedSegs[set] -= e.Payload.segs
		// Recompress in place: the payload keeps its delta buffer across
		// re-encodings, so steady-state write hits allocate nothing. segs
		// stays 0 while makeRoom runs (the entry has no footprint during
		// the re-fit, exactly as when the payload was wiped wholesale).
		e.Payload.segs = 0
		bdi.CompressInto(&e.Payload.enc, &data)
		need := segsFor(&e.Payload.enc)
		c.makeRoom(addr, need)
		e.Payload.segs = need
		c.usedSegs[set] += need
		e.Dirty = true
		return true
	}
	c.install(addr, data, true)
	return false
}

// install compresses and inserts a new line.
func (c *Cache) install(addr line.Addr, data line.Line, dirty bool) {
	enc := &c.encScratch
	bdi.CompressInto(enc, &data)
	need := segsFor(enc)
	set := c.setOf(addr)

	e, _, evicted, had := c.tags.Insert(addr)
	if had {
		c.retire(set, evicted)
	}
	c.makeRoom(addr, need)
	// Deep-copy the scratch encoding into the freshly zeroed payload,
	// backing it with a recycled delta buffer when one is available.
	var buf []int64
	if n := len(c.deltaPool); n > 0 {
		buf, c.deltaPool = c.deltaPool[n-1], c.deltaPool[:n-1]
	}
	e.Payload.enc = *enc
	e.Payload.enc.Deltas = append(buf[:0], enc.Deltas...)
	e.Payload.segs = need
	e.Dirty = dirty
	c.usedSegs[set] += need

	c.extra.Insertions++
	c.extra.ByKind[enc.Kind]++
	if enc.Compressed() {
		c.extra.Compressed++
	}
}

// makeRoom evicts additional lines from addr's set until need segments
// are free. The just-inserted/updated tag is MRU and thus never the PLRU
// victim while other candidates remain.
func (c *Cache) makeRoom(addr line.Addr, need int) {
	set := c.setOf(addr)
	budget := c.cfg.segsPerSet()
	for c.usedSegs[set]+need > budget {
		idx := c.tags.ValidVictimIndex(addr)
		if idx < 0 {
			panic("bdicache: no evictable line in an over-budget set")
		}
		old := c.tags.InvalidateIndex(idx)
		c.retire(set, old)
		c.extra.SpaceEvictions++
	}
}

// retire writes back a displaced line, releases its segments, and
// reclaims its delta buffer for the install pool.
func (c *Cache) retire(set int, evicted cache.Entry[tagPayload]) {
	c.usedSegs[set] -= evicted.Payload.segs
	if evicted.Dirty {
		data, err := bdi.Decompress(evicted.Payload.enc)
		if err != nil {
			panic(err)
		}
		c.mem.Write(evicted.Addr, data, memory.Writeback)
		c.stats.Writebacks++
	}
	if cap(evicted.Payload.enc.Deltas) > 0 {
		c.deltaPool = append(c.deltaPool, evicted.Payload.enc.Deltas[:0])
	}
}

// DecompressionCycles reports BΔI's one-cycle decompression latency.
func (c *Cache) DecompressionCycles() float64 { return 1 }

// Stats implements llc.Cache.
func (c *Cache) Stats() llc.Stats { return c.stats }

// ResetStats implements llc.Cache.
func (c *Cache) ResetStats() {
	c.stats = llc.Stats{}
	c.extra = ExtraStats{ByKind: make(map[bdi.Kind]uint64)}
	c.tags.ResetStats()
}

// Footprint implements llc.Cache.
func (c *Cache) Footprint() llc.Footprint {
	used := 0
	for _, s := range c.usedSegs {
		used += s
	}
	return llc.Footprint{
		ResidentLines:  c.tags.CountValid(),
		DataBytesUsed:  used * segmentBytes,
		DataBytesTotal: c.cfg.Sets * c.cfg.segsPerSet() * segmentBytes,
	}
}

// Snapshot is the BΔI-specific release snapshot (the Fig. 17-adjacent
// encoding-mix counters).
type Snapshot struct {
	Extra ExtraStats
}

// Clone implements llc.ExtraSnapshot, deep-copying the ByKind histogram.
func (s *Snapshot) Clone() llc.ExtraSnapshot {
	cp := &Snapshot{Extra: s.Extra}
	if s.Extra.ByKind != nil {
		cp.Extra.ByKind = make(map[bdi.Kind]uint64, len(s.Extra.ByKind))
		for k, v := range s.Extra.ByKind {
			cp.Extra.ByKind[k] = v
		}
	}
	return cp
}

// Release implements llc.Cache: it extracts the statistics snapshot and
// frees the tag array and the recycled delta buffers. The cache must not
// be used afterwards.
func (c *Cache) Release() llc.StatsSnapshot {
	if c.tags == nil {
		panic("bdicache: Release called twice")
	}
	snap := (&Snapshot{Extra: c.extra}).Clone()
	c.tags = nil
	c.usedSegs = nil
	c.deltaPool = nil
	return llc.StatsSnapshot{Design: c.Name(), Stats: c.stats, Extra: snap}
}

// CheckInvariants validates the per-set segment accounting.
func (c *Cache) CheckInvariants() error {
	sums := make([]int, c.cfg.Sets)
	var err error
	c.tags.ForEach(func(_ int, e *cache.Entry[tagPayload]) {
		set := c.setOf(e.Addr)
		sums[set] += e.Payload.segs
		if e.Payload.segs <= 0 || e.Payload.segs > line.Size/segmentBytes {
			err = fmt.Errorf("line %#x: bad segment count %d", uint64(e.Addr), e.Payload.segs)
		}
	})
	if err != nil {
		return err
	}
	for s := range sums {
		if sums[s] != c.usedSegs[s] {
			return fmt.Errorf("set %d: usedSegs=%d, tags sum to %d", s, c.usedSegs[s], sums[s])
		}
		if sums[s] > c.cfg.segsPerSet() {
			return fmt.Errorf("set %d: %d segments exceed budget %d", s, sums[s], c.cfg.segsPerSet())
		}
	}
	return nil
}
