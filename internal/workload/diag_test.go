package workload

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/diffenc"
	"repro/internal/line"
	"repro/internal/lsh"
)

// TestDiagMcfClusters is a diagnostic for profile calibration: it prints
// the fingerprint population and intra-cluster diff sizes of the mcf
// node region. Run with -v to see the report.
func TestDiagMcfClusters(t *testing.T) {
	p, err := ProfileByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	// Unwrap the node RecordsGen from the region mixture.
	var gen *RecordsGen
	for _, r := range p.Regions {
		if mix, ok := r.Gen.(*MixGen); ok {
			for _, g := range mix.gens {
				if rec, ok := g.(*RecordsGen); ok && rec.RecordSize == 68 {
					gen = rec
				}
			}
		}
	}
	if gen == nil {
		t.Fatal("mcf node generator not found")
	}
	h := lsh.MustNew(lsh.DefaultConfig())

	const n = 8192
	byFP := make(map[lsh.Fingerprint][]int)
	lines := make([]line.Line, n)
	for i := 0; i < n; i++ {
		lines[i] = gen.Line(i, 0)
		fp := h.Fingerprint(&lines[i])
		byFP[fp] = append(byFP[fp], i)
	}
	t.Logf("distinct fingerprints: %d for %d lines", len(byFP), n)

	// Per-fingerprint: diff of each member against the first (clusteroid).
	var diffs []int
	var zeroDiffWins int
	for _, members := range byFP {
		base := &lines[members[0]]
		for _, m := range members[1:] {
			d := line.DiffBytes(&lines[m], base)
			diffs = append(diffs, d)
			enc := diffenc.Encode(&lines[m], base)
			if enc.Format == diffenc.FormatZeroDiff {
				zeroDiffWins++
			}
		}
	}
	sort.Ints(diffs)
	if len(diffs) > 0 {
		sum := 0
		for _, d := range diffs {
			sum += d
		}
		t.Logf("diff vs clusteroid: mean=%.1f p50=%d p90=%d  0+D wins=%d/%d (%.1f%%)",
			float64(sum)/float64(len(diffs)), diffs[len(diffs)/2], diffs[len(diffs)*9/10],
			zeroDiffWins, len(diffs), 100*float64(zeroDiffWins)/float64(len(diffs)))
	}
	// Phase-class analysis: lines in the same (phase, proto-run) bucket.
	rs := gen
	classOf := func(i int) string {
		phase := (i * line.Size) % rs.RecordSize
		r := i * line.Size / rs.RecordSize
		proto := (r / rs.ProtoRun) % len(rs.protos)
		return fmt.Sprintf("%d/%d", phase, proto)
	}
	classMembers := map[string][]int{}
	for i := 0; i < n; i++ {
		classMembers[classOf(i)] = append(classMembers[classOf(i)], i)
	}
	var intraSum, intraN int
	for _, mem := range classMembers {
		for j := 1; j < len(mem) && j < 40; j++ {
			intraSum += line.DiffBytes(&lines[mem[0]], &lines[mem[j]])
			intraN++
		}
	}
	if intraN > 0 {
		t.Logf("same (phase,proto) class diff: mean=%.1f over %d pairs (classes=%d)",
			float64(intraSum)/float64(intraN), intraN, len(classMembers))
	}
	// How coherently does each class map to fingerprints?
	classFPs := map[string]map[lsh.Fingerprint]int{}
	fpClasses := map[lsh.Fingerprint]map[string]int{}
	for i := 0; i < n; i++ {
		c := classOf(i)
		fp := h.Fingerprint(&lines[i])
		if classFPs[c] == nil {
			classFPs[c] = map[lsh.Fingerprint]int{}
		}
		classFPs[c][fp]++
		if fpClasses[fp] == nil {
			fpClasses[fp] = map[string]int{}
		}
		fpClasses[fp][c]++
	}
	totFrag, maxFrag := 0, 0
	for _, m := range classFPs {
		totFrag += len(m)
		if len(m) > maxFrag {
			maxFrag = len(m)
		}
	}
	totShare := 0
	for _, m := range fpClasses {
		totShare += len(m)
	}
	t.Logf("class→fp fragmentation: mean=%.2f max=%d; fp→class sharing: mean=%.2f",
		float64(totFrag)/float64(len(classFPs)), maxFrag,
		float64(totShare)/float64(len(fpClasses)))
}
