package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/memory"
)

// Profile is one SPEC CPU 2017-named synthetic workload. The content and
// pattern parameters are chosen so the per-benchmark compression and
// sensitivity *shape* of the paper's evaluation reproduces (see DESIGN.md
// for the substitution argument and EXPERIMENTS.md for the calibration).
type Profile struct {
	Name string
	// Sensitive marks the cache-sensitive subset (doubling the LLC
	// improves MPKI by >10%, §6.1).
	Sensitive bool
	Seed      uint64
	Regions   []RegionSpec
	Pattern   PatternSpec
}

// Generate populates a fresh image and returns the access stream.
func (p Profile) Generate(accesses int) *Generated {
	img := memory.NewStore()
	s := newStream(p.Seed, p.Regions, p.Pattern, accesses, img)
	return &Generated{Image: img, Stream: s}
}

// AppendKey appends a canonical binary descriptor of everything the
// profile's generated trace depends on. The artifact cache hashes it into
// a recording's content address, so every parameter that influences
// Generate must be included (Sensitive is reporting metadata only and is
// deliberately excluded).
func (p Profile) AppendKey(dst []byte) []byte {
	dst = keyString(dst, p.Name)
	dst = keyU64(dst, p.Seed,
		math.Float64bits(p.Pattern.SeqFraction),
		math.Float64bits(p.Pattern.Skew),
		math.Float64bits(p.Pattern.WriteFraction),
		math.Float64bits(p.Pattern.GapMean),
		uint64(p.Pattern.PhaseEvery), uint64(p.Pattern.PhaseGroups),
		uint64(len(p.Regions)))
	for _, r := range p.Regions {
		dst = keyString(dst, r.Name)
		dst = keyU64(dst, uint64(r.Lines), math.Float64bits(r.Weight),
			uint64(int64(r.Group)))
		dst = r.Gen.AppendKey(dst)
	}
	return dst
}

// Field constructors: expected per-record diff bytes against another
// cluster member ≈ Σ 2·MutProb·VarBytes (both records mutate
// independently), scaled by 64/recordSize per line.

func ptrField(mut float64) Field {
	return Field{Width: 8, Kind: FieldPtr, VarBytes: 3, MutProb: mut}
}
func intField(w, varBytes int, mut float64) Field {
	return Field{Width: w, Kind: FieldInt, VarBytes: varBytes, MutProb: mut}
}
func floatField(varBytes int, mut float64) Field {
	return Field{Width: 8, Kind: FieldFloat, VarBytes: varBytes, MutProb: mut}
}
func constField(w int) Field { return Field{Width: w, Kind: FieldConst} }
func seqField(w int) Field   { return Field{Width: w, Kind: FieldSeq} }
func randField(w, varBytes int) Field {
	return Field{Width: w, Kind: FieldRand, VarBytes: varBytes}
}

// wideGen builds a "compressible with a large diff" region: records whose
// lines share structure but differ in ~35-45 bytes of *similar* values
// (neighbouring grid samples, pixel gradients) — the texture of the FP
// and media benchmarks: high Fig. 15 compressibility, low Fig. 13a ratio,
// large Fig. 18 diffs. Because the per-byte deltas are small, the
// sign-quantized LSH still clusters the lines; fully random wide diffs
// would scatter the fingerprints and fall back to raw.
func wideGen(seed uint64, nFields int) LineGen {
	fields := make([]Field, 16)
	for i := range fields {
		if i < nFields {
			fields[i] = intField(8, 6, 1.0) // all 6 low bytes nudged every record
		} else {
			fields[i] = constField(8)
		}
	}
	return NewRecordsGen(seed, 128, 8, 16, fields)
}
func zeroField(w int) Field { return Field{Width: w, Kind: FieldZero} }

// mcfNodeFields mirrors Listing 1: the 68-byte node record whose
// misalignment to 64-byte lines creates the paper's motivating clusters.
func mcfNodeFields() []Field {
	return []Field{
		intField(8, 3, 0.12), // potential
		intField(4, 1, 0.1),  // orientation
		ptrField(0.15),       // child
		ptrField(0.15),       // pred
		ptrField(0.1),        // sibling
		ptrField(0.08),       // basic_arc
		intField(8, 2, 0.1),  // flow
		zeroField(8),         // depth (mostly zero in practice)
		seqField(4),          // number (node id: unique per record, defeating
		//              exact deduplication as in Fig. 2)
		intField(4, 1, 0.05), // time
	}
}

// kLines converts kilobytes to cachelines.
func kLines(kb int) int { return kb * 1024 / 64 }

// seedOf derives a stable per-profile seed.
func seedOf(name string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return h
}

// profiles is built once at init; order matches the paper's figures.
var profiles []Profile

// Profiles returns all 22 benchmark profiles in alphabetical order (the
// order of Figs. 1 and 15-18).
func Profiles() []Profile {
	out := append([]Profile(nil), profiles...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// Names returns all profile names in alphabetical order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// Sensitive returns the names of the cache-sensitive subset.
func Sensitive() []string {
	var out []string
	for _, p := range Profiles() {
		if p.Sensitive {
			out = append(out, p.Name)
		}
	}
	return out
}

func init() {
	// Shorthand pattern builders: stream = mostly-sequential sweeps
	// (scientific kernels); hot = skewed random reuse (pointer codes).
	stream := func(write float64) PatternSpec {
		return PatternSpec{SeqFraction: 0.85, Skew: 1.2, WriteFraction: write, GapMean: 24}
	}
	hot := func(skew, write float64) PatternSpec {
		return PatternSpec{SeqFraction: 0.15, Skew: skew, WriteFraction: write, GapMean: 24}
	}

	add := func(name string, sensitive bool, pat PatternSpec, regions ...RegionSpec) {
		profiles = append(profiles, Profile{
			Name: name, Sensitive: sensitive, Seed: seedOf(name),
			Regions: regions, Pattern: pat,
		})
	}
	seed := seedOf

	// --- Cache-insensitive benchmarks: working sets that either fit the
	// --- baseline LLC or stream far beyond even a doubled LLC.

	// deepsjeng: chess engine; a transposition table of high-entropy
	// hashed positions probed nearly uniformly over ~16MB.
	add("deepsjeng", false, hot(1.0, 0.25),
		RegionSpec{Name: "ttable", Lines: kLines(16384), Weight: 1, Gen: NewMixGen(seed("deepsjeng.m"),
			[]LineGen{
				NewRandomGen(seed("deepsjeng.tt")), // hashed positions
				NewZeroGen(seed("deepsjeng.z"), 0.4, 8),
			},
			[]float64{0.98, 0.02}), Group: -1},
	)

	// exchange2: tiny-footprint integer puzzle; everything fits under the
	// LLC, so compression is irrelevant to performance.
	add("exchange2", false, hot(2.0, 0.15),
		RegionSpec{Name: "boards", Lines: kLines(448), Weight: 1, Gen: NewRandomGen(seed("exchange2.b")), Group: -1},
		RegionSpec{Name: "tables", Lines: kLines(64), Weight: 0.3, Gen: NewZeroGen(seed("exchange2.z"), 0.4, 8), Group: -1},
	)

	// lbm: lattice-Boltzmann; streams double-precision grids whose
	// mantissas are effectively random, with a thin compressible fringe.
	add("lbm", false, stream(0.35),
		RegionSpec{Name: "grid", Lines: kLines(10240), Weight: 1, Gen: NewMixGen(seed("lbm.m"),
			[]LineGen{
				wideGen(seed("lbm.w"), 16), // ~45B diffs: barely compressible
				NewRecordsGen(seed("lbm.g"), 96, 6, 16, []Field{
					floatField(5, 0.8), floatField(5, 0.8), floatField(5, 0.8),
					floatField(4, 0.7), floatField(4, 0.7), floatField(4, 0.7),
					constField(8), constField(8), constField(8),
					floatField(2, 0.4), constField(8), constField(8),
				}),
				NewZeroGen(seed("lbm.z"), 0.3, 6),
			}, []float64{0.93, 0.06, 0.01}), Group: -1},
	)

	// bwaves: blast-wave CFD; two grid families with visibly different
	// intra-cluster noise (the two diff-size levels of Fig. 19) inside a
	// mostly incompressible flow field.
	add("bwaves", false, stream(0.3),
		RegionSpec{Name: "gridA", Lines: kLines(4096), Weight: 1, Gen: NewMixGen(seed("bwaves.ma"),
			[]LineGen{
				NewArrayGen(seed("bwaves.arr"), 8, 32, 0x3FF0_0000_0000_0000, 1<<30, 1<<28),
				wideGen(seed("bwaves.wa"), 16),
				NewRecordsGen(seed("bwaves.a"), 136, 12, 8, []Field{
					floatField(2, 0.5), floatField(2, 0.5), floatField(2, 0.5), floatField(2, 0.5),
					floatField(1, 0.4), floatField(1, 0.4), floatField(1, 0.4), floatField(1, 0.4),
					constField(8), constField(8), constField(8), constField(8),
					constField(8), constField(8), floatField(1, 0.3), floatField(1, 0.3),
					constField(8),
				}),
			}, []float64{0.15, 0.55, 0.30}), Group: 0},
		RegionSpec{Name: "gridB", Lines: kLines(4096), Weight: 1, Gen: NewMixGen(seed("bwaves.mb"),
			[]LineGen{
				wideGen(seed("bwaves.wb"), 16),
				NewRecordsGen(seed("bwaves.b"), 136, 12, 8, []Field{
					floatField(6, 0.8), floatField(6, 0.8), floatField(6, 0.8), floatField(6, 0.8),
					floatField(5, 0.7), floatField(5, 0.7), floatField(5, 0.7), floatField(5, 0.7),
					constField(8), constField(8), constField(8), constField(8),
					floatField(2, 0.4), floatField(2, 0.4), constField(8), constField(8),
					constField(8),
				}),
			}, []float64{0.65, 0.35}), Group: 1},
	)
	profiles[len(profiles)-1].Pattern.PhaseEvery = 40000
	profiles[len(profiles)-1].Pattern.PhaseGroups = 2

	// fotonik3d: FDTD electromagnetics; smooth field arrays with moderate
	// dynamic range (BΔI's favourite shape) plus random boundary tables.
	add("fotonik3d", false, stream(0.3),
		RegionSpec{Name: "fields", Lines: kLines(6144), Weight: 1, Gen: NewArrayGen(seed("fotonik3d.f"), 8, 48, 0x3f20_0000_0000_0000, 1<<28, 1<<26), Group: -1},
		RegionSpec{Name: "bc", Lines: kLines(2048), Weight: 0.55, Gen: NewRandomGen(seed("fotonik3d.r")), Group: -1},
	)

	// cactuBSSN: numerical relativity; many distinct grid-function record
	// shapes (the high cluster count of Fig. 5) with wide diffs.
	{
		var regs []RegionSpec
		for g := 0; g < 8; g++ {
			regs = append(regs, RegionSpec{
				Name: fmt.Sprintf("gf%d", g), Lines: kLines(768), Weight: 1,
				Gen: NewMixGen(seed(fmt.Sprintf("cactu.m%d", g)), []LineGen{
					wideGen(seed(fmt.Sprintf("cactu.w%d", g)), 16),
					NewRecordsGen(seed(fmt.Sprintf("cactu.%d", g)), 120, 4, 8, []Field{
						floatField(5, 0.8), floatField(5, 0.8), floatField(5, 0.8),
						floatField(4, 0.7), floatField(4, 0.7), floatField(4, 0.7),
						floatField(3, 0.6), floatField(3, 0.6), floatField(3, 0.6),
						constField(8), constField(8), constField(8),
						constField(8), constField(8), constField(8),
					}),
				}, []float64{0.7, 0.3}), Group: -1,
			})
		}
		regs = append(regs, RegionSpec{
			Name: "idx", Lines: kLines(1024), Weight: 0.6,
			Gen: NewArrayGen(seed("cactu.idx"), 4, 64, 1<<16, 1<<10, 1<<7), Group: -1,
		})
		add("cactuBSSN", false, stream(0.3), regs...)
	}

	// nab: molecular dynamics on nucleic acids; mostly incompressible
	// coordinate noise around clustered atom topology records.
	add("nab", false, stream(0.25),
		RegionSpec{Name: "atoms", Lines: kLines(8192), Weight: 1, Gen: NewMixGen(seed("nab.m"),
			[]LineGen{
				wideGen(seed("nab.w"), 14),
				NewRecordsGen(seed("nab.a"), 112, 12, 6, []Field{
					floatField(4, 0.6), floatField(4, 0.6), floatField(4, 0.6),
					floatField(3, 0.5), floatField(3, 0.5),
					ptrField(0.4), ptrField(0.4),
					constField(8), constField(8), constField(8),
					seqField(8), zeroField(8), constField(8), constField(8),
				}),
				NewZeroGen(seed("nab.z"), 0.3, 6),
				NewArrayGen(seed("nab.arr"), 4, 48, 1<<20, 1<<12, 1<<6),
			}, []float64{0.70, 0.18, 0.02, 0.10}), Group: -1},
	)

	// namd: molecular dynamics; tighter clusters than nab and a
	// zero-heavy force buffer, still streaming-dominated.
	add("namd", false, stream(0.3),
		RegionSpec{Name: "atoms", Lines: kLines(8192), Weight: 1, Gen: NewMixGen(seed("namd.m"),
			[]LineGen{
				wideGen(seed("namd.w"), 13),
				NewRecordsGen(seed("namd.a"), 104, 12, 8, []Field{
					floatField(3, 0.5), floatField(3, 0.5), floatField(3, 0.5),
					floatField(2, 0.4), floatField(2, 0.4),
					ptrField(0.3), constField(8), constField(8),
					seqField(8), constField(8), constField(8),
					intField(8, 1, 0.2), constField(8),
				}),
				NewZeroGen(seed("namd.z"), 0.35, 8),
				NewArrayGen(seed("namd.arr"), 4, 48, 1<<20, 1<<12, 1<<6),
			}, []float64{0.60, 0.28, 0.02, 0.10}), Group: -1},
	)

	// povray: ray tracer; fits comfortably in the LLC, with a handful of
	// very large object clusters (Fig. 5's 1200-member clusters).
	add("povray", false, hot(1.6, 0.2),
		RegionSpec{Name: "objects", Lines: kLines(512), Weight: 1, Gen: NewMixGen(seed("povray.m"),
			[]LineGen{
				NewRecordsGen(seed("povray.o"), 96, 3, 256, []Field{
					floatField(4, 0.6), floatField(4, 0.6), floatField(4, 0.6),
					ptrField(0.5), ptrField(0.4),
					constField(8), constField(8), constField(8),
					seqField(8), constField(8), constField(8), constField(8),
				}),
				NewRandomGen(seed("povray.r")),
			}, []float64{0.68, 0.32}), Group: -1},
		RegionSpec{Name: "tables", Lines: kLines(96), Weight: 0.4, Gen: NewDupPoolGen(seed("povray.d"), 48), Group: -1},
	)

	// x264: video encoder; pixel macroblocks (2-byte elements, small
	// deltas) and motion-vector records, streamed per frame.
	add("x264", false, stream(0.35),
		RegionSpec{Name: "frames", Lines: kLines(5120), Weight: 1, Gen: NewArrayGen(seed("x264.p"), 2, 8, 0x4000, 0x1800, 20), Group: -1},
		RegionSpec{Name: "mv", Lines: kLines(768), Weight: 0.35, Gen: NewRecordsGen(seed("x264.mv"), 56, 16, 8, []Field{
			intField(4, 1, 0.5), intField(4, 1, 0.5), intField(8, 2, 0.4),
			ptrField(0.4), constField(8), constField(8), intField(8, 1, 0.3), zeroField(8),
		}), Group: -1},
	)

	// perlbench: interpreter; SV/HV headers from a few allocation sites
	// with small live diffs, plus duplicated opcode tables. Fits the LLC.
	add("perlbench", false, hot(2.2, 0.2),
		RegionSpec{Name: "sv", Lines: kLines(640), Weight: 1, Gen: NewRecordsGen(seed("perl.sv"), 80, 10, 8, []Field{
			ptrField(0.25), ptrField(0.2), ptrField(0.15),
			intField(8, 2, 0.3), seqField(4), intField(4, 1, 0.15),
			constField(8), constField(8), zeroField(8), constField(8), constField(8),
		}), Group: -1},
		RegionSpec{Name: "optab", Lines: kLines(192), Weight: 0.2, Gen: NewDupPoolGen(seed("perl.d"), 256), Group: -1},
	)

	// leela: Go engine; tree nodes with small counters and pointers, and
	// a zero-initialized statistics pool. Fits the LLC.
	add("leela", false, hot(2.0, 0.25),
		RegionSpec{Name: "nodes", Lines: kLines(512), Weight: 1, Gen: NewRecordsGen(seed("leela.n"), 72, 24, 6, []Field{
			ptrField(0.5), ptrField(0.4),
			intField(4, 1, 0.5), intField(4, 1, 0.4), intField(8, 2, 0.3),
			floatField(2, 0.4), constField(8), constField(8), zeroField(8), intField(8, 1, 0.2),
		}), Group: -1},
		RegionSpec{Name: "stats", Lines: kLines(160), Weight: 0.35, Gen: NewZeroGen(seed("leela.z"), 0.3, 6), Group: -1},
		RegionSpec{Name: "pattern", Lines: kLines(128), Weight: 0.25, Gen: NewArrayGen(seed("leela.a"), 4, 32, 1<<10, 1<<8, 1<<6), Group: -1},
	)

	// imagick: image processing; nearly every line clusters but with
	// large diffs (the paper reports >90% compressible, 32.6B average
	// diff, and only 1.3× compression).
	add("imagick", false, stream(0.4),
		RegionSpec{Name: "pixels", Lines: kLines(5120), Weight: 1, Gen: NewMixGen(seed("imagick.m"),
			[]LineGen{
				NewRecordsGen(seed("imagick.p"), 64, 16, 16, []Field{
					intField(8, 6, 1.0), intField(8, 6, 1.0), intField(8, 6, 1.0), intField(8, 6, 1.0),
					intField(8, 6, 1.0), intField(8, 6, 1.0), constField(8), constField(8),
				}),
				NewArrayGen(seed("imagick.a"), 2, 32, 0x3000, 0x100, 40),
			}, []float64{0.65, 0.35}), Group: -1},
	)

	// --- Cache-sensitive benchmarks: working sets between the 1MB and
	// --- 2MB design points, where compression buys real hits.

	// parest: finite-element solver; sparse-matrix rows with moderate
	// diffs and index arrays.
	add("parest", true, hot(2.6, 0.25),
		RegionSpec{Name: "rows", Lines: kLines(3584), Weight: 1, Gen: NewRecordsGen(seed("parest.r"), 88, 8, 6, []Field{
			floatField(3, 0.5), floatField(3, 0.5), floatField(3, 0.4),
			ptrField(0.3), seqField(4), intField(4, 1, 0.3),
			constField(8), constField(8), constField(8), zeroField(8), constField(8), constField(8),
		}), Group: -1},
		RegionSpec{Name: "idx", Lines: kLines(1024), Weight: 0.5, Gen: NewArrayGen(seed("parest.i"), 4, 32, 1<<20, 1<<12, 1<<8), Group: -1},
	)

	// xz: compressor; high-entropy data buffers beside tight dictionary
	// metadata and zero-initialized probability tables.
	add("xz", true, hot(2.4, 0.3),
		RegionSpec{Name: "buf", Lines: kLines(1536), Weight: 0.6, Gen: NewRandomGen(seed("xz.b")), Group: -1},
		RegionSpec{Name: "dict", Lines: kLines(2560), Weight: 1, Gen: NewRecordsGen(seed("xz.d"), 64, 12, 8, []Field{
			intField(4, 1, 0.5), seqField(4), ptrField(0.3), intField(8, 2, 0.3),
			constField(8), constField(8), zeroField(8), constField(8), constField(8),
		}), Group: -1},
		RegionSpec{Name: "prob", Lines: kLines(896), Weight: 0.3, Gen: NewZeroGen(seed("xz.z"), 0.55, 8), Group: -1},
	)

	// cam4: atmosphere model; phases alternate between tight column
	// records and bursty incompressible physics tables (Fig. 19's bursts).
	add("cam4", true, hot(2.4, 0.3),
		RegionSpec{Name: "columns", Lines: kLines(3072), Weight: 1, Gen: NewRecordsGen(seed("cam4.c"), 96, 12, 12, []Field{
			floatField(2, 0.5), floatField(2, 0.5), floatField(2, 0.5),
			floatField(2, 0.4), constField(8), constField(8),
			constField(8), constField(8), zeroField(8),
			seqField(8), constField(8), constField(8),
		}), Group: 0},
		RegionSpec{Name: "grids", Lines: kLines(1024), Weight: 0.4, Gen: NewArrayGen(seed("cam4.g"), 4, 48, 1<<22, 1<<12, 1<<6), Group: 0},
		RegionSpec{Name: "physics", Lines: kLines(1280), Weight: 0.5, Gen: NewRandomGen(seed("cam4.p")), Group: 1},
		RegionSpec{Name: "tracers", Lines: kLines(896), Weight: 0.25, Gen: NewZeroGen(seed("cam4.z"), 0.5, 8), Group: 0},
	)
	profiles[len(profiles)-1].Pattern.PhaseEvery = 60000
	profiles[len(profiles)-1].Pattern.PhaseGroups = 2

	// wrf: weather model; 4-byte field arrays with small deltas (good for
	// both BΔI and clustering) plus tightly clustered column records.
	add("wrf", true, hot(2.4, 0.3),
		RegionSpec{Name: "fields", Lines: kLines(2560), Weight: 1, Gen: NewArrayGen(seed("wrf.f"), 4, 48, 1<<24, 1<<14, 1<<6), Group: -1},
		RegionSpec{Name: "cols", Lines: kLines(2048), Weight: 0.8, Gen: NewRecordsGen(seed("wrf.c"), 80, 8, 10, []Field{
			floatField(2, 0.4), floatField(2, 0.4), floatField(2, 0.3),
			constField(8), constField(8), constField(8),
			seqField(8), zeroField(8), constField(8), constField(8),
		}), Group: -1},
	)

	// mcf: the paper's motivating example (Fig. 2, Listing 1): 68-byte
	// node records misaligned to cachelines, pointer-heavy, with ~9-byte
	// average diffs; stable over time (Fig. 19).
	add("mcf", true, hot(2.6, 0.25),
		RegionSpec{Name: "nodes", Lines: kLines(4096), Weight: 1, Gen: NewMixGen(seed("mcf.mix"),
			[]LineGen{
				NewRecordsGen(seed("mcf.n"), 68, 6, 96, mcfNodeFields()),
				NewZeroGen(seed("mcf.nz"), 0.15, 4), // freed node slots
			}, []float64{0.98, 0.02}), Group: -1},
		RegionSpec{Name: "arcs", Lines: kLines(1536), Weight: 0.6, Gen: NewRecordsGen(seed("mcf.a"), 72, 4, 96, []Field{
			ptrField(0.12), ptrField(0.12), ptrField(0.08),
			intField(8, 2, 0.08), seqField(8),
			constField(8), constField(8), zeroField(8), intField(8, 1, 0.05),
		}), Group: -1},
		RegionSpec{Name: "slack", Lines: kLines(512), Weight: 0.1, Gen: NewZeroGen(seed("mcf.z"), 0.4, 6), Group: -1},
	)

	// gcc: compiler; RTL/tree nodes dominated by pointers with few live
	// low bytes, many identical template nodes, ample zero padding.
	add("gcc", true, hot(2.6, 0.25),
		RegionSpec{Name: "rtl", Lines: kLines(3072), Weight: 1, Gen: NewRecordsGen(seed("gcc.r"), 64, 10, 24, []Field{
			ptrField(0.15), ptrField(0.12), ptrField(0.1),
			seqField(4), intField(4, 1, 0.2),
			constField(8), zeroField(8), constField(8), constField(8),
		}), Group: -1},
		RegionSpec{Name: "pool", Lines: kLines(384), Weight: 0.2, Gen: NewDupPoolGen(seed("gcc.d"), 64), Group: -1},
		RegionSpec{Name: "bss", Lines: kLines(768), Weight: 0.3, Gen: NewZeroGen(seed("gcc.z"), 0.3, 6), Group: -1},
	)

	// xalancbmk: XML transformer; small DOM nodes with tiny diffs
	// punctuated by rare 32-byte-diff string fragments (Fig. 19 spikes).
	add("xalancbmk", true, hot(2.4, 0.25),
		RegionSpec{Name: "dom", Lines: kLines(3584), Weight: 1, Gen: NewRecordsGen(seed("xalan.d"), 48, 10, 16, []Field{
			ptrField(0.15), ptrField(0.12),
			seqField(4), intField(4, 1, 0.2),
			constField(8), constField(8), zeroField(8),
		}), Group: -1},
		RegionSpec{Name: "strings", Lines: kLines(512), Weight: 0.12, Gen: NewRecordsGen(seed("xalan.s"), 64, 8, 8, []Field{
			intField(8, 5, 0.8), intField(8, 5, 0.8), intField(8, 5, 0.8), intField(8, 5, 0.8),
			constField(8), constField(8), constField(8), constField(8),
		}), Group: -1},
		RegionSpec{Name: "pool", Lines: kLines(512), Weight: 0.12, Gen: NewDupPoolGen(seed("xalan.p"), 256), Group: -1},
	)

	// omnetpp: discrete-event simulator; message/event objects from a few
	// allocation sites, near-identical up to ids and timestamps, with
	// much zeroed padding.
	add("omnetpp", true, hot(2.6, 0.3),
		RegionSpec{Name: "events", Lines: kLines(3584), Weight: 1, Gen: NewRecordsGen(seed("omnet.e"), 64, 6, 32, []Field{
			ptrField(0.06), ptrField(0.05),
			seqField(8), intField(4, 1, 0.1), intField(4, 1, 0.05),
			constField(8), constField(8), zeroField(8), zeroField(8),
		}), Group: -1},
		RegionSpec{Name: "queues", Lines: kLines(768), Weight: 0.25, Gen: NewZeroGen(seed("omnet.z"), 0.5, 6), Group: -1},
	)

	// roms: ocean model; vast near-uniform grid sheets (Fig. 5's largest
	// clusters) over a mostly-zero ocean mask: the headline compression.
	add("roms", true, hot(2.2, 0.25),
		RegionSpec{Name: "sheets", Lines: kLines(3584), Weight: 1, Gen: NewRecordsGen(seed("roms.s"), 128, 4, 512, []Field{
			floatField(1, 0.5), floatField(1, 0.5), floatField(1, 0.4), floatField(1, 0.4),
			seqField(8), constField(8), constField(8), constField(8),
			constField(8), constField(8), constField(8), constField(8),
			constField(8), constField(8), constField(8), constField(8),
		}), Group: -1},
		RegionSpec{Name: "mask", Lines: kLines(1024), Weight: 0.3, Gen: NewZeroGen(seed("roms.z"), 0.08, 4), Group: -1},
	)
}
