// Package workload synthesizes SPEC CPU 2017-like memory traces. We do
// not have the SPEC binaries or the paper's simulation infrastructure, so
// each benchmark is modelled by a profile that reproduces the properties
// cache compression actually depends on (DESIGN.md "Substitutions"):
//
//   - value structure across cachelines: clusters of near-identical lines
//     arising from records (often misaligned to the 64B line size, like
//     mcf's 68-byte node of Listing 1), exact duplicates, zero pages, and
//     low-dynamic-range arrays;
//   - value structure within cachelines (what BΔI exploits);
//   - cache pressure: working-set size and reuse locality relative to the
//     1MB/2MB LLC design points (the sensitive/insensitive split).
//
// Line contents are deterministic functions of (profile seed, region,
// line index, version), so traces are reproducible and writes preserve
// each region's cluster structure.
package workload

import (
	"encoding/binary"
	"math"

	"repro/internal/line"
	"repro/internal/xrand"
)

// LineGen produces the content of a region's lines. Version 0 is the
// pre-populated image; writes bump a line's version, yielding fresh but
// distribution-identical content.
type LineGen interface {
	// Line returns the content of line i at the given version.
	Line(i int, version uint32) line.Line
	// AppendKey appends a canonical binary descriptor of the generator —
	// a type tag plus every parameter its output depends on — onto dst.
	// The artifact cache (internal/artifact) hashes the descriptor into
	// the content address of a recording, so any change to a generator's
	// parameters must change its key or stale recordings would be loaded.
	AppendKey(dst []byte) []byte
}

// lineRNG derives a deterministic per-(line, version) generator. It
// returns the generator by value so the per-line RNG of every generated
// line lives on the caller's stack instead of the heap.
func lineRNG(seed uint64, i int, version uint32) xrand.Rand {
	sm := xrand.NewSplitMix64(seed ^ uint64(i)*0x9e3779b97f4a7c15 ^ uint64(version)<<40)
	return xrand.Seeded(sm.Next())
}

// FieldKind describes one record field's value behaviour.
type FieldKind uint8

// Field kinds. The "variable bytes" of a field are the ones a mutation
// re-randomizes; keeping them few and low-order mirrors how real records
// differ (Fig. 2's mcf clusters).
const (
	// FieldPtr is a 8-byte pointer: 5 high bytes shared per prototype
	// (heap region), 3 low bytes variable.
	FieldPtr FieldKind = iota
	// FieldInt is a little-endian integer whose low VarBytes vary.
	FieldInt
	// FieldFloat is an IEEE-754 double with shared sign/exponent/high
	// mantissa and variable low mantissa bytes.
	FieldFloat
	// FieldZero is always zero.
	FieldZero
	// FieldConst is fixed per prototype and never mutated.
	FieldConst
	// FieldSeq holds the record's index (an id/sequence number/timestamp):
	// unique per record, so exact deduplication never fires on the record,
	// while two nearby records still differ in only the low byte or two.
	FieldSeq
	// FieldRand re-randomizes its VarBytes low bytes fully on every
	// record (hash keys, floating-point mantissas, measurement noise):
	// lines still cluster by their shared high bytes and surrounding
	// fields, but the diffs are wide — the "compressible with a large
	// diff" texture of imagick and the FP benchmarks (Fig. 18).
	FieldRand
)

// Field is one field of a record layout.
type Field struct {
	Width    int
	Kind     FieldKind
	VarBytes int     // how many low-order bytes vary when mutated
	MutProb  float64 // probability the field differs from its prototype
}

// RecordsGen fills a region with fixed-size records cycling through a set
// of prototypes; consecutive records share a prototype in runs, and record
// size need not divide the 64-byte line (misalignment phases multiply the
// cluster count, §1).
type RecordsGen struct {
	RecordSize int
	Fields     []Field
	ProtoRun   int // consecutive records sharing one prototype
	protos     [][]byte
	rngSeed    uint64
}

// NewRecordsGen builds a generator with protoCount prototypes.
func NewRecordsGen(seed uint64, recordSize, protoCount, protoRun int, fields []Field) *RecordsGen {
	if protoRun <= 0 {
		protoRun = 1
	}
	g := &RecordsGen{RecordSize: recordSize, Fields: fields, ProtoRun: protoRun, rngSeed: seed}
	rng := xrand.New(seed)
	for p := 0; p < protoCount; p++ {
		g.protos = append(g.protos, g.makeProto(rng))
	}
	total := 0
	for _, f := range fields {
		total += f.Width
	}
	if total != recordSize {
		panic("workload: field widths do not sum to record size")
	}
	return g
}

// makeProto generates one prototype record.
func (g *RecordsGen) makeProto(rng *xrand.Rand) []byte {
	buf := make([]byte, g.RecordSize)
	off := 0
	for _, f := range g.Fields {
		writeField(buf[off:off+f.Width], f, rng, true)
		off += f.Width
	}
	return buf
}

// perturb nudges the n low bytes of b by small signed deltas. Mutations
// are value-local — records of the same shape hold *similar* field values
// (nearby heap pointers, close counters, neighbouring grid samples) — so
// the byte positions differ but the magnitudes stay close. This is the
// property that lets the paper's sign-quantized LSH keep cluster members
// together (§4.1): large random byte swings would flip projection signs
// and scatter the cluster across fingerprints.
func perturb(b []byte, n int, rng *xrand.Rand) {
	if n > len(b) {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		b[i] = byte(int(b[i]) + rng.Intn(15) - 7)
	}
}

// writeField fills dst with a field value. full regenerates the entire
// field (prototype creation); otherwise only the variable low bytes are
// perturbed.
func writeField(dst []byte, f Field, rng *xrand.Rand, full bool) {
	switch f.Kind {
	case FieldZero:
		for i := range dst {
			dst[i] = 0
		}
	case FieldPtr:
		if full && len(dst) >= 8 {
			// A plausible user-space heap pointer: a per-prototype mmap
			// region in bytes 4-5 (different allocation sites land in
			// different regions), a 16MB arena in byte 3, and a random
			// offset in the low 3 bytes. Mutations stay arena-local, as
			// real allocators produce.
			binary.LittleEndian.PutUint64(dst, rng.Uint64n(1<<14)<<34|
				uint64(rng.Intn(4))<<24|rng.Uint64n(1<<24))
		}
		perturb(dst, f.VarBytes, rng)
	case FieldInt:
		if full {
			// Small integers, negative for half the prototypes: the
			// sign-extension bytes (0x00 vs 0xFF, cf. the
			// FFFFFFFFFECEF790 values in Fig. 2 of the paper) make
			// prototypes distinct under the sign-quantized LSH while
			// leaving intra-cluster diffs untouched.
			ext := byte(0)
			if rng.Bool(0.5) {
				ext = 0xFF
			}
			for i := range dst {
				dst[i] = ext
			}
			n := f.VarBytes
			if n > len(dst) {
				n = len(dst)
			}
			for i := 0; i < n; i++ {
				dst[i] = byte(rng.Uint32())
			}
			// A per-prototype magnitude byte just above the variable
			// range: integers from one allocation site share a baseline.
			if n < len(dst) {
				dst[n] = byte(rng.Uint32())
			}
		} else {
			perturb(dst, f.VarBytes, rng)
		}
	case FieldFloat:
		if full {
			v := (rng.Float64() + 0.5) * math.Pow(10, float64(rng.Intn(6)))
			binary.LittleEndian.PutUint64(dst, math.Float64bits(v))
		}
		perturb(dst, f.VarBytes, rng)
	case FieldConst, FieldRand:
		// Full random content at prototype creation; FieldRand's low
		// VarBytes are then re-randomized per record in record().
		if full {
			for i := range dst {
				dst[i] = byte(rng.Uint32())
			}
		}
	}
}

// record materializes record r at the given version into dst's backing
// storage (growing it only when the record exceeds dst's capacity) and
// returns the filled slice. Callers pass a stack scratch buffer so
// steady-state line generation never touches the heap.
func (g *RecordsGen) record(dst []byte, r int, version uint32) []byte {
	proto := g.protos[(r/g.ProtoRun)%len(g.protos)]
	buf := append(dst[:0], proto...)
	rng := lineRNG(g.rngSeed^0x7ec0, r, version)
	off := 0
	for _, f := range g.Fields {
		switch {
		case f.Kind == FieldSeq:
			// The record id, bumped on writes (e.g. a timestamp update).
			v := uint64(r) + uint64(version)<<24
			for i := 0; i < f.Width; i++ {
				buf[off+i] = byte(v)
				v >>= 8
			}
		case f.Kind == FieldRand:
			n := f.VarBytes
			if n > f.Width {
				n = f.Width
			}
			for i := 0; i < n; i++ {
				buf[off+i] = byte(rng.Uint32())
			}
		case f.MutProb > 0 && rng.Bool(f.MutProb):
			writeField(buf[off:off+f.Width], f, &rng, false)
		}
		off += f.Width
	}
	return buf
}

// recordScratchSize bounds the stack scratch for record assembly; every
// profile's RecordSize is far below this (the paper's examples are
// 64-136 bytes). Larger records fall back to a heap buffer.
const recordScratchSize = 256

// Line implements LineGen by assembling the records overlapping line i.
func (g *RecordsGen) Line(i int, version uint32) line.Line {
	var l line.Line
	var scratch [recordScratchSize]byte
	buf := scratch[:0]
	if g.RecordSize > recordScratchSize {
		buf = make([]byte, 0, g.RecordSize)
	}
	start := i * line.Size
	for off := 0; off < line.Size; {
		pos := start + off
		r := pos / g.RecordSize
		inRec := pos % g.RecordSize
		rec := g.record(buf, r, version)
		n := copy(l[off:], rec[inRec:])
		off += n
	}
	return l
}

// DupPoolGen draws every line verbatim from a small pool of full-line
// values: the exact-duplicate structure Dedup exploits.
type DupPoolGen struct {
	pool []line.Line
	seed uint64
}

// NewDupPoolGen builds a pool of poolSize random lines.
func NewDupPoolGen(seed uint64, poolSize int) *DupPoolGen {
	g := &DupPoolGen{seed: seed}
	rng := xrand.New(seed)
	for p := 0; p < poolSize; p++ {
		var l line.Line
		for i := range l {
			l[i] = byte(rng.Uint32())
		}
		g.pool = append(g.pool, l)
	}
	return g
}

// Line implements LineGen.
func (g *DupPoolGen) Line(i int, version uint32) line.Line {
	rng := lineRNG(g.seed^0xd09, i, version)
	return g.pool[rng.Intn(len(g.pool))]
}

// ZeroGen models zero-dominated regions (freshly mapped or cleared
// memory): most lines are all-zero, a fraction carry a few small non-zero
// bytes (0+diff candidates). Non-zero bytes live at a handful of fixed
// offsets — real structures keep their flags and counters at the same
// field positions — so dirty lines cluster instead of scattering across
// LSH fingerprints.
type ZeroGen struct {
	seed      uint64
	DirtyFrac float64
	DirtyMax  int   // max non-zero bytes on a dirty line
	positions []int // candidate offsets for the non-zero bytes
}

// NewZeroGen builds a zero-region generator.
func NewZeroGen(seed uint64, dirtyFrac float64, dirtyMax int) *ZeroGen {
	if dirtyMax <= 0 {
		dirtyMax = 8
	}
	g := &ZeroGen{seed: seed, DirtyFrac: dirtyFrac, DirtyMax: dirtyMax}
	rng := xrand.New(seed ^ 0x90515)
	perm := rng.Perm(line.Size)
	g.positions = perm[:12]
	return g
}

// Line implements LineGen.
func (g *ZeroGen) Line(i int, version uint32) line.Line {
	rng := lineRNG(g.seed^0x2e40, i, version)
	var l line.Line
	if rng.Bool(g.DirtyFrac) {
		n := 1 + rng.Intn(g.DirtyMax)
		if n > len(g.positions) {
			n = len(g.positions)
		}
		for k := 0; k < n; k++ {
			// Values span a wide range so dirty lines are near-duplicates
			// (0+diff material), not exact duplicates that would hand
			// Dedup artificial wins.
			l[g.positions[rng.Intn(len(g.positions))]] = byte(1 + rng.Intn(63))
		}
	}
	return l
}

// ArrayGen models arrays of fixed-width elements with a per-line base and
// small per-element deltas: the low-dynamic-range pattern BΔI compresses,
// which also clusters across lines when bases repeat.
type ArrayGen struct {
	seed      uint64
	ElemWidth int    // 2, 4, or 8 bytes
	Bases     int    // number of distinct base values across the region
	Base      uint64 // first base value
	BaseStep  uint64 // distance between bases
	Delta     uint64 // per-element delta range (exclusive)
}

// NewArrayGen builds an array-region generator.
func NewArrayGen(seed uint64, elemWidth, bases int, base, baseStep, delta uint64) *ArrayGen {
	if bases <= 0 {
		bases = 1
	}
	if delta == 0 {
		delta = 1
	}
	return &ArrayGen{seed: seed, ElemWidth: elemWidth, Bases: bases, Base: base, BaseStep: baseStep, Delta: delta}
}

// Line implements LineGen.
func (g *ArrayGen) Line(i int, version uint32) line.Line {
	rng := lineRNG(g.seed^0xa77a, i, version)
	base := g.Base + uint64(rng.Intn(g.Bases))*g.BaseStep
	var l line.Line
	for off := 0; off+g.ElemWidth <= line.Size; off += g.ElemWidth {
		v := base + rng.Uint64n(g.Delta)
		switch g.ElemWidth {
		case 2:
			binary.LittleEndian.PutUint16(l[off:], uint16(v))
		case 4:
			binary.LittleEndian.PutUint32(l[off:], uint32(v))
		case 8:
			binary.LittleEndian.PutUint64(l[off:], v)
		default:
			panic("workload: unsupported element width")
		}
	}
	return l
}

// MixGen interleaves several generators at fixed per-line probabilities:
// real regions are not homogeneous (freed record slots read as zero,
// header lines sit between data sheets). The choice is a deterministic
// function of the line index, so versions of a line stay in one component.
type MixGen struct {
	seed uint64
	gens []LineGen
	cum  []float64
}

// NewMixGen builds a mixture; weights need not sum to 1.
func NewMixGen(seed uint64, gens []LineGen, weights []float64) *MixGen {
	if len(gens) == 0 || len(gens) != len(weights) {
		panic("workload: bad mixture")
	}
	m := &MixGen{seed: seed, gens: gens}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	acc := 0.0
	for _, w := range weights {
		acc += w / total
		m.cum = append(m.cum, acc)
	}
	return m
}

// Line implements LineGen.
func (m *MixGen) Line(i int, version uint32) line.Line {
	rng := xrand.Seeded(m.seed ^ uint64(i)*0x9e3779b97f4a7c15)
	u := rng.Float64()
	for k, c := range m.cum {
		if u <= c {
			return m.gens[k].Line(i, version)
		}
	}
	return m.gens[len(m.gens)-1].Line(i, version)
}

// RandomGen produces incompressible lines: high-entropy content such as
// compressed data (xz's input buffers) or hash tables of random keys.
type RandomGen struct{ seed uint64 }

// NewRandomGen builds a random-content generator.
func NewRandomGen(seed uint64) *RandomGen { return &RandomGen{seed: seed} }

// Line implements LineGen.
func (g *RandomGen) Line(i int, version uint32) line.Line {
	rng := lineRNG(g.seed^0x4a4d, i, version)
	var l line.Line
	for k := 0; k < line.Size; k += 8 {
		binary.LittleEndian.PutUint64(l[k:], rng.Uint64())
	}
	return l
}

// keyU64 appends fixed-width words onto a generator key. Fixed width
// (rather than varint) keeps descriptors trivially unambiguous.
func keyU64(dst []byte, vs ...uint64) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// keyString appends a length-prefixed string onto a generator key.
func keyString(dst []byte, s string) []byte {
	dst = keyU64(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendKey implements LineGen.
func (g *RecordsGen) AppendKey(dst []byte) []byte {
	dst = append(dst, 'R')
	dst = keyU64(dst, g.rngSeed, uint64(g.RecordSize), uint64(g.ProtoRun),
		uint64(len(g.protos)), uint64(len(g.Fields)))
	for _, f := range g.Fields {
		dst = keyU64(dst, uint64(f.Width), uint64(f.Kind), uint64(f.VarBytes),
			math.Float64bits(f.MutProb))
	}
	return dst
}

// AppendKey implements LineGen.
func (g *DupPoolGen) AppendKey(dst []byte) []byte {
	dst = append(dst, 'D')
	return keyU64(dst, g.seed, uint64(len(g.pool)))
}

// AppendKey implements LineGen.
func (g *ZeroGen) AppendKey(dst []byte) []byte {
	dst = append(dst, 'Z')
	return keyU64(dst, g.seed, math.Float64bits(g.DirtyFrac), uint64(g.DirtyMax))
}

// AppendKey implements LineGen.
func (g *ArrayGen) AppendKey(dst []byte) []byte {
	dst = append(dst, 'A')
	return keyU64(dst, g.seed, uint64(g.ElemWidth), uint64(g.Bases),
		g.Base, g.BaseStep, g.Delta)
}

// AppendKey implements LineGen.
func (m *MixGen) AppendKey(dst []byte) []byte {
	dst = append(dst, 'M')
	dst = keyU64(dst, m.seed, uint64(len(m.gens)))
	for i, g := range m.gens {
		dst = keyU64(dst, math.Float64bits(m.cum[i]))
		dst = g.AppendKey(dst)
	}
	return dst
}

// AppendKey implements LineGen.
func (g *RandomGen) AppendKey(dst []byte) []byte {
	dst = append(dst, 'r')
	return keyU64(dst, g.seed)
}
