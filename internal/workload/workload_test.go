package workload

import (
	"testing"

	"repro/internal/line"
	"repro/internal/trace"
)

func TestAllProfilesWellFormed(t *testing.T) {
	ps := Profiles()
	if len(ps) != 22 {
		t.Fatalf("%d profiles, want the 22 SPEC CPU 2017 benchmarks", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if len(p.Regions) == 0 {
			t.Fatalf("%s has no regions", p.Name)
		}
		for _, r := range p.Regions {
			if r.Lines <= 0 || r.Weight <= 0 || r.Gen == nil {
				t.Fatalf("%s region %q malformed", p.Name, r.Name)
			}
		}
		if p.Pattern.GapMean <= 0 || p.Pattern.WriteFraction < 0 || p.Pattern.WriteFraction > 1 {
			t.Fatalf("%s pattern malformed: %+v", p.Name, p.Pattern)
		}
	}
}

func TestSensitiveSplit(t *testing.T) {
	s := Sensitive()
	if len(s) < 6 || len(s) > 12 {
		t.Fatalf("sensitive set has %d members: %v", len(s), s)
	}
	// mcf and roms are headline sensitive benchmarks; lbm streams.
	want := map[string]bool{"mcf": true, "roms": true, "omnetpp": true}
	for _, name := range s {
		delete(want, name)
	}
	if len(want) > 0 {
		t.Fatalf("expected sensitive benchmarks missing: %v", want)
	}
	for _, name := range s {
		if name == "lbm" || name == "exchange2" {
			t.Fatalf("%s should be insensitive", name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if _, err := ProfileByName("mcf"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProfileByName("nosuch"); err == nil {
		t.Fatal("unknown profile found")
	}
	if len(Names()) != 22 {
		t.Fatal("Names() size")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("mcf")
	g1 := p.Generate(5000)
	g2 := p.Generate(5000)
	a1 := trace.Collect(g1.Stream, 0)
	a2 := trace.Collect(g2.Stream, 0)
	if len(a1) != 5000 || len(a2) != 5000 {
		t.Fatalf("lengths %d/%d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("access %d differs between identical generations", i)
		}
	}
}

func TestAccessesWithinRegions(t *testing.T) {
	p, _ := ProfileByName("xalancbmk")
	g := p.Generate(20000)
	// Region address ranges.
	type span struct{ lo, hi line.Addr }
	var spans []span
	for _, rs := range g.Stream.regions {
		spans = append(spans, span{rs.base, rs.base + line.Addr(rs.spec.Lines*line.Size)})
	}
	var a trace.Access
	for g.Stream.Next(&a) {
		ok := false
		for _, s := range spans {
			if a.Addr >= s.lo && a.Addr < s.hi {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("access to %#x outside all regions", uint64(a.Addr))
		}
	}
}

func TestWritesCarryFullLines(t *testing.T) {
	p, _ := ProfileByName("gcc")
	g := p.Generate(30000)
	writes, reads := 0, 0
	var a trace.Access
	for g.Stream.Next(&a) {
		if a.Write {
			writes++
		} else {
			reads++
		}
	}
	frac := float64(writes) / float64(writes+reads)
	want := p.Pattern.WriteFraction
	if frac < want-0.05 || frac > want+0.05 {
		t.Fatalf("write fraction %.3f, want ~%.2f", frac, want)
	}
}

func TestPopulateMatchesGenerators(t *testing.T) {
	p, _ := ProfileByName("mcf")
	g := p.Generate(100)
	for _, rs := range g.Stream.regions {
		for _, i := range []int{0, 1, rs.spec.Lines / 2, rs.spec.Lines - 1} {
			want := rs.spec.Gen.Line(i, 0)
			if got := g.Image.Peek(rs.addr(i)); got != want {
				t.Fatalf("region %s line %d: image differs from generator", rs.spec.Name, i)
			}
		}
	}
}

func TestMcfMisalignmentCreatesPhases(t *testing.T) {
	// 68-byte records on 64-byte lines: consecutive lines must not be
	// identical in structure (the diff against the 17-line-period phase
	// twin should be much smaller than against a neighbour).
	p, _ := ProfileByName("mcf")
	var rg *RecordsGen
	for _, r := range p.Regions {
		if mix, ok := r.Gen.(*MixGen); ok {
			for _, g := range mix.gens {
				if rec, ok := g.(*RecordsGen); ok && rec.RecordSize == 68 {
					rg = rec
				}
			}
		}
	}
	if rg == nil {
		t.Fatal("mcf node generator not found")
	}
	// Same phase, 17 lines apart (17·64 = 1088 = 16·68).
	a := rg.Line(100, 0)
	b := rg.Line(117, 0)
	c := rg.Line(101, 0)
	samePhase := line.DiffBytes(&a, &b)
	neighbour := line.DiffBytes(&a, &c)
	if samePhase >= neighbour {
		t.Fatalf("phase twin diff %d not smaller than neighbour diff %d", samePhase, neighbour)
	}
}

func TestSeqFieldKillsExactDuplicates(t *testing.T) {
	g := NewRecordsGen(1, 64, 4, 16, []Field{
		ptrField(0.1), ptrField(0.1), seqField(8),
		constField(8), constField(8), constField(8), constField(8), constField(8),
	})
	seen := map[line.Line]int{}
	for i := 0; i < 1000; i++ {
		l := g.Line(i, 0)
		seen[l]++
		if seen[l] > 1 {
			t.Fatalf("line at step %d repeated %d times: %v", i, seen[l], l)
		}
	}
}

func TestDupPoolProducesExactDuplicates(t *testing.T) {
	g := NewDupPoolGen(7, 16)
	seen := map[line.Line]bool{}
	for i := 0; i < 500; i++ {
		seen[g.Line(i, 0)] = true
	}
	if len(seen) > 16 {
		t.Fatalf("%d distinct lines from a 16-entry pool", len(seen))
	}
}

func TestZeroGenFractions(t *testing.T) {
	g := NewZeroGen(9, 0.3, 6)
	zero, dirty := 0, 0
	for i := 0; i < 2000; i++ {
		l := g.Line(i, 0)
		if l.IsZero() {
			zero++
		} else {
			dirty++
			if n := l.PopCountNonZero(); n > 6 {
				t.Fatalf("dirty line has %d non-zero bytes", n)
			}
		}
	}
	frac := float64(dirty) / 2000
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("dirty fraction %.3f, want ~0.30", frac)
	}
}

func TestVersionsChangeContentStably(t *testing.T) {
	g := NewRecordsGen(3, 68, 4, 16, mcfNodeFields())
	v0 := g.Line(42, 0)
	v1 := g.Line(42, 1)
	if v0 == v1 {
		t.Fatal("version bump did not change content")
	}
	if again := g.Line(42, 1); again != v1 {
		t.Fatal("same version not deterministic")
	}
	// Versions stay within the cluster: small diffs.
	if d := line.DiffBytes(&v0, &v1); d > 40 {
		t.Fatalf("version diff %d bytes — left the cluster", d)
	}
}

func TestMixGenDeterministicComponent(t *testing.T) {
	zero := NewZeroGen(1, 0, 4)
	random := NewRandomGen(2)
	m := NewMixGen(3, []LineGen{zero, random}, []float64{0.5, 0.5})
	for i := 0; i < 100; i++ {
		a := m.Line(i, 0)
		b := m.Line(i, 1)
		// A line stays in its component across versions: zero-component
		// lines stay zero.
		if a.IsZero() != b.IsZero() {
			t.Fatalf("line %d switched mixture component across versions", i)
		}
	}
}

func TestArrayGenElementWidths(t *testing.T) {
	for _, w := range []int{2, 4, 8} {
		g := NewArrayGen(5, w, 4, 1<<20, 1<<10, 1<<6)
		l := g.Line(0, 0)
		if l.IsZero() {
			t.Fatalf("width %d produced zero line", w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad element width accepted")
		}
	}()
	NewArrayGen(5, 3, 4, 1, 1, 1).Line(0, 0)
}

func TestWorkingSetBytes(t *testing.T) {
	p, _ := ProfileByName("exchange2")
	g := p.Generate(10)
	want := 0
	for _, r := range p.Regions {
		want += r.Lines * line.Size
	}
	if g.WorkingSetBytes() != want {
		t.Fatalf("WSS %d, want %d", g.WorkingSetBytes(), want)
	}
}
