package workload

import (
	"fmt"
	"math"

	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// RegionSpec declares one address-space region of a profile.
type RegionSpec struct {
	// Name labels the region in diagnostics.
	Name string
	// Lines is the region size in cachelines.
	Lines int
	// Weight is the relative access probability.
	Weight float64
	// Gen produces line contents.
	Gen LineGen
	// Group assigns the region to a phase group (see PatternSpec); -1
	// keeps it always active.
	Group int
}

// PatternSpec declares a profile's access behaviour.
type PatternSpec struct {
	// SeqFraction of accesses advance a per-region sequential cursor;
	// the rest are skewed random accesses.
	SeqFraction float64
	// Skew shapes the random accesses: index = ⌊lines·u^Skew⌋ over a
	// per-region permutation base, so Skew=1 is uniform and larger values
	// concentrate reuse on a hot subset.
	Skew float64
	// WriteFraction of accesses are stores (which regenerate the line at
	// a new version, preserving cluster structure).
	WriteFraction float64
	// GapMean is the mean number of non-memory instructions between
	// accesses.
	GapMean float64
	// PhaseEvery rotates the active phase group every so many accesses
	// (0 disables phases); active-group regions get 8× weight.
	PhaseEvery int
	// PhaseGroups is the number of phase groups.
	PhaseGroups int
}

// regionState is a region bound to a base address with streaming state.
type regionState struct {
	spec    RegionSpec
	base    line.Addr
	cursor  int
	version []uint32 // per-line write versions, indexed by line
}

// Stream generates a profile's access trace; it implements trace.Source
// and trace.BatchSource.
type Stream struct {
	regions []*regionState
	pat     PatternSpec
	rng     *xrand.Rand
	count   int
	limit   int
	img     *memory.Store

	// Cached per-region effective weights for the current active phase
	// group. Region weights only change when the active group rotates
	// (every PhaseEvery accesses), so pickRegion reuses the sums instead
	// of recomputing them per access. weightsFor is the active group the
	// cache was built for (-2 = never built).
	weights    []float64
	weightSum  float64
	weightsFor int
}

// regionGap separates region base addresses so set-index bits differ.
const regionGap = 1 << 30

// newStream lays out regions, populates img with their initial contents,
// and returns a source producing limit accesses.
func newStream(seed uint64, regions []RegionSpec, pat PatternSpec, limit int, img *memory.Store) *Stream {
	s := &Stream{pat: pat, rng: xrand.New(seed), limit: limit, img: img, weightsFor: -2}
	base := line.Addr(1 << 33)
	for _, spec := range regions {
		if spec.Lines <= 0 || spec.Gen == nil {
			panic(fmt.Sprintf("workload: bad region %q", spec.Name))
		}
		rs := &regionState{spec: spec, base: base, version: make([]uint32, spec.Lines)}
		for i := 0; i < spec.Lines; i++ {
			img.Poke(rs.addr(i), spec.Gen.Line(i, 0))
		}
		s.regions = append(s.regions, rs)
		base += line.Addr((spec.Lines + regionGap/line.Size) * line.Size)
		base = base.LineAddr()
	}
	return s
}

func (r *regionState) addr(i int) line.Addr {
	return r.base + line.Addr(i*line.Size)
}

// pickRegion selects a region by weight, boosting the active phase group.
func (s *Stream) pickRegion() *regionState {
	active := -1
	if s.pat.PhaseEvery > 0 && s.pat.PhaseGroups > 0 {
		active = (s.count / s.pat.PhaseEvery) % s.pat.PhaseGroups
	}
	if active != s.weightsFor {
		// Rebuild the weight cache. The sum accumulates in region order,
		// exactly as the uncached loop did, so the float rounding — and
		// therefore the region sequence — is bit-identical.
		s.weights = s.weights[:0]
		s.weightSum = 0
		for _, r := range s.regions {
			w := s.effWeight(r, active)
			s.weights = append(s.weights, w)
			s.weightSum += w
		}
		s.weightsFor = active
	}
	x := s.rng.Float64() * s.weightSum
	for k, r := range s.regions {
		x -= s.weights[k]
		if x <= 0 {
			return r
		}
	}
	return s.regions[len(s.regions)-1]
}

func (s *Stream) effWeight(r *regionState, active int) float64 {
	w := r.spec.Weight
	if r.spec.Group >= 0 && active >= 0 {
		if r.spec.Group == active {
			w *= 8
		} else {
			w *= 0.125
		}
	}
	return w
}

// pickLine chooses a line index within r per the pattern.
func (s *Stream) pickLine(r *regionState) int {
	if s.rng.Float64() < s.pat.SeqFraction {
		i := r.cursor
		r.cursor = (r.cursor + 1) % r.spec.Lines
		return i
	}
	u := s.rng.Float64()
	skew := s.pat.Skew
	if skew < 1 {
		skew = 1
	}
	i := int(math.Pow(u, skew) * float64(r.spec.Lines))
	if i >= r.spec.Lines {
		i = r.spec.Lines - 1
	}
	// Scramble with a fixed bijection (i·p mod lines, p prime > lines) so
	// the hot subset is spread across cache sets rather than contiguous.
	return int(uint64(i) * 1000000007 % uint64(r.spec.Lines))
}

// Next implements trace.Source.
func (s *Stream) Next(a *trace.Access) bool {
	if s.count >= s.limit {
		return false
	}
	s.count++
	r := s.pickRegion()
	i := s.pickLine(r)
	a.Addr = r.addr(i)
	gapP := 1.0 / (s.pat.GapMean + 1)
	a.Gap = uint32(s.rng.Geometric(gapP))
	if s.rng.Float64() < s.pat.WriteFraction {
		a.Write = true
		v := r.version[i] + 1
		r.version[i] = v
		a.Data = r.spec.Gen.Line(i, v)
	} else {
		a.Write = false
	}
	return true
}

// FillBatch implements trace.BatchSource: it fills dst with the next
// accesses and returns how many were produced. The access sequence is
// identical to repeated Next calls; batching only saves the per-access
// interface-call round trip on the replay side.
func (s *Stream) FillBatch(dst []trace.Access) int {
	n := 0
	for n < len(dst) && s.Next(&dst[n]) {
		n++
	}
	return n
}

// Generated bundles a populated image with its access stream.
type Generated struct {
	Image  *memory.Store
	Stream *Stream
}

// WorkingSetBytes returns the total populated footprint.
func (g *Generated) WorkingSetBytes() int {
	total := 0
	for _, r := range g.Stream.regions {
		total += r.spec.Lines * line.Size
	}
	return total
}
