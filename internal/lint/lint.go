// Package lint is thesauruslint: a repository-specific static-analysis
// suite that mechanically enforces the determinism contract documented
// in docs/determinism.md. The whole evaluation pipeline promises
// byte-identical reports for any worker count; these analyzers catch
// the silent-nondeterminism bug classes (wall-clock reads, unordered
// map iteration feeding ordered output, shared-state mutation from
// worker goroutines, ad-hoc random seeds, float reduction order) before
// they can skew a figure. The suite also enforces the resource release
// lifecycle (docs/performance.md): once a cache or store is Released,
// only its returned snapshot may be read.
//
// The suite is built only on the standard library (go/parser, go/ast,
// go/types with the source importer); there is no dependency on
// golang.org/x/tools.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by position and analyzer.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	// File is the path relative to the module root (or absolute when
	// outside it).
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Suppressed is set when an allowlist entry covers the finding.
	Suppressed bool `json:"suppressed,omitempty"`
	// Fixes holds machine-applicable rewrites that resolve the finding,
	// when the analyzer can construct one (see SuggestedFix).
	Fixes []SuggestedFix `json:"fixes,omitempty"`
}

// SuggestedFix is one machine-applicable resolution of a finding: apply
// every edit (byte spans into the original file contents) and the
// diagnostic disappears. Edits within a fix never overlap and are sorted
// by offset, so a tool can apply them back-to-front without tracking
// displacement.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// TextEdit replaces the half-open byte range [Offset, End) of File with
// NewText (Offset == End inserts).
type TextEdit struct {
	// File is the path the span indexes into, relativized like
	// Diagnostic.File.
	File    string `json:"file"`
	Offset  int    `json:"offset"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

// ApplyEdits returns src with the edits applied. Edits use offsets into
// the original src, so they are applied in reverse offset order. Exact
// duplicates are applied once: fixes from different findings in one file
// may each carry the same prerequisite edit (e.g. adding an import).
// Edits that overlap an already-applied edit are dropped — two fixes
// rewriting intersecting spans cannot both be honored, and applying the
// second into the first's replacement text would corrupt the file; the
// surviving diagnostics after the re-lint pass pick up whatever the
// dropped fix addressed.
func ApplyEdits(src []byte, edits []TextEdit) []byte {
	sorted := append([]TextEdit(nil), edits...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Offset != sorted[j].Offset {
			return sorted[i].Offset > sorted[j].Offset
		}
		// A replacement and an insertion can share a start offset (the
		// maporder rewrite inserts the collection loop exactly where the
		// rewritten `for` begins); the replacement must be applied first
		// so the insertion ends up before it, not inside it.
		if sorted[i].End != sorted[j].End {
			return sorted[i].End > sorted[j].End
		}
		return sorted[i].NewText > sorted[j].NewText
	})
	out := append([]byte(nil), src...)
	// minApplied is the lowest original offset any applied edit touched;
	// a later (lower-offset) edit whose span crosses it overlaps.
	minApplied := len(src)
	for i, e := range sorted {
		if i > 0 && e == sorted[i-1] {
			continue
		}
		if e.Offset < 0 || e.End < e.Offset || e.End > len(out) {
			continue
		}
		if e.End > minApplied {
			continue
		}
		out = append(out[:e.Offset], append([]byte(e.NewText), out[e.End:]...)...)
		minApplied = e.Offset
	}
	return out
}

// String renders the conventional file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass hands one analysis unit to an analyzer.
type Pass struct {
	Fset *token.FileSet
	// Path is the import path of the package under analysis; SimPackage
	// tells analyzers whether the determinism contract applies to it.
	Path       string
	SimPackage bool
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info

	analyzer string
	report   func(Diagnostic)
	// loader gives interprocedural analyzers (allocgate) access to the
	// bodies of module-internal packages the unit imports. Nil in
	// hand-built passes; analyzers must tolerate that.
	loader *Loader
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportFixf(pos, nil, format, args...)
}

// ReportFixf records a finding at pos carrying machine-applicable fixes.
func (p *Pass) ReportFixf(pos token.Pos, fixes []SuggestedFix, format string, args ...any) {
	pp := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.analyzer,
		File:     pp.Filename,
		Line:     pp.Line,
		Col:      pp.Column,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    fixes,
	})
}

// Analyzer is one lint rule.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDetermImports,
		MapOrder,
		ParMapDiscipline,
		XRandSeed,
		FloatOrder,
		ReleaseUse,
		HotPathPragma,
		AllocGate,
	}
}

// AnalyzerByName resolves names (comma-separated lists accepted by the
// CLI) to analyzers.
func AnalyzerByName(name string) (*Analyzer, error) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("lint: unknown analyzer %q", name)
}

// simPackage reports whether the determinism contract applies to the
// import path: the root package and everything under internal/ except
// the lint suite itself. cmd/ and examples/ are interactive front-ends
// where wall-clock reads and environment access are legitimate.
func simPackage(modulePath, path string) bool {
	if path == modulePath {
		return true
	}
	internal := modulePath + "/internal/"
	if !strings.HasPrefix(path, internal) {
		return false
	}
	rest := strings.TrimPrefix(path, internal)
	return rest != "lint" && !strings.HasPrefix(rest, "lint/")
}

// Runner drives the suite over a module.
type Runner struct {
	Loader    *Loader
	Analyzers []*Analyzer
	Allow     *Allowlist
}

// NewRunner builds a Runner with the full suite over the module rooted
// at moduleDir.
func NewRunner(moduleDir string) (*Runner, error) {
	l, err := NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	return &Runner{Loader: l, Analyzers: Analyzers()}, nil
}

// CheckDirs lints the given package directories and returns all
// diagnostics sorted by file, line, column, analyzer. Allowlisted
// findings are returned with Suppressed set rather than dropped, so the
// JSON mode can expose audited exceptions.
func (r *Runner) CheckDirs(dirs []string) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, dir := range dirs {
		path, err := r.importPathOf(dir)
		if err != nil {
			return nil, err
		}
		ds, err := r.checkDir(dir, path)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	diags = sortAndDedupe(diags)
	if r.Allow != nil {
		for i := range diags {
			if r.Allow.Covers(diags[i]) {
				diags[i].Suppressed = true
			}
		}
	}
	return diags, nil
}

// CheckDirAs lints a single directory under a pretend import path; the
// unit-test fixtures use it to exercise sim-package and cmd-package
// treatment from testdata trees.
func (r *Runner) CheckDirAs(dir, asPath string) ([]Diagnostic, error) {
	diags, err := r.checkDir(dir, asPath)
	if err != nil {
		return nil, err
	}
	return sortAndDedupe(diags), nil
}

// sortAndDedupe orders diagnostics by file, line, column, analyzer,
// message and drops exact duplicates. The interprocedural allocgate pass
// can reach the same construct from hot-path roots in several analysis
// units (its messages are unit-independent for exactly this reason), so
// one construct must surface as one finding.
func sortAndDedupe(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 {
			p := diags[i-1]
			if d.File == p.File && d.Line == p.Line && d.Col == p.Col &&
				d.Analyzer == p.Analyzer && d.Message == p.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

func (r *Runner) checkDir(dir, asPath string) ([]Diagnostic, error) {
	units, err := r.Loader.LoadDir(dir, asPath)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, u := range units {
		for _, a := range r.Analyzers {
			pass := &Pass{
				Fset:       r.Loader.Fset,
				Path:       u.Path,
				SimPackage: simPackage(r.Loader.ModulePath, u.Path),
				Files:      u.Files,
				Pkg:        u.Pkg,
				Info:       u.Info,
				analyzer:   a.Name,
				loader:     r.Loader,
			}
			pass.report = func(d Diagnostic) {
				rel := func(p string) string {
					if rp, err := filepath.Rel(r.Loader.ModuleDir, p); err == nil && !strings.HasPrefix(rp, "..") {
						return filepath.ToSlash(rp)
					}
					return p
				}
				d.File = rel(d.File)
				for fi := range d.Fixes {
					for ei := range d.Fixes[fi].Edits {
						e := &d.Fixes[fi].Edits[ei]
						e.File = rel(e.File)
					}
				}
				diags = append(diags, d)
			}
			a.Run(pass)
		}
	}
	return diags, nil
}

// importPathOf maps a module subdirectory to its import path.
func (r *Runner) importPathOf(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(r.Loader.ModuleDir, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return r.Loader.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, r.Loader.ModuleDir)
	}
	return r.Loader.ModulePath + "/" + filepath.ToSlash(rel), nil
}
