package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// parMapFixtureDiags lints the fixparmap fixture from dir and returns its
// parmap-discipline findings.
func parMapFixtureDiags(t *testing.T, r *Runner, dir string) []Diagnostic {
	t.Helper()
	diags, err := r.CheckDirAs(dir, "repro/internal/fixparmap")
	if err != nil {
		t.Fatal(err)
	}
	var out []Diagnostic
	for _, d := range diags {
		if d.Analyzer == "parmap-discipline" {
			out = append(out, d)
		}
	}
	return out
}

// TestParMapFixGolden pins the exact suggested write-by-index fixes as
// JSON. The fixable append must carry exactly one fix; the declined
// shapes (no index parameter, second write, no capacity) must carry none.
func TestParMapFixGolden(t *testing.T) {
	r := testRunner(t)
	diags := parMapFixtureDiags(t, r, filepath.Join("testdata", "src", "fixparmap"))
	if len(diags) == 0 {
		t.Fatal("fixture produced no parmap-discipline findings")
	}
	for i := range diags {
		diags[i].File = filepath.Base(diags[i].File)
		for fi := range diags[i].Fixes {
			for ei := range diags[i].Fixes[fi].Edits {
				e := &diags[i].Fixes[fi].Edits[ei]
				e.File = filepath.Base(e.File)
			}
		}
		base := diags[i].File
		nfix := len(diags[i].Fixes)
		if base == "unfixable.go" && nfix != 0 {
			t.Errorf("%s:%d: unfixable shape got %d fixes", base, diags[i].Line, nfix)
		}
		if base != "unfixable.go" && nfix != 1 {
			t.Errorf("%s:%d: fixable shape got %d fixes, want 1", base, diags[i].Line, nfix)
		}
	}
	got, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "fixparmap", "fixes.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run ParMapFixGolden -update ./internal/lint` to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("fixes differ from %s\ngot:\n%s", golden, got)
	}
}

// TestParMapFixApplyAndRelint runs the whole -fix pipeline on a copy of
// the fixture: lint, ApplyFixes in place, compare the rewritten file
// against its golden, and re-lint to prove the fixed append is silenced
// while the declined shapes still report.
func TestParMapFixApplyAndRelint(t *testing.T) {
	r := testRunner(t)
	pkgDir := filepath.Join(t.TempDir(), "fixparmap")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	srcDir := filepath.Join("testdata", "src", "fixparmap")
	names, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range names {
		src, err := os.ReadFile(filepath.Join(srcDir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(pkgDir, de.Name()), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	diags := parMapFixtureDiags(t, r, pkgDir)
	fixed, err := ApplyFixes(r.Loader.ModuleDir, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 || filepath.Base(fixed[0]) != "fixable.go" {
		t.Fatalf("ApplyFixes rewrote %v, want exactly fixable.go", fixed)
	}

	applied, err := os.ReadFile(filepath.Join(pkgDir, "fixable.go"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fixparmap", "fixable.go.applied")
	if *update {
		if err := os.WriteFile(golden, applied, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run ParMapFixApplyAndRelint -update ./internal/lint` to create)", err)
	}
	if string(applied) != string(want) {
		t.Errorf("applied result differs from %s\ngot:\n%s", golden, applied)
	}

	// Re-lint the rewritten package: the fixed worker loop must be clean,
	// the declined shapes still flagged (by design, without fixes).
	relint := parMapFixtureDiags(t, r, pkgDir)
	for _, d := range relint {
		switch filepath.Base(d.File) {
		case "fixable.go":
			t.Errorf("applied fix did not silence the finding: %s", d)
		case "unfixable.go":
			if len(d.Fixes) != 0 {
				t.Errorf("declined shape grew a fix after rewrite: %s", d)
			}
		}
	}
	if len(relint) == 0 {
		t.Error("re-lint found nothing: unfixable.go shapes should still report")
	}
}
