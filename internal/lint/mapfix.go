package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strings"
)

// This file constructs the machine-applicable fix for maporder findings:
// the collect-keys-sort-iterate rewrite. For
//
//	for k, v := range m { … }
//
// it produces edits that insert
//
//	kKeys := make([]K, 0, len(m))
//	for k := range m {
//		kKeys = append(kKeys, k)
//	}
//	sort.Slice(kKeys, func(i, j int) bool { return kKeys[i] < kKeys[j] })
//
// before the loop, rewrite the loop header to `for _, k := range kKeys {`,
// bind `v := m[k]` as the first body statement, and add the "sort" import
// when the file lacks it. The fix is only offered when it is provably
// safe to construct: the key is a named identifier of an ordered type
// renderable in this package, and the map operand is a side-effect-free
// identifier/selector chain (it is evaluated three times after the
// rewrite).

// buildMapOrderFix returns the rewrite for rng, or nil when no safe fix
// exists. file must be the *ast.File containing rng.
func buildMapOrderFix(pass *Pass, file *ast.File, rng *ast.RangeStmt) []SuggestedFix {
	if rng.Tok != token.DEFINE {
		return nil
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return nil
	}
	var val *ast.Ident
	if rng.Value != nil {
		v, ok := rng.Value.(*ast.Ident)
		if !ok {
			return nil
		}
		if v.Name != "_" {
			val = v
		}
	}
	if !pureOperand(rng.X) {
		return nil
	}
	keyType, ok := orderedTypeName(pass, pass.Info.TypeOf(rng.Key))
	if !ok {
		return nil
	}
	fname := pass.Fset.Position(file.Pos()).Filename
	src, err := os.ReadFile(fname)
	if err != nil {
		return nil
	}
	offsetOf := func(pos token.Pos) int { return pass.Fset.Position(pos).Offset }
	forOff := offsetOf(rng.Pos())
	lineStart := forOff - (pass.Fset.Position(rng.Pos()).Column - 1)
	if lineStart < 0 || forOff > len(src) {
		return nil
	}
	indent := string(src[lineStart:forOff])
	if strings.TrimSpace(indent) != "" {
		return nil // `for` is not the first token on its line (e.g. one-liner)
	}
	mapSrc := string(src[offsetOf(rng.X.Pos()):offsetOf(rng.X.End())])
	keys := keysName(key.Name)

	var edits []TextEdit
	if e, ok := importSortEdit(pass, file, src, fname); ok {
		edits = append(edits, e)
	}

	// Collection + sort, inserted where the original `for` begins; the
	// insertion ends with the indent the displaced `for` needs.
	var pre strings.Builder
	fmt.Fprintf(&pre, "%s := make([]%s, 0, len(%s))\n", keys, keyType, mapSrc)
	fmt.Fprintf(&pre, "%sfor %s := range %s {\n", indent, key.Name, mapSrc)
	fmt.Fprintf(&pre, "%s\t%s = append(%s, %s)\n", indent, keys, keys, key.Name)
	fmt.Fprintf(&pre, "%s}\n", indent)
	fmt.Fprintf(&pre, "%ssort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })\n%s",
		indent, keys, keys, keys, indent)
	edits = append(edits, TextEdit{File: fname, Offset: forOff, End: forOff, NewText: pre.String()})

	// Rewrite the loop header, re-binding the value from the map as the
	// first body statement when the original loop named it.
	header := fmt.Sprintf("for _, %s := range %s {", key.Name, keys)
	if val != nil {
		header += fmt.Sprintf("\n%s\t%s := %s[%s]", indent, val.Name, mapSrc, key.Name)
	}
	lbrace := offsetOf(rng.Body.Lbrace) + 1
	edits = append(edits, TextEdit{File: fname, Offset: forOff, End: lbrace, NewText: header})

	return []SuggestedFix{{
		Message: fmt.Sprintf("iterate %s in sorted key order (collect keys, sort, range the slice)", mapSrc),
		Edits:   edits,
	}}
}

// keysName derives the key-slice variable name: k → kKeys, name → nameKeys.
func keysName(key string) string { return key + "Keys" }

// pureOperand reports whether e is a side-effect-free identifier or
// selector chain, safe to re-evaluate.
func pureOperand(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return pureOperand(x.X)
	}
	return false
}

// orderedTypeName renders the key type for the make([]K, …) call. Only
// ordered types are eligible (the sort uses <), and only types nameable
// from the package under analysis without adding imports: basic types and
// named types declared in the same package.
func orderedTypeName(pass *Pass, t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsOrdered == 0 {
		return "", false
	}
	switch tt := t.(type) {
	case *types.Basic:
		return tt.Name(), true
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() == pass.Pkg {
			return obj.Name(), true
		}
	}
	return "", false
}

// importSortEdit returns the edit adding `"sort"` to file's imports, or
// ok=false when the file already imports it.
func importSortEdit(pass *Pass, file *ast.File, src []byte, fname string) (TextEdit, bool) {
	for _, imp := range file.Imports {
		if imp.Path.Value == `"sort"` {
			return TextEdit{}, false
		}
	}
	// Prefer slotting into an existing parenthesized import block (gofmt
	// re-sorts the block when the fix is applied).
	for _, d := range file.Decls {
		g, ok := d.(*ast.GenDecl)
		if !ok || g.Tok != token.IMPORT {
			continue
		}
		if g.Lparen.IsValid() {
			off := pass.Fset.Position(g.Lparen).Offset + 1
			return TextEdit{File: fname, Offset: off, End: off, NewText: "\n\t\"sort\""}, true
		}
		// Single unparenthesized import: add a second import decl after it.
		off := pass.Fset.Position(g.End()).Offset
		return TextEdit{File: fname, Offset: off, End: off, NewText: "\nimport \"sort\""}, true
	}
	// No imports at all: insert after the package clause.
	off := pass.Fset.Position(file.Name.End()).Offset
	return TextEdit{File: fname, Offset: off, End: off, NewText: "\n\nimport \"sort\""}, true
}
