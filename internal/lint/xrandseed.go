package lint

import (
	"go/ast"
	"strings"
)

// XRandSeed polices how the deterministic PRNG is seeded. In simulation
// code every xrand constructor must take a seed that arrives through
// configuration or a profile (a Config field, a function parameter, a
// derived expression) — never an inline magic literal. A literal at the
// call site cannot be swept, is invisible to the experiment
// configuration surface, and invites copy-paste reuse that silently
// correlates streams which the evaluation assumes are independent.
// Named default seeds belong in a Config literal (see
// lsh.DefaultConfig), which this analyzer deliberately does not flag.
// Test files may use literal seeds, but reusing the same literal for
// two constructors in one file correlates fixtures that look
// independent, so that is flagged too.
var XRandSeed = &Analyzer{
	Name: "xrand-seed",
	Doc:  "require xrand constructor seeds to derive from config/profile; no inline or reused magic literals",
	Run:  runXRandSeed,
}

func runXRandSeed(pass *Pass) {
	if !pass.SimPackage {
		return
	}
	firstByValue := map[string]ast.Node{} // file\x00value → first call site
	for _, f := range pass.Files {
		inTest := pass.InTestFile(f.Pos())
		fileName := pass.Fset.Position(f.Pos()).Filename
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil || callee.Pkg() == nil ||
				!strings.HasSuffix(callee.Pkg().Path(), "internal/xrand") {
				return true
			}
			if callee.Name() != "New" && callee.Name() != "NewSplitMix64" {
				return true
			}
			tv, ok := pass.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil {
				return true // derived from config/profile/parameter: fine
			}
			val := tv.Value.ExactString()
			if !inTest {
				pass.Reportf(call.Args[0].Pos(),
					"xrand.%s seeded with constant %s in simulation code: derive the seed from a Config "+
						"field or profile parameter so sweeps can vary it and streams stay independent",
					callee.Name(), val)
				return true
			}
			key := fileName + "\x00" + val
			if first, dup := firstByValue[key]; dup {
				firstPos := pass.Fset.Position(first.Pos())
				pass.Reportf(call.Args[0].Pos(),
					"xrand.%s reuses literal seed %s already used at line %d of this file: identical seeds "+
						"produce identical streams, silently correlating fixtures; pick a distinct seed",
					callee.Name(), val, firstPos.Line)
				return true
			}
			firstByValue[key] = call
			return true
		})
	}
}
