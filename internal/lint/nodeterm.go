package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// NoDetermImports forbids wall-clock, environment, and math/rand
// nondeterminism sources inside the simulation packages. Reports must be
// a pure function of configuration and seeds: a time.Now inside a
// simulated-latency path or a math/rand stream (whose bit sequence is
// not even stable across Go releases) silently breaks byte-identical
// replay. cmd/, examples/, and _test.go files are exempt — front-ends
// may time campaigns and read flags from the environment.
var NoDetermImports = &Analyzer{
	Name: "nodeterm-imports",
	Doc: "forbid math/rand, time.Now/Since/Until, os.Getenv/Environ/LookupEnv, " +
		"and fmt formatting of map values in simulation packages",
	Run: runNoDetermImports,
}

// forbiddenFuncs maps package path → function names whose call sites are
// nondeterministic inputs.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"os": {
		"Getenv":    "environment read",
		"Environ":   "environment read",
		"LookupEnv": "environment read",
	},
}

// fmtFormatters are the fmt functions checked for map-typed arguments;
// the value is the index of the first variadic formatting argument.
var fmtFormatters = map[string]int{
	"Sprintf": 1, "Sprint": 0, "Sprintln": 0,
	"Printf": 1, "Print": 0, "Println": 0,
	"Fprintf": 2, "Fprint": 1, "Fprintln": 1,
	"Errorf": 1,
}

func runNoDetermImports(pass *Pass) {
	if !pass.SimPackage {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in simulation package %s: use repro/internal/xrand with an explicit seed "+
						"(math/rand streams are not stable across Go releases)", path, pass.Path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if names, ok := forbiddenFuncs[fn.Pkg().Path()]; ok {
				if kind, ok := names[fn.Name()]; ok {
					pass.Reportf(call.Pos(),
						"%s.%s in simulation package %s: %s is a nondeterministic input; "+
							"derive the value from config or move the call to cmd/",
						fn.Pkg().Name(), fn.Name(), pass.Path, kind)
				}
			}
			if fn.Pkg().Path() == "fmt" {
				if first, ok := fmtFormatters[fn.Name()]; ok {
					checkFmtMapArgs(pass, call, first)
				}
			}
			return true
		})
	}
}

// checkFmtMapArgs flags map-typed operands handed to a fmt formatter.
// fmt sorts map keys of ordered types, but keys compared through
// interfaces or containing NaNs print in nondeterministic order, and the
// repo's contract is that report bytes never depend on fmt's fallback
// behaviour — render maps through explicitly sorted keys instead.
func checkFmtMapArgs(pass *Pass, call *ast.CallExpr, first int) {
	for i, arg := range call.Args {
		if i < first {
			continue
		}
		t := pass.Info.TypeOf(arg)
		if t == nil || !isMap(t) {
			continue
		}
		// A map argument to a %d-style width is impossible; any map
		// reaching a formatter is being rendered.
		short := t.String()
		if id := rootIdent(arg); id != nil {
			short = id.Name + " (" + short + ")"
		}
		pass.Reportf(arg.Pos(),
			"map value %s formatted with fmt.%s: rendering depends on fmt's key ordering; "+
				"iterate a sorted key slice instead", shorten(short), funcName(pass, call))
	}
}

func funcName(pass *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass.Info, call); fn != nil {
		return fn.Name()
	}
	return "formatter"
}

// shorten trims verbose qualified type names for readable diagnostics.
func shorten(s string) string {
	if len(s) > 64 {
		return s[:61] + "..."
	}
	return strings.ReplaceAll(s, "command-line-arguments.", "")
}
