package lint

import (
	"go/ast"
	"strings"
)

// Hot-path pragmas (docs/static-analysis.md). The grammar is a directive
// comment in a function's doc group:
//
//	//thesaurus:hotpath
//	//thesaurus:allocok <reason>
//
// hotpath declares the function a hot-path root: allocgate computes the
// call-graph closure of every root and flags allocation constructs
// anywhere inside it. allocok marks a function as a sanctioned allocation
// boundary (cold refill paths, amortized pool growth): the closure walk
// does not descend into it and nothing inside it is flagged; the reason
// is mandatory and is the audit trail.
const (
	pragmaPrefix  = "//thesaurus:"
	pragmaHotPath = "hotpath"
	pragmaAllocOK = "allocok"
)

// pragma is one parsed //thesaurus: directive.
type pragma struct {
	Verb    string // "hotpath", "allocok", or an unknown verb
	Arg     string // text after the verb, space-trimmed
	Comment *ast.Comment
}

// parsePragma extracts the directive from a single comment, or ok=false
// when the comment is not a //thesaurus: directive at all.
func parsePragma(c *ast.Comment) (pragma, bool) {
	rest, found := strings.CutPrefix(c.Text, pragmaPrefix)
	if !found {
		return pragma{}, false
	}
	verb, arg, _ := strings.Cut(rest, " ")
	return pragma{Verb: strings.TrimSpace(verb), Arg: strings.TrimSpace(arg), Comment: c}, true
}

// funcPragmas returns the //thesaurus: directives in decl's doc group, in
// source order.
func funcPragmas(decl *ast.FuncDecl) []pragma {
	if decl.Doc == nil {
		return nil
	}
	var out []pragma
	for _, c := range decl.Doc.List {
		if p, ok := parsePragma(c); ok {
			out = append(out, p)
		}
	}
	return out
}

// hasPragmaVerb reports whether decl carries the given well-formed verb.
func hasPragmaVerb(decl *ast.FuncDecl, verb string) bool {
	for _, p := range funcPragmas(decl) {
		if p.Verb == verb {
			return true
		}
	}
	return false
}
