package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The escape budget is the second half of the allocation gate
// (docs/static-analysis.md): where the allocgate analyzer flags
// allocation *constructs* syntactically, this checker asks the compiler
// itself. It runs `go build -gcflags=-m` over every package containing a
// //thesaurus:hotpath function, attributes the compiler's proven
// escape-to-heap diagnostics to those functions by line range, and diffs
// the per-function counts against the committed alloc.budget file. A new
// escape on a hot function fails CI with the exact file:line the
// compiler reported; a budget entry larger than reality is flagged as
// stale, so the budget can only ratchet down.
//
// The scan is parser-only (no type checking): pragma attachment is a
// syntactic property, and the compiler run supplies the semantics.

// HotFunc is one //thesaurus:hotpath function located by the scan.
type HotFunc struct {
	// Key is "<pkgpath>.<label>", e.g. "repro/internal/thesaurus.(*Cache).Read".
	Key string
	// File is the module-relative source file; [StartLine, EndLine] spans
	// the declaration, which is how escape sites are attributed.
	File      string
	StartLine int
	EndLine   int
	// Dir is the module-relative package directory, "." for the root.
	Dir string
}

// EscapeSite is one compiler-reported heap allocation.
type EscapeSite struct {
	File string `json:"file"` // module-relative
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

func (s EscapeSite) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", s.File, s.Line, s.Col, s.Msg)
}

// ScanHotFuncs parses every non-test file in the module (syntax only)
// and returns the //thesaurus:hotpath functions in deterministic
// (directory, file, position) order.
func ScanHotFuncs(moduleDir string) ([]HotFunc, error) {
	modulePath, err := readModulePath(moduleDir)
	if err != nil {
		return nil, err
	}
	dirs, err := ModuleDirs(moduleDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []HotFunc
	for _, dir := range dirs {
		relDir, err := filepath.Rel(moduleDir, dir)
		if err != nil {
			return nil, err
		}
		relDir = filepath.ToSlash(relDir)
		pkgPath := modulePath
		if relDir != "." {
			pkgPath = modulePath + "/" + relDir
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || !hasPragmaVerb(fd, pragmaHotPath) {
					continue
				}
				relFile := relDir + "/" + name
				if relDir == "." {
					relFile = name
				}
				out = append(out, HotFunc{
					Key:       pkgPath + "." + syntaxFuncLabel(fd),
					File:      relFile,
					StartLine: fset.Position(fd.Pos()).Line,
					EndLine:   fset.Position(fd.End()).Line,
					Dir:       relDir,
				})
			}
		}
	}
	return out, nil
}

// syntaxFuncLabel renders funcLabel's form from syntax alone: Read,
// (*Cache).Read, (Line).IsZero.
func syntaxFuncLabel(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + recvTypeText(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

func recvTypeText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return "*" + recvTypeText(x.X)
	case *ast.IndexExpr: // generic receiver Cache[T]
		return recvTypeText(x.X) + "[" + recvTypeText(x.Index) + "]"
	case *ast.IndexListExpr:
		parts := make([]string, len(x.Indices))
		for i, ix := range x.Indices {
			parts[i] = recvTypeText(ix)
		}
		return recvTypeText(x.X) + "[" + strings.Join(parts, ", ") + "]"
	}
	return "recv"
}

// HotPackageDirs returns the sorted, deduplicated module-relative
// package directories containing hot functions.
func HotPackageDirs(funcs []HotFunc) []string {
	seen := map[string]bool{}
	var out []string
	for _, f := range funcs {
		if !seen[f.Dir] {
			seen[f.Dir] = true
			out = append(out, f.Dir)
		}
	}
	sort.Strings(out)
	return out
}

// CollectEscapes builds the given module-relative package directories
// with -gcflags=-m and returns the escape diagnostics. The toolchain
// replays -m output from the build cache, so repeated runs are cheap.
func CollectEscapes(moduleDir string, dirs []string) ([]EscapeSite, error) {
	if len(dirs) == 0 {
		return nil, nil
	}
	args := []string{"build", "-gcflags=-m"}
	for _, d := range dirs {
		args = append(args, "./"+d)
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return parseEscapes(string(out)), nil
}

// parseEscapes extracts the escape diagnostics ("x escapes to heap",
// "moved to heap: x") from -gcflags=-m output, dropping the inlining
// chatter, and returns them sorted by file, line, column.
func parseEscapes(out string) []EscapeSite {
	var sites []EscapeSite
	for _, ln := range strings.Split(out, "\n") {
		if !strings.Contains(ln, "escapes to heap") && !strings.Contains(ln, "moved to heap") {
			continue
		}
		parts := strings.SplitN(ln, ":", 4)
		if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
			continue
		}
		line, err1 := strconv.Atoi(parts[1])
		col, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		sites = append(sites, EscapeSite{
			File: filepath.ToSlash(parts[0]),
			Line: line,
			Col:  col,
			Msg:  strings.TrimSpace(parts[3]),
		})
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Msg < b.Msg
	})
	return sites
}

// AttributeEscapes assigns escape sites to the hot functions whose
// declarations span them. Sites outside any hot function are dropped:
// cold code may allocate freely.
func AttributeEscapes(funcs []HotFunc, sites []EscapeSite) map[string][]EscapeSite {
	out := map[string][]EscapeSite{}
	for _, f := range funcs {
		if _, ok := out[f.Key]; !ok {
			out[f.Key] = nil
		}
		for _, s := range sites {
			if s.File == f.File && s.Line >= f.StartLine && s.Line <= f.EndLine {
				out[f.Key] = append(out[f.Key], s)
			}
		}
	}
	return out
}

// ParseBudget reads an alloc.budget file: line-oriented,
// `<pkgpath>.<label> <count>`, #-comments and blank lines skipped.
func ParseBudget(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	counts := map[string]int{}
	for i, ln := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(ln)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: budget entry needs `<function> <count>`, got %q", path, i+1, line)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%s:%d: bad escape count %q", path, i+1, fields[1])
		}
		if _, dup := counts[fields[0]]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate budget entry for %s", path, i+1, fields[0])
		}
		counts[fields[0]] = n
	}
	return counts, nil
}

// FormatBudget renders a budget file from attributed escape counts,
// sorted by function key.
func FormatBudget(attributed map[string][]EscapeSite) []byte {
	keys := make([]string, 0, len(attributed))
	for k := range attributed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# Escape budget for //thesaurus:hotpath functions (docs/static-analysis.md).\n")
	b.WriteString("# Format: <pkgpath>.<function> <compiler-proven escape sites>\n")
	b.WriteString("# Regenerate with `make alloc-budget`; CI fails on any drift in either direction.\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, len(attributed[k]))
	}
	return []byte(b.String())
}

// DiffBudget compares attributed escapes against the committed budget
// and returns human-readable failures: new escapes (with the compiler's
// exact sites), stale over-budget entries, hot functions missing from
// the budget, and budget entries whose function lost its pragma.
func DiffBudget(budget map[string]int, attributed map[string][]EscapeSite) []string {
	keys := make([]string, 0, len(attributed))
	for k := range attributed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var failures []string
	for _, k := range keys {
		sites := attributed[k]
		want, ok := budget[k]
		switch {
		case !ok:
			failures = append(failures, fmt.Sprintf(
				"%s is //thesaurus:hotpath but missing from the budget (%d escape site(s)); add it via `make alloc-budget` and justify any non-zero count", k, len(sites)))
		case len(sites) > want:
			msg := fmt.Sprintf("%s: %d escape site(s), budget allows %d:", k, len(sites), want)
			for _, s := range sites {
				msg += "\n\tnew escape at " + s.String()
			}
			failures = append(failures, msg)
		case len(sites) < want:
			failures = append(failures, fmt.Sprintf(
				"%s: budget allows %d escape site(s) but the compiler proves only %d; ratchet the budget down via `make alloc-budget`", k, want, len(sites)))
		}
	}
	var stale []string
	for k := range budget {
		if _, ok := attributed[k]; !ok {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	for _, k := range stale {
		failures = append(failures, fmt.Sprintf(
			"budget entry %s has no //thesaurus:hotpath function; delete it or restore the pragma", k))
	}
	return failures
}

// EscapeRow is one hot function's escape accounting in the
// machine-readable report (`thesauruslint -escapes -json`).
type EscapeRow struct {
	// Function is the budget key, "<pkgpath>.<label>".
	Function  string `json:"function"`
	File      string `json:"file,omitempty"`
	StartLine int    `json:"start_line,omitempty"`
	EndLine   int    `json:"end_line,omitempty"`
	// Budget is the committed allowance; null when the function is
	// missing from the budget file.
	Budget  *int         `json:"budget"`
	Escapes []EscapeSite `json:"escapes"`
	// Status mirrors DiffBudget's verdicts: "ok" (counts match), "over"
	// (compiler proves more sites than budgeted), "stale" (budget allows
	// more than reality: ratchet it down), "unbudgeted" (hot function
	// absent from the budget), "orphaned" (budget entry whose function
	// lost its pragma; only Function and Budget are set).
	Status string `json:"status"`
}

// BuildEscapeReport assembles the -escapes -json rows: one per hot
// function in budget-key order, then one per orphaned budget entry. A
// report where every status is "ok" is exactly a passing DiffBudget.
func BuildEscapeReport(funcs []HotFunc, attributed map[string][]EscapeSite, budget map[string]int) []EscapeRow {
	byKey := map[string]HotFunc{}
	for _, f := range funcs {
		// Duplicate labels in one package keep the first declaration, the
		// same ordering ScanHotFuncs emits.
		if _, ok := byKey[f.Key]; !ok {
			byKey[f.Key] = f
		}
	}
	keys := make([]string, 0, len(attributed))
	for k := range attributed {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var rows []EscapeRow
	for _, k := range keys {
		sites := attributed[k]
		if sites == nil {
			sites = []EscapeSite{}
		}
		row := EscapeRow{Function: k, Escapes: sites, Status: "unbudgeted"}
		if f, ok := byKey[k]; ok {
			row.File, row.StartLine, row.EndLine = f.File, f.StartLine, f.EndLine
		}
		if want, ok := budget[k]; ok {
			w := want
			row.Budget = &w
			switch {
			case len(sites) > want:
				row.Status = "over"
			case len(sites) < want:
				row.Status = "stale"
			default:
				row.Status = "ok"
			}
		}
		rows = append(rows, row)
	}
	var orphaned []string
	for k := range budget {
		if _, ok := attributed[k]; !ok {
			orphaned = append(orphaned, k)
		}
	}
	sort.Strings(orphaned)
	for _, k := range orphaned {
		w := budget[k]
		rows = append(rows, EscapeRow{Function: k, Budget: &w, Escapes: []EscapeSite{}, Status: "orphaned"})
	}
	return rows
}

// readModulePath extracts the module path from go.mod, mirroring
// NewLoader without constructing a type-checking loader.
func readModulePath(moduleDir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, ln := range strings.Split(string(data), "\n") {
		ln = strings.TrimSpace(ln)
		if rest, ok := strings.CutPrefix(ln, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", moduleDir)
}
