package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `for … range` over a map whose body feeds ordered
// output — appending to a slice, writing a builder/table/testing log,
// sending on a channel, or concatenating a string — without a
// subsequent deterministic sort. Go randomizes map iteration order per
// run, so this is exactly the bug shape that breaks the repository's
// byte-identical-report invariant. The sanctioned pattern is to collect
// the keys, sort them, and range over the sorted slice; a slice that is
// appended in the loop and sorted afterwards (the key-collection idiom)
// is recognized and allowed.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration that feeds ordered output without a deterministic sort",
	Run:  runMapOrder,
}

// orderedWriteMethods are method names that emit into an ordered sink.
var orderedWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "AddRowf": true,
}

// testLogMethods are the testing.TB methods that render output (or stop
// the test) in iteration order.
var testLogMethods = map[string]bool{
	"Error": true, "Errorf": true, "Fatal": true, "Fatalf": true,
	"Log": true, "Logf": true, "Skip": true, "Skipf": true,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		file := f
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMap(pass.Info.TypeOf(rng.X)) {
				return true
			}
			c := &mapOrderCheck{
				pass:    pass,
				file:    file,
				rng:     rng,
				fn:      enclosingFunc(stack),
				visited: map[*ast.FuncLit]bool{},
			}
			c.checkBody(rng.Body)
			return true
		})
	}
}

// mapOrderCheck scans one map-range body, chasing calls into function
// literals declared in the same enclosing function (the local-closure
// idiom) so that appends routed through a helper closure are still
// attributed to the map iteration.
type mapOrderCheck struct {
	pass    *Pass
	file    *ast.File
	rng     *ast.RangeStmt
	fn      ast.Node
	visited map[*ast.FuncLit]bool
	// locals are extra spans (closure bodies on the call path) whose
	// declarations count as loop-local rather than outer state.
	locals []span
	// fixes caches the collect-keys-sort-iterate rewrite for this range
	// (built at most once, attached to every finding it would resolve).
	fixes      []SuggestedFix
	fixesBuilt bool
}

type span struct{ lo, hi token.Pos }

// reportf records a finding attributed to this map range, attaching the
// suggested collect-keys-sort-iterate rewrite when one can be built.
func (c *mapOrderCheck) reportf(pos token.Pos, format string, args ...any) {
	if !c.fixesBuilt {
		c.fixesBuilt = true
		c.fixes = buildMapOrderFix(c.pass, c.file, c.rng)
	}
	c.pass.ReportFixf(pos, c.fixes, format, args...)
}

func (c *mapOrderCheck) checkBody(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			c.reportf(s.Pos(),
				"channel send inside map iteration: receive order follows the randomized map order; "+
					"iterate a sorted key slice")
		case *ast.AssignStmt:
			checkMapRangeAssign(c, s)
		case *ast.CallExpr:
			checkMapRangeCall(c, s)
			c.chaseLocalClosure(s)
		}
		return true
	})
}

// chaseLocalClosure follows a call to a closure variable defined in the
// enclosing function and scans its body under the same rules.
func (c *mapOrderCheck) chaseLocalClosure(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || c.fn == nil {
		return
	}
	obj, ok := objectOf(c.pass.Info, id).(*types.Var)
	if !ok {
		return
	}
	fl := localFuncLit(c.pass, c.fn, obj)
	if fl == nil || c.visited[fl] {
		return
	}
	c.visited[fl] = true
	c.locals = append(c.locals, span{fl.Pos(), fl.End()})
	c.checkBody(fl.Body)
	c.locals = c.locals[:len(c.locals)-1]
}

// localFuncLit finds the function literal bound to obj inside fn
// (`consider := func(…) {…}` or `var consider = func(…) {…}`).
func localFuncLit(pass *Pass, fn ast.Node, obj types.Object) *ast.FuncLit {
	var found *ast.FuncLit
	ast.Inspect(fn, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || objectOf(pass.Info, lid) != obj || i >= len(as.Rhs) {
				continue
			}
			if fl, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok {
				found = fl
			}
		}
		return found == nil
	})
	return found
}

// checkMapRangeAssign flags appends and string concatenation onto state
// declared outside the loop.
func checkMapRangeAssign(c *mapOrderCheck, s *ast.AssignStmt) {
	pass := c.pass
	// s += expr onto an outer string accumulates in map order.
	if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
		t := pass.Info.TypeOf(s.Lhs[0])
		if b, ok := t.(*types.Basic); ok && b.Info()&types.IsString != 0 {
			if obj := c.outerObject(s.Lhs[0]); obj != nil {
				c.reportf(s.Pos(),
					"string %s concatenated inside map iteration: output follows the randomized map order; "+
						"iterate a sorted key slice", obj.Name())
			}
		}
		return
	}
	for i, rhs := range s.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isAppend(pass.Info, call) || i >= len(s.Lhs) {
			continue
		}
		obj := c.outerObject(s.Lhs[i])
		if obj == nil {
			continue
		}
		if c.fn != nil && sortedAfter(pass, c.fn, c.rng, obj) {
			continue // key-collection idiom: append then sort
		}
		c.reportf(s.Pos(),
			"append to %s inside map iteration without a subsequent sort: element order follows the "+
				"randomized map order; sort %s afterwards or iterate a sorted key slice",
			obj.Name(), obj.Name())
	}
}

// checkMapRangeCall flags writer-method and testing-log calls.
func checkMapRangeCall(c *mapOrderCheck, call *ast.CallExpr) {
	pass := c.pass
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fnObj, _ := objectOf(pass.Info, sel.Sel).(*types.Func)
	if fnObj == nil {
		return
	}
	sig, _ := fnObj.Type().(*types.Signature)
	if sig == nil {
		return
	}
	name := fnObj.Name()
	if sig.Recv() == nil {
		// Package function: fmt.Fprintf(w, …) into an outer writer.
		if fnObj.Pkg() != nil && fnObj.Pkg().Path() == "fmt" && len(call.Args) > 0 {
			if _, ok := fmtFormatters[name]; ok && name[0] == 'F' {
				if obj := c.outerObject(call.Args[0]); obj != nil {
					c.reportf(call.Pos(),
						"fmt.%s into %s inside map iteration: output follows the randomized map order; "+
							"iterate a sorted key slice", name, obj.Name())
				}
			}
		}
		return
	}
	// Receiver identity comes from the selector's operand type, not the
	// method's declared receiver: testing.T's log methods are promoted
	// from the embedded testing.common.
	recvType := pass.Info.TypeOf(sel.X)
	if testLogMethods[name] && isTestingTB(recvType) {
		c.reportf(call.Pos(),
			"%s.%s inside map iteration: test output and failure order follow the randomized map order; "+
				"iterate a sorted key slice", recvName(sel), name)
		return
	}
	if orderedWriteMethods[name] && isOutputSink(recvType) {
		if obj := c.outerObject(sel.X); obj != nil {
			c.reportf(call.Pos(),
				"%s.%s inside map iteration: output follows the randomized map order; "+
					"iterate a sorted key slice", obj.Name(), name)
		}
	}
}

// outerObject resolves e's root identifier to a variable declared
// outside the loop and outside any closure body on the current call
// path (closure-local declarations are not shared state).
func (c *mapOrderCheck) outerObject(e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	obj := objectOf(c.pass.Info, id)
	if obj == nil || declaredWithin(obj, c.rng.Pos(), c.rng.End()) {
		return nil
	}
	for _, sp := range c.locals {
		if declaredWithin(obj, sp.lo, sp.hi) {
			return nil
		}
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	return obj
}

// isOutputSink reports whether t renders ordered output: a
// strings.Builder, bytes.Buffer, the report package's Table, or any
// interface carrying the io.Writer method.
func isOutputSink(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "Write" {
				return true
			}
		}
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "strings" && obj.Name() == "Builder":
		return true
	case obj.Pkg().Path() == "bytes" && obj.Name() == "Buffer":
		return true
	case strings.HasSuffix(obj.Pkg().Path(), "internal/report"):
		return true
	}
	return false
}

// outerObject resolves e's root identifier to a variable declared
// outside the range statement (nil when the target is loop-local, e.g. a
// per-iteration builder).
func outerObject(pass *Pass, rng *ast.RangeStmt, e ast.Expr) types.Object {
	id := rootIdent(e)
	if id == nil {
		return nil
	}
	obj := objectOf(pass.Info, id)
	if obj == nil || declaredWithin(obj, rng.Pos(), rng.End()) {
		return nil
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	return obj
}

// sortedAfter reports whether, later in the enclosing function, obj is
// passed to a sort (package sort or slices, or a Sort method) — the
// collect-then-sort idiom that restores determinism.
func sortedAfter(pass *Pass, fn ast.Node, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := calleeFunc(pass.Info, call)
		if callee == nil {
			return true
		}
		sorter := false
		if pkg := callee.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
			sorter = true
		}
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && callee.Name() == "Sort" {
			sorter = true
		}
		if !sorter {
			return true
		}
		if mentionsObject(pass.Info, call, obj) {
			found = true
		}
		return !found
	})
	return found
}

// isTestingTB reports whether t is *testing.T/B/F or the testing.TB
// interface.
func isTestingTB(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "testing" {
		return false
	}
	switch obj.Name() {
	case "T", "B", "F", "TB":
		return true
	}
	return false
}

func recvName(sel *ast.SelectorExpr) string {
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return id.Name
	}
	return "t"
}
