package lint

import (
	"go/ast"
	"go/token"
)

// FloatOrder flags floating-point reductions whose accumulation order
// is nondeterministic: `sum += x` over a map iteration, or onto
// captured state from goroutine closures (where completion order
// decides the order of adds). Float addition is not associative, so
// even a mutex-guarded accumulator produces run-to-run last-bit drift —
// which the byte-identical reports then render. The fix is to
// accumulate into an index-ordered slice (or over sorted keys) and
// reduce serially.
var FloatOrder = &Analyzer{
	Name: "float-order",
	Doc:  "flag float accumulation over map iteration or goroutine completion order",
	Run:  runFloatOrder,
}

var reductionOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true,
}

func runFloatOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMap(pass.Info.TypeOf(rng.X)) {
				return true
			}
			checkFloatReductions(pass, rng)
			return true
		})
	}
	for _, fl := range concurrentFuncLits(pass) {
		checkConcurrentFloat(pass, fl)
	}
}

// checkFloatReductions flags float accumulators fed in map order.
func checkFloatReductions(pass *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || len(s.Lhs) != 1 {
			return true
		}
		lhs := s.Lhs[0]
		if !isFloat(pass.Info.TypeOf(lhs)) {
			return true
		}
		obj := outerObject(pass, rng, lhs)
		if obj == nil {
			return true
		}
		reduces := reductionOps[s.Tok]
		if !reduces && s.Tok == token.ASSIGN {
			// The x = x + e spelling of the same reduction.
			if be, ok := ast.Unparen(s.Rhs[0]).(*ast.BinaryExpr); ok &&
				(be.Op == token.ADD || be.Op == token.SUB || be.Op == token.MUL || be.Op == token.QUO) {
				reduces = mentionsObject(pass.Info, be, obj)
			}
		}
		if reduces {
			pass.Reportf(s.Pos(),
				"float accumulation into %s over map iteration: float addition is not associative, so the "+
					"randomized key order changes the result; reduce over a sorted key slice", obj.Name())
		}
		return true
	})
}

// checkConcurrentFloat flags float accumulators fed in goroutine
// completion order. Unlike parmap-discipline, a mutex is no excuse:
// locking removes the race but not the order dependence.
func checkConcurrentFloat(pass *Pass, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || len(s.Lhs) != 1 || !reductionOps[s.Tok] {
			return true
		}
		lhs := s.Lhs[0]
		if !isFloat(pass.Info.TypeOf(lhs)) {
			return true
		}
		if indexedWrite(pass, fl, lhs) {
			return true // disjoint per-worker slots reduce deterministically later
		}
		obj := capturedTarget(pass, fl, lhs)
		if obj == nil {
			return true
		}
		pass.Reportf(s.Pos(),
			"float accumulation into captured %s inside a goroutine closure: worker completion order "+
				"changes the rounding even under a mutex; accumulate per-index results and reduce serially",
			obj.Name())
		return true
	})
}
