package lint

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"sort"
)

// ApplyFixes applies every suggested fix carried by unsuppressed
// diagnostics, rewriting the affected files in place. All edits for one
// file are applied in a single pass over its original contents (spans
// index the pre-edit bytes), and the result is gofmt-formatted before it
// is written back — a fix that does not parse aborts without touching
// the file. Relative edit paths resolve against moduleDir. Returns the
// rewritten paths in sorted order.
func ApplyFixes(moduleDir string, diags []Diagnostic) ([]string, error) {
	perFile := map[string][]TextEdit{}
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		for _, f := range d.Fixes {
			for _, e := range f.Edits {
				perFile[e.File] = append(perFile[e.File], e)
			}
		}
	}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, rel := range files {
		path := rel
		if !filepath.IsAbs(path) {
			path = filepath.Join(moduleDir, rel)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: apply fixes: %w", err)
		}
		applied := ApplyEdits(src, perFile[rel])
		formatted, err := format.Source(applied)
		if err != nil {
			return nil, fmt.Errorf("lint: fixes for %s do not produce valid Go: %w", rel, err)
		}
		if err := os.WriteFile(path, formatted, 0o644); err != nil {
			return nil, fmt.Errorf("lint: apply fixes: %w", err)
		}
	}
	return files, nil
}
