package fixalloc

// Test-only roots gate nothing in production (hotpath-pragma: pragma in
// a _test.go file; allocgate ignores the root entirely).
//
//thesaurus:hotpath
func testOnlyRoot(n int) []byte {
	return make([]byte, n)
}
