// Package fixalloc is the allocgate violation fixture. Every allocation
// construct the gate knows is staged inside a //thesaurus:hotpath
// closure and paired with its sanctioned counterpart, so the golden
// diagnostics pin both what the analyzer catches and what it leaves
// alone. The pragma-grammar violations for hotpath-pragma live in
// pragmas.go; the test-file case lives in fixalloc_test.go.
package fixalloc

import "fmt"

type counter struct{ n int }

// The core allocation builtins (allocgate: make, new, &composite,
// slice literal, map literal).
//
//thesaurus:hotpath
func allocBuiltins(n int) int {
	buf := make([]byte, n)
	p := new(int)
	c := &counter{}
	s := []int{1, 2}
	m := map[int]int{}
	return len(buf) + *p + c.n + s[0] + len(m)
}

// Value struct and array literals are stack-resident (clean).
//
//thesaurus:hotpath
func valueLiterals() int {
	c := counter{n: 1}
	a := [4]int{1, 2, 3, 4}
	return c.n + a[0]
}

// An append bound with := starts a fresh heap slice (allocgate).
//
//thesaurus:hotpath
func appendFresh(xs []int) int {
	ys := append(xs, 1)
	return len(ys)
}

// x = append(x, …) amortizes into caller-provided capacity (clean).
//
//thesaurus:hotpath
func appendScratch(dst []int, k int) []int {
	dst = append(dst, k)
	return dst
}

// Formatting on the hot path (allocgate: denylisted fmt call).
//
//thesaurus:hotpath
func hotFormat(v int) string {
	return fmt.Sprintf("%d", v)
}

// Panic arguments are exempt: a dying process may format its last words
// (clean).
//
//thesaurus:hotpath
func hotGuard(v int) int {
	if v < 0 {
		panic(fmt.Sprintf("fixalloc: negative %d", v))
	}
	return v
}

// Explicit conversions that box or copy (allocgate: interface boxing,
// string↔[]byte).
//
//thesaurus:hotpath
func boxing(v int, s string) (any, int) {
	b := []byte(s)
	return any(v), len(b)
}

// consume has an interface parameter; passing a value boxes it at the
// call site even though the conversion is implicit.
func consume(v any) int {
	if n, ok := v.(int); ok {
		return n
	}
	return 0
}

// Implicit boxing into an interface parameter (allocgate).
//
//thesaurus:hotpath
func boxingArg(v int) int {
	return consume(v)
}

// Pointer-shaped arguments fit the interface word without boxing
// (clean).
//
//thesaurus:hotpath
func pointerArg(c *counter) int {
	return consume(c)
}

// decoder is the reachable-via-interface case: the closure walk resolves
// d.decode to every implementing type in the universe.
type decoder interface{ decode(n int) int }

type rawDec struct{}

func (rawDec) decode(n int) int { return n }

type heapDec struct{}

// Reached only through the decoder interface (allocgate: make inside).
func (heapDec) decode(n int) int {
	buf := make([]byte, n)
	return len(buf)
}

// The interface call itself is clean; the findings land in the
// implementations.
//
//thesaurus:hotpath
func viaInterface(d decoder, n int) int {
	return d.decode(n)
}

// chainHelper is reached transitively through a plain call (allocgate:
// new here, labelled with the helper, not the root).
func chainHelper(n int) *int {
	p := new(int)
	*p = n
	return p
}

// The root of the plain-call chain (clean itself).
//
//thesaurus:hotpath
func hotChain(n int) int {
	return *chainHelper(n)
}

// ring is the pragma-on-method case.
type ring struct {
	buf []int
	pos int
}

// Push is a hot-path root declared on a method; its steady state stays
// inside caller-owned storage (clean).
//
//thesaurus:hotpath
func (r *ring) Push(v int) {
	if r.pos == len(r.buf) {
		r.grow()
	}
	r.buf[r.pos] = v
	r.pos++
}

// grow is a sanctioned boundary: the walk does not descend, so the
// make/append inside stay unflagged (clean).
//
//thesaurus:allocok amortized capacity growth off the steady-state path
func (r *ring) grow() {
	next := make([]int, 2*len(r.buf)+1)
	copy(next, r.buf)
	r.buf = next
}

// Drain is a method root that allocates its result (allocgate: make).
//
//thesaurus:hotpath
func (r *ring) Drain() []int {
	out := make([]int, r.pos)
	copy(out, r.buf[:r.pos])
	r.pos = 0
	return out
}

// Closure and scheduling constructs (allocgate: method value, function
// literal, go statement, map iteration, defer in loop).
//
//thesaurus:hotpath
func closures(r *ring, m map[int]int) int {
	f := r.Push
	g := func(x int) int { return x }
	go g(1)
	total := 0
	for k, v := range m {
		defer r.grow()
		total += k + v
	}
	f(total)
	return g(total)
}

// Direct calls and slice-backed iteration (clean).
//
//thesaurus:hotpath
func direct(r *ring, xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	r.Push(total)
	return total
}

// sink is package-level interface storage: assigning a value into it
// boxes even though no call is in sight.
var sink any

// holder has an interface field for the struct-literal boxing case.
type holder struct{ v any }

// Implicit boxing away from call arguments (allocgate: assignment,
// declaration, return, channel send, struct-literal field; clean for
// pointers, interfaces, and nil).
//
//thesaurus:hotpath
func implicitBoxes(c *counter, ch chan any) any {
	sink = c.n
	sink = c
	sink = nil
	var local any = c.n
	h := holder{v: c.n}
	hp := holder{local}
	ch <- c.n
	ch <- hp.v
	_ = h
	return c.n
}

// valueAlloc is reached only through function values (allocgate: make
// inside, labelled with valueAlloc, found from both the local and the
// package-level binding).
func valueAlloc(n int) int {
	buf := make([]byte, n)
	return len(buf)
}

func passthrough(n int) int { return n }

// hook is a package-level function-value binding; the walk follows it
// from any call site in the unit (the closure dedup keeps valueAlloc's
// finding single even though two bindings reach it).
var hook = valueAlloc

// Calls through function values are followed to every function bound to
// the identifier, flow-insensitively (the conditional rebind still
// counts). The calls themselves are clean; the finding lands inside
// valueAlloc.
//
//thesaurus:hotpath
func viaFuncValue(n int) int {
	f := passthrough
	if n > 0 {
		f = valueAlloc
	}
	return f(n) + hook(n)
}

// A denylisted function reached through a binding is flagged at the call
// site (allocgate: fmt.Sprintf via the format variable).
//
//thesaurus:hotpath
func viaDeniedValue(n int) string {
	format := fmt.Sprintf
	return format("%d", n)
}

// hooks carries function values in struct fields. Bindings key on the
// field object, so an assignment or composite literal anywhere in the
// unit counts for every instance of the type.
type hooks struct {
	fn   func(int) int
	deny func(string, ...any) string
}

// literalAlloc is reached only through composite-literal field bindings
// (allocgate: make inside, found from the keyed pkgHooks literal and the
// positional literal in viaPositionalField).
func literalAlloc(n int) int {
	buf := make([]int, n)
	return len(buf)
}

// The package-level keyed literal binds literalAlloc to the fn field.
var pkgHooks = hooks{fn: literalAlloc}

// Calls through struct fields follow every function bound to the field —
// here passthrough (assignment below) and valueAlloc (the pkgHooks
// literal). The denylisted fmt.Sprintf carried through the deny field is
// flagged at the call site (allocgate: fmt.Sprintf via field).
//
//thesaurus:hotpath
func viaFieldValue(n int) int {
	h := hooks{}
	h.fn = passthrough
	h.deny = fmt.Sprintf
	_ = h.deny("%d", n)
	return h.fn(n) + pkgHooks.fn(n)
}

// Positional struct literals bind fields by index: the h.fn call below
// resolves literalAlloc through the unkeyed literal.
//
//thesaurus:hotpath
func viaPositionalField(n int) int {
	h := hooks{literalAlloc, nil}
	return h.fn(n)
}

// sliceAlloc is reached only through slice/array element bindings
// (allocgate: make inside, found through the literal elements and the
// index assignments below; the closure dedup keeps the finding single).
func sliceAlloc(n int) int {
	buf := make([]byte, n)
	return len(buf)
}

// pipeline is a package-level slice-of-functions binding: every element
// of the literal — positional or indexed — joins the container's callee
// set.
var pipeline = []func(int) int{passthrough, 1: sliceAlloc}

// Calls through slice and array elements follow every function bound to
// the container, by composite literal or index assignment, whichever
// index the call site uses. The denylisted fmt.Sprintf stored by index
// assignment is flagged at the call site (allocgate: fmt.Sprintf via
// element).
//
//thesaurus:hotpath
func viaElementValue(n int) int {
	var stages [2]func(int) int
	stages[0] = passthrough
	stages[1] = sliceAlloc
	local := []func(int) int{passthrough}
	local[0] = sliceAlloc
	var deniers [1]func(string, ...any) string
	deniers[0] = fmt.Sprintf
	_ = deniers[0]("%d", n)
	return stages[0](n) + local[0](n) + pipeline[n%2](n)
}
