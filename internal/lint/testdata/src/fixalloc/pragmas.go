// Pragma-grammar violations, one per hotpath-pragma clause. The
// functions themselves are empty: only the directives are under test.
package fixalloc

// hotpath configures nothing (hotpath-pragma: unexpected argument).
//
//thesaurus:hotpath every call
func argPragma() {}

// The audit trail is mandatory (hotpath-pragma: missing reason).
//
//thesaurus:allocok
func bareAllocOK() {}

// Misspelled verb (hotpath-pragma: unknown pragma).
//
//thesaurus:hotpth
func typoVerb() {}

// Restated directive (hotpath-pragma: duplicate).
//
//thesaurus:hotpath
//thesaurus:hotpath
func doubled() {}

// A function cannot be a root and a boundary at once (hotpath-pragma:
// conflict).
//
//thesaurus:hotpath
//thesaurus:allocok it cannot be both
func conflicted() {}

// A directive inside a body binds to nothing (hotpath-pragma: detached).
func detachedHost() int {
	//thesaurus:hotpath
	return 0
}
