package fixmaporder

// Pair is an unordered (struct) key type.
type Pair struct{ A, B int }

// PairSums is flagged, but carries no fix: struct keys have no < for the
// sort the rewrite relies on.
func PairSums(m map[Pair]int) []int {
	var out []int
	for p, v := range m {
		out = append(out, p.A+v)
	}
	return out
}

// FromCall is flagged, but carries no fix: the map operand is a call,
// which the rewrite would have to evaluate three times.
func FromCall() []string {
	var out []string
	for k := range load() {
		out = append(out, k)
	}
	return out
}

func load() map[string]bool { return nil }
