// Package fixmaporder exercises the maporder suggested-fix builder:
// every violation in this file should carry a machine-applicable
// collect-keys-sort-iterate rewrite, while unfixable.go holds the shapes
// the builder must decline.
package fixmaporder

import "fmt"

// CountsReport appends in map order: fixable, string key, value used.
func CountsReport(counts map[string]int) []string {
	var out []string
	for name, n := range counts {
		out = append(out, fmt.Sprintf("%s=%d", name, n))
	}
	return out
}

// Widths concatenates in map order: fixable, int key, key-only range.
func Widths(widths map[int]bool) string {
	s := ""
	for w := range widths {
		s += fmt.Sprint(w)
	}
	return s
}

// ID is a package-local ordered key type: the fix must name it.
type ID uint32

// IDs appends in map order: fixable, named key type.
func IDs(m map[ID]string) []ID {
	var out []ID
	for id := range m {
		out = append(out, id)
	}
	return out
}
