package fixmaporder

import (
	"fmt"
	"sort"
)

// Labels appends in map order: fixable, and the file already imports
// sort, so the rewrite must not add a second import.
func Labels(m map[uint64]string) []string {
	var out []string
	for id, lab := range m {
		out = append(out, fmt.Sprintf("%d:%s", id, lab))
	}
	return out
}

// SortedLabels is the clean counterpart (collect-then-sort): no finding.
func SortedLabels(m map[uint64]string) []string {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
