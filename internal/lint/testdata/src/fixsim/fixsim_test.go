package fixsim

import (
	"testing"
	"time"

	"repro/internal/xrand"
)

// Test files are exempt from nodeterm-imports: timing a fixture is fine.
func TestClockAllowedInTests(t *testing.T) {
	_ = time.Now()
}

// testing.TB logging in map order is still flagged in test files
// (maporder) — failure output must not depend on iteration order.
func TestLogInMapOrder(t *testing.T) {
	m := map[string]int{"a": 1, "b": 2}
	for k, v := range m {
		if v < 0 {
			t.Errorf("%s negative", k)
		}
	}
}

// A single literal seed per test file is fine; reusing the same literal
// for a second generator is flagged (xrand-seed).
func TestSeeds(t *testing.T) {
	a := xrand.New(99)
	b := xrand.New(99)
	if a.Uint64() != b.Uint64() {
		t.Fatal("same seed must give same stream")
	}
}
