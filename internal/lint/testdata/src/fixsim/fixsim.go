// Package fixsim is a thesauruslint test fixture. It is linted under a
// pretend simulation-package import path; every construct below is
// either a deliberate violation (pinned by the golden diagnostics) or a
// deliberately clean counterpart proving the analyzers do not overreach.
package fixsim

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/xrand"
)

// Config mirrors the repo's config-carried-seed convention.
type Config struct{ Seed uint64 }

// Nondeterministic inputs (nodeterm-imports).
func wallClock() int64    { return time.Now().UnixNano() }
func environment() string { return os.Getenv("HOME") }
func legacyRand() int     { return rand.Int() }

// fmt rendering of a map value (nodeterm-imports).
func renderMap(m map[string]int) string { return fmt.Sprintf("%v", m) }

// Map iteration feeding ordered output (maporder).
func mapOrderViolations(m map[string]int) ([]string, string, string) {
	var keys []string
	var blob string
	var sb strings.Builder
	for k, v := range m {
		keys = append(keys, k)
		blob += k
		fmt.Fprintf(&sb, "%s=%d\n", k, v)
	}
	return keys, blob, sb.String()
}

// The collect-then-sort idiom is clean.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Channel send in map order (maporder).
func drain(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k
	}
}

// Appends routed through a local closure are still attributed to the
// map iteration (maporder chases the closure).
func closureAppend(m map[string]int) []int {
	var vals []int
	record := func(v int) {
		vals = append(vals, v)
	}
	for _, v := range m {
		record(v)
	}
	return vals
}

// ParMap stands in for harness.ParMap: the analyzer matches callbacks
// handed to any function of this name.
func ParMap(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

var errFixture = errors.New("fixture")

// Goroutine discipline (parmap-discipline).
func badFanOut(items []int) []int {
	var out []int
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out = append(out, 1)
		}()
	}
	wg.Wait()
	return out
}

func badCounter(n int) int {
	total := 0
	ParMap(n, func(i int) {
		total++
	})
	return total
}

// Write-by-index is the sanctioned pattern (clean).
func goodFanOut(items []int) []int {
	out := make([]int, len(items))
	ParMap(len(items), func(i int) {
		out[i] = items[i] * 2
	})
	return out
}

// A mutex-guarded scalar write is tolerated by parmap-discipline.
func guardedFirst(n int) error {
	var mu sync.Mutex
	var first error
	ParMap(n, func(i int) {
		mu.Lock()
		if first == nil {
			first = errFixture
		}
		mu.Unlock()
	})
	return first
}

// Literal seed in simulation code (xrand-seed).
func magicSeed() uint64 { return xrand.New(12345).Uint64() }

// Config-derived seed is clean.
func configSeed(cfg Config) uint64 { return xrand.New(cfg.Seed).Uint64() }

// Float reduction in map order (float-order).
func mapSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum / float64(len(m))
}

// Mutex-guarded float accumulation still depends on completion order
// (float-order; parmap-discipline stays quiet because of the mutex).
func parallelSum(xs []float64) float64 {
	var mu sync.Mutex
	var sum float64
	ParMap(len(xs), func(i int) {
		mu.Lock()
		sum += xs[i]
		mu.Unlock()
	})
	return sum
}

// resource mirrors the repo's release lifecycle: Release() returns the
// final statistics and frees the bulk storage.
type resource struct{ n int }

func (r *resource) Release() int { return r.n }

// Reading a released resource (releaseuse).
func useAfterRelease(r *resource) int {
	total := r.Release()
	return total + r.n
}

// A second Release is itself a use of the released resource (releaseuse).
func doubleRelease(r *resource) int {
	r.Release()
	return r.Release()
}

// Snapshot-then-release — every read before the release — is clean.
func releaseLast(r *resource) int {
	n := r.n
	return n + r.Release()
}

// Reassignment starts a fresh lifecycle (clean).
func recycled(r *resource) int {
	r.Release()
	r = &resource{n: 1}
	return r.n
}

// A deferred release runs at function exit, after every use (clean).
func deferredRelease(r *resource) int {
	defer r.Release()
	return r.n
}

// Per-slot accumulation with a serial reduce is clean.
func indexedSum(xs []float64) float64 {
	parts := make([]float64, len(xs))
	ParMap(len(xs), func(i int) {
		parts[i] += xs[i]
	})
	var sum float64
	for _, p := range parts {
		sum += p
	}
	return sum
}

// A hot-path root that allocates a fresh result per call (allocgate).
//
//thesaurus:hotpath
func hotCollect(keys []int) []int {
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, k)
	}
	return out
}

// The sanctioned shape reuses a caller-provided scratch slice (clean).
//
//thesaurus:hotpath
func hotCollectInto(dst, keys []int) []int {
	dst = dst[:0]
	for _, k := range keys {
		dst = append(dst, k)
	}
	return dst
}

// An allocation boundary must state its reason (hotpath-pragma).
//
//thesaurus:allocok
func coldGrow(xs []int) []int {
	grown := make([]int, len(xs), 2*len(xs)+1)
	copy(grown, xs)
	return grown
}

// A well-formed boundary carries its audit trail (clean).
//
//thesaurus:allocok amortized growth off the steady-state path
func coldGrowAudited(xs []int) []int {
	grown := make([]int, len(xs), 2*len(xs)+1)
	copy(grown, xs)
	return grown
}
