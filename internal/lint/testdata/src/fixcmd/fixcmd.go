// Package main is a thesauruslint test fixture linted under a pretend
// repro/cmd/ import path: front-ends may read the clock and the
// environment and may use literal seeds, so the suite must report
// nothing here.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/xrand"
)

func main() {
	start := time.Now()
	_ = os.Getenv("HOME")
	r := xrand.New(1)
	fmt.Println(r.Uint64(), time.Since(start))
}
