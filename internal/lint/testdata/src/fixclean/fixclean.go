// Package fixclean is a thesauruslint test fixture containing only
// sanctioned patterns: the whole suite must pass it with zero
// diagnostics.
package fixclean

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/xrand"
)

type Config struct{ Seed uint64 }

// Collect keys, sort, then render: the canonical deterministic shape.
func render(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%d\n", k, m[k])
	}
	return sb.String()
}

func parMap(n int, f func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

type table struct{ rows int }

func (t *table) Release() int { return t.rows }

// The sanctioned lifecycle: read everything first, release last, and
// keep only the returned snapshot.
func drain(t *table) int {
	rows := t.rows
	return rows + t.Release()
}

// Workers write disjoint slots; the reduce is serial and index-ordered.
func sum(cfg Config, n int) float64 {
	parts := make([]float64, n)
	parMap(n, func(i int) {
		r := xrand.New(cfg.Seed + uint64(i))
		parts[i] = r.Float64()
	})
	var total float64
	for _, p := range parts {
		total += p
	}
	return total
}
