package fixparmap

import "sync"

// NoIndex appends from a closure with no worker-index parameter: flagged,
// but no slot to write into, so no fix is offered.
func NoIndex(n int) []int {
	out := make([]int, 0, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out = append(out, 1)
		}()
	}
	wg.Wait()
	return out
}

// SecondWrite appends twice per worker: the length rewrite would drop
// half the results, so no fix is offered for either append.
func SecondWrite(n int) []int {
	out := make([]int, 0, 2*n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out = append(out, i)
			out = append(out, -i)
		}(i)
	}
	wg.Wait()
	return out
}

// NoCapacity declares the slice without a capacity: the rewrite cannot
// know the slot count, so no fix is offered.
func NoCapacity(n int) []int {
	var out []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out = append(out, i)
		}(i)
	}
	wg.Wait()
	return out
}
