// Package fixparmap exercises the parmap-discipline suggested-fix
// builder: the violation in this file should carry the machine-applicable
// write-by-index rewrite, while unfixable.go holds the shapes the builder
// must decline.
package fixparmap

import "sync"

// Squares gathers worker results by appending to a captured slice:
// fixable — single int-parameter closure, capacity-only make, sole write.
func Squares(n int) []int {
	out := make([]int, 0, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out = append(out, i*i)
		}(i)
	}
	wg.Wait()
	return out
}
