package lint

import (
	"encoding/json"
	"go/format"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// mapOrderFixtureDiags lints the fixmaporder fixture and returns its
// maporder findings (edit spans carry module-relative paths).
func mapOrderFixtureDiags(t *testing.T, r *Runner) []Diagnostic {
	t.Helper()
	diags, err := r.CheckDirAs(filepath.Join("testdata", "src", "fixmaporder"), "repro/internal/fixmaporder")
	if err != nil {
		t.Fatal(err)
	}
	var out []Diagnostic
	for _, d := range diags {
		if d.Analyzer == "maporder" {
			out = append(out, d)
		}
	}
	return out
}

// TestMapOrderFixGolden pins the exact suggested fixes — spans, offsets,
// and replacement text — as JSON. Fixable loops must carry exactly one
// fix; the shapes the builder cannot rewrite safely must carry none.
func TestMapOrderFixGolden(t *testing.T) {
	r := testRunner(t)
	diags := mapOrderFixtureDiags(t, r)
	if len(diags) == 0 {
		t.Fatal("fixture produced no maporder findings")
	}
	for i := range diags {
		diags[i].File = filepath.Base(diags[i].File)
		for fi := range diags[i].Fixes {
			for ei := range diags[i].Fixes[fi].Edits {
				e := &diags[i].Fixes[fi].Edits[ei]
				e.File = filepath.Base(e.File)
			}
		}
		base := diags[i].File
		nfix := len(diags[i].Fixes)
		if base == "unfixable.go" && nfix != 0 {
			t.Errorf("%s:%d: unfixable shape got %d fixes", base, diags[i].Line, nfix)
		}
		if base != "unfixable.go" && nfix != 1 {
			t.Errorf("%s:%d: fixable shape got %d fixes, want 1", base, diags[i].Line, nfix)
		}
	}
	got, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "fixmaporder", "fixes.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run FixGolden -update ./internal/lint` to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("fixes differ from %s\ngot:\n%s", golden, got)
	}
}

// TestMapOrderFixApplies machine-applies every suggested fix and checks
// the result: it must survive gofmt (i.e. still parse) and match the
// checked-in rewritten file exactly.
func TestMapOrderFixApplies(t *testing.T) {
	r := testRunner(t)
	diags := mapOrderFixtureDiags(t, r)
	perFile := map[string][]TextEdit{}
	for _, d := range diags {
		for _, f := range d.Fixes {
			for _, e := range f.Edits {
				perFile[e.File] = append(perFile[e.File], e)
			}
		}
	}
	if len(perFile) == 0 {
		t.Fatal("no edits to apply")
	}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	// Deterministic order for failure output (and maporder compliance).
	sort.Strings(files)
	for _, rel := range files {
		base := filepath.Base(rel)
		// Edit paths are as the loader saw them: relative to this package
		// directory in-test, module-relative from the CLI.
		src, err := os.ReadFile(rel)
		if err != nil {
			src, err = os.ReadFile(filepath.Join(r.Loader.ModuleDir, rel))
		}
		if err != nil {
			t.Fatal(err)
		}
		applied := ApplyEdits(src, perFile[rel])
		formatted, err := format.Source(applied)
		if err != nil {
			t.Fatalf("%s: applied fixes do not parse: %v\n%s", base, err, applied)
		}
		golden := filepath.Join("testdata", "fixmaporder", base+".applied")
		if *update {
			if err := os.WriteFile(golden, formatted, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (run `go test -run FixApplies -update ./internal/lint` to create)", err)
		}
		if string(formatted) != string(want) {
			t.Errorf("%s: applied result differs from %s\ngot:\n%s", base, golden, formatted)
		}
	}
	// The rewritten sources must themselves be lint-clean: re-running
	// maporder over the applied goldens finds nothing.
	cleanDir := t.TempDir()
	pkgDir := filepath.Join(cleanDir, "fixmaporder")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(filepath.Join("testdata", "src", "fixmaporder"))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range names {
		src, err := os.ReadFile(filepath.Join("testdata", "src", "fixmaporder", de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if applied, err := os.ReadFile(filepath.Join("testdata", "fixmaporder", de.Name()+".applied")); err == nil {
			src = applied
		}
		if err := os.WriteFile(filepath.Join(pkgDir, de.Name()), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	clean, err := r.CheckDirAs(pkgDir, "repro/internal/fixmaporder")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range clean {
		if d.Analyzer != "maporder" {
			continue
		}
		if strings.Contains(d.File, "unfixable.go") {
			continue // no fix was offered there; still flagged by design
		}
		t.Errorf("applied fix did not silence the finding: %s", d)
	}
}

// TestApplyEditsOverlap pins the overlap discipline: when two fixes
// rewrite intersecting spans, the one applied first (highest offset)
// wins and the other is dropped whole, never spliced into the first's
// replacement text. The sanctioned same-offset pairing — a replacement
// plus an insertion at the same point — must keep working.
func TestApplyEditsOverlap(t *testing.T) {
	src := []byte("0123456789")
	cases := []struct {
		name  string
		edits []TextEdit
		want  string
	}{
		{
			"intersecting replacements drop the later span",
			[]TextEdit{
				{Offset: 2, End: 6, NewText: "AB"},
				{Offset: 4, End: 8, NewText: "CD"},
			},
			"0123CD89",
		},
		{
			"enclosing span dropped after inner span applied",
			[]TextEdit{
				{Offset: 2, End: 8, NewText: "W"},
				{Offset: 3, End: 5, NewText: "zz"},
			},
			"012zz56789",
		},
		{
			"same-offset replacement and insertion both apply",
			[]TextEdit{
				{Offset: 2, End: 2, NewText: "X"},
				{Offset: 2, End: 5, NewText: "Y"},
			},
			"01XY56789",
		},
		{
			"exact duplicates apply once",
			[]TextEdit{
				{Offset: 2, End: 4, NewText: "Q"},
				{Offset: 2, End: 4, NewText: "Q"},
			},
			"01Q456789",
		},
		{
			"adjacent spans both apply",
			[]TextEdit{
				{Offset: 2, End: 4, NewText: "A"},
				{Offset: 4, End: 6, NewText: "B"},
			},
			"01AB6789",
		},
	}
	for _, c := range cases {
		if got := string(ApplyEdits(src, c.edits)); got != c.want {
			t.Errorf("%s: got %q, want %q", c.name, got, c.want)
		}
	}
}

// TestFixIdempotence is the -fix convergence gate: applying fixes to the
// fixture, re-linting the rewritten sources, and applying again must
// rewrite nothing and leave the files byte-identical. A fix that spawns
// new fixable findings (or re-offers itself) would loop here.
func TestFixIdempotence(t *testing.T) {
	r := testRunner(t)
	pkgDir := filepath.Join(t.TempDir(), "fixmaporder")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "src", "fixmaporder"))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		src, err := os.ReadFile(filepath.Join("testdata", "src", "fixmaporder", de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(pkgDir, de.Name()), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	diags, err := r.CheckDirAs(pkgDir, "repro/internal/fixmaporder")
	if err != nil {
		t.Fatal(err)
	}
	// Edit paths for files outside the module stay absolute, so fixes
	// land on the temp copy.
	fixed, err := ApplyFixes(r.Loader.ModuleDir, diags)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) == 0 {
		t.Fatal("first pass applied no fixes")
	}
	after := map[string][]byte{}
	for _, de := range entries {
		data, err := os.ReadFile(filepath.Join(pkgDir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		after[de.Name()] = data
	}

	// Second pass over the rewritten sources: a fresh runner, exactly as
	// the CLI re-lints after -fix.
	r2 := testRunner(t)
	diags2, err := r2.CheckDirAs(pkgDir, "repro/internal/fixmaporder")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags2 {
		if len(d.Fixes) != 0 {
			t.Errorf("second pass still offers a fix: %s", d)
		}
	}
	fixed2, err := ApplyFixes(r2.Loader.ModuleDir, diags2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed2) != 0 {
		t.Errorf("second pass rewrote %v; -fix must converge in one pass", fixed2)
	}
	for _, de := range entries {
		data, err := os.ReadFile(filepath.Join(pkgDir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(after[de.Name()]) {
			t.Errorf("%s changed between passes", de.Name())
		}
	}
}
