package lint

import (
	"encoding/json"
	"go/format"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// mapOrderFixtureDiags lints the fixmaporder fixture and returns its
// maporder findings (edit spans carry module-relative paths).
func mapOrderFixtureDiags(t *testing.T, r *Runner) []Diagnostic {
	t.Helper()
	diags, err := r.CheckDirAs(filepath.Join("testdata", "src", "fixmaporder"), "repro/internal/fixmaporder")
	if err != nil {
		t.Fatal(err)
	}
	var out []Diagnostic
	for _, d := range diags {
		if d.Analyzer == "maporder" {
			out = append(out, d)
		}
	}
	return out
}

// TestMapOrderFixGolden pins the exact suggested fixes — spans, offsets,
// and replacement text — as JSON. Fixable loops must carry exactly one
// fix; the shapes the builder cannot rewrite safely must carry none.
func TestMapOrderFixGolden(t *testing.T) {
	r := testRunner(t)
	diags := mapOrderFixtureDiags(t, r)
	if len(diags) == 0 {
		t.Fatal("fixture produced no maporder findings")
	}
	for i := range diags {
		diags[i].File = filepath.Base(diags[i].File)
		for fi := range diags[i].Fixes {
			for ei := range diags[i].Fixes[fi].Edits {
				e := &diags[i].Fixes[fi].Edits[ei]
				e.File = filepath.Base(e.File)
			}
		}
		base := diags[i].File
		nfix := len(diags[i].Fixes)
		if base == "unfixable.go" && nfix != 0 {
			t.Errorf("%s:%d: unfixable shape got %d fixes", base, diags[i].Line, nfix)
		}
		if base != "unfixable.go" && nfix != 1 {
			t.Errorf("%s:%d: fixable shape got %d fixes, want 1", base, diags[i].Line, nfix)
		}
	}
	got, err := json.MarshalIndent(diags, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "fixmaporder", "fixes.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run FixGolden -update ./internal/lint` to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("fixes differ from %s\ngot:\n%s", golden, got)
	}
}

// TestMapOrderFixApplies machine-applies every suggested fix and checks
// the result: it must survive gofmt (i.e. still parse) and match the
// checked-in rewritten file exactly.
func TestMapOrderFixApplies(t *testing.T) {
	r := testRunner(t)
	diags := mapOrderFixtureDiags(t, r)
	perFile := map[string][]TextEdit{}
	for _, d := range diags {
		for _, f := range d.Fixes {
			for _, e := range f.Edits {
				perFile[e.File] = append(perFile[e.File], e)
			}
		}
	}
	if len(perFile) == 0 {
		t.Fatal("no edits to apply")
	}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	// Deterministic order for failure output (and maporder compliance).
	sort.Strings(files)
	for _, rel := range files {
		base := filepath.Base(rel)
		// Edit paths are as the loader saw them: relative to this package
		// directory in-test, module-relative from the CLI.
		src, err := os.ReadFile(rel)
		if err != nil {
			src, err = os.ReadFile(filepath.Join(r.Loader.ModuleDir, rel))
		}
		if err != nil {
			t.Fatal(err)
		}
		applied := ApplyEdits(src, perFile[rel])
		formatted, err := format.Source(applied)
		if err != nil {
			t.Fatalf("%s: applied fixes do not parse: %v\n%s", base, err, applied)
		}
		golden := filepath.Join("testdata", "fixmaporder", base+".applied")
		if *update {
			if err := os.WriteFile(golden, formatted, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%v (run `go test -run FixApplies -update ./internal/lint` to create)", err)
		}
		if string(formatted) != string(want) {
			t.Errorf("%s: applied result differs from %s\ngot:\n%s", base, golden, formatted)
		}
	}
	// The rewritten sources must themselves be lint-clean: re-running
	// maporder over the applied goldens finds nothing.
	cleanDir := t.TempDir()
	pkgDir := filepath.Join(cleanDir, "fixmaporder")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(filepath.Join("testdata", "src", "fixmaporder"))
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range names {
		src, err := os.ReadFile(filepath.Join("testdata", "src", "fixmaporder", de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if applied, err := os.ReadFile(filepath.Join("testdata", "fixmaporder", de.Name()+".applied")); err == nil {
			src = applied
		}
		if err := os.WriteFile(filepath.Join(pkgDir, de.Name()), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	clean, err := r.CheckDirAs(pkgDir, "repro/internal/fixmaporder")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range clean {
		if d.Analyzer != "maporder" {
			continue
		}
		if strings.Contains(d.File, "unfixable.go") {
			continue // no fix was offered there; still flagged by design
		}
		t.Errorf("applied fix did not silence the finding: %s", d)
	}
}
