package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// walkStack traverses n depth-first, invoking fn with each node and the
// stack of its ancestors (outermost first, excluding the node itself).
// Returning false prunes the subtree.
func walkStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Walk(stackVisitor{stack: &stack, fn: fn}, n)
}

type stackVisitor struct {
	stack *[]ast.Node
	fn    func(n ast.Node, stack []ast.Node) bool
}

// Visit pushes each visited node onto the shared stack; ast.Walk calls
// Visit(nil) after a node's children, which pops it again.
func (v stackVisitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		*v.stack = (*v.stack)[:len(*v.stack)-1]
		return nil
	}
	if !v.fn(n, *v.stack) {
		return nil
	}
	*v.stack = append(*v.stack, n)
	return v
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloat reports whether t is a floating-point (or complex) type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// rootIdent peels selectors, indexing, stars, address-of, and parens off
// an expression and returns the base identifier: res.Rows[i] → res,
// (*p).x → p, &sb → sb.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// objectOf resolves an identifier to its object via uses or defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi].
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos() != token.NoPos && obj.Pos() >= lo && obj.Pos() <= hi
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for calls through function values, built-ins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fe := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fe
	case *ast.SelectorExpr:
		id = fe.Sel
	default:
		return nil
	}
	fn, _ := objectOf(info, id).(*types.Func)
	return fn
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// isAppend reports whether call is the append built-in.
func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := objectOf(info, id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// mentionsObject reports whether the subtree contains an identifier
// resolving to obj.
func mentionsObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && objectOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// enclosingFunc returns the innermost function declaration or literal in
// the ancestor stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
