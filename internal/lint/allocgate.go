package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AllocGate is the static allocation budget for the zero-allocation hot
// path (docs/static-analysis.md). Functions annotated //thesaurus:hotpath
// are roots; the analyzer computes the call-graph closure of every root —
// following calls across module-internal packages and resolving interface
// method calls to every implementing type in the unit's import closure —
// and flags allocation constructs anywhere inside it:
//
//   - make, new, &T{…}, slice and map composite literals (plain value
//     struct/array literals are stack-resident and allowed)
//   - append whose result is not assigned back with `=` (the amortized
//     scratch-reuse idiom `x = append(x, …)` is the sanctioned shape)
//   - calls into fmt, errors, sort, reflect, and regexp (formatting and
//     reflection allocate; hot errors must be package-level sentinels)
//   - interface conversions that box a non-pointer value — explicit, and
//     implicit at call arguments, assignments, variable declarations,
//     returns, channel sends, and struct-literal fields — method values
//     (bound-method closures), and function literals
//   - string↔[]byte conversions, defer inside a loop, go statements, and
//     map iteration
//
// Descent stops at functions annotated //thesaurus:allocok <reason> — the
// sanctioned allocation boundaries (cold pool refills, amortized growth).
// Arguments of panic calls are exempt: a dying process may format its
// last words. Calls through function values are followed
// flow-insensitively: the callee set is every function bound to the
// called identifier by an assignment or declaration anywhere in the
// callee's unit — including bindings through struct fields, slice/array
// composite literals, and index assignments (xs[i] = f; a call through
// xs[j] follows every function ever stored in xs) — and denylisted
// functions reached that way are flagged at the call site. Function
// values carried through maps and channels remain untracked; the
// compiler-proven escape budget (alloc.budget, thesauruslint -escapes)
// backstops those.
//
// Findings are worded identically from whichever analysis unit reaches a
// construct, so the runner's global dedup collapses multi-root reports.
var AllocGate = &Analyzer{
	Name: "allocgate",
	Doc:  "flag allocation constructs reachable from //thesaurus:hotpath roots",
	Run:  runAllocGate,
}

// allocDenyPkgs are standard-library packages whose calls are flagged
// inside the hot closure. Everything else in the standard library is
// assumed allocation-free (math/bits, encoding/binary's direct put/get
// forms); module-internal callees are walked instead of assumed.
var allocDenyPkgs = []string{"errors", "fmt", "reflect", "regexp", "sort"}

func runAllocGate(pass *Pass) {
	if !pass.SimPackage {
		return
	}
	w := &allocWalker{
		pass:    pass,
		byPkg:   map[*types.Package]*allocUnit{},
		visited: map[*types.Func]bool{},
	}
	w.buildUniverse()

	// Roots: pragma-marked declarations in this unit's non-test files, in
	// source order (deterministic BFS ⇒ deterministic findings).
	var queue []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hasPragmaVerb(fd, pragmaHotPath) || pass.InTestFile(fd.Pos()) {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				queue = append(queue, fn)
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fn = origin(fn)
		if w.visited[fn] {
			continue
		}
		w.visited[fn] = true
		queue = append(queue, w.checkFunc(fn)...)
	}
}

// allocUnit is one package's syntax+types view inside the walker's
// universe: the current analysis unit plus every module-internal package
// it transitively imports.
type allocUnit struct {
	pkg      *types.Package
	files    []*ast.File
	info     *types.Info
	decls    map[types.Object]*ast.FuncDecl
	bindings map[types.Object][]*types.Func
}

// declIndex maps the unit's function objects to their declarations.
func (u *allocUnit) declIndex() map[types.Object]*ast.FuncDecl {
	if u.decls != nil {
		return u.decls
	}
	u.decls = map[types.Object]*ast.FuncDecl{}
	for _, f := range u.files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := u.info.Defs[fd.Name]; obj != nil {
					u.decls[obj] = fd
				}
			}
		}
	}
	return u.decls
}

// funcBindings maps variable objects — locals, package-level vars, and
// struct fields — to the functions assigned to them anywhere in the
// unit, flow-insensitively and in source order. Struct fields are keyed
// by the field's *types.Var, so every instance of a type shares one
// binding set (an assignment through any value of the type counts for
// all of them); a slice or array of functions is keyed on the container
// variable, so every element written anywhere — composite literal or
// index assignment — counts for a call through any element. It is the
// callee set for calls through function values: an over-approximation
// (every binding counts, whichever one is live), which is the sound
// direction for an allocation gate.
func (u *allocUnit) funcBindings() map[types.Object][]*types.Func {
	if u.bindings != nil {
		return u.bindings
	}
	u.bindings = map[types.Object][]*types.Func{}
	var bindObj func(obj types.Object, rhs ast.Expr)
	bindObj = func(obj types.Object, rhs ast.Expr) {
		if _, ok := obj.(*types.Var); !ok {
			return
		}
		// A slice/array literal on the right binds each element's function
		// to the container object ({0: f} indexed elements included);
		// whichever element a later call indexes, its callee is in the set.
		if lit, ok := ast.Unparen(rhs).(*ast.CompositeLit); ok {
			switch u.info.TypeOf(lit).Underlying().(type) {
			case *types.Slice, *types.Array:
				for _, elt := range lit.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						elt = kv.Value
					}
					bindObj(obj, elt)
				}
			}
			return
		}
		fn := funcDenoted(u.info, rhs)
		if fn == nil {
			return
		}
		for _, have := range u.bindings[obj] {
			if have == fn {
				return
			}
		}
		u.bindings[obj] = append(u.bindings[obj], fn)
	}
	var bind func(lhs, rhs ast.Expr)
	bind = func(lhs, rhs ast.Expr) {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if x.Name != "_" {
				bindObj(objectOf(u.info, x), rhs)
			}
		case *ast.SelectorExpr:
			// Field assignment (s.fn = ...): key on the field object.
			bindObj(objectOf(u.info, x.Sel), rhs)
		case *ast.IndexExpr:
			// Index assignment (xs[i] = f): key on the container, same
			// over-approximation as a composite-literal element.
			bind(x.X, rhs)
		}
	}
	for _, f := range u.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						bind(x.Lhs[i], x.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(x.Names) == len(x.Values) {
					for i := range x.Names {
						bind(x.Names[i], x.Values[i])
					}
				}
			case *ast.CompositeLit:
				// Struct literals bind fields too: T{fn: f} keys on the
				// field object (recorded in Uses for keyed literals),
				// positional T{f} resolves the field by index.
				st, ok := structTypeOf(u.info, x)
				if !ok {
					return true
				}
				for i, elt := range x.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							bindObj(objectOf(u.info, key), kv.Value)
						}
						continue
					}
					if i < st.NumFields() {
						bindObj(st.Field(i), elt)
					}
				}
			}
			return true
		})
	}
	return u.bindings
}

// structTypeOf resolves a composite literal's type to its struct
// underlying, through pointers and named types.
func structTypeOf(info *types.Info, lit *ast.CompositeLit) (*types.Struct, bool) {
	t := info.TypeOf(lit)
	if t == nil {
		return nil, false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// funcDenoted resolves an expression that names a function — an ident or
// a method/package selector used as a value — to its *types.Func.
func funcDenoted(info *types.Info, e ast.Expr) *types.Func {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := objectOf(info, x).(*types.Func); ok {
			return origin(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := objectOf(info, x.Sel).(*types.Func); ok {
			return origin(fn)
		}
	}
	return nil
}

type allocWalker struct {
	pass    *Pass
	units   []*allocUnit // current unit first, then imports sorted by path
	byPkg   map[*types.Package]*allocUnit
	visited map[*types.Func]bool
}

// buildUniverse assembles the packages the closure walk can see: the
// current unit and, through the loader, every module-internal package in
// its transitive imports (already typechecked as a side effect of loading
// the unit, so this costs no extra parsing).
func (w *allocWalker) buildUniverse() {
	cur := &allocUnit{pkg: w.pass.Pkg, files: w.pass.Files, info: w.pass.Info}
	w.units = append(w.units, cur)
	w.byPkg[cur.pkg] = cur
	if w.pass.loader == nil {
		return
	}
	seen := map[string]bool{}
	var paths []string
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		for _, imp := range p.Imports() {
			path := imp.Path()
			if seen[path] || !w.moduleInternal(path) {
				continue
			}
			seen[path] = true
			paths = append(paths, path)
			visit(imp)
		}
	}
	visit(w.pass.Pkg)
	sort.Strings(paths)
	for _, p := range paths {
		if mu := w.pass.loader.moduleUnit(p); mu != nil {
			if _, ok := w.byPkg[mu.Pkg]; !ok {
				u := &allocUnit{pkg: mu.Pkg, files: mu.Files, info: mu.Info}
				w.units = append(w.units, u)
				w.byPkg[mu.Pkg] = u
			}
		}
	}
}

func (w *allocWalker) moduleInternal(path string) bool {
	mp := w.pass.loader.ModulePath
	return path == mp || strings.HasPrefix(path, mp+"/")
}

// origin normalizes instantiated generic methods/functions to their
// declared form, which is what the declaration indexes are keyed by.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// declOf resolves a function to its declaring unit and syntax, or nils
// when the body is outside the universe (stdlib, assembly, fixtures).
func (w *allocWalker) declOf(fn *types.Func) (*allocUnit, *ast.FuncDecl) {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil, nil
	}
	u := w.byPkg[pkg]
	if u == nil {
		if w.pass.loader == nil || !w.moduleInternal(pkg.Path()) {
			return nil, nil
		}
		mu := w.pass.loader.moduleUnit(pkg.Path())
		if mu == nil || mu.Pkg != pkg {
			return nil, nil
		}
		u = &allocUnit{pkg: mu.Pkg, files: mu.Files, info: mu.Info}
		w.units = append(w.units, u)
		w.byPkg[mu.Pkg] = u
	}
	return u, u.declIndex()[fn]
}

// funcLabel renders a function for findings: Fingerprint, (*Cache).Read.
// The label depends only on the function itself so that reports are
// identical from whichever unit reaches it.
func funcLabel(fn *types.Func) string {
	fn = origin(fn)
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" })
		return "(" + strings.TrimSuffix(t, ".") + ")." + fn.Name()
	}
	return fn.Name()
}

// checkFunc walks one closure member's body, reporting allocation
// constructs and returning the module-internal callees to visit next.
func (w *allocWalker) checkFunc(fn *types.Func) []*types.Func {
	u, decl := w.declOf(fn)
	if decl == nil || decl.Body == nil {
		return nil
	}
	if hasPragmaVerb(decl, pragmaAllocOK) {
		return nil // sanctioned allocation boundary: do not descend
	}
	label := funcLabel(fn)
	sig, _ := fn.Type().(*types.Signature)
	var callees []*types.Func
	walkStack(decl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.ASSIGN && len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					w.checkImplicitBox(u, x.Rhs[i], u.info.TypeOf(x.Lhs[i]), label, "assignment")
				}
			}
		case *ast.ValueSpec:
			if x.Type != nil && len(x.Names) == len(x.Values) {
				dst := u.info.TypeOf(x.Type)
				for _, v := range x.Values {
					w.checkImplicitBox(u, v, dst, label, "variable declaration")
				}
			}
		case *ast.ReturnStmt:
			// FuncLit subtrees are pruned, so these results belong to the
			// hot function's own signature. Naked returns have no
			// conversion site; assignments to named results are caught by
			// the assignment case.
			if sig != nil {
				if res := sig.Results(); res != nil && len(x.Results) == res.Len() {
					for i, r := range x.Results {
						w.checkImplicitBox(u, r, res.At(i).Type(), label, "return")
					}
				}
			}
		case *ast.SendStmt:
			if ch, ok := u.info.TypeOf(x.Chan).Underlying().(*types.Chan); ok {
				w.checkImplicitBox(u, x.Value, ch.Elem(), label, "channel send")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					w.pass.Reportf(x.Pos(),
						"&composite literal in hot-path function %s heap-allocates; use a value struct or a pooled object", label)
					return false
				}
			}
		case *ast.CompositeLit:
			switch t := u.info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				w.pass.Reportf(x.Pos(),
					"slice literal in hot-path function %s allocates backing storage; reuse a preallocated scratch slice", label)
				return false
			case *types.Map:
				w.pass.Reportf(x.Pos(),
					"map literal in hot-path function %s allocates; hoist the map to construction", label)
				return false
			case *types.Struct:
				// The literal itself is stack-resident, but an interface
				// field still boxes its initializer.
				for i, el := range x.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							if f := structFieldByName(t, id.Name); f != nil {
								w.checkImplicitBox(u, kv.Value, f.Type(), label, "struct-literal field")
							}
						}
					} else if i < t.NumFields() {
						w.checkImplicitBox(u, el, t.Field(i).Type(), label, "struct-literal field")
					}
				}
			}
			// Value struct/array literals live on the stack: allowed.
		case *ast.CallExpr:
			return w.checkCall(u, x, stack, label, &callees)
		case *ast.RangeStmt:
			if isMap(u.info.TypeOf(x.X)) {
				w.pass.Reportf(x.Pos(),
					"map iteration in hot-path function %s: randomized order and hash walking do not belong on the hot path; use an index- or slice-backed structure", label)
			}
		case *ast.DeferStmt:
			if inLoop(stack) {
				w.pass.Reportf(x.Pos(),
					"defer inside a loop in hot-path function %s allocates per iteration; move the defer out of the loop", label)
			}
		case *ast.GoStmt:
			w.pass.Reportf(x.Pos(),
				"go statement in hot-path function %s allocates a goroutine stack; hoist worker startup out of the hot path", label)
		case *ast.FuncLit:
			w.pass.Reportf(x.Pos(),
				"function literal in hot-path function %s allocates a closure; hoist it to construction or inline the logic", label)
			return false
		case *ast.SelectorExpr:
			if sel := u.info.Selections[x]; sel != nil && sel.Kind() == types.MethodVal && !isCallFun(stack, x) {
				w.pass.Reportf(x.Pos(),
					"method value %s.%s in hot-path function %s allocates a bound-method closure; call the method directly",
					exprText(x.X), x.Sel.Name, label)
			}
		}
		return true
	})
	return callees
}

// checkCall handles one call expression: allocation built-ins, the append
// discipline, conversions, boxing call arguments, denylisted standard
// library packages, and callee collection. Returns false to prune the
// subtree (panic arguments are exempt from the gate).
func (w *allocWalker) checkCall(u *allocUnit, call *ast.CallExpr, stack []ast.Node, label string, callees *[]*types.Func) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := objectOf(u.info, id).(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				return false // a dying process may format its last words
			case "make":
				w.pass.Reportf(call.Pos(),
					"make in hot-path function %s allocates; hoist the allocation to construction or mark a sanctioned boundary //thesaurus:allocok <reason>", label)
			case "new":
				w.pass.Reportf(call.Pos(),
					"new in hot-path function %s allocates; hoist to construction or use a stack value", label)
			case "append":
				if !appendAssignedBack(call, stack) {
					w.pass.Reportf(call.Pos(),
						"append in hot-path function %s does not assign its result back with =; use the x = append(x, …) scratch-reuse idiom so capacity amortizes", label)
				}
			}
			return true
		}
	}
	// Conversion? T(x) allocates when T is an interface boxing a value, or
	// for string↔[]byte/[]rune copies.
	if tv, ok := u.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := u.info.TypeOf(call.Args[0])
		if types.IsInterface(dst) && src != nil && !types.IsInterface(src) && !pointerShaped(src) {
			w.pass.Reportf(call.Pos(),
				"conversion to interface in hot-path function %s boxes a %s on the heap; pass a pointer or keep the call monomorphic",
				label, typeLabel(src))
		}
		if stringBytesConversion(dst, src) {
			w.pass.Reportf(call.Pos(),
				"string/byte-slice conversion in hot-path function %s copies and allocates; keep one representation on the hot path", label)
		}
		return true
	}
	fn := calleeFunc(u.info, call)
	if fn == nil {
		// Call through a function value: the callee is not syntactically
		// known, so follow every function bound to the identifier anywhere
		// in the unit. Arguments are checked against the value's static
		// signature either way.
		denied := false
		for _, bound := range w.boundCallees(u, call.Fun) {
			if w.denyCall(call.Pos(), bound, label) {
				denied = true
				continue
			}
			if pkg := bound.Pkg(); pkg != nil &&
				(w.pass.loader != nil && w.moduleInternal(pkg.Path()) || w.byPkg[pkg] != nil) {
				*callees = append(*callees, bound)
			}
		}
		if !denied {
			if ft := u.info.TypeOf(call.Fun); ft != nil {
				if sig, ok := ft.Underlying().(*types.Signature); ok {
					w.boxingArgs(u, call, sig, label)
				}
			}
		}
		return true
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		// Interface method call: class-hierarchy analysis over the
		// universe stands in for the unknowable dynamic type.
		w.boxingArgs(u, call, sig, label)
		*callees = append(*callees, w.implementations(sig.Recv().Type(), fn.Name())...)
		return true
	}
	if pkg := fn.Pkg(); pkg != nil {
		if w.denyCall(call.Pos(), fn, label) {
			return true
		}
		if sig != nil {
			w.boxingArgs(u, call, sig, label)
		}
		if w.pass.loader != nil && w.moduleInternal(pkg.Path()) || w.byPkg[pkg] != nil {
			*callees = append(*callees, fn)
		}
	}
	return true
}

// boundCallees resolves a call through a function value to the functions
// assigned to the called identifier — or, for a call through a struct
// field (s.fn(...)) or a slice/array element (xs[i](...)), to the
// functions bound to that field or container anywhere in the unit, by
// assignment, index assignment, or composite literal.
func (w *allocWalker) boundCallees(u *allocUnit, fun ast.Expr) []*types.Func {
	var obj types.Object
	switch x := ast.Unparen(fun).(type) {
	case *ast.Ident:
		obj = objectOf(u.info, x)
	case *ast.SelectorExpr:
		obj = objectOf(u.info, x.Sel)
	case *ast.IndexExpr:
		// Element call: the callee set is the container's. A generic
		// instantiation f[T](...) also parses as an IndexExpr, but its
		// operand resolves to a *types.Func, which the Var filter in the
		// recursive call rejects (calleeFunc already handled it anyway).
		return w.boundCallees(u, x.X)
	default:
		return nil
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	return u.funcBindings()[obj]
}

// denyCall reports fn if it lives in a denylisted standard-library
// package, returning whether it did.
func (w *allocWalker) denyCall(pos token.Pos, fn *types.Func, label string) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	for _, deny := range allocDenyPkgs {
		if pkg.Path() == deny {
			w.pass.Reportf(pos,
				"call to %s.%s in hot-path function %s allocates; precompute, use package-level sentinel errors, or mark a sanctioned boundary //thesaurus:allocok <reason>",
				pkg.Path(), fn.Name(), label)
			return true
		}
	}
	return false
}

// checkImplicitBox flags an implicit concrete→interface conversion at a
// non-call site — assignment, declaration, return, channel send,
// struct-literal field. The conversion is invisible in the source but
// allocates all the same.
func (w *allocWalker) checkImplicitBox(u *allocUnit, e ast.Expr, dst types.Type, label, site string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	src := u.info.TypeOf(e)
	if src == nil || types.IsInterface(src) || pointerShaped(src) {
		return
	}
	if b, ok := src.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	w.pass.Reportf(e.Pos(),
		"%s boxes a %s into an interface in hot-path function %s; pass a pointer or keep the value concrete",
		site, typeLabel(src), label)
}

// boxingArgs flags arguments boxed into interface parameters: the
// conversion is implicit at the call site but allocates all the same.
func (w *allocWalker) boxingArgs(u *allocUnit, call *ast.CallExpr, sig *types.Signature, label string) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		default:
			continue
		}
		at := u.info.TypeOf(arg)
		if at == nil || !types.IsInterface(pt) || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		w.pass.Reportf(arg.Pos(),
			"argument boxes a %s into an interface parameter in hot-path function %s; pass a pointer or keep the call monomorphic",
			typeLabel(at), label)
	}
}

// implementations resolves an interface method to the concrete methods of
// every implementing type visible in the universe, in deterministic
// (unit, declaration-name) order.
func (w *allocWalker) implementations(recv types.Type, name string) []*types.Func {
	iface, _ := recv.Underlying().(*types.Interface)
	if iface == nil {
		return nil
	}
	var out []*types.Func
	seen := map[*types.Func]bool{}
	for _, u := range w.units {
		scope := u.pkg.Scope()
		names := scope.Names() // already sorted
		for _, n := range names {
			tn, ok := scope.Lookup(n).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			T := tn.Type()
			if types.IsInterface(T) {
				continue
			}
			var impl types.Type
			switch {
			case types.Implements(T, iface):
				impl = T
			case types.Implements(types.NewPointer(T), iface):
				impl = types.NewPointer(T)
			default:
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(impl, true, u.pkg, name)
			if m, ok := obj.(*types.Func); ok {
				m = origin(m)
				if !seen[m] {
					seen[m] = true
					out = append(out, m)
				}
			}
		}
	}
	return out
}

// appendAssignedBack reports whether the append call's result is stored
// with a plain `=` assignment — the amortized scratch-reuse idiom. A `:=`
// binding, return value, or argument position starts a fresh slice the
// caller did not size.
func appendAssignedBack(call *ast.CallExpr, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.AssignStmt:
			if p.Tok != token.ASSIGN {
				return false
			}
			for _, rhs := range p.Rhs {
				if ast.Unparen(rhs) == call {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}

// inLoop reports whether the nearest enclosing loop is inside the same
// function as the node (the stack is rooted at the walked body).
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// isCallFun reports whether sel is the function operand of its parent
// call (a plain method call, not a method value).
func isCallFun(stack []ast.Node, sel ast.Expr) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.CallExpr:
			return ast.Unparen(p.Fun) == sel
		default:
			return false
		}
	}
	return false
}

// pointerShaped reports whether values of t fit an interface word without
// allocating: pointers, channels, maps, functions, unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// stringBytesConversion reports the allocating string↔[]byte/[]rune
// conversion shapes.
func stringBytesConversion(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteish := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Uint8 || e.Kind() == types.Rune || e.Kind() == types.Int32)
	}
	if src == nil {
		return false
	}
	return (isStr(dst) && isByteish(src)) || (isByteish(dst) && isStr(src))
}

// structFieldByName resolves a keyed composite-literal field name to its
// struct field.
func structFieldByName(t *types.Struct, name string) *types.Var {
	for i := 0; i < t.NumFields(); i++ {
		if f := t.Field(i); f.Name() == name {
			return f
		}
	}
	return nil
}

// typeLabel renders a type without package qualification, for stable
// cross-unit messages.
func typeLabel(t types.Type) string {
	return types.TypeString(t, func(*types.Package) string { return "" })
}

// exprText renders a short source-ish form of simple receiver
// expressions for method-value findings.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	}
	return "expr"
}
