package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and typechecks the packages of one Go module using only
// the standard library: go/parser for syntax and go/types with the
// source importer for semantics. Module-internal import paths are
// resolved against the module directory directly (no `go list`
// invocation), so loading is deterministic and fully offline; all other
// paths fall through to the source importer, which typechecks the
// standard library from $GOROOT/src.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string

	src  types.ImporterFrom
	pkgs map[string]*types.Package // import path → typechecked (non-test files only)
	// units retains the syntax and type information behind pkgs so
	// interprocedural analyses (allocgate) can follow calls into other
	// module packages and read the callee bodies.
	units map[string]*moduleUnit
}

// moduleUnit is the retained load state of one module-internal package as
// imported (non-test files only): enough to resolve a *types.Func from a
// caller in another package to its declaration.
type moduleUnit struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewLoader builds a Loader for the module rooted at moduleDir (the
// directory containing go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	modPath, err := readModulePath(moduleDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:       fset,
		ModuleDir:  moduleDir,
		ModulePath: modPath,
		pkgs:       map[string]*types.Package{},
		units:      map[string]*moduleUnit{},
	}
	l.src = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// FindModuleRoot walks upward from dir to the nearest directory holding
// a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// typechecked from their module subdirectory; everything else delegates
// to the source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
		files, err := l.parseDir(dir, func(name string) bool {
			return !strings.HasSuffix(name, "_test.go")
		})
		if err != nil {
			return nil, err
		}
		pkg, info, err := l.check(path, files)
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = pkg
		l.units[path] = &moduleUnit{Path: path, Files: files, Pkg: pkg, Info: info}
		return pkg, nil
	}
	return l.src.ImportFrom(path, srcDir, mode)
}

// moduleUnit returns the retained load state for a module-internal import
// path, importing it on first use. Returns nil for paths outside the
// module or that fail to load (the caller treats the package as opaque).
func (l *Loader) moduleUnit(path string) *moduleUnit {
	if u, ok := l.units[path]; ok {
		return u
	}
	if path != l.ModulePath && !strings.HasPrefix(path, l.ModulePath+"/") {
		return nil
	}
	if _, err := l.ImportFrom(path, l.ModuleDir, 0); err != nil {
		return nil
	}
	return l.units[path]
}

// parseDir parses the .go files of dir that pass keep, in sorted name
// order (so positions and any diagnostics are stable run to run).
func (l *Loader) parseDir(dir string, keep func(name string) bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if keep != nil && !keep(n) {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	files := make([]*ast.File, len(names))
	for i, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	return files, nil
}

// check typechecks files as the package at path and returns full
// types.Info for analysis.
func (l *Loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: typechecking %s: %w", path, err)
	}
	return pkg, info, nil
}

// Unit is one typechecked analysis unit: either a package together with
// its in-package test files, or an external (package foo_test) test
// package.
type Unit struct {
	Path  string // import path of the analyzed package
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// LoadDir loads the package in dir under the pretend import path asPath
// and returns its analysis units: the base package including in-package
// test files and, when present, the external test package. Test files
// are included so the analyzers see the whole tree; analyzers that
// exempt tests check file names via Pass.InTestFile.
func (l *Loader) LoadDir(dir, asPath string) ([]*Unit, error) {
	all, err := l.parseDir(dir, nil)
	if err != nil {
		return nil, err
	}
	var base, ext []*ast.File
	var pkgName string
	for _, f := range all {
		name := f.Name.Name
		if strings.HasSuffix(name, "_test") {
			ext = append(ext, f)
			continue
		}
		pkgName = name
		base = append(base, f)
	}
	var units []*Unit
	if len(base) > 0 {
		pkg, info, err := l.check(asPath, base)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{Path: asPath, Dir: dir, Files: base, Pkg: pkg, Info: info})
	}
	if len(ext) > 0 {
		// The external test package imports the base one; make sure the
		// import cache holds the plain (test-free) variant first.
		if _, err := l.Import(asPath); err != nil && len(base) > 0 {
			return nil, err
		}
		extPath := asPath + "_test"
		if pkgName == "" {
			extPath = asPath // test-only directory
		}
		pkg, info, err := l.check(extPath, ext)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{Path: asPath, Dir: dir, Files: ext, Pkg: pkg, Info: info})
	}
	return units, nil
}

// ModuleDirs returns every package directory of the module, skipping
// testdata, hidden, and vendor trees, sorted by path.
func ModuleDirs(moduleDir string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(moduleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != moduleDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasPrefix(d.Name(), ".") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	// WalkDir visits files of one directory contiguously, but be safe.
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}
