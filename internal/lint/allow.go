package lint

import (
	"fmt"
	"os"
	"strings"
)

// AllowEntry is one audited exception: it suppresses all findings of
// one analyzer in one file and must carry a written justification.
type AllowEntry struct {
	Analyzer      string
	File          string // module-relative, forward slashes
	Justification string
	Line          int // line in the allowlist file, for error messages
	used          bool
}

// Allowlist is a parsed allowlist file. The format is line-oriented:
//
//	# comment
//	<analyzer> <module-relative-file.go> <justification…>
//
// The justification is mandatory — an exception nobody can explain is
// not an exception, it is a latent bug — and stale entries (covering no
// current finding) are reported so the list cannot rot.
type Allowlist struct {
	Source  string
	Entries []*AllowEntry
}

// ParseAllowlist reads and validates the allowlist at path.
func ParseAllowlist(path string) (*Allowlist, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	al := &Allowlist{Source: path}
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for i, ln := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(ln)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("%s:%d: allowlist entry needs `<analyzer> <file> <justification>`, got %q",
				path, i+1, line)
		}
		if !known[fields[0]] {
			return nil, fmt.Errorf("%s:%d: unknown analyzer %q", path, i+1, fields[0])
		}
		al.Entries = append(al.Entries, &AllowEntry{
			Analyzer:      fields[0],
			File:          fields[1],
			Justification: strings.Join(fields[2:], " "),
			Line:          i + 1,
		})
	}
	return al, nil
}

// Covers reports whether an entry suppresses d, marking the entry used.
func (al *Allowlist) Covers(d Diagnostic) bool {
	for _, e := range al.Entries {
		if e.Analyzer == d.Analyzer && e.File == d.File {
			e.used = true
			return true
		}
	}
	return false
}

// Stale returns the entries that suppressed nothing in the last run —
// candidates for deletion, reported as errors so the list stays honest.
func (al *Allowlist) Stale() []*AllowEntry {
	var out []*AllowEntry
	for _, e := range al.Entries {
		if !e.used {
			out = append(out, e)
		}
	}
	return out
}

// Prune rewrites the allowlist source file dropping the entries that
// suppressed nothing in the last run, preserving comments, blank lines,
// and the order of surviving entries byte-for-byte. It returns the
// removed entries; when nothing is stale the file is left untouched.
func (al *Allowlist) Prune() ([]*AllowEntry, error) {
	stale := al.Stale()
	if len(stale) == 0 {
		return nil, nil
	}
	data, err := os.ReadFile(al.Source)
	if err != nil {
		return nil, err
	}
	drop := map[int]bool{}
	for _, e := range stale {
		drop[e.Line] = true
	}
	lines := strings.Split(string(data), "\n")
	if n := len(lines); n > 0 && lines[n-1] == "" {
		lines = lines[:n-1] // trailing newline, restored below
	}
	var b strings.Builder
	for i, ln := range lines {
		if drop[i+1] {
			continue
		}
		b.WriteString(ln)
		b.WriteString("\n")
	}
	if err := os.WriteFile(al.Source, []byte(b.String()), 0o644); err != nil {
		return nil, err
	}
	var kept []*AllowEntry
	for _, e := range al.Entries {
		if !drop[e.Line] {
			kept = append(kept, e)
		}
	}
	al.Entries = kept
	return stale, nil
}
