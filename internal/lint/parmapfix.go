package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
)

// This file constructs the machine-applicable fix for the parmap
// append-to-captured-slice finding: the write-by-index rewrite. For
//
//	dst := make([]T, 0, n)
//	…
//	go func(i int) {          // or a ParMap callback
//		dst = append(dst, expr)
//	}(i)
//
// it produces edits that change the declaration to `make([]T, n)` and the
// append to `dst[i] = expr`, turning the racing, completion-order-
// dependent append into the sanctioned disjoint-slot write. The fix is
// only offered in the provably safe narrow case: the closure takes
// exactly one int parameter (the worker index), the slice is declared in
// the same file as `make` with literal length 0 and an explicit capacity,
// and the flagged append is the only write to the slice anywhere in the
// package besides its declaration.

// buildParMapAppendFix returns the write-by-index rewrite for the
// statement s (`dst = append(dst, expr)` inside concurrent closure fl,
// with dst resolving to obj), or nil when no safe fix exists.
func buildParMapAppendFix(pass *Pass, fl *ast.FuncLit, s *ast.AssignStmt, obj types.Object) []SuggestedFix {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 || s.Tok != token.ASSIGN {
		return nil
	}
	lhs, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
	if !ok || objectOf(pass.Info, lhs) != obj {
		return nil
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok || !isAppend(pass.Info, call) || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return nil
	}
	if arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident); !ok || objectOf(pass.Info, arg0) != obj {
		return nil
	}
	// The appended value may not read the slice itself: after the rewrite
	// that read would race with the other workers' slot writes.
	if mentionsObject(pass.Info, call.Args[1], obj) {
		return nil
	}
	idx := soleIntParam(pass, fl)
	if idx == "" {
		return nil
	}
	file := fileOf(pass, s.Pos())
	if file == nil {
		return nil
	}
	decl := capacityOnlyMakeDecl(pass, file, obj)
	if decl == nil {
		return nil
	}
	if countWrites(pass, obj, decl, s) != 0 {
		return nil
	}

	fname := pass.Fset.Position(file.Pos()).Filename
	src, err := os.ReadFile(fname)
	if err != nil {
		return nil
	}
	offsetOf := func(pos token.Pos) int { return pass.Fset.Position(pos).Offset }
	if offsetOf(s.End()) > len(src) || offsetOf(decl.End()) > len(src) {
		return nil
	}
	mk := decl.Rhs[0].(*ast.CallExpr)
	exprSrc := string(src[offsetOf(call.Args[1].Pos()):offsetOf(call.Args[1].End())])

	edits := []TextEdit{
		// make([]T, 0, n) → make([]T, n): drop the zero length so every
		// index the workers write is in range.
		{File: fname, Offset: offsetOf(mk.Args[1].Pos()), End: offsetOf(mk.Args[2].Pos()), NewText: ""},
		// dst = append(dst, expr) → dst[i] = expr.
		{File: fname, Offset: offsetOf(s.Pos()), End: offsetOf(s.End()),
			NewText: fmt.Sprintf("%s[%s] = %s", lhs.Name, idx, exprSrc)},
	}
	return []SuggestedFix{{
		Message: fmt.Sprintf("write %s by worker index: make([]…, n) and %s[%s] = …", lhs.Name, lhs.Name, idx),
		Edits:   edits,
	}}
}

// soleIntParam returns the name of fl's only parameter when it is a
// single named int (the conventional worker index), else "".
func soleIntParam(pass *Pass, fl *ast.FuncLit) string {
	params := fl.Type.Params
	if params == nil || len(params.List) != 1 || len(params.List[0].Names) != 1 {
		return ""
	}
	name := params.List[0].Names[0]
	if name.Name == "_" {
		return ""
	}
	t := pass.Info.TypeOf(params.List[0].Type)
	if b, ok := t.(*types.Basic); !ok || b.Kind() != types.Int {
		return ""
	}
	return name.Name
}

// capacityOnlyMakeDecl finds obj's declaration in file when it has the
// shape `dst := make([]T, 0, n)`: a define of exactly obj whose value is
// a three-argument make with literal length 0.
func capacityOnlyMakeDecl(pass *Pass, file *ast.File, obj types.Object) *ast.AssignStmt {
	var found *ast.AssignStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || pass.Info.Defs[id] != obj {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) != 3 {
			return true
		}
		if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fn.Name != "make" {
			return true
		} else if b, ok := objectOf(pass.Info, fn).(*types.Builtin); !ok || b.Name() != "make" {
			return true
		}
		if lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); !ok || lit.Value != "0" {
			return true
		}
		found = as
		return false
	})
	return found
}

// countWrites counts assignments and inc/dec statements targeting obj
// across the package, excluding the two statements of the rewrite
// (declaration and flagged append). Any other write makes the length
// rewrite unsafe.
func countWrites(pass *Pass, obj types.Object, exclude ...ast.Stmt) int {
	excluded := func(n ast.Node) bool {
		for _, e := range exclude {
			if n == e {
				return true
			}
		}
		return false
	}
	writes := 0
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if excluded(st) {
					return true
				}
				for _, l := range st.Lhs {
					if id := rootIdent(l); id != nil && objectOf(pass.Info, id) == obj {
						writes++
					}
				}
			case *ast.IncDecStmt:
				if id := rootIdent(st.X); !excluded(st) && id != nil && objectOf(pass.Info, id) == obj {
					writes++
				}
			}
			return true
		})
	}
	return writes
}

// fileOf returns the *ast.File in pass containing pos.
func fileOf(pass *Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.Pos() <= pos && pos <= f.End() {
			return f
		}
	}
	return nil
}
