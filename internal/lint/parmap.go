package lint

import (
	"go/ast"
	"go/types"
)

// ParMapDiscipline enforces the worker-pool discipline that makes the
// parallel campaign loops sound: a goroutine closure (a `go func` body
// or a callback handed to ParMap) must communicate through write-by-
// index slots or channels, never by appending to or reassigning captured
// shared state. Captured-state mutation is both a data race and a
// completion-order dependence — results would assemble in whatever
// order the scheduler finishes workers. Mutex-guarded sections are
// recognized (the race disappears; any remaining order sensitivity on
// floats is float-order's business).
var ParMapDiscipline = &Analyzer{
	Name: "parmap-discipline",
	Doc:  "flag goroutine/ParMap closures mutating captured shared state instead of writing by index",
	Run:  runParMapDiscipline,
}

func runParMapDiscipline(pass *Pass) {
	for _, fl := range concurrentFuncLits(pass) {
		checkConcurrentLit(pass, fl)
	}
}

// concurrentFuncLits yields, in source order, every function literal
// that runs on another goroutine: `go func(){…}` bodies and literals
// passed to a function named ParMap.
func concurrentFuncLits(pass *Pass) []*ast.FuncLit {
	var out []*ast.FuncLit
	seen := map[*ast.FuncLit]bool{}
	add := func(fl *ast.FuncLit) {
		if !seen[fl] {
			seen[fl] = true
			out = append(out, fl)
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
					add(fl)
				}
			case *ast.CallExpr:
				callee := calleeFunc(pass.Info, s)
				if callee == nil || callee.Name() != "ParMap" {
					return true
				}
				for _, arg := range s.Args {
					if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						add(fl)
					}
				}
			}
			return true
		})
	}
	return out
}

func checkConcurrentLit(pass *Pass, fl *ast.FuncLit) {
	walkStack(fl.Body, func(n ast.Node, stack []ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				checkConcurrentWrite(pass, fl, stack, s, lhs, i)
			}
		case *ast.IncDecStmt:
			if obj := capturedTarget(pass, fl, s.X); obj != nil && !indexedWrite(pass, fl, s.X) &&
				!mutexGuarded(pass, append(stack, s)) {
				pass.Reportf(s.Pos(),
					"%s of captured %s inside a goroutine closure: shared-state mutation races and depends on "+
						"worker completion order; write results by index or guard with a mutex", s.Tok, obj.Name())
			}
		}
		return true
	})
}

func checkConcurrentWrite(pass *Pass, fl *ast.FuncLit, stack []ast.Node, s *ast.AssignStmt, lhs ast.Expr, i int) {
	obj := capturedTarget(pass, fl, lhs)
	if obj == nil {
		return
	}
	if indexedWrite(pass, fl, lhs) {
		return // the sanctioned out[i] = v pattern
	}
	if mutexGuarded(pass, append(stack, s)) {
		return
	}
	if i < len(s.Rhs) {
		if call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr); ok && isAppend(pass.Info, call) {
			pass.ReportFixf(s.Pos(), buildParMapAppendFix(pass, fl, s, obj),
				"append to captured %s inside a goroutine closure: element order depends on worker "+
					"completion order (and the append races); write results by index into a preallocated slice",
				obj.Name())
			return
		}
	}
	what := "assignment to"
	if _, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		what = "keyed write into"
	}
	pass.Reportf(s.Pos(),
		"%s captured %s inside a goroutine closure: shared-state mutation races and depends on "+
			"worker completion order; write results by index or guard with a mutex", what, obj.Name())
}

// capturedTarget resolves lhs's root identifier to a variable declared
// outside the function literal (captured shared state), or nil.
func capturedTarget(pass *Pass, fl *ast.FuncLit, lhs ast.Expr) types.Object {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return nil
	}
	obj := objectOf(pass.Info, id)
	if obj == nil || declaredWithin(obj, fl.Pos(), fl.End()) {
		return nil
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil
	}
	return obj
}

// indexedWrite reports whether the lvalue goes through an index into a
// slice or array (out[i] = v, out[i].Field = v): disjoint-slot writes
// are the sanctioned way to return worker results. Map indexing does
// not qualify — concurrent map writes race.
func indexedWrite(pass *Pass, fl *ast.FuncLit, lhs ast.Expr) bool {
	for {
		switch x := lhs.(type) {
		case *ast.IndexExpr:
			t := pass.Info.TypeOf(x.X)
			if t == nil {
				return false
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Array, *types.Pointer:
				return true
			}
			return false
		case *ast.SelectorExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		case *ast.ParenExpr:
			lhs = x.X
		default:
			return false
		}
	}
}

// mutexGuarded reports whether, in some enclosing block, a statement
// preceding the one containing the write calls a Lock/RLock method —
// the conventional critical-section shape:
//
//	mu.Lock()
//	if first == nil { first = err }
//	mu.Unlock()
func mutexGuarded(pass *Pass, stack []ast.Node) bool {
	for bi := len(stack) - 1; bi >= 0; bi-- {
		block, ok := stack[bi].(*ast.BlockStmt)
		if !ok || bi+1 >= len(stack) {
			continue
		}
		inner := stack[bi+1] // the child of block on the path to the write
		for _, st := range block.List {
			if st == inner {
				break
			}
			es, ok := st.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
				return true
			}
		}
	}
	return false
}
