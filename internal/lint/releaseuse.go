package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ReleaseUse enforces the release lifecycle documented in
// docs/performance.md: Release() extracts a resource's final statistics
// snapshot and frees (or pools) its bulk storage, so nothing may read
// the resource afterwards — the released cache's tag and data arrays are
// nil, and a pooled base table may already belong to a different cache.
// The analyzer flags, within one function body, any use of a variable
// after a non-deferred <var>.Release() call on it. A reassignment of the
// variable starts a fresh lifecycle, and deferred releases run at
// function exit (after every use), so both stay quiet. Only plain
// identifier receivers are tracked: a field release like c.table.Release()
// inside an owner's own Release method is the sanctioned teardown path.
var ReleaseUse = &Analyzer{
	Name: "releaseuse",
	Doc:  "flag uses of a resource after its Release() call; only the returned snapshot survives a release",
	Run:  runReleaseUse,
}

func runReleaseUse(pass *Pass) {
	if !pass.SimPackage {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkReleaseUse(pass, fd.Body)
			}
		}
	}
}

// checkReleaseUse analyzes one function body. Positions are compared in
// source order, which matches execution order for the straight-line
// snapshot-then-release sequences the lifecycle prescribes; closures are
// skipped entirely (their execution time is unknowable statically).
func checkReleaseUse(pass *Pass, body *ast.BlockStmt) {
	type release struct {
		end  token.Pos // end of the Release call
		name string
	}
	released := map[types.Object]release{}
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Release" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := objectOf(pass.Info, id).(*types.Var)
		if !ok {
			return true
		}
		// A deferred release runs at function exit, after every use.
		for _, a := range stack {
			if _, ok := a.(*ast.DeferStmt); ok {
				return true
			}
		}
		if prev, dup := released[obj]; !dup || call.End() < prev.end {
			released[obj] = release{end: call.End(), name: id.Name}
		}
		return true
	})
	if len(released) == 0 {
		return
	}

	// Reassignments (plain = on the whole variable) end the released
	// state: the variable now names a live resource again.
	reassigned := map[types.Object][]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := objectOf(pass.Info, id); obj != nil {
					reassigned[obj] = append(reassigned[obj], id.Pos())
				}
			}
		}
		return true
	})

	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := objectOf(pass.Info, id)
		r, ok := released[obj]
		if !ok || id.Pos() <= r.end {
			return true
		}
		for _, p := range reassigned[obj] {
			// A reassignment at the use position is the reassignment
			// itself, which is allowed.
			if p > r.end && p <= id.Pos() {
				return true
			}
		}
		pass.Reportf(id.Pos(),
			"%s used after %s.Release(): a released resource's storage is freed or pooled, so only the "+
				"snapshot Release returned survives; move this use before the release or keep what it needs "+
				"in the snapshot", id.Name, r.name)
		return true
	})
}
