package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseEscapes(t *testing.T) {
	out := strings.Join([]string{
		"# repro/internal/foo",
		"internal/foo/foo.go:12:6: can inline Helper",
		"internal/foo/foo.go:30:13: make([]byte, n) escapes to heap",
		"internal/foo/foo.go:9:2: moved to heap: buf",
		"internal/foo/foo.go:30:13: leaking param: p",
		"not a diagnostic line",
		"internal/foo/foo.go:bad:1: x escapes to heap",
		"", // blank
	}, "\n")
	got := parseEscapes(out)
	want := []EscapeSite{
		{File: "internal/foo/foo.go", Line: 9, Col: 2, Msg: "moved to heap: buf"},
		{File: "internal/foo/foo.go", Line: 30, Col: 13, Msg: "make([]byte, n) escapes to heap"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseEscapes = %v, want %v", got, want)
	}
}

func TestAttributeEscapes(t *testing.T) {
	funcs := []HotFunc{
		{Key: "m/p.Hot", File: "p/p.go", StartLine: 10, EndLine: 20, Dir: "p"},
		{Key: "m/p.(*T).Cold", File: "p/p.go", StartLine: 30, EndLine: 40, Dir: "p"},
	}
	sites := []EscapeSite{
		{File: "p/p.go", Line: 15, Col: 3, Msg: "x escapes to heap"},
		{File: "p/p.go", Line: 25, Col: 3, Msg: "between functions, dropped"},
		{File: "p/other.go", Line: 15, Col: 3, Msg: "other file, dropped"},
	}
	got := AttributeEscapes(funcs, sites)
	if len(got) != 2 {
		t.Fatalf("attributed %d keys, want 2 (zero-escape functions must still appear)", len(got))
	}
	if n := len(got["m/p.Hot"]); n != 1 {
		t.Errorf("m/p.Hot got %d sites, want 1", n)
	}
	if n := len(got["m/p.(*T).Cold"]); n != 0 {
		t.Errorf("m/p.(*T).Cold got %d sites, want 0", n)
	}
}

func TestBudgetRoundTrip(t *testing.T) {
	attributed := map[string][]EscapeSite{
		"m/p.Hot":       {{File: "p/p.go", Line: 1, Col: 1, Msg: "x escapes to heap"}},
		"m/p.(*T).Cold": nil,
	}
	path := filepath.Join(t.TempDir(), "alloc.budget")
	if err := os.WriteFile(path, FormatBudget(attributed), 0o644); err != nil {
		t.Fatal(err)
	}
	counts, err := ParseBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"m/p.Hot": 1, "m/p.(*T).Cold": 0}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("round trip = %v, want %v", counts, want)
	}
}

func TestParseBudgetRejectsBadEntries(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name    string
		content string
	}{
		{"missing count", "m/p.Hot\n"},
		{"non-numeric count", "m/p.Hot three\n"},
		{"negative count", "m/p.Hot -1\n"},
		{"duplicate entry", "m/p.Hot 0\nm/p.Hot 1\n"},
	}
	for _, c := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(c.name, " ", "_"))
		if err := os.WriteFile(path, []byte(c.content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseBudget(path); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestDiffBudget exercises every failure class: a new escape beyond the
// budget, a stale over-budget entry, a hot function absent from the
// budget, and a budget entry whose function lost its pragma.
func TestDiffBudget(t *testing.T) {
	attributed := map[string][]EscapeSite{
		"m/p.Grew":    {{File: "p/p.go", Line: 5, Col: 2, Msg: "x escapes to heap"}},
		"m/p.Shrank":  nil,
		"m/p.Unknown": nil,
		"m/p.Steady":  {{File: "p/p.go", Line: 9, Col: 2, Msg: "y escapes to heap"}},
	}
	budget := map[string]int{
		"m/p.Grew":     0,
		"m/p.Shrank":   2,
		"m/p.Steady":   1,
		"m/p.Vanished": 0,
	}
	failures := DiffBudget(budget, attributed)
	if len(failures) != 4 {
		t.Fatalf("got %d failures, want 4:\n%s", len(failures), strings.Join(failures, "\n"))
	}
	wantSubstrings := []string{
		"new escape at p/p.go:5:2",
		"m/p.Shrank: budget allows 2",
		"m/p.Unknown is //thesaurus:hotpath but missing from the budget",
		"budget entry m/p.Vanished has no //thesaurus:hotpath function",
	}
	all := strings.Join(failures, "\n")
	for _, sub := range wantSubstrings {
		if !strings.Contains(all, sub) {
			t.Errorf("failures missing %q:\n%s", sub, all)
		}
	}
	if strings.Contains(all, "Steady") {
		t.Errorf("within-budget function reported:\n%s", all)
	}
}

// TestBuildEscapeReport mirrors TestDiffBudget on the machine-readable
// path: the same fixture must yield one row per hot function in key
// order, an orphaned row per dead budget entry, and a status vocabulary
// where all-"ok" is exactly a passing DiffBudget.
func TestBuildEscapeReport(t *testing.T) {
	funcs := []HotFunc{
		{Key: "m/p.Grew", File: "p/p.go", StartLine: 4, EndLine: 7, Dir: "p"},
		{Key: "m/p.Shrank", File: "p/p.go", StartLine: 10, EndLine: 12, Dir: "p"},
		{Key: "m/p.Steady", File: "p/p.go", StartLine: 8, EndLine: 9, Dir: "p"},
		{Key: "m/p.Unknown", File: "p/p.go", StartLine: 14, EndLine: 16, Dir: "p"},
	}
	grewSite := EscapeSite{File: "p/p.go", Line: 5, Col: 2, Msg: "x escapes to heap"}
	attributed := map[string][]EscapeSite{
		"m/p.Grew":    {grewSite},
		"m/p.Shrank":  nil,
		"m/p.Unknown": nil,
		"m/p.Steady":  {{File: "p/p.go", Line: 9, Col: 2, Msg: "y escapes to heap"}},
	}
	budget := map[string]int{
		"m/p.Grew":     0,
		"m/p.Shrank":   2,
		"m/p.Steady":   1,
		"m/p.Vanished": 0,
	}
	rows := BuildEscapeReport(funcs, attributed, budget)
	wantStatus := map[string]string{
		"m/p.Grew":     "over",
		"m/p.Shrank":   "stale",
		"m/p.Steady":   "ok",
		"m/p.Unknown":  "unbudgeted",
		"m/p.Vanished": "orphaned",
	}
	if len(rows) != len(wantStatus) {
		t.Fatalf("got %d rows, want %d: %+v", len(rows), len(wantStatus), rows)
	}
	order := []string{"m/p.Grew", "m/p.Shrank", "m/p.Steady", "m/p.Unknown", "m/p.Vanished"}
	for i, r := range rows {
		if r.Function != order[i] {
			t.Errorf("rows[%d] = %s, want %s (key order, orphans last)", i, r.Function, order[i])
		}
		if r.Status != wantStatus[r.Function] {
			t.Errorf("%s: status %q, want %q", r.Function, r.Status, wantStatus[r.Function])
		}
		if r.Escapes == nil {
			t.Errorf("%s: Escapes is nil; must encode as [] not null", r.Function)
		}
	}
	grew := rows[0]
	if grew.Budget == nil || *grew.Budget != 0 || len(grew.Escapes) != 1 || grew.Escapes[0] != grewSite {
		t.Errorf("over row carries wrong evidence: %+v", grew)
	}
	if grew.File != "p/p.go" || grew.StartLine != 4 || grew.EndLine != 7 {
		t.Errorf("over row lost its declaration span: %+v", grew)
	}
	unknown := rows[3]
	if unknown.Budget != nil {
		t.Errorf("unbudgeted row must have null budget, got %d", *unknown.Budget)
	}
	orphan := rows[4]
	if orphan.Budget == nil || *orphan.Budget != 0 || orphan.File != "" {
		t.Errorf("orphaned row should carry only the budget entry: %+v", orphan)
	}
}

// TestScanHotFuncs runs the syntax-only scan on a synthetic module and
// checks keys, spans, and that test files and non-pragma functions are
// ignored.
func TestScanHotFuncs(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module example/mod\n\ngo 1.21\n")
	write("pkg/pkg.go", `package pkg

type T struct{ n int }

//thesaurus:hotpath
func (t *T) Hot() int {
	return t.n
}

func cold() {}

//thesaurus:hotpath
func Free() {}
`)
	write("pkg/pkg_test.go", `package pkg

//thesaurus:hotpath
func testOnly() {}
`)
	funcs, err := ScanHotFuncs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 2 {
		t.Fatalf("found %d hot funcs, want 2: %+v", len(funcs), funcs)
	}
	if funcs[0].Key != "example/mod/pkg.(*T).Hot" || funcs[1].Key != "example/mod/pkg.Free" {
		t.Errorf("keys = %s, %s", funcs[0].Key, funcs[1].Key)
	}
	if funcs[0].File != "pkg/pkg.go" || funcs[0].StartLine != 6 || funcs[0].EndLine != 8 {
		t.Errorf("span = %+v", funcs[0])
	}
	if dirs := HotPackageDirs(funcs); len(dirs) != 1 || dirs[0] != "pkg" {
		t.Errorf("HotPackageDirs = %v", dirs)
	}
}

// TestRepoEscapeBudget is the CI gate in test form: the committed
// alloc.budget must exactly match what the compiler proves about the
// tree's hot functions.
func TestRepoEscapeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds hot packages with -gcflags=-m")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	moduleDir, err := FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	funcs, err := ScanHotFuncs(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) == 0 {
		t.Fatal("no //thesaurus:hotpath functions in the tree")
	}
	sites, err := CollectEscapes(moduleDir, HotPackageDirs(funcs))
	if err != nil {
		t.Fatal(err)
	}
	budget, err := ParseBudget(filepath.Join(moduleDir, "alloc.budget"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range DiffBudget(budget, AttributeEscapes(funcs, sites)) {
		t.Error(f)
	}
}
