package lint

import (
	"go/ast"
)

// HotPathPragma enforces the //thesaurus: pragma grammar itself, so the
// allocation gate never silently ignores a typo. Every directive must be
// a known verb, attached to a function declaration's doc comment, in a
// non-test file of a simulation package; allocok must carry a reason
// (the audit trail for a sanctioned allocation boundary), and one
// function cannot be both a hot-path root and an allocation boundary.
var HotPathPragma = &Analyzer{
	Name: "hotpath-pragma",
	Doc:  "enforce the //thesaurus:hotpath and //thesaurus:allocok pragma grammar",
	Run:  runHotPathPragma,
}

func runHotPathPragma(pass *Pass) {
	for _, f := range pass.Files {
		// Directives attached to function declarations.
		attached := map[*ast.Comment]bool{}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			seen := map[string]bool{}
			for _, p := range funcPragmas(fd) {
				attached[p.Comment] = true
				checkPragmaContext(pass, p)
				switch p.Verb {
				case pragmaHotPath:
					if p.Arg != "" {
						pass.Reportf(p.Comment.Pos(),
							"//thesaurus:hotpath takes no argument (got %q); the closure walk needs no configuration", p.Arg)
					}
				case pragmaAllocOK:
					if p.Arg == "" {
						pass.Reportf(p.Comment.Pos(),
							"//thesaurus:allocok needs a reason: it exempts %s from the allocation gate, and the reason is the audit trail", fd.Name.Name)
					}
				default:
					pass.Reportf(p.Comment.Pos(),
						"unknown pragma //thesaurus:%s; valid pragmas are //thesaurus:hotpath and //thesaurus:allocok <reason>", p.Verb)
					continue
				}
				if seen[p.Verb] {
					pass.Reportf(p.Comment.Pos(),
						"duplicate //thesaurus:%s on %s", p.Verb, fd.Name.Name)
				}
				seen[p.Verb] = true
			}
			if seen[pragmaHotPath] && seen[pragmaAllocOK] {
				pass.Reportf(fd.Pos(),
					"%s is marked both //thesaurus:hotpath and //thesaurus:allocok: a function cannot be a hot-path root and an allocation boundary at once", fd.Name.Name)
			}
		}
		// Directives anywhere else in the file are detached: they look
		// load-bearing but bind to nothing.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				p, ok := parsePragma(c)
				if !ok || attached[c] {
					continue
				}
				checkPragmaContext(pass, p)
				pass.Reportf(c.Pos(),
					"detached pragma //thesaurus:%s: hot-path pragmas must sit in a function declaration's doc comment", p.Verb)
			}
		}
	}
}

// checkPragmaContext flags pragmas in places the allocation gate never
// reads: test files (test-only roots would gate nothing in production)
// and non-simulation packages (cmd/ front-ends may allocate freely).
func checkPragmaContext(pass *Pass, p pragma) {
	if pass.InTestFile(p.Comment.Pos()) {
		pass.Reportf(p.Comment.Pos(),
			"//thesaurus:%s in a _test.go file: hot-path pragmas declare production hot paths and are ignored in tests; delete it", p.Verb)
	}
	if !pass.SimPackage {
		pass.Reportf(p.Comment.Pos(),
			"//thesaurus:%s outside a simulation package: the allocation gate only applies to internal/ simulation code", p.Verb)
	}
}
