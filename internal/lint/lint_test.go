package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func testRunner(t *testing.T) *Runner {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(root)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// checkFixture lints testdata/src/<name> under asPath and returns the
// diagnostics rendered with basenames (stable against tree moves).
func checkFixture(t *testing.T, r *Runner, name, asPath string) []string {
	t.Helper()
	diags, err := r.CheckDirAs(filepath.Join("testdata", "src", name), asPath)
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	out := make([]string, 0, len(diags))
	for _, d := range diags {
		d.File = filepath.Base(d.File)
		out = append(out, d.String())
	}
	return out
}

// TestFixtureGolden pins the exact diagnostics — analyzer, position, and
// wording — each analyzer produces on the violation fixture. The fixture
// pairs every violation with a clean counterpart (collect-then-sort,
// write-by-index, config-derived seeds), so an analyzer that overreaches
// shows up here as an unexpected extra line.
func TestFixtureGolden(t *testing.T) {
	r := testRunner(t)
	lines := checkFixture(t, r, "fixsim", "repro/internal/fixsim")
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "fixsim.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update ./internal/lint` to create)", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics differ from %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}

	// Every analyzer in the suite must both catch something in the
	// violation fixture and stay quiet on its clean counterparts — the
	// golden encodes the latter by omission, the former is asserted here.
	for _, a := range Analyzers() {
		found := false
		for _, ln := range lines {
			if strings.Contains(ln, ": "+a.Name+": ") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("analyzer %s caught nothing in the violation fixture", a.Name)
		}
	}
}

// TestFixtureAllocGolden pins the hot-path allocation gate on its
// dedicated fixture: every construct class allocgate knows, the
// interprocedural cases (pragma on a method, reachable only via an
// interface, allocok boundary), and the full hotpath-pragma grammar.
// Only the two hot-path analyzers may fire there — any other analyzer's
// finding means the fixture (or an analyzer) overreached.
func TestFixtureAllocGolden(t *testing.T) {
	r := testRunner(t)
	lines := checkFixture(t, r, "fixalloc", "repro/internal/fixalloc")
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "fixalloc.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test -run Golden -update ./internal/lint` to create)", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics differ from %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}

	for _, ln := range lines {
		if !strings.Contains(ln, ": allocgate: ") && !strings.Contains(ln, ": hotpath-pragma: ") {
			t.Errorf("non-hot-path analyzer fired in the alloc fixture: %s", ln)
		}
	}
}

// TestFixtureClean: a package written in the sanctioned style produces
// zero diagnostics.
func TestFixtureClean(t *testing.T) {
	r := testRunner(t)
	if lines := checkFixture(t, r, "fixclean", "repro/internal/fixclean"); len(lines) != 0 {
		t.Errorf("clean fixture produced diagnostics:\n%s", strings.Join(lines, "\n"))
	}
}

// TestFixtureCmdExempt: the same nondeterministic inputs that fail a
// simulation package are legitimate in a front-end under cmd/.
func TestFixtureCmdExempt(t *testing.T) {
	r := testRunner(t)
	if lines := checkFixture(t, r, "fixcmd", "repro/cmd/fixcmd"); len(lines) != 0 {
		t.Errorf("cmd fixture produced diagnostics:\n%s", strings.Join(lines, "\n"))
	}
}

func TestSimPackage(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro", true},
		{"repro/internal/sim", true},
		{"repro/internal/lint", false},
		{"repro/internal/lint/sub", false},
		{"repro/cmd/thesaurus", false},
		{"repro/examples/demo", false},
		{"other/internal/sim", false},
	}
	for _, c := range cases {
		if got := simPackage("repro", c.path); got != c.want {
			t.Errorf("simPackage(repro, %s) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestAnalyzerByName(t *testing.T) {
	for _, a := range Analyzers() {
		got, err := AnalyzerByName(a.Name)
		if err != nil || got != a {
			t.Errorf("AnalyzerByName(%s) = %v, %v", a.Name, got, err)
		}
	}
	if _, err := AnalyzerByName("nope"); err == nil {
		t.Error("AnalyzerByName(nope) did not error")
	}
}

func TestAllowlist(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lint.allow")
	content := "# comment\n\nmaporder internal/foo/foo.go iteration audited, order provably irrelevant\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	al, err := ParseAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(al.Entries) != 1 {
		t.Fatalf("%d entries", len(al.Entries))
	}
	covered := Diagnostic{Analyzer: "maporder", File: "internal/foo/foo.go"}
	other := Diagnostic{Analyzer: "maporder", File: "internal/bar/bar.go"}
	if al.Covers(other) {
		t.Error("covered an unrelated file")
	}
	if len(al.Stale()) != 1 {
		t.Error("unused entry not reported stale")
	}
	if !al.Covers(covered) {
		t.Error("did not cover the listed file")
	}
	if len(al.Stale()) != 0 {
		t.Error("used entry still reported stale")
	}
}

// TestAllowlistPrune: pruning drops exactly the stale entries, preserves
// comments, blank lines, and live entries byte-for-byte, and the pruned
// file round-trips through the parser.
func TestAllowlistPrune(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint.allow")
	content := "# header comment\n\n" +
		"maporder internal/foo/foo.go iteration audited, order provably irrelevant\n" +
		"xrand-seed internal/bar/bar.go correlation is the property under test\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	al, err := ParseAllowlist(path)
	if err != nil {
		t.Fatal(err)
	}
	al.Covers(Diagnostic{Analyzer: "maporder", File: "internal/foo/foo.go"})

	removed, err := al.Prune()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0].Analyzer != "xrand-seed" {
		t.Fatalf("removed = %+v, want the stale xrand-seed entry", removed)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "# header comment\n\n" +
		"maporder internal/foo/foo.go iteration audited, order provably irrelevant\n"
	if string(got) != want {
		t.Errorf("pruned file:\n%q\nwant:\n%q", got, want)
	}

	reparsed, err := ParseAllowlist(path)
	if err != nil {
		t.Fatalf("pruned file does not round-trip: %v", err)
	}
	if len(reparsed.Entries) != 1 || reparsed.Entries[0].Analyzer != "maporder" {
		t.Fatalf("round trip entries = %+v", reparsed.Entries)
	}

	// Nothing stale: a second prune is a no-op that leaves the bytes alone.
	reparsed.Covers(Diagnostic{Analyzer: "maporder", File: "internal/foo/foo.go"})
	if removed, err := reparsed.Prune(); err != nil || len(removed) != 0 {
		t.Fatalf("second prune removed %+v, err %v", removed, err)
	}
	again, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != want {
		t.Errorf("no-op prune changed the file:\n%q", again)
	}
}

func TestAllowlistRejectsBadEntries(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name    string
		content string
	}{
		{"missing justification", "maporder internal/foo/foo.go\n"},
		{"unknown analyzer", "typo internal/foo/foo.go some reason here\n"},
	}
	for _, c := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(c.name, " ", "_"))
		if err := os.WriteFile(path, []byte(c.content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseAllowlist(path); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestRepoIsLintClean runs the suite over the whole module with the
// checked-in allowlist: the tree itself is the ultimate fixture, and
// this is the same gate `make ci` applies.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	r := testRunner(t)
	allowPath := filepath.Join(r.Loader.ModuleDir, "lint.allow")
	if _, err := os.Stat(allowPath); err == nil {
		al, err := ParseAllowlist(allowPath)
		if err != nil {
			t.Fatal(err)
		}
		r.Allow = al
	}
	dirs, err := ModuleDirs(r.Loader.ModuleDir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := r.CheckDirs(dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !d.Suppressed {
			t.Errorf("%s", d)
		}
	}
	if r.Allow != nil {
		for _, e := range r.Allow.Stale() {
			t.Errorf("stale allowlist entry at line %d: %s %s", e.Line, e.Analyzer, e.File)
		}
	}
}
