// Package stats provides the small statistical helpers used by the
// evaluation harness: geometric means, percentiles, histograms, and
// fixed-resolution time series for the over-time figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Geomean returns the geometric mean of xs. Non-positive entries are
// rejected with a panic because every quantity we average this way
// (compression ratios, normalized MPKI/IPC) is strictly positive by
// construction; a zero would indicate a harness bug.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: Geomean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram is a fixed-bucket histogram over float64 samples.
type Histogram struct {
	Min, Max float64
	Counts   []uint64
	Under    uint64 // samples below Min
	Over     uint64 // samples at or above Max
	N        uint64
	Sum      float64
}

// NewHistogram creates a histogram with buckets equal-width buckets over
// [min, max). It panics on invalid geometry.
func NewHistogram(min, max float64, buckets int) *Histogram {
	if buckets <= 0 || max <= min {
		panic("stats: invalid histogram geometry")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]uint64, buckets)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.N++
	h.Sum += x
	switch {
	case x < h.Min:
		h.Under++
	case x >= h.Max:
		h.Over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i >= len(h.Counts) { // float edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Mean returns the mean of all recorded samples (including under/over).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// FractionBelow returns the fraction of in-range samples falling strictly
// below x (bucket-resolution approximation), counting Under as below and
// Over as not below.
func (h *Histogram) FractionBelow(x float64) float64 {
	if h.N == 0 {
		return 0
	}
	count := h.Under
	for i, c := range h.Counts {
		upper := h.Min + (h.Max-h.Min)*float64(i+1)/float64(len(h.Counts))
		if upper <= x {
			count += c
		}
	}
	return float64(count) / float64(h.N)
}

// Series accumulates a long stream of samples into a bounded number of
// points by averaging fixed-size windows; used for the diff-size-over-time
// figure (Fig. 19).
type Series struct {
	Window int // samples per point
	points []float64
	curSum float64
	curN   int
}

// NewSeries creates a Series that averages every window samples into one
// point. window must be positive.
func NewSeries(window int) *Series {
	if window <= 0 {
		panic("stats: non-positive series window")
	}
	return &Series{Window: window}
}

// Add records one sample.
func (s *Series) Add(x float64) {
	s.curSum += x
	s.curN++
	if s.curN == s.Window {
		s.points = append(s.points, s.curSum/float64(s.curN))
		s.curSum, s.curN = 0, 0
	}
}

// Points returns the completed window averages, plus the partial window if
// any samples are pending.
func (s *Series) Points() []float64 {
	out := append([]float64(nil), s.points...)
	if s.curN > 0 {
		out = append(out, s.curSum/float64(s.curN))
	}
	return out
}

// Counter is a simple ratio counter: hits out of total events.
type Counter struct {
	Hits  uint64
	Total uint64
}

// Observe records one event with outcome hit.
func (c *Counter) Observe(hit bool) {
	c.Total++
	if hit {
		c.Hits++
	}
}

// Rate returns Hits/Total, or 0 when no events were observed.
func (c *Counter) Rate() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Total)
}
