package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("Geomean(1,4) = %v", g)
	}
	if g := Geomean([]float64{2, 2, 2}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("Geomean(2,2,2) = %v", g)
	}
	if Geomean(nil) != 0 {
		t.Fatal("Geomean(nil)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geomean of non-positive did not panic")
		}
	}()
	Geomean([]float64{1, 0})
}

func TestGeomeanBounds(t *testing.T) {
	// Geomean lies between min and max.
	if err := quick.Check(func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 0.1, float64(b) + 0.1, float64(c) + 0.1}
		g := Geomean(xs)
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return g >= min-1e-9 && g <= max+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 || Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 5 {
		t.Fatal("extremes")
	}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("median = %v", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Fatalf("p25 = %v", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // under
	h.Add(10) // over
	if h.N != 12 || h.Under != 1 || h.Over != 1 {
		t.Fatalf("N=%d under=%d over=%d", h.N, h.Under, h.Over)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bucket %d count %d", i, c)
		}
	}
	if f := h.FractionBelow(5); math.Abs(f-6.0/12) > 1e-9 {
		t.Fatalf("FractionBelow(5) = %v", f)
	}
	if m := h.Mean(); math.Abs(m-(45+5-1+10)/12.0) > 1e-9 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestHistogramPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry accepted")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestSeries(t *testing.T) {
	s := NewSeries(2)
	s.Add(1)
	s.Add(3) // window 1: avg 2
	s.Add(5) // pending
	pts := s.Points()
	if len(pts) != 2 || pts[0] != 2 || pts[1] != 5 {
		t.Fatalf("points %v", pts)
	}
	s.Add(7) // completes window 2: avg 6
	pts = s.Points()
	if len(pts) != 2 || pts[1] != 6 {
		t.Fatalf("points %v", pts)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Rate() != 0 {
		t.Fatal("empty rate")
	}
	c.Observe(true)
	c.Observe(false)
	c.Observe(true)
	if c.Rate() != 2.0/3 {
		t.Fatalf("rate %v", c.Rate())
	}
}
