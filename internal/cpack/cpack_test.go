package cpack

import (
	"testing"

	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/xrand"
)

func smallConfig() Config {
	return Config{Sets: 8, TagWays: 16, DataWays: 8}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{Sets: 0, TagWays: 16, DataWays: 8},
		{Sets: 8, TagWays: 0, DataWays: 8},
		{Sets: 8, TagWays: 12, DataWays: 8}, // not a power of two
		{Sets: 8, TagWays: 16, DataWays: 0},
	} {
		if bad.Validate() == nil {
			t.Errorf("bad config %+v accepted", bad)
		}
	}
}

// TestCompressWordPatterns pins the per-word pattern classification
// against the C-Pack algorithm: zero patterns bypass the dictionary,
// matches grade by prefix length, and only non-zero-pattern words enter
// the FIFO dictionary.
func TestCompressWordPatterns(t *testing.T) {
	var dict [wordsPerLine]uint32
	n := 0
	cases := []struct {
		data uint32
		want Pattern
	}{
		{0x00000000, ZZZZ},
		{0x000000ab, ZZZX},
		{0xdeadbeef, XXXX}, // first sighting: dictionary empty
		{0xdeadbeef, MMMM}, // exact match against the pushed entry
		{0xdeadbe00, MMMX}, // 3-byte prefix match
		{0xdead0000, MMXX}, // 2-byte prefix match
		{0x00000000, ZZZZ}, // zero patterns unaffected by dictionary state
	}
	for i, c := range cases {
		if got := compressWord(c.data, &dict, &n); got != c.want {
			t.Fatalf("case %d (%#x): got %v, want %v", i, c.data, got, c.want)
		}
	}
	// Three words carried new literal bytes (the full mmmm match does
	// not re-allocate), so three dictionary pushes.
	if n != 3 {
		t.Fatalf("dictionary has %d entries, want 3", n)
	}
}

// TestCompressLineSizes pins whole-line sizes for the pattern extremes.
func TestCompressLineSizes(t *testing.T) {
	var zero line.Line
	// 16 words × 2 bits = 32 bits = 4 bytes.
	if got := CompressLine(&zero, nil); got != 4 {
		t.Fatalf("zero line: %d bytes, want 4", got)
	}
	// A line of one repeated 32-bit word: first occurrence xxxx (34
	// bits), the rest mmmm (6 bits each): 34 + 15×6 = 124 bits = 16 bytes.
	var rep line.Line
	for i := 0; i < line.WordsPerLine; i++ {
		rep.SetWord(i, 0xdeadbeefdeadbeef)
	}
	if got := CompressLine(&rep, nil); got != 16 {
		t.Fatalf("repeated line: %d bytes, want 16", got)
	}
	// Unique high-entropy words never match: 16 × 34 bits = 544 bits =
	// 68 bytes, larger than a raw line — the cache stores it raw.
	var rnd line.Line
	rng := xrand.New(7)
	for i := 0; i < line.WordsPerLine; i++ {
		rnd.SetWord(i, rng.Uint64()|0x0101010101010101) // avoid zero bytes
	}
	if got := CompressLine(&rnd, nil); got <= line.Size {
		t.Fatalf("random line: %d bytes, want > %d", got, line.Size)
	}
}

// TestCompressLineHistogram: the histogram counts every word exactly once.
func TestCompressLineHistogram(t *testing.T) {
	var hist [NumPatterns]uint64
	var zero line.Line
	CompressLine(&zero, &hist)
	if hist[ZZZZ] != 2*uint64(line.WordsPerLine) {
		t.Fatalf("zero line histogram: %v", hist)
	}
	total := uint64(0)
	for _, v := range hist {
		total += v
	}
	if total != uint64(wordsPerLine) {
		t.Fatalf("histogram total %d, want %d", total, wordsPerLine)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	rng := xrand.New(1)
	ref := map[line.Addr]line.Line{}
	for i := 0; i < 8000; i++ {
		addr := line.Addr(rng.Intn(256)) * line.Size
		if rng.Bool(0.4) {
			var l line.Line
			switch rng.Intn(3) {
			case 0: // dictionary-friendly: few distinct words
				a, b := uint32(rng.Uint32()), uint32(rng.Uint32())
				for j := 0; j < 8; j++ {
					l.SetWord(j, uint64(a)<<32|uint64(b))
				}
			case 1: // random
				for j := 0; j < 8; j++ {
					l.SetWord(j, rng.Uint64())
				}
			case 2: // zero-ish
			}
			c.Write(addr, l)
			ref[addr] = l
			mem.Poke(addr, l)
		} else {
			got, _ := c.Read(addr)
			want, ok := ref[addr]
			if !ok {
				want = mem.Peek(addr)
			}
			if got != want {
				t.Fatalf("step %d: wrong data", i)
			}
		}
		if i%1000 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDoubledTagsExploitCompression: compressible content lets more lines
// reside than the data ways alone would admit.
func TestDoubledTagsExploitCompression(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(Config{Sets: 1, TagWays: 16, DataWays: 8}, mem)
	for i := 0; i < 14; i++ {
		var l line.Line
		l.SetWord(0, uint64(i)) // near-zero content: compresses hard
		c.Write(line.Addr(i)*line.Size, l)
	}
	fp := c.Footprint()
	if fp.ResidentLines <= 8 {
		t.Fatalf("only %d residents; doubled tags unused", fp.ResidentLines)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSpaceEvictions: refilling a full set with incompressible content
// must force space evictions beyond the tag victim.
func TestSpaceEvictions(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(Config{Sets: 1, TagWays: 16, DataWays: 8}, mem)
	rng := xrand.New(3)
	for i := 0; i < 32; i++ {
		var l line.Line
		for j := 0; j < 8; j++ {
			l.SetWord(j, rng.Uint64()|0x0101010101010101)
		}
		c.Write(line.Addr(i)*line.Size, l)
	}
	if c.Extra().SpaceEvictions == 0 {
		t.Fatal("no space evictions under incompressible refill")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRelease(t *testing.T) {
	mem := memory.NewStore()
	c := MustNew(smallConfig(), mem)
	var l line.Line
	l.SetWord(0, 42)
	c.Write(0, l)
	snap := c.Release()
	if snap.Design != "CPack" {
		t.Fatalf("design %q", snap.Design)
	}
	x, ok := snap.Extra.(*Snapshot)
	if !ok || x.Extra.Insertions != 1 {
		t.Fatalf("bad extra snapshot %+v", snap.Extra)
	}
	cp := x.Clone().(*Snapshot)
	cp.Extra.Insertions = 99
	if x.Extra.Insertions != 1 {
		t.Fatal("Clone shares state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	c.Release()
}

func TestDecompressionCycles(t *testing.T) {
	c := MustNew(smallConfig(), memory.NewStore())
	if c.DecompressionCycles() <= 1 {
		t.Fatal("C-Pack decompression should cost more than BΔI's single cycle")
	}
}
