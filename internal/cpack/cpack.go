// Package cpack implements a C-Pack-compressed LLC: each 64-byte line is
// compressed independently with the C-Pack dictionary algorithm (Chen et
// al., "C-Pack: A High-Performance Microprocessor Cache Compression
// Algorithm") and stored in its set at 8-byte-segment granularity with a
// doubled tag array, exactly like the BΔI design's layout. The line is
// scanned as sixteen 32-bit words against a per-line FIFO dictionary;
// each word encodes as one of six patterns (zero, partial-zero, full or
// partial dictionary match, or uncompressed).
package cpack

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/memory"
)

// segmentBytes is the data allocation granule (shared with the BΔI
// design: lines divide into eight 8-byte segments).
const segmentBytes = 8

// wordsPerLine is the number of 32-bit compression words per cache line.
const wordsPerLine = line.Size / 4

// Pattern identifies one C-Pack output pattern, in the canonical order of
// the original paper's code table.
type Pattern uint8

// The six C-Pack patterns: z is a zero byte, m a dictionary-matched byte,
// x an unmatched (literal) byte.
const (
	ZZZZ Pattern = iota // all-zero word
	ZZZX                // three zero bytes + one literal
	MMMM                // full 4-byte dictionary match
	MMMX                // 3-byte dictionary match + one literal
	MMXX                // 2-byte dictionary match + two literals
	XXXX                // uncompressed word
	NumPatterns
)

// patternBits is the encoded width of each pattern in bits: the code
// prefix plus any dictionary index and literal bytes (dictionary index is
// 4 bits for the 16-entry per-line dictionary).
var patternBits = [NumPatterns]int{
	ZZZZ: 2,  // code only
	ZZZX: 12, // 4-bit code + literal byte
	MMMM: 6,  // 2-bit code + 4-bit index
	MMMX: 16, // 4-bit code + 4-bit index + literal byte
	MMXX: 24, // 4-bit code + 4-bit index + two literal bytes
	XXXX: 34, // 2-bit code + raw word
}

// String names the pattern for reports.
func (p Pattern) String() string {
	switch p {
	case ZZZZ:
		return "zzzz"
	case ZZZX:
		return "zzzx"
	case MMMM:
		return "mmmm"
	case MMMX:
		return "mmmx"
	case MMXX:
		return "mmxx"
	case XXXX:
		return "xxxx"
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// compressWord classifies one 32-bit word against the per-line FIFO
// dictionary, pushing non-zero-pattern words into it as the hardware
// does. Zero patterns return before the dictionary is consulted or
// updated; a full match ends the scan early, while partial matches keep
// scanning for a better entry.
func compressWord(data uint32, dict *[wordsPerLine]uint32, n *int) Pattern {
	if data&0xFFFFFF00 == 0 {
		if data != 0 {
			return ZZZX
		}
		return ZZZZ
	}
	matched := 0
	for i := 0; i < *n; i++ {
		d := dict[i]
		if d == data {
			matched = 4
			break
		}
		if matched < 3 {
			if d&0xFFFFFF00 == data&0xFFFFFF00 {
				matched = 3
			} else if matched < 2 && d&0xFFFF0000 == data&0xFFFF0000 {
				matched = 2
			}
		}
	}
	// A full match adds no information; everything else (new literal
	// bytes) is pushed so later words can match against it.
	if matched < 4 && *n < len(dict) {
		dict[*n] = data
		*n++
	}
	switch matched {
	case 4:
		return MMMM
	case 3:
		return MMMX
	case 2:
		return MMXX
	}
	return XXXX
}

// CompressLine returns the C-Pack-compressed size of l in bytes (bit cost
// rounded up, uncapped — callers clamp to line.Size when a raw store is
// cheaper). The dictionary is reset per line, so lines compress
// independently and the result is a pure function of the content. When
// hist is non-nil each word's pattern is counted into it.
//
//thesaurus:hotpath
func CompressLine(l *line.Line, hist *[NumPatterns]uint64) int {
	var dict [wordsPerLine]uint32
	n := 0
	bits := 0
	for i := 0; i < line.WordsPerLine; i++ {
		w := l.Word(i)
		lo := compressWord(uint32(w), &dict, &n)
		hi := compressWord(uint32(w>>32), &dict, &n)
		bits += patternBits[lo] + patternBits[hi]
		if hist != nil {
			hist[lo]++
			hist[hi]++
		}
	}
	return (bits + 7) / 8
}

// Config sizes a C-Pack LLC; DefaultConfig mirrors the BΔI iso-silicon
// point (896KB of data, doubled tags).
type Config struct {
	// Sets is the number of cache sets.
	Sets int
	// TagWays is the (doubled) tag associativity per set.
	TagWays int
	// DataWays is the uncompressed-line capacity per set; the segment
	// budget is DataWays×8.
	DataWays int
}

// DefaultConfig returns the iso-silicon C-Pack configuration: 896KB data
// array (1792 sets × 8 ways) with 16 tags per set.
func DefaultConfig() Config {
	return Config{Sets: 1792, TagWays: 16, DataWays: 8}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.TagWays <= 0 || c.DataWays <= 0 {
		return fmt.Errorf("cpack: non-positive geometry")
	}
	if c.TagWays&(c.TagWays-1) != 0 {
		return fmt.Errorf("cpack: tag ways must be a power of two for PLRU")
	}
	return nil
}

func (c Config) segsPerSet() int { return c.DataWays * line.Size / segmentBytes }

// tagPayload carries one resident line: the raw content (the model
// charges compressed space but keeps the exact bytes, like the ideal
// design) and its charged segment footprint.
type tagPayload struct {
	data line.Line
	segs int
}

// ExtraStats counts C-Pack-specific events.
type ExtraStats struct {
	Insertions uint64
	// Compressed counts insertions stored in fewer than 8 segments.
	Compressed uint64
	// SpaceEvictions counts extra evictions needed to fit a block beyond
	// the tag-replacement victim.
	SpaceEvictions uint64
	// ByPattern histograms every compressed word by C-Pack pattern,
	// across insertions and write-hit recompressions alike.
	ByPattern [NumPatterns]uint64
}

// Cache is a C-Pack LLC.
type Cache struct {
	cfg      Config
	tags     *cache.Array[tagPayload]
	usedSegs []int // per set
	mem      *memory.Store

	stats llc.Stats
	extra ExtraStats
}

var _ llc.Cache = (*Cache)(nil)

// New builds a C-Pack LLC over mem.
func New(cfg Config, mem *memory.Store) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Cache{
		cfg: cfg,
		tags: cache.New[tagPayload](cache.Config{
			Entries: cfg.Sets * cfg.TagWays, Ways: cfg.TagWays, Policy: "plru",
		}),
		usedSegs: make([]int, cfg.Sets),
		mem:      mem,
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, mem *memory.Store) *Cache {
	c, err := New(cfg, mem)
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements llc.Cache.
func (c *Cache) Name() string { return "CPack" }

// Extra returns C-Pack-specific statistics.
func (c *Cache) Extra() ExtraStats { return c.extra }

func (c *Cache) setOf(addr line.Addr) int {
	return int(addr.BlockNumber() % uint64(c.cfg.Sets))
}

// segsFor charges the segment footprint of a compressed size: raw (8
// segments) when compression does not win, at least one segment always.
func segsFor(sizeBytes int) int {
	if sizeBytes >= line.Size {
		return line.Size / segmentBytes
	}
	s := (sizeBytes + segmentBytes - 1) / segmentBytes
	if s < 1 {
		s = 1
	}
	return s
}

// Read implements llc.Cache.
//
//thesaurus:hotpath
func (c *Cache) Read(addr line.Addr) (line.Line, bool) {
	addr = addr.LineAddr()
	c.stats.Reads++
	if e, _ := c.tags.Lookup(addr); e != nil {
		c.stats.ReadHits++
		return e.Payload.data, true
	}
	data := c.mem.Read(addr, memory.Fill)
	c.stats.Fills++
	c.install(addr, data, false)
	return data, false
}

// Write implements llc.Cache: the new value is recompressed, which may
// change the block's size and force evictions within the set.
//
//thesaurus:hotpath
func (c *Cache) Write(addr line.Addr, data line.Line) bool {
	addr = addr.LineAddr()
	c.stats.Writes++
	if e, _ := c.tags.Lookup(addr); e != nil {
		c.stats.WriteHits++
		set := c.setOf(addr)
		c.usedSegs[set] -= e.Payload.segs
		// The entry has no footprint while makeRoom refits the set, exactly
		// as when the payload is first installed.
		e.Payload.segs = 0
		need := segsFor(CompressLine(&data, &c.extra.ByPattern))
		c.makeRoom(addr, need)
		e.Payload.data = data
		e.Payload.segs = need
		c.usedSegs[set] += need
		e.Dirty = true
		return true
	}
	c.install(addr, data, true)
	return false
}

// install compresses and inserts a new line.
func (c *Cache) install(addr line.Addr, data line.Line, dirty bool) {
	need := segsFor(CompressLine(&data, &c.extra.ByPattern))
	set := c.setOf(addr)

	e, _, evicted, had := c.tags.Insert(addr)
	if had {
		c.retire(set, evicted)
	}
	c.makeRoom(addr, need)
	e.Payload.data = data
	e.Payload.segs = need
	e.Dirty = dirty
	c.usedSegs[set] += need

	c.extra.Insertions++
	if need < line.Size/segmentBytes {
		c.extra.Compressed++
	}
}

// makeRoom evicts additional lines from addr's set until need segments
// are free. The just-inserted/updated tag is MRU and thus never the PLRU
// victim while other candidates remain.
func (c *Cache) makeRoom(addr line.Addr, need int) {
	set := c.setOf(addr)
	budget := c.cfg.segsPerSet()
	for c.usedSegs[set]+need > budget {
		idx := c.tags.ValidVictimIndex(addr)
		if idx < 0 {
			panic("cpack: no evictable line in an over-budget set")
		}
		old := c.tags.InvalidateIndex(idx)
		c.retire(set, old)
		c.extra.SpaceEvictions++
	}
}

// retire writes back a displaced line and releases its segments.
func (c *Cache) retire(set int, evicted cache.Entry[tagPayload]) {
	c.usedSegs[set] -= evicted.Payload.segs
	if evicted.Dirty {
		c.mem.Write(evicted.Addr, evicted.Payload.data, memory.Writeback)
		c.stats.Writebacks++
	}
}

// DecompressionCycles reports C-Pack's serial-decode hit latency: the
// decompressor emits two words per cycle over sixteen word pairs.
func (c *Cache) DecompressionCycles() float64 { return 8 }

// Stats implements llc.Cache.
func (c *Cache) Stats() llc.Stats { return c.stats }

// ResetStats implements llc.Cache.
func (c *Cache) ResetStats() {
	c.stats = llc.Stats{}
	c.extra = ExtraStats{}
	c.tags.ResetStats()
}

// Footprint implements llc.Cache.
func (c *Cache) Footprint() llc.Footprint {
	used := 0
	for _, s := range c.usedSegs {
		used += s
	}
	return llc.Footprint{
		ResidentLines:  c.tags.CountValid(),
		DataBytesUsed:  used * segmentBytes,
		DataBytesTotal: c.cfg.Sets * c.cfg.segsPerSet() * segmentBytes,
	}
}

// Snapshot is the C-Pack release snapshot: the pattern-mix counters.
type Snapshot struct {
	Extra ExtraStats
}

// Clone implements llc.ExtraSnapshot. ExtraStats is a pure value type
// (the histogram is an array), so a copy is already deep.
func (s *Snapshot) Clone() llc.ExtraSnapshot {
	cp := *s
	return &cp
}

// Release implements llc.Cache: it extracts the statistics snapshot and
// frees the tag array. The cache must not be used afterwards.
func (c *Cache) Release() llc.StatsSnapshot {
	if c.tags == nil {
		panic("cpack: Release called twice")
	}
	snap := &Snapshot{Extra: c.extra}
	c.tags = nil
	c.usedSegs = nil
	return llc.StatsSnapshot{Design: c.Name(), Stats: c.stats, Extra: snap}
}

// CheckInvariants validates the per-set segment accounting.
func (c *Cache) CheckInvariants() error {
	sums := make([]int, c.cfg.Sets)
	var err error
	c.tags.ForEach(func(_ int, e *cache.Entry[tagPayload]) {
		set := c.setOf(e.Addr)
		sums[set] += e.Payload.segs
		if e.Payload.segs <= 0 || e.Payload.segs > line.Size/segmentBytes {
			err = fmt.Errorf("line %#x: bad segment count %d", uint64(e.Addr), e.Payload.segs)
		}
	})
	if err != nil {
		return err
	}
	for s := range sums {
		if sums[s] != c.usedSegs[s] {
			return fmt.Errorf("set %d: usedSegs=%d, tags sum to %d", s, c.usedSegs[s], sums[s])
		}
		if sums[s] > c.cfg.segsPerSet() {
			return fmt.Errorf("set %d: %d segments exceed budget %d", s, sums[s], c.cfg.segsPerSet())
		}
	}
	return nil
}
