package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Table", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42)
	tb.AddRowf("preformatted", "99%")
	out := tb.String()
	for _, want := range []string{"My Table", "name", "value", "alpha", "1.500", "42", "99%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: every row has the header separator width.
	if !strings.Contains(out, "----") {
		t.Error("no separator")
	}
}

func TestTableColumnWidths(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRowf("longvaluehere", "1")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and row lines should have equal prefix width up to column 2.
	if len(lines) < 3 {
		t.Fatalf("too few lines: %q", out)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("Chart", "x")
	c.Add("small", 1)
	c.Add("big", 10)
	out := c.String()
	if !strings.Contains(out, "Chart") || !strings.Contains(out, "big") {
		t.Fatalf("chart output: %s", out)
	}
	// The largest bar uses the full width; the small one a tenth.
	var bigBars, smallBars int
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, "big") {
			bigBars = strings.Count(ln, "#")
		}
		if strings.HasPrefix(ln, "small") {
			smallBars = strings.Count(ln, "#")
		}
	}
	if bigBars != 50 || smallBars != 5 {
		t.Fatalf("bars big=%d small=%d", bigBars, smallBars)
	}
}

func TestBarChartAllZero(t *testing.T) {
	c := NewBarChart("Z", "")
	c.Add("a", 0)
	if out := c.String(); !strings.Contains(out, "a") {
		t.Fatal("zero chart broke")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 32, 64}, 64)
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline %q", s)
	}
	runes := []rune(s)
	if runes[0] == runes[2] {
		t.Fatalf("extremes identical: %q", s)
	}
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty sparkline")
	}
	// Auto-scaling path.
	if Sparkline([]float64{1, 2}, 0) == "" {
		t.Fatal("auto-scale failed")
	}
}
