// Package report renders the experiment harness's tables and bar charts
// as plain text, so every figure and table of the paper has a direct
// terminal representation.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a pre-formatted row.
func (t *Table) AddRowf(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "\n%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	line := func(r []string) {
		for i, c := range r {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// BarChart renders labelled horizontal bars, scaled to a fixed width.
type BarChart struct {
	Title string
	Unit  string
	Width int // bar width in characters (default 50)
	names []string
	vals  []float64
}

// NewBarChart creates a chart.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit, Width: 50}
}

// Add appends one bar.
func (b *BarChart) Add(name string, value float64) {
	b.names = append(b.names, name)
	b.vals = append(b.vals, value)
}

// Render writes the chart to w.
func (b *BarChart) Render(w io.Writer) {
	if b.Title != "" {
		fmt.Fprintf(w, "\n%s\n%s\n", b.Title, strings.Repeat("=", len(b.Title)))
	}
	maxName, maxVal := 0, 0.0
	for i, n := range b.names {
		if len(n) > maxName {
			maxName = len(n)
		}
		if b.vals[i] > maxVal {
			maxVal = b.vals[i]
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	for i, n := range b.names {
		bars := int(b.vals[i] / maxVal * float64(b.Width))
		if bars < 0 {
			bars = 0
		}
		fmt.Fprintf(w, "%-*s  %8.3f %s |%s\n", maxName, n, b.vals[i], b.Unit,
			strings.Repeat("#", bars))
	}
}

// String renders the chart to a string.
func (b *BarChart) String() string {
	var s strings.Builder
	b.Render(&s)
	return s.String()
}

// Sparkline renders a series as a compact one-line chart using eighth
// blocks; used for the over-time figure (Fig. 19).
func Sparkline(values []float64, max float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	if max <= 0 {
		for _, v := range values {
			if v > max {
				max = v
			}
		}
		if max <= 0 {
			max = 1
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := int(v / max * float64(len(blocks)))
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		if idx < 0 {
			idx = 0
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
