package diffenc

import (
	"bytes"
	"testing"

	"repro/internal/line"
)

// FuzzEncodeDecode fuzzes the encoder against arbitrary line and base
// contents: the round trip must always reconstruct the input and the
// chosen encoding must respect the segment bounds.
func FuzzEncodeDecode(f *testing.F) {
	seed := make([]byte, 2*line.Size)
	for i := range seed {
		seed[i] = byte(i)
	}
	f.Add(seed)
	f.Add(make([]byte, 2*line.Size))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2*line.Size {
			return
		}
		l := line.FromBytes(data[:line.Size])
		base := line.FromBytes(data[line.Size : 2*line.Size])
		enc := Encode(&l, &base)
		if s := enc.Segments(); s < 0 || s > SegmentsPerLine {
			t.Fatalf("segments out of range: %d", s)
		}
		got, err := Decode(enc, &base)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != l {
			t.Fatalf("round trip mismatch (format %v)", enc.Format)
		}
	})
}

// FuzzDiffEncodeRoundtrip targets the base+diff path specifically: the
// line is the base with a handful of fuzzer-chosen byte edits — the
// near-duplicate shape the paper's clustering makes common. The chosen
// encoding must round-trip exactly and stay within the segment budget.
func FuzzDiffEncodeRoundtrip(f *testing.F) {
	base := make([]byte, line.Size)
	for i := range base {
		base[i] = byte(3 * i)
	}
	f.Add(base, uint8(0), uint8(1), uint8(2))                      // 3-byte near-duplicate
	f.Add(base, uint8(5), uint8(5), uint8(5))                      // repeated edit offset
	f.Add(make([]byte, line.Size), uint8(0), uint8(31), uint8(63)) // zero base
	f.Fuzz(func(t *testing.T, baseBytes []byte, p0, p1, p2 uint8) {
		if len(baseBytes) < line.Size {
			return
		}
		b := line.FromBytes(baseBytes[:line.Size])
		l := b
		for _, p := range []uint8{p0, p1, p2} {
			l[int(p)%line.Size] ^= byte(p) | 1
		}
		enc := Encode(&l, &b)
		if s := enc.Segments(); s < 0 || s > SegmentsPerLine {
			t.Fatalf("segments out of range: %d", s)
		}
		got, err := Decode(enc, &b)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got != l {
			t.Fatalf("round trip mismatch (format %v, diff %d bytes)",
				enc.Format, line.DiffBytes(&l, &b))
		}
	})
}

// FuzzDecodeArbitrary feeds Decode arbitrary (possibly inconsistent)
// encodings: it must never panic — malformed inputs yield errors.
func FuzzDecodeArbitrary(f *testing.F) {
	f.Add(uint8(1), uint64(0xFF), []byte{1, 2, 3}, make([]byte, line.Size))
	f.Fuzz(func(t *testing.T, format uint8, mask uint64, deltas []byte, baseBytes []byte) {
		var base *line.Line
		if len(baseBytes) >= line.Size {
			b := line.FromBytes(baseBytes[:line.Size])
			base = &b
		}
		enc := Encoded{Format: Format(format), Mask: mask, Deltas: deltas}
		_, _ = Decode(enc, base) // must not panic
	})
}

// FuzzMaskDeltaConsistency: valid (mask, deltas) pairs always decode and
// re-encode consistently against the zero base.
func FuzzMaskDeltaConsistency(f *testing.F) {
	f.Add(uint64(0b1011), []byte{9, 8, 7})
	f.Fuzz(func(t *testing.T, mask uint64, deltas []byte) {
		n := 0
		for i := 0; i < 64; i++ {
			if mask&(1<<uint(i)) != 0 {
				n++
			}
		}
		if n != len(deltas) || n == 0 {
			return
		}
		// Non-zero deltas only, or the decoded line's popcount shrinks.
		clean := true
		for _, d := range deltas {
			if d == 0 {
				clean = false
			}
		}
		if !clean {
			return
		}
		enc := Encoded{Format: FormatZeroDiff, Mask: mask, Deltas: bytes.Clone(deltas)}
		decoded, err := Decode(enc, nil)
		if err != nil {
			t.Fatal(err)
		}
		re := Encode(&decoded, nil)
		got, err := Decode(re, nil)
		if err != nil || got != decoded {
			t.Fatal("re-encode round trip failed")
		}
	})
}
