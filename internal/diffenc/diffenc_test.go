package diffenc

import (
	"testing"
	"testing/quick"

	"repro/internal/line"
	"repro/internal/xrand"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	if err := quick.Check(func(l, base line.Line) bool {
		enc := Encode(&l, &base)
		got, err := Decode(enc, &base)
		return err == nil && got == l
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeNilBase(t *testing.T) {
	if err := quick.Check(func(l line.Line) bool {
		enc := Encode(&l, nil)
		if enc.Format == FormatBaseDiff || enc.Format == FormatBaseOnly {
			return false // cannot reference a base that does not exist
		}
		got, err := Decode(enc, nil)
		return err == nil && got == l
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestAllZeroEncoding(t *testing.T) {
	enc := Encode(&line.Zero, nil)
	if enc.Format != FormatAllZero || enc.Segments() != 0 || enc.SizeBytes() != 0 {
		t.Fatalf("zero line encoded as %+v", enc)
	}
}

func TestBaseOnlyEncoding(t *testing.T) {
	var l line.Line
	l[3] = 9
	enc := Encode(&l, &l)
	if enc.Format != FormatBaseOnly || enc.Segments() != 0 {
		t.Fatalf("identical line encoded as %v", enc.Format)
	}
	got, err := Decode(enc, &l)
	if err != nil || got != l {
		t.Fatal("base-only decode failed")
	}
}

func TestBaseDiffSmall(t *testing.T) {
	var base line.Line
	for i := range base {
		base[i] = byte(i)
	}
	l := base
	l[10] ^= 0xFF
	l[50] ^= 0x0F
	enc := Encode(&l, &base)
	if enc.Format != FormatBaseDiff {
		t.Fatalf("format = %v", enc.Format)
	}
	if enc.DiffBytes() != 2 {
		t.Fatalf("DiffBytes = %d", enc.DiffBytes())
	}
	if enc.SizeBytes() != 10 { // 8B mask + 2 deltas
		t.Fatalf("SizeBytes = %d", enc.SizeBytes())
	}
	if enc.Segments() != 2 {
		t.Fatalf("Segments = %d", enc.Segments())
	}
}

func TestZeroDiffPreferredForSparseLines(t *testing.T) {
	var l line.Line
	l[0], l[1] = 5, 6
	var base line.Line
	for i := range base {
		base[i] = 0xAA // terrible base: 64-byte diff
	}
	enc := Encode(&l, &base)
	if enc.Format != FormatZeroDiff {
		t.Fatalf("format = %v, want 0+D", enc.Format)
	}
}

func TestBaseDiffWinsTies(t *testing.T) {
	// Equal segment counts must prefer base+diff (keeps the cluster
	// referenced).
	var base line.Line
	base[0] = 1
	l := base
	l[1] = 2 // diff vs base: 1 byte; diff vs zero: 2 bytes — both 2 segs
	enc := Encode(&l, &base)
	if enc.Format != FormatBaseDiff {
		t.Fatalf("tie broken to %v, want B+D", enc.Format)
	}
}

func TestRawFallback(t *testing.T) {
	rng := xrand.New(5)
	var l, base line.Line
	for i := range l {
		l[i] = byte(rng.Uint32())
		base[i] = byte(rng.Uint32())
	}
	// Random lines differ nearly everywhere and are dense: raw.
	enc := Encode(&l, &base)
	if enc.Format != FormatRaw {
		t.Fatalf("format = %v, want raw", enc.Format)
	}
	if enc.Segments() != SegmentsPerLine || enc.SizeBytes() != line.Size {
		t.Fatalf("raw geometry: %d segs, %d bytes", enc.Segments(), enc.SizeBytes())
	}
}

func TestMaxCompressibleDiffBytes(t *testing.T) {
	// The constant must be exactly the boundary of the segment math.
	if diffSegments(MaxCompressibleDiffBytes) >= SegmentsPerLine {
		t.Fatalf("MaxCompressibleDiffBytes=%d does not compress", MaxCompressibleDiffBytes)
	}
	if diffSegments(MaxCompressibleDiffBytes+1) < SegmentsPerLine {
		t.Fatalf("MaxCompressibleDiffBytes=%d is not maximal", MaxCompressibleDiffBytes)
	}
	if MaxCompressibleDiffBytes != 48 {
		t.Fatalf("MaxCompressibleDiffBytes = %d, want 48 (8B mask + 48B in 7 segments)",
			MaxCompressibleDiffBytes)
	}
}

func TestEncodingIsMinimal(t *testing.T) {
	// Whatever Encode picks must be no larger than every alternative.
	if err := quick.Check(func(l, base line.Line) bool {
		enc := Encode(&l, &base)
		segs := enc.Segments()
		if l.IsZero() || l == base {
			return segs == 0
		}
		alternatives := []int{
			SegmentsPerLine, // raw
			diffSegments(l.PopCountNonZero()),
			diffSegments(line.DiffBytes(&l, &base)),
		}
		for _, a := range alternatives {
			if a < segs {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(Encoded{Format: FormatBaseDiff}, nil); err == nil {
		t.Fatal("base+diff without base decoded")
	}
	if _, err := Decode(Encoded{Format: FormatBaseOnly}, nil); err == nil {
		t.Fatal("base-only without base decoded")
	}
	if _, err := Decode(Encoded{Format: FormatZeroDiff, Mask: 3, Deltas: []byte{1}}, nil); err == nil {
		t.Fatal("mask/delta mismatch decoded")
	}
	if _, err := Decode(Encoded{Format: Format(99)}, nil); err == nil {
		t.Fatal("unknown format decoded")
	}
}

func TestFormatString(t *testing.T) {
	cases := []struct {
		f    Format
		want string
	}{
		{FormatRaw, "RAW"}, {FormatBaseDiff, "B+D"}, {FormatZeroDiff, "0+D"},
		{FormatBaseOnly, "BASE"}, {FormatAllZero, "Z"},
	}
	for _, c := range cases {
		if c.f.String() != c.want {
			t.Errorf("%d.String() = %q, want %q", c.f, c.f.String(), c.want)
		}
	}
	if !FormatBaseDiff.Compressed() || FormatRaw.Compressed() {
		t.Fatal("Compressed() wrong")
	}
}

func TestDiffSizeBytes(t *testing.T) {
	if DiffSizeBytes(0) != 8 || DiffSizeBytes(10) != 18 {
		t.Fatal("DiffSizeBytes math wrong")
	}
}

// naiveEncodeDiff is the 64-position scan the mask-guided encodeDiffInto
// replaced; the two must agree bit-for-bit.
func naiveEncodeDiff(f Format, l, ref *line.Line) Encoded {
	e := Encoded{Format: f, Mask: line.DiffMask(l, ref)}
	for i := 0; i < line.Size; i++ {
		if e.Mask&(1<<uint(i)) != 0 {
			e.Deltas = append(e.Deltas, l[i])
		}
	}
	return e
}

// naiveApplyDiff is the positional-scan reference for applyDiff.
func naiveApplyDiff(ref *line.Line, mask uint64, deltas []byte) line.Line {
	out := *ref
	j := 0
	for i := 0; i < line.Size; i++ {
		if mask&(1<<uint(i)) != 0 {
			out[i] = deltas[j]
			j++
		}
	}
	return out
}

func TestEncodeDiffMatchesReference(t *testing.T) {
	rng := xrand.New(0xfeed)
	for trial := 0; trial < 2000; trial++ {
		var ref line.Line
		for w := 0; w < line.WordsPerLine; w++ {
			ref.SetWord(w, rng.Uint64())
		}
		l := ref
		nDiff := rng.Intn(line.Size + 1)
		perm := rng.Perm(line.Size)
		for j := 0; j < nDiff; j++ {
			l[perm[j]] ^= byte(1 + rng.Intn(255))
		}
		var got Encoded
		encodeDiffInto(&got, FormatBaseDiff, &l, line.DiffMask(&l, &ref))
		want := naiveEncodeDiff(FormatBaseDiff, &l, &ref)
		if got.Format != want.Format || got.Mask != want.Mask ||
			!bytesEqual(got.Deltas, want.Deltas) {
			t.Fatalf("trial %d: encodeDiffInto mismatch\ngot  %+v\nwant %+v", trial, got, want)
		}
		var back line.Line
		if err := applyDiff(&back, &ref, got.Mask, got.Deltas); err != nil {
			t.Fatalf("trial %d: applyDiff: %v", trial, err)
		}
		if back != l {
			t.Fatalf("trial %d: applyDiff did not invert encodeDiffInto", trial)
		}
		if naive := naiveApplyDiff(&ref, got.Mask, got.Deltas); naive != back {
			t.Fatalf("trial %d: applyDiff disagrees with reference", trial)
		}
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkEncodeNearDuplicate(b *testing.B) {
	var base line.Line
	for i := range base {
		base[i] = byte(i)
	}
	l := base
	l[7], l[33] = 0xAB, 0xCD
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(&l, &base)
	}
}

func BenchmarkDecode(b *testing.B) {
	var base line.Line
	for i := range base {
		base[i] = byte(i)
	}
	l := base
	l[7], l[33] = 0xAB, 0xCD
	enc := Encode(&l, &base)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc, &base); err != nil {
			b.Fatal(err)
		}
	}
}

// naiveEncode is the pre-SWAR reference encoder: two independent mask
// computations, no early exit, a positional delta scan. The optimized
// EncodeInto/EncodeIntoMasked must match it field-for-field.
func naiveEncode(l, base *line.Line) Encoded {
	var e Encoded
	if l.IsZero() {
		e.Format = FormatAllZero
		return e
	}
	e.Format = FormatRaw
	e.Raw = *l
	bestSeg := SegmentsPerLine
	if base != nil {
		if l.Equal(base) {
			return Encoded{Format: FormatBaseOnly}
		}
		if s := diffSegments(line.DiffBytes(l, base)); s < bestSeg {
			e = naiveEncodeDiff(FormatBaseDiff, l, base)
			bestSeg = s
		}
	}
	if s := diffSegments(l.PopCountNonZero()); s < bestSeg {
		e = naiveEncodeDiff(FormatZeroDiff, l, &line.Zero)
	}
	return e
}

func encodedEqual(a, b *Encoded) bool {
	if a.Format != b.Format || a.Mask != b.Mask || !bytesEqual(a.Deltas, b.Deltas) {
		return false
	}
	// Raw is unspecified outside the raw-carrying formats.
	if a.Format == FormatRaw || a.Format == FormatIntra {
		return a.Raw == b.Raw
	}
	return true
}

func TestEncodeIntoMatchesNaiveReference(t *testing.T) {
	rng := xrand.New(0xe2c0de)
	var dst, masked Encoded
	for trial := 0; trial < 4000; trial++ {
		var base line.Line
		for w := 0; w < line.WordsPerLine; w++ {
			base.SetWord(w, rng.Uint64())
		}
		l := base
		switch rng.Intn(5) {
		case 0: // unrelated content
			for w := 0; w < line.WordsPerLine; w++ {
				l.SetWord(w, rng.Uint64())
			}
		case 1: // zero line
			l = line.Zero
		case 2: // sparse line (0+diff territory)
			l = line.Zero
			for j, n := 0, rng.Intn(6); j < n; j++ {
				l[rng.Intn(line.Size)] = byte(rng.Uint32())
			}
		case 3: // equal to base
		default: // small diff from base
			for j, n := 0, 1+rng.Intn(12); j < n; j++ {
				l[rng.Intn(line.Size)] ^= byte(1 + rng.Intn(255))
			}
		}
		want := naiveEncode(&l, &base)
		EncodeInto(&dst, &l, &base)
		if !encodedEqual(&dst, &want) {
			t.Fatalf("trial %d: EncodeInto %+v, want %+v", trial, dst, want)
		}
		EncodeIntoMasked(&masked, &l, line.DiffMask(&l, &base))
		if !encodedEqual(&masked, &want) {
			t.Fatalf("trial %d: EncodeIntoMasked %+v, want %+v", trial, masked, want)
		}
		wantNil := naiveEncode(&l, nil)
		EncodeInto(&dst, &l, nil)
		if !encodedEqual(&dst, &wantNil) {
			t.Fatalf("trial %d: EncodeInto(nil base) %+v, want %+v", trial, dst, wantNil)
		}
	}
}
