// Package diffenc implements the Thesaurus compression formats (§5.1):
//
//   - base+diff: a 64-bit mask naming the bytes that differ from the
//     cluster base, followed by the differing bytes (Fig. 7);
//   - 0+diff: the same encoding against an implicit all-zero base;
//   - base-only: the line equals its cluster base, no data entry needed;
//   - all-zero: the line is zero, identified in the tag entry alone;
//   - raw: uncompressed, used when compression is ineffective.
//
// Sizes are accounted in 8-byte data-array segments, matching the decoupled
// data array of §5.2.2.
package diffenc

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/line"
)

// Decode failures are package-level sentinels rather than formatted
// errors: DecodeInto sits on the hot read path, and an error return must
// not heap-allocate even though every caller treats it as fatal.
var (
	// ErrMissingBase marks a base-only or base+diff entry decoded
	// without its cluster base.
	ErrMissingBase = errors.New("diffenc: base-referencing entry decoded without base")
	// ErrUnknownFormat marks an Encoded with a Format outside the enum.
	ErrUnknownFormat = errors.New("diffenc: unknown format")
	// ErrMaskMismatch marks a diff entry whose mask popcount disagrees
	// with its delta count.
	ErrMaskMismatch = errors.New("diffenc: mask/delta length mismatch")
)

// SegmentBytes is the data-array allocation granule (§5.2.2).
const SegmentBytes = 8

// SegmentsPerLine is the number of segments an uncompressed line occupies.
const SegmentsPerLine = line.Size / SegmentBytes

// Format identifies one of the Thesaurus data encodings.
type Format uint8

// The five encodings of §5.1. AllZero and BaseOnly occupy no data-array
// space; the remainder occupy Segments() segments.
const (
	FormatRaw Format = iota
	FormatBaseDiff
	FormatZeroDiff
	FormatBaseOnly
	FormatAllZero
	// FormatIntra marks a line compressed intra-line (BΔI) instead of
	// against a cluster base — the 2DCC-style second dimension, used only
	// when the cache enables the IntraLineFallback extension. The encoded
	// entry keeps the full line (behavioural model) and accounts the
	// intra-compressed size.
	FormatIntra

	// NumFormats is the number of encoding formats.
	NumFormats
)

// String returns the abbreviation used in the paper's Figure 17.
func (f Format) String() string {
	switch f {
	case FormatRaw:
		return "RAW"
	case FormatBaseDiff:
		return "B+D"
	case FormatZeroDiff:
		return "0+D"
	case FormatBaseOnly:
		return "BASE"
	case FormatAllZero:
		return "Z"
	case FormatIntra:
		return "INTRA"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// Compressed reports whether the format is smaller than a raw line.
func (f Format) Compressed() bool { return f != FormatRaw }

// Encoded is one compressed (or raw) data-array entry. For FormatBaseDiff
// and FormatZeroDiff, Mask bit i set means byte i differs and the next
// delta byte replaces it; Deltas lists the differing bytes in ascending
// byte-position order. For FormatRaw, Raw holds the full line. For
// FormatBaseOnly and FormatAllZero, all fields are zero.
type Encoded struct {
	Format Format
	Mask   uint64
	Deltas []byte
	// Raw carries the line verbatim for FormatRaw and FormatIntra. For
	// every other format its contents are unspecified (reusable
	// destinations may hold bytes from a previous encoding): the hot
	// rewrite path would otherwise pay several 64-byte clears per encode
	// for a field those formats never read.
	Raw line.Line
	// IntraBytes is the accounted compressed size for FormatIntra
	// entries (the line itself is carried in Raw).
	IntraBytes int
}

// NewIntra wraps an intra-line-compressed line: the behavioural model
// keeps the decoded bytes and accounts sizeBytes of data-array space.
func NewIntra(l line.Line, sizeBytes int) Encoded {
	if sizeBytes <= 0 || sizeBytes > line.Size {
		panic(fmt.Sprintf("diffenc: intra size %d out of range", sizeBytes))
	}
	return Encoded{Format: FormatIntra, Raw: l, IntraBytes: sizeBytes}
}

// SetRaw resets e to a raw encoding of l, preserving e's delta buffer
// capacity for later reuse (scratch-arena discipline, docs/performance.md).
func (e *Encoded) SetRaw(l *line.Line) {
	deltas := e.Deltas[:0]
	*e = Encoded{Format: FormatRaw, Raw: *l, Deltas: deltas}
}

// SetIntra resets e to an intra-line (BΔI) encoding of l accounting
// sizeBytes, preserving e's delta buffer capacity. It is NewIntra for
// reusable destinations.
func (e *Encoded) SetIntra(l *line.Line, sizeBytes int) {
	if sizeBytes <= 0 || sizeBytes > line.Size {
		panic(fmt.Sprintf("diffenc: intra size %d out of range", sizeBytes))
	}
	deltas := e.Deltas[:0]
	*e = Encoded{Format: FormatIntra, Raw: *l, IntraBytes: sizeBytes, Deltas: deltas}
}

// CopyFrom deep-copies src into e, reusing e's delta buffer capacity so
// long-lived entries (data-array slots) can take ownership of a scratch
// encoding without aliasing the scratch buffer or allocating once their
// buffer has grown to the steady-state diff size.
func (e *Encoded) CopyFrom(src *Encoded) {
	e.Deltas = append(e.Deltas[:0], src.Deltas...)
	e.Format = src.Format
	e.Mask = src.Mask
	e.IntraBytes = src.IntraBytes
	// Raw is unspecified for the remaining formats; skipping the 64-byte
	// copy matters on the rewrite path, where every write hit lands here.
	if src.Format == FormatRaw || src.Format == FormatIntra {
		e.Raw = src.Raw
	}
}

// DiffSizeBytes returns the data-array footprint in bytes of a diff with n
// differing bytes: the 64-bit mask plus the deltas.
func DiffSizeBytes(n int) int { return 8 + n }

// diffSegments returns the segment count for a diff with n differing bytes.
func diffSegments(n int) int {
	return (DiffSizeBytes(n) + SegmentBytes - 1) / SegmentBytes
}

// maxCompressibleDiff is the largest diff-byte count for which base+diff
// is strictly smaller than a raw line: 8 (mask) + n < 64 requires n <= 55,
// and the segment-granular allocation further requires segments < 8.
func maxCompressibleDiff() int {
	for n := line.Size; n >= 0; n-- {
		if diffSegments(n) < SegmentsPerLine {
			return n
		}
	}
	return 0
}

// MaxCompressibleDiffBytes is the largest byte-diff that still compresses:
// mask (8B) + deltas must round to fewer than 8 segments, i.e. at most
// 48 differing bytes. Computed from the segment math so the two can never
// drift apart.
var MaxCompressibleDiffBytes = maxCompressibleDiff()

// Encode compresses l against base, choosing the smallest applicable
// encoding. base may be nil when the line's cluster has no clusteroid yet
// (then only all-zero, 0+diff, and raw are candidates). Encode never
// returns FormatBaseOnly for a nil base.
//
// Encode allocates the delta buffer of the winning encoding; hot paths
// with a reusable Encoded should call EncodeInto instead.
func Encode(l, base *line.Line) Encoded {
	var e Encoded
	EncodeInto(&e, l, base)
	return e
}

// EncodeInto is Encode with a caller-owned destination: the winning
// encoding is written into *dst, reusing dst's delta buffer capacity.
// Any previous contents of *dst are discarded. Once the buffer has grown
// to the steady-state diff size the call is allocation-free, which is
// what keeps (de)compression off the critical path of the simulated
// access loop (the software mirror of the paper's §5 discipline).
//
//thesaurus:hotpath
func EncodeInto(dst *Encoded, l, base *line.Line) {
	var baseMask uint64
	if base != nil {
		baseMask = line.DiffMask(l, base)
	}
	encodeWithBaseMask(dst, l, base != nil, baseMask)
}

// EncodeIntoMasked is EncodeInto for callers that already hold
// baseMask = line.DiffMask(l, base) for a non-nil base (the write-hit
// fast path computes that mask anyway to decide whether re-encoding is
// needed at all). The result is identical to EncodeInto(dst, l, base);
// passing any other mask is a contract violation.
//
//thesaurus:hotpath
func EncodeIntoMasked(dst *Encoded, l *line.Line, baseMask uint64) {
	encodeWithBaseMask(dst, l, true, baseMask)
}

// minDiffSegments is the smallest footprint of any diff encoding: the
// 8-byte mask plus at least one delta rounds to two segments.
const minDiffSegments = 2

func encodeWithBaseMask(dst *Encoded, l *line.Line, haveBase bool, baseMask uint64) {
	// Raw is written only if the line actually ends up stored raw: the
	// common base+diff rewrite otherwise pays three 64-byte stores per
	// encode (zeroing, staging the raw fallback, re-zeroing) for a field
	// it never uses.
	dst.Deltas = dst.Deltas[:0]
	dst.Mask = 0
	dst.IntraBytes = 0
	if l.IsZero() {
		dst.Format = FormatAllZero
		return
	}
	dst.Format = FormatRaw
	bestSeg := SegmentsPerLine
	// base+diff is evaluated first so it wins segment-count ties against
	// 0+diff: staying in the cluster keeps the clusteroid referenced and
	// avoids re-forming it later.
	if haveBase {
		if baseMask == 0 {
			dst.Format = FormatBaseOnly
			return
		}
		if s := diffSegments(bits.OnesCount64(baseMask)); s < bestSeg {
			encodeDiffInto(dst, FormatBaseDiff, l, baseMask)
			bestSeg = s
		}
	}
	// 0+diff can never beat a minimum-size base+diff: the line is known
	// non-zero here, so its 0+diff also occupies ≥ minDiffSegments, and
	// base+diff wins ties. Skip the non-zero scan entirely.
	if bestSeg > minDiffSegments {
		zeroMask := l.NonZeroMask()
		if s := diffSegments(bits.OnesCount64(zeroMask)); s < bestSeg {
			encodeDiffInto(dst, FormatZeroDiff, l, zeroMask)
		}
	}
	if dst.Format == FormatRaw {
		dst.Raw = *l
	}
}

// encodeDiffInto builds the mask+deltas representation of l under the
// given (caller-computed) diff mask, reusing dst.Deltas capacity. Set
// bits are visited directly with TrailingZeros64 instead of scanning all
// 64 byte positions: diffs average well under 16 bytes (Fig. 18), so the
// loop runs per differing byte, not per position.
func encodeDiffInto(dst *Encoded, f Format, l *line.Line, mask uint64) {
	dst.Format = f
	dst.Mask = mask
	dst.Deltas = dst.Deltas[:0]
	for m := mask; m != 0; m &= m - 1 {
		dst.Deltas = append(dst.Deltas, l[bits.TrailingZeros64(m)])
	}
}

// Decode reconstructs the original line. base must be the cluster base for
// FormatBaseDiff and FormatBaseOnly and is ignored otherwise. It returns
// an error if a needed base is missing or the encoding is malformed.
func Decode(e Encoded, base *line.Line) (line.Line, error) {
	var out line.Line
	err := DecodeInto(&out, &e, base)
	return out, err
}

// DecodeInto reconstructs the original line into *dst. It is Decode with
// caller-owned storage and no copying of the Encoded value: the hot
// read path hands the data-array entry in by pointer and decodes straight
// into its return buffer. On error *dst is left zeroed.
//
//thesaurus:hotpath
func DecodeInto(dst *line.Line, e *Encoded, base *line.Line) error {
	switch e.Format {
	case FormatAllZero:
		*dst = line.Zero
		return nil
	case FormatRaw, FormatIntra:
		*dst = e.Raw
		return nil
	case FormatBaseOnly:
		if base == nil {
			*dst = line.Zero
			return ErrMissingBase
		}
		*dst = *base
		return nil
	case FormatBaseDiff:
		if base == nil {
			*dst = line.Zero
			return ErrMissingBase
		}
		return applyDiff(dst, base, e.Mask, e.Deltas)
	case FormatZeroDiff:
		return applyDiff(dst, &line.Zero, e.Mask, e.Deltas)
	default:
		*dst = line.Zero
		return ErrUnknownFormat
	}
}

// applyDiff overlays the delta bytes named by mask onto ref (Fig. 7
// right), writing the result to *dst.
func applyDiff(dst, ref *line.Line, mask uint64, deltas []byte) error {
	if bits.OnesCount64(mask) != len(deltas) {
		*dst = line.Zero
		return ErrMaskMismatch
	}
	*dst = *ref
	j := 0
	for m := mask; m != 0; m &= m - 1 {
		dst[bits.TrailingZeros64(m)] = deltas[j]
		j++
	}
	return nil
}

// SizeBytes returns the data-array footprint in bytes (before segment
// rounding). AllZero and BaseOnly entries live entirely in the tag entry.
func (e Encoded) SizeBytes() int {
	switch e.Format {
	case FormatAllZero, FormatBaseOnly:
		return 0
	case FormatRaw:
		return line.Size
	case FormatIntra:
		return e.IntraBytes
	default:
		return DiffSizeBytes(len(e.Deltas))
	}
}

// Segments returns the number of 8-byte data-array segments the entry
// occupies after rounding (0 for AllZero/BaseOnly, 8 for raw).
func (e Encoded) Segments() int {
	switch e.Format {
	case FormatAllZero, FormatBaseOnly:
		return 0
	case FormatRaw:
		return SegmentsPerLine
	case FormatIntra:
		return (e.IntraBytes + SegmentBytes - 1) / SegmentBytes
	default:
		return diffSegments(len(e.Deltas))
	}
}

// DiffBytes returns the number of differing bytes encoded (0 for non-diff
// formats); this feeds the Figure 18/19 statistics.
func (e Encoded) DiffBytes() int {
	switch e.Format {
	case FormatBaseDiff, FormatZeroDiff:
		return len(e.Deltas)
	default:
		return 0
	}
}
