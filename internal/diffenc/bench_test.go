package diffenc

import (
	"testing"

	"repro/internal/line"
	"repro/internal/xrand"
)

// benchPair builds a base line and a variant with diffBytes differing
// bytes, the shape of a typical base+diff encode on the replay hot path.
func benchPair(diffBytes int) (line.Line, line.Line) {
	rng := xrand.New(0xd1ff)
	var base line.Line
	for i := 0; i < line.WordsPerLine; i++ {
		base.SetWord(i, rng.Uint64())
	}
	l := base
	perm := rng.Perm(line.Size)
	for j := 0; j < diffBytes; j++ {
		l[perm[j]] ^= byte(1 + rng.Intn(255))
	}
	return l, base
}

func benchmarkEncode(b *testing.B, diffBytes int) {
	l, base := benchPair(diffBytes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(&l, &base)
	}
}

func BenchmarkEncodeDiff8(b *testing.B)  { benchmarkEncode(b, 8) }
func BenchmarkEncodeDiff24(b *testing.B) { benchmarkEncode(b, 24) }

func benchmarkDecode(b *testing.B, diffBytes int) {
	l, base := benchPair(diffBytes)
	e := Encode(&l, &base)
	if e.Format != FormatBaseDiff {
		b.Fatalf("expected base+diff, got %v", e.Format)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(e, &base); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeDiff8(b *testing.B)  { benchmarkDecode(b, 8) }
func BenchmarkDecodeDiff24(b *testing.B) { benchmarkDecode(b, 24) }
