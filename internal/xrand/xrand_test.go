package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the SplitMix64 reference implementation with
	// seed 0.
	s := NewSplitMix64(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("step %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestUint64nRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint32) bool {
		if n == 0 {
			n = 1
		}
		r := New(seed)
		for i := 0; i < 50; i++ {
			if r.Uint64n(uint64(n)) >= uint64(n) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	for _, n := range []int{0, 1, 2, 10, 64, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffle(t *testing.T) {
	r := New(5)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	sum := 0
	for _, v := range vals {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v", vals)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) fired %.3f of the time", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(13)
	sum := 0
	const n = 50000
	p := 0.2
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	want := (1 - p) / p // mean number of failures
	if mean := float64(sum) / n; math.Abs(mean-want) > 0.15 {
		t.Fatalf("Geometric(%.1f) mean %.2f, want ~%.2f", p, mean, want)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	var sum, sumSq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Fatalf("NormFloat64 mean=%.3f var=%.3f, want 0/1", mean, variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(21)
	child := r.Split()
	// Parent and child streams should not be identical.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split streams overlap: %d matches", same)
	}
}
