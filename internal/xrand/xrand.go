// Package xrand provides small, deterministic, seedable pseudo-random
// number generators used throughout the repository.
//
// Experiments must be reproducible bit-for-bit: the LSH projection matrix,
// the synthetic workload contents, and the best-of-n victim sampling all
// derive their randomness from explicit seeds routed through this package.
// We implement SplitMix64 (for seeding and cheap stream splitting) and
// xoshiro256** (for bulk generation) rather than using math/rand so that
// the bit streams are stable across Go releases.
package xrand

import "math"

// SplitMix64 is a tiny 64-bit PRNG with a single word of state. It is
// primarily used to expand one seed into many independent seeds.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator: fast, high quality, 256 bits of state.
type Rand struct {
	s [4]uint64
}

// New returns a Rand seeded from seed via SplitMix64, as recommended by
// the xoshiro authors.
func New(seed uint64) *Rand {
	r := Seeded(seed)
	return &r
}

// Seeded is New returning the generator by value: the identical stream,
// but stack-allocatable. Hot paths that derive a short-lived generator
// per item (the workload line generators) use this to stay off the heap.
func Seeded(seed uint64) Rand {
	sm := SplitMix64{state: seed}
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// All-zero state is invalid; SplitMix64 cannot produce four zero
	// outputs in a row for any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new, statistically independent generator from r.
// The child stream does not advance in lockstep with the parent after
// the split.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns 32 random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Classic modulo-with-rejection; the rejection zone is tiny for the
	// small n used in this repository.
	limit := ^uint64(0) - (^uint64(0) % n)
	for {
		v := r.Uint64()
		if v <= limit {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a normally distributed value (mean 0, stddev 1)
// using the Marsaglia polar method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p (number of failures before the first success).
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p >= 1 {
		if p >= 1 {
			return 0
		}
		panic("xrand: Geometric with p out of (0,1]")
	}
	n := 0
	for !r.Bool(p) {
		n++
		if n > 1<<20 { // defensive bound; p>=1e-6 in practice
			break
		}
	}
	return n
}
