// Package cluster implements DBSCAN (Ester, Kriegel, Sander, Xu; KDD
// 1996), the offline clustering algorithm the paper applies to LLC
// snapshots to motivate dynamic in-cache clustering (§3, Fig. 5). The
// distance metric is the byte-difference count between cachelines — the
// quantity that determines base+diff encoding size — and the similarity
// threshold (eps) can be auto-tuned to a space-savings target, exactly as
// the paper tunes it to 40% savings per snapshot.
package cluster

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/diffenc"
	"repro/internal/line"
)

// Noise is the label assigned to points in no cluster.
const Noise = -1

// Params configures a DBSCAN run.
type Params struct {
	// Eps is the neighbourhood radius in differing bytes: two lines are
	// neighbours when DiffBytes(a,b) <= Eps.
	Eps int
	// MinPts is the minimum neighbourhood size (including the point
	// itself) for a core point. The paper's setting is density-light —
	// clusters of near-duplicate pairs count — so 2 is the default.
	MinPts int
}

// DefaultParams returns MinPts=2 with a 16-byte radius (the "nearly all
// blocks differ by at most 16 bytes" observation of §1).
func DefaultParams() Params { return Params{Eps: 16, MinPts: 2} }

// Result is a clustering outcome.
type Result struct {
	// Labels[i] is the cluster id of lines[i], or Noise.
	Labels []int
	// NumClusters is the number of clusters found.
	NumClusters int
	// Sizes[c] is the member count of cluster c.
	Sizes []int
}

// MaxClusterSize returns the largest cluster's member count (the Fig. 5
// "members" series), or 0 when no clusters exist.
func (r Result) MaxClusterSize() int {
	max := 0
	for _, s := range r.Sizes {
		if s > max {
			max = s
		}
	}
	return max
}

// Run clusters the snapshot with DBSCAN under p. Neighbourhood queries
// use an exact-word index to avoid the full O(n²) scan on large
// snapshots; for eps < 64 any neighbour shares at least one aligned
// 8-byte word unless all eight words differ, so a bounded brute-force
// sweep supplements the index for correctness on small inputs.
func Run(lines []line.Line, p Params) Result {
	return runWith(lines, p, buildNeighbours(lines, p.Eps))
}

// runWith is the DBSCAN core over prebuilt eps-neighbourhood lists. The
// outcome is invariant to the ordering within each neighbour list:
// clusters are seeded at the lowest unvisited core index and expanded to
// completion before the next seed, so every point's label depends only on
// the neighbourhood sets. This lets TuneEps derive the lists from a
// precomputed distance matrix without changing any result.
func runWith(lines []line.Line, p Params, neighbours [][]int) Result {
	n := len(lines)
	res := Result{Labels: make([]int, n)}
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	if n == 0 {
		return res
	}

	visited := make([]bool, n)
	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		if len(neighbours[i]) < p.MinPts {
			continue // noise (may later join a cluster as a border point)
		}
		// Start a new cluster and expand it.
		c := res.NumClusters
		res.NumClusters++
		res.Sizes = append(res.Sizes, 0)
		queue := []int{i}
		res.Labels[i] = c
		res.Sizes[c]++
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			for _, nb := range neighbours[q] {
				if res.Labels[nb] == Noise {
					res.Labels[nb] = c
					res.Sizes[c]++
				}
				if !visited[nb] {
					visited[nb] = true
					if len(neighbours[nb]) >= p.MinPts {
						queue = append(queue, nb)
					}
				}
			}
		}
	}
	return res
}

// buildNeighbours computes the eps-neighbourhood lists (excluding self).
func buildNeighbours(lines []line.Line, eps int) [][]int {
	n := len(lines)
	out := make([][]int, n)
	if n <= 4096 {
		// Exact O(n²) for small snapshots.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if line.DiffBytes(&lines[i], &lines[j]) <= eps {
					out[i] = append(out[i], j)
					out[j] = append(out[j], i)
				}
			}
		}
		return out
	}
	// Word-bucket candidates for large snapshots: a pair within eps <= 56
	// differing bytes shares at least one identical aligned word.
	byWord := make(map[uint64][]int)
	for i := range lines {
		seen := make(map[uint64]bool, line.WordsPerLine)
		for w := 0; w < line.WordsPerLine; w++ {
			v := lines[i].Word(w)
			if seen[v] {
				continue
			}
			seen[v] = true
			byWord[v] = append(byWord[v], i)
		}
	}
	// Within a bucket, small buckets are compared all-pairs; very large
	// buckets (one dominant value, e.g. a shared prototype word) use a
	// sliding window instead — each member is compared with the next
	// windowSize members, and DBSCAN's breadth-first expansion stitches
	// the chain into one cluster via transitivity.
	const (
		bucketCap  = 512
		windowSize = 48
	)
	pairSeen := make(map[[2]int32]bool)
	consider := func(i, j int) {
		if i == j {
			return
		}
		if i > j {
			i, j = j, i
		}
		key := [2]int32{int32(i), int32(j)}
		if pairSeen[key] {
			return
		}
		pairSeen[key] = true
		if line.DiffBytes(&lines[i], &lines[j]) <= eps {
			out[i] = append(out[i], j)
			out[j] = append(out[j], i)
		}
	}
	// Iterate buckets in sorted key order: the windowed comparison of
	// oversized buckets visits only a subset of pairs, so neighbour lists
	// (and downstream cluster labels) would otherwise depend on Go's
	// randomized map order.
	words := make([]uint64, 0, len(byWord))
	for w := range byWord {
		words = append(words, w)
	}
	sort.Slice(words, func(a, b int) bool { return words[a] < words[b] })
	for _, w := range words {
		bucket := byWord[w]
		if len(bucket) <= bucketCap {
			for a := 0; a < len(bucket); a++ {
				for b := a + 1; b < len(bucket); b++ {
					consider(bucket[a], bucket[b])
				}
			}
			continue
		}
		for a := 0; a < len(bucket); a++ {
			for w := 1; w <= windowSize && a+w < len(bucket); w++ {
				consider(bucket[a], bucket[a+w])
			}
		}
	}
	return out
}

// matrixCap bounds the snapshot size for which TuneEps precomputes the
// full pairwise distance matrix (n(n-1)/2 bytes). It matches the exact
// O(n²) cutoff in buildNeighbours: above it the word-bucket index is used
// per grid point instead.
const matrixCap = 4096

// DistanceMatrix holds the strict upper triangle of the pairwise
// DiffBytes matrix of a snapshot, row-major: row i covers j in (i, n).
// Distances fit a byte (0..line.Size).
type DistanceMatrix struct {
	n int
	d []uint8
}

// rowStart returns the offset of row i's first entry (pair (i, i+1)).
func (m *DistanceMatrix) rowStart(i int) int { return i * (2*m.n - i - 1) / 2 }

// At returns DiffBytes(lines[i], lines[j]) for i != j.
func (m *DistanceMatrix) At(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return int(m.d[m.rowStart(i)+j-i-1])
}

// NewDistanceMatrix computes all pairwise DiffBytes distances once,
// splitting the rows across workers (workers <= 0 means GOMAXPROCS).
// Every worker writes disjoint offsets of a preallocated slice, so the
// result is identical for any worker count or schedule.
func NewDistanceMatrix(lines []line.Line, workers int) *DistanceMatrix {
	n := len(lines)
	m := &DistanceMatrix{n: n, d: make([]uint8, n*(n-1)/2)}
	if n < 2 {
		return m
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n-1 {
		workers = n - 1
	}
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.d[m.rowStart(i):m.rowStart(i+1)]
			for j := i + 1; j < n; j++ {
				row[j-i-1] = uint8(line.DiffBytes(&lines[i], &lines[j]))
			}
		}
	}
	if workers == 1 {
		fill(0, n-1)
		return m
	}
	// Early rows are longer than late ones; interleaving blocks would
	// balance better, but contiguous chunks sized by remaining area keep
	// the code simple and the imbalance is bounded by the chunk count.
	var wg sync.WaitGroup
	per := (len(m.d) + workers - 1) / workers
	lo := 0
	for lo < n-1 {
		hi := lo + 1
		for hi < n-1 && m.rowStart(hi+1)-m.rowStart(lo) < per {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fill(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
	return m
}

// appendNeighbours adds to each list the pairs whose distance lies in
// [lo, hi], scanning the upper triangle in (i, j) order. Growing the
// lists band-by-band lets one matrix serve every grid point of a sweep.
func (m *DistanceMatrix) appendNeighbours(neighbours [][]int, lo, hi int) {
	if lo > hi {
		return
	}
	for i := 0; i < m.n-1; i++ {
		row := m.d[m.rowStart(i):m.rowStart(i+1)]
		for k, d := range row {
			if int(d) >= lo && int(d) <= hi {
				j := i + 1 + k
				neighbours[i] = append(neighbours[i], j)
				neighbours[j] = append(neighbours[j], i)
			}
		}
	}
}

// SpaceSavings estimates the fraction of data-array space saved by
// compressing the snapshot under the clustering: each cluster stores one
// raw clusteroid (its first member) and base+diff encodings for the rest;
// noise points stay raw; zero lines are free.
func SpaceSavings(lines []line.Line, r Result) float64 {
	if len(lines) == 0 {
		return 0
	}
	first := make(map[int]int)
	total := 0
	for i := range lines {
		c := r.Labels[i]
		switch {
		case lines[i].IsZero():
			// free
		case c == Noise:
			total += line.Size
		default:
			base, ok := first[c]
			if !ok {
				first[c] = i
				total += line.Size
				break
			}
			d := diffenc.DiffSizeBytes(line.DiffBytes(&lines[i], &lines[base]))
			if d > line.Size {
				d = line.Size
			}
			total += d
		}
	}
	return 1 - float64(total)/float64(len(lines)*line.Size)
}

// TuneEps finds the smallest eps whose clustering reaches the target
// space-savings fraction, mirroring the paper's per-workload tuning to
// 40% savings. Savings are not monotone in eps — single-linkage chaining
// at large radii merges dissimilar lines into one cluster behind an
// unrepresentative clusteroid — so the tuner sweeps a radius grid and,
// when the target is unreachable for the snapshot's content, returns the
// savings-maximizing radius instead.
//
// Snapshots up to matrixCap lines pay the O(n²) DiffBytes pass exactly
// once: the pairwise distance matrix is computed up front (parallelized
// across row blocks) and each grid point's neighbour lists are derived by
// thresholding it, instead of rebuilding them per grid point.
func TuneEps(lines []line.Line, target float64, minPts int) (Params, Result) {
	var grid []int
	for e := 0; e <= 16; e++ {
		grid = append(grid, e)
	}
	for e := 18; e <= 32; e += 2 {
		grid = append(grid, e)
	}
	for e := 36; e <= line.Size; e += 4 {
		grid = append(grid, e)
	}
	n := len(lines)
	var dm *DistanceMatrix
	var neighbours [][]int
	prevEps := -1
	if n <= matrixCap {
		dm = NewDistanceMatrix(lines, 0)
		neighbours = make([][]int, n)
	}
	bestP := Params{Eps: 0, MinPts: minPts}
	var bestR Result
	bestS := -1.0
	declines := 0
	for _, eps := range grid {
		p := Params{Eps: eps, MinPts: minPts}
		var r Result
		if dm != nil {
			dm.appendNeighbours(neighbours, prevEps+1, eps)
			prevEps = eps
			r = runWith(lines, p, neighbours)
		} else {
			r = Run(lines, p)
		}
		s := SpaceSavings(lines, r)
		if s >= target {
			return p, r
		}
		if s > bestS {
			bestP, bestR, bestS = p, r, s
			declines = 0
		} else if s < bestS-1e-12 {
			// A strict decline past the peak means chaining has started
			// to hurt; after a few of those the rest of the sweep cannot
			// recover. Plateaus (e.g. zero savings at tiny radii) do not
			// count — the sweep must keep widening.
			declines++
			if declines >= 4 {
				break
			}
		}
	}
	return bestP, bestR
}

// SizeHistogram buckets cluster sizes; the returned slice is sorted
// descending (largest cluster first).
func SizeHistogram(r Result) []int {
	sizes := append([]int(nil), r.Sizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
