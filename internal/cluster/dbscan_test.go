package cluster

import (
	"testing"

	"repro/internal/line"
	"repro/internal/xrand"
)

// mkCluster generates n near-duplicates of a prototype derived from seed.
func mkCluster(seed uint64, n, spread int) []line.Line {
	rng := xrand.New(seed)
	var proto line.Line
	for i := range proto {
		proto[i] = byte(rng.Uint32())
	}
	out := make([]line.Line, n)
	for i := range out {
		l := proto
		for k := 0; k < spread; k++ {
			l[rng.Intn(line.Size)] ^= byte(1 + rng.Intn(255))
		}
		out[i] = l
	}
	return out
}

func TestTwoCleanClusters(t *testing.T) {
	lines := append(mkCluster(1, 20, 2), mkCluster(2, 30, 2)...)
	r := Run(lines, Params{Eps: 8, MinPts: 2})
	if r.NumClusters != 2 {
		t.Fatalf("found %d clusters, want 2", r.NumClusters)
	}
	sizes := SizeHistogram(r)
	if sizes[0] != 30 || sizes[1] != 20 {
		t.Fatalf("sizes %v", sizes)
	}
	if r.MaxClusterSize() != 30 {
		t.Fatalf("max size %d", r.MaxClusterSize())
	}
}

func TestNoiseStaysNoise(t *testing.T) {
	rng := xrand.New(3)
	var lines []line.Line
	for i := 0; i < 20; i++ {
		var l line.Line
		for j := 0; j < 8; j++ {
			l.SetWord(j, rng.Uint64())
		}
		lines = append(lines, l)
	}
	r := Run(lines, Params{Eps: 8, MinPts: 2})
	if r.NumClusters != 0 {
		t.Fatalf("random lines formed %d clusters", r.NumClusters)
	}
	for i, lab := range r.Labels {
		if lab != Noise {
			t.Fatalf("line %d labelled %d", i, lab)
		}
	}
}

func TestClusterPlusNoise(t *testing.T) {
	lines := mkCluster(4, 25, 1)
	rng := xrand.New(5)
	for i := 0; i < 5; i++ {
		var l line.Line
		for j := 0; j < 8; j++ {
			l.SetWord(j, rng.Uint64())
		}
		lines = append(lines, l)
	}
	r := Run(lines, Params{Eps: 6, MinPts: 2})
	if r.NumClusters != 1 {
		t.Fatalf("%d clusters", r.NumClusters)
	}
	noise := 0
	for _, lab := range r.Labels {
		if lab == Noise {
			noise++
		}
	}
	if noise != 5 {
		t.Fatalf("noise count %d, want 5", noise)
	}
}

func TestMembershipSoundness(t *testing.T) {
	// Every non-noise point must have at least one cluster-mate within
	// eps (border points attach to a core's neighbourhood).
	lines := append(mkCluster(6, 30, 3), mkCluster(7, 15, 3)...)
	p := Params{Eps: 10, MinPts: 2}
	r := Run(lines, p)
	for i, lab := range r.Labels {
		if lab == Noise {
			continue
		}
		ok := false
		for j := range lines {
			if i != j && r.Labels[j] == lab && line.DiffBytes(&lines[i], &lines[j]) <= p.Eps {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("point %d in cluster %d has no neighbour in it", i, lab)
		}
	}
}

func TestSpaceSavings(t *testing.T) {
	// 20 lines differing in 1 byte: one raw + 19 × 9-byte diffs.
	lines := mkCluster(8, 20, 1)
	r := Run(lines, Params{Eps: 4, MinPts: 2})
	s := SpaceSavings(lines, r)
	if s < 0.7 {
		t.Fatalf("savings %.2f, want > 0.7", s)
	}
	// Noise-only input saves nothing.
	rng := xrand.New(9)
	var noise []line.Line
	for i := 0; i < 10; i++ {
		var l line.Line
		for j := 0; j < 8; j++ {
			l.SetWord(j, rng.Uint64())
		}
		noise = append(noise, l)
	}
	rn := Run(noise, Params{Eps: 4, MinPts: 2})
	if s := SpaceSavings(noise, rn); s != 0 {
		t.Fatalf("noise savings %.2f", s)
	}
}

func TestZeroLinesFreeInSavings(t *testing.T) {
	lines := []line.Line{{}, {}, {}}
	r := Run(lines, Params{Eps: 0, MinPts: 2})
	if s := SpaceSavings(lines, r); s != 1 {
		t.Fatalf("all-zero savings %.2f", s)
	}
}

func TestTuneEpsReachesTarget(t *testing.T) {
	lines := mkCluster(10, 60, 4)
	p, r := TuneEps(lines, 0.40, 2)
	if s := SpaceSavings(lines, r); s < 0.40 {
		t.Fatalf("tuned savings %.2f < target (eps=%d)", s, p.Eps)
	}
	// A smaller eps must miss the target (minimality).
	if p.Eps > 0 {
		r2 := Run(lines, Params{Eps: p.Eps - 1, MinPts: 2})
		if SpaceSavings(lines, r2) >= 0.40 {
			t.Fatalf("eps %d not minimal", p.Eps)
		}
	}
}

func TestLargeSnapshotBucketPath(t *testing.T) {
	// Over the exact-path threshold: exercise the word-bucket route.
	var lines []line.Line
	for c := uint64(0); c < 6; c++ {
		lines = append(lines, mkCluster(20+c, 800, 2)...)
	}
	r := Run(lines, Params{Eps: 8, MinPts: 2})
	if r.NumClusters < 5 {
		t.Fatalf("bucket path found only %d clusters", r.NumClusters)
	}
	covered := 0
	for _, lab := range r.Labels {
		if lab != Noise {
			covered++
		}
	}
	if float64(covered) < 0.9*float64(len(lines)) {
		t.Fatalf("bucket path covered %d/%d", covered, len(lines))
	}
}

func TestDistanceMatrixMatchesDiffBytes(t *testing.T) {
	lines := mkCluster(77, 40, 20)
	for _, workers := range []int{1, 4} {
		m := NewDistanceMatrix(lines, workers)
		for i := range lines {
			for j := range lines {
				if i == j {
					continue
				}
				if got, want := m.At(i, j), line.DiffBytes(&lines[i], &lines[j]); got != want {
					t.Fatalf("workers=%d At(%d,%d) = %d, want %d", workers, i, j, got, want)
				}
			}
		}
	}
}

// TestTuneEpsMatchesPerEpsReference verifies the precomputed-matrix sweep
// against the reference tuner that rebuilds neighbour lists per grid
// point (the pre-optimization behaviour): Params and the full Result
// must be identical.
func TestTuneEpsMatchesPerEpsReference(t *testing.T) {
	refTune := func(lines []line.Line, target float64, minPts int) (Params, Result) {
		var grid []int
		for e := 0; e <= 16; e++ {
			grid = append(grid, e)
		}
		for e := 18; e <= 32; e += 2 {
			grid = append(grid, e)
		}
		for e := 36; e <= line.Size; e += 4 {
			grid = append(grid, e)
		}
		bestP := Params{Eps: 0, MinPts: minPts}
		var bestR Result
		bestS := -1.0
		declines := 0
		for _, eps := range grid {
			p := Params{Eps: eps, MinPts: minPts}
			r := Run(lines, p)
			s := SpaceSavings(lines, r)
			if s >= target {
				return p, r
			}
			if s > bestS {
				bestP, bestR, bestS = p, r, s
				declines = 0
			} else if s < bestS-1e-12 {
				declines++
				if declines >= 4 {
					break
				}
			}
		}
		return bestP, bestR
	}
	sameResult := func(a, b Result) bool {
		if a.NumClusters != b.NumClusters || len(a.Labels) != len(b.Labels) || len(a.Sizes) != len(b.Sizes) {
			return false
		}
		for i := range a.Labels {
			if a.Labels[i] != b.Labels[i] {
				return false
			}
		}
		for i := range a.Sizes {
			if a.Sizes[i] != b.Sizes[i] {
				return false
			}
		}
		return true
	}
	cases := [][]line.Line{
		mkCluster(1, 50, 4),  // reaches the target early
		mkCluster(2, 30, 60), // wide spread: sweeps far
		append(mkCluster(3, 25, 3), mkCluster(4, 25, 3)...), // two clusters
		nil, // empty snapshot
	}
	// High-entropy random lines: mostly noise, target unreachable.
	rng := xrand.New(99)
	var random []line.Line
	for i := 0; i < 40; i++ {
		var l line.Line
		for w := 0; w < line.WordsPerLine; w++ {
			l.SetWord(w, rng.Uint64())
		}
		random = append(random, l)
	}
	cases = append(cases, random)
	for ci, lines := range cases {
		gotP, gotR := TuneEps(lines, 0.40, 2)
		wantP, wantR := refTune(lines, 0.40, 2)
		if gotP != wantP || !sameResult(gotR, wantR) {
			t.Fatalf("case %d: TuneEps diverges from per-eps reference: got (%+v, %d clusters), want (%+v, %d clusters)",
				ci, gotP, gotR.NumClusters, wantP, wantR.NumClusters)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	r := Run(nil, DefaultParams())
	if r.NumClusters != 0 || len(r.Labels) != 0 {
		t.Fatal("empty input")
	}
	if SpaceSavings(nil, r) != 0 {
		t.Fatal("empty savings")
	}
}
