// Package energy is the analytical silicon-cost model standing in for the
// paper's CACTI 6.5 + Synopsys DC flow (§6.3): storage allocation at
// iso-silicon (Table 2), per-bank dynamic read energy and leakage power
// (Table 3), added-logic synthesis results (Table 4), and the total-power
// difference including avoided DRAM accesses (Fig. 14).
//
// The per-structure constants are calibrated to the values the paper
// publishes (they came from CACTI on FreePDK45, which we cannot run);
// the scaling relations — energy ∝ √capacity, leakage ∝ capacity — are
// standard SRAM models and let the sweeps extrapolate to other sizes.
package energy

import "math"

// Process selects the technology node of Table 3.
type Process int

// Technology nodes reported in Table 3.
const (
	Node45nm Process = 45
	Node32nm Process = 32
)

// StorageRow is one design's row of Table 2.
type StorageRow struct {
	Design        string
	TagEntries    int
	TagEntryBits  int
	DataEntries   int
	DataEntryBits int
	DictEntries   int
	DictEntryBits int
}

// TagBytes returns the tag-array footprint in bytes.
func (r StorageRow) TagBytes() int { return r.TagEntries * r.TagEntryBits / 8 }

// DataBytes returns the data-array footprint in bytes.
func (r StorageRow) DataBytes() int { return r.DataEntries * r.DataEntryBits / 8 }

// DictBytes returns the dictionary/base-cache footprint in bytes.
func (r StorageRow) DictBytes() int { return r.DictEntries * r.DictEntryBits / 8 }

// TotalBytes returns the design's total SRAM footprint.
func (r StorageRow) TotalBytes() int { return r.TagBytes() + r.DataBytes() + r.DictBytes() }

// Table2 returns the iso-silicon storage allocation of the paper's
// Table 2: every compressed design fits the silicon budget of a 1MB
// conventional cache with 48-bit physical addresses.
//
// Entry-bit derivations (48-bit address space, 64B lines):
//
//   - Conventional: 2048 sets → tag 31b + coherence 2b + PLRU state ≈ 37b.
//   - BΔI: doubled tags, plus encoding metadata → 47b.
//   - Dedup: doubled tags plus data pointer and the prev/next links of
//     the per-block tag list → 81b.
//   - Thesaurus: doubled tags plus fmt (3b), 12b LSH fingerprint, setptr
//     (11b for 1462 data sets) and segix (6b) → 72b (Fig. 9).
func Table2() []StorageRow {
	return []StorageRow{
		{Design: "Conventional", TagEntries: 16384, TagEntryBits: 37, DataEntries: 16384, DataEntryBits: 512},
		{Design: "BDI", TagEntries: 32768, TagEntryBits: 47, DataEntries: 14336, DataEntryBits: 512},
		{Design: "Dedup", TagEntries: 32768, TagEntryBits: 81, DataEntries: 11700, DataEntryBits: 512 + 16,
			DictEntries: 8192, DictEntryBits: 24},
		{Design: "Thesaurus", TagEntries: 32768, TagEntryBits: 72, DataEntries: 11700, DataEntryBits: 512 + 32,
			DictEntries: 512, DictEntryBits: 24 + 512},
	}
}

// CachePower is one row of Table 3: per-bank dynamic read energy and
// total leakage power.
type CachePower struct {
	Design        string
	ReadEnergyNJ  float64
	LeakagePowerW float64 // watts
}

// table3 holds the published CACTI results we calibrate against.
var table3 = map[Process][]CachePower{
	Node45nm: {
		{"Conventional", 0.50, 0.20547},
		{"BDI", 0.55, 0.19647},
		{"Dedup", 0.56, 0.22633},
		{"Thesaurus", 0.56, 0.23601},
		{"Conventional 2x", 0.78, 0.34921},
	},
	Node32nm: {
		{"Conventional", 0.28, 0.10996},
		{"BDI", 0.31, 0.10522},
		{"Dedup", 0.32, 0.12106},
		{"Thesaurus", 0.31, 0.12585},
		{"Conventional 2x", 0.44, 0.18650},
	},
}

// Table3 returns the calibrated per-design cache energy figures for the
// given node.
func Table3(p Process) []CachePower {
	out := append([]CachePower(nil), table3[p]...)
	return out
}

// CachePowerFor returns one design's Table 3 row.
func CachePowerFor(p Process, design string) (CachePower, bool) {
	for _, row := range table3[p] {
		if row.Design == design {
			return row, true
		}
	}
	return CachePower{}, false
}

// Scaling anchors from the conventional 1MB and 2MB points at 45nm:
// E(B) = eA·√B + eB (nJ, B in MB), L(B) = lA·B + lB (W).
var (
	eA = (0.78 - 0.50) / (math.Sqrt2 - 1)
	eB = 0.50 - eA
	lA = 0.34921 - 0.20547
	lB = 0.20547 - lA
)

// ScaledReadEnergy extrapolates conventional-cache read energy (nJ, 45nm)
// to an arbitrary capacity in bytes, for the sweep experiments.
func ScaledReadEnergy(capacityBytes int) float64 {
	mb := float64(capacityBytes) / (1 << 20)
	return eA*math.Sqrt(mb) + eB
}

// ScaledLeakage extrapolates conventional-cache leakage (W, 45nm).
func ScaledLeakage(capacityBytes int) float64 {
	mb := float64(capacityBytes) / (1 << 20)
	return lA*mb + lB
}

// LogicBlock is one row of Table 4: a synthesized logic block of the
// Thesaurus controller.
type LogicBlock struct {
	Name          string
	LatencyCycles int
	DynamicW      float64
	LeakageW      float64
	AreaMM2       float64
}

// Table4 returns the added-logic synthesis results (45nm FreePDK,
// 2.66GHz): compressor, decompressor, segix location logic, and the
// multi-bank muxing.
func Table4() []LogicBlock {
	return []LogicBlock{
		{"comp", 1, 0.116e-3, 2.44e-3, 0.016},
		{"decomp", 1, 0.084e-3, 1.74e-3, 0.013},
		{"segix", 4, 0.035e-3, 0.49e-3, 0.007},
		{"multi-bank", 0, 0.101e-3, 1.42e-3, 0.025},
	}
}

// ThesaurusLogicArea returns the total added-logic area (mm², 45nm):
// ~0.06mm², about 1% of a 1MB cache's 5.56mm².
func ThesaurusLogicArea() float64 {
	total := 0.0
	for _, b := range Table4() {
		total += b.AreaMM2
	}
	return total
}

// ThesaurusLogicLeakage returns the added logic's total leakage in watts.
func ThesaurusLogicLeakage() float64 {
	total := 0.0
	for _, b := range Table4() {
		total += b.LeakageW
	}
	return total
}

// DRAMAccessEnergyNJ is the energy of one off-chip DRAM access (64B) from
// the paper's CACTI model (§6.3).
const DRAMAccessEnergyNJ = 32.61

// ThesaurusAccessOverheadNJ is the extra energy per LLC access of the
// Thesaurus design versus the conventional cache (0.56 − 0.50 nJ).
const ThesaurusAccessOverheadNJ = 0.06

// PowerDiff computes the Fig. 14 metric in watts: total power *saved* by
// Thesaurus relative to the uncompressed baseline (positive = Thesaurus
// consumes less). Rates are per second.
//
//	saved  = DRAM energy × (baseline DRAM rate − Thesaurus DRAM rate)
//	added  = cache leakage overhead + logic power + 0.06nJ × access rate
func PowerDiff(baselineDRAMRate, thesaurusDRAMRate, thesaurusAccessRate float64) float64 {
	conv, _ := CachePowerFor(Node45nm, "Conventional")
	thes, _ := CachePowerFor(Node45nm, "Thesaurus")
	leakOverhead := thes.LeakagePowerW - conv.LeakagePowerW // ≈ 30.54mW
	logic := 0.0
	for _, b := range Table4() {
		logic += b.LeakageW + b.DynamicW
	}
	added := leakOverhead + logic + ThesaurusAccessOverheadNJ*1e-9*thesaurusAccessRate
	saved := DRAMAccessEnergyNJ * 1e-9 * (baselineDRAMRate - thesaurusDRAMRate)
	return saved - added
}
