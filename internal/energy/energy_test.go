package energy

import (
	"math"
	"testing"
)

func TestTable2IsoSilicon(t *testing.T) {
	rows := Table2()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	var conv int
	for _, r := range rows {
		if r.Design == "Conventional" {
			conv = r.TotalBytes()
		}
	}
	// All designs fit within ~1% of the conventional silicon budget
	// (Table 2's totals range 1.06-1.07MB).
	for _, r := range rows {
		tot := r.TotalBytes()
		dev := math.Abs(float64(tot-conv)) / float64(conv)
		if dev > 0.015 {
			t.Errorf("%s total %dKB deviates %.1f%% from conventional %dKB",
				r.Design, tot>>10, 100*dev, conv>>10)
		}
	}
}

func TestTable2PublishedSizes(t *testing.T) {
	// Spot-check against the published Table 2 values.
	for _, r := range Table2() {
		switch r.Design {
		case "Conventional":
			if r.TagBytes()>>10 != 74 || r.DataBytes()>>10 != 1024 {
				t.Errorf("conventional: tag %dKB data %dKB", r.TagBytes()>>10, r.DataBytes()>>10)
			}
		case "Dedup":
			if r.TagBytes()>>10 != 324 || r.DictBytes()>>10 != 24 {
				t.Errorf("dedup: tag %dKB dict %dKB", r.TagBytes()>>10, r.DictBytes()>>10)
			}
		case "Thesaurus":
			if r.TagBytes()>>10 != 288 || r.DictBytes()>>10 != 33 {
				t.Errorf("thesaurus: tag %dKB dict %dKB", r.TagBytes()>>10, r.DictBytes()>>10)
			}
		}
	}
}

func TestTable3Anchors(t *testing.T) {
	conv, ok := CachePowerFor(Node45nm, "Conventional")
	if !ok || conv.ReadEnergyNJ != 0.50 {
		t.Fatalf("conventional 45nm: %+v ok=%v", conv, ok)
	}
	thes, _ := CachePowerFor(Node45nm, "Thesaurus")
	if thes.LeakagePowerW-conv.LeakagePowerW < 0.030 || thes.LeakagePowerW-conv.LeakagePowerW > 0.031 {
		t.Fatalf("leakage overhead %.4f, want ~30.5mW", thes.LeakagePowerW-conv.LeakagePowerW)
	}
	if _, ok := CachePowerFor(Node45nm, "nope"); ok {
		t.Fatal("unknown design found")
	}
	if len(Table3(Node32nm)) != 5 {
		t.Fatal("32nm rows")
	}
}

func TestScalingMatchesAnchors(t *testing.T) {
	if e := ScaledReadEnergy(1 << 20); math.Abs(e-0.50) > 1e-9 {
		t.Fatalf("1MB energy %v", e)
	}
	if e := ScaledReadEnergy(2 << 20); math.Abs(e-0.78) > 1e-9 {
		t.Fatalf("2MB energy %v", e)
	}
	if l := ScaledLeakage(1 << 20); math.Abs(l-0.20547) > 1e-9 {
		t.Fatalf("1MB leakage %v", l)
	}
	if l := ScaledLeakage(2 << 20); math.Abs(l-0.34921) > 1e-9 {
		t.Fatalf("2MB leakage %v", l)
	}
	// Monotone in between.
	if ScaledReadEnergy(1536<<10) <= 0.50 || ScaledReadEnergy(1536<<10) >= 0.78 {
		t.Fatal("scaling not monotone")
	}
}

func TestTable4Totals(t *testing.T) {
	if len(Table4()) != 4 {
		t.Fatal("table 4 rows")
	}
	if a := ThesaurusLogicArea(); math.Abs(a-0.061) > 1e-9 {
		t.Fatalf("logic area %v, want 0.061mm²", a)
	}
	if l := ThesaurusLogicLeakage(); math.Abs(l-6.09e-3) > 1e-9 {
		t.Fatalf("logic leakage %v", l)
	}
}

func TestPowerDiffSigns(t *testing.T) {
	// Large DRAM savings → positive diff (paper: up to ~101mW saved).
	// 3.1M avoided accesses/s × 32.61nJ ≈ 101mW gross.
	saved := PowerDiff(5e6, 1.9e6, 1e7)
	if saved <= 0 {
		t.Fatalf("big DRAM savings yielded %.1fmW", saved*1000)
	}
	// No DRAM savings → overheads dominate (cache-insensitive case).
	burn := PowerDiff(1e6, 1e6, 1e7)
	if burn >= 0 {
		t.Fatalf("no savings yielded positive %.1fmW", burn*1000)
	}
	// The fixed overhead is ~36.6mW plus the per-access term.
	if math.Abs(burn*1000+36.63+0.06*10) > 2 {
		t.Fatalf("overhead %.2fmW out of expected band", -burn*1000)
	}
}
