package harness

import (
	"fmt"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/sim"
	"repro/internal/thesaurus"
	"repro/internal/workload"
)

// artifacts is the process-wide on-disk recording cache (L2 behind the
// in-memory memo). nil disables persistence. It is installed once at
// startup by the CLIs, before any recording runs. runCacheOff disables
// just the run-level layer (whole RunOutput snapshots) while keeping the
// recording layer: the cache-identity CI gate uses it to prove the
// layers are independently byte-transparent.
var (
	artifacts      atomic.Pointer[artifact.Cache]
	artifactVerify atomic.Bool
	runCacheOff    atomic.Bool
)

// UseArtifacts installs c as the persistent recording cache consulted by
// RecordProfile before simulating (nil uninstalls it). The in-memory memo
// stays in front: a process loads or records each profile at most once,
// so the disk sees exactly one access per key regardless of how many
// runs later share the memoized recording.
func UseArtifacts(c *artifact.Cache) { artifacts.Store(c) }

// SetArtifactVerify enables paranoid mode: every artifact hit (recording
// or whole run) is followed by a full recomputation and deep comparison,
// and a divergence fails the run loudly. This is the guard against
// stale-key bugs (a parameter that influences the result but is missing
// from the content key).
func SetArtifactVerify(v bool) { artifactVerify.Store(v) }

// SetRunCache enables or disables the run-level artifact layer (whole
// RunOutput snapshots). Recording artifacts are unaffected; with the run
// layer off, a warm cache still skips recording but replays every cell.
func SetRunCache(enabled bool) { runCacheOff.Store(!enabled) }

// ArtifactStats returns the installed cache's counters; ok is false when
// no cache is installed.
func ArtifactStats() (st artifact.Stats, ok bool) {
	c := artifacts.Load()
	if c == nil {
		return artifact.Stats{}, false
	}
	return c.Stats(), true
}

// recordOrLoad is the body of RecordProfile's coalesced computation: it
// consults the artifact cache (when installed) before paying for
// generation + L1/L2 simulation. Running inside the coalesce flight
// guarantees the disk lookup — and therefore the hit/miss accounting —
// happens exactly once per key per process, even when the in-memory memo
// serves every later call.
func recordOrLoad(name string, accesses int) (*sim.Recorded, error) {
	p, err := workload.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	record := func() *sim.Recorded {
		gen := p.Generate(accesses)
		return sim.Record(gen.Stream, sim.DefaultSystem(), gen.Image)
	}
	c := artifacts.Load()
	if c == nil {
		return record(), nil
	}
	rec, hit := c.LoadOrRecord(artifact.RecordedKey(p, sim.DefaultSystem(), accesses), record)
	if hit && artifactVerify.Load() {
		fresh := record()
		if !artifact.RecordedEqual(rec, fresh) {
			return nil, fmt.Errorf(
				"harness: artifact verify failed for %s/%d: cached recording diverges from regeneration (stale content key?)",
				name, accesses)
		}
	}
	return rec, nil
}

// effectiveThesaurusConfig resolves the configuration a Thesaurus run
// will actually execute with — the same normalization runOnce applies
// (nil means paper defaults; DiffSeriesWindow 0 means the Fig. 19
// default window). The run-level content key must hash the effective
// configuration, not the requested one, or equivalent runs would key
// differently. Returns nil for non-Thesaurus designs: their runs don't
// read the configuration at all.
func effectiveThesaurusConfig(design string, opt RunOptions) *thesaurus.Config {
	if design != "Thesaurus" {
		return nil
	}
	cfg := thesaurus.DefaultConfig()
	if opt.Thesaurus != nil {
		cfg = *opt.Thesaurus
	}
	if cfg.DiffSeriesWindow == 0 {
		cfg.DiffSeriesWindow = 512
	}
	return &cfg
}

// DefaultRunContentKey returns the run-level artifact content key a
// memoized default-configuration run of (profile, design) stores under —
// the exact key runOrLoad computes on the sample=true path that campaign
// cells take. Distribution transports use it to name a completed task's
// artifact without re-running anything: a netq worker reports the key in
// its result frame (and streams the bytes stored under it when the cache
// is not shared).
func DefaultRunContentKey(profile, design string, opt RunOptions) (string, error) {
	p, err := workload.ProfileByName(profile)
	if err != nil {
		return "", err
	}
	keySample := design == "Thesaurus"
	return artifact.RunOutputKey(p, sim.DefaultSystem(), design, opt.Accesses,
		opt.Replay, keySample, effectiveThesaurusConfig(design, opt)), nil
}

// runOrLoad is the body of Run's computation behind the in-memory layers:
// it consults the run-level artifact cache (when installed and enabled)
// before paying for a replay. For memoized default-config runs it
// executes inside the coalesce flight, so the disk lookup happens exactly
// once per key per process; custom-configuration runs (sweeps, ablations)
// go through it directly — they are not memoized in memory (they would
// pin hundreds of read-once results) but disk persistence has no such
// concern, and warm ablation reruns are where a campaign spends most of
// its time.
func runOrLoad(profile, design string, opt RunOptions, sample bool) (*RunOutput, error) {
	c := artifacts.Load()
	if c == nil || runCacheOff.Load() {
		return runOnce(profile, design, opt, sample)
	}
	p, err := workload.ProfileByName(profile)
	if err != nil {
		return nil, err
	}
	// Fig. 16 sampling only happens on Thesaurus runs; for every other
	// design the flag changes nothing about the result, so keying it
	// would split identical runs across two cache entries.
	keySample := sample && design == "Thesaurus"
	key := artifact.RunOutputKey(p, sim.DefaultSystem(), design, opt.Accesses,
		opt.Replay, keySample, effectiveThesaurusConfig(design, opt))
	compute := func() (*artifact.RunOutput, error) {
		out, err := runOnce(profile, design, opt, sample)
		if err != nil {
			return nil, err
		}
		return &artifact.RunOutput{Res: out.Res, Snap: out.Snap, ClusterFracs: out.ClusterFracs}, nil
	}
	art, hit, err := c.LoadOrRunOutput(key, compute)
	if err != nil {
		return nil, err
	}
	if hit && artifactVerify.Load() {
		fresh, err := compute()
		if err != nil {
			return nil, err
		}
		if !artifact.RunOutputEqual(art, fresh) {
			return nil, fmt.Errorf(
				"harness: artifact verify failed for %s/%s/%d: cached run diverges from recomputation (stale content key?)",
				profile, design, opt.Accesses)
		}
	}
	return &RunOutput{Res: art.Res, Snap: art.Snap, ClusterFracs: art.ClusterFracs}, nil
}
