package harness

import (
	"fmt"
	"sync/atomic"

	"repro/internal/artifact"
	"repro/internal/sim"
	"repro/internal/workload"
)

// artifacts is the process-wide on-disk recording cache (L2 behind the
// in-memory memo). nil disables persistence. It is installed once at
// startup by the CLIs, before any recording runs.
var (
	artifacts      atomic.Pointer[artifact.Cache]
	artifactVerify atomic.Bool
)

// UseArtifacts installs c as the persistent recording cache consulted by
// RecordProfile before simulating (nil uninstalls it). The in-memory memo
// stays in front: a process loads or records each profile at most once,
// so the disk sees exactly one access per key regardless of how many
// runs later share the memoized recording.
func UseArtifacts(c *artifact.Cache) { artifacts.Store(c) }

// SetArtifactVerify enables paranoid mode: every artifact hit is followed
// by a full re-recording and deep comparison, and a divergence fails the
// run loudly. This is the guard against stale-key bugs (a parameter that
// influences recording but is missing from the content key).
func SetArtifactVerify(v bool) { artifactVerify.Store(v) }

// ArtifactStats returns the installed cache's counters; ok is false when
// no cache is installed.
func ArtifactStats() (st artifact.Stats, ok bool) {
	c := artifacts.Load()
	if c == nil {
		return artifact.Stats{}, false
	}
	return c.Stats(), true
}

// recordOrLoad is the body of RecordProfile's coalesced computation: it
// consults the artifact cache (when installed) before paying for
// generation + L1/L2 simulation. Running inside the coalesce flight
// guarantees the disk lookup — and therefore the hit/miss accounting —
// happens exactly once per key per process, even when the in-memory memo
// serves every later call.
func recordOrLoad(name string, accesses int) (*sim.Recorded, error) {
	p, err := workload.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	record := func() *sim.Recorded {
		gen := p.Generate(accesses)
		return sim.Record(gen.Stream, sim.DefaultSystem(), gen.Image)
	}
	c := artifacts.Load()
	if c == nil {
		return record(), nil
	}
	rec, hit := c.LoadOrRecord(artifact.RecordedKey(p, sim.DefaultSystem(), accesses), record)
	if hit && artifactVerify.Load() {
		fresh := record()
		if !artifact.RecordedEqual(rec, fresh) {
			return nil, fmt.Errorf(
				"harness: artifact verify failed for %s/%d: cached recording diverges from regeneration (stale content key?)",
				name, accesses)
		}
	}
	return rec, nil
}
