package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/llc"
	"repro/internal/thesaurus"
)

func quickOpt() RunOptions {
	opt := DefaultRunOptions()
	opt.Accesses = 60_000
	return opt
}

func TestBuildAllDesigns(t *testing.T) {
	for _, d := range Designs {
		c, mem, err := BuildLLC(d)
		if err != nil || c == nil || mem == nil {
			t.Fatalf("BuildLLC(%s): %v", d, err)
		}
	}
	if _, _, err := BuildLLC("nonsense"); err == nil {
		t.Fatal("unknown design built")
	}
}

func TestRecordProfileMemoized(t *testing.T) {
	a, err := RecordProfile("exchange2", 30_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RecordProfile("exchange2", 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("recording not memoized")
	}
	if _, err := RecordProfile("nosuch", 1000); err == nil {
		t.Fatal("unknown profile recorded")
	}
}

func TestRunMemoizedAndConsistent(t *testing.T) {
	opt := quickOpt()
	o1, err := Run("exchange2", "Thesaurus", opt)
	if err != nil {
		t.Fatal(err)
	}
	before := replays.Load()
	o2, err := Run("exchange2", "Thesaurus", opt)
	if err != nil {
		t.Fatal(err)
	}
	if delta := replays.Load() - before; delta != 0 {
		t.Fatalf("memoized re-run replayed %d times", delta)
	}
	// Each caller gets an isolated deep copy of the memoized master, equal
	// in content but sharing no mutable state.
	if o1 == o2 {
		t.Fatal("memoized runs share one mutable output")
	}
	if o1.Snap.Extra == o2.Snap.Extra {
		t.Fatal("memoized runs share one extra snapshot")
	}
	if !reflect.DeepEqual(o1, o2) {
		t.Fatal("memoized run copies diverge")
	}
	if o1.Res.Design != "Thesaurus" || o1.Snap.Design != "Thesaurus" {
		t.Fatalf("design %q/%q", o1.Res.Design, o1.Snap.Design)
	}
	if _, ok := o1.Snap.Extra.(*thesaurus.Snapshot); !ok {
		t.Fatalf("snapshot extra type %T", o1.Snap.Extra)
	}
}

func TestRunCustomThesaurusConfigNotShared(t *testing.T) {
	opt := quickOpt()
	base, err := Run("exchange2", "Thesaurus", opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := thesaurus.DefaultConfig()
	cfg.LSH.Bits = 8
	opt2 := opt
	opt2.Thesaurus = &cfg
	before := replays.Load()
	custom, err := Run("exchange2", "Thesaurus", opt2)
	if err != nil {
		t.Fatal(err)
	}
	custom2, err := Run("exchange2", "Thesaurus", opt2)
	if err != nil {
		t.Fatal(err)
	}
	// Custom-configuration runs are never memoized: each call replays.
	if delta := replays.Load() - before; delta != 2 {
		t.Fatalf("custom-config runs replayed %d times, want 2", delta)
	}
	ts := custom.Snap.Extra.(*thesaurus.Snapshot)
	if ts.Cfg.LSH.Bits != 8 {
		t.Fatalf("custom config not applied: %d bits", ts.Cfg.LSH.Bits)
	}
	if bts := base.Snap.Extra.(*thesaurus.Snapshot); bts.Cfg.LSH.Bits == 8 {
		t.Fatal("custom config leaked into the default memo entry")
	}
	if !reflect.DeepEqual(custom.Res, custom2.Res) {
		t.Fatal("custom-config runs are not deterministic")
	}
}

func TestRunMatrix(t *testing.T) {
	keys := []RunKey{
		{Profile: "exchange2", Design: "Baseline"},
		{Profile: "exchange2", Design: "Thesaurus"},
		{Profile: "leela", Design: "Baseline"},
	}
	got, err := RunMatrix(keys, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d results", len(got))
	}
	for _, k := range keys {
		out := got[k]
		if out == nil || out.Res.Design != k.Design {
			t.Fatalf("missing or mislabelled result for %+v", k)
		}
	}
	// Matrix results agree with direct runs (memoization shares them).
	direct, err := Run("exchange2", "Baseline", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[keys[0]], direct) {
		t.Fatal("matrix and direct runs diverge")
	}
	if _, err := RunMatrix([]RunKey{{Profile: "nope", Design: "Baseline"}}, quickOpt()); err == nil {
		t.Fatal("bad profile accepted")
	}
}

func TestRunDefaultEqualConfigSharesMemo(t *testing.T) {
	// A sweep point configured identically to the paper default must hit
	// the default design's memo entry instead of re-running.
	opt := quickOpt()
	base, err := Run("exchange2", "Thesaurus", opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := thesaurus.DefaultConfig()
	opt2 := opt
	opt2.Thesaurus = &cfg
	before := replays.Load()
	shared, err := Run("exchange2", "Thesaurus", opt2)
	if err != nil {
		t.Fatal(err)
	}
	if delta := replays.Load() - before; delta != 0 {
		t.Fatalf("default-equal sweep config replayed %d times instead of sharing the memo", delta)
	}
	if !reflect.DeepEqual(base, shared) {
		t.Fatal("default-equal sweep config diverges from the memoized run")
	}
}

func TestRunMemoKeyCoversReplayOptions(t *testing.T) {
	// Regression: the memo key once encoded only (profile, design,
	// accesses), so two Runs differing in ReplayOptions shared one entry
	// and the second caller silently got the first caller's statistics.
	opt := quickOpt()
	opt.Accesses = 61_000
	o1, err := Run("exchange2", "Baseline", opt)
	if err != nil {
		t.Fatal(err)
	}

	opt2 := opt
	opt2.Replay.SampleEvery = opt.Replay.SampleEvery * 4
	before := replays.Load()
	o2, err := Run("exchange2", "Baseline", opt2)
	if err != nil {
		t.Fatal(err)
	}
	if delta := replays.Load() - before; delta != 1 {
		t.Fatalf("changed SampleEvery replayed %d times, want its own entry (1)", delta)
	}
	if o1.Res.Samples == o2.Res.Samples {
		t.Fatalf("coarser sampling took the same %d samples — shared memo entry?", o2.Res.Samples)
	}

	opt3 := opt
	opt3.Replay.WarmupFraction = 0.5
	before = replays.Load()
	if _, err := Run("exchange2", "Baseline", opt3); err != nil {
		t.Fatal(err)
	}
	if delta := replays.Load() - before; delta != 1 {
		t.Fatalf("changed WarmupFraction replayed %d times, want its own entry (1)", delta)
	}

	// Each variant memoizes under its own key: repeating one is free.
	before = replays.Load()
	if _, err := Run("exchange2", "Baseline", opt2); err != nil {
		t.Fatal(err)
	}
	if delta := replays.Load() - before; delta != 0 {
		t.Fatalf("repeated variant replayed %d times, want memo hit", delta)
	}
}

func TestRunOnSampleDisablesMemo(t *testing.T) {
	// A caller-provided OnSample hook must observe its own replay, so such
	// runs bypass the memo entirely.
	opt := quickOpt()
	opt.Accesses = 61_000 // key collides with the replay-options test on purpose
	calls := 0
	opt.Replay.OnSample = func(llc.Cache) { calls++ }
	before := replays.Load()
	if _, err := Run("exchange2", "Baseline", opt); err != nil {
		t.Fatal(err)
	}
	if delta := replays.Load() - before; delta != 1 {
		t.Fatalf("OnSample run replayed %d times, want 1 (no memo)", delta)
	}
	if calls == 0 {
		t.Fatal("OnSample hook never fired")
	}
}

func TestRunOutputIsolation(t *testing.T) {
	// Regression: Run once handed every caller the same live *RunOutput,
	// so one caller's mutation corrupted everyone else's view. Mutate one
	// copy through every layer and check a fresh Run is byte-identical.
	opt := quickOpt()
	opt.Accesses = 62_000
	o1, err := Run("exchange2", "Thesaurus", opt)
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := json.Marshal(o1)
	if err != nil {
		t.Fatal(err)
	}

	o1.Res.MPKI = -1
	o1.Res.LLCStats = llc.Stats{}
	o1.Snap.Design = "corrupted"
	o1.Snap.Stats = llc.Stats{}
	o1.ClusterFracs = [4]float64{9, 9, 9, 9}
	ts := o1.Snap.Extra.(*thesaurus.Snapshot)
	ts.Extra = thesaurus.ExtraStats{}
	ts.LiveClusters = -1
	ts.BaseCache = thesaurus.BaseCacheSnapshot{}
	for i := range ts.DiffSeries {
		ts.DiffSeries[i] = -42
	}

	o2, err := Run("exchange2", "Thesaurus", opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(o2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pristine, got) {
		t.Fatal("mutating one caller's output corrupted the memoized master")
	}
}

func TestRunConcurrentSingleflight(t *testing.T) {
	// K concurrent Runs of one cold key must coalesce into exactly one
	// replay, and every caller must still get an isolated copy.
	opt := quickOpt()
	opt.Accesses = 63_000
	if _, err := RecordProfile("exchange2", opt.Accesses); err != nil {
		t.Fatal(err)
	}
	const k = 8
	outs := make([]*RunOutput, k)
	errs := make([]error, k)
	before := replays.Load()
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = Run("exchange2", "Baseline", opt)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	if delta := replays.Load() - before; delta != 1 {
		t.Fatalf("%d concurrent runs executed %d replays, want exactly 1", k, delta)
	}
	for i := 1; i < k; i++ {
		if outs[i] == outs[0] {
			t.Fatalf("goroutines 0 and %d share one output", i)
		}
		if !reflect.DeepEqual(outs[i], outs[0]) {
			t.Fatalf("goroutine %d diverges from goroutine 0", i)
		}
	}
}

func TestParMap(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		got, err := ParMap(10, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	// n = 0 is a no-op.
	if out, err := ParMap(0, 4, func(int) (int, error) { return 0, nil }); err != nil || len(out) != 0 {
		t.Fatalf("empty ParMap: %v, %v", out, err)
	}
	// Errors propagate and abort.
	wantErr := fmt.Errorf("boom")
	if _, err := ParMap(100, 4, func(i int) (int, error) {
		if i == 7 {
			return 0, wantErr
		}
		return i, nil
	}); err == nil {
		t.Fatal("ParMap swallowed the error")
	}
}

func TestShardedReplayMatchesSerial(t *testing.T) {
	// Property: for the set-partitioned designs, a replay sharded across any
	// worker count is byte-identical to the serial replay — every metric
	// (including the float-derived ones) and the full release snapshot.
	// A non-default Thesaurus config disables memoization for every design,
	// so each Run below actually replays instead of sharing one memo entry
	// across worker counts.
	noMemo := thesaurus.DefaultConfig()
	noMemo.LSH.Bits = 8
	for _, design := range []string{"Baseline", "2x Baseline"} {
		opt := quickOpt()
		opt.Replay.Verify = true
		opt.Thesaurus = &noMemo
		opt.Workers = 1
		want, err := Run("exchange2", design, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4, 7} {
			opt.Workers = w
			before := replays.Load()
			got, err := Run("exchange2", design, opt)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", design, w, err)
			}
			if delta := replays.Load() - before; delta != 1 {
				t.Fatalf("%s workers=%d: %d replays, want 1", design, w, delta)
			}
			if !reflect.DeepEqual(got.Res, want.Res) {
				t.Fatalf("%s workers=%d: metrics diverge from serial\n got %+v\nwant %+v",
					design, w, got.Res, want.Res)
			}
			if !reflect.DeepEqual(got.Snap, want.Snap) {
				t.Fatalf("%s workers=%d: release snapshot diverges from serial", design, w)
			}
		}
	}
}

func TestRunAll(t *testing.T) {
	res, err := RunAll("exchange2", []string{"Baseline", "Thesaurus"}, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res["Baseline"].Design != "Baseline" {
		t.Fatalf("results %+v", res)
	}
}
