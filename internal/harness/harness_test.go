package harness

import (
	"fmt"
	"testing"

	"repro/internal/thesaurus"
)

func quickOpt() RunOptions {
	opt := DefaultRunOptions()
	opt.Accesses = 60_000
	return opt
}

func TestBuildAllDesigns(t *testing.T) {
	for _, d := range Designs {
		c, mem, err := BuildLLC(d)
		if err != nil || c == nil || mem == nil {
			t.Fatalf("BuildLLC(%s): %v", d, err)
		}
	}
	if _, _, err := BuildLLC("nonsense"); err == nil {
		t.Fatal("unknown design built")
	}
}

func TestRecordProfileMemoized(t *testing.T) {
	a, err := RecordProfile("exchange2", 30_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RecordProfile("exchange2", 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("recording not memoized")
	}
	if _, err := RecordProfile("nosuch", 1000); err == nil {
		t.Fatal("unknown profile recorded")
	}
}

func TestRunMemoizedAndConsistent(t *testing.T) {
	opt := quickOpt()
	o1, err := Run("exchange2", "Thesaurus", opt)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Run("exchange2", "Thesaurus", opt)
	if err != nil {
		t.Fatal(err)
	}
	if o1 != o2 {
		t.Fatal("run not memoized")
	}
	if o1.Res.Design != "Thesaurus" {
		t.Fatalf("design %q", o1.Res.Design)
	}
	if _, ok := o1.Cache.(*thesaurus.Cache); !ok {
		t.Fatalf("cache type %T", o1.Cache)
	}
}

func TestRunCustomThesaurusConfigNotShared(t *testing.T) {
	opt := quickOpt()
	base, err := Run("exchange2", "Thesaurus", opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := thesaurus.DefaultConfig()
	cfg.LSH.Bits = 8
	opt2 := opt
	opt2.Thesaurus = &cfg
	custom, err := Run("exchange2", "Thesaurus", opt2)
	if err != nil {
		t.Fatal(err)
	}
	if base == custom {
		t.Fatal("custom config collided with default in the cache")
	}
	th := custom.Cache.(*thesaurus.Cache)
	if th.Config().LSH.Bits != 8 {
		t.Fatalf("custom config not applied: %d bits", th.Config().LSH.Bits)
	}
}

func TestRunMatrix(t *testing.T) {
	keys := []RunKey{
		{Profile: "exchange2", Design: "Baseline"},
		{Profile: "exchange2", Design: "Thesaurus"},
		{Profile: "leela", Design: "Baseline"},
	}
	got, err := RunMatrix(keys, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("%d results", len(got))
	}
	for _, k := range keys {
		out := got[k]
		if out == nil || out.Res.Design != k.Design {
			t.Fatalf("missing or mislabelled result for %+v", k)
		}
	}
	// Matrix results agree with direct runs (memoization shares them).
	direct, err := Run("exchange2", "Baseline", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if got[keys[0]] != direct {
		t.Fatal("matrix and direct runs diverge")
	}
	if _, err := RunMatrix([]RunKey{{Profile: "nope", Design: "Baseline"}}, quickOpt()); err == nil {
		t.Fatal("bad profile accepted")
	}
}

func TestRunDefaultEqualConfigSharesMemo(t *testing.T) {
	// A sweep point configured identically to the paper default must hit
	// the default design's memo entry instead of re-running.
	opt := quickOpt()
	base, err := Run("exchange2", "Thesaurus", opt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := thesaurus.DefaultConfig()
	opt2 := opt
	opt2.Thesaurus = &cfg
	shared, err := Run("exchange2", "Thesaurus", opt2)
	if err != nil {
		t.Fatal(err)
	}
	if base != shared {
		t.Fatal("default-equal sweep config did not share the memoized run")
	}
}

func TestParMap(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		got, err := ParMap(10, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	// n = 0 is a no-op.
	if out, err := ParMap(0, 4, func(int) (int, error) { return 0, nil }); err != nil || len(out) != 0 {
		t.Fatalf("empty ParMap: %v, %v", out, err)
	}
	// Errors propagate and abort.
	wantErr := fmt.Errorf("boom")
	if _, err := ParMap(100, 4, func(i int) (int, error) {
		if i == 7 {
			return 0, wantErr
		}
		return i, nil
	}); err == nil {
		t.Fatal("ParMap swallowed the error")
	}
}

func TestRunAll(t *testing.T) {
	res, err := RunAll("exchange2", []string{"Baseline", "Thesaurus"}, quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res["Baseline"].Design != "Baseline" {
		t.Fatalf("results %+v", res)
	}
}
