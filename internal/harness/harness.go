// Package harness wires workload profiles, the hierarchy simulator, and
// the LLC designs into runnable experiments. Both the cmd/thesaurus CLI
// and the repository's benchmarks drive experiments through this package
// so every figure and table is regenerated from one code path.
package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/llc"
	"repro/internal/memory"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/thesaurus"
	"repro/internal/uncomp"
)

// Designs are the design names accepted by BuildLLC, in report order —
// the scheme registry's registration order, so experiment tables emit
// one column per registered scheme and newly registered schemes append
// columns without disturbing existing ones.
var Designs = scheme.Names()

// BuildLLC constructs the named LLC design over a fresh backing store and
// returns both, delegating to the scheme registry. All compressed designs
// are sized iso-silicon with the 1MB baseline (Table 2) by their
// registered default configurations.
func BuildLLC(design string) (llc.Cache, *memory.Store, error) {
	mem := memory.NewStore()
	c, err := scheme.Build(design, mem)
	if err != nil {
		return nil, nil, err
	}
	return c, mem, nil
}

// DefaultAccesses is the trace length for full experiment runs; tests and
// quick runs use smaller values.
const DefaultAccesses = 2_000_000

// recordedCache memoizes the L1/L2-filtered event stream per (profile,
// accesses): it is identical for every design, so computing it once per
// benchmark removes the dominant cost of multi-design experiments.
var (
	recordedCache sync.Map // key string → *sim.Recorded
	recordFlights sync.Map // key string → *flight[*sim.Recorded]
)

// flight is one in-progress computation that concurrent callers of the
// same memo key wait on instead of duplicating.
type flight[T any] struct {
	wg  sync.WaitGroup
	val T
	err error
}

// coalesce returns the memoized value for key, computing it via fn at
// most once across all callers — concurrent or not. Racing goroutines
// wait for the winner's result rather than each executing fn (the
// RunMatrix workers all hit the same default-config key from every
// sweep). The winner stores into memo before removing its flight, and a
// fresh winner re-checks memo after claiming the flight slot, so fn runs
// exactly once per key over the process lifetime. Errors are returned to
// every waiter but never cached.
func coalesce[T any](memo, flights *sync.Map, key string, fn func() (T, error)) (T, error) {
	if v, ok := memo.Load(key); ok {
		return v.(T), nil
	}
	f := &flight[T]{}
	f.wg.Add(1)
	if cur, loaded := flights.LoadOrStore(key, f); loaded {
		cf := cur.(*flight[T])
		cf.wg.Wait()
		return cf.val, cf.err
	}
	// We own the flight. The result may have landed in memo between the
	// miss above and the LoadOrStore (a previous winner stores before
	// deleting its flight); re-check before doing the work.
	if v, ok := memo.Load(key); ok {
		f.val = v.(T)
	} else {
		f.val, f.err = fn()
		if f.err == nil {
			memo.Store(key, f.val)
		}
	}
	flights.Delete(key)
	f.wg.Done()
	return f.val, f.err
}

// RecordProfile generates the named profile's trace and filters it
// through the private cache levels, memoizing the result. Concurrent
// calls for the same (profile, accesses) are coalesced into one
// recording. When an artifact cache is installed (UseArtifacts), the
// recording is loaded from disk instead of simulated where possible, and
// persisted otherwise; the disk lookup happens inside the coalesced
// flight, so it runs exactly once per key per process.
func RecordProfile(name string, accesses int) (*sim.Recorded, error) {
	key := fmt.Sprintf("%s/%d", name, accesses)
	return coalesce(&recordedCache, &recordFlights, key, func() (*sim.Recorded, error) {
		return recordOrLoad(name, accesses)
	})
}

// RunOptions configures a design × benchmark run.
type RunOptions struct {
	Accesses int
	Replay   sim.ReplayOptions
	// Thesaurus, when non-nil, overrides the Thesaurus configuration
	// (used by the sweeps and ablations).
	Thesaurus *thesaurus.Config
	// Workers bounds the concurrency of RunMatrix and the per-profile
	// experiment loops; 0 means GOMAXPROCS, 1 forces serial execution.
	// Results are deterministic for any value.
	Workers int
}

// DefaultRunOptions returns full-experiment defaults.
func DefaultRunOptions() RunOptions {
	return RunOptions{Accesses: DefaultAccesses, Replay: sim.DefaultReplayOptions()}
}

// RunOutput bundles a completed design × benchmark run: the metrics, the
// released cache's statistics snapshot (for design-specific statistics),
// and, for Thesaurus, the time-averaged base-table cluster-size
// distribution (Fig. 16). Every Run call returns its own deep copy, so a
// caller may mutate its view without corrupting the memoized master or
// other callers.
type RunOutput struct {
	Res          sim.Result
	Snap         llc.StatsSnapshot
	ClusterFracs [4]float64
}

// clone returns a deep copy sharing no mutable state with o.
func (o *RunOutput) clone() *RunOutput {
	cp := *o
	cp.Snap = o.Snap.Clone()
	return &cp
}

// runCache memoizes completed runs so the per-figure experiments can
// share them (the whole evaluation reuses one Thesaurus run per profile).
var (
	runCache   sync.Map // key string → *RunOutput (the immutable master)
	runFlights sync.Map // key string → *flight[*RunOutput]
)

// replays counts replay executions (not memo hits); the concurrency
// regression tests assert on it.
var replays atomic.Uint64

// runKey canonically encodes everything that affects a memoized run's
// result: profile, design, trace length, and each scalar replay option.
// Workers is deliberately excluded (results are deterministic for any
// worker count), and memoized runs always use the default Thesaurus
// configuration, so neither needs encoding. A caller-provided OnSample
// hook disables memoization instead of being encoded (it is a side
// effect, not part of the result).
func runKey(profile, design string, opt RunOptions) string {
	r := opt.Replay
	return fmt.Sprintf("%s/%s/n%d/w%g/s%d/v%t",
		profile, design, opt.Accesses, r.WarmupFraction, r.SampleEvery, r.Verify)
}

// Run replays profile into design with memoization. Thesaurus runs also
// collect the Fig. 16 cluster-size samples and the Fig. 19 diff series.
func Run(profile, design string, opt RunOptions) (*RunOutput, error) {
	// Custom-configuration runs (sweeps, ablations) are not memoized:
	// at full scale they would pin hundreds of results in memory that are
	// read exactly once. The exception is a sweep point equal to the
	// paper-default configuration — every ablation includes one — which
	// shares the default design's memo entry (the config normalization in
	// runOnce makes the runs identical), so a campaign pays for the
	// default Thesaurus run once rather than per sweep. A caller-provided
	// OnSample hook also disables memoization: the hook must observe its
	// own replay, and the memo key cannot encode a function.
	memoize := (opt.Thesaurus == nil || *opt.Thesaurus == thesaurus.DefaultConfig()) &&
		opt.Replay.OnSample == nil
	if !memoize {
		// An OnSample hook must observe its own live replay, so it can
		// never be served from the run-level disk cache either.
		if opt.Replay.OnSample != nil {
			return runOnce(profile, design, opt, false)
		}
		return runOrLoad(profile, design, opt, false)
	}
	out, err := coalesce(&runCache, &runFlights, runKey(profile, design, opt), func() (*RunOutput, error) {
		return runOrLoad(profile, design, opt, true)
	})
	if err != nil {
		return nil, err
	}
	// Hand each caller an isolated deep copy; the master in runCache stays
	// immutable no matter what callers do with their view.
	return out.clone(), nil
}

// Designs whose LLCs implement sim.SetPartitioned, eligible for
// set-sharded parallel replay (the compile-time assertion below keeps the
// list honest).
var _ sim.SetPartitioned = (*uncomp.Cache)(nil)

func setPartitioned(design string) bool {
	return design == "Baseline" || design == "2x Baseline"
}

// runOnce executes one replay without consulting the memo. sample
// enables the Fig. 16 cluster-size sampling (memoized default runs only).
func runOnce(profile, design string, opt RunOptions, sample bool) (*RunOutput, error) {
	rec, err := RecordProfile(profile, opt.Accesses)
	if err != nil {
		return nil, err
	}
	// Set-partitioned designs shard one replay across Workers goroutines
	// when the caller explicitly asked for intra-run parallelism. The
	// sharded result is byte-identical to the serial one (runKey excludes
	// Workers for exactly this reason), so memoized entries are consistent
	// regardless of which path produced them. An OnSample hook forces the
	// serial path: it expects to observe one whole cache per instant.
	if opt.Workers > 1 && opt.Replay.OnSample == nil && setPartitioned(design) {
		return runShardedOnce(design, rec, opt)
	}
	var c llc.Cache
	var st *memory.Store
	if design == "Thesaurus" {
		cfg := thesaurus.DefaultConfig()
		if opt.Thesaurus != nil {
			cfg = *opt.Thesaurus
		}
		if cfg.DiffSeriesWindow == 0 {
			cfg.DiffSeriesWindow = 512
		}
		st = memory.NewStore()
		c, err = thesaurus.New(cfg, st)
	} else {
		c, st, err = BuildLLC(design)
	}
	if err != nil {
		return nil, err
	}
	out := &RunOutput{}
	ropt := opt.Replay
	// The Fig. 16 cluster-size sampling walks the whole base table and
	// costs a measurable slice of replay time; only the memoized default
	// runs feed Fig. 16, so custom-configuration sweep runs skip it.
	if th, ok := c.(*thesaurus.Cache); ok && sample {
		samples, taken := 0, 0
		var fracs [4]float64
		ropt.OnSample = func(llc.Cache) {
			// Sampling the whole base table every footprint sample is too
			// slow; every 16th suffices for a stable Fig. 16 average.
			if samples%16 == 0 {
				f := th.BaseTable().ClusterSizes()
				taken++
				for i := range fracs {
					fracs[i] += f[i]
					out.ClusterFracs[i] = fracs[i] / float64(taken)
				}
			}
			samples++
		}
	}
	replays.Add(1)
	res, err := sim.Replay(c, rec, st, sim.DefaultSystem(), ropt)
	if err != nil {
		return nil, err
	}
	out.Res = res
	// End of the cache's life: extract the immutable statistics snapshot
	// and free the bulk storage — the Thesaurus base table returns to the
	// per-size pool for the next sweep configuration. Nothing may touch c
	// after this point (thesauruslint's releaseuse analyzer checks).
	out.Snap = c.Release()
	// Likewise the backing store's content map is only needed during
	// replay; the statistics the experiments read survive a release. This
	// keeps long campaigns (one store per design × profile) within memory.
	st.Release()
	return out, nil
}

// runShardedOnce replays rec into design across opt.Workers disjoint
// shard caches (sim.ReplaySharded) and merges the shards' snapshots into
// the one the serial path would have released. One logical replay, so the
// replays counter advances once.
func runShardedOnce(design string, rec *sim.Recorded, opt RunOptions) (*RunOutput, error) {
	n := opt.Workers
	shards := make([]llc.Cache, n)
	stores := make([]*memory.Store, n)
	ucs := make([]*uncomp.Cache, n)
	for i := range shards {
		c, st, err := BuildLLC(design)
		if err != nil {
			return nil, err
		}
		uc, ok := c.(*uncomp.Cache)
		if !ok {
			return nil, fmt.Errorf("harness: design %q listed set-partitioned but is %T", design, c)
		}
		shards[i], stores[i], ucs[i] = c, st, uc
	}
	replays.Add(1)
	res, err := sim.ReplaySharded(shards, stores, rec, sim.DefaultSystem(), opt.Replay)
	if err != nil {
		return nil, err
	}
	out := &RunOutput{Res: res, Snap: uncomp.MergeRelease(ucs)}
	for _, st := range stores {
		st.Release()
	}
	return out, nil
}

// RunDesign replays the named profile into the named design and returns
// the metrics plus the released cache's statistics snapshot (Figs. 15-20
// read the Thesaurus extras from it). Results are memoized via Run.
func RunDesign(profile, design string, opt RunOptions) (sim.Result, llc.StatsSnapshot, error) {
	out, err := Run(profile, design, opt)
	if err != nil {
		return sim.Result{}, llc.StatsSnapshot{}, err
	}
	return out.Res, out.Snap, nil
}

// RunAll runs every design over one profile.
func RunAll(profile string, designs []string, opt RunOptions) (map[string]sim.Result, error) {
	out := make(map[string]sim.Result, len(designs))
	for _, d := range designs {
		res, _, err := RunDesign(profile, d, opt)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", profile, d, err)
		}
		out[d] = res
	}
	return out, nil
}

// RunKey names one (profile, design) cell of an experiment matrix.
type RunKey struct {
	Profile string
	Design  string
}

// RunMatrix executes every (profile, design) pair concurrently, bounded
// by GOMAXPROCS workers. Runs are independent and deterministic, so
// parallelism changes wall time only; results are memoized exactly as in
// Run. The first error aborts the remaining work.
func RunMatrix(keys []RunKey, opt RunOptions) (map[RunKey]*RunOutput, error) {
	type job struct {
		key RunKey
		out *RunOutput
		err error
	}
	// No pre-recording pass is needed: RecordProfile coalesces concurrent
	// recordings of the same profile, so workers that race into one
	// profile share a single recording while distinct profiles record in
	// parallel.
	workers := clampWorkers(opt.Workers, len(keys))
	in := make(chan RunKey)
	results := make(chan job, len(keys))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range in {
				out, err := Run(k.Profile, k.Design, opt)
				results <- job{key: k, out: out, err: err}
			}
		}()
	}
	go func() {
		for _, k := range keys {
			in <- k
		}
		close(in)
		wg.Wait()
		close(results)
	}()

	got := make(map[RunKey]*RunOutput, len(keys))
	var firstErr error
	for j := range results {
		if j.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s/%s: %w", j.key.Profile, j.key.Design, j.err)
		}
		got[j.key] = j.out
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return got, nil
}

// clampWorkers resolves a Workers setting against n independent tasks:
// 0 (or negative) means GOMAXPROCS, and the result never exceeds n or
// drops below 1.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ParMap evaluates fn(0..n-1) on a bounded worker pool and returns the
// results in index order, so callers assemble reports exactly as a serial
// loop would — parallelism changes wall time only. workers follows the
// RunOptions.Workers convention (0 = GOMAXPROCS, 1 = serial). The first
// error wins and stops the pool from starting further indices;
// already-running calls finish and their results are discarded.
func ParMap[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		first  error
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := fn(i)
				if err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return out, nil
}
