package harness

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/artifact"
	"repro/internal/sim"
	"repro/internal/thesaurus"
	"repro/internal/workload"
)

// forgetRecording drops the in-memory memo entry for (name, accesses),
// simulating a fresh process over a warm artifact directory.
func forgetRecording(name string, accesses int) {
	recordedCache.Delete(fmt.Sprintf("%s/%d", name, accesses))
}

// TestArtifactHitCountedDespiteMemo is the regression test for the
// hit-accounting bug class: the disk hit must be counted exactly once,
// and later in-memory memo hits for the same key must neither hide it
// nor inflate it (the lookup lives inside the coalesced flight).
func TestArtifactHitCountedDespiteMemo(t *testing.T) {
	// Unique accesses value so the process-global memo cannot have seen
	// this key before.
	const prof, accesses = "mcf", 5003
	c, err := artifact.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	UseArtifacts(c)
	defer UseArtifacts(nil)

	cold, err := RecordProfile(prof, accesses)
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := ArtifactStats(); st.Hits != 0 || st.Stores != 1 {
		t.Fatalf("cold run: %+v", st)
	}

	forgetRecording(prof, accesses)
	warm, err := RecordProfile(prof, accesses)
	if err != nil {
		t.Fatal(err)
	}
	if !artifact.RecordedEqual(cold, warm) {
		t.Fatal("loaded recording differs from the one recorded")
	}
	st, ok := ArtifactStats()
	if !ok || st.Hits != 1 {
		t.Fatalf("warm run: hits = %d, want 1", st.Hits)
	}

	// Two more calls are pure memo hits: the artifact hit stays counted
	// and the disk is not touched again.
	for i := 0; i < 2; i++ {
		memoed, err := RecordProfile(prof, accesses)
		if err != nil {
			t.Fatal(err)
		}
		if memoed != warm {
			t.Fatal("memo returned a different recording")
		}
	}
	if st2, _ := ArtifactStats(); st2.Hits != 1 || st2.BytesLoaded != st.BytesLoaded {
		t.Fatalf("memo hits changed artifact stats: %+v -> %+v", st, st2)
	}
}

// TestArtifactVerifyDetectsDivergence: with -cache-verify semantics on, a
// cached recording that does not match regeneration fails the run.
func TestArtifactVerifyDetectsDivergence(t *testing.T) {
	const prof, accesses = "mcf", 5011
	c, err := artifact.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	UseArtifacts(c)
	SetArtifactVerify(true)
	defer func() {
		SetArtifactVerify(false)
		UseArtifacts(nil)
	}()

	// Plant a wrong recording under the canonical key, as a stale-key bug
	// would: structurally valid, semantically wrong.
	p, err := workload.ProfileByName(prof)
	if err != nil {
		t.Fatal(err)
	}
	key := artifact.RecordedKey(p, sim.DefaultSystem(), accesses)
	wrong, err := RecordProfile("omnetpp", accesses)
	if err != nil {
		t.Fatal(err)
	}
	c.StoreRecorded(key, wrong)

	_, err = RecordProfile(prof, accesses)
	if err == nil || !strings.Contains(err.Error(), "verify failed") {
		t.Fatalf("planted divergence not detected: err = %v", err)
	}

	// A genuine artifact passes verification: fresh directory, record
	// cold, then verify the warm load of our own artifact.
	c2, err := artifact.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	UseArtifacts(c2)
	good, err := RecordProfile(prof, accesses)
	if err != nil {
		t.Fatalf("cold record with verify on: %v", err)
	}
	forgetRecording(prof, accesses)
	again, err := RecordProfile(prof, accesses)
	if err != nil {
		t.Fatalf("verified warm load: %v", err)
	}
	if !artifact.RecordedEqual(good, again) {
		t.Fatal("verified warm load differs")
	}
	if st, _ := ArtifactStats(); st.Hits != 1 {
		t.Fatalf("verified warm load not counted as hit: %+v", st)
	}
}

// forgetRun drops the in-memory run memo entry, simulating a fresh
// process over a warm artifact directory.
func forgetRun(profile, design string, opt RunOptions) {
	runCache.Delete(runKey(profile, design, opt))
}

func toArtifactRun(o *RunOutput) *artifact.RunOutput {
	return &artifact.RunOutput{Res: o.Res, Snap: o.Snap, ClusterFracs: o.ClusterFracs}
}

// TestRunCacheServesWarmRun: with the artifact cache installed, a run
// whose memo entry is gone (fresh process) is served from disk without
// replaying, and the served output equals the computed one.
func TestRunCacheServesWarmRun(t *testing.T) {
	const prof, design = "mcf", "Thesaurus"
	opt := DefaultRunOptions()
	opt.Accesses = 5031
	c, err := artifact.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	UseArtifacts(c)
	defer UseArtifacts(nil)

	before := replays.Load()
	cold, err := Run(prof, design, opt)
	if err != nil {
		t.Fatal(err)
	}
	if delta := replays.Load() - before; delta != 1 {
		t.Fatalf("cold run replayed %d times, want 1", delta)
	}

	forgetRun(prof, design, opt)
	forgetRecording(prof, opt.Accesses)
	before = replays.Load()
	warm, err := Run(prof, design, opt)
	if err != nil {
		t.Fatal(err)
	}
	if delta := replays.Load() - before; delta != 0 {
		t.Fatalf("warm run replayed %d times, want 0 (run-level cache not consulted)", delta)
	}
	if !artifact.RunOutputEqual(toArtifactRun(cold), toArtifactRun(warm)) {
		t.Fatal("warm run output differs from cold")
	}

	// With the run layer disabled, the warm rerun must replay again (the
	// recording layer still serves, so exactly one replay, no recording).
	SetRunCache(false)
	defer SetRunCache(true)
	forgetRun(prof, design, opt)
	forgetRecording(prof, opt.Accesses)
	before = replays.Load()
	rerun, err := Run(prof, design, opt)
	if err != nil {
		t.Fatal(err)
	}
	if delta := replays.Load() - before; delta != 1 {
		t.Fatalf("run-cache-off warm rerun replayed %d times, want 1", delta)
	}
	if !artifact.RunOutputEqual(toArtifactRun(cold), toArtifactRun(rerun)) {
		t.Fatal("run-cache-off rerun output differs")
	}
}

// TestRunCacheServesCustomConfigs: sweep/ablation runs are not memoized
// in memory (they would pin read-once results), but the disk layer has no
// such concern — a repeated custom-configuration run must come back from
// the artifact cache without replaying.
func TestRunCacheServesCustomConfigs(t *testing.T) {
	const prof, design = "mcf", "Thesaurus"
	cfg := thesaurus.DefaultConfig()
	cfg.VictimCandidates = 2
	opt := DefaultRunOptions()
	opt.Accesses = 5039
	opt.Thesaurus = &cfg
	c, err := artifact.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	UseArtifacts(c)
	defer UseArtifacts(nil)

	before := replays.Load()
	cold, err := Run(prof, design, opt)
	if err != nil {
		t.Fatal(err)
	}
	if delta := replays.Load() - before; delta != 1 {
		t.Fatalf("cold custom run replayed %d times, want 1", delta)
	}
	before = replays.Load()
	warm, err := Run(prof, design, opt)
	if err != nil {
		t.Fatal(err)
	}
	if delta := replays.Load() - before; delta != 0 {
		t.Fatalf("repeated custom run replayed %d times, want 0 (disk-served)", delta)
	}
	if !artifact.RunOutputEqual(toArtifactRun(cold), toArtifactRun(warm)) {
		t.Fatal("disk-served custom run differs from computed one")
	}
}

// TestRunCacheVerifyDetectsDivergence: with -cache-verify on, a planted
// wrong run artifact under the canonical key fails the run loudly.
func TestRunCacheVerifyDetectsDivergence(t *testing.T) {
	const prof, design = "mcf", "Baseline"
	opt := DefaultRunOptions()
	opt.Accesses = 5051
	c, err := artifact.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	UseArtifacts(c)
	SetArtifactVerify(true)
	defer func() {
		SetArtifactVerify(false)
		UseArtifacts(nil)
	}()

	// Compute the wrong design's output and plant it under the right
	// design's key, exactly what a stale content key would cause.
	wrong, err := Run(prof, "BDI", opt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := workload.ProfileByName(prof)
	if err != nil {
		t.Fatal(err)
	}
	key := artifact.RunOutputKey(p, sim.DefaultSystem(), design, opt.Accesses, opt.Replay, false, nil)
	c.StoreRunOutput(key, toArtifactRun(wrong))

	if _, err := Run(prof, design, opt); err == nil || !strings.Contains(err.Error(), "verify failed") {
		t.Fatalf("planted run divergence not detected: err = %v", err)
	}
}

// TestArtifactCacheTransparent: a run with the artifact cache installed
// produces a recording identical to one computed without it.
func TestArtifactCacheTransparent(t *testing.T) {
	const prof, accesses = "xz", 5021
	plain, err := RecordProfile(prof, accesses)
	if err != nil {
		t.Fatal(err)
	}
	c, err := artifact.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	UseArtifacts(c)
	defer UseArtifacts(nil)
	forgetRecording(prof, accesses)
	cold, err := RecordProfile(prof, accesses)
	if err != nil {
		t.Fatal(err)
	}
	forgetRecording(prof, accesses)
	warm, err := RecordProfile(prof, accesses)
	if err != nil {
		t.Fatal(err)
	}
	if !artifact.RecordedEqual(plain, cold) || !artifact.RecordedEqual(plain, warm) {
		t.Fatal("artifact cache changed the recording")
	}
}
