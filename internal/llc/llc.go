// Package llc defines the contract every last-level-cache design in this
// repository implements — conventional, BΔI, Dedup, Thesaurus, and the
// ideal models — so the hierarchy simulator and the experiment harness
// are design-agnostic.
package llc

import "repro/internal/line"

// Cache is a last-level cache holding data (possibly compressed), backed
// by a memory.Store it fills from and writes back to.
type Cache interface {
	// Name identifies the design in reports ("Baseline", "Thesaurus", …).
	Name() string
	// Read returns the current content of addr's line and whether it hit.
	// On a miss the implementation fills from its backing store, inserts,
	// and still returns the data.
	Read(addr line.Addr) (line.Line, bool)
	// Write installs new content for addr's line (write-allocate,
	// write-back) and reports whether it hit.
	Write(addr line.Addr, data line.Line) bool
	// Stats returns the accumulated access statistics.
	Stats() Stats
	// ResetStats zeroes the statistics (end of warmup).
	ResetStats()
	// Footprint samples the current storage occupancy (Fig. 13a metric).
	Footprint() Footprint
	// Release ends the cache's life: it extracts an immutable statistics
	// snapshot and frees the bulk storage (data arrays, delta pools, base
	// tables — which may return to allocation pools for reuse). After
	// Release only the returned snapshot may be consulted; any other use
	// of the cache is a bug (a second Release panics, and thesauruslint's
	// releaseuse analyzer flags post-release reads statically).
	Release() StatsSnapshot
}

// StatsSnapshot is the immutable record of a released cache: everything
// the experiment and report layers may consult once the cache's storage
// is gone. The common Stats are embedded by value; design-specific
// statistics (encoding mixes, base-cache counters, resident-line dumps)
// ride in Extra as a design-owned snapshot type.
type StatsSnapshot struct {
	// Design is the cache's report name, as Name() returned it.
	Design string
	// Stats are the accumulated access statistics at release time.
	Stats Stats
	// Extra holds the design-specific snapshot, or nil if the design has
	// none. Callers type-assert to the design's exported snapshot type
	// (e.g. *thesaurus.Snapshot).
	Extra ExtraSnapshot
}

// ExtraSnapshot is a design-specific statistics snapshot. Implementations
// must be deep-copyable so memoized results can hand every caller an
// isolated view.
type ExtraSnapshot interface {
	// Clone returns a deep copy sharing no mutable state with the
	// receiver.
	Clone() ExtraSnapshot
}

// Clone returns a deep copy of the snapshot (Extra included).
func (s StatsSnapshot) Clone() StatsSnapshot {
	cp := s
	if s.Extra != nil {
		cp.Extra = s.Extra.Clone()
	}
	return cp
}

// Stats counts LLC-level events common to all designs.
type Stats struct {
	Reads      uint64
	Writes     uint64
	ReadHits   uint64
	WriteHits  uint64
	Fills      uint64 // demand fills from memory
	Writebacks uint64 // dirty evictions to memory
}

// Accesses returns total reads + writes.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Misses returns total demand misses (read + write).
func (s Stats) Misses() uint64 {
	return (s.Reads - s.ReadHits) + (s.Writes - s.WriteHits)
}

// ReadMisses returns demand read misses, the MPKI numerator used in the
// paper's Figure 13b.
func (s Stats) ReadMisses() uint64 { return s.Reads - s.ReadHits }

// HitRate returns the overall hit rate.
func (s Stats) HitRate() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return 1 - float64(s.Misses())/float64(s.Accesses())
}

// Footprint is an occupancy sample: how much data-array space the
// currently resident addresses use versus the space a conventional cache
// would need for the same addresses (64 bytes each).
type Footprint struct {
	// ResidentLines is the number of valid tags (cached addresses).
	ResidentLines int
	// DataBytesUsed is the data-array space those addresses occupy.
	DataBytesUsed int
	// DataBytesTotal is the design's data-array capacity.
	DataBytesTotal int
}

// CompressionRatio returns (64 × resident) / used — the effective
// capacity multiplier of Fig. 13a. It returns 1 for an empty cache and
// +Inf is avoided by flooring used at one byte per resident line.
func (f Footprint) CompressionRatio() float64 {
	if f.ResidentLines == 0 {
		return 1
	}
	used := f.DataBytesUsed
	if used < f.ResidentLines { // all-zero-dominated corner: ≥1B/line floor
		used = f.ResidentLines
	}
	return float64(f.ResidentLines*line.Size) / float64(used)
}

// OccupancyFraction returns used/total data-array space.
func (f Footprint) OccupancyFraction() float64 {
	if f.DataBytesTotal == 0 {
		return 0
	}
	return float64(f.DataBytesUsed) / float64(f.DataBytesTotal)
}
