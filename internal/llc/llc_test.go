package llc

import (
	"math"
	"testing"

	"repro/internal/line"
)

func TestStatsDerivedCounts(t *testing.T) {
	s := Stats{Reads: 100, Writes: 50, ReadHits: 80, WriteHits: 30}
	if s.Accesses() != 150 {
		t.Fatalf("accesses %d", s.Accesses())
	}
	if s.Misses() != 40 {
		t.Fatalf("misses %d", s.Misses())
	}
	if s.ReadMisses() != 20 {
		t.Fatalf("read misses %d", s.ReadMisses())
	}
	if hr := s.HitRate(); math.Abs(hr-110.0/150) > 1e-12 {
		t.Fatalf("hit rate %v", hr)
	}
	var empty Stats
	if empty.HitRate() != 0 {
		t.Fatal("empty hit rate")
	}
}

func TestFootprintCompressionRatio(t *testing.T) {
	f := Footprint{ResidentLines: 100, DataBytesUsed: 3200, DataBytesTotal: 6400}
	if r := f.CompressionRatio(); r != 2 {
		t.Fatalf("ratio %v", r)
	}
	if o := f.OccupancyFraction(); o != 0.5 {
		t.Fatalf("occupancy %v", o)
	}
	// Empty cache: ratio defined as 1.
	if (Footprint{}).CompressionRatio() != 1 {
		t.Fatal("empty ratio")
	}
	// All-zero corner: used floored at one byte per line, ratio bounded.
	z := Footprint{ResidentLines: 64, DataBytesUsed: 0, DataBytesTotal: 1000}
	if r := z.CompressionRatio(); r != float64(line.Size) {
		t.Fatalf("zero-dominated ratio %v, want %d", r, line.Size)
	}
	if (Footprint{ResidentLines: 1}).OccupancyFraction() != 0 {
		t.Fatal("zero-capacity occupancy")
	}
}
