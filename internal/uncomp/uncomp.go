// Package uncomp implements the conventional (uncompressed) last-level
// cache: the evaluation baseline, also instantiated at 2× capacity for
// the hypothetical comparison cache of §6.1.
package uncomp

import (
	"sort"

	"repro/internal/cache"
	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/memory"
)

// Config sizes a conventional LLC.
type Config struct {
	// SizeBytes is the data capacity (1MB baseline, 2MB hypothetical).
	SizeBytes int
	// Ways is the associativity (8 in Table 1).
	Ways int
	// Policy is the tag replacement policy ("plru" in the paper).
	Policy string
}

// DefaultConfig returns the paper's baseline LLC: 1MB, 8-way, pseudo-LRU.
func DefaultConfig() Config {
	return Config{SizeBytes: 1 << 20, Ways: 8, Policy: "plru"}
}

// Cache is a conventional write-back, write-allocate LLC storing full
// 64-byte lines.
type Cache struct {
	name  string
	tags  *cache.Array[line.Line]
	mem   *memory.Store
	stats llc.Stats
	cfg   Config
}

var _ llc.Cache = (*Cache)(nil)

// New builds a conventional LLC named name over mem.
func New(name string, cfg Config, mem *memory.Store) *Cache {
	return &Cache{
		name: name,
		tags: cache.New[line.Line](cache.LineConfig(cfg.SizeBytes, cfg.Ways, cfg.Policy)),
		mem:  mem,
		cfg:  cfg,
	}
}

// Name implements llc.Cache.
func (c *Cache) Name() string { return c.name }

// Read implements llc.Cache.
func (c *Cache) Read(addr line.Addr) (line.Line, bool) {
	addr = addr.LineAddr()
	c.stats.Reads++
	if e, _ := c.tags.Lookup(addr); e != nil {
		c.stats.ReadHits++
		return e.Payload, true
	}
	data := c.fill(addr)
	return data, false
}

// Write implements llc.Cache.
func (c *Cache) Write(addr line.Addr, data line.Line) bool {
	addr = addr.LineAddr()
	c.stats.Writes++
	if e, _ := c.tags.Lookup(addr); e != nil {
		c.stats.WriteHits++
		e.Payload = data
		e.Dirty = true
		return true
	}
	// Write-allocate: install the new content directly (the whole line is
	// provided by the upper level), marked dirty.
	e := c.insert(addr)
	e.Payload = data
	e.Dirty = true
	return false
}

// fill services a read miss from memory.
func (c *Cache) fill(addr line.Addr) line.Line {
	data := c.mem.Read(addr, memory.Fill)
	c.stats.Fills++
	e := c.insert(addr)
	e.Payload = data
	return data
}

// insert allocates a tag for addr, writing back any dirty victim.
func (c *Cache) insert(addr line.Addr) *cache.Entry[line.Line] {
	e, _, evicted, had := c.tags.Insert(addr)
	if had && evicted.Dirty {
		c.mem.Write(evicted.Addr, evicted.Payload, memory.Writeback)
		c.stats.Writebacks++
	}
	return e
}

// Stats implements llc.Cache.
func (c *Cache) Stats() llc.Stats { return c.stats }

// ResetStats implements llc.Cache.
func (c *Cache) ResetStats() {
	c.stats = llc.Stats{}
	c.tags.ResetStats()
}

// Footprint implements llc.Cache: a conventional cache stores every
// resident line uncompressed.
func (c *Cache) Footprint() llc.Footprint {
	n := c.tags.CountValid()
	return llc.Footprint{
		ResidentLines:  n,
		DataBytesUsed:  n * line.Size,
		DataBytesTotal: c.cfg.SizeBytes,
	}
}

// SetIndex reports the tag set owning addr. Together with NumTagSets it
// makes the conventional cache set-partitioned (sim.SetPartitioned): an
// access to addr touches only state owned by addr's set — the tag entries,
// that set's replacement bits, and the per-cache statistics counters —
// so an event stream partitioned by set replays identically on disjoint
// shard caches.
func (c *Cache) SetIndex(addr line.Addr) int { return c.tags.SetOf(addr) }

// NumTagSets reports the tag set count (see SetIndex).
func (c *Cache) NumTagSets() int { return c.tags.Config().Sets() }

// Contents returns the resident lines (address → data), used for the
// snapshot-based motivation experiments (Figs. 1, 2, 5).
func (c *Cache) Contents() map[line.Addr]line.Line {
	out := make(map[line.Addr]line.Line, c.tags.CountValid())
	c.tags.ForEach(func(_ int, e *cache.Entry[line.Line]) {
		out[e.Addr] = e.Payload
	})
	return out
}

// Snapshot is the conventional cache's release snapshot: the resident
// lines in ascending address order, the input to the snapshot-based
// motivation experiments (Figs. 1, 2, 5).
type Snapshot struct {
	Lines []line.Line
}

// Clone implements llc.ExtraSnapshot.
func (s *Snapshot) Clone() llc.ExtraSnapshot {
	cp := &Snapshot{}
	if s.Lines != nil {
		cp.Lines = make([]line.Line, len(s.Lines))
		copy(cp.Lines, s.Lines)
	}
	return cp
}

// Release implements llc.Cache: it extracts the resident lines in
// ascending address order and frees the tag array. The cache must not be
// used afterwards.
func (c *Cache) Release() llc.StatsSnapshot {
	if c.tags == nil {
		panic("uncomp: Release called twice")
	}
	type resident struct {
		addr line.Addr
		data line.Line
	}
	pairs := make([]resident, 0, c.tags.CountValid())
	c.tags.ForEach(func(_ int, e *cache.Entry[line.Line]) {
		pairs = append(pairs, resident{e.Addr, e.Payload})
	})
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].addr < pairs[j].addr })
	snap := &Snapshot{Lines: make([]line.Line, len(pairs))}
	for i := range pairs {
		snap.Lines[i] = pairs[i].data
	}
	c.tags = nil
	return llc.StatsSnapshot{Design: c.name, Stats: c.stats, Extra: snap}
}

// MergeRelease releases every shard of a set-sharded replay and merges
// them into the snapshot the equivalent unsharded cache would have
// produced: statistics summed field-wise and the union of resident lines
// in ascending address order. Set-sharding partitions addresses by tag
// set, so the shards hold disjoint address ranges and the merged ordering
// equals the serial ordering. The shards must not be used afterwards.
func MergeRelease(shards []*Cache) llc.StatsSnapshot {
	if len(shards) == 0 {
		panic("uncomp: MergeRelease of zero shards")
	}
	type resident struct {
		addr line.Addr
		data line.Line
	}
	var pairs []resident
	var stats llc.Stats
	for _, c := range shards {
		if c.tags == nil {
			panic("uncomp: MergeRelease after Release")
		}
		c.tags.ForEach(func(_ int, e *cache.Entry[line.Line]) {
			pairs = append(pairs, resident{e.Addr, e.Payload})
		})
		s := c.stats
		stats.Reads += s.Reads
		stats.Writes += s.Writes
		stats.ReadHits += s.ReadHits
		stats.WriteHits += s.WriteHits
		stats.Fills += s.Fills
		stats.Writebacks += s.Writebacks
		c.tags = nil
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].addr < pairs[j].addr })
	snap := &Snapshot{Lines: make([]line.Line, len(pairs))}
	for i := range pairs {
		snap.Lines[i] = pairs[i].data
	}
	return llc.StatsSnapshot{Design: shards[0].name, Stats: stats, Extra: snap}
}
