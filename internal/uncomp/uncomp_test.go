package uncomp

import (
	"testing"

	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/xrand"
)

func small() Config { return Config{SizeBytes: 16 << 10, Ways: 8, Policy: "plru"} }

func TestReadWriteRoundTrip(t *testing.T) {
	mem := memory.NewStore()
	c := New("test", small(), mem)
	rng := xrand.New(1)
	ref := map[line.Addr]line.Line{}
	for i := 0; i < 5000; i++ {
		addr := line.Addr(rng.Intn(1024)) * line.Size
		if rng.Bool(0.4) {
			var l line.Line
			l.SetWord(0, rng.Uint64())
			c.Write(addr, l)
			ref[addr] = l
			mem.Poke(addr, l)
		} else {
			got, _ := c.Read(addr)
			want, ok := ref[addr]
			if !ok {
				want = mem.Peek(addr)
			}
			if got != want {
				t.Fatalf("step %d: wrong data", i)
			}
		}
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	mem := memory.NewStore()
	cfg := Config{SizeBytes: 1 << 10, Ways: 2, Policy: "lru"} // 16 lines
	c := New("tiny", cfg, mem)
	var l line.Line
	l.SetWord(0, 77)
	c.Write(0, l)
	// Evict line 0 by filling its set.
	for i := 1; i < 64; i++ {
		c.Read(line.Addr(i) * line.Size)
	}
	if got := mem.Peek(0); got != l {
		// Might still be resident; force check.
		if got2, hit := c.Read(0); !hit && got2 != l {
			t.Fatal("dirty line lost")
		}
	}
	if c.Stats().Writebacks == 0 {
		t.Fatal("no writebacks")
	}
}

func TestFootprintUncompressed(t *testing.T) {
	mem := memory.NewStore()
	c := New("test", small(), mem)
	for i := 0; i < 50; i++ {
		c.Read(line.Addr(i) * line.Size)
	}
	fp := c.Footprint()
	if fp.ResidentLines != 50 || fp.DataBytesUsed != 50*line.Size {
		t.Fatalf("footprint %+v", fp)
	}
	if fp.CompressionRatio() != 1 {
		t.Fatalf("conventional cache 'compressed': %v", fp.CompressionRatio())
	}
}

func TestContents(t *testing.T) {
	mem := memory.NewStore()
	c := New("test", small(), mem)
	var l line.Line
	l.SetWord(3, 0x1234)
	mem.Poke(0x100, l)
	c.Read(0x100)
	got := c.Contents()
	if len(got) != 1 || got[0x100] != l {
		t.Fatalf("contents %v", got)
	}
}

func TestCapacityBounded(t *testing.T) {
	mem := memory.NewStore()
	cfg := small() // 256 lines
	c := New("test", cfg, mem)
	for i := 0; i < 1000; i++ {
		c.Read(line.Addr(i) * line.Size)
	}
	if n := c.Footprint().ResidentLines; n > cfg.SizeBytes/line.Size {
		t.Fatalf("resident %d exceeds capacity", n)
	}
}

func TestName(t *testing.T) {
	c := New("Baseline", small(), memory.NewStore())
	if c.Name() != "Baseline" {
		t.Fatal("name")
	}
}
