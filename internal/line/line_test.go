package line

import (
	"testing"
	"testing/quick"
)

// naiveDiffMask is the byte-loop reference for the SWAR implementation.
func naiveDiffMask(l, m *Line) uint64 {
	var mask uint64
	for i := 0; i < Size; i++ {
		if l[i] != m[i] {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

func TestDiffMaskMatchesNaive(t *testing.T) {
	if err := quick.Check(func(a, b Line) bool {
		return DiffMask(&a, &b) == naiveDiffMask(&a, &b)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffMaskSparseChanges(t *testing.T) {
	// quick generates mostly-different lines; also cover near-identical
	// pairs, the common case in this codebase.
	if err := quick.Check(func(a Line, pos uint8, val byte) bool {
		b := a
		b[int(pos)%Size] ^= val
		return DiffMask(&a, &b) == naiveDiffMask(&a, &b)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffBytesSelf(t *testing.T) {
	var l Line
	for i := range l {
		l[i] = byte(i)
	}
	if d := DiffBytes(&l, &l); d != 0 {
		t.Fatalf("self diff = %d", d)
	}
}

func TestXOR(t *testing.T) {
	if err := quick.Check(func(a, b Line) bool {
		x := XOR(&a, &b)
		for i := 0; i < Size; i++ {
			if x[i] != a[i]^b[i] {
				return false
			}
		}
		// XOR with self is zero.
		z := XOR(&a, &a)
		return z.IsZero()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIsZero(t *testing.T) {
	var z Line
	if !z.IsZero() {
		t.Fatal("zero line not zero")
	}
	z[63] = 1
	if z.IsZero() {
		t.Fatal("non-zero line reported zero")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	if err := quick.Check(func(w [WordsPerLine]uint64) bool {
		l := FromWords(w)
		return l.Words() == w
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordSetWord(t *testing.T) {
	var l Line
	l.SetWord(3, 0xdeadbeefcafef00d)
	if l.Word(3) != 0xdeadbeefcafef00d {
		t.Fatalf("Word(3) = %#x", l.Word(3))
	}
	if l.Word(2) != 0 || l.Word(4) != 0 {
		t.Fatal("SetWord touched neighbours")
	}
}

func TestPopCountNonZero(t *testing.T) {
	var l Line
	if l.PopCountNonZero() != 0 {
		t.Fatal("zero line has nonzero bytes")
	}
	l[0], l[10], l[63] = 1, 2, 3
	if n := l.PopCountNonZero(); n != 3 {
		t.Fatalf("PopCountNonZero = %d, want 3", n)
	}
}

// naivePopCountNonZero is the byte-loop reference the SWAR implementation
// must match.
func naivePopCountNonZero(l *Line) int {
	n := 0
	for _, b := range l {
		if b != 0 {
			n++
		}
	}
	return n
}

func TestPopCountNonZeroMatchesReference(t *testing.T) {
	// Every single-byte position, exercising each lane of every word.
	for i := 0; i < Size; i++ {
		var l Line
		l[i] = 0x80 // high bit only: the SWAR fold must still see it
		if got, want := l.PopCountNonZero(), naivePopCountNonZero(&l); got != want {
			t.Fatalf("byte %d: PopCountNonZero = %d, want %d", i, got, want)
		}
	}
	// Fully-populated line.
	var full Line
	for i := range full {
		full[i] = byte(i + 1)
	}
	if got := full.PopCountNonZero(); got != Size {
		t.Fatalf("full line: PopCountNonZero = %d, want %d", got, Size)
	}
	// Fuzz-style random lines.
	if err := quick.Check(func(l Line) bool {
		return l.PopCountNonZero() == naivePopCountNonZero(&l)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHammingBits(t *testing.T) {
	var a, b Line
	b[0] = 0xFF
	if h := HammingBits(&a, &b); h != 8 {
		t.Fatalf("HammingBits = %d, want 8", h)
	}
}

func TestFromBytesPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromBytes(63 bytes) did not panic")
		}
	}()
	FromBytes(make([]byte, 63))
}

func TestAddrHelpers(t *testing.T) {
	a := Addr(0x12345)
	if a.LineAddr() != 0x12340 {
		t.Fatalf("LineAddr = %#x", uint64(a.LineAddr()))
	}
	if a.Offset() != 5 {
		t.Fatalf("Offset = %d", a.Offset())
	}
	if a.BlockNumber() != 0x12345/64 {
		t.Fatalf("BlockNumber = %d", a.BlockNumber())
	}
}

func TestStringFormat(t *testing.T) {
	var l Line
	l.SetWord(0, 0x00002AAAC02419D8)
	s := l.String()
	if len(s) == 0 || s[:16] != "00002AAAC02419D8" {
		t.Fatalf("String() = %q", s)
	}
}

func BenchmarkDiffMask(b *testing.B) {
	var x, y Line
	for i := range x {
		x[i] = byte(i)
		y[i] = byte(i)
	}
	y[13] = 99
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DiffMask(&x, &y)
	}
}

func TestNonZeroMaskMatchesReference(t *testing.T) {
	if err := quick.Check(func(l Line) bool {
		var want uint64
		for i := 0; i < Size; i++ {
			if l[i] != 0 {
				want |= 1 << uint(i)
			}
		}
		return l.NonZeroMask() == want && DiffMask(&l, &Zero) == want
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if Zero.NonZeroMask() != 0 {
		t.Fatal("NonZeroMask of the zero line is non-zero")
	}
	var sparse Line
	sparse[0], sparse[63] = 1, 2
	if sparse.NonZeroMask() != 1|1<<63 {
		t.Fatalf("sparse NonZeroMask = %#x", sparse.NonZeroMask())
	}
}
