// Package line defines the 64-byte cacheline value type and the byte-level
// similarity operations Thesaurus is built on: XOR, difference masks,
// diff-byte counts, and zero detection.
//
// A Line is a value type ([64]byte) so snapshots and traces can copy lines
// freely without aliasing surprises.
package line

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Size is the cacheline size in bytes, fixed at 64 as in the paper.
const Size = 64

// WordsPerLine is the number of 8-byte words in a line.
const WordsPerLine = Size / 8

// Line is a 64-byte memory block: the unit of caching and compression.
type Line [Size]byte

// Zero is the all-zero line.
var Zero Line

// FromBytes builds a Line from b. It panics if len(b) != Size; callers
// deal in whole cachelines by construction.
func FromBytes(b []byte) Line {
	if len(b) != Size {
		panic(fmt.Sprintf("line: FromBytes with %d bytes, want %d", len(b), Size))
	}
	var l Line
	copy(l[:], b)
	return l
}

// FromWords builds a Line from eight 64-bit little-endian words.
func FromWords(w [WordsPerLine]uint64) Line {
	var l Line
	for i, v := range w {
		binary.LittleEndian.PutUint64(l[i*8:], v)
	}
	return l
}

// Words returns the line as eight 64-bit little-endian words.
func (l *Line) Words() [WordsPerLine]uint64 {
	var w [WordsPerLine]uint64
	for i := range w {
		w[i] = binary.LittleEndian.Uint64(l[i*8:])
	}
	return w
}

// Word returns the i-th 8-byte little-endian word of the line.
//
//thesaurus:hotpath
func (l *Line) Word(i int) uint64 {
	return binary.LittleEndian.Uint64(l[i*8:])
}

// SetWord stores v as the i-th 8-byte little-endian word.
func (l *Line) SetWord(i int, v uint64) {
	binary.LittleEndian.PutUint64(l[i*8:], v)
}

// IsZero reports whether every byte of the line is zero.
//
//thesaurus:hotpath
func (l *Line) IsZero() bool {
	for i := 0; i < Size; i += 8 {
		if binary.LittleEndian.Uint64(l[i:]) != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether l and m hold identical bytes.
func (l *Line) Equal(m *Line) bool {
	return *l == *m
}

// XOR returns l ^ m byte-wise.
func XOR(l, m *Line) Line {
	var out Line
	for i := 0; i < Size; i += 8 {
		v := binary.LittleEndian.Uint64(l[i:]) ^ binary.LittleEndian.Uint64(m[i:])
		binary.LittleEndian.PutUint64(out[i:], v)
	}
	return out
}

// DiffMask returns a 64-bit mask with bit i set iff byte i of l differs
// from byte i of m. Bit 0 corresponds to byte 0. This is the hot operation
// of the whole simulator, so it works word-at-a-time: XOR the words, then
// collapse each non-zero byte to one bit with SWAR shifts.
//
//thesaurus:hotpath
func DiffMask(l, m *Line) uint64 {
	var mask uint64
	for i := 0; i < WordsPerLine; i++ {
		x := binary.LittleEndian.Uint64(l[i*8:]) ^ binary.LittleEndian.Uint64(m[i*8:])
		// Fold each byte's bits down to its LSB.
		x |= x >> 4
		x |= x >> 2
		x |= x >> 1
		x &= 0x0101010101010101
		// Gather the eight LSBs into the low byte.
		b := (x * 0x0102040810204080) >> 56
		mask |= b << uint(8*i)
	}
	return mask
}

// DiffBytes returns the number of byte positions at which l and m differ.
// This is the distance metric used throughout the paper (it determines the
// size of the base+diff encoding).
func DiffBytes(l, m *Line) int {
	return bits.OnesCount64(DiffMask(l, m))
}

// HammingBits returns the number of differing bits between l and m.
func HammingBits(l, m *Line) int {
	n := 0
	for i := 0; i < Size; i += 8 {
		n += bits.OnesCount64(binary.LittleEndian.Uint64(l[i:]) ^ binary.LittleEndian.Uint64(m[i:]))
	}
	return n
}

// NonZeroMask returns a 64-bit mask with bit i set iff byte i of l is
// non-zero: DiffMask against the all-zero line, without the XOR pass.
//
//thesaurus:hotpath
func (l *Line) NonZeroMask() uint64 {
	var mask uint64
	for i := 0; i < WordsPerLine; i++ {
		x := binary.LittleEndian.Uint64(l[i*8:])
		// Fold each byte's bits down to its LSB.
		x |= x >> 4
		x |= x >> 2
		x |= x >> 1
		x &= 0x0101010101010101
		// Gather the eight LSBs into the low byte.
		b := (x * 0x0102040810204080) >> 56
		mask |= b << uint(8*i)
	}
	return mask
}

// PopCountNonZero returns the number of non-zero bytes in l, i.e. the
// diff-byte count against the all-zero line. Like DiffMask it works
// word-at-a-time: collapse each non-zero byte to its LSB with SWAR
// shifts, then popcount.
//
//thesaurus:hotpath
func (l *Line) PopCountNonZero() int {
	n := 0
	for i := 0; i < Size; i += 8 {
		x := binary.LittleEndian.Uint64(l[i:])
		x |= x >> 4
		x |= x >> 2
		x |= x >> 1
		x &= 0x0101010101010101
		n += bits.OnesCount64(x)
	}
	return n
}

// String renders the line as grouped hex words for debugging, matching the
// presentation style of Figure 2 in the paper.
func (l Line) String() string {
	w := l.Words()
	return fmt.Sprintf("%016X %016X %016X %016X %016X %016X %016X %016X",
		w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7])
}

// Addr is a physical byte address. Lines are identified by their
// line-aligned address (low 6 bits zero).
type Addr uint64

// LineAddr returns a aligned down to a cacheline boundary.
func (a Addr) LineAddr() Addr { return a &^ (Size - 1) }

// Offset returns the byte offset of a within its cacheline.
func (a Addr) Offset() int { return int(a & (Size - 1)) }

// BlockNumber returns the cacheline index (address divided by line size).
func (a Addr) BlockNumber() uint64 { return uint64(a) / Size }
