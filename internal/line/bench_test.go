package line

import (
	"testing"

	"repro/internal/xrand"
)

// benchLines builds a deterministic pair of lines differing in a handful
// of bytes — the regime the replay hot path sees (average diffs are well
// under 16 bytes, Fig. 18).
func benchLines() (Line, Line) {
	rng := xrand.New(0xbeef)
	var a Line
	for i := 0; i < WordsPerLine; i++ {
		a.SetWord(i, rng.Uint64())
	}
	b := a
	for _, pos := range []int{3, 17, 40, 41, 63} {
		b[pos] ^= byte(1 + rng.Intn(255))
	}
	return a, b
}

func BenchmarkDiffBytes(b *testing.B) {
	x, y := benchLines()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DiffBytes(&x, &y)
	}
}

func BenchmarkPopCountNonZero(b *testing.B) {
	x, _ := benchLines()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.PopCountNonZero()
	}
}

func BenchmarkPopCountNonZeroSparse(b *testing.B) {
	var x Line
	x[5], x[31], x[60] = 1, 2, 3
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.PopCountNonZero()
	}
}
