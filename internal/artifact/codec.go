// Package artifact implements the persistent, content-addressed on-disk
// cache for recordings (ISSUE 5). A recording — sim.Recorded plus
// optionally the paged memory image it was produced from — is a pure
// function of (profile parameters, SystemConfig geometry, trace length,
// codec version), so it is stored under a SHA-256 of exactly those inputs
// and loaded instead of re-simulated on every later run.
//
// The file format is a compact versioned binary codec:
//
//	header   16B: magic "THSA", u32 version, u32 section bitmask, u32 reserved
//	payload  sections in bitmask order (recorded, then image)
//	footer   16B: u64 payload length, u32 CRC-32C(header+payload), u32 magic
//
// The recorded section deduplicates line contents through a first-seen
// pool (replayed traces revisit the same lines constantly), delta-encodes
// event addresses with zigzag varints, and stores counters as uvarints.
// The image section reuses memory.Store's canonical page encoding (sorted
// 4KiB pages, raw line bytes). Everything is checksummed; any decode
// failure surfaces as ErrCorrupt so callers regenerate, and a version
// mismatch is ErrVersionSkew — a miss, never an error.
package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/sim"
)

// Version is the codec version. Bump it whenever the encoding — or the
// semantics of anything keyed under it (generator behaviour, recording
// rules) — changes; it participates in the content key, so a bump turns
// every existing artifact into a clean miss.
const Version = 1

const (
	headerMagic = 0x41534854 // "THSA" little-endian
	footerMagic = 0x5A534854 // "THSZ" little-endian
	headerLen   = 16
	footerLen   = 16

	sectionRecorded = 1 << 0
	sectionImage    = 1 << 1
	sectionRun      = 1 << 2

	// maxEvents / maxPool bound decode-time allocations to what a
	// plausible artifact can hold, so a corrupt length prefix cannot
	// trigger a huge allocation before the per-item bounds checks fire.
	maxEvents = 1 << 32
	maxPool   = 1 << 30
)

// Decode failure modes.
var (
	// ErrCorrupt reports a torn, truncated, or bit-flipped artifact.
	ErrCorrupt = errors.New("artifact: corrupt")
	// ErrVersionSkew reports a structurally valid artifact written by a
	// different codec version. Callers treat it as a cache miss.
	ErrVersionSkew = errors.New("artifact: codec version skew")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// File is the decoded form of one artifact.
type File struct {
	Recorded *sim.Recorded
	// Image is the memory image the recording was taken from (present
	// only when the writer included it, e.g. cmd/tracegen artifacts).
	// Its pages are backed by the decode slab: see memory.Store.Release.
	Image *memory.Store
	// Run is a whole memoized replay result (ISSUE 8). The section
	// carries its own sub-version (RunOutputVersion) on top of the
	// container version, because its encoding mirrors snapshot struct
	// layouts that evolve independently of the recording format.
	Run *RunOutput
}

// Encode appends the artifact encoding of f onto dst.
func Encode(dst []byte, f *File) []byte {
	var sections uint32
	if f.Recorded != nil {
		sections |= sectionRecorded
	}
	if f.Image != nil {
		sections |= sectionImage
	}
	if f.Run != nil {
		sections |= sectionRun
	}
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, headerMagic)
	dst = binary.LittleEndian.AppendUint32(dst, Version)
	dst = binary.LittleEndian.AppendUint32(dst, sections)
	dst = binary.LittleEndian.AppendUint32(dst, 0)
	if f.Recorded != nil {
		dst = appendRecorded(dst, f.Recorded)
	}
	if f.Image != nil {
		dst = f.Image.AppendPages(dst)
	}
	if f.Run != nil {
		dst = appendRunOutput(dst, f.Run)
	}
	payloadLen := uint64(len(dst) - start - headerLen)
	dst = binary.LittleEndian.AppendUint64(dst, payloadLen)
	// The checksum covers header, payload, and the length field itself
	// (everything but the trailing crc+magic words).
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], castagnoli))
	dst = binary.LittleEndian.AppendUint32(dst, footerMagic)
	return dst
}

// Decode parses one artifact. It returns ErrVersionSkew for a
// checksummed-valid file written by another codec version and ErrCorrupt
// (wrapping detail) for anything torn, truncated, or bit-flipped.
func Decode(data []byte) (*File, error) {
	if len(data) < headerLen+footerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than header+footer", ErrCorrupt, len(data))
	}
	if binary.LittleEndian.Uint32(data) != headerMagic {
		return nil, fmt.Errorf("%w: bad header magic", ErrCorrupt)
	}
	foot := data[len(data)-footerLen:]
	if binary.LittleEndian.Uint32(foot[12:]) != footerMagic {
		return nil, fmt.Errorf("%w: bad footer magic", ErrCorrupt)
	}
	if got, want := binary.LittleEndian.Uint64(foot), uint64(len(data)-headerLen-footerLen); got != want {
		return nil, fmt.Errorf("%w: payload length %d, have %d", ErrCorrupt, got, want)
	}
	sum := crc32.Checksum(data[:len(data)-8], castagnoli)
	if sum != binary.LittleEndian.Uint32(foot[8:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	// The checksum passed, so the bytes are what the writer produced;
	// only now is a version comparison meaningful.
	if v := binary.LittleEndian.Uint32(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, codec version %d", ErrVersionSkew, v, Version)
	}
	sections := binary.LittleEndian.Uint32(data[8:])
	if sections&^uint32(sectionRecorded|sectionImage|sectionRun) != 0 {
		return nil, fmt.Errorf("%w: unknown section bits %#x", ErrCorrupt, sections)
	}
	payload := data[headerLen : len(data)-footerLen]
	f := &File{}
	var err error
	if sections&sectionRecorded != 0 {
		if f.Recorded, payload, err = decodeRecorded(payload); err != nil {
			return nil, err
		}
	}
	if sections&sectionImage != 0 {
		s := memory.NewStore()
		if payload, err = s.LoadPages(payload); err != nil {
			return nil, fmt.Errorf("%w: image: %v", ErrCorrupt, err)
		}
		f.Image = s
	}
	if sections&sectionRun != 0 {
		if f.Run, payload, err = decodeRunOutput(payload); err != nil {
			return nil, err
		}
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(payload))
	}
	return f, nil
}

// appendRecorded encodes one sim.Recorded. Events reference line contents
// through a first-seen pool of unique lines; addresses are zigzag deltas
// from the previous event; the pool index carries the event kind in its
// low bit (indices stay far below 2^62, so the shift cannot overflow).
func appendRecorded(dst []byte, r *sim.Recorded) []byte {
	pool := make(map[line.Line]uint64, r.UniqueLines)
	order := make([]line.Line, 0, r.UniqueLines)
	for i := range r.Events {
		d := r.Events[i].Data
		if _, ok := pool[d]; !ok {
			pool[d] = uint64(len(order))
			order = append(order, d)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(r.Events)))
	dst = binary.AppendUvarint(dst, uint64(len(order)))
	dst = binary.AppendUvarint(dst, r.Instructions)
	dst = binary.AppendUvarint(dst, r.CoreAccesses)
	dst = binary.AppendUvarint(dst, r.L1Hits)
	dst = binary.AppendUvarint(dst, r.L2Hits)
	dst = binary.AppendUvarint(dst, uint64(r.UniqueLines))
	for _, l := range order {
		dst = append(dst, l[:]...)
	}
	var prev line.Addr
	for i := range r.Events {
		e := &r.Events[i]
		delta := int64(uint64(e.Addr) - uint64(prev))
		dst = binary.AppendUvarint(dst, uint64(delta)<<1^uint64(delta>>63))
		dst = binary.AppendUvarint(dst, e.Instrs)
		dst = binary.AppendUvarint(dst, pool[e.Data]<<1|uint64(e.Kind))
		prev = e.Addr
	}
	return dst
}

// decodeRecorded parses the recorded section, returning the remaining
// payload. All errors are ErrCorrupt: the checksum already vouched for
// the bytes, so a malformed section means an encoder bug or memory fault,
// and the caller's regenerate path is the right response either way.
func decodeRecorded(data []byte) (*sim.Recorded, []byte, error) {
	var hdr [7]uint64
	for i := range hdr {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: recorded header field %d", ErrCorrupt, i)
		}
		hdr[i] = v
		data = data[n:]
	}
	nEvents, nPool := hdr[0], hdr[1]
	if nEvents > maxEvents || nPool > maxPool || nPool > nEvents || nPool == 0 && nEvents > 0 {
		return nil, nil, fmt.Errorf("%w: %d events / %d pooled lines", ErrCorrupt, nEvents, nPool)
	}
	if uint64(len(data)) < nPool*line.Size {
		return nil, nil, fmt.Errorf("%w: truncated line pool", ErrCorrupt)
	}
	// UniqueLines counts distinct addresses (not contents), so its only
	// structural bound is the event count.
	if hdr[6] > nEvents {
		return nil, nil, fmt.Errorf("%w: UniqueLines %d exceeds %d events", ErrCorrupt, hdr[6], nEvents)
	}
	pool := make([]line.Line, nPool)
	for i := range pool {
		copy(pool[i][:], data[uint64(i)*line.Size:])
	}
	data = data[nPool*line.Size:]
	// Each event takes at least one byte per varint field.
	if uint64(len(data)) < nEvents*3 {
		return nil, nil, fmt.Errorf("%w: truncated event stream", ErrCorrupt)
	}
	r := &sim.Recorded{
		Events:       make([]sim.Event, nEvents),
		Instructions: hdr[2],
		CoreAccesses: hdr[3],
		L1Hits:       hdr[4],
		L2Hits:       hdr[5],
		UniqueLines:  int(hdr[6]),
	}
	var prev line.Addr
	for i := range r.Events {
		zz, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: event %d address", ErrCorrupt, i)
		}
		data = data[n:]
		delta := int64(zz>>1) ^ -int64(zz&1)
		addr := line.Addr(uint64(prev) + uint64(delta))
		instrs, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: event %d instrs", ErrCorrupt, i)
		}
		data = data[n:]
		ik, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: event %d pool index", ErrCorrupt, i)
		}
		data = data[n:]
		idx, kind := ik>>1, sim.EventKind(ik&1)
		if idx >= nPool {
			return nil, nil, fmt.Errorf("%w: event %d pool index %d of %d", ErrCorrupt, i, idx, nPool)
		}
		r.Events[i] = sim.Event{Kind: kind, Addr: addr, Data: pool[idx], Instrs: instrs}
		prev = addr
	}
	return r, data, nil
}

// RecordedEqual deep-compares two recordings (the -cache-verify path and
// the property tests).
func RecordedEqual(a, b *sim.Recorded) bool {
	if a.Instructions != b.Instructions || a.CoreAccesses != b.CoreAccesses ||
		a.L1Hits != b.L1Hits || a.L2Hits != b.L2Hits ||
		a.UniqueLines != b.UniqueLines || len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return false
		}
	}
	return true
}
