package artifact

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"testing"

	"repro/internal/bdi"
	"repro/internal/bdicache"
	"repro/internal/cpack"
	"repro/internal/dedupcache"
	"repro/internal/dish"
	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thesaurus"
	"repro/internal/uncomp"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// synthRunOutput builds a run snapshot with every field populated and the
// Extra union varied by seed, so the round-trip tests cover every
// registered codec arm including nil-vs-empty slice and map edge shapes.
func synthRunOutput(seed uint64) *RunOutput {
	rng := xrand.New(seed)
	r := &RunOutput{
		Res: sim.Result{
			Design:       fmt.Sprintf("design-%d", seed),
			Instructions: rng.Uint64n(1 << 40),
			LLCStats: llc.Stats{
				Reads: rng.Uint64n(1 << 30), Writes: rng.Uint64n(1 << 30),
				ReadHits: rng.Uint64n(1 << 29), WriteHits: rng.Uint64n(1 << 29),
				Fills: rng.Uint64n(1 << 28), Writebacks: rng.Uint64n(1 << 28),
			},
			MPKI:             rng.NormFloat64(),
			IPC:              rng.Float64() * 4,
			Cycles:           rng.Float64() * 1e12,
			CompressionRatio: 1 + rng.Float64(),
			Occupancy:        rng.Float64(),
			AvgResidentLines: rng.Float64() * 16384,
			Samples:          rng.Intn(10000),
		},
		Snap: llc.StatsSnapshot{
			Design: fmt.Sprintf("snap-%d", seed),
			Stats:  llc.Stats{Reads: rng.Uint64n(1 << 20), WriteHits: rng.Uint64n(1 << 20)},
		},
		ClusterFracs: [4]float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
	}
	for i := range r.Res.DRAM.Counts {
		r.Res.DRAM.Counts[i] = rng.Uint64n(1 << 30)
	}
	switch seed % 8 {
	case 0: // nil extra (Ideal)
	case 1:
		lines := make([]line.Line, rng.Intn(64))
		for i := range lines {
			lines[i][0], lines[i][17] = byte(rng.Uint32()), byte(rng.Uint32())
		}
		r.Snap.Extra = &uncomp.Snapshot{Lines: lines}
	case 2: // uncomp with nil lines (released empty)
		r.Snap.Extra = &uncomp.Snapshot{}
	case 3:
		x := &bdicache.Snapshot{Extra: bdicache.ExtraStats{
			Insertions: rng.Uint64n(1 << 30), Compressed: rng.Uint64n(1 << 29),
			SpaceEvictions: rng.Uint64n(1 << 20),
			ByKind:         map[bdi.Kind]uint64{},
		}}
		for k := 0; k < rng.Intn(9); k++ {
			x.Extra.ByKind[bdi.Kind(k)] = rng.Uint64n(1 << 28)
		}
		r.Snap.Extra = x
	case 4:
		r.Snap.Extra = &dedupcache.Snapshot{Extra: dedupcache.ExtraStats{
			Insertions: rng.Uint64n(1 << 30), Deduped: rng.Uint64n(1 << 29),
			FalseMatches: rng.Uint64n(1 << 10), ListEvictions: rng.Uint64n(1 << 20),
		}}
	case 5:
		cfg := thesaurus.DefaultConfig()
		cfg.DiffSeriesWindow = 512
		cfg.IntraLineFallback = rng.Bool(0.5)
		x := &thesaurus.Snapshot{
			Cfg: cfg,
			Adaptive: thesaurus.AdaptiveStats{
				Epochs: rng.Uint64n(100), DisabledEpochs: rng.Uint64n(50),
				DisabledPlacements: rng.Uint64n(1 << 20),
			},
			BaseCache: thesaurus.BaseCacheSnapshot{
				ReadPath:   stats.Counter{Hits: rng.Uint64n(1 << 20), Total: rng.Uint64n(1 << 21)},
				InsertPath: stats.Counter{Hits: rng.Uint64n(1 << 20), Total: rng.Uint64n(1 << 21)},
				Entries:    512, StorageBytes: 1 << 15,
			},
			LiveClusters:  rng.Intn(1 << 15),
			ValidClusters: rng.Intn(1 << 15),
		}
		x.Extra.Insertions = rng.Uint64n(1 << 30)
		x.Extra.Reencodes = rng.Uint64n(1 << 28)
		x.Extra.Placements = x.Extra.Insertions + x.Extra.Reencodes
		for i := range x.Extra.ByFormat {
			x.Extra.ByFormat[i] = rng.Uint64n(1 << 26)
		}
		x.Extra.Compressible = rng.Uint64n(1 << 29)
		x.Extra.DiffBytesSum = rng.Uint64n(1 << 33)
		x.Extra.DiffCount = rng.Uint64n(1 << 27)
		if rng.Bool(0.7) {
			x.DiffSeries = make([]float64, rng.Intn(100))
			for i := range x.DiffSeries {
				x.DiffSeries[i] = rng.Float64() * 64
			}
		}
		r.Snap.Extra = x
	case 6:
		x := &cpack.Snapshot{Extra: cpack.ExtraStats{
			Insertions: rng.Uint64n(1 << 30), Compressed: rng.Uint64n(1 << 29),
			SpaceEvictions: rng.Uint64n(1 << 20),
		}}
		for i := range x.Extra.ByPattern {
			x.Extra.ByPattern[i] = rng.Uint64n(1 << 28)
		}
		r.Snap.Extra = x
	case 7:
		r.Snap.Extra = &dish.Snapshot{Extra: dish.ExtraStats{
			Insertions:   rng.Uint64n(1 << 30),
			Scheme1Fills: rng.Uint64n(1 << 29), Scheme2Fills: rng.Uint64n(1 << 29),
			UncompressedFills: rng.Uint64n(1 << 28),
			OTFSelections:     rng.Uint64n(1 << 20),
			SpaceEvictions:    rng.Uint64n(1 << 20),
		}}
	}
	return r
}

func TestRunOutputRoundtrip(t *testing.T) {
	for seed := uint64(0); seed < 24; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			want := synthRunOutput(seed)
			data := Encode(nil, &File{Run: want})
			f, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if f.Run == nil {
				t.Fatal("run section missing after decode")
			}
			if !RunOutputEqual(want, f.Run) {
				t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", f.Run, want)
			}
			// Canonical encoding: re-encoding the decoded value must be
			// byte-identical (the warm-cache byte-identity contract rests
			// on exactly this).
			if re := Encode(nil, f); !bytes.Equal(re, data) {
				t.Fatalf("re-encode differs: %d vs %d bytes", len(re), len(data))
			}
		})
	}
}

// Special float bit patterns must survive exactly: the codec stores IEEE
// bits, not formatted values.
func TestRunOutputFloatBitExactness(t *testing.T) {
	want := synthRunOutput(0)
	want.Res.MPKI = math.Inf(1)
	want.Res.IPC = math.NaN()
	want.Res.Cycles = math.Copysign(0, -1)
	want.ClusterFracs[2] = math.Float64frombits(0x7ff0000000000001) // signaling NaN
	f, err := Decode(Encode(nil, &File{Run: want}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(f.Run.Res.MPKI) != math.Float64bits(want.Res.MPKI) ||
		math.Float64bits(f.Run.Res.IPC) != math.Float64bits(want.Res.IPC) ||
		math.Float64bits(f.Run.Res.Cycles) != math.Float64bits(want.Res.Cycles) ||
		math.Float64bits(f.Run.ClusterFracs[2]) != math.Float64bits(want.ClusterFracs[2]) {
		t.Fatal("float bit patterns changed across roundtrip")
	}
	if !RunOutputEqual(want, f.Run) {
		t.Fatal("RunOutputEqual rejects bit-identical NaN round-trip")
	}
}

func TestRunOutputRejectsTruncation(t *testing.T) {
	data := Encode(nil, &File{Run: synthRunOutput(5)})
	for _, n := range []int{0, 1, headerLen, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrCorrupt", n, err)
		}
	}
}

func TestRunOutputRejectsBitFlips(t *testing.T) {
	data := Encode(nil, &File{Run: synthRunOutput(3)})
	for i := 0; i < len(data); i += 7 {
		mut := bytes.Clone(data)
		mut[i] ^= 0x10
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
}

// A run section written under a different RunOutputVersion must decode as
// version skew — the cache treats that as a silent miss, never an error —
// even though the container version still matches.
func TestRunOutputSectionVersionSkew(t *testing.T) {
	r := synthRunOutput(7)
	// A run-only artifact's section starts right after the header with
	// its sub-version uvarint; bump it and fix the checksum — exactly
	// the bytes a future RunOutputVersion would write.
	fwd := Encode(nil, &File{Run: r})
	fwd[headerLen] = RunOutputVersion + 1
	patchCRC(fwd)
	if _, err := Decode(fwd); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("future run section: got %v, want ErrVersionSkew", err)
	}

	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.StoreRunOutput("futurekey", r)
	if err := os.WriteFile(c.path("futurekey"), fwd, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LoadRunOutput("futurekey"); ok {
		t.Fatal("version-skewed run artifact loaded as a hit")
	}
	st := c.Stats()
	if st.Corrupt != 0 {
		t.Fatalf("version skew counted as corruption: %+v", st)
	}
	if st.Misses != 1 {
		t.Fatalf("want exactly one miss, got %+v", st)
	}
}

// A recording artifact under a run key (or vice versa) is a miss, not a
// hit with a nil payload — and like corruption the useless entry is
// removed so the next store regenerates it.
func TestRunOutputWrongSectionIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.StoreRecorded("key", synthRecorded(1, 10))
	if _, ok := c.LoadRunOutput("key"); ok {
		t.Fatal("recording artifact satisfied a run lookup")
	}
	if _, ok := c.LoadRecorded("key"); ok {
		t.Fatal("wrong-section entry should have been removed")
	}
}

func TestRunOutputKeySensitivity(t *testing.T) {
	p, err := workload.ProfileByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.DefaultSystem()
	replay := sim.DefaultReplayOptions()
	cfg := thesaurus.DefaultConfig()
	cfg.DiffSeriesWindow = 512
	base := RunOutputKey(p, sys, "Thesaurus", 1000, replay, true, &cfg)

	if RunOutputKey(p, sys, "Thesaurus", 1000, replay, true, &cfg) != base {
		t.Fatal("key not deterministic")
	}
	perturb := map[string]string{}
	perturb["design"] = RunOutputKey(p, sys, "BDI", 1000, replay, true, &cfg)
	// The new registered designs carry their own 'C' config-key fragments;
	// none may collide with each other or any other perturbation.
	perturb["design-cpack"] = RunOutputKey(p, sys, "CPack", 1000, replay, true, &cfg)
	perturb["design-dish"] = RunOutputKey(p, sys, "DISH", 1000, replay, true, &cfg)
	perturb["design-baseline"] = RunOutputKey(p, sys, "Baseline", 1000, replay, true, &cfg)
	perturb["design-2x"] = RunOutputKey(p, sys, "2x Baseline", 1000, replay, true, &cfg)
	perturb["accesses"] = RunOutputKey(p, sys, "Thesaurus", 1001, replay, true, &cfg)
	perturb["sample"] = RunOutputKey(p, sys, "Thesaurus", 1000, replay, false, &cfg)
	r2 := replay
	r2.WarmupFraction = 0.5
	perturb["warmup"] = RunOutputKey(p, sys, "Thesaurus", 1000, r2, true, &cfg)
	r3 := replay
	r3.SampleEvery = 4096
	perturb["sampleevery"] = RunOutputKey(p, sys, "Thesaurus", 1000, r3, true, &cfg)
	r4 := replay
	r4.Verify = true
	perturb["verify"] = RunOutputKey(p, sys, "Thesaurus", 1000, r4, true, &cfg)
	s2 := sys
	s2.Timing.MemCycles++
	perturb["timing"] = RunOutputKey(p, s2, "Thesaurus", 1000, replay, true, &cfg)
	s3 := sys
	s3.L2SizeBytes *= 2
	perturb["geometry"] = RunOutputKey(p, s3, "Thesaurus", 1000, replay, true, &cfg)
	c2 := cfg
	c2.VictimCandidates++
	perturb["thesaurus-cfg"] = RunOutputKey(p, sys, "Thesaurus", 1000, replay, true, &c2)
	c3 := cfg
	c3.LSH.Bits++
	perturb["lsh-cfg"] = RunOutputKey(p, sys, "Thesaurus", 1000, replay, true, &c3)
	p2, err := workload.ProfileByName("xz")
	if err != nil {
		t.Fatal(err)
	}
	perturb["profile"] = RunOutputKey(p2, sys, "Thesaurus", 1000, replay, true, &cfg)

	whats := make([]string, 0, len(perturb))
	for what := range perturb {
		whats = append(whats, what)
	}
	sort.Strings(whats)
	seen := map[string]string{base: "base"}
	for _, what := range whats {
		k := perturb[what]
		if prev, dup := seen[k]; dup {
			t.Errorf("perturbing %s collides with %s", what, prev)
		}
		seen[k] = what
	}
}

// Concurrent LoadOrRunOutput callers across goroutines (standing in for
// processes — the lock-file protocol is identical) must coalesce into one
// compute, and a compute error must not poison the key.
func TestCacheConcurrentLoadOrRunOutput(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := synthRunOutput(9)
	var computes sync.Map
	var wg sync.WaitGroup
	results := make([]*RunOutput, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, _, err := c.LoadOrRunOutput("key", func() (*RunOutput, error) {
				computes.Store(i, true)
				return synthRunOutput(9), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	nComputes := 0
	computes.Range(func(any, any) bool { nComputes++; return true })
	// The lock-file singleflight admits one computer; racers that lose
	// the lock poll for its artifact. (The in-memory coalesce layer in
	// harness is what guarantees exactly one per process; here we only
	// require that every caller got the right value.)
	if nComputes == 0 {
		t.Fatal("no caller computed")
	}
	for i, r := range results {
		if r == nil || !RunOutputEqual(r, want) {
			t.Fatalf("caller %d got wrong run output", i)
		}
	}

	errBoom := errors.New("boom")
	if _, _, err := c.LoadOrRunOutput("failkey", func() (*RunOutput, error) {
		return nil, errBoom
	}); !errors.Is(err, errBoom) {
		t.Fatalf("compute error not propagated: %v", err)
	}
	// The failed compute must not have stored anything or leaked a lock.
	r, hit, err := c.LoadOrRunOutput("failkey", func() (*RunOutput, error) {
		return synthRunOutput(11), nil
	})
	if err != nil || hit {
		t.Fatalf("retry after failed compute: hit=%v err=%v", hit, err)
	}
	if !RunOutputEqual(r, synthRunOutput(11)) {
		t.Fatal("retry returned wrong value")
	}
}

// FuzzRunOutputCodecRoundtrip mirrors FuzzRecordedCodecRoundtrip for the
// run section: arbitrary bytes must never panic the decoder, and accepted
// input must re-encode byte-identically with an equal decoded value.
func FuzzRunOutputCodecRoundtrip(f *testing.F) {
	f.Add([]byte{})
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(Encode(nil, &File{Run: synthRunOutput(seed)}))
	}
	f.Add(Encode(nil, &File{Recorded: synthRecorded(1, 12), Run: synthRunOutput(8)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(nil, decoded)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted %d bytes but re-encoded to %d different bytes", len(data), len(re))
		}
		round, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoding of accepted input rejected: %v", err)
		}
		if (round.Run == nil) != (decoded.Run == nil) {
			t.Fatal("run section presence changed across roundtrip")
		}
		if round.Run != nil && !RunOutputEqual(round.Run, decoded.Run) {
			t.Fatal("run output changed across roundtrip")
		}
	})
}
