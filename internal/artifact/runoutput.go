package artifact

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/llc"
	"repro/internal/scheme"
	"repro/internal/sim"
	"repro/internal/thesaurus"
	"repro/internal/workload"
)

// RunOutputVersion versions the run-output section independently of the
// container codec (Version): the section serializes the design snapshot
// structs field by field, so it must be bumped whenever sim.Result,
// llc.StatsSnapshot, or any design's release-snapshot type gains, loses,
// or reinterprets a field — and whenever replay semantics change in a way
// the recording codec version does not already capture. Registering a new
// scheme (a new codec tag) is also a bump. The version is both hashed
// into every run key and embedded in the section, so a bump turns every
// cached run into a clean miss (never an error).
//
// v2: snapshot codecs moved to the scheme registry, CPack (tag 5) and
// DISH (tag 6) designs added, per-scheme config folded into run keys.
const RunOutputVersion = 2

// RunOutput is a whole memoized run: the replay metrics, the released
// cache's statistics snapshot, and the Fig. 16 cluster-size fractions.
// It mirrors harness.RunOutput field for field (the harness converts at
// the cache boundary; artifact cannot import harness).
type RunOutput struct {
	Res          sim.Result
	Snap         llc.StatsSnapshot
	ClusterFracs [4]float64
}

// extraNil is the wire tag of a snapshot with no design-specific Extra.
// All other tags belong to scheme-registry codecs (scheme.CodecByTag);
// the decoder rejects unknown tags as corrupt — a new design requires a
// RunOutputVersion bump, which already turns old files into misses before
// tag dispatch is reached.
const extraNil = 0

// RunOutputKey derives the content address of a whole run: the SHA-256 of
// every input the replay's result depends on — both codec versions (the
// recording feeds the run, so recording-semantics bumps must also miss),
// the full profile descriptor, the complete SystemConfig (geometry AND
// timing: unlike a recording, a run's IPC/cycle metrics depend on the
// latency model), the design name plus the scheme's default-config
// fragment (so cached runs never alias across a silent default-config
// change), the trace length, every scalar ReplayOptions field, whether
// the run sampled the Fig. 16 cluster-size distribution, and — for
// Thesaurus runs — the effective (normalized) Thesaurus configuration.
// Workers is deliberately excluded: results are deterministic for any
// worker count (see harness.runKey).
func RunOutputKey(p workload.Profile, sys sim.SystemConfig, design string, accesses int,
	replay sim.ReplayOptions, sample bool, thCfg *thesaurus.Config) string {
	buf := make([]byte, 0, 512)
	buf = append(buf, fmt.Sprintf("thesaurus-runoutput-v%d-r%d\x00", RunOutputVersion, Version)...)
	buf = p.AppendKey(buf)
	buf = keyU64(buf,
		uint64(sys.L1DSizeBytes), uint64(sys.L1DWays),
		uint64(sys.L2SizeBytes), uint64(sys.L2Ways),
		math.Float64bits(sys.Timing.FrequencyGHz),
		math.Float64bits(sys.Timing.CoreIPC),
		math.Float64bits(sys.Timing.L2HitCycles),
		math.Float64bits(sys.Timing.LLCHitCycles),
		math.Float64bits(sys.Timing.MemCycles),
		math.Float64bits(sys.Timing.OverlapFactor))
	if sys.DRAM != nil {
		buf = append(buf, 'D')
		buf = keyU64(buf, uint64(sys.DRAM.Banks), uint64(sys.DRAM.RowBytes),
			math.Float64bits(sys.DRAM.TRCD), math.Float64bits(sys.DRAM.TRP),
			math.Float64bits(sys.DRAM.TCAS), math.Float64bits(sys.DRAM.TBurst),
			math.Float64bits(sys.DRAM.Overhead))
	}
	buf = keyString(buf, design)
	if s, ok := scheme.Lookup(design); ok && s.AppendConfigKey != nil {
		buf = append(buf, 'C')
		buf = s.AppendConfigKey(buf)
	}
	buf = keyU64(buf, uint64(accesses),
		math.Float64bits(replay.WarmupFraction),
		uint64(replay.SampleEvery), boolU64(replay.Verify), boolU64(sample))
	if thCfg != nil {
		buf = append(buf, 'T')
		buf = keyU64(buf,
			uint64(thCfg.TagEntries), uint64(thCfg.TagWays),
			uint64(thCfg.DataSets), uint64(thCfg.SegmentsPerSet),
			uint64(thCfg.LSH.Bits), uint64(thCfg.LSH.NonZeros), thCfg.LSH.Seed,
			uint64(thCfg.BaseCacheSets), uint64(thCfg.BaseCacheWays),
			uint64(thCfg.VictimCandidates), thCfg.Seed,
			uint64(thCfg.DiffSeriesWindow),
			boolU64(thCfg.BaseCachePlainLRU), boolU64(thCfg.IntraLineFallback),
			uint64(thCfg.AdaptiveEpoch), uint64(thCfg.WriteBufferDepth))
	}
	return hashKey(buf)
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// appendRunOutput encodes one run-output section: the section sub-version
// first (so run-format changes miss without a container bump), then the
// result, the snapshot with its tagged design-specific extra, and the
// cluster fractions. Counters are uvarints, floats are fixed 8-byte IEEE
// bit patterns (exact, canonical), and bools/tags are single bytes the
// decoder validates strictly — the encoding of every value is unique, so
// decode∘encode is the identity on accepted sections (the fuzz contract).
func appendRunOutput(dst []byte, r *RunOutput) []byte {
	dst = binary.AppendUvarint(dst, RunOutputVersion)
	dst = appendResult(dst, &r.Res)
	dst = appendStatsSnapshot(dst, &r.Snap)
	for _, f := range r.ClusterFracs {
		dst = appendF64(dst, f)
	}
	return dst
}

func appendF64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendLLCStats(dst []byte, s *llc.Stats) []byte {
	dst = binary.AppendUvarint(dst, s.Reads)
	dst = binary.AppendUvarint(dst, s.Writes)
	dst = binary.AppendUvarint(dst, s.ReadHits)
	dst = binary.AppendUvarint(dst, s.WriteHits)
	dst = binary.AppendUvarint(dst, s.Fills)
	return binary.AppendUvarint(dst, s.Writebacks)
}

func appendResult(dst []byte, r *sim.Result) []byte {
	dst = appendString(dst, r.Design)
	dst = binary.AppendUvarint(dst, r.Instructions)
	dst = appendLLCStats(dst, &r.LLCStats)
	dst = binary.AppendUvarint(dst, uint64(len(r.DRAM.Counts)))
	for _, c := range r.DRAM.Counts {
		dst = binary.AppendUvarint(dst, c)
	}
	dst = appendF64(dst, r.MPKI)
	dst = appendF64(dst, r.IPC)
	dst = appendF64(dst, r.Cycles)
	dst = appendF64(dst, r.CompressionRatio)
	dst = appendF64(dst, r.Occupancy)
	dst = appendF64(dst, r.AvgResidentLines)
	return binary.AppendUvarint(dst, uint64(r.Samples))
}

// appendStatsSnapshot writes the snapshot's common fields and dispatches
// the design-specific Extra to its scheme-registry codec by snapshot
// type: a nil Extra is the generic nil tag, everything else must match a
// registered codec.
func appendStatsSnapshot(dst []byte, s *llc.StatsSnapshot) []byte {
	dst = appendString(dst, s.Design)
	dst = appendLLCStats(dst, &s.Stats)
	if s.Extra == nil {
		return append(dst, extraNil)
	}
	c, ok := scheme.CodecFor(s.Extra)
	if !ok {
		// A design snapshot no registered codec owns cannot be persisted
		// faithfully; encoding it would decode to silently wrong results.
		panic(fmt.Sprintf("artifact: unencodable extra snapshot %T (register a scheme codec and bump RunOutputVersion)", s.Extra))
	}
	dst = append(dst, c.Tag)
	return c.Encode(dst, s.Extra)
}

// runDecoder threads the payload slice through the field readers so every
// site gets bounds-checked without repeating the error plumbing. err
// sticks: after the first failure every later read returns zero values.
// The exported methods implement scheme.Decoder for the registry's
// snapshot codec hooks.
type runDecoder struct {
	data []byte
	err  error
}

var _ scheme.Decoder = (*runDecoder)(nil)

// Fail implements scheme.Decoder: it marks the decode corrupt; the first
// failure sticks.
func (d *runDecoder) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: run-output "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

// Err implements scheme.Decoder.
func (d *runDecoder) Err() error { return d.err }

// Uvarint implements scheme.Decoder.
func (d *runDecoder) Uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.Fail("%s", what)
		return 0
	}
	d.data = d.data[n:]
	return v
}

// Count implements scheme.Decoder: a uvarint that sizes a following
// allocation, bounded by max.
func (d *runDecoder) Count(what string, max uint64) int {
	v := d.Uvarint(what)
	if d.err == nil && v > max {
		d.Fail("%s %d exceeds bound %d", what, v, max)
	}
	if d.err != nil {
		return 0
	}
	return int(v)
}

// F64 implements scheme.Decoder.
func (d *runDecoder) F64(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 8 {
		d.Fail("%s", what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data))
	d.data = d.data[8:]
	return v
}

// Bool implements scheme.Decoder: one strict 0/1 byte.
func (d *runDecoder) Bool(what string) bool {
	if d.err != nil {
		return false
	}
	if len(d.data) < 1 || d.data[0] > 1 {
		d.Fail("%s", what)
		return false
	}
	b := d.data[0] == 1
	d.data = d.data[1:]
	return b
}

// Str implements scheme.Decoder.
func (d *runDecoder) Str(what string) string {
	n := d.Count(what+" length", 1<<20)
	if d.err != nil {
		return ""
	}
	if len(d.data) < n {
		d.Fail("truncated %s", what)
		return ""
	}
	s := string(d.data[:n])
	d.data = d.data[n:]
	return s
}

// Bytes implements scheme.Decoder: exactly n raw bytes, aliasing the
// decode buffer.
func (d *runDecoder) Bytes(what string, n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.data) < n {
		d.Fail("truncated %s", what)
		return nil
	}
	b := d.data[:n]
	d.data = d.data[n:]
	return b
}

func (d *runDecoder) llcStats(s *llc.Stats) {
	s.Reads = d.Uvarint("stats reads")
	s.Writes = d.Uvarint("stats writes")
	s.ReadHits = d.Uvarint("stats read hits")
	s.WriteHits = d.Uvarint("stats write hits")
	s.Fills = d.Uvarint("stats fills")
	s.Writebacks = d.Uvarint("stats writebacks")
}

// decodeRunOutput parses one run-output section, returning the remaining
// payload. A section written under another RunOutputVersion is
// ErrVersionSkew (a miss); everything else is ErrCorrupt.
func decodeRunOutput(data []byte) (*RunOutput, []byte, error) {
	d := &runDecoder{data: data}
	v := d.Uvarint("section version")
	if d.err != nil {
		return nil, nil, d.err
	}
	if v != RunOutputVersion {
		return nil, nil, fmt.Errorf("%w: run-output section version %d, codec version %d",
			ErrVersionSkew, v, RunOutputVersion)
	}
	r := &RunOutput{}
	decodeResult(d, &r.Res)
	decodeStatsSnapshot(d, &r.Snap)
	for i := range r.ClusterFracs {
		r.ClusterFracs[i] = d.F64("cluster fraction")
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	return r, d.data, nil
}

func decodeResult(d *runDecoder, r *sim.Result) {
	r.Design = d.Str("result design")
	r.Instructions = d.Uvarint("result instructions")
	d.llcStats(&r.LLCStats)
	if n := d.Count("dram counter count", uint64(len(r.DRAM.Counts))); d.err == nil && n != len(r.DRAM.Counts) {
		d.Fail("dram counter count %d, codec has %d", n, len(r.DRAM.Counts))
	}
	for i := range r.DRAM.Counts {
		r.DRAM.Counts[i] = d.Uvarint("dram counter")
	}
	r.MPKI = d.F64("mpki")
	r.IPC = d.F64("ipc")
	r.Cycles = d.F64("cycles")
	r.CompressionRatio = d.F64("compression ratio")
	r.Occupancy = d.F64("occupancy")
	r.AvgResidentLines = d.F64("avg resident lines")
	r.Samples = int(d.Uvarint("samples"))
}

// decodeStatsSnapshot reads the common fields and dispatches the Extra
// tag to its scheme-registry codec.
func decodeStatsSnapshot(d *runDecoder, s *llc.StatsSnapshot) {
	s.Design = d.Str("snapshot design")
	d.llcStats(&s.Stats)
	if d.err != nil {
		return
	}
	if len(d.data) < 1 {
		d.Fail("extra tag")
		return
	}
	tag := d.data[0]
	d.data = d.data[1:]
	if tag == extraNil {
		return
	}
	c, ok := scheme.CodecByTag(tag)
	if !ok {
		d.Fail("unknown extra tag %d", tag)
		return
	}
	s.Extra = c.Decode(d)
}

// RunOutputEqual deep-compares two run outputs (the -cache-verify path
// and the property tests). Floats compare by bit pattern: the codec
// stores exact bits, so any drift is a real divergence.
func RunOutputEqual(a, b *RunOutput) bool {
	if !resultEqual(&a.Res, &b.Res) {
		return false
	}
	for i := range a.ClusterFracs {
		if math.Float64bits(a.ClusterFracs[i]) != math.Float64bits(b.ClusterFracs[i]) {
			return false
		}
	}
	return snapshotEqual(&a.Snap, &b.Snap)
}

func resultEqual(a, b *sim.Result) bool {
	return a.Design == b.Design && a.Instructions == b.Instructions &&
		a.LLCStats == b.LLCStats && a.DRAM == b.DRAM &&
		math.Float64bits(a.MPKI) == math.Float64bits(b.MPKI) &&
		math.Float64bits(a.IPC) == math.Float64bits(b.IPC) &&
		math.Float64bits(a.Cycles) == math.Float64bits(b.Cycles) &&
		math.Float64bits(a.CompressionRatio) == math.Float64bits(b.CompressionRatio) &&
		math.Float64bits(a.Occupancy) == math.Float64bits(b.Occupancy) &&
		math.Float64bits(a.AvgResidentLines) == math.Float64bits(b.AvgResidentLines) &&
		a.Samples == b.Samples
}

// snapshotEqual deep-compares two snapshots via the Extras' shared
// scheme codec; Extras of different codecs (or of no registered codec)
// never compare equal.
func snapshotEqual(a, b *llc.StatsSnapshot) bool {
	if a.Design != b.Design || a.Stats != b.Stats {
		return false
	}
	if a.Extra == nil || b.Extra == nil {
		return a.Extra == nil && b.Extra == nil
	}
	ca, ok := scheme.CodecFor(a.Extra)
	if !ok {
		return false
	}
	if cb, ok := scheme.CodecFor(b.Extra); !ok || cb != ca {
		return false
	}
	return ca.Equal(a.Extra, b.Extra)
}
