package artifact

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/bdi"
	"repro/internal/bdicache"
	"repro/internal/dedupcache"
	"repro/internal/diffenc"
	"repro/internal/line"
	"repro/internal/llc"
	"repro/internal/lsh"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thesaurus"
	"repro/internal/uncomp"
	"repro/internal/workload"
)

// RunOutputVersion versions the run-output section independently of the
// container codec (Version): the section serializes the design snapshot
// structs field by field, so it must be bumped whenever sim.Result,
// llc.StatsSnapshot, or any design's release-snapshot type gains, loses,
// or reinterprets a field — and whenever replay semantics change in a way
// the recording codec version does not already capture. The version is
// both hashed into every run key and embedded in the section, so a bump
// turns every cached run into a clean miss (never an error).
const RunOutputVersion = 1

// RunOutput is a whole memoized run: the replay metrics, the released
// cache's statistics snapshot, and the Fig. 16 cluster-size fractions.
// It mirrors harness.RunOutput field for field (the harness converts at
// the cache boundary; artifact cannot import harness).
type RunOutput struct {
	Res          sim.Result
	Snap         llc.StatsSnapshot
	ClusterFracs [4]float64
}

// Extra-snapshot union tags. The decoder rejects unknown tags as corrupt:
// a new design requires a RunOutputVersion bump, which already turns old
// files into misses before tag dispatch is reached.
const (
	extraNil       = 0
	extraUncomp    = 1
	extraBDI       = 2
	extraDedup     = 3
	extraThesaurus = 4
)

// RunOutputKey derives the content address of a whole run: the SHA-256 of
// every input the replay's result depends on — both codec versions (the
// recording feeds the run, so recording-semantics bumps must also miss),
// the full profile descriptor, the complete SystemConfig (geometry AND
// timing: unlike a recording, a run's IPC/cycle metrics depend on the
// latency model), the design name, the trace length, every scalar
// ReplayOptions field, whether the run sampled the Fig. 16 cluster-size
// distribution, and — for Thesaurus runs — the effective (normalized)
// Thesaurus configuration. Workers is deliberately excluded: results are
// deterministic for any worker count (see harness.runKey).
func RunOutputKey(p workload.Profile, sys sim.SystemConfig, design string, accesses int,
	replay sim.ReplayOptions, sample bool, thCfg *thesaurus.Config) string {
	buf := make([]byte, 0, 512)
	buf = append(buf, fmt.Sprintf("thesaurus-runoutput-v%d-r%d\x00", RunOutputVersion, Version)...)
	buf = p.AppendKey(buf)
	buf = keyU64(buf,
		uint64(sys.L1DSizeBytes), uint64(sys.L1DWays),
		uint64(sys.L2SizeBytes), uint64(sys.L2Ways),
		math.Float64bits(sys.Timing.FrequencyGHz),
		math.Float64bits(sys.Timing.CoreIPC),
		math.Float64bits(sys.Timing.L2HitCycles),
		math.Float64bits(sys.Timing.LLCHitCycles),
		math.Float64bits(sys.Timing.MemCycles),
		math.Float64bits(sys.Timing.OverlapFactor))
	if sys.DRAM != nil {
		buf = append(buf, 'D')
		buf = keyU64(buf, uint64(sys.DRAM.Banks), uint64(sys.DRAM.RowBytes),
			math.Float64bits(sys.DRAM.TRCD), math.Float64bits(sys.DRAM.TRP),
			math.Float64bits(sys.DRAM.TCAS), math.Float64bits(sys.DRAM.TBurst),
			math.Float64bits(sys.DRAM.Overhead))
	}
	buf = keyString(buf, design)
	buf = keyU64(buf, uint64(accesses),
		math.Float64bits(replay.WarmupFraction),
		uint64(replay.SampleEvery), boolU64(replay.Verify), boolU64(sample))
	if thCfg != nil {
		buf = append(buf, 'T')
		buf = keyU64(buf,
			uint64(thCfg.TagEntries), uint64(thCfg.TagWays),
			uint64(thCfg.DataSets), uint64(thCfg.SegmentsPerSet),
			uint64(thCfg.LSH.Bits), uint64(thCfg.LSH.NonZeros), thCfg.LSH.Seed,
			uint64(thCfg.BaseCacheSets), uint64(thCfg.BaseCacheWays),
			uint64(thCfg.VictimCandidates), thCfg.Seed,
			uint64(thCfg.DiffSeriesWindow),
			boolU64(thCfg.BaseCachePlainLRU), boolU64(thCfg.IntraLineFallback),
			uint64(thCfg.AdaptiveEpoch), uint64(thCfg.WriteBufferDepth))
	}
	return hashKey(buf)
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// appendRunOutput encodes one run-output section: the section sub-version
// first (so run-format changes miss without a container bump), then the
// result, the snapshot with its tagged design-specific extra, and the
// cluster fractions. Counters are uvarints, floats are fixed 8-byte IEEE
// bit patterns (exact, canonical), and bools/tags are single bytes the
// decoder validates strictly — the encoding of every value is unique, so
// decode∘encode is the identity on accepted sections (the fuzz contract).
func appendRunOutput(dst []byte, r *RunOutput) []byte {
	dst = binary.AppendUvarint(dst, RunOutputVersion)
	dst = appendResult(dst, &r.Res)
	dst = appendStatsSnapshot(dst, &r.Snap)
	for _, f := range r.ClusterFracs {
		dst = appendF64(dst, f)
	}
	return dst
}

func appendF64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendLLCStats(dst []byte, s *llc.Stats) []byte {
	dst = binary.AppendUvarint(dst, s.Reads)
	dst = binary.AppendUvarint(dst, s.Writes)
	dst = binary.AppendUvarint(dst, s.ReadHits)
	dst = binary.AppendUvarint(dst, s.WriteHits)
	dst = binary.AppendUvarint(dst, s.Fills)
	return binary.AppendUvarint(dst, s.Writebacks)
}

func appendResult(dst []byte, r *sim.Result) []byte {
	dst = appendString(dst, r.Design)
	dst = binary.AppendUvarint(dst, r.Instructions)
	dst = appendLLCStats(dst, &r.LLCStats)
	dst = binary.AppendUvarint(dst, uint64(len(r.DRAM.Counts)))
	for _, c := range r.DRAM.Counts {
		dst = binary.AppendUvarint(dst, c)
	}
	dst = appendF64(dst, r.MPKI)
	dst = appendF64(dst, r.IPC)
	dst = appendF64(dst, r.Cycles)
	dst = appendF64(dst, r.CompressionRatio)
	dst = appendF64(dst, r.Occupancy)
	dst = appendF64(dst, r.AvgResidentLines)
	return binary.AppendUvarint(dst, uint64(r.Samples))
}

func appendStatsSnapshot(dst []byte, s *llc.StatsSnapshot) []byte {
	dst = appendString(dst, s.Design)
	dst = appendLLCStats(dst, &s.Stats)
	switch x := s.Extra.(type) {
	case nil:
		dst = append(dst, extraNil)
	case *uncomp.Snapshot:
		dst = append(dst, extraUncomp)
		dst = appendBool(dst, x.Lines != nil)
		dst = binary.AppendUvarint(dst, uint64(len(x.Lines)))
		for i := range x.Lines {
			dst = append(dst, x.Lines[i][:]...)
		}
	case *bdicache.Snapshot:
		dst = append(dst, extraBDI)
		dst = binary.AppendUvarint(dst, x.Extra.Insertions)
		dst = binary.AppendUvarint(dst, x.Extra.Compressed)
		dst = binary.AppendUvarint(dst, x.Extra.SpaceEvictions)
		dst = appendBool(dst, x.Extra.ByKind != nil)
		kinds := make([]int, 0, len(x.Extra.ByKind))
		for k := range x.Extra.ByKind {
			kinds = append(kinds, int(k))
		}
		sort.Ints(kinds)
		dst = binary.AppendUvarint(dst, uint64(len(kinds)))
		for _, k := range kinds {
			dst = binary.AppendUvarint(dst, uint64(k))
			dst = binary.AppendUvarint(dst, x.Extra.ByKind[bdi.Kind(k)])
		}
	case *dedupcache.Snapshot:
		dst = append(dst, extraDedup)
		dst = binary.AppendUvarint(dst, x.Extra.Insertions)
		dst = binary.AppendUvarint(dst, x.Extra.Deduped)
		dst = binary.AppendUvarint(dst, x.Extra.FalseMatches)
		dst = binary.AppendUvarint(dst, x.Extra.ListEvictions)
	case *thesaurus.Snapshot:
		dst = append(dst, extraThesaurus)
		dst = appendThesaurusSnapshot(dst, x)
	default:
		// A design snapshot the codec does not know cannot be persisted
		// faithfully; encoding it would decode to silently wrong results.
		panic(fmt.Sprintf("artifact: unencodable extra snapshot %T (extend the run-output codec and bump RunOutputVersion)", x))
	}
	return dst
}

func appendThesaurusSnapshot(dst []byte, s *thesaurus.Snapshot) []byte {
	c := &s.Cfg
	dst = binary.AppendUvarint(dst, uint64(c.TagEntries))
	dst = binary.AppendUvarint(dst, uint64(c.TagWays))
	dst = binary.AppendUvarint(dst, uint64(c.DataSets))
	dst = binary.AppendUvarint(dst, uint64(c.SegmentsPerSet))
	dst = binary.AppendUvarint(dst, uint64(c.LSH.Bits))
	dst = binary.AppendUvarint(dst, uint64(c.LSH.NonZeros))
	dst = binary.AppendUvarint(dst, c.LSH.Seed)
	dst = binary.AppendUvarint(dst, uint64(c.BaseCacheSets))
	dst = binary.AppendUvarint(dst, uint64(c.BaseCacheWays))
	dst = binary.AppendUvarint(dst, uint64(c.VictimCandidates))
	dst = binary.AppendUvarint(dst, c.Seed)
	dst = binary.AppendUvarint(dst, uint64(c.DiffSeriesWindow))
	dst = appendBool(dst, c.BaseCachePlainLRU)
	dst = appendBool(dst, c.IntraLineFallback)
	dst = binary.AppendUvarint(dst, uint64(c.AdaptiveEpoch))
	dst = binary.AppendUvarint(dst, uint64(c.WriteBufferDepth))

	e := &s.Extra
	dst = binary.AppendUvarint(dst, e.Insertions)
	dst = binary.AppendUvarint(dst, e.Reencodes)
	dst = binary.AppendUvarint(dst, e.Placements)
	dst = binary.AppendUvarint(dst, uint64(len(e.ByFormat)))
	for _, v := range e.ByFormat {
		dst = binary.AppendUvarint(dst, v)
	}
	dst = binary.AppendUvarint(dst, e.Compressible)
	dst = binary.AppendUvarint(dst, e.RawDueToBaseMiss)
	dst = binary.AppendUvarint(dst, e.DiffBytesSum)
	dst = binary.AppendUvarint(dst, e.DiffCount)
	dst = binary.AppendUvarint(dst, e.DataEvictions)

	dst = binary.AppendUvarint(dst, s.Adaptive.Epochs)
	dst = binary.AppendUvarint(dst, s.Adaptive.DisabledEpochs)
	dst = binary.AppendUvarint(dst, s.Adaptive.DisabledPlacements)

	dst = appendBool(dst, s.DiffSeries != nil)
	dst = binary.AppendUvarint(dst, uint64(len(s.DiffSeries)))
	for _, f := range s.DiffSeries {
		dst = appendF64(dst, f)
	}

	dst = binary.AppendUvarint(dst, s.BaseCache.ReadPath.Hits)
	dst = binary.AppendUvarint(dst, s.BaseCache.ReadPath.Total)
	dst = binary.AppendUvarint(dst, s.BaseCache.InsertPath.Hits)
	dst = binary.AppendUvarint(dst, s.BaseCache.InsertPath.Total)
	dst = binary.AppendUvarint(dst, uint64(s.BaseCache.Entries))
	dst = binary.AppendUvarint(dst, uint64(s.BaseCache.StorageBytes))
	dst = binary.AppendUvarint(dst, uint64(s.LiveClusters))
	return binary.AppendUvarint(dst, uint64(s.ValidClusters))
}

// runDecoder threads the payload slice through the field readers so every
// site gets bounds-checked without repeating the error plumbing. err
// sticks: after the first failure every later read returns zero values.
type runDecoder struct {
	data []byte
	err  error
}

func (d *runDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: run-output "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (d *runDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.fail("%s", what)
		return 0
	}
	d.data = d.data[n:]
	return v
}

// count reads a uvarint that sizes a following allocation, bounding it.
func (d *runDecoder) count(what string, max uint64) int {
	v := d.uvarint(what)
	if d.err == nil && v > max {
		d.fail("%s %d exceeds bound %d", what, v, max)
	}
	if d.err != nil {
		return 0
	}
	return int(v)
}

func (d *runDecoder) f64(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 8 {
		d.fail("%s", what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data))
	d.data = d.data[8:]
	return v
}

func (d *runDecoder) boolByte(what string) bool {
	if d.err != nil {
		return false
	}
	if len(d.data) < 1 || d.data[0] > 1 {
		d.fail("%s", what)
		return false
	}
	b := d.data[0] == 1
	d.data = d.data[1:]
	return b
}

func (d *runDecoder) str(what string) string {
	n := d.count(what+" length", 1<<20)
	if d.err != nil {
		return ""
	}
	if len(d.data) < n {
		d.fail("truncated %s", what)
		return ""
	}
	s := string(d.data[:n])
	d.data = d.data[n:]
	return s
}

func (d *runDecoder) llcStats(s *llc.Stats) {
	s.Reads = d.uvarint("stats reads")
	s.Writes = d.uvarint("stats writes")
	s.ReadHits = d.uvarint("stats read hits")
	s.WriteHits = d.uvarint("stats write hits")
	s.Fills = d.uvarint("stats fills")
	s.Writebacks = d.uvarint("stats writebacks")
}

// decodeRunOutput parses one run-output section, returning the remaining
// payload. A section written under another RunOutputVersion is
// ErrVersionSkew (a miss); everything else is ErrCorrupt.
func decodeRunOutput(data []byte) (*RunOutput, []byte, error) {
	d := &runDecoder{data: data}
	v := d.uvarint("section version")
	if d.err != nil {
		return nil, nil, d.err
	}
	if v != RunOutputVersion {
		return nil, nil, fmt.Errorf("%w: run-output section version %d, codec version %d",
			ErrVersionSkew, v, RunOutputVersion)
	}
	r := &RunOutput{}
	decodeResult(d, &r.Res)
	decodeStatsSnapshot(d, &r.Snap)
	for i := range r.ClusterFracs {
		r.ClusterFracs[i] = d.f64("cluster fraction")
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	return r, d.data, nil
}

func decodeResult(d *runDecoder, r *sim.Result) {
	r.Design = d.str("result design")
	r.Instructions = d.uvarint("result instructions")
	d.llcStats(&r.LLCStats)
	if n := d.count("dram counter count", uint64(len(r.DRAM.Counts))); d.err == nil && n != len(r.DRAM.Counts) {
		d.fail("dram counter count %d, codec has %d", n, len(r.DRAM.Counts))
	}
	for i := range r.DRAM.Counts {
		r.DRAM.Counts[i] = d.uvarint("dram counter")
	}
	r.MPKI = d.f64("mpki")
	r.IPC = d.f64("ipc")
	r.Cycles = d.f64("cycles")
	r.CompressionRatio = d.f64("compression ratio")
	r.Occupancy = d.f64("occupancy")
	r.AvgResidentLines = d.f64("avg resident lines")
	r.Samples = int(d.uvarint("samples"))
}

func decodeStatsSnapshot(d *runDecoder, s *llc.StatsSnapshot) {
	s.Design = d.str("snapshot design")
	d.llcStats(&s.Stats)
	if d.err != nil {
		return
	}
	if len(d.data) < 1 {
		d.fail("extra tag")
		return
	}
	tag := d.data[0]
	d.data = d.data[1:]
	switch tag {
	case extraNil:
	case extraUncomp:
		x := &uncomp.Snapshot{}
		present := d.boolByte("uncomp lines presence")
		n := d.count("uncomp line count", maxPool)
		if d.err == nil && !present && n != 0 {
			d.fail("absent uncomp lines with count %d", n)
		}
		if d.err == nil && uint64(len(d.data)) < uint64(n)*line.Size {
			d.fail("truncated uncomp lines")
		}
		if d.err == nil && present {
			x.Lines = make([]line.Line, n)
			for i := range x.Lines {
				copy(x.Lines[i][:], d.data[uint64(i)*line.Size:])
			}
			d.data = d.data[uint64(n)*line.Size:]
		}
		s.Extra = x
	case extraBDI:
		x := &bdicache.Snapshot{}
		x.Extra.Insertions = d.uvarint("bdi insertions")
		x.Extra.Compressed = d.uvarint("bdi compressed")
		x.Extra.SpaceEvictions = d.uvarint("bdi space evictions")
		present := d.boolByte("bdi bykind presence")
		n := d.count("bdi kind count", 256)
		if d.err == nil && !present && n != 0 {
			d.fail("absent bdi histogram with %d kinds", n)
		}
		if present && d.err == nil {
			x.Extra.ByKind = make(map[bdi.Kind]uint64, n)
			prev := -1
			for i := 0; i < n; i++ {
				k := int(d.uvarint("bdi kind"))
				c := d.uvarint("bdi kind count")
				if d.err != nil {
					return
				}
				// Strictly ascending kinds keep the encoding canonical
				// (decode∘encode identity) and the map keys unique; the
				// range bound is the Kind representation (uint8), not the
				// current enum, so new kinds don't invalidate old files.
				if k <= prev || k > 0xff {
					d.fail("bdi kind %d out of order or range", k)
					return
				}
				prev = k
				x.Extra.ByKind[bdi.Kind(k)] = c
			}
		}
		s.Extra = x
	case extraDedup:
		x := &dedupcache.Snapshot{}
		x.Extra.Insertions = d.uvarint("dedup insertions")
		x.Extra.Deduped = d.uvarint("dedup deduped")
		x.Extra.FalseMatches = d.uvarint("dedup false matches")
		x.Extra.ListEvictions = d.uvarint("dedup list evictions")
		s.Extra = x
	case extraThesaurus:
		s.Extra = decodeThesaurusSnapshot(d)
	default:
		d.fail("unknown extra tag %d", tag)
	}
}

func decodeThesaurusSnapshot(d *runDecoder) *thesaurus.Snapshot {
	s := &thesaurus.Snapshot{}
	c := &s.Cfg
	c.TagEntries = int(d.uvarint("cfg tag entries"))
	c.TagWays = int(d.uvarint("cfg tag ways"))
	c.DataSets = int(d.uvarint("cfg data sets"))
	c.SegmentsPerSet = int(d.uvarint("cfg segments per set"))
	c.LSH = lsh.Config{
		Bits:     int(d.uvarint("cfg lsh bits")),
		NonZeros: int(d.uvarint("cfg lsh nonzeros")),
		Seed:     d.uvarint("cfg lsh seed"),
	}
	c.BaseCacheSets = int(d.uvarint("cfg base sets"))
	c.BaseCacheWays = int(d.uvarint("cfg base ways"))
	c.VictimCandidates = int(d.uvarint("cfg victim candidates"))
	c.Seed = d.uvarint("cfg seed")
	c.DiffSeriesWindow = int(d.uvarint("cfg diff window"))
	c.BaseCachePlainLRU = d.boolByte("cfg plain lru")
	c.IntraLineFallback = d.boolByte("cfg intra fallback")
	c.AdaptiveEpoch = int(d.uvarint("cfg adaptive epoch"))
	c.WriteBufferDepth = int(d.uvarint("cfg write buffer depth"))

	e := &s.Extra
	e.Insertions = d.uvarint("extra insertions")
	e.Reencodes = d.uvarint("extra reencodes")
	e.Placements = d.uvarint("extra placements")
	if n := d.count("format count", uint64(len(e.ByFormat))); d.err == nil && n != len(e.ByFormat) {
		d.fail("format count %d, codec has %d", n, diffenc.NumFormats)
	}
	for i := range e.ByFormat {
		e.ByFormat[i] = d.uvarint("format counter")
	}
	e.Compressible = d.uvarint("extra compressible")
	e.RawDueToBaseMiss = d.uvarint("extra raw due to base miss")
	e.DiffBytesSum = d.uvarint("extra diff bytes sum")
	e.DiffCount = d.uvarint("extra diff count")
	e.DataEvictions = d.uvarint("extra data evictions")

	s.Adaptive.Epochs = d.uvarint("adaptive epochs")
	s.Adaptive.DisabledEpochs = d.uvarint("adaptive disabled epochs")
	s.Adaptive.DisabledPlacements = d.uvarint("adaptive disabled placements")

	present := d.boolByte("diff series presence")
	n := d.count("diff series length", maxEvents)
	if d.err == nil && !present && n != 0 {
		d.fail("absent diff series with length %d", n)
	}
	if d.err == nil && uint64(len(d.data)) < uint64(n)*8 {
		d.fail("truncated diff series")
	}
	if present && d.err == nil {
		s.DiffSeries = make([]float64, n)
		for i := range s.DiffSeries {
			s.DiffSeries[i] = d.f64("diff series sample")
		}
	}

	s.BaseCache = thesaurus.BaseCacheSnapshot{
		ReadPath:     stats.Counter{Hits: d.uvarint("base read hits"), Total: d.uvarint("base read total")},
		InsertPath:   stats.Counter{Hits: d.uvarint("base insert hits"), Total: d.uvarint("base insert total")},
		Entries:      int(d.uvarint("base entries")),
		StorageBytes: int(d.uvarint("base storage bytes")),
	}
	s.LiveClusters = int(d.uvarint("live clusters"))
	s.ValidClusters = int(d.uvarint("valid clusters"))
	return s
}

// RunOutputEqual deep-compares two run outputs (the -cache-verify path
// and the property tests). Floats compare by bit pattern: the codec
// stores exact bits, so any drift is a real divergence.
func RunOutputEqual(a, b *RunOutput) bool {
	if !resultEqual(&a.Res, &b.Res) {
		return false
	}
	for i := range a.ClusterFracs {
		if math.Float64bits(a.ClusterFracs[i]) != math.Float64bits(b.ClusterFracs[i]) {
			return false
		}
	}
	return snapshotEqual(&a.Snap, &b.Snap)
}

func resultEqual(a, b *sim.Result) bool {
	return a.Design == b.Design && a.Instructions == b.Instructions &&
		a.LLCStats == b.LLCStats && a.DRAM == b.DRAM &&
		math.Float64bits(a.MPKI) == math.Float64bits(b.MPKI) &&
		math.Float64bits(a.IPC) == math.Float64bits(b.IPC) &&
		math.Float64bits(a.Cycles) == math.Float64bits(b.Cycles) &&
		math.Float64bits(a.CompressionRatio) == math.Float64bits(b.CompressionRatio) &&
		math.Float64bits(a.Occupancy) == math.Float64bits(b.Occupancy) &&
		math.Float64bits(a.AvgResidentLines) == math.Float64bits(b.AvgResidentLines) &&
		a.Samples == b.Samples
}

func snapshotEqual(a, b *llc.StatsSnapshot) bool {
	if a.Design != b.Design || a.Stats != b.Stats {
		return false
	}
	switch x := a.Extra.(type) {
	case nil:
		return b.Extra == nil
	case *uncomp.Snapshot:
		y, ok := b.Extra.(*uncomp.Snapshot)
		if !ok || (x.Lines == nil) != (y.Lines == nil) || len(x.Lines) != len(y.Lines) {
			return false
		}
		for i := range x.Lines {
			if x.Lines[i] != y.Lines[i] {
				return false
			}
		}
		return true
	case *bdicache.Snapshot:
		y, ok := b.Extra.(*bdicache.Snapshot)
		if !ok || x.Extra.Insertions != y.Extra.Insertions ||
			x.Extra.Compressed != y.Extra.Compressed ||
			x.Extra.SpaceEvictions != y.Extra.SpaceEvictions ||
			(x.Extra.ByKind == nil) != (y.Extra.ByKind == nil) ||
			len(x.Extra.ByKind) != len(y.Extra.ByKind) {
			return false
		}
		for k, v := range x.Extra.ByKind {
			if y.Extra.ByKind[k] != v {
				return false
			}
		}
		return true
	case *dedupcache.Snapshot:
		y, ok := b.Extra.(*dedupcache.Snapshot)
		return ok && x.Extra == y.Extra
	case *thesaurus.Snapshot:
		y, ok := b.Extra.(*thesaurus.Snapshot)
		if !ok || x.Cfg != y.Cfg || x.Extra != y.Extra || x.Adaptive != y.Adaptive ||
			x.BaseCache != y.BaseCache || x.LiveClusters != y.LiveClusters ||
			x.ValidClusters != y.ValidClusters ||
			(x.DiffSeries == nil) != (y.DiffSeries == nil) ||
			len(x.DiffSeries) != len(y.DiffSeries) {
			return false
		}
		for i := range x.DiffSeries {
			if math.Float64bits(x.DiffSeries[i]) != math.Float64bits(y.DiffSeries[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
