package artifact

import (
	"bytes"
	"testing"

	"repro/internal/memory"
)

// FuzzRecordedCodecRoundtrip feeds arbitrary bytes to the decoder: it must
// never panic or over-allocate, and anything it accepts must re-encode to
// the identical canonical bytes (decode∘encode is the identity on the
// image of Encode).
func FuzzRecordedCodecRoundtrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(nil, &File{Recorded: synthRecorded(1, 40)}))
	f.Add(Encode(nil, &File{Recorded: synthRecorded(2, 7), Image: synthImage(3, 9)}))
	f.Add(Encode(nil, &File{Image: synthImage(4, 1)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(nil, decoded)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted %d bytes but re-encoded to %d different bytes", len(data), len(re))
		}
		round, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoding of accepted input rejected: %v", err)
		}
		if (round.Recorded == nil) != (decoded.Recorded == nil) ||
			(round.Image == nil) != (decoded.Image == nil) {
			t.Fatal("section presence changed across roundtrip")
		}
		if round.Recorded != nil && !RecordedEqual(round.Recorded, decoded.Recorded) {
			t.Fatal("recording changed across roundtrip")
		}
		if round.Image != nil && !memory.PagesEqual(round.Image, decoded.Image) {
			t.Fatal("image changed across roundtrip")
		}
	})
}
