package artifact

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

func testCache(t *testing.T, maxBytes int64) *Cache {
	t.Helper()
	c, err := Open(t.TempDir(), maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheStoreLoad(t *testing.T) {
	c := testCache(t, 0)
	rec := synthRecorded(1, 400)
	if _, ok := c.LoadRecorded("k1"); ok {
		t.Fatal("hit on empty cache")
	}
	c.StoreRecorded("k1", rec)
	got, ok := c.LoadRecorded("k1")
	if !ok {
		t.Fatal("miss after store")
	}
	if !RecordedEqual(got, rec) {
		t.Fatal("loaded recording differs")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.BytesStored == 0 || st.BytesLoaded != st.BytesStored {
		t.Fatalf("byte accounting %+v", st)
	}
}

func TestCacheKeysIsolate(t *testing.T) {
	c := testCache(t, 0)
	a, b := synthRecorded(1, 30), synthRecorded(2, 30)
	c.StoreRecorded("a", a)
	c.StoreRecorded("b", b)
	got, ok := c.LoadRecorded("a")
	if !ok || !RecordedEqual(got, a) {
		t.Fatal("key a")
	}
	got, ok = c.LoadRecorded("b")
	if !ok || !RecordedEqual(got, b) {
		t.Fatal("key b")
	}
}

// TestCacheCorruptionRegenerates: a corrupt entry is a miss, the file is
// removed, and a subsequent store overwrites it cleanly.
func TestCacheCorruptionRegenerates(t *testing.T) {
	c := testCache(t, 0)
	rec := synthRecorded(3, 100)
	c.StoreRecorded("k", rec)
	path := c.path("k")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LoadRecorded("k"); ok {
		t.Fatal("corrupt entry returned as hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed")
	}
	if st := c.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt count %d", st.Corrupt)
	}
	calls := 0
	got, hit := c.LoadOrRecord("k", func() *sim.Recorded { calls++; return rec })
	if hit || calls != 1 {
		t.Fatalf("hit=%v calls=%d after corruption", hit, calls)
	}
	if !RecordedEqual(got, rec) {
		t.Fatal("regenerated recording differs")
	}
	if got, ok := c.LoadRecorded("k"); !ok || !RecordedEqual(got, rec) {
		t.Fatal("regeneration did not overwrite the corrupt entry")
	}
}

// TestCacheVersionSkewIsMiss: an artifact written by a different codec
// version is silently treated as absent.
func TestCacheVersionSkewIsMiss(t *testing.T) {
	c := testCache(t, 0)
	c.StoreRecorded("k", synthRecorded(4, 50))
	path := c.path("k")
	data, _ := os.ReadFile(path)
	data[4] = byte(Version + 7)
	patchCRC(data)
	os.WriteFile(path, data, 0o644)
	if _, ok := c.LoadRecorded("k"); ok {
		t.Fatal("version-skewed entry returned as hit")
	}
	if st := c.Stats(); st.Corrupt != 0 {
		t.Fatal("version skew counted as corruption")
	}
}

func TestCacheEviction(t *testing.T) {
	c := testCache(t, 0)
	rec := synthRecorded(5, 200)
	c.StoreRecorded("old", rec)
	size, _ := os.Stat(c.path("old"))
	// Budget for two entries, not three.
	c.maxBytes = size.Size()*2 + size.Size()/2
	past := time.Now().Add(-time.Hour)
	os.Chtimes(c.path("old"), past, past)
	c.StoreRecorded("mid", rec)
	c.StoreRecorded("new", rec)
	if _, err := os.Stat(c.path("old")); !os.IsNotExist(err) {
		t.Fatal("oldest entry not evicted")
	}
	for _, k := range []string{"mid", "new"} {
		if _, err := os.Stat(c.path(k)); err != nil {
			t.Fatalf("entry %q evicted: %v", k, err)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions %d", st.Evictions)
	}
	// A hit freshens recency: touch "mid", store another entry, and the
	// untouched "new" goes first.
	if _, ok := c.LoadRecorded("mid"); !ok {
		t.Fatal("mid missing")
	}
	old := time.Now().Add(-30 * time.Minute)
	os.Chtimes(c.path("new"), old, old)
	c.StoreRecorded("newer", rec)
	if _, err := os.Stat(c.path("new")); !os.IsNotExist(err) {
		t.Fatal("LRU did not evict the least recently used entry")
	}
	if _, err := os.Stat(c.path("mid")); err != nil {
		t.Fatal("recently hit entry evicted")
	}
}

// TestCacheConcurrentLoadOrRecord: many goroutines racing on one cold key
// all get equal recordings and the artifact lands intact. (In-process
// callers normally coalesce in harness; this exercises the lock-file path
// the way separate processes would.)
func TestCacheConcurrentLoadOrRecord(t *testing.T) {
	c := testCache(t, 0)
	rec := synthRecorded(6, 300)
	var calls atomic.Int32
	var wg sync.WaitGroup
	out := make([]*sim.Recorded, 8)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, _ := c.LoadOrRecord("k", func() *sim.Recorded {
				calls.Add(1)
				time.Sleep(10 * time.Millisecond)
				return rec
			})
			out[i] = got
		}(i)
	}
	wg.Wait()
	for i, got := range out {
		if got == nil || !RecordedEqual(got, rec) {
			t.Fatalf("caller %d got a wrong recording", i)
		}
	}
	// The lock serializes: at most one caller records while holding it;
	// late arrivals load its artifact.
	if n := calls.Load(); n < 1 || n > 2 {
		t.Fatalf("record ran %d times", n)
	}
	if got, ok := c.LoadRecorded("k"); !ok || !RecordedEqual(got, rec) {
		t.Fatal("artifact torn or missing after concurrent writers")
	}
	ents, _ := os.ReadDir(c.dir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") || strings.HasSuffix(e.Name(), ".lock") {
			t.Fatalf("stray file %q left behind", e.Name())
		}
	}
}

// TestCacheStaleLockBroken: a lock file abandoned by a crashed writer is
// broken after lockStale and the caller proceeds to record.
func TestCacheStaleLockBroken(t *testing.T) {
	c := testCache(t, 0)
	c.lockStale = 50 * time.Millisecond
	c.lockWait = 5 * time.Second
	if err := os.WriteFile(c.lock("k"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	os.Chtimes(c.lock("k"), old, old)
	rec := synthRecorded(7, 40)
	start := time.Now()
	got, hit := c.LoadOrRecord("k", func() *sim.Recorded { return rec })
	if hit || !RecordedEqual(got, rec) {
		t.Fatal("stale lock not broken")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("stale-lock break waited for the full deadline")
	}
	if _, ok := c.LoadRecorded("k"); !ok {
		t.Fatal("artifact not stored after breaking the stale lock")
	}
}

// TestCacheStaleLockFutureMtime: a crashed writer on a machine whose
// clock ran ahead leaves a lock whose mtime is in our future. Raw
// mtime-age staleness (time.Since(mtime) > lockStale) would never fire
// on it; the local monotonic observation window breaks it all the same.
func TestCacheStaleLockFutureMtime(t *testing.T) {
	c := testCache(t, 0)
	c.lockStale = 50 * time.Millisecond
	c.lockWait = 5 * time.Second
	if err := os.WriteFile(c.lock("k"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(time.Hour)
	os.Chtimes(c.lock("k"), future, future)
	rec := synthRecorded(12, 40)
	start := time.Now()
	got, hit := c.LoadOrRecord("k", func() *sim.Recorded { return rec })
	if hit || !RecordedEqual(got, rec) {
		t.Fatal("future-mtime stale lock not broken")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("future-mtime stale-lock break waited for the full deadline")
	}
	if _, ok := c.LoadRecorded("k"); !ok {
		t.Fatal("artifact not stored after breaking the future-mtime lock")
	}
}

// TestCacheRecreatedLockStartsFreshWindow: a lock removed and
// immediately recreated by a new live holder can land on the same mtime
// when the filesystem's timestamp granularity is coarse. Identity by
// (path, mtime) alone would let the new lock inherit the old
// observation window and be broken early; the random token the creator
// writes distinguishes the two incarnations, so the window restarts.
func TestCacheRecreatedLockStartsFreshWindow(t *testing.T) {
	c := testCache(t, 0)
	c.lockStale = 60 * time.Millisecond
	lock := c.lock("k")
	// A coarse-granularity mtime both incarnations will share.
	mt := time.Now().Add(-time.Minute).Truncate(time.Second)
	if err := os.WriteFile(lock, []byte("holder-1-token"), 0o644); err != nil {
		t.Fatal(err)
	}
	os.Chtimes(lock, mt, mt)
	if c.lockLooksStale(lock) {
		t.Fatal("first sighting reported stale")
	}
	time.Sleep(80 * time.Millisecond)
	if !c.lockLooksStale(lock) {
		t.Fatal("unchanged lock not stale after the observation window")
	}
	// The old holder releases; a new live holder recreates the lock with
	// fresh token content but — coarse timestamps — the identical mtime.
	if err := os.WriteFile(lock, []byte("holder-2-token"), 0o644); err != nil {
		t.Fatal(err)
	}
	os.Chtimes(lock, mt, mt)
	if c.lockLooksStale(lock) {
		t.Fatal("recreated lock inherited the previous observation window")
	}
	time.Sleep(80 * time.Millisecond)
	if !c.lockLooksStale(lock) {
		t.Fatal("recreated lock never went stale under its fresh window")
	}
}

// TestCacheLiveLockPastMtimeNotBroken: a live writer on a machine whose
// clock runs behind holds a lock whose mtime is deep in our past. Raw
// mtime-age staleness would break it immediately and let two writers
// race; the monotonic window instead requires the lock to sit unchanged
// under local observation, so a holder stamping progress (mtime changes)
// is never broken — the waiter degrades to compute-without-persist at
// lockWait exactly as for any slow holder.
func TestCacheLiveLockPastMtimeNotBroken(t *testing.T) {
	c := testCache(t, 0)
	c.lockStale = 150 * time.Millisecond
	c.lockWait = 500 * time.Millisecond
	if err := os.WriteFile(c.lock("k"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// The holder's skewed clock: every stamp lands a minute in our past,
	// yet each one changes the mtime, restarting the observation window.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		n := 0
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				n++
				past := time.Now().Add(-time.Minute + time.Duration(n)*time.Millisecond)
				os.Chtimes(c.lock("k"), past, past)
			}
		}
	}()
	rec := synthRecorded(13, 40)
	got, hit := c.LoadOrRecord("k", func() *sim.Recorded { return rec })
	close(stop)
	<-done
	if hit || !RecordedEqual(got, rec) {
		t.Fatal("waiter did not fall back to compute-without-persist")
	}
	if _, err := os.Stat(c.lock("k")); err != nil {
		t.Fatal("live lock with skewed-past mtime was broken")
	}
	if _, ok := c.LoadRecorded("k"); ok {
		t.Fatal("timed-out waiter persisted despite not holding the lock")
	}
	if st := c.Stats(); st.Stores != 0 {
		t.Fatalf("stores = %d, want 0 (compute-without-persist)", st.Stores)
	}
}

// TestCacheLockTimeout: when a live writer never finishes within
// lockWait, the caller computes without persisting and does not remove
// the holder's lock.
func TestCacheLockTimeout(t *testing.T) {
	c := testCache(t, 0)
	c.lockWait = 60 * time.Millisecond
	c.lockStale = time.Hour
	if err := os.WriteFile(c.lock("k"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rec := synthRecorded(8, 40)
	got, hit := c.LoadOrRecord("k", func() *sim.Recorded { return rec })
	if hit || !RecordedEqual(got, rec) {
		t.Fatal("timeout path did not compute")
	}
	if _, err := os.Stat(c.lock("k")); err != nil {
		t.Fatal("live lock removed by a timed-out waiter")
	}
	if _, ok := c.LoadRecorded("k"); ok {
		t.Fatal("timed-out waiter persisted despite not holding the lock")
	}
}

// TestCacheWaiterAdoptsWritersArtifact: a waiter blocked on the lock
// picks up the holder's artifact as a hit once it lands.
func TestCacheWaiterAdoptsWritersArtifact(t *testing.T) {
	c := testCache(t, 0)
	c.lockWait = 5 * time.Second
	rec := synthRecorded(9, 40)
	if err := os.WriteFile(c.lock("k"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		c.StoreRecorded("k", rec)
		os.Remove(c.lock("k"))
	}()
	got, hit := c.LoadOrRecord("k", func() *sim.Recorded {
		t.Error("waiter recorded instead of adopting")
		return rec
	})
	if !hit || !RecordedEqual(got, rec) {
		t.Fatal("waiter did not adopt the writer's artifact")
	}
}

func TestWriteAtomicLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	if err := writeAtomic(dir, filepath.Join(dir, "out"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 || ents[0].Name() != "out" {
		t.Fatalf("directory contents: %v", ents)
	}
}
