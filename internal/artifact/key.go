package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// RecordedKey derives the content address of a recording: the SHA-256 of
// every input sim.Record's output depends on — the codec version (so a
// format or semantics bump invalidates everything), the full profile
// descriptor, the private-level geometry that does the L1/L2 filtering,
// and the trace length. Timing/DRAM parameters and LLC configuration are
// deliberately excluded: they only affect replay, not the recording.
func RecordedKey(p workload.Profile, sys sim.SystemConfig, accesses int) string {
	buf := make([]byte, 0, 256)
	buf = append(buf, fmt.Sprintf("thesaurus-recorded-v%d\x00", Version)...)
	buf = p.AppendKey(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(sys.L1DSizeBytes))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(sys.L1DWays))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(sys.L2SizeBytes))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(sys.L2Ways))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(accesses))
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}
