package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// keyU64 appends fixed-width little-endian words to a key descriptor.
// Fixed width (not varint) keeps field boundaries unambiguous, the same
// discipline workload.Profile.AppendKey uses.
func keyU64(dst []byte, vs ...uint64) []byte {
	for _, v := range vs {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// keyString appends a length-prefixed string (self-delimiting, so
// adjacent strings cannot alias each other's bytes).
func keyString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(s)))
	return append(dst, s...)
}

func hashKey(buf []byte) string {
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}

// RecordedKey derives the content address of a recording: the SHA-256 of
// every input sim.Record's output depends on — the codec version (so a
// format or semantics bump invalidates everything), the full profile
// descriptor, the private-level geometry that does the L1/L2 filtering,
// and the trace length. Timing/DRAM parameters and LLC configuration are
// deliberately excluded: they only affect replay, not the recording.
func RecordedKey(p workload.Profile, sys sim.SystemConfig, accesses int) string {
	buf := make([]byte, 0, 256)
	buf = append(buf, fmt.Sprintf("thesaurus-recorded-v%d\x00", Version)...)
	buf = p.AppendKey(buf)
	buf = keyU64(buf, uint64(sys.L1DSizeBytes), uint64(sys.L1DWays),
		uint64(sys.L2SizeBytes), uint64(sys.L2Ways), uint64(accesses))
	return hashKey(buf)
}
