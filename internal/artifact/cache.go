package artifact

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Cache is a directory of content-addressed artifacts. All methods are
// safe for concurrent use from multiple goroutines and — via lock files —
// multiple processes sharing the directory.
//
// Failure policy: the cache is an accelerator, never a correctness
// dependency. Unreadable, torn, or corrupt entries are removed and
// reported as misses; write failures degrade to "compute without
// persisting". No method returns an error for cache trouble — only Open
// can fail, when the directory itself is unusable.
type Cache struct {
	dir      string
	maxBytes int64

	// lockWait bounds how long a process waits on another writer's lock
	// before recording without persisting; lockStale is the age past
	// which a lock file is presumed abandoned (crashed writer) and
	// broken. Overridable in tests.
	lockWait  time.Duration
	lockStale time.Duration

	// lockSeen tracks when this process first observed each lock file
	// (path → lockObservation). Staleness is measured on the local
	// monotonic clock from that first observation — never by comparing
	// the lock's mtime against our wall clock, which on a shared
	// filesystem mixes two machines' clocks and breaks live locks (or
	// preserves dead ones) under skew.
	lockSeen sync.Map

	hits        atomic.Uint64
	misses      atomic.Uint64
	stores      atomic.Uint64
	corrupt     atomic.Uint64
	evictions   atomic.Uint64
	touchFails  atomic.Uint64
	bytesLoaded atomic.Uint64
	bytesStored atomic.Uint64
}

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	Hits, Misses, Stores uint64
	Corrupt, Evictions   uint64
	// TouchFailures counts hits whose LRU mtime freshen failed. The hit
	// itself is unaffected, but an entry that cannot be freshened ages
	// toward eviction as if it were idle, so a persistently failing
	// touch (read-only cache dir, exotic filesystem) surfaces here
	// rather than as silent premature evictions.
	TouchFailures uint64
	BytesLoaded   uint64
	BytesStored   uint64
}

// Open creates (if needed) and returns the cache rooted at dir.
// maxBytes ≤ 0 disables eviction.
func Open(dir string, maxBytes int64) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open cache: %w", err)
	}
	return &Cache{
		dir:       dir,
		maxBytes:  maxBytes,
		lockWait:  2 * time.Minute,
		lockStale: 10 * time.Minute,
	}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Stores:        c.stores.Load(),
		Corrupt:       c.corrupt.Load(),
		Evictions:     c.evictions.Load(),
		TouchFailures: c.touchFails.Load(),
		BytesLoaded:   c.bytesLoaded.Load(),
		BytesStored:   c.bytesStored.Load(),
	}
}

func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".thsa") }
func (c *Cache) lock(key string) string { return filepath.Join(c.dir, key+".lock") }

// LoadRecorded returns the recording stored under key, or ok=false on any
// miss: absent, written by another codec version, or corrupt (corrupt
// entries are removed so the next store overwrites them cleanly). A hit
// freshens the entry's mtime, which is the LRU recency signal.
func (c *Cache) LoadRecorded(key string) (*sim.Recorded, bool) {
	rec, ok := c.loadRecorded(key)
	if !ok {
		c.misses.Add(1)
	}
	return rec, ok
}

// LoadRunOutput returns the run snapshot stored under key, with the same
// miss semantics as LoadRecorded. A run section written under another
// RunOutputVersion is version skew: a silent miss, never corruption.
func (c *Cache) LoadRunOutput(key string) (*RunOutput, bool) {
	r, ok := c.loadRun(key)
	if !ok {
		c.misses.Add(1)
	}
	return r, ok
}

// load is the typed loaders without the miss accounting: the
// loadOrCompute singleflight probes the same key several times per
// logical lookup (before the lock, under the lock, while polling another
// writer) and must count one hit or one miss total, not one per probe.
// has reports whether the decoded file carries the section the caller
// wants — a key never legitimately maps to a different section set, so
// a mismatch is treated exactly like corruption.
func (c *Cache) load(key string, has func(*File) bool) (*File, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	f, err := Decode(data)
	if err != nil || !has(f) {
		// Version skew is an honest miss; anything else is corruption.
		// Either way the entry is useless under this key: drop it so
		// regeneration overwrites rather than re-tripping forever.
		if !errors.Is(err, ErrVersionSkew) {
			c.corrupt.Add(1)
		}
		os.Remove(c.path(key))
		return nil, false
	}
	// The mtime freshen is the LRU recency signal, not part of the hit:
	// if it fails the caller still gets its data and the entry simply
	// keeps aging. Count the failure so an unwritable cache shows up in
	// the stderr stats instead of as mysterious evictions.
	now := time.Now()
	if err := os.Chtimes(c.path(key), now, now); err != nil {
		c.touchFails.Add(1)
	}
	c.hits.Add(1)
	c.bytesLoaded.Add(uint64(len(data)))
	return f, true
}

func (c *Cache) loadRecorded(key string) (*sim.Recorded, bool) {
	f, ok := c.load(key, func(f *File) bool { return f.Recorded != nil })
	if !ok {
		return nil, false
	}
	return f.Recorded, true
}

func (c *Cache) loadRun(key string) (*RunOutput, bool) {
	f, ok := c.load(key, func(f *File) bool { return f.Run != nil })
	if !ok {
		return nil, false
	}
	return f.Run, true
}

// StoreRecorded persists rec under key: encode, write to a temp file in
// the same directory, fsync, rename. A crash at any point leaves either
// the old entry or a stray temp file — never a torn artifact (torn temp
// files also fail the checksum if ever read). Failures are swallowed:
// the caller already has the recording.
func (c *Cache) StoreRecorded(key string, rec *sim.Recorded) {
	c.store(key, &File{Recorded: rec})
}

// StoreRunOutput persists a whole run snapshot under key with the same
// crash-safety and failure policy as StoreRecorded.
func (c *Cache) StoreRunOutput(key string, r *RunOutput) {
	c.store(key, &File{Run: r})
}

// StoreFile persists an arbitrary artifact (cmd/tracegen writes
// recording+image pairs) under key.
func (c *Cache) StoreFile(key string, f *File) {
	c.store(key, f)
}

// RawRunOutput returns the encoded bytes of the run artifact stored
// under key, validated end to end (checksum intact, run section
// present), for streaming to another process. It deliberately bypasses
// the hit/miss counters and the LRU touch: it re-reads an entry the
// caller just produced, not a cache lookup in its own right.
func (c *Cache) RawRunOutput(key string) ([]byte, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	f, err := Decode(data)
	if err != nil || f.Run == nil {
		return nil, false
	}
	return data, true
}

// StoreRawRunOutput verifies data as a complete artifact carrying a run
// section — the CRC-checked decode is the trust boundary for bytes that
// crossed a network — and persists it under key with the usual
// crash-safe write. Unlike the in-process store path, failures surface:
// the caller streamed these bytes precisely because it cannot recompute
// them locally without paying the run again.
func (c *Cache) StoreRawRunOutput(key string, data []byte) error {
	f, err := Decode(data)
	if err != nil {
		return fmt.Errorf("artifact: streamed entry: %w", err)
	}
	if f.Run == nil {
		return fmt.Errorf("artifact: streamed entry carries no run section")
	}
	if err := writeAtomic(c.dir, c.path(key), data); err != nil {
		return fmt.Errorf("artifact: store streamed entry: %w", err)
	}
	c.stores.Add(1)
	c.bytesStored.Add(uint64(len(data)))
	c.evict()
	return nil
}

func (c *Cache) store(key string, f *File) {
	data := Encode(make([]byte, 0, 1<<20), f)
	if err := writeAtomic(c.dir, c.path(key), data); err != nil {
		return
	}
	c.stores.Add(1)
	c.bytesStored.Add(uint64(len(data)))
	c.evict()
}

// writeAtomic writes data to path via a same-directory temp file + rename.
func writeAtomic(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadOrRecord returns the recording under key, loading it from disk when
// present and otherwise computing it with record and persisting the
// result. Concurrent callers across processes coalesce through a lock
// file: one records while the rest poll for its artifact, breaking the
// lock only when it looks abandoned. hit reports whether the recording
// came from disk.
func (c *Cache) LoadOrRecord(key string, record func() *sim.Recorded) (rec *sim.Recorded, hit bool) {
	rec, hit, _ = loadOrCompute(c, key, (*Cache).loadRecorded,
		func() (*sim.Recorded, error) { return record(), nil },
		(*Cache).StoreRecorded)
	return rec, hit
}

// LoadOrRunOutput returns the run snapshot under key, computing and
// persisting it on a miss under the same cross-process singleflight as
// LoadOrRecord. Unlike recording, a run can fail (the compute closure
// surfaces replay errors); on error nothing is stored and the lock is
// released so another process can try.
func (c *Cache) LoadOrRunOutput(key string, compute func() (*RunOutput, error)) (*RunOutput, bool, error) {
	return loadOrCompute(c, key, (*Cache).loadRun, compute, (*Cache).StoreRunOutput)
}

// loadOrCompute is the cross-process singleflight shared by LoadOrRecord
// and LoadOrRunOutput: probe, then race for the key's lock file; the
// winner re-probes (another process may have stored meanwhile), computes,
// and persists; losers poll for the winner's artifact, breaking the lock
// only when it looks abandoned (crashed writer) and falling back to
// compute-without-persist when the holder outlives lockWait. Exactly one
// hit or miss is counted per call.
func loadOrCompute[T any](c *Cache, key string,
	load func(*Cache, string) (T, bool),
	compute func() (T, error),
	persist func(*Cache, string, T)) (v T, hit bool, err error) {
	if v, ok := load(c, key); ok {
		return v, true, nil
	}
	deadline := time.Now().Add(c.lockWait)
	for {
		lf, lerr := os.OpenFile(c.lock(key), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if lerr == nil {
			// Stamp the lock with a random token: observers fold it into
			// the lock's identity, so a lock removed and immediately
			// recreated by a new holder can never inherit an old
			// observation window — even on filesystems whose timestamp
			// granularity gives both incarnations the same mtime.
			var tok [16]byte
			if _, err := rand.Read(tok[:]); err == nil {
				lf.Write(tok[:])
			}
			lf.Close()
			defer os.Remove(c.lock(key))
			// Another process may have finished while we raced for the
			// lock; its artifact is fresher than anything we'd recompute.
			if v, ok := load(c, key); ok {
				return v, true, nil
			}
			c.misses.Add(1)
			if v, err = compute(); err != nil {
				return v, false, err
			}
			persist(c, key, v)
			return v, false, nil
		}
		// Lock held: wait for the holder's artifact instead of
		// duplicating its work.
		if c.lockLooksStale(c.lock(key)) {
			os.Remove(c.lock(key)) // abandoned by a crashed writer
			c.lockSeen.Delete(c.lock(key))
			continue
		}
		if time.Now().After(deadline) {
			// The holder is stuck or much slower than us. Computing
			// without persisting keeps this process correct and leaves
			// the store to whoever holds the lock.
			c.misses.Add(1)
			v, err = compute()
			return v, false, err
		}
		time.Sleep(25 * time.Millisecond)
		if v, ok := load(c, key); ok {
			return v, true, nil
		}
	}
}

// lockObservation is one lock file's local sighting: when this process
// first saw it (monotonic-bearing local time), the mtime it had then,
// and the random token its creator wrote into it. mtime and token
// together are the lock's identity — the token distinguishes two lock
// incarnations that coarse filesystem timestamps give the same mtime.
type lockObservation struct {
	firstSeen time.Time
	mtime     time.Time
	token     string
}

// lockLooksStale reports whether the lock at path has been observed by
// this process, unchanged, for longer than lockStale. The clock is the
// local monotonic one: on a shared filesystem the lock's mtime was
// written by another machine's clock, so `time.Since(mtime)` would break
// a live writer's lock when that clock runs behind ours — or never break
// a crashed writer's lock when it runs ahead. Any identity change — an
// mtime change (the holder stamping progress) or a token change (the
// lock removed and recreated by a new holder, even at an identical
// mtime) — restarts the observation window; neither is ever compared
// against our wall clock. The cost of skew immunity is that staleness
// accrues from first local sight rather than from the crash itself —
// bounded, and always the safe direction (waiting longer, never
// breaking a live lock early).
func (c *Cache) lockLooksStale(path string) bool {
	st, err := os.Stat(path)
	if err != nil {
		// Gone (or unreadable): nothing to break; forget the sighting so
		// a future lock at this path starts a fresh window.
		c.lockSeen.Delete(path)
		return false
	}
	// Read errors (the lock vanished between stat and read) yield an
	// empty token, which simply restarts the window — the safe direction.
	tok, _ := os.ReadFile(path)
	now := time.Now()
	if v, ok := c.lockSeen.Load(path); ok {
		obs := v.(lockObservation)
		if obs.mtime.Equal(st.ModTime()) && obs.token == string(tok) {
			return now.Sub(obs.firstSeen) > c.lockStale
		}
	}
	c.lockSeen.Store(path, lockObservation{firstSeen: now, mtime: st.ModTime(), token: string(tok)})
	return false
}

// evict removes least-recently-used artifacts (oldest mtime first) until
// the directory fits the byte budget. Lock and temp files are ignored.
func (c *Cache) evict() {
	if c.maxBytes <= 0 {
		return
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	var total int64
	filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".thsa" {
			return nil
		}
		if info, err := d.Info(); err == nil {
			entries = append(entries, entry{path, info.Size(), info.ModTime()})
			total += info.Size()
		}
		return nil
	})
	if total <= c.maxBytes {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path
	})
	for _, e := range entries {
		if total <= c.maxBytes {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			c.evictions.Add(1)
		}
	}
}
