package artifact

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Cache is a directory of content-addressed artifacts. All methods are
// safe for concurrent use from multiple goroutines and — via lock files —
// multiple processes sharing the directory.
//
// Failure policy: the cache is an accelerator, never a correctness
// dependency. Unreadable, torn, or corrupt entries are removed and
// reported as misses; write failures degrade to "compute without
// persisting". No method returns an error for cache trouble — only Open
// can fail, when the directory itself is unusable.
type Cache struct {
	dir      string
	maxBytes int64

	// lockWait bounds how long a process waits on another writer's lock
	// before recording without persisting; lockStale is the age past
	// which a lock file is presumed abandoned (crashed writer) and
	// broken. Overridable in tests.
	lockWait  time.Duration
	lockStale time.Duration

	hits        atomic.Uint64
	misses      atomic.Uint64
	stores      atomic.Uint64
	corrupt     atomic.Uint64
	evictions   atomic.Uint64
	bytesLoaded atomic.Uint64
	bytesStored atomic.Uint64
}

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	Hits, Misses, Stores uint64
	Corrupt, Evictions   uint64
	BytesLoaded          uint64
	BytesStored          uint64
}

// Open creates (if needed) and returns the cache rooted at dir.
// maxBytes ≤ 0 disables eviction.
func Open(dir string, maxBytes int64) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: open cache: %w", err)
	}
	return &Cache{
		dir:       dir,
		maxBytes:  maxBytes,
		lockWait:  2 * time.Minute,
		lockStale: 10 * time.Minute,
	}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Stores:      c.stores.Load(),
		Corrupt:     c.corrupt.Load(),
		Evictions:   c.evictions.Load(),
		BytesLoaded: c.bytesLoaded.Load(),
		BytesStored: c.bytesStored.Load(),
	}
}

func (c *Cache) path(key string) string { return filepath.Join(c.dir, key+".thsa") }
func (c *Cache) lock(key string) string { return filepath.Join(c.dir, key+".lock") }

// LoadRecorded returns the recording stored under key, or ok=false on any
// miss: absent, written by another codec version, or corrupt (corrupt
// entries are removed so the next store overwrites them cleanly). A hit
// freshens the entry's mtime, which is the LRU recency signal.
func (c *Cache) LoadRecorded(key string) (*sim.Recorded, bool) {
	rec, ok := c.load(key)
	if !ok {
		c.misses.Add(1)
	}
	return rec, ok
}

// load is LoadRecorded without the miss accounting: LoadOrRecord probes
// the same key several times per logical lookup (before the lock, under
// the lock, while polling another writer) and must count one hit or one
// miss total, not one per probe.
func (c *Cache) load(key string) (*sim.Recorded, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	f, err := Decode(data)
	if err != nil || f.Recorded == nil {
		// Version skew is an honest miss; anything else is corruption.
		// Either way the entry is useless under this key: drop it so
		// regeneration overwrites rather than re-tripping forever.
		if !errors.Is(err, ErrVersionSkew) {
			c.corrupt.Add(1)
		}
		os.Remove(c.path(key))
		return nil, false
	}
	now := time.Now()
	os.Chtimes(c.path(key), now, now)
	c.hits.Add(1)
	c.bytesLoaded.Add(uint64(len(data)))
	return f.Recorded, true
}

// StoreRecorded persists rec under key: encode, write to a temp file in
// the same directory, fsync, rename. A crash at any point leaves either
// the old entry or a stray temp file — never a torn artifact (torn temp
// files also fail the checksum if ever read). Failures are swallowed:
// the caller already has the recording.
func (c *Cache) StoreRecorded(key string, rec *sim.Recorded) {
	c.store(key, &File{Recorded: rec})
}

// StoreFile persists an arbitrary artifact (cmd/tracegen writes
// recording+image pairs) under key.
func (c *Cache) StoreFile(key string, f *File) {
	c.store(key, f)
}

func (c *Cache) store(key string, f *File) {
	data := Encode(make([]byte, 0, 1<<20), f)
	if err := writeAtomic(c.dir, c.path(key), data); err != nil {
		return
	}
	c.stores.Add(1)
	c.bytesStored.Add(uint64(len(data)))
	c.evict()
}

// writeAtomic writes data to path via a same-directory temp file + rename.
func writeAtomic(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadOrRecord returns the recording under key, loading it from disk when
// present and otherwise computing it with record and persisting the
// result. Concurrent callers across processes coalesce through a lock
// file: one records while the rest poll for its artifact, breaking the
// lock only when it looks abandoned. hit reports whether the recording
// came from disk.
func (c *Cache) LoadOrRecord(key string, record func() *sim.Recorded) (rec *sim.Recorded, hit bool) {
	if rec, ok := c.load(key); ok {
		return rec, true
	}
	deadline := time.Now().Add(c.lockWait)
	for {
		lf, err := os.OpenFile(c.lock(key), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			lf.Close()
			defer os.Remove(c.lock(key))
			// Another process may have finished while we raced for the
			// lock; its artifact is fresher than anything we'd recompute.
			if rec, ok := c.load(key); ok {
				return rec, true
			}
			c.misses.Add(1)
			rec = record()
			c.StoreRecorded(key, rec)
			return rec, false
		}
		// Lock held: wait for the holder's artifact instead of
		// duplicating its work.
		if st, serr := os.Stat(c.lock(key)); serr == nil && time.Since(st.ModTime()) > c.lockStale {
			os.Remove(c.lock(key)) // abandoned by a crashed writer
			continue
		}
		if time.Now().After(deadline) {
			// The holder is stuck or much slower than us. Recording
			// without persisting keeps this process correct and leaves
			// the store to whoever holds the lock.
			c.misses.Add(1)
			return record(), false
		}
		time.Sleep(25 * time.Millisecond)
		if rec, ok := c.load(key); ok {
			return rec, true
		}
	}
}

// evict removes least-recently-used artifacts (oldest mtime first) until
// the directory fits the byte budget. Lock and temp files are ignored.
func (c *Cache) evict() {
	if c.maxBytes <= 0 {
		return
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	var total int64
	filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".thsa" {
			return nil
		}
		if info, err := d.Info(); err == nil {
			entries = append(entries, entry{path, info.Size(), info.ModTime()})
			total += info.Size()
		}
		return nil
	})
	if total <= c.maxBytes {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path
	})
	for _, e := range entries {
		if total <= c.maxBytes {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			c.evictions.Add(1)
		}
	}
}
