package artifact

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"repro/internal/line"
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// patchCRC recomputes a mutated artifact's checksum so only the intended
// field differs from a genuine encoding.
func patchCRC(data []byte) {
	sum := crc32.Checksum(data[:len(data)-8], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(data[len(data)-8:], sum)
}

// synthRecorded builds a recording with the statistical texture the codec
// exploits: clustered addresses (small deltas, some large jumps), heavy
// line-content reuse, and occasional zero gaps.
func synthRecorded(seed uint64, n int) *sim.Recorded {
	rng := xrand.New(seed)
	pool := make([]line.Line, 1+rng.Intn(40))
	for i := range pool {
		for j := 0; j < line.Size; j += 8 {
			pool[i][j] = byte(rng.Uint32())
		}
	}
	r := &sim.Recorded{
		Instructions: rng.Uint64n(1 << 40),
		CoreAccesses: rng.Uint64n(1 << 30),
		L1Hits:       rng.Uint64n(1 << 30),
		L2Hits:       rng.Uint64n(1 << 20),
	}
	addr := line.Addr(rng.Uint64n(1 << 40)).LineAddr()
	seen := map[line.Addr]bool{}
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			addr += line.Size
		case 1:
			addr -= line.Addr(line.Size * (1 + rng.Intn(8)))
		case 2:
			addr = line.Addr(rng.Uint64n(1 << 44)).LineAddr()
		case 3: // repeat addr
		}
		seen[addr] = true
		r.Events = append(r.Events, sim.Event{
			Kind:   sim.EventKind(rng.Intn(2)),
			Addr:   addr,
			Data:   pool[rng.Intn(len(pool))],
			Instrs: rng.Uint64n(1 << uint(rng.Intn(20))),
		})
	}
	r.UniqueLines = len(seen)
	return r
}

func synthImage(seed uint64, n int) *memory.Store {
	rng := xrand.New(seed)
	s := memory.NewStore()
	addr := line.Addr(0x4000)
	for i := 0; i < n; i++ {
		var l line.Line
		l[0], l[1] = byte(i), byte(i>>8)
		s.Poke(addr, l)
		addr += line.Addr(line.Size * (1 + rng.Intn(100)))
	}
	return s
}

func TestCodecRoundtrip(t *testing.T) {
	cases := []struct {
		name string
		f    File
	}{
		{"empty recorded", File{Recorded: &sim.Recorded{}}},
		{"recorded only", File{Recorded: synthRecorded(1, 500)}},
		{"recorded+image", File{Recorded: synthRecorded(2, 200), Image: synthImage(3, 300)}},
		{"image only", File{Image: synthImage(4, 50)}},
		{"empty image", File{Image: memory.NewStore()}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			enc := Encode(nil, &c.f)
			got, err := Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			if (got.Recorded == nil) != (c.f.Recorded == nil) {
				t.Fatal("recorded presence changed")
			}
			if got.Recorded != nil && !RecordedEqual(got.Recorded, c.f.Recorded) {
				t.Fatal("decoded recording differs")
			}
			if (got.Image == nil) != (c.f.Image == nil) {
				t.Fatal("image presence changed")
			}
			if got.Image != nil && !memory.PagesEqual(got.Image, c.f.Image) {
				t.Fatal("decoded image differs")
			}
			// Canonical: re-encoding the decoded file is byte-identical.
			if string(Encode(nil, got)) != string(enc) {
				t.Fatal("re-encoding differs")
			}
		})
	}
}

// TestCodecRoundtripRealRecording exercises the codec against an actual
// sim.Record output rather than synthetic events.
func TestCodecRoundtripRealRecording(t *testing.T) {
	p, err := workload.ProfileByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	g := p.Generate(20000)
	rec := sim.Record(g.Stream, sim.DefaultSystem(), g.Image)
	enc := Encode(nil, &File{Recorded: rec, Image: g.Image})
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !RecordedEqual(got.Recorded, rec) {
		t.Fatal("decoded recording differs from sim.Record output")
	}
	if !memory.PagesEqual(got.Image, g.Image) {
		t.Fatal("decoded image differs from generated image")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	enc := Encode(nil, &File{Recorded: synthRecorded(5, 300), Image: synthImage(6, 40)})
	for cut := 0; cut < len(enc); cut += 131 {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		} else if errors.Is(err, ErrVersionSkew) {
			t.Fatalf("truncation to %d bytes reported as version skew", cut)
		}
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	enc := Encode(nil, &File{Recorded: synthRecorded(7, 200)})
	// Flip one bit at a spread of positions covering header, payload and
	// footer; every flip must be rejected, and none may panic.
	for pos := 0; pos < len(enc); pos += 61 {
		for bit := 0; bit < 8; bit += 3 {
			mut := append([]byte(nil), enc...)
			mut[pos] ^= 1 << bit
			if _, err := Decode(mut); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", pos, bit)
			}
		}
	}
}

func TestDecodeVersionSkew(t *testing.T) {
	enc := Encode(nil, &File{Recorded: synthRecorded(8, 50)})
	// Rewrite the version field and fix up the checksum so the file is
	// structurally valid — exactly what a future codec would produce.
	mut := append([]byte(nil), enc...)
	mut[4] = byte(Version + 1)
	patchCRC(mut)
	_, err := Decode(mut)
	if !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("version-bumped artifact: got %v, want ErrVersionSkew", err)
	}
}

func BenchmarkEncodeRecorded(b *testing.B) {
	rec := synthRecorded(9, 10000)
	buf := Encode(nil, &File{Recorded: rec})
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], &File{Recorded: rec})
	}
}

func BenchmarkDecodeRecorded(b *testing.B) {
	enc := Encode(nil, &File{Recorded: synthRecorded(10, 10000)})
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
