package netq

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/workq"
)

func testTasks(n int) []workq.Task {
	tasks := make([]workq.Task, n)
	for i := range tasks {
		tasks[i] = workq.Task{ID: i, Profile: fmt.Sprintf("p%d", i), Design: "D", Accesses: 100}
	}
	return tasks
}

func newTestServer(t *testing.T, tasks []workq.Task, opt ServerOptions) *Server {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", tasks, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func dialTest(t *testing.T, srv *Server, opt ClientOptions) *Client {
	t.Helper()
	if opt.IOTimeout == 0 {
		opt.IOTimeout = 5 * time.Second
	}
	cli, err := Dial(srv.Addr(), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cli.Close)
	return cli
}

// FuzzFrameRoundTrip: any payload that fits MaxFrame survives the
// write/read cycle byte-for-byte, including empty and binary payloads.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{})
	f.Add([]byte(`{"type":"claim"}`))
	f.Add([]byte{0, 1, 2, 0xFF, 0xFE})
	f.Add(bytes.Repeat([]byte{0xAB}, 1<<16))
	f.Fuzz(func(t *testing.T, payload []byte) {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip: wrote %d bytes, read %d different bytes", len(payload), len(got))
		}
	})
}

// TestFrameLengthBound: an oversized length prefix is rejected before any
// allocation; an oversized payload is refused at write time.
func TestFrameLengthBound(t *testing.T) {
	var hdr bytes.Buffer
	hdr.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // ~4GiB claimed
	if _, err := ReadFrame(bufio.NewReader(&hdr)); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	big := make([]byte, MaxFrame+1)
	if err := WriteFrame(&bytes.Buffer{}, big); err == nil {
		t.Fatal("oversized payload written")
	}
}

// TestVersionSkewRejectedByServer: a worker speaking another protocol
// version gets an explicit reject frame, not a silent misparse.
func TestVersionSkewRejectedByServer(t *testing.T) {
	srv := newTestServer(t, testTasks(1), ServerOptions{})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeMsg(conn, &message{Type: msgHello, Proto: ProtoVersion + 1}); err != nil {
		t.Fatal(err)
	}
	m, err := readMsg(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != msgReject {
		t.Fatalf("reply = %q, want %q", m.Type, msgReject)
	}
	if !strings.Contains(m.Err, "version skew") {
		t.Fatalf("reject reason %q does not name the skew", m.Err)
	}
}

// TestVersionSkewPermanentForClient: a rejected handshake surfaces from
// Dial as a version-skew error and is never retried (a retry loop against
// an incompatible coordinator would spin forever).
func TestVersionSkewPermanentForClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			readMsg(bufio.NewReader(conn))
			writeMsg(conn, &message{Type: msgReject, Err: "netq: protocol version skew: test"})
			conn.Close()
		}
	}()
	_, err = Dial(ln.Addr().String(), ClientOptions{IOTimeout: 2 * time.Second})
	if !errors.Is(err, errVersionSkew) {
		t.Fatalf("Dial error = %v, want version skew", err)
	}
}

// TestClaimDrainFinish: the plain lifecycle — every task claimed exactly
// once, finished, and the queue reports drained to late claimants.
func TestClaimDrainFinish(t *testing.T) {
	srv := newTestServer(t, testTasks(3), ServerOptions{})
	cli := dialTest(t, srv, ClientOptions{})
	seen := map[int]bool{}
	for {
		task, ok, err := cli.Claim()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if seen[task.ID] {
			t.Fatalf("task %d claimed twice", task.ID)
		}
		seen[task.ID] = true
		if err := cli.Finish(task, workq.Outcome{}); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("claimed %d tasks, want 3", len(seen))
	}
	p := srv.Progress()
	if p.Done != 3 || p.Failed != 0 || !p.Terminal() {
		t.Fatalf("progress = %+v", p)
	}
}

// TestFailedOutcomeRecorded: a task error travels to the coordinator and
// lands in the failure list with its task ID.
func TestFailedOutcomeRecorded(t *testing.T) {
	srv := newTestServer(t, testTasks(1), ServerOptions{})
	cli := dialTest(t, srv, ClientOptions{})
	task, ok, err := cli.Claim()
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	if err := cli.Finish(task, workq.Outcome{Err: errors.New("boom")}); err != nil {
		t.Fatal(err)
	}
	sum := srv.Wait(time.Second, nil)
	if sum.Failed != 1 || len(sum.Failures) != 1 || !strings.Contains(sum.Failures[0], "boom") {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestLeaseExpiryExactlyOnce is the reclaim race mirror of the spool
// crash-injection suite: worker A claims and goes silent, the lease
// expires and worker B re-claims; both eventually finish, and completion
// stays exactly-once — one done task, the late duplicate acknowledged
// and dropped.
func TestLeaseExpiryExactlyOnce(t *testing.T) {
	srv := newTestServer(t, testTasks(1), ServerOptions{Lease: 100 * time.Millisecond})
	a := dialTest(t, srv, ClientOptions{})
	b := dialTest(t, srv, ClientOptions{})

	taskA, ok, err := a.Claim()
	if err != nil || !ok {
		t.Fatalf("claim A: ok=%v err=%v", ok, err)
	}
	// A goes silent (no heartbeat): the lease expires and the scanner
	// re-queues the task for B.
	deadline := time.Now().Add(5 * time.Second)
	var taskB workq.Task
	for {
		m, err := b.do(&message{Type: msgClaim}, true)
		if err != nil {
			t.Fatal(err)
		}
		if m.Type == msgTask {
			taskB = *m.Task
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired lease never re-queued")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if taskB.ID != taskA.ID {
		t.Fatalf("B claimed task %d, want %d", taskB.ID, taskA.ID)
	}
	// Both finish: first one in wins, the other is acked as a duplicate.
	if err := b.Finish(taskB, workq.Outcome{}); err != nil {
		t.Fatal(err)
	}
	if err := a.Finish(taskA, workq.Outcome{}); err != nil {
		t.Fatal(err)
	}
	p := srv.Progress()
	if p.Done != 1 || p.Failed != 0 {
		t.Fatalf("progress = %+v, want exactly one done", p)
	}
	if p.Requeues == 0 || p.DupResults == 0 {
		t.Fatalf("progress = %+v, want a requeue and a duplicate recorded", p)
	}
}

// TestHeartbeatKeepsLease: a slow worker that heartbeats holds its lease
// well past the lease duration.
func TestHeartbeatKeepsLease(t *testing.T) {
	srv := newTestServer(t, testTasks(1), ServerOptions{Lease: 100 * time.Millisecond})
	cli := dialTest(t, srv, ClientOptions{})
	task, ok, err := cli.Claim()
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	for i := 0; i < 8; i++ {
		time.Sleep(50 * time.Millisecond)
		if err := cli.Heartbeat(task); err != nil {
			t.Fatal(err)
		}
	}
	if p := srv.Progress(); p.Requeues != 0 || p.Leased != 1 {
		t.Fatalf("progress = %+v, heartbeated lease was re-queued", p)
	}
	if err := cli.Finish(task, workq.Outcome{}); err != nil {
		t.Fatal(err)
	}
}

// TestConnDropRequeuesImmediately is the kill-mid-task fault injection:
// a worker whose connection dies loses its leases to the queue without
// waiting for lease expiry, and a survivor completes them.
func TestConnDropRequeuesImmediately(t *testing.T) {
	srv := newTestServer(t, testTasks(2), ServerOptions{Lease: time.Hour})
	victim := dialTest(t, srv, ClientOptions{})
	if _, ok, err := victim.Claim(); err != nil || !ok {
		t.Fatalf("victim claim failed: ok=%v err=%v", ok, err)
	}
	victim.Close() // kill -9: the TCP reset is the death signal

	deadline := time.Now().Add(5 * time.Second)
	for srv.Progress().Requeues == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dropped connection's lease never re-queued")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The lease duration (an hour) clearly did not gate the requeue.
	survivor := dialTest(t, srv, ClientOptions{})
	done := 0
	for {
		task, ok, err := survivor.Claim()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if err := survivor.Finish(task, workq.Outcome{}); err != nil {
			t.Fatal(err)
		}
		done++
	}
	if done != 2 {
		t.Fatalf("survivor finished %d tasks, want both", done)
	}
	if p := srv.Progress(); !p.Terminal() || p.Done != 2 {
		t.Fatalf("progress = %+v", p)
	}
}

// TestWorkerReconnect: a worker survives the coordinator dropping its
// connection mid-stream — the next operation redials transparently.
func TestWorkerReconnect(t *testing.T) {
	srv := newTestServer(t, testTasks(2), ServerOptions{})
	cli := dialTest(t, srv, ClientOptions{MaxAttempts: 5})
	task, ok, err := cli.Claim()
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	// Sever the transport under the client; Finish must redial. The
	// server re-queued the lease on the drop, so the ack is a duplicate
	// path only if another claim raced — here it simply records done.
	cli.mu.Lock()
	cli.conn.Close()
	cli.mu.Unlock()
	if err := cli.Finish(task, workq.Outcome{}); err != nil {
		t.Fatal(err)
	}
	if p := srv.Progress(); p.Done != 1 {
		t.Fatalf("progress = %+v after reconnect finish", p)
	}
}

// TestSharedDirProbe: a worker whose cache directory is the
// coordinator's sees the session token and negotiates key-only results;
// a worker with its own directory must stream artifacts.
func TestSharedDirProbe(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, testTasks(1), ServerOptions{CacheDir: dir})
	shared := dialTest(t, srv, ClientOptions{CacheDir: dir})
	if !shared.SharedCache() || shared.StreamArtifacts() {
		t.Fatal("same cache dir not detected as shared")
	}
	foreign := dialTest(t, srv, ClientOptions{CacheDir: t.TempDir()})
	if foreign.SharedCache() || !foreign.StreamArtifacts() {
		t.Fatal("distinct cache dir detected as shared")
	}
	noDir := dialTest(t, srv, ClientOptions{})
	if noDir.SharedCache() {
		t.Fatal("empty cache dir detected as shared")
	}
	// The token file is scoped to the session and removed at Close.
	matches, _ := filepath.Glob(filepath.Join(dir, ".netq-session-*"))
	if len(matches) != 1 {
		t.Fatalf("session token files = %v, want exactly one", matches)
	}
	srv.Close()
	if _, err := os.Stat(matches[0]); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("session token file survived Close")
	}
}

// TestArtifactStreaming: a streamed result reaches StoreArtifact keyed
// and byte-identical, and the task completes; a coordinator without a
// store hook fails the task instead of silently dropping the bytes.
func TestArtifactStreaming(t *testing.T) {
	var mu sync.Mutex
	stored := map[string][]byte{}
	srv := newTestServer(t, testTasks(1), ServerOptions{
		StoreArtifact: func(key string, data []byte) error {
			mu.Lock()
			defer mu.Unlock()
			stored[key] = append([]byte(nil), data...)
			return nil
		},
	})
	cli := dialTest(t, srv, ClientOptions{})
	task, ok, err := cli.Claim()
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	payload := bytes.Repeat([]byte{0x42, 0x00, 0x7F}, 1000)
	if err := cli.Finish(task, workq.Outcome{Key: "ab12cd34", Artifact: payload}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := stored["ab12cd34"]
	mu.Unlock()
	if !bytes.Equal(got, payload) {
		t.Fatalf("stored %d bytes, want the %d-byte payload intact", len(got), len(payload))
	}
	if p := srv.Progress(); p.Done != 1 {
		t.Fatalf("progress = %+v", p)
	}

	refuser := newTestServer(t, testTasks(1), ServerOptions{})
	rcli := dialTest(t, refuser, ClientOptions{})
	rtask, ok, err := rcli.Claim()
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	if err := rcli.Finish(rtask, workq.Outcome{Key: "ab", Artifact: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	sum := refuser.Wait(time.Second, nil)
	if sum.Failed != 1 {
		t.Fatalf("summary = %+v, want the streamed result refused as a failure", sum)
	}
}

// TestStoreKeyDerivedCoordinatorSide: with TaskKey configured the
// coordinator names streamed artifacts from its own task table; the
// worker-supplied wire key — here a path-traversal attempt — is ignored.
func TestStoreKeyDerivedCoordinatorSide(t *testing.T) {
	var mu sync.Mutex
	stored := map[string][]byte{}
	srv := newTestServer(t, testTasks(1), ServerOptions{
		StoreArtifact: func(key string, data []byte) error {
			mu.Lock()
			defer mu.Unlock()
			stored[key] = append([]byte(nil), data...)
			return nil
		},
		TaskKey: func(task workq.Task) (string, error) {
			return fmt.Sprintf("derived-%d", task.ID), nil
		},
	})
	cli := dialTest(t, srv, ClientOptions{})
	task, ok, err := cli.Claim()
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	payload := []byte{0xDE, 0xAD}
	if err := cli.Finish(task, workq.Outcome{Key: "../../etc/poison", Artifact: payload}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(stored["derived-0"], payload) {
		t.Fatalf("stored keys = %v, want the artifact under the derived key", stored)
	}
	if len(stored) != 1 {
		t.Fatalf("stored keys = %v, want exactly the derived key (wire key ignored)", stored)
	}
}

// TestMalformedWireKeyRejected: without TaskKey the wire key is used,
// but only when it has the bare content-hash shape — a traversal path
// never reaches StoreArtifact; the task fails and recomputes in-process.
func TestMalformedWireKeyRejected(t *testing.T) {
	called := false
	srv := newTestServer(t, testTasks(1), ServerOptions{
		StoreArtifact: func(key string, data []byte) error {
			called = true
			return nil
		},
	})
	cli := dialTest(t, srv, ClientOptions{})
	task, ok, err := cli.Claim()
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	if err := cli.Finish(task, workq.Outcome{Key: "../../escape", Artifact: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("StoreArtifact called with a malformed key")
	}
	sum := srv.Wait(time.Second, nil)
	if sum.Failed != 1 || !strings.Contains(sum.Failures[0], "malformed artifact key") {
		t.Fatalf("summary = %+v, want the malformed key refused as a failure", sum)
	}
}

// TestUnknownTaskResultIgnored: a result for a task ID the queue never
// issued must not touch the terminal maps — done/failed sizes drive
// Terminal, so a bogus ID could otherwise end the campaign early.
func TestUnknownTaskResultIgnored(t *testing.T) {
	srv := newTestServer(t, testTasks(2), ServerOptions{})
	cli := dialTest(t, srv, ClientOptions{})
	for _, id := range []int{99, 100} {
		if err := cli.Finish(workq.Task{ID: id}, workq.Outcome{}); err != nil {
			t.Fatal(err)
		}
	}
	if p := srv.Progress(); p.Done != 0 || p.Failed != 0 || p.Terminal() {
		t.Fatalf("progress = %+v after bogus results, want untouched", p)
	}
}

// TestStaleFailureDoesNotPinTask: a failure from a worker whose lease
// was already reclaimed is dropped, so the current holder's later
// success lands as the task's one terminal state instead of being
// dup-dropped against a premature failure.
func TestStaleFailureDoesNotPinTask(t *testing.T) {
	srv := newTestServer(t, testTasks(1), ServerOptions{Lease: 100 * time.Millisecond})
	a := dialTest(t, srv, ClientOptions{})
	b := dialTest(t, srv, ClientOptions{})
	taskA, ok, err := a.Claim()
	if err != nil || !ok {
		t.Fatalf("claim A: ok=%v err=%v", ok, err)
	}
	// A goes silent until the lease expires and B re-claims the task.
	deadline := time.Now().Add(5 * time.Second)
	var taskB workq.Task
	for {
		m, err := b.do(&message{Type: msgClaim}, true)
		if err != nil {
			t.Fatal(err)
		}
		if m.Type == msgTask {
			taskB = *m.Task
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired lease never re-queued")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// A's stale failure arrives while B is computing: dropped, not final.
	if err := a.Finish(taskA, workq.Outcome{Err: errors.New("stale boom")}); err != nil {
		t.Fatal(err)
	}
	if p := srv.Progress(); p.Failed != 0 {
		t.Fatalf("progress = %+v, stale failure marked the task failed", p)
	}
	if err := b.Finish(taskB, workq.Outcome{}); err != nil {
		t.Fatal(err)
	}
	if p := srv.Progress(); p.Done != 1 || p.Failed != 0 {
		t.Fatalf("progress = %+v, want the holder's success recorded", p)
	}
}

// TestSuccessOverwritesFailure: the reclaim race in the other order —
// the current holder fails (recorded), then the original worker's
// success arrives. The content-addressed success supersedes the failure
// so the coordinator skips an unnecessary in-process recompute.
func TestSuccessOverwritesFailure(t *testing.T) {
	srv := newTestServer(t, testTasks(1), ServerOptions{Lease: 100 * time.Millisecond})
	a := dialTest(t, srv, ClientOptions{})
	b := dialTest(t, srv, ClientOptions{})
	taskA, ok, err := a.Claim()
	if err != nil || !ok {
		t.Fatalf("claim A: ok=%v err=%v", ok, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var taskB workq.Task
	for {
		m, err := b.do(&message{Type: msgClaim}, true)
		if err != nil {
			t.Fatal(err)
		}
		if m.Type == msgTask {
			taskB = *m.Task
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired lease never re-queued")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// B holds the lease now, so its failure is recorded...
	if err := b.Finish(taskB, workq.Outcome{Err: errors.New("boom")}); err != nil {
		t.Fatal(err)
	}
	if p := srv.Progress(); p.Failed != 1 {
		t.Fatalf("progress = %+v, holder failure not recorded", p)
	}
	// ...until A's success arrives and supersedes it.
	if err := a.Finish(taskA, workq.Outcome{}); err != nil {
		t.Fatal(err)
	}
	if p := srv.Progress(); p.Done != 1 || p.Failed != 0 {
		t.Fatalf("progress = %+v, want the success to supersede the failure", p)
	}
}

// TestOversizeArtifactDegradesToKeyOnly: an artifact whose base64 form
// cannot fit one frame is dropped before the send — the completion
// still lands (key-only; the coordinator recomputes that cell) and the
// drain loop survives instead of dying on a permanent WriteFrame error.
func TestOversizeArtifactDegradesToKeyOnly(t *testing.T) {
	var mu sync.Mutex
	storedKeys := []string{}
	srv := newTestServer(t, testTasks(1), ServerOptions{
		StoreArtifact: func(key string, data []byte) error {
			mu.Lock()
			defer mu.Unlock()
			storedKeys = append(storedKeys, key)
			return nil
		},
	})
	cli := dialTest(t, srv, ClientOptions{})
	task, ok, err := cli.Claim()
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	// Base64 expands 4/3×, so this cannot fit MaxFrame after encoding.
	huge := make([]byte, MaxFrame-1<<20)
	if err := cli.Finish(task, workq.Outcome{Key: "abcd1234", Artifact: huge}); err != nil {
		t.Fatalf("oversize artifact aborted Finish: %v", err)
	}
	if p := srv.Progress(); p.Done != 1 || p.Failed != 0 {
		t.Fatalf("progress = %+v, want a key-only completion", p)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(storedKeys) != 0 {
		t.Fatalf("stored %v, want no artifact stored for the degraded completion", storedKeys)
	}
}

// TestGoodbyeStatsMerged: each departing worker's cache counters land in
// the coordinator's merged summary exactly once.
func TestGoodbyeStatsMerged(t *testing.T) {
	srv := newTestServer(t, testTasks(2), ServerOptions{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(srv.Addr(), ClientOptions{
				IOTimeout:  5 * time.Second,
				FinalStats: func() workq.CacheStats { return workq.CacheStats{Hits: 2, Stores: 1} },
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			if err := workq.Drain(cli, time.Second, func(workq.Task) workq.Outcome {
				return workq.Outcome{}
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	sum := srv.Wait(time.Second, nil)
	if sum.StatsWorkers != 2 || sum.Stats.Hits != 4 || sum.Stats.Stores != 2 {
		t.Fatalf("summary stats = %+v from %d workers", sum.Stats, sum.StatsWorkers)
	}
}

// TestWaitDegradesWithoutWorkers: with tasks outstanding and no worker
// connected for the grace window, Wait returns instead of blocking
// forever, flagging the degrade so the coordinator recomputes in-process.
func TestWaitDegradesWithoutWorkers(t *testing.T) {
	srv := newTestServer(t, testTasks(1), ServerOptions{})
	start := time.Now()
	sum := srv.Wait(300*time.Millisecond, nil)
	if !sum.Degraded {
		t.Fatal("Wait did not flag the degrade")
	}
	if d := time.Since(start); d < 300*time.Millisecond || d > 5*time.Second {
		t.Fatalf("degrade after %v, want just past the grace window", d)
	}
}
