package netq

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/workq"
)

// ClientOptions configures a worker-side connection.
type ClientOptions struct {
	// CacheDir is the worker's artifact cache directory, probed against
	// the coordinator's session token to detect a shared filesystem.
	// Empty means never shared (always stream artifacts).
	CacheDir string

	// IOTimeout bounds each dial, send, and reply read. 0 means 30s.
	IOTimeout time.Duration

	// MaxAttempts bounds consecutive reconnect attempts for one
	// operation before the queue reports a transport error. 0 means 8
	// (≈13s of exponential backoff).
	MaxAttempts int

	// FinalStats, when non-nil, is called once at drain time; the result
	// rides the goodbye frame so the coordinator can print one merged
	// stats line instead of N interleaved ones.
	FinalStats func() workq.CacheStats
}

// Client is the worker-side queue handle. It implements workq.Queue and
// workq.ArtifactStreamer, and survives coordinator restarts and network
// blips by redialing with exponential backoff plus jitter; operations are
// idempotent on the server (duplicate results are dropped), so a retry
// after a half-delivered frame is safe.
//
// A Client is safe for the workq.Drain usage pattern (heartbeats
// concurrent with the claim/finish sequence); all operations serialize on
// one internal mutex.
type Client struct {
	addr string
	opt  ClientOptions

	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	shared  bool
	backoff int // consecutive failed connects (jittered exponential)
}

// errVersionSkew marks a handshake rejection: permanent, never retried.
var errVersionSkew = errors.New("netq: protocol version skew")

// Dial connects to the coordinator at addr and completes the handshake.
func Dial(addr string, opt ClientOptions) (*Client, error) {
	if opt.IOTimeout <= 0 {
		opt.IOTimeout = 30 * time.Second
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 8
	}
	c := &Client{addr: addr, opt: opt}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// SharedCache reports whether the handshake proved the coordinator's
// cache directory and ours are the same filesystem location.
func (c *Client) SharedCache() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shared
}

// StreamArtifacts implements workq.ArtifactStreamer: outcomes must carry
// artifact bytes exactly when the cache is not shared.
func (c *Client) StreamArtifacts() bool { return !c.SharedCache() }

// Close drops the connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropLocked()
}

func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}

// connectLocked dials and handshakes. Caller holds c.mu.
func (c *Client) connectLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.opt.IOTimeout)
	if err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	conn.SetDeadline(time.Now().Add(c.opt.IOTimeout))
	if err := writeMsg(conn, &message{Type: msgHello, Proto: ProtoVersion}); err != nil {
		conn.Close()
		return err
	}
	m, err := readMsg(br)
	if err != nil {
		conn.Close()
		return err
	}
	switch m.Type {
	case msgReject:
		conn.Close()
		return fmt.Errorf("%w: %s", errVersionSkew, m.Err)
	case msgWelcome:
		// Proceed.
	default:
		conn.Close()
		return fmt.Errorf("netq: handshake: unexpected %q", m.Type)
	}
	c.conn, c.br = conn, br
	c.shared = c.probeSharedDir(m.TokenFile, m.Token)
	return nil
}

// probeSharedDir reports whether the coordinator's session token file is
// visible — with identical content — under our own cache directory,
// which proves both -cache-dir flags name one filesystem location.
func (c *Client) probeSharedDir(tokenFile, token string) bool {
	if c.opt.CacheDir == "" || tokenFile == "" || token == "" {
		return false
	}
	data, err := os.ReadFile(filepath.Join(c.opt.CacheDir, filepath.Base(tokenFile)))
	return err == nil && bytes.Equal(data, []byte(token))
}

// sleepBackoff sleeps the jittered exponential backoff for the n-th
// consecutive failure: base 100ms doubling to a 3s cap, scaled by a
// 50–150% jitter factor so a fleet of workers restarting together does
// not reconnect in lockstep. The jitter source is the wall clock's
// nanoseconds — scheduling, not simulation, so determinism is not owed.
func sleepBackoff(n int) {
	d := 100 * time.Millisecond << uint(min(n, 5))
	if d > 3*time.Second {
		d = 3 * time.Second
	}
	jitter := 50 + time.Now().UnixNano()%101 // 50..150
	time.Sleep(d * time.Duration(jitter) / 100)
}

// do sends m and, when wantReply, reads one response — reconnecting and
// retrying on any transport error up to MaxAttempts times. Version skew
// is permanent and returned immediately.
func (c *Client) do(m *message, wantReply bool) (*message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if c.conn == nil {
			if err := c.connectLocked(); err != nil {
				if errors.Is(err, errVersionSkew) {
					return nil, err
				}
				lastErr = err
				c.backoff++
				c.mu.Unlock()
				sleepBackoff(c.backoff)
				c.mu.Lock()
				continue
			}
			c.backoff = 0
		}
		c.conn.SetDeadline(time.Now().Add(c.opt.IOTimeout))
		err := writeMsg(c.conn, m)
		if errors.Is(err, ErrFrameTooLarge) {
			// Nothing entered the socket (WriteFrame refuses before
			// writing), so the connection is intact — and a retry of the
			// same message can only fail identically. Permanent.
			return nil, err
		}
		if err == nil && !wantReply {
			return nil, nil
		}
		var reply *message
		if err == nil {
			reply, err = readMsg(c.br)
		}
		if err == nil {
			return reply, nil
		}
		lastErr = err
		c.dropLocked()
	}
	return nil, fmt.Errorf("netq: %s failed after %d attempts: %w", m.Type, c.opt.MaxAttempts, lastErr)
}

// Claim implements workq.Queue: ask for a task, polling through wait
// responses until the coordinator hands one out or declares the queue
// drained. At drain it also delivers the goodbye/stats frame — the last
// thing the coordinator hears from this worker.
func (c *Client) Claim() (workq.Task, bool, error) {
	for {
		m, err := c.do(&message{Type: msgClaim}, true)
		if err != nil {
			return workq.Task{}, false, err
		}
		switch m.Type {
		case msgTask:
			if m.Task == nil {
				return workq.Task{}, false, fmt.Errorf("netq: task frame without task")
			}
			return *m.Task, true, nil
		case msgWait:
			wait := time.Duration(m.WaitMS) * time.Millisecond
			if wait <= 0 {
				wait = 200 * time.Millisecond
			}
			time.Sleep(wait)
		case msgDrained:
			c.sayGoodbye()
			return workq.Task{}, false, nil
		default:
			return workq.Task{}, false, fmt.Errorf("netq: claim: unexpected %q", m.Type)
		}
	}
}

// sayGoodbye reports final cache stats, then drops the connection so the
// coordinator sees a crisp departure: the goodbye frame arrives in-order
// before the disconnect, which is what lets Wait's linger window collect
// every cleanly-departing worker's stats. Fire-and-forget (the merged
// stats line is a convenience, not a correctness dependency).
func (c *Client) sayGoodbye() {
	g := &message{Type: msgGoodbye}
	if c.opt.FinalStats != nil {
		st := c.opt.FinalStats()
		g.Stats = &st
	}
	c.do(g, false)
	c.mu.Lock()
	c.dropLocked()
	c.mu.Unlock()
}

// Heartbeat implements workq.Queue; fire-and-forget, failures surface as
// lease expiry at worst.
func (c *Client) Heartbeat(t workq.Task) error {
	_, err := c.do(&message{Type: msgHeartbeat, ID: t.ID}, false)
	return err
}

// resultEnvelope overestimates every non-artifact byte of a result
// frame: the JSON field names, the task ID, the key, and the error
// string. Anything this loose bound plus the base64-expanded artifact
// leaves under MaxFrame is guaranteed to frame.
const resultEnvelope = 4096

// Finish implements workq.Queue: deliver the outcome and wait for the
// coordinator's ack so a crash after Finish can never lose a result
// silently. An ack carrying an error means the coordinator could not
// record the completion (it will recompute); the worker moves on.
func (c *Client) Finish(t workq.Task, out workq.Outcome) error {
	m := &message{Type: msgResult, ID: t.ID, Key: out.Key, Artifact: out.Artifact}
	if out.Err != nil {
		m.Err = out.Err.Error()
	}
	// An artifact too large to frame would fail WriteFrame permanently no
	// matter how often do retries, aborting the whole drain loop. Degrade
	// to a key-only completion instead: the completion still counts, and
	// the coordinator recomputes that one cell in-process, exactly as when
	// the worker had nothing to stream.
	if len(m.Artifact) > 0 && base64.StdEncoding.EncodedLen(len(m.Artifact))+resultEnvelope > MaxFrame {
		m.Artifact = nil
	}
	reply, err := c.do(m, true)
	if err != nil {
		return err
	}
	if reply.Type != msgAck {
		return fmt.Errorf("netq: finish: unexpected %q", reply.Type)
	}
	return nil
}
