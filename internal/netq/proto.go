// Package netq is the TCP transport of the campaign work queue: a small
// stdlib-only protocol that replaces the spool directory when workers run
// on machines that do not share a filesystem with the coordinator.
//
// The coordinator (cmd/thesaurus -serve) listens on a TCP port, holds the
// campaign's task list, and hands out time-leased tasks; workers
// (cmd/thesaurus -worker -connect) pull tasks, heartbeat their leases
// while computing, and report outcomes. Results travel one of two ways,
// negotiated per connection at handshake:
//
//   - shared cache directory: the worker proves it sees the coordinator's
//     -cache-dir (it reads back a session token file the coordinator
//     wrote there) and completions carry only the RunOutput content key —
//     the artifact is already in the shared cache.
//   - artifact streaming: without that proof, the worker streams the raw
//     CRC-checked artifact bytes in the completion frame and the
//     coordinator verifies and stores them into its own cache, so report
//     assembly stays byte-identical-by-construction either way.
//
// Robustness: a lease that expires (no heartbeat) or whose connection
// drops re-queues its task for the surviving workers; workers reconnect
// with exponential backoff plus jitter; and when the last worker dies the
// coordinator degrades to in-process recompute exactly like the spool
// transport — the queue partitions work, the content-addressed cache is
// the result channel, so a transport failure costs redundant work, never
// correctness.
//
// Wire format: length-prefixed JSON frames — a 4-byte big-endian payload
// length, then the JSON-encoded message. The first exchange is a
// versioned handshake (hello/welcome); a proto-version mismatch is
// rejected explicitly, never silently misparsed.
//
// The listener is unauthenticated: bind it to loopback or a trusted
// network only. The server is defensive about worker input — frames are
// length-capped, results for unknown task IDs are ignored, and streamed
// artifacts are stored under coordinator-derived keys (ServerOptions.
// TaskKey), never under the worker-reported name — but it cannot tell a
// wrong result from a right one; see docs/distribution.md's trust model.
package netq

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/workq"
)

// ProtoVersion is the wire-protocol version exchanged in the handshake.
// Any incompatible change to the frame layout or message schema bumps it;
// both sides reject a mismatch with an explicit error.
const ProtoVersion = 1

// MaxFrame bounds one frame's payload. Streamed run artifacts are the
// largest legitimate payload (a few MiB); the bound exists so a corrupt
// or hostile length prefix cannot make a reader allocate gigabytes.
const MaxFrame = 64 << 20

// Message types. The protocol is strict request/response from the
// worker's side: hello→welcome|reject, claim→task|wait|drained,
// result→ack; heartbeat and goodbye are fire-and-forget.
const (
	msgHello     = "hello"     // worker → coordinator: version + identity
	msgWelcome   = "welcome"   // coordinator → worker: accepted; shared-dir probe
	msgReject    = "reject"    // coordinator → worker: handshake refused (version skew)
	msgClaim     = "claim"     // worker → coordinator: give me a task
	msgTask      = "task"      // coordinator → worker: leased task
	msgWait      = "wait"      // coordinator → worker: nothing claimable now, poll again
	msgDrained   = "drained"   // coordinator → worker: every task is terminal, disconnect
	msgHeartbeat = "heartbeat" // worker → coordinator: lease extension
	msgResult    = "result"    // worker → coordinator: task outcome (+ streamed artifact)
	msgAck       = "ack"       // coordinator → worker: result recorded
	msgGoodbye   = "goodbye"   // worker → coordinator: final cache stats
)

// message is the one frame schema; Type selects which fields are
// meaningful. JSON keeps the schema debuggable and versionable; the
// artifact payload rides as base64 inside it, which is fine at the
// once-per-task frequency results travel.
type message struct {
	Type  string `json:"type"`
	Proto int    `json:"proto,omitempty"`

	// Welcome: the shared-cache-dir probe. The coordinator writes Token
	// into TokenFile under its own cache directory; a worker that reads
	// the same bytes from TokenFile under *its* cache directory has
	// proven both point at one filesystem location, so completions can
	// carry bare content keys instead of streamed artifacts.
	TokenFile string `json:"token_file,omitempty"`
	Token     string `json:"token,omitempty"`

	Task *workq.Task `json:"task,omitempty"`

	// ID names the task a heartbeat/result/ack refers to. IDs are
	// non-negative; -1 marks "no task" where 0 would be ambiguous.
	ID int `json:"id,omitempty"`

	// Err carries a task failure (result), a refusal reason (reject), or
	// a recording problem the coordinator wants the worker to know (ack).
	Err string `json:"err,omitempty"`

	// Key is the RunOutput content address of a completed task; Artifact
	// is the raw encoded artifact — present only in streaming mode.
	Key      string `json:"key,omitempty"`
	Artifact []byte `json:"artifact,omitempty"`

	Stats *workq.CacheStats `json:"stats,omitempty"`

	// WaitMS tells a waiting worker when to poll again.
	WaitMS int `json:"wait_ms,omitempty"`
}

// ErrFrameTooLarge marks a payload no frame can carry. It is permanent
// for a given message — retrying the identical send fails identically —
// so transports treat it as non-retryable.
var ErrFrameTooLarge = errors.New("netq: frame exceeds MaxFrame")

// WriteFrame writes one length-prefixed frame. An oversized payload is
// refused before any byte reaches w, so the stream stays framed.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: payload %d bytes (max %d)", ErrFrameTooLarge, len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, rejecting payloads larger
// than MaxFrame before allocating anything.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("netq: frame length %d exceeds MaxFrame %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// writeMsg frames one message.
func writeMsg(w io.Writer, m *message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("netq: marshal %s: %w", m.Type, err)
	}
	return WriteFrame(w, data)
}

// readMsg reads and decodes one message.
func readMsg(r *bufio.Reader) (*message, error) {
	data, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	var m message
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("netq: decode frame: %w", err)
	}
	if m.Type == "" {
		return nil, fmt.Errorf("netq: frame without message type")
	}
	return &m, nil
}
