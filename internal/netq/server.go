package netq

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/workq"
)

// ServerOptions configures a coordinator-side queue.
type ServerOptions struct {
	// Lease is how long a claimed task may go without a heartbeat before
	// it re-queues for another worker. It must comfortably exceed one
	// heartbeat interval (workq.HeartbeatEvery); 0 means 2 minutes, the
	// same deadline the spool transport uses for claim reclamation.
	Lease time.Duration

	// IdleTimeout bounds how long a connected worker may stay silent
	// (a live worker polls or heartbeats far more often). On expiry the
	// connection is dropped and its leases re-queue, so a partitioned
	// worker cannot hold the coordinator's worker count up forever.
	// 0 means max(2×Lease, 30s).
	IdleTimeout time.Duration

	// CacheDir, when non-empty, enables the shared-cache-dir probe: a
	// random session token is written there and offered to every worker
	// in the welcome message. Workers that read it back skip artifact
	// streaming.
	CacheDir string

	// StoreArtifact persists one streamed, already-framed artifact under
	// its content key (the caller verifies/decodes; netq does not know
	// the codec). nil refuses streamed results — completions then carry
	// keys only, which is correct when every worker shares the cache.
	StoreArtifact func(key string, data []byte) error

	// TaskKey derives, coordinator-side, the content key a streamed
	// artifact for task t must be stored under. The listener is
	// unauthenticated, so the key a worker reports on the wire is
	// untrusted input: when TaskKey is set it is ignored entirely for
	// storage — a hostile or confused worker can neither traverse paths
	// (StoreArtifact implementations join the key into a directory) nor
	// poison a different task's cache entry. nil falls back to the wire
	// key, which is then required to look like a bare content hash
	// (lowercase hex) before it gets anywhere near a filename.
	TaskKey func(t workq.Task) (string, error)
}

// Progress is a point-in-time snapshot of the queue's state.
type Progress struct {
	Total, Done, Failed, Leased, Pending int
	// Workers is how many workers are connected right now; WorkersEver
	// counts distinct connections that completed the handshake.
	Workers, WorkersEver int
	// Requeues counts tasks returned to the queue by lease expiry or
	// connection loss; DupResults counts results for already-terminal
	// tasks (harmless: the first completion won).
	Requeues, DupResults int
}

// Terminal reports whether every task reached a terminal state.
func (p Progress) Terminal() bool { return p.Done+p.Failed == p.Total }

// Summary is what Wait returns to the coordinator.
type Summary struct {
	Progress
	// Failures are the failed tasks' error strings, in task-ID order.
	Failures []string
	// Stats is the sum of every reporting worker's cache counters;
	// StatsWorkers is how many workers reported.
	Stats        workq.CacheStats
	StatsWorkers int
	// Degraded is set when Wait gave up waiting for workers (none
	// connected for the grace window with tasks still pending).
	Degraded bool
}

// lease is one outstanding claim.
type lease struct {
	task     workq.Task
	deadline time.Time
	conn     net.Conn
}

// Server owns the coordinator side of the queue: the listener, the task
// states, and the lease table. All exported methods are safe for
// concurrent use.
type Server struct {
	opt       ServerOptions
	ln        net.Listener
	token     string
	tokenFile string // full path of the session token file ("" when disabled)
	stop      chan struct{}

	mu           sync.Mutex
	conns        map[net.Conn]bool
	tasks        map[int]workq.Task // every task ever loaded, by ID
	pending      []workq.Task
	leases       map[int]*lease
	done         map[int]bool
	failed       map[int]string
	total        int
	requeues     int
	dupResults   int
	workersNow   int
	workersEver  int
	stats        workq.CacheStats
	statsWorkers int
	closed       bool

	wg sync.WaitGroup
}

// NewServer listens on addr (host:port; port 0 picks a free one), loads
// the queue with tasks, and starts serving. Close releases the listener
// and the session token file.
func NewServer(addr string, tasks []workq.Task, opt ServerOptions) (*Server, error) {
	if opt.Lease <= 0 {
		opt.Lease = 2 * time.Minute
	}
	if opt.IdleTimeout <= 0 {
		opt.IdleTimeout = 2 * opt.Lease
		if opt.IdleTimeout < 30*time.Second {
			opt.IdleTimeout = 30 * time.Second
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netq: listen %s: %w", addr, err)
	}
	s := &Server{
		opt:     opt,
		ln:      ln,
		stop:    make(chan struct{}),
		conns:   map[net.Conn]bool{},
		tasks:   make(map[int]workq.Task, len(tasks)),
		pending: append([]workq.Task(nil), tasks...),
		leases:  map[int]*lease{},
		done:    map[int]bool{},
		failed:  map[int]string{},
		total:   len(tasks),
	}
	for _, t := range tasks {
		s.tasks[t.ID] = t
	}
	if opt.CacheDir != "" {
		if err := s.writeToken(); err != nil {
			ln.Close()
			return nil, err
		}
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.leaseScan()
	return s, nil
}

// writeToken creates the shared-cache-dir probe token.
func (s *Server) writeToken() error {
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return fmt.Errorf("netq: session token: %w", err)
	}
	s.token = hex.EncodeToString(raw[:])
	s.tokenFile = ".netq-session-" + s.token[:8]
	path := filepath.Join(s.opt.CacheDir, s.tokenFile)
	if err := os.WriteFile(path, []byte(s.token), 0o644); err != nil {
		return fmt.Errorf("netq: session token: %w", err)
	}
	return nil
}

// Addr returns the listener's address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, drops every worker, and removes the token file.
// Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	for conn := range s.conns {
		conn.Close() // unblock handleConn reads; exit order is irrelevant
	}
	s.mu.Unlock()
	if already {
		return
	}
	close(s.stop)
	s.ln.Close()
	s.wg.Wait()
	if s.tokenFile != "" {
		os.Remove(filepath.Join(s.opt.CacheDir, s.tokenFile))
	}
}

// Progress snapshots the queue state.
func (s *Server) Progress() Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.progressLocked()
}

func (s *Server) progressLocked() Progress {
	return Progress{
		Total:       s.total,
		Done:        len(s.done),
		Failed:      len(s.failed),
		Leased:      len(s.leases),
		Pending:     len(s.pending),
		Workers:     s.workersNow,
		WorkersEver: s.workersEver,
		Requeues:    s.requeues,
		DupResults:  s.dupResults,
	}
}

// Wait blocks until every task is terminal, or — degrading exactly like
// the spool coordinator when its workers die — until no worker has been
// connected for grace with tasks still outstanding (the grace timer
// restarts whenever a worker connects). onTick, when non-nil, is called
// roughly every 200ms with a progress snapshot (the CLI's live stderr
// line).
func (s *Server) Wait(grace time.Duration, onTick func(Progress)) Summary {
	idleSince := time.Now()
	var terminalSince time.Time
	for {
		s.mu.Lock()
		p := s.progressLocked()
		s.mu.Unlock()
		if onTick != nil {
			onTick(p)
		}
		if p.Terminal() {
			// Linger for still-connected workers: their goodbye frames
			// (the final cache stats) arrive right after they see drained,
			// strictly before their disconnect drops the worker count. A
			// hung worker cannot pin us — the linger is capped.
			if terminalSince.IsZero() {
				terminalSince = time.Now()
			}
			if p.Workers == 0 || time.Since(terminalSince) > 2*time.Second {
				return s.summary(false)
			}
			time.Sleep(50 * time.Millisecond)
			continue
		}
		if p.Workers > 0 || p.Leased > 0 {
			idleSince = time.Now()
		} else if time.Since(idleSince) > grace {
			return s.summary(true)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// summary assembles the final report.
func (s *Server) summary(degraded bool) Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := Summary{
		Progress:     s.progressLocked(),
		Stats:        s.stats,
		StatsWorkers: s.statsWorkers,
		Degraded:     degraded,
	}
	ids := make([]int, 0, len(s.failed))
	for id := range s.failed {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		sum.Failures = append(sum.Failures, fmt.Sprintf("task %d: %s", id, s.failed[id]))
	}
	return sum
}

// acceptLoop admits workers until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// leaseScan re-queues expired leases: a worker that stopped heartbeating
// is presumed dead and its tasks go back to the survivors. The scan
// period divides the lease so expiry is detected within a fraction of it.
func (s *Server) leaseScan() {
	defer s.wg.Done()
	period := s.opt.Lease / 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		now := time.Now()
		ids := make([]int, 0, len(s.leases))
		for id := range s.leases {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if l := s.leases[id]; now.After(l.deadline) {
				delete(s.leases, id)
				s.pending = append(s.pending, l.task)
				s.requeues++
			}
		}
		s.mu.Unlock()
	}
}

// handleConn runs one worker connection: handshake, then the
// claim/heartbeat/result loop. Any read error — including the idle
// timeout — drops the connection and immediately re-queues its leases
// (connection loss is a faster death signal than lease expiry).
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)

	deadline := func() { conn.SetReadDeadline(time.Now().Add(s.opt.IdleTimeout)) }
	// send bounds every reply write too: a peer that stops reading with a
	// full socket buffer would otherwise pin this goroutine (and the
	// worker count Wait's degrade logic watches) until Close.
	send := func(m *message) error {
		conn.SetWriteDeadline(time.Now().Add(s.opt.IdleTimeout))
		return writeMsg(conn, m)
	}
	deadline()
	hello, err := readMsg(br)
	if err != nil || hello.Type != msgHello {
		return
	}
	if hello.Proto != ProtoVersion {
		send(&message{Type: msgReject, Proto: ProtoVersion,
			Err: fmt.Sprintf("netq: protocol version skew: coordinator speaks v%d, worker spoke v%d", ProtoVersion, hello.Proto)})
		return
	}
	if err := send(&message{Type: msgWelcome, Proto: ProtoVersion,
		TokenFile: s.tokenFile, Token: s.token}); err != nil {
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.conns[conn] = true
	s.workersNow++
	s.workersEver++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.workersNow--
		s.releaseConnLeasesLocked(conn)
		s.mu.Unlock()
	}()

	for {
		deadline()
		m, err := readMsg(br)
		if err != nil {
			return
		}
		switch m.Type {
		case msgClaim:
			if err := send(s.claim(conn)); err != nil {
				return
			}
		case msgHeartbeat:
			s.heartbeat(conn, m.ID)
		case msgResult:
			ack := s.result(conn, m)
			if err := send(ack); err != nil {
				return
			}
		case msgGoodbye:
			s.mu.Lock()
			if m.Stats != nil {
				s.stats.Add(*m.Stats)
				s.statsWorkers++
			}
			s.mu.Unlock()
		default:
			return // protocol violation: drop the worker, leases re-queue
		}
	}
}

// claim pops the next pending task under a fresh lease, or reports the
// queue state (wait while leases are outstanding, drained when every
// task is terminal).
func (s *Server) claim(conn net.Conn) *message {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) > 0 {
		t := s.pending[0]
		s.pending = s.pending[1:]
		if s.done[t.ID] || s.failed[t.ID] != "" {
			// Re-queued by a lease expiry or connection drop, then finished
			// by the original worker after all: already terminal, skip.
			continue
		}
		s.leases[t.ID] = &lease{task: t, deadline: time.Now().Add(s.opt.Lease), conn: conn}
		task := t
		return &message{Type: msgTask, Task: &task}
	}
	if s.progressLocked().Terminal() || s.closed {
		return &message{Type: msgDrained}
	}
	// Tasks are leased elsewhere; one may come back if its worker
	// dies, so the worker should poll rather than leave.
	return &message{Type: msgWait, WaitMS: 200}
}

// heartbeat extends the caller's lease. A heartbeat for a lease this
// connection no longer holds (expired and re-queued, or re-leased to
// another worker) is ignored; the eventual duplicate result is handled
// idempotently.
func (s *Server) heartbeat(conn net.Conn, id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.leases[id]; ok && l.conn == conn {
		l.deadline = time.Now().Add(s.opt.Lease)
	}
}

// result records one completion. The first successful result for a task
// wins; later duplicates (a reclaimed lease raced its original worker)
// are acknowledged and dropped, keeping completion exactly-once no
// matter how many workers finish the same task. Failures are narrower:
// only the current lease holder may fail a task (a stale worker's error
// must not pin the task failed while the live holder is still
// computing), and a success always supersedes an earlier failure — the
// result is content-addressed, so whoever computed it computed the same
// thing.
func (s *Server) result(conn net.Conn, m *message) *message {
	s.mu.Lock()
	task, known := s.tasks[m.ID]
	if !known {
		// A result for a task this queue never issued must not touch the
		// terminal maps: their sizes drive Progress.Terminal, so a bogus
		// ID could end Wait with real tasks still outstanding.
		s.dupResults++
		s.mu.Unlock()
		return &message{Type: msgAck, ID: m.ID, Err: "unknown task"}
	}
	if s.done[m.ID] {
		s.dupResults++
		s.mu.Unlock()
		return &message{Type: msgAck, ID: m.ID}
	}
	if m.Err != "" {
		if l := s.leases[m.ID]; l != nil && l.conn == conn {
			delete(s.leases, m.ID)
			s.failed[m.ID] = m.Err
		} else {
			// Reclaimed lease: the task is pending again or another worker
			// holds it now. Dropping the stale failure leaves the live
			// attempt free to succeed instead of being dup-dropped against
			// a terminal failed state.
			s.dupResults++
		}
		s.mu.Unlock()
		return &message{Type: msgAck, ID: m.ID}
	}
	delete(s.leases, m.ID)
	s.mu.Unlock()

	// Store outside the lock: artifact writes hit the disk. Idempotence
	// holds because a duplicate store writes identical bytes under the
	// same content key.
	if len(m.Artifact) > 0 {
		if s.opt.StoreArtifact == nil {
			return s.failResult(m.ID, "coordinator does not accept streamed artifacts")
		}
		key, err := s.storeKey(task, m.Key)
		if err != nil {
			return s.failResult(m.ID, err.Error())
		}
		if err := s.opt.StoreArtifact(key, m.Artifact); err != nil {
			return s.failResult(m.ID, fmt.Sprintf("store streamed artifact: %v", err))
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done[m.ID] {
		s.dupResults++
	} else {
		delete(s.failed, m.ID) // success supersedes an earlier failure
		s.done[m.ID] = true
	}
	return &message{Type: msgAck, ID: m.ID}
}

// storeKey names the cache entry a streamed artifact lands under. With
// TaskKey configured the key is derived from the coordinator's own copy
// of the task and the worker-reported wire key is ignored; without it
// the wire key is used but must have the bare content-hash shape.
func (s *Server) storeKey(t workq.Task, wire string) (string, error) {
	if s.opt.TaskKey != nil {
		key, err := s.opt.TaskKey(t)
		if err != nil {
			return "", fmt.Errorf("derive artifact key: %v", err)
		}
		return key, nil
	}
	if !validWireKey(wire) {
		return "", fmt.Errorf("malformed artifact key %q", wire)
	}
	return wire, nil
}

// validWireKey accepts exactly the shape artifact content keys have —
// non-empty lowercase hex, bounded length. Everything else (path
// separators, dots, uppercase, unicode) is rejected before the key gets
// anywhere near a filepath.Join.
func validWireKey(key string) bool {
	if len(key) == 0 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// failResult marks a completion that could not be recorded; the final
// in-process pass recomputes the cell.
func (s *Server) failResult(id int, reason string) *message {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done[id] && s.failed[id] == "" {
		s.failed[id] = reason
	}
	return &message{Type: msgAck, ID: id, Err: reason}
}

// releaseConnLeasesLocked re-queues every lease held by a dying
// connection. Caller holds s.mu.
func (s *Server) releaseConnLeasesLocked(conn net.Conn) {
	ids := make([]int, 0, len(s.leases))
	for id := range s.leases {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if l := s.leases[id]; l.conn == conn {
			delete(s.leases, id)
			s.pending = append(s.pending, l.task)
			s.requeues++
		}
	}
}
