package memory

import (
	"testing"

	"repro/internal/line"
)

func TestReadWriteAccounting(t *testing.T) {
	s := NewStore()
	var l line.Line
	l[0] = 7
	s.Write(0x1000, l, Writeback)
	got := s.Read(0x1000, Fill)
	if got != l {
		t.Fatal("read returned wrong data")
	}
	st := s.Stats()
	if st.Counts[Fill] != 1 || st.Counts[Writeback] != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Demand() != 2 || st.Total() != 2 {
		t.Fatalf("demand=%d total=%d", st.Demand(), st.Total())
	}
}

func TestBaseTableTrafficSeparate(t *testing.T) {
	s := NewStore()
	s.Read(0, BaseTable)
	st := s.Stats()
	if st.Demand() != 0 {
		t.Fatal("base table traffic counted as demand")
	}
	if st.Total() != 1 {
		t.Fatal("base table traffic not counted at all")
	}
}

func TestPeekPokeNoAccounting(t *testing.T) {
	s := NewStore()
	var l line.Line
	l[5] = 9
	s.Poke(0x40, l)
	if s.Peek(0x40) != l {
		t.Fatal("peek after poke")
	}
	if s.Stats().Total() != 0 {
		t.Fatal("peek/poke counted")
	}
	if s.Populated() != 1 {
		t.Fatalf("populated = %d", s.Populated())
	}
}

func TestUnpopulatedReadsZero(t *testing.T) {
	s := NewStore()
	if got := s.Peek(0x9999999); !got.IsZero() {
		t.Fatal("unpopulated line not zero")
	}
}

func TestLineGranularity(t *testing.T) {
	s := NewStore()
	var l line.Line
	l[1] = 3
	s.Poke(0x47, l) // unaligned: must land on line 0x40
	if s.Peek(0x40) != l {
		t.Fatal("unaligned poke missed its line")
	}
}

// fillStore populates n lines with distinct content, leaving partial
// pages at both ends (base is deliberately mid-page).
func fillStore(s *Store, base line.Addr, n int) {
	for i := 0; i < n; i++ {
		var l line.Line
		l[0], l[1], l[2] = byte(i), byte(i>>8), 0xA5
		s.Poke(base+line.Addr(i*line.Size), l)
	}
}

func TestPagesRoundtrip(t *testing.T) {
	cases := []struct {
		name string
		fill func(s *Store)
	}{
		{"empty", func(s *Store) {}},
		{"single line", func(s *Store) { fillStore(s, 0x40, 1) }},
		{"partial pages", func(s *Store) { fillStore(s, 0x7C0, 100) }},
		{"sparse pages", func(s *Store) {
			fillStore(s, 0x1000, 3)
			fillStore(s, 1<<33, 130)
			fillStore(s, 1<<40, 64)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := NewStore()
			c.fill(s)
			enc := s.AppendPages(nil)
			d := NewStore()
			rest, err := d.LoadPages(enc)
			if err != nil {
				t.Fatal(err)
			}
			if len(rest) != 0 {
				t.Fatalf("%d unconsumed bytes", len(rest))
			}
			if !PagesEqual(s, d) {
				t.Fatal("decoded store differs")
			}
			if d.Populated() != s.Populated() {
				t.Fatalf("populated %d != %d", d.Populated(), s.Populated())
			}
			// Re-encoding the decoded image must be byte-identical: the
			// encoding is canonical.
			if string(d.AppendPages(nil)) != string(enc) {
				t.Fatal("re-encoding differs")
			}
		})
	}
}

func TestLoadPagesRejectsCorruptInput(t *testing.T) {
	s := NewStore()
	fillStore(s, 0x1000, 70)
	enc := s.AppendPages(nil)
	for cut := 0; cut < len(enc); cut += 97 {
		if _, err := NewStore().LoadPages(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Non-ascending page indices: two pages with delta 0.
	bad := []byte{2, 5}
	bad = append(bad, make([]byte, 8+pageBytes)...)
	bad = append(bad, 0) // delta 0: duplicate page index
	bad = append(bad, make([]byte, 8+pageBytes)...)
	if _, err := NewStore().LoadPages(bad); err == nil {
		t.Fatal("duplicate page index accepted")
	}
	if _, err := s.LoadPages(enc); err == nil {
		t.Fatal("LoadPages into populated store accepted")
	}
}

// TestReleaseRecyclesOwnedPages: pages a store allocated return to the
// pool on Release, zeroed, and a subsequent store reuses them with
// fresh-page semantics.
func TestReleaseRecyclesOwnedPages(t *testing.T) {
	drainPagePool()
	s := NewStore()
	fillStore(s, 0, 3*pageLines)
	s.Release()
	if got := pagePoolSize(); got != 3 {
		t.Fatalf("pool holds %d pages after release, want 3", got)
	}
	// A fresh store must observe zero lines even on recycled pages.
	f := NewStore()
	if got := f.Peek(0); !got.IsZero() {
		t.Fatal("unwritten line nonzero")
	}
	var l line.Line
	l[9] = 1
	f.Poke(0, l)
	if pagePoolSize() != 2 {
		t.Fatal("poke did not draw from the pool")
	}
	if neighbour := f.Peek(line.Size); f.Peek(0) != l || !neighbour.IsZero() {
		t.Fatal("recycled page not equivalent to fresh")
	}
}

// TestReleaseDoesNotRecycleForeignPages is the regression test for the
// artifact-cache ownership rule: a store decoded from an artifact image
// is backed by the decode slab, and Release must drop — never pool —
// those pages, or a later store would write into slab storage it does
// not own.
func TestReleaseDoesNotRecycleForeignPages(t *testing.T) {
	src := NewStore()
	fillStore(src, 0x2000, 5*pageLines)
	enc := src.AppendPages(nil)

	d := NewStore()
	if _, err := d.LoadPages(enc); err != nil {
		t.Fatal(err)
	}
	drainPagePool()
	d.Release()
	if got := pagePoolSize(); got != 0 {
		t.Fatalf("release of artifact-backed store pooled %d foreign pages", got)
	}
	// A store that mixes loaded pages with pages it allocated itself
	// recycles only its own.
	m := NewStore()
	if _, err := m.LoadPages(enc); err != nil {
		t.Fatal(err)
	}
	fillStore(m, 1<<40, 2*pageLines) // far from the loaded image: new pages
	m.Release()
	if got := pagePoolSize(); got != 2 {
		t.Fatalf("mixed-ownership release pooled %d pages, want 2", got)
	}
}

func TestResetStats(t *testing.T) {
	s := NewStore()
	s.Read(0, Fill)
	s.ResetStats()
	if s.Stats().Total() != 0 {
		t.Fatal("stats not reset")
	}
	// Contents survive a stats reset.
	var l line.Line
	l[0] = 1
	s.Poke(0, l)
	s.ResetStats()
	if s.Peek(0) != l {
		t.Fatal("reset cleared contents")
	}
}
