package memory

import (
	"testing"

	"repro/internal/line"
)

func TestReadWriteAccounting(t *testing.T) {
	s := NewStore()
	var l line.Line
	l[0] = 7
	s.Write(0x1000, l, Writeback)
	got := s.Read(0x1000, Fill)
	if got != l {
		t.Fatal("read returned wrong data")
	}
	st := s.Stats()
	if st.Counts[Fill] != 1 || st.Counts[Writeback] != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Demand() != 2 || st.Total() != 2 {
		t.Fatalf("demand=%d total=%d", st.Demand(), st.Total())
	}
}

func TestBaseTableTrafficSeparate(t *testing.T) {
	s := NewStore()
	s.Read(0, BaseTable)
	st := s.Stats()
	if st.Demand() != 0 {
		t.Fatal("base table traffic counted as demand")
	}
	if st.Total() != 1 {
		t.Fatal("base table traffic not counted at all")
	}
}

func TestPeekPokeNoAccounting(t *testing.T) {
	s := NewStore()
	var l line.Line
	l[5] = 9
	s.Poke(0x40, l)
	if s.Peek(0x40) != l {
		t.Fatal("peek after poke")
	}
	if s.Stats().Total() != 0 {
		t.Fatal("peek/poke counted")
	}
	if s.Populated() != 1 {
		t.Fatalf("populated = %d", s.Populated())
	}
}

func TestUnpopulatedReadsZero(t *testing.T) {
	s := NewStore()
	if got := s.Peek(0x9999999); !got.IsZero() {
		t.Fatal("unpopulated line not zero")
	}
}

func TestLineGranularity(t *testing.T) {
	s := NewStore()
	var l line.Line
	l[1] = 3
	s.Poke(0x47, l) // unaligned: must land on line 0x40
	if s.Peek(0x40) != l {
		t.Fatal("unaligned poke missed its line")
	}
}

func TestResetStats(t *testing.T) {
	s := NewStore()
	s.Read(0, Fill)
	s.ResetStats()
	if s.Stats().Total() != 0 {
		t.Fatal("stats not reset")
	}
	// Contents survive a stats reset.
	var l line.Line
	l[0] = 1
	s.Poke(0, l)
	s.ResetStats()
	if s.Peek(0) != l {
		t.Fatal("reset cleared contents")
	}
}
